package wasmdb_test

import (
	"strings"
	"testing"

	"wasmdb"
)

func TestAPIValueAccessors(t *testing.T) {
	db := wasmdb.Open()
	if err := db.Exec(`CREATE TABLE v (i INT, b BIGINT, f DOUBLE, d DECIMAL(8,2), dt DATE, s CHAR(5), ok BOOLEAN)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO v VALUES (7, 900000000000, 2.5, 12.34, DATE '2001-02-03', 'abc', TRUE)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT i, b, f, d, dt, s, ok FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("rows: %d", res.NumRows())
	}
	if got := res.Value(0, 0).(int64); got != 7 {
		t.Errorf("int: %v", got)
	}
	if got := res.Value(0, 1).(int64); got != 900000000000 {
		t.Errorf("bigint: %v", got)
	}
	if got := res.Value(0, 2).(float64); got != 2.5 {
		t.Errorf("double: %v", got)
	}
	if got := res.Value(0, 3).(float64); got != 12.34 {
		t.Errorf("decimal: %v", got)
	}
	if got := res.Value(0, 4).(string); got != "2001-02-03" {
		t.Errorf("date: %v", got)
	}
	if got := res.Value(0, 5).(string); got != "abc" {
		t.Errorf("char: %v", got)
	}
	if got := res.Value(0, 6).(bool); !got {
		t.Errorf("bool: %v", got)
	}
	if !strings.Contains(res.Format(), "2001-02-03") {
		t.Error("Format output")
	}
}

func TestAPIErrors(t *testing.T) {
	db := wasmdb.Open()
	if err := db.Exec("CREATE TABLE e (a INT)"); err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"SELECT b FROM e",                       // unknown column
		"SELECT a FROM missing",                 // unknown table
		"SELECT a FROM",                         // parse error
		"SELECT a FROM e HAVING a > 1",          // unsupported clause
		"SELECT a, COUNT(*) FROM e",             // non-grouped column
		"SELECT SUM(a) FROM e WHERE SUM(a) > 0", // aggregate in WHERE
	}
	for _, src := range cases {
		if _, err := db.Query(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
	if err := db.Exec("SELECT a FROM e"); err == nil {
		t.Error("Exec accepted a SELECT")
	}
	if err := db.Exec("CREATE TABLE e (a INT)"); err == nil {
		t.Error("duplicate table accepted")
	}
	if err := db.Exec("INSERT INTO e VALUES (1, 2)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := db.Exec("INSERT INTO e VALUES ('x')"); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, ok := wasmdb.TPCHQuery("Q99"); ok {
		t.Error("unknown TPC-H query found")
	}
}

func TestBackendStringNames(t *testing.T) {
	names := map[wasmdb.Backend]string{
		wasmdb.BackendWasm:         "wasm-adaptive",
		wasmdb.BackendWasmLiftoff:  "wasm-liftoff",
		wasmdb.BackendWasmTurbofan: "wasm-turbofan",
		wasmdb.BackendHyperLike:    "hyper-like",
		wasmdb.BackendVectorized:   "vectorized",
		wasmdb.BackendVolcano:      "volcano",
	}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("%d: %q", b, b.String())
		}
	}
}
