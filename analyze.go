package wasmdb

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"wasmdb/internal/obs"
)

// ExplainAnalyze executes the query and returns the physical plan annotated
// with the observed execution profile: per-phase timings, per-pipeline
// execution times, the adaptive tier-switch timeline (which function was
// upgraded at which morsel), and the resource counters. Options apply as in
// Query.
func (db *DB) ExplainAnalyze(src string, opts ...Option) (string, error) {
	planText, err := db.Explain(src)
	if err != nil {
		return "", err
	}
	tr := NewTrace()
	res, err := db.Query(src, append(opts[:len(opts):len(opts)], WithTrace(tr))...)
	if err != nil {
		return "", err
	}
	return renderAnalyze(planText, tr, res.Stats, res.NumRows()), nil
}

func renderAnalyze(planText string, tr *Trace, st Stats, rows int) string {
	var sb strings.Builder
	sb.WriteString(strings.TrimRight(planText, "\n"))
	sb.WriteString("\n\nphases:\n")
	phases := []struct{ label, span string }{
		{"parse", obs.SpanParse},
		{"sema", obs.SpanSema},
		{"plan", obs.SpanPlan},
		{"codegen", obs.SpanCodegen},
		{"decode", obs.SpanDecode},
		{"validate", obs.SpanValidate},
		{"liftoff compile", obs.SpanLiftoff},
		{"turbofan compile", obs.SpanTurbofan},
		{"rewire", obs.SpanRewire},
		{"instantiate", obs.SpanInstantiate},
		{"execute", obs.SpanExecute},
	}
	for _, p := range phases {
		if d := tr.Dur(p.span); d > 0 {
			fmt.Fprintf(&sb, "  %-18s %s\n", p.label, fmtAnalyzeDur(d))
		}
	}

	// Per-pipeline execution breakdown, in recorded order.
	var pipes []obs.Span
	for _, sp := range tr.Spans() {
		if strings.HasPrefix(sp.Name, obs.SpanPipeline) {
			pipes = append(pipes, sp)
		}
	}
	if len(pipes) > 0 {
		sb.WriteString("\npipelines:\n")
		for _, sp := range pipes {
			name := strings.TrimPrefix(sp.Name, obs.SpanPipeline)
			rowsArg, workersArg := int64(-1), int64(0)
			for _, a := range sp.Args {
				switch a.Key {
				case "rows":
					rowsArg = a.Val
				case "workers":
					workersArg = a.Val
				}
			}
			par := ""
			if workersArg > 1 {
				par = fmt.Sprintf("  [%d workers]", workersArg)
			}
			if rowsArg >= 0 {
				fmt.Fprintf(&sb, "  %-18s %-10s %d rows%s\n", name, fmtAnalyzeDur(sp.Dur), rowsArg, par)
			} else {
				fmt.Fprintf(&sb, "  %-18s %s%s\n", name, fmtAnalyzeDur(sp.Dur), par)
			}
		}
	}

	// Tier timeline: background publishes (tier-up) and first optimized
	// dispatches (tier-switch), ordered by time.
	var tiers []obs.Event
	for _, ev := range tr.Events() {
		if ev.Name == obs.EvTierUp || ev.Name == obs.EvTierSwitch {
			tiers = append(tiers, ev)
		}
	}
	if len(tiers) > 0 {
		sort.Slice(tiers, func(i, j int) bool { return tiers[i].Time.Before(tiers[j].Time) })
		sb.WriteString("\ntier timeline:\n")
		for _, ev := range tiers {
			var fn, morsel int64
			for _, a := range ev.Args {
				switch a.Key {
				case "func":
					fn = a.Val
				case "morsel":
					morsel = a.Val
				}
			}
			verb := "optimized code published"
			if ev.Name == obs.EvTierSwitch {
				verb = "first optimized call"
			}
			fmt.Fprintf(&sb, "  +%-9s func %-3d %s (at morsel %d)\n",
				fmtAnalyzeDur(ev.Time.Sub(tr.StartTime())), fn, verb, morsel)
		}
	}

	sb.WriteString("\ntotals:\n")
	fmt.Fprintf(&sb, "  backend            %s\n", st.Backend)
	// The autopilot's routing decision, when the query ran with backend auto.
	for _, ev := range tr.Events() {
		if ev.Name != obs.EvAutopilot {
			continue
		}
		var choice, reason string
		var workers int64
		for _, a := range ev.Args {
			switch a.Key {
			case "choice":
				choice = a.Str
			case "reason":
				reason = a.Str
			case "workers":
				workers = a.Val
			}
		}
		fmt.Fprintf(&sb, "  auto               %s, %d worker(s) — %s\n", choice, workers, reason)
	}
	fmt.Fprintf(&sb, "  rows               %d\n", rows)
	fmt.Fprintf(&sb, "  morsels            %d liftoff / %d turbofan\n", st.MorselsLiftoff, st.MorselsTurbofan)
	if st.ModuleBytes > 0 {
		fmt.Fprintf(&sb, "  module             %d bytes\n", st.ModuleBytes)
	}
	if st.TurbofanFailed > 0 {
		fmt.Fprintf(&sb, "  turbofan failures  %d\n", st.TurbofanFailed)
	}
	if st.FuelUsed > 0 {
		fmt.Fprintf(&sb, "  fuel used          %d\n", st.FuelUsed)
	}
	if st.PeakMemBytes > 0 {
		fmt.Fprintf(&sb, "  peak memory        %d KiB\n", st.PeakMemBytes/1024)
	}
	if st.Workers > 1 {
		fmt.Fprintf(&sb, "  workers            %d (%d pipelines parallel, %d serial)\n",
			st.Workers, st.PipelinesParallel, st.PipelinesSerial)
	}
	if st.GroupsMerged > 0 {
		fmt.Fprintf(&sb, "  groups merged      %d\n", st.GroupsMerged)
	}
	if st.JoinPartitionsMerged > 0 {
		fmt.Fprintf(&sb, "  join partitions    %d merged\n", st.JoinPartitionsMerged)
	}
	// Plan-cache outcome: whether this execution reused a cached module, and
	// which tier the module dispatched from the first morsel on.
	for _, ev := range tr.Events() {
		if ev.Name != obs.EvPlanCache {
			continue
		}
		var result, fp, tier string
		for _, a := range ev.Args {
			switch a.Key {
			case "result":
				result = a.Str
			case "fingerprint":
				fp = a.Str
			case "tier":
				tier = a.Str
			}
		}
		if result == "hit" {
			fmt.Fprintf(&sb, "  plan cache         hit (fingerprint=%s, tier=%s)\n", fp, tier)
		} else {
			fmt.Fprintf(&sb, "  plan cache         miss (fingerprint=%s)\n", fp)
		}
	}
	// A query that requested parallelism but could not use it says why.
	for _, ev := range tr.Events() {
		if ev.Name == obs.EvSerialFallback {
			for _, a := range ev.Args {
				if a.Key == "reason" {
					fmt.Fprintf(&sb, "  serial fallback    %s\n", a.Str)
				}
			}
		}
	}
	return sb.String()
}

func fmtAnalyzeDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}
