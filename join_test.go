package wasmdb_test

import (
	"math"
	"strings"
	"testing"

	"wasmdb"
	"wasmdb/internal/types"
)

// joinDB creates a database with two small float-keyed tables for the join
// edge-case corpus. Rows are passed as (key, tag) pairs.
func joinDB(t *testing.T, bld, prb [][2]string) *wasmdb.DB {
	t.Helper()
	db := wasmdb.Open()
	mustExec := func(s string) {
		t.Helper()
		if err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	mustExec(`CREATE TABLE bld (k DOUBLE, tag INT)`)
	mustExec(`CREATE TABLE prb (k DOUBLE, val INT)`)
	insert := func(table string, rows [][2]string) {
		for _, r := range rows {
			mustExec("INSERT INTO " + table + " VALUES (" + r[0] + ", " + r[1] + ")")
		}
	}
	insert("bld", bld)
	insert("prb", prb)
	return db
}

// expectJoin runs src on every backend and requires the exact expected
// result (sorted rows joined with "|" and "\n").
func expectJoin(t *testing.T, db *wasmdb.DB, src, want string) {
	t.Helper()
	for _, b := range allBackends {
		res, err := db.Query(src, wasmdb.WithBackend(b))
		if err != nil {
			t.Fatalf("%v: %v\nquery: %s", b, err, src)
		}
		if got := formatSorted(t, res, false); got != want {
			t.Errorf("%v on %q:\ngot:\n%s\nwant:\n%s", b, src, got, want)
		}
	}
}

// TestJoinFloatZeroKeyAliasing pins the float-key aliasing fix: +0.0 and -0.0
// compare equal under F64Eq but have different bit patterns, so hashing the
// raw bits sent them to different slots and the probe silently dropped
// matching rows. The hash must canonicalize the sign of zero. Every expected
// count here is ground truth — before the fix all backends agreed on the
// wrong answer, so cross-backend agreement alone cannot catch it.
//
// -0.0e0 is deliberate: the exponent form lexes as a float literal, which the
// unary minus negates to IEEE negative zero. Plain -0.0 takes the exact
// decimal path and loses the sign.
func TestJoinFloatZeroKeyAliasing(t *testing.T) {
	db := joinDB(t,
		[][2]string{{"-0.0e0", "1"}, {"0.0", "2"}, {"1.5", "3"}},
		[][2]string{{"0.0", "10"}, {"-0.0e0", "20"}, {"1.5", "30"}, {"2.5", "40"}})
	// Two zero keys on each side: 2×2 zero matches plus the 1.5 match.
	expectJoin(t, db, "SELECT COUNT(*) FROM bld, prb WHERE bld.k = prb.k", "5")
	// Same join with the probe side listed first (whichever side builds, both
	// the insert hash and the lookup hash must canonicalize).
	expectJoin(t, db, "SELECT COUNT(*) FROM prb, bld WHERE prb.k = bld.k", "5")
	// Row-level ground truth.
	expectJoin(t, db, "SELECT bld.tag, prb.val FROM bld, prb WHERE bld.k = prb.k",
		"1|10\n1|20\n2|10\n2|20\n3|30")
	// GROUP BY over the ±0 join keys: zero signs stay distinct as *group*
	// keys (that is established engine behavior), but the join must match
	// them; grouping on the integer tag keeps the expectation sign-free.
	expectJoin(t, db, "SELECT bld.tag, COUNT(*) FROM bld, prb WHERE bld.k = prb.k GROUP BY bld.tag",
		"1|2\n2|2\n3|1")
}

// TestJoinNaNKeyNeverMatches pins the build-side NaN handling: NaN compares
// unequal to everything including itself, so a NaN build key used to insert
// an entry no probe could ever match — and distinct NaN bit patterns could
// alias under raw-bit hashing. NaN rows are now skipped at build time; the
// observable contract is simply that NaN never joins. No SQL literal produces
// NaN, so the values are planted through the catalog directly.
func TestJoinNaNKeyNeverMatches(t *testing.T) {
	db := joinDB(t,
		[][2]string{{"2.0", "1"}},
		[][2]string{{"2.0", "10"}, {"3.0", "20"}})
	cat := db.TestCatalog()
	for _, name := range []string{"bld", "prb"} {
		tbl, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.AppendRow(types.NewFloat64(math.NaN()), types.NewInt32(99)); err != nil {
			t.Fatal(err)
		}
	}
	// Only the 2.0 keys match; the NaN row on each side joins nothing.
	expectJoin(t, db, "SELECT COUNT(*) FROM bld, prb WHERE bld.k = prb.k", "1")
	expectJoin(t, db, "SELECT COUNT(*) FROM prb, bld WHERE prb.k = bld.k", "1")
	expectJoin(t, db, "SELECT bld.tag, prb.val FROM bld, prb WHERE bld.k = prb.k", "1|10")
}

// TestJoinDegenerateShapes pins the capacity fix: the build hash table used
// to be sized at rows/2 with no floor, so empty and single-row builds
// produced a capacity-0 table. Every degenerate shape must work on every
// backend, in both join orders.
func TestJoinDegenerateShapes(t *testing.T) {
	t.Run("empty-build", func(t *testing.T) {
		db := joinDB(t, nil, [][2]string{{"1.0", "10"}, {"2.0", "20"}})
		expectJoin(t, db, "SELECT COUNT(*) FROM bld, prb WHERE bld.k = prb.k", "0")
		expectJoin(t, db, "SELECT COUNT(*) FROM prb, bld WHERE prb.k = bld.k", "0")
		expectJoin(t, db, "SELECT bld.tag, prb.val FROM bld, prb WHERE bld.k = prb.k", "")
	})
	t.Run("single-row-build", func(t *testing.T) {
		db := joinDB(t, [][2]string{{"5.0", "1"}},
			[][2]string{{"5.0", "10"}, {"5.0", "20"}, {"6.0", "30"}})
		expectJoin(t, db, "SELECT COUNT(*) FROM bld, prb WHERE bld.k = prb.k", "2")
		expectJoin(t, db, "SELECT COUNT(*) FROM prb, bld WHERE prb.k = bld.k", "2")
	})
	t.Run("empty-probe", func(t *testing.T) {
		db := joinDB(t, [][2]string{{"1.0", "1"}, {"2.0", "2"}}, nil)
		expectJoin(t, db, "SELECT COUNT(*) FROM bld, prb WHERE bld.k = prb.k", "0")
		expectJoin(t, db, "SELECT COUNT(*) FROM prb, bld WHERE prb.k = bld.k", "0")
	})
	t.Run("both-empty", func(t *testing.T) {
		db := joinDB(t, nil, nil)
		expectJoin(t, db, "SELECT COUNT(*) FROM bld, prb WHERE bld.k = prb.k", "0")
	})
	t.Run("duplicate-build-keys", func(t *testing.T) {
		db := joinDB(t,
			[][2]string{{"7.0", "1"}, {"7.0", "2"}, {"7.0", "3"}},
			[][2]string{{"7.0", "10"}, {"7.0", "20"}})
		expectJoin(t, db, "SELECT COUNT(*) FROM bld, prb WHERE bld.k = prb.k", "6")
		expectJoin(t, db, "SELECT bld.tag, prb.val FROM bld, prb WHERE bld.k = prb.k",
			"1|10\n1|20\n2|10\n2|20\n3|10\n3|20")
	})
	t.Run("self-join", func(t *testing.T) {
		db := joinDB(t, [][2]string{{"1.0", "1"}, {"2.0", "2"}, {"2.0", "3"}}, nil)
		expectJoin(t, db, "SELECT COUNT(*) FROM bld a, bld b WHERE a.k = b.k", "5")
	})
	t.Run("join-feeding-tails", func(t *testing.T) {
		db := joinDB(t,
			[][2]string{{"1.0", "1"}, {"2.0", "2"}},
			[][2]string{{"1.0", "10"}, {"1.0", "20"}, {"2.0", "30"}})
		expectJoin(t, db, "SELECT bld.tag, SUM(prb.val) FROM bld, prb WHERE bld.k = prb.k GROUP BY bld.tag",
			"1|30\n2|30")
		for _, b := range allBackends {
			res, err := db.Query("SELECT prb.val FROM bld, prb WHERE bld.k = prb.k ORDER BY prb.val DESC LIMIT 2",
				wasmdb.WithBackend(b))
			if err != nil {
				t.Fatalf("%v: %v", b, err)
			}
			if got := formatSorted(t, res, true); got != "30\n20" {
				t.Errorf("%v: ordered limited join = %q, want 30,20", b, got)
			}
		}
	})
}

// TestTPCHJoinParallelByteIdentical is the tentpole acceptance check: the
// join-bearing TPC-H queries (Q3: two joins feeding GROUP BY/ORDER BY/LIMIT,
// Q12: join feeding GROUP BY, Q14: join feeding a keyless aggregate) must
// produce byte-identical rows under 2- and 4-worker parallel execution, on
// both a cold and a warm plan cache, with the build partitions merged rather
// than a serial fallback.
func TestTPCHJoinParallelByteIdentical(t *testing.T) {
	for _, id := range []string{"Q3", "Q12", "Q14"} {
		id := id
		t.Run(id, func(t *testing.T) {
			src, ok := wasmdb.TPCHQuery(id)
			if !ok {
				t.Fatalf("unknown query %s", id)
			}
			ordered := strings.Contains(src, "ORDER BY")
			for _, workers := range []int{2, 4} {
				db := tpchDB(t) // fresh plan cache: first run is cold
				var want string
				for run, label := range []string{"cold", "warm"} {
					par, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendWasm),
						wasmdb.WithParallelism(workers))
					if err != nil {
						t.Fatalf("%d workers %s: %v", workers, label, err)
					}
					s := par.Stats
					if s.SerialFallback != "" || s.PipelinesParallel == 0 {
						t.Fatalf("%d workers %s: fallback %q, parallel %d; want parallel join",
							workers, label, s.SerialFallback, s.PipelinesParallel)
					}
					if s.JoinPartitionsMerged == 0 {
						t.Errorf("%d workers %s: no join partitions merged", workers, label)
					}
					got := formatSorted(t, par, ordered)
					if run == 0 {
						want = got
						continue
					}
					if got != want {
						t.Errorf("%d workers: warm run differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s",
							workers, clip(want), clip(got))
					}
				}
				serial, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendWasm))
				if err != nil {
					t.Fatalf("serial: %v", err)
				}
				if got := formatSorted(t, serial, ordered); got != want {
					t.Errorf("%d workers: parallel differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, clip(got), clip(want))
				}
			}
		})
	}
}
