// TPC-H walkthrough: load the benchmark data and run the paper's evaluation
// queries on every backend, comparing results and timings (Figure 10 in
// miniature).
package main

import (
	"flag"
	"fmt"
	"log"

	"wasmdb"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	flag.Parse()

	db := wasmdb.Open()
	fmt.Printf("loading TPC-H at SF %g …\n", *sf)
	if err := db.LoadTPCH(*sf, 42); err != nil {
		log.Fatal(err)
	}

	backends := []wasmdb.Backend{
		wasmdb.BackendWasm,
		wasmdb.BackendHyperLike,
		wasmdb.BackendVectorized,
		wasmdb.BackendVolcano,
	}

	for _, id := range []string{"Q1", "Q3", "Q6", "Q12", "Q14"} {
		src, _ := wasmdb.TPCHQuery(id)
		fmt.Printf("\n===== TPC-H %s =====\n", id)
		var shown bool
		for _, b := range backends {
			res, err := db.Query(src, wasmdb.WithBackend(b))
			if err != nil {
				log.Fatalf("%s on %v: %v", id, b, err)
			}
			if !shown {
				fmt.Print(res.Format())
				shown = true
			}
			s := res.Stats
			fmt.Printf("%-14s translate=%-12v compile(lo/tf)=%v/%-12v execute=%-12v rows=%d\n",
				b, s.Translate, s.Liftoff, s.Turbofan, s.Execute, res.NumRows())
		}
	}
}
