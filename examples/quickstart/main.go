// Quickstart: create a table, insert rows, and run queries on the default
// (adaptive WebAssembly) backend.
package main

import (
	"fmt"
	"log"

	"wasmdb"
)

func main() {
	db := wasmdb.Open()

	must(db.Exec(`CREATE TABLE employees (
		id INT, name CHAR(16), dept CHAR(12), salary DECIMAL(10,2), hired DATE)`))
	must(db.Exec(`INSERT INTO employees VALUES
		(1, 'ada',     'engineering', 9500.00, DATE '2019-03-01'),
		(2, 'grace',   'engineering', 9100.50, DATE '2020-07-15'),
		(3, 'edsger',  'research',    8800.00, DATE '2018-01-20'),
		(4, 'donald',  'research',    9900.00, DATE '2015-06-11'),
		(5, 'barbara', 'engineering', 9700.25, DATE '2021-02-03'),
		(6, 'tony',    'support',     5400.00, DATE '2022-09-30')`))

	res, err := db.Query(`
		SELECT dept, COUNT(*) AS headcount, AVG(salary) AS avg_salary
		FROM employees
		WHERE hired >= DATE '2016-01-01'
		GROUP BY dept
		ORDER BY avg_salary DESC`)
	must(err)
	fmt.Println("Average salary by department (hired since 2016):")
	fmt.Print(res.Format())

	// The same query, compiled and executed — inspect the plan and the
	// generated WebAssembly the engine JIT-compiles.
	explain, err := db.Explain(`SELECT dept, COUNT(*) FROM employees GROUP BY dept`)
	must(err)
	fmt.Println("Plan and pipelines:")
	fmt.Println(explain)

	fmt.Printf("phases: translate=%v liftoff=%v turbofan=%v execute=%v (module %d bytes)\n",
		res.Stats.Translate, res.Stats.Liftoff, res.Stats.Turbofan,
		res.Stats.Execute, res.Stats.ModuleBytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
