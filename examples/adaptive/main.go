// Adaptive execution demo: watch a long-running query start on the fast
// baseline tier (Liftoff) and migrate to optimized code (TurboFan) between
// morsels, as background compilation finishes — the paper's §2.2 behavior,
// delegated entirely to the embedded engine.
package main

import (
	"fmt"
	"log"

	"wasmdb"
)

func main() {
	db := wasmdb.Open()
	if err := db.LoadTPCH(0.05, 42); err != nil {
		log.Fatal(err)
	}
	src, _ := wasmdb.TPCHQuery("Q1")

	fmt.Println("TPC-H Q1 under three engine configurations:")
	for _, cfg := range []struct {
		name    string
		backend wasmdb.Backend
		morsel  int
	}{
		{"baseline tier only (interpreted start, no optimization)", wasmdb.BackendWasmLiftoff, 0},
		{"optimizing tier only (compile everything first)", wasmdb.BackendWasmTurbofan, 0},
		{"adaptive (start immediately, optimize in background)", wasmdb.BackendWasm, 2048},
	} {
		opts := []wasmdb.Option{wasmdb.WithBackend(cfg.backend)}
		if cfg.morsel > 0 {
			opts = append(opts, wasmdb.WithMorselRows(cfg.morsel))
		}
		res, err := db.Query(src, opts...)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("\n%s\n", cfg.name)
		fmt.Printf("  liftoff compile:  %v\n", s.Liftoff)
		fmt.Printf("  turbofan compile: %v\n", s.Turbofan)
		fmt.Printf("  execution:        %v\n", s.Execute)
		if cfg.backend == wasmdb.BackendWasm {
			fmt.Printf("  morsels served by baseline tier:  %d\n", s.MorselsLiftoff)
			fmt.Printf("  morsels served by optimized tier: %d  ← code replaced mid-query\n", s.MorselsTurbofan)
		}
	}
}
