// Ad-hoc library code generation demo (§5): dump the WebAssembly generated
// for a query whose plan needs a hash table and a quicksort — both are
// generated monomorphically into the module, specialized to this exact
// query's types and sort order. There is no standard library at runtime.
package main

import (
	"fmt"
	"log"
	"strings"

	"wasmdb"
)

func main() {
	db := wasmdb.Open()
	if err := db.LoadTPCH(0.001, 42); err != nil {
		log.Fatal(err)
	}

	src := `SELECT l_shipmode, COUNT(*) AS n, SUM(l_extendedprice) AS total
	        FROM lineitem
	        WHERE l_quantity < 30
	        GROUP BY l_shipmode
	        ORDER BY total DESC`

	wat, err := db.ExplainWAT(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Generated module functions (ad-hoc library code, §5):")
	for _, line := range strings.Split(wat, "\n") {
		if strings.Contains(line, "(func (;") {
			fmt.Println(" ", strings.TrimSpace(line))
		}
	}
	fmt.Println("\nFull WAT of the generated quicksort:")
	inQsort := false
	depth := 0
	for _, line := range strings.Split(wat, "\n") {
		if strings.Contains(line, "$qsort_") {
			inQsort = true
		}
		if inQsort {
			fmt.Println(line)
			depth += strings.Count(line, "(") - strings.Count(line, ")")
			if depth <= 0 {
				break
			}
		}
	}
	fmt.Printf("\n(total module: %d bytes of WAT; run with \\wat in the shell to see everything)\n", len(wat))
}
