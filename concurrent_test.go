package wasmdb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"wasmdb"
)

// TestConcurrentMixedWorkload hammers one DB from many goroutines with a
// mixed workload — ad-hoc queries, prepared statements with rotating
// arguments, varying backends and parallelism, the plan cache on, all
// parallel queries multiplexed over one shared scheduler — and checks every
// result differentially against serial references computed up front.
// Concurrency must never change an answer, and `-race` (make verify) must
// stay silent.
func TestConcurrentMixedWorkload(t *testing.T) {
	db := tpchDB(t)
	sched := wasmdb.NewScheduler(4)

	adhoc := []struct {
		src     string
		ordered bool
	}{
		{"SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 25", false},
		{"SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_returnflag", false},
		{"SELECT MIN(l_discount), MAX(l_discount) FROM lineitem", false},
		{"SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_extendedprice > 55000 ORDER BY l_extendedprice", true},
	}
	prepared := "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < ?"

	// Serial references, computed before any concurrency starts.
	refs := make(map[string]string)
	for _, q := range adhoc {
		res, err := db.Query(q.src)
		if err != nil {
			t.Fatalf("reference for %q: %v", q.src, err)
		}
		refs[q.src] = formatSorted(t, res, q.ordered)
	}
	for qty := int64(1); qty <= 8; qty++ {
		src := fmt.Sprintf("SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < %d", qty)
		res, err := db.Query(src)
		if err != nil {
			t.Fatalf("reference for qty=%d: %v", qty, err)
		}
		refs[fmt.Sprintf("stmt:%d", qty)] = formatSorted(t, res, false)
	}

	stmt, err := db.Prepare(prepared)
	if err != nil {
		t.Fatal(err)
	}

	backends := []wasmdb.Backend{
		wasmdb.BackendWasm, wasmdb.BackendWasmLiftoff, wasmdb.BackendWasmTurbofan,
	}
	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				opts := []wasmdb.Option{
					wasmdb.WithBackend(backends[(g+i)%len(backends)]),
					wasmdb.WithScheduler(sched),
				}
				if (g+i)%2 == 0 {
					opts = append(opts, wasmdb.WithParallelism(2+(g+i)%3))
				}
				if i%3 == 0 {
					// Prepared path: same plan fingerprint, rotating literal.
					qty := int64(1 + (g*iters+i)%8)
					res, err := stmt.QueryContext(context.Background(), []any{qty}, opts...)
					if err != nil {
						errs <- fmt.Errorf("g%d i%d stmt(%d): %w", g, i, qty, err)
						continue
					}
					if got := formatSorted(t, res, false); got != refs[fmt.Sprintf("stmt:%d", qty)] {
						errs <- fmt.Errorf("g%d i%d stmt(%d): concurrent result diverged from serial:\n%s", g, i, qty, clip(got))
					}
				} else {
					q := adhoc[(g+i)%len(adhoc)]
					res, err := db.Query(q.src, opts...)
					if err != nil {
						errs <- fmt.Errorf("g%d i%d %q: %w", g, i, q.src, err)
						continue
					}
					if got := formatSorted(t, res, q.ordered); got != refs[q.src] {
						errs <- fmt.Errorf("g%d i%d %q: concurrent result diverged from serial:\n%s", g, i, q.src, clip(got))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := sched.InUse(); got != 0 {
		t.Errorf("shared scheduler leaked %d slots after the workload", got)
	}
	// The cache must have served the repeated shapes; a hit rate collapse
	// under concurrency would mean fingerprint races evicted live entries.
	cs := db.PlanCacheStats()
	if cs.Hits == 0 {
		t.Error("plan cache recorded zero hits across a repeated concurrent workload")
	}
}
