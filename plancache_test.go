package wasmdb_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"wasmdb"
	"wasmdb/internal/obs"
)

// planCacheCorpus lists query shapes whose literals the tests vary: each
// entry is a format string and a set of literal tuples. Cached execution
// (parameterized, shared module) must agree bit-for-bit with uncached
// execution (literals baked) for every tuple.
var planCacheCorpus = []struct {
	name    string
	format  string
	ordered bool
	args    [][]any
}{
	{
		name:   "filter-agg",
		format: "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < %d",
		args:   [][]any{{24}, {30}, {1}, {50}},
	},
	{
		name:   "range-dates",
		format: "SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '%s' AND l_shipdate < DATE '%s'",
		args:   [][]any{{"1994-01-01", "1995-01-01"}, {"1995-06-01", "1996-06-01"}},
	},
	{
		name:   "like",
		format: "SELECT COUNT(*) FROM orders WHERE o_orderpriority LIKE '%%%s%%'",
		args:   [][]any{{"URGENT"}, {"HIGH"}, {"LOW"}},
	},
	{
		name:    "group-order-limit",
		format:  "SELECT l_returnflag, COUNT(*) FROM lineitem WHERE l_quantity > %d GROUP BY l_returnflag ORDER BY l_returnflag LIMIT %d",
		ordered: true,
		args:    [][]any{{10, 2}, {40, 3}, {0, 1}},
	},
	{
		name:   "join",
		format: "SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_totalprice > %d",
		args:   [][]any{{1000}, {150000}},
	},
}

// TestPlanCacheDifferential runs every corpus shape across its literal
// variants, twice each with the cache on (second run is a hit) and once
// with the cache off, and requires identical results — the differential
// oracle for the parameterized code path.
func TestPlanCacheDifferential(t *testing.T) {
	db := tpchDB(t)
	for _, c := range planCacheCorpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for _, args := range c.args {
				src := fmt.Sprintf(c.format, args...)
				ref, err := db.Query(src, wasmdb.WithPlanCache(false))
				if err != nil {
					t.Fatalf("uncached: %v\nquery: %s", err, src)
				}
				want := formatSorted(t, ref, c.ordered)
				for run := 0; run < 2; run++ {
					res, err := db.Query(src)
					if err != nil {
						t.Fatalf("cached run %d: %v\nquery: %s", run, err, src)
					}
					if got := formatSorted(t, res, c.ordered); got != want {
						t.Errorf("cached run %d disagrees on %q:\n--- uncached ---\n%s\n--- cached ---\n%s",
							run, src, clip(want), clip(got))
					}
				}
			}
		})
	}
	st := db.PlanCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("corpus recorded no cache traffic: %+v", st)
	}
}

// TestPlanCacheTPCHDifferential: the reproduced TPC-H queries, cached vs
// uncached — same module shapes the paper benchmarks, now through the
// parameterized path.
func TestPlanCacheTPCHDifferential(t *testing.T) {
	db := tpchDB(t)
	for _, id := range []string{"Q1", "Q3", "Q6", "Q12", "Q14"} {
		id := id
		t.Run(id, func(t *testing.T) {
			src, _ := wasmdb.TPCHQuery(id)
			ref, err := db.Query(src, wasmdb.WithPlanCache(false))
			if err != nil {
				t.Fatal(err)
			}
			want := formatSorted(t, ref, true)
			for run := 0; run < 2; run++ {
				res, err := db.Query(src)
				if err != nil {
					t.Fatal(err)
				}
				if got := formatSorted(t, res, true); got != want {
					t.Errorf("run %d: cached result differs from uncached:\n%s\nvs\n%s",
						run, clip(got), clip(want))
				}
			}
		})
	}
}

// TestPlanCacheHitSkipsCompilation is the headline behavior: a repeated
// query shape with a different literal records a cache-hit event, no
// codegen or engine-compile spans, and zero compile time in Stats.
func TestPlanCacheHitSkipsCompilation(t *testing.T) {
	db := tpchDB(t)
	if _, err := db.Query("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24"); err != nil {
		t.Fatal(err)
	}
	tr := wasmdb.NewTrace()
	res, err := db.Query("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 30", wasmdb.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}

	hit := false
	for _, ev := range tr.Events() {
		if ev.Name != obs.EvPlanCache {
			continue
		}
		for _, a := range ev.Args {
			if a.Key == "result" && a.Str == "hit" {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatalf("no plan-cache hit event on repeated query shape; events: %+v", tr.Events())
	}
	for _, span := range []string{
		obs.SpanCodegen, obs.SpanDecode, obs.SpanValidate, obs.SpanLiftoff, obs.SpanTurbofan,
	} {
		if d := tr.Dur(span); d != 0 {
			t.Errorf("hit recorded a %q span (%v); compilation should be skipped entirely", span, d)
		}
	}
	if res.Stats.Liftoff != 0 || res.Stats.Turbofan != 0 {
		t.Errorf("hit reports compile time: liftoff=%v turbofan=%v", res.Stats.Liftoff, res.Stats.Turbofan)
	}
	if st := db.PlanCacheStats(); st.Hits == 0 {
		t.Errorf("stats recorded no hit: %+v", st)
	}
}

// TestPlanCacheExplainAnalyze: the rendered profile names the cache
// outcome, with the tier the cached module dispatches.
func TestPlanCacheExplainAnalyze(t *testing.T) {
	db := tpchDB(t)
	out, err := db.ExplainAnalyze("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan cache") || !strings.Contains(out, "miss") {
		t.Errorf("first EXPLAIN ANALYZE does not report a miss:\n%s", out)
	}
	out, err = db.ExplainAnalyze("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 31")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan cache") || !strings.Contains(out, "hit (fingerprint=") {
		t.Errorf("second EXPLAIN ANALYZE does not report a hit:\n%s", out)
	}
}

// TestPreparedVsAdhoc: Stmt.Query across argument sets must agree with the
// equivalent literal query run cache-off, for numeric, CHAR, date, and
// LIMIT ? parameters.
func TestPreparedVsAdhoc(t *testing.T) {
	db := tpchDB(t)
	cases := []struct {
		name, prepared, adhoc string
		args                  []any
	}{
		{
			name:     "numeric",
			prepared: "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < ?",
			adhoc:    "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 24",
			args:     []any{24},
		},
		{
			name:     "char",
			prepared: "SELECT COUNT(*) FROM lineitem WHERE l_shipmode = ?",
			adhoc:    "SELECT COUNT(*) FROM lineitem WHERE l_shipmode = 'MAIL'",
			args:     []any{"MAIL"},
		},
		{
			name:     "date",
			prepared: "SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= ?",
			adhoc:    "SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '1995-01-01'",
			args:     []any{"1995-01-01"},
		},
		{
			name:     "limit",
			prepared: "SELECT l_orderkey FROM lineitem WHERE l_quantity > ? ORDER BY l_orderkey LIMIT ?",
			adhoc:    "SELECT l_orderkey FROM lineitem WHERE l_quantity > 45 ORDER BY l_orderkey LIMIT 7",
			args:     []any{45, 7},
		},
		{
			name:     "having",
			prepared: "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag HAVING COUNT(*) > ?",
			adhoc:    "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag HAVING COUNT(*) > 100",
			args:     []any{100},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			stmt, err := db.Prepare(c.prepared)
			if err != nil {
				t.Fatal(err)
			}
			if stmt.NumParams() != len(c.args) {
				t.Fatalf("NumParams = %d, want %d", stmt.NumParams(), len(c.args))
			}
			ref, err := db.Query(c.adhoc, wasmdb.WithPlanCache(false))
			if err != nil {
				t.Fatal(err)
			}
			want := formatSorted(t, ref, true)
			for run := 0; run < 2; run++ {
				res, err := stmt.Query(c.args...)
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if got := formatSorted(t, res, true); got != want {
					t.Errorf("run %d: prepared result differs:\n%s\nvs adhoc\n%s", run, clip(got), clip(want))
				}
			}
		})
	}

	// Error surfaces: wrong arg count, and placeholders in ad-hoc queries.
	stmt, err := db.Prepare("SELECT COUNT(*) FROM lineitem WHERE l_quantity < ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); err == nil {
		t.Error("missing argument not rejected")
	}
	if _, err := db.Query("SELECT COUNT(*) FROM lineitem WHERE l_quantity < ?"); err == nil {
		t.Error("ad-hoc query with placeholder not rejected")
	}
}

// TestPlanCacheDDLInvalidation: DDL must flush the cache and queries after
// it must recompile against the new schema.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := wasmdb.Open()
	if err := db.Exec("CREATE TABLE t (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("INSERT INTO t VALUES (1, 10), (2, 20)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM t WHERE a < 5"); err != nil {
			t.Fatal(err)
		}
	}
	before := db.PlanCacheStats()
	if before.Hits == 0 || before.Entries == 0 {
		t.Fatalf("cache not populated before DDL: %+v", before)
	}

	if err := db.Exec("CREATE TABLE u (x INT)"); err != nil {
		t.Fatal(err)
	}
	after := db.PlanCacheStats()
	if after.Entries != 0 || after.Invalidations == 0 {
		t.Fatalf("DDL did not flush the cache: %+v", after)
	}

	// The same query still answers correctly (fresh compile, new schema
	// version in the fingerprint) and re-populates the cache.
	res, err := db.Query("SELECT COUNT(*) FROM t WHERE a < 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value(0, 0).(int64) != 2 {
		t.Errorf("post-DDL result wrong: %v", res.Value(0, 0))
	}
	if st := db.PlanCacheStats(); st.Misses <= before.Misses {
		t.Errorf("post-DDL query did not recompile: %+v", st)
	}
}

// TestPlanCacheLRUEviction: a tiny entry budget evicts least-recently-used
// shapes, and an evicted shape recompiles on its next use.
func TestPlanCacheLRUEviction(t *testing.T) {
	db := wasmdb.Open()
	if err := db.Exec("CREATE TABLE t (a INT, b INT, c INT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("INSERT INTO t VALUES (1, 2, 3)"); err != nil {
		t.Fatal(err)
	}
	db.SetPlanCacheLimits(2, 0)
	shapes := []string{
		"SELECT COUNT(*) FROM t WHERE a < 10",
		"SELECT COUNT(*) FROM t WHERE b < 10",
		"SELECT COUNT(*) FROM t WHERE c < 10",
	}
	for _, src := range shapes {
		if _, err := db.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if st.Evictions == 0 || st.Entries > 2 {
		t.Fatalf("tiny budget did not evict: %+v", st)
	}
	// Shape 0 was the least recently used; running it again must miss.
	if _, err := db.Query(shapes[0]); err != nil {
		t.Fatal(err)
	}
	if st2 := db.PlanCacheStats(); st2.Misses != st.Misses+1 {
		t.Errorf("evicted shape did not recompile: %+v then %+v", st, st2)
	}

	// A byte budget smaller than one module still serves (and retains) the
	// newest entry rather than thrashing.
	db.SetPlanCacheLimits(0, 1)
	if _, err := db.Query(shapes[1]); err != nil {
		t.Fatal(err)
	}
	if st3 := db.PlanCacheStats(); st3.Entries != 1 {
		t.Errorf("over-budget newest entry not retained: %+v", st3)
	}
}

// TestPlanCacheConcurrentSingleflight: many goroutines issuing the same
// brand-new query shape concurrently must collapse into one compilation
// (exactly one miss), all receive correct results, and — under `make
// verify` — survive the race detector.
func TestPlanCacheConcurrentSingleflight(t *testing.T) {
	db := tpchDB(t)
	const n = 16
	src := "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 17"
	var wg sync.WaitGroup
	errs := make([]error, n)
	rows := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := db.Query(src)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = formatSorted(t, res, true)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if rows[i] != rows[0] {
			t.Errorf("goroutine %d saw different rows:\n%s\nvs\n%s", i, rows[i], rows[0])
		}
	}
	st := db.PlanCacheStats()
	if st.Misses != 1 {
		t.Errorf("concurrent identical queries compiled %d times, want 1 (%+v)", st.Misses, st)
	}
	if st.Hits != n-1 {
		t.Errorf("hits = %d, want %d (%+v)", st.Hits, n-1, st)
	}
}
