module wasmdb

go 1.24
