package wasmdb_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"wasmdb"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/obs"
)

// obsDB builds a single-table database with rows sequential ints, large
// enough to split into many morsels at small morsel sizes.
func obsDB(t *testing.T, rows int) *wasmdb.DB {
	t.Helper()
	db := wasmdb.Open()
	if err := db.Exec("CREATE TABLE t (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES (0,0)")
	for i := 1; i < rows; i++ {
		fmt.Fprintf(&sb, ",(%d,%d)", i, i%97)
	}
	if err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

// waitFor polls cond until it holds or the deadline passes; the timeout
// keeps an armed fault point from wedging the whole test run.
func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// TestDeterministicTierUp pins the adaptive tier switch with fault points
// instead of racing the compiler: the background turbofan compile is held
// until three morsels ran on baseline code, and morsel four is held until
// optimized code is published. The trace must then show a tier-up at a
// morsel index > 0 and morsels served by both tiers.
func TestDeterministicTierUp(t *testing.T) {
	db := obsDB(t, 8192)
	tr := wasmdb.NewTrace()

	// Hold the first background compile until the query has dispatched
	// three baseline morsels.
	faultpoint.Enable("turbofan-compile", func(int) error {
		waitFor(func() bool { return tr.MorselCount() >= 3 })
		return nil
	})
	defer faultpoint.Disable("turbofan-compile")
	// Hold morsel four until background optimization has fully finished,
	// so the remaining morsels are guaranteed to run optimized.
	faultpoint.Enable("core-morsel", func(hit int) error {
		if hit >= 4 {
			waitFor(func() bool { return tr.Dur(obs.SpanTurbofan) > 0 })
		}
		return nil
	})
	defer faultpoint.Disable("core-morsel")

	res, err := db.Query("SELECT COUNT(*) FROM t WHERE a < 1000000",
		wasmdb.WithTrace(tr), wasmdb.WithMorselRows(1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MorselsLiftoff == 0 || res.Stats.MorselsTurbofan == 0 {
		t.Fatalf("tier split not observed: liftoff=%d turbofan=%d",
			res.Stats.MorselsLiftoff, res.Stats.MorselsTurbofan)
	}

	var sawTierUp bool
	for _, ev := range tr.Events() {
		if ev.Name != obs.EvTierUp {
			continue
		}
		for _, a := range ev.Args {
			if a.Key == "morsel" && a.Val > 0 {
				sawTierUp = true
			}
		}
	}
	if !sawTierUp {
		t.Fatalf("no tier-up event with morsel index > 0; events: %+v", tr.Events())
	}
	if !tr.HasEvent(obs.EvTierSwitch) {
		t.Error("no tier-switch event for the first optimized dispatch")
	}
}

// TestExplainAnalyzeJoin: the user-facing profile of a join query must show
// the plan, per-phase timings, per-pipeline breakdown, the tier timeline
// (complete, because tracing drains background compilation), and totals.
func TestExplainAnalyzeJoin(t *testing.T) {
	db := wasmdb.Open()
	for _, stmt := range []string{
		"CREATE TABLE a (k INT, v INT)",
		"CREATE TABLE b (k INT)",
	} {
		if err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	var sa, sb strings.Builder
	sa.WriteString("INSERT INTO a VALUES (0,0)")
	sb.WriteString("INSERT INTO b VALUES (0)")
	for i := 1; i < 2000; i++ {
		fmt.Fprintf(&sa, ",(%d,%d)", i%50, i)
		fmt.Fprintf(&sb, ",(%d)", i%50)
	}
	if err := db.Exec(sa.String()); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}

	out, err := db.ExplainAnalyze("SELECT COUNT(*) FROM a, b WHERE a.k = b.k")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"phases:", "parse", "codegen", "liftoff compile", "execute",
		"pipelines:", "tier timeline:", "optimized code published",
		"totals:", "morsels", "module",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
}

// TestTraceEventExportFromQuery drives the public WithTrace +
// WriteTraceEvents path and verifies the output is trace_event JSON of the
// shape Perfetto loads.
func TestTraceEventExportFromQuery(t *testing.T) {
	db := obsDB(t, 1000)
	tr := wasmdb.NewTrace()
	if _, err := db.Query("SELECT COUNT(*) FROM t", wasmdb.WithTrace(tr)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wasmdb.WriteTraceEvents(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Ts < 0 {
			t.Errorf("malformed event %+v", ev)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{obs.SpanParse, obs.SpanCodegen, obs.SpanExecute} {
		if !names[want] {
			t.Errorf("trace export missing span %q; got %v", want, names)
		}
	}
}

// TestStatsFuelAndPeakMem: the unified Stats surfaces the fuel and memory
// counters, and the process-wide registry accumulates them.
func TestStatsFuelAndPeakMem(t *testing.T) {
	db := obsDB(t, 4000)
	res, err := db.Query("SELECT COUNT(*) FROM t WHERE a < 1000000", wasmdb.WithFuel(100_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FuelUsed <= 0 {
		t.Errorf("FuelUsed = %d on a metered query", res.Stats.FuelUsed)
	}
	if res.Stats.PeakMemBytes == 0 {
		t.Error("PeakMemBytes = 0")
	}
	dump := db.Metrics().Dump()
	for _, want := range []string{
		obs.MetricFuelConsumed, obs.MetricPeakHeapPages, obs.MetricMorselLatency,
		obs.MetricCompiles + ".liftoff", obs.MetricQueries + "." + wasmdb.BackendWasm.String(),
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}

// TestFaultpointHitsAreTraced: every evaluation of an armed fault point
// must leave an audit record — a point event on the query trace and a
// per-point counter — even when nothing is injected.
func TestFaultpointHitsAreTraced(t *testing.T) {
	db := obsDB(t, 1000)
	faultpoint.Enable("core-morsel", func(int) error { return nil })
	defer faultpoint.Disable("core-morsel")

	before := obs.Default.Counter(obs.MetricFaultpointHits + ".core-morsel").Value()
	tr := wasmdb.NewTrace()
	if _, err := db.Query("SELECT COUNT(*) FROM t", wasmdb.WithTrace(tr)); err != nil {
		t.Fatal(err)
	}
	var sawPoint bool
	for _, ev := range tr.Events() {
		if ev.Name != obs.EvFaultpoint {
			continue
		}
		for _, a := range ev.Args {
			if a.Key == "point" && a.Str == "core-morsel" {
				sawPoint = true
			}
		}
	}
	if !sawPoint {
		t.Errorf("no faultpoint event for core-morsel on the trace; events: %+v", tr.Events())
	}
	if after := obs.Default.Counter(obs.MetricFaultpointHits + ".core-morsel").Value(); after <= before {
		t.Errorf("faultpoint hit counter did not advance: %d -> %d", before, after)
	}
}
