// Package wasmdb is a main-memory SQL engine that compiles query plans to
// WebAssembly and delegates JIT compilation, optimization, and adaptive
// execution to an embedded two-tier engine — a from-scratch reproduction of
//
//	Haffner & Dittrich: "A Simplified Architecture for Fast, Adaptive
//	Compilation and Execution of SQL Queries" (EDBT 2023).
//
// Queries run on one of four backends sharing the same parser, binder, and
// planner:
//
//   - BackendWasm (the paper's architecture): data-centric compilation to
//     Wasm with ad-hoc generated, monomorphic library code, executed
//     adaptively (fast baseline tier first, optimizing tier swapped in
//     morsel-wise as background compilation finishes);
//   - BackendHyperLike: the HyPer-style comparison point — data-centric
//     Wasm, but with type-agnostic library hash tables, callback sorting,
//     predicated selection, and an LLVM-grade (slow) optimizing pipeline;
//   - BackendVectorized: the MonetDB/X100-style comparison point —
//     interpretation over pre-compiled generic vector kernels with
//     selection vectors (zero per-query compilation);
//   - BackendVolcano: tuple-at-a-time iterators with boxed values.
package wasmdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"wasmdb/internal/autopilot"
	"wasmdb/internal/catalog"
	"wasmdb/internal/core"
	"wasmdb/internal/engine"
	"wasmdb/internal/obs"
	"wasmdb/internal/plan"
	"wasmdb/internal/plancache"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/tpch"
	"wasmdb/internal/types"
	"wasmdb/internal/vectorized"
	"wasmdb/internal/volcano"
)

// Backend selects a query execution architecture.
type Backend int

// Available backends.
const (
	// BackendWasm compiles to WebAssembly and executes adaptively
	// (Liftoff-tier immediately, TurboFan-tier swapped in mid-query).
	BackendWasm Backend = iota
	// BackendWasmLiftoff forces baseline-tier-only execution.
	BackendWasmLiftoff
	// BackendWasmTurbofan compiles fully with the optimizing tier before
	// executing.
	BackendWasmTurbofan
	// BackendHyperLike is the HyPer-style adaptive baseline.
	BackendHyperLike
	// BackendVectorized is the DuckDB/X100-style baseline.
	BackendVectorized
	// BackendVolcano is the PostgreSQL-style iterator baseline.
	BackendVolcano
	// BackendAuto lets the autopilot choose per query: interpret
	// (vectorized) versus compile (liftoff-only versus adaptive tier-up),
	// and the worker-pool size — from the planner's cardinality estimates,
	// corrected on warm plan-cache hits by the execution feedback recorded
	// for the query's fingerprint. See WithAutoTuning.
	BackendAuto
)

func (b Backend) String() string {
	switch b {
	case BackendWasm:
		return "wasm-adaptive"
	case BackendWasmLiftoff:
		return "wasm-liftoff"
	case BackendWasmTurbofan:
		return "wasm-turbofan"
	case BackendHyperLike:
		return "hyper-like"
	case BackendVectorized:
		return "vectorized"
	case BackendVolcano:
		return "volcano"
	case BackendAuto:
		return "auto"
	}
	return "unknown"
}

// hyperOptRounds models LLVM-grade optimization cost for the HyPer-like
// backend (cf. engine.Config.OptRounds).
const hyperOptRounds = 10

// DB is an in-memory database.
type DB struct {
	// mu is a readers-writer lock: queries (including prepared executions)
	// share it, DDL and data loads take it exclusively. Concurrent identical
	// queries therefore really race on the plan cache, which collapses them
	// into one compilation.
	mu     sync.RWMutex
	cat    *catalog.Catalog
	pcache *plancache.Cache
}

// Open creates an empty database.
func Open() *DB {
	return &DB{cat: catalog.New(), pcache: plancache.New(0, 0)}
}

// LoadTPCH populates the database with TPC-H tables at the given scale
// factor (deterministic for a fixed seed).
func (db *DB) LoadTPCH(scaleFactor float64, seed int64) error {
	cat, err := tpch.Generate(scaleFactor, seed)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, name := range cat.Names() {
		t, _ := cat.Table(name)
		if err := db.cat.Add(t); err != nil {
			return err
		}
	}
	db.pcache.Flush()
	return nil
}

// TPCHQuery returns the SQL text of a reproduced TPC-H query ("Q1", "Q3",
// "Q6", "Q12", "Q14").
func TPCHQuery(id string) (string, bool) {
	q, ok := tpch.Queries[id]
	return q, ok
}

// Exec runs a statement without a result set (CREATE TABLE, INSERT).
func (db *DB) Exec(src string) error {
	st, err := sql.Parse(src)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	switch x := st.(type) {
	case *sql.CreateTableStmt:
		var defs []catalog.ColumnDef
		for _, c := range x.Columns {
			defs = append(defs, catalog.ColumnDef{Name: c.Name, Type: c.Type})
		}
		if _, err := db.cat.Create(x.Name, defs); err != nil {
			return err
		}
		// DDL invalidates every cached plan: fingerprints embed the schema
		// version, so stale entries could never hit again — flushing just
		// frees their code immediately.
		db.pcache.Flush()
		return nil
	case *sql.InsertStmt:
		return db.execInsert(x)
	case *sql.SelectStmt:
		return fmt.Errorf("wasmdb: use Query for SELECT statements")
	}
	return fmt.Errorf("wasmdb: unsupported statement")
}

func (db *DB) execInsert(x *sql.InsertStmt) error {
	tbl, err := db.cat.Table(x.Table)
	if err != nil {
		return err
	}
	for _, row := range x.Rows {
		if len(row) != len(tbl.Columns) {
			return fmt.Errorf("wasmdb: INSERT expects %d values, got %d", len(tbl.Columns), len(row))
		}
		vals := make([]types.Value, len(row))
		for i, e := range row {
			v, err := literalValue(e, tbl.Columns[i].Type)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := tbl.AppendRow(vals...); err != nil {
			return err
		}
	}
	return nil
}

func literalValue(e sql.Expr, t types.Type) (types.Value, error) {
	switch x := e.(type) {
	case *sql.IntLit:
		switch t.Kind {
		case types.Int32:
			return types.NewInt32(int32(x.V)), nil
		case types.Int64:
			return types.NewInt64(x.V), nil
		case types.Float64:
			return types.NewFloat64(float64(x.V)), nil
		case types.Decimal:
			return types.NewDecimal(x.V*types.Pow10(t.Scale), t.Prec, t.Scale), nil
		}
	case *sql.FloatLit:
		if t.Kind == types.Float64 {
			return types.NewFloat64(x.V), nil
		}
	case *sql.NumericLit:
		switch t.Kind {
		case types.Float64:
			raw, err := types.ParseDecimal(x.Text, 15)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewFloat64(float64(raw) / 1e15), nil
		case types.Decimal:
			raw, err := types.ParseDecimal(x.Text, t.Scale)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewDecimal(raw, t.Prec, t.Scale), nil
		}
	case *sql.StringLit:
		if t.Kind == types.Char {
			return types.NewChar(x.V, t.Length), nil
		}
	case *sql.BoolLit:
		if t.Kind == types.Bool {
			return types.NewBool(x.V), nil
		}
	case *sql.DateLit:
		if t.Kind == types.Date {
			return types.NewDate(x.Days), nil
		}
	}
	return types.Value{}, fmt.Errorf("wasmdb: literal incompatible with column type %s", t)
}

// Typed guardrail errors. Match with errors.Is against errors returned from
// Query/QueryContext.
var (
	// ErrFuelExhausted reports that a query exceeded its WithFuel budget.
	ErrFuelExhausted = engine.ErrFuelExhausted
	// ErrMemoryLimit reports that a query exceeded its WithMemoryLimit heap
	// budget.
	ErrMemoryLimit = engine.ErrMemoryLimit
)

// Option configures a Query call.
type Option func(*queryOpts)

type queryOpts struct {
	backend      Backend
	morselRows   int
	wait         bool
	timeout      time.Duration
	fuel         int64
	memBudget    uint32
	trace        *obs.Trace
	parallelism  int
	planCacheOff bool
	scheduler    *core.Scheduler
	requestID    string
	onRecord     func(QueryLogRecord)
}

// Trace is a query-scoped recording of timed spans (parse, compile tiers,
// per-pipeline execution), point events (tier-up, memory growth, fuel
// checkpoints), and counters. Create with NewTrace, attach with WithTrace,
// and export with its WriteTraceEvents method (Chrome trace_event JSON,
// viewable in Perfetto or chrome://tracing).
type Trace = obs.Trace

// NewTrace creates an empty query trace.
func NewTrace() *Trace { return obs.NewTrace() }

// Metrics is the process-wide metrics registry: monotonic counters, gauges,
// and latency histograms accumulated across all queries.
type Metrics = obs.Registry

// Metrics returns the process-wide metrics registry shared by every DB in
// the process (queries by backend, compiles by tier, tier-up latency, fuel
// consumed, peak heap pages, morsel latency). Render with its Dump method.
func (db *DB) Metrics() *Metrics { return obs.Default }

// WriteTraceEvents serializes one or more query traces as Chrome
// trace_event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each trace renders as its own labeled lane.
func WriteTraceEvents(w io.Writer, traces ...*Trace) error {
	return obs.WriteTraceEvents(w, traces...)
}

// WithBackend selects the execution backend (default BackendWasm).
func WithBackend(b Backend) Option { return func(o *queryOpts) { o.backend = b } }

// WithAutoTuning is WithBackend(BackendAuto): the engine picks the
// execution strategy per query — interpretation for queries too small to
// amortize compilation, baseline-only compilation for the mid band,
// adaptive tier-up plus a sized worker pool for large ones. The decision is
// deterministic given the query shape, the catalog statistics, and the
// feedback recorded for the shape's plan-cache fingerprint; Stats.Auto and
// EXPLAIN ANALYZE report what was chosen and why. An explicit
// WithParallelism overrides the worker half of the decision.
func WithAutoTuning() Option { return func(o *queryOpts) { o.backend = BackendAuto } }

// WithMorselRows overrides the morsel size for the Wasm backends.
func WithMorselRows(n int) Option { return func(o *queryOpts) { o.morselRows = n } }

// WithWaitOptimized blocks execution until background optimization
// completes — useful when benchmarking pure optimized-tier throughput.
func WithWaitOptimized() Option { return func(o *queryOpts) { o.wait = true } }

// WithTimeout bounds the query's wall-clock time. On expiry the query stops
// — even mid-morsel inside generated code — and returns an error matching
// context.DeadlineExceeded.
func WithTimeout(d time.Duration) Option { return func(o *queryOpts) { o.timeout = d } }

// WithFuel bounds the query to n units of guest execution (one unit per
// function entry and per taken loop back-edge). Exhaustion returns an error
// matching ErrFuelExhausted. Applies to the Wasm backends.
func WithFuel(n int64) Option { return func(o *queryOpts) { o.fuel = n } }

// WithParallelism runs the query's morsel loops on a pool of n workers, each
// owning a private instance and linear memory created from the shared
// compiled module (n <= 0 means GOMAXPROCS). Scans, keyless aggregation,
// single-level GROUP BY over a scan, and ORDER BY over a scan parallelize:
// per-worker partial state (result buffers, aggregate globals, group hash
// tables, sorted runs) is merged by the host at pipeline barriers.
// Pipelines whose state the host cannot merge — hash-join builds,
// library-style tables and sorts, float SUM/group-key orderings — run
// serially; the trace and Stats record the fallback reason. Applies to the
// Wasm backends; result row order may differ from serial execution for
// unordered scan and group-by queries.
func WithParallelism(n int) Option {
	return func(o *queryOpts) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		o.parallelism = n
	}
}

// Scheduler is a shared global morsel worker-slot pool: attach one (via
// WithScheduler) to every query of a concurrent workload and intra-query
// worker pools are multiplexed across queries with fair time-slicing —
// WithParallelism becomes a request, the scheduler's fair share under the
// current load decides the grant, and slots of long-running queries are
// revoked at morsel boundaries when newer queries arrive. A query denied
// even one extra worker runs serially with Stats.SerialFallback =
// "worker-slots-exhausted". A Scheduler is safe for concurrent use.
type Scheduler = core.Scheduler

// NewScheduler creates a worker-slot pool of the given size (<= 0 means
// GOMAXPROCS). Slots count extra workers beyond each query's own goroutine.
func NewScheduler(slots int) *Scheduler { return core.NewScheduler(slots) }

// WithScheduler places the query's morsel workers under the shared global
// scheduler: the effective pool size becomes min(WithParallelism request,
// the scheduler's fair-share grant). Applies to the Wasm backends.
func WithScheduler(s *Scheduler) Option { return func(o *queryOpts) { o.scheduler = s } }

// WithTrace records the query's full execution timeline — phase spans,
// tier-up events, memory growth, fuel checkpoints — into tr. The query
// additionally waits for background optimization to settle before
// returning (without changing adaptive behavior during execution), so the
// tier-up timeline in tr is complete.
func WithTrace(tr *Trace) Option { return func(o *queryOpts) { o.trace = tr } }

// QueryLogRecord is one query's structured log record: identity (SQL, query
// hash, plan fingerprint, request ID), the adaptive timeline (backend, final
// dispatch tier, tier-ups with morsel indices, plan-cache outcome),
// parallelism grant and serial-fallback reason, resource use (fuel, peak
// memory, rows), and the parse→plan→compile→execute latency breakdown. It
// serializes as one JSON object (see obs.NewWriterSink for the JSON-lines
// sink the server uses).
type QueryLogRecord = obs.QueryLogRecord

// FlightRecorder is a bounded ring of recently captured queries — every
// error, every slow query, and a 1-in-N sample — dumpable as Chrome
// trace_event JSON. See obs.NewFlightRecorder.
type FlightRecorder = obs.FlightRecorder

// NewFlightRecorder creates a flight recorder holding up to capacity entries
// and sampling one in sampleEvery ordinary queries (zero values select 256
// and "no sampling" respectively).
func NewFlightRecorder(capacity, sampleEvery int) *FlightRecorder {
	return obs.NewFlightRecorder(capacity, sampleEvery)
}

// WithQueryLog invokes fn with the query's structured log record after
// execution finishes — on success and on error alike (the record's Error
// field distinguishes them). fn runs synchronously on the query path, so it
// should only hand the record off (obs.QueryLog is the non-blocking
// asynchronous consumer the server uses).
func WithQueryLog(fn func(QueryLogRecord)) Option {
	return func(o *queryOpts) { o.onRecord = fn }
}

// WithRequestID tags the query's trace and log record with the serving-layer
// request ID that carried it.
func WithRequestID(id string) Option { return func(o *queryOpts) { o.requestID = id } }

// WithPlanCache enables or disables the compiled-query plan cache for this
// query (default on). With the cache on, value-carrying literals (comparison
// operands, LIKE needles, LIMIT counts) are hoisted into a writable
// parameter region of linear memory, so queries differing only in those
// literals share one compiled module — and its accumulated TurboFan tier-up.
// With the cache off, literals compile as constants and nothing is cached or
// reused. Applies to the Wasm backends.
func WithPlanCache(enabled bool) Option {
	return func(o *queryOpts) { o.planCacheOff = !enabled }
}

// WithMemoryLimit caps the query's linear-memory heap at roughly maxBytes
// (rounded up to whole 64 KiB Wasm pages). A query that tries to grow
// beyond the cap returns an error matching ErrMemoryLimit. Applies to the
// Wasm backends.
func WithMemoryLimit(maxBytes uint64) Option {
	return func(o *queryOpts) {
		pages := (maxBytes + 64*1024 - 1) / (64 * 1024)
		if pages == 0 {
			pages = 1
		}
		if pages > 65536 {
			pages = 65536
		}
		o.memBudget = uint32(pages)
	}
}

// Stats describes where query time went.
type Stats struct {
	Backend Backend
	// Translate is SQL→plan→Wasm code generation time.
	Translate time.Duration
	// Liftoff and Turbofan are the engine's compile times for each tier
	// (zero for backends that do not compile).
	Liftoff  time.Duration
	Turbofan time.Duration
	// Execute is pipeline execution time (includes instantiation).
	Execute time.Duration
	// MorselsLiftoff / MorselsTurbofan count morsel calls served by each
	// tier under adaptive execution.
	MorselsLiftoff  uint64
	MorselsTurbofan uint64
	// TurbofanFailed counts functions whose background optimizing compile
	// failed; the query completed on baseline code for those functions.
	TurbofanFailed int
	// ModuleBytes is the size of the generated Wasm module.
	ModuleBytes int
	// FuelUsed is the fuel consumed against a WithFuel budget (0 when none
	// was set; the implicit metering a cancellable context arms is internal
	// bookkeeping and is not reported).
	FuelUsed int64
	// PeakMemBytes is the high-water linear-memory size of the query, summed
	// across all workers under parallel execution.
	PeakMemBytes uint64
	// Workers is the morsel worker-pool size the query ran with (1 when
	// serial; see WithParallelism).
	Workers int
	// PipelinesParallel and PipelinesSerial count morsel-driven pipelines by
	// how they executed. PipelinesSerial > 0 alone does not mean a fallback:
	// under parallel grouped aggregation or sort the post-barrier output
	// pipelines legitimately run serially on the primary worker over merged
	// state. A fallback is indicated by SerialFallback being non-empty.
	PipelinesParallel int
	PipelinesSerial   int
	// SerialFallback names why a WithParallelism request ran serially
	// ("limit", "float-sum-order", "unmergeable-pipeline-state", ...) and is
	// empty when the query parallelized or never asked to.
	SerialFallback string
	// GroupsMerged counts the distinct groups the host folded at the
	// parallel group-by barrier (0 when no group merge ran).
	GroupsMerged int
	// JoinPartitionsMerged counts the secondary-worker build partitions
	// drained at parallel join barriers (0 when no join merge ran).
	JoinPartitionsMerged int
	// Auto is the autopilot's resolved choice for a BackendAuto query
	// ("vectorized", "liftoff", "adaptive"; empty for manual backends), and
	// AutoReason its one-line rationale.
	Auto       string
	AutoReason string
}

// statsFromTrace derives the public Stats from the query trace — the single
// source of truth all three stats surfaces (wasmdb.Stats, core.ExecStats,
// engine.CompileStats) now agree on.
func statsFromTrace(tr *obs.Trace, b Backend) Stats {
	s := Stats{
		Backend: b,
		Translate: tr.Dur(obs.SpanParse) + tr.Dur(obs.SpanSema) +
			tr.Dur(obs.SpanPlan) + tr.Dur(obs.SpanCodegen),
		Liftoff:  tr.Dur(obs.SpanLiftoff),
		Turbofan: tr.Dur(obs.SpanTurbofan),
		Execute: tr.Dur(obs.SpanRewire) + tr.Dur(obs.SpanInstantiate) +
			tr.Dur(obs.SpanExecute),
		MorselsLiftoff:       uint64(tr.Value(obs.CtrMorselsLiftoff)),
		MorselsTurbofan:      uint64(tr.Value(obs.CtrMorselsTurbofan)),
		TurbofanFailed:       int(tr.Value(obs.CtrTurbofanFailed)),
		ModuleBytes:          int(tr.Value(obs.CtrModuleBytes)),
		FuelUsed:             tr.Value(obs.CtrFuelUsed),
		PeakMemBytes:         uint64(tr.Value(obs.CtrPeakMemBytes)),
		Workers:              int(tr.Value(obs.CtrWorkers)),
		PipelinesParallel:    int(tr.Value(obs.CtrPipelinesParallel)),
		PipelinesSerial:      int(tr.Value(obs.CtrPipelinesSerial)),
		GroupsMerged:         int(tr.Value(obs.CtrGroupsMerged)),
		JoinPartitionsMerged: int(tr.Value(obs.CtrJoinPartitionsMerged)),
	}
	for _, e := range tr.Events() {
		switch e.Name {
		case obs.EvSerialFallback:
			for _, a := range e.Args {
				if a.Key == "reason" {
					s.SerialFallback = a.Str
				}
			}
		case obs.EvAutopilot:
			for _, a := range e.Args {
				switch a.Key {
				case "choice":
					s.Auto = a.Str
				case "reason":
					s.AutoReason = a.Str
				}
			}
		}
	}
	return s
}

// Result is a decoded result set.
type Result struct {
	Columns []string
	rows    [][]types.Value
	Stats   Stats
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return len(r.rows) }

// Row renders row i as strings.
func (r *Result) Row(i int) []string {
	out := make([]string, len(r.rows[i]))
	for c, v := range r.rows[i] {
		out[c] = v.String()
	}
	return out
}

// Value returns the raw value at (row, col): int64/float64/string/bool.
func (r *Result) Value(row, col int) any {
	v := r.rows[row][col]
	switch v.Type.Kind {
	case types.Bool:
		return v.I != 0
	case types.Float64:
		return v.F
	case types.Char:
		return v.S
	case types.Decimal:
		return float64(v.I) / float64(types.Pow10(v.Type.Scale))
	case types.Date:
		return types.FormatDate(int32(v.I))
	default:
		return v.I
	}
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var sb strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(r.rows))
	for i := range r.rows {
		rendered[i] = r.Row(i)
		for c, s := range rendered[i] {
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteString("\n")
	for i := range r.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	sb.WriteString("\n")
	for _, row := range rendered {
		for c, s := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[c], s)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Query plans and executes a SELECT statement.
func (db *DB) Query(src string, opts ...Option) (*Result, error) {
	return db.QueryContext(context.Background(), src, opts...)
}

// QueryContext plans and executes a SELECT statement under ctx: when the
// context is canceled or its deadline expires, execution stops — including
// inside a running morsel of generated code — and the returned error matches
// ctx.Err(). WithTimeout layers a per-query deadline on top of ctx.
func (db *DB) QueryContext(ctx context.Context, src string, opts ...Option) (*Result, error) {
	return db.queryContext(ctx, src, nil, opts...)
}

// queryContext is the shared execution path behind Query and Stmt.Query.
// args carries the values for the statement's explicit ? placeholders (nil
// for ad-hoc queries, which must not contain placeholders).
//
// It wraps runQuery with the always-on telemetry: every query — success or
// error — records into a trace (the caller's via WithTrace, or an internal
// one), lands one observation in the query_latency_ns{backend,tier,cache}
// histogram, and yields a structured QueryLogRecord to the WithQueryLog
// callback. The telemetry cost off the serving path is one trace (already
// the case before this layer — Stats are derived from it) plus one labeled
// histogram lookup, so it stays on unconditionally.
func (db *DB) queryContext(ctx context.Context, src string, args []types.Value, opts ...Option) (*Result, error) {
	o := queryOpts{}
	for _, f := range opts {
		f(&o)
	}
	tr := o.trace
	if tr == nil {
		tr = obs.NewTrace()
	}
	if tr.Label == "" {
		tr.Label = src
	}
	if o.requestID != "" {
		tr.RequestID = o.requestID
	}

	start := time.Now()
	res, err := db.runQuery(ctx, src, args, &o, tr)
	total := time.Since(start)

	rec := obs.RecordFromTrace(tr)
	rec.SQL = src
	rec.QueryHash = obs.HashQuery(src)
	rec.Backend = o.backend.String()
	rec.TotalNs = total.Nanoseconds()
	if res != nil {
		rec.Rows = res.NumRows()
	}
	if err != nil {
		rec.Error = err.Error()
	}
	cache := rec.PlanCache
	if cache == "" {
		cache = "off"
	}
	obs.Default.HistogramWith(obs.MetricQueryLatency,
		obs.Label{Key: "backend", Val: rec.Backend},
		obs.Label{Key: "tier", Val: rec.Tier},
		obs.Label{Key: "cache", Val: cache},
	).Observe(total.Nanoseconds())
	if o.onRecord != nil {
		o.onRecord(rec)
	}
	return res, err
}

// runQuery is the execution path proper: parse → analyze → bind → plan →
// compile (through the plan cache) → execute. The per-morsel hot path stays
// cheap: one atomic add per morsel, spans only at phase granularity.
func (db *DB) runQuery(ctx context.Context, src string, args []types.Value, o *queryOpts, tr *obs.Trace) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("wasmdb: query canceled: %w", err)
	}

	sp := tr.Begin(obs.SpanParse)
	stmt, err := sql.ParseSelect(src)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = tr.Begin(obs.SpanSema)
	q, err := sema.Analyze(stmt, db.cat)
	sp.End()
	if err != nil {
		return nil, err
	}

	// Bind explicit ? placeholders. An ad-hoc query must not contain any;
	// prepared execution must supply exactly one value per placeholder. An
	// explicit LIMIT ? resolves on the host before planning — the plan's
	// limit node depends on its presence.
	if args == nil && q.NumParams > 0 {
		return nil, fmt.Errorf("wasmdb: query has %d placeholder(s); use Prepare", q.NumParams)
	}
	if args != nil {
		if len(args) != q.NumParams {
			return nil, fmt.Errorf("wasmdb: statement expects %d argument(s), got %d", q.NumParams, len(args))
		}
		if q.LimitParam >= 0 {
			n := args[q.LimitParam].I
			if n < 0 {
				return nil, fmt.Errorf("wasmdb: negative LIMIT argument %d", n)
			}
			q.Limit = n
		}
	}

	wasmBackend := o.backend != BackendVolcano && o.backend != BackendVectorized
	useCache := wasmBackend && !o.planCacheOff

	// With the plan cache on, hoist value-carrying literals into the
	// parameter vector so same-shaped queries share one compiled module.
	// Otherwise fold the placeholder arguments back into constants — the
	// baselines and cache-off runs execute the literal query, which keeps
	// them usable as differential oracles for the parameterized path.
	var params []types.Value
	if useCache {
		params = make([]types.Value, 0, q.TotalParams)
		params = append(params, args...)
		params = append(params, sema.Parameterize(q)...)
	} else if q.NumParams > 0 {
		sema.SubstituteParams(q, args)
	}

	sp = tr.Begin(obs.SpanPlan)
	p, err := plan.Build(q)
	sp.End()
	if err != nil {
		return nil, err
	}

	// Resolve BackendAuto into a concrete strategy. The decision runs after
	// placeholder binding (an explicit LIMIT ? is already resolved into
	// q.Limit and the plan's limit node — deciding earlier would repeat PR
	// 5's unbound-LimitSlot misclassification) and is a pure function of
	// the plan profile, the stored feedback, and the knobs, so it is
	// deterministic per (fingerprint, feedback, catalog stats). The
	// feedback key is the adaptive-tier fingerprint regardless of the tier
	// chosen: liftoff-only and adaptive decisions share one slot and one
	// cached module, so a warm hit can correct a wrong cold choice without
	// recompiling.
	backend := o.backend
	var dec autopilot.Decision
	autoKey := ""
	if o.backend == BackendAuto {
		autoKey = core.Fingerprint(q, p, db.cat.Version(), core.Style{}, engine.TierAdaptive, 0)
		var fbp *plancache.Feedback
		if fb, ok := db.pcache.Feedback(autoKey); ok {
			fbp = &fb
		}
		knobs := autopilot.DefaultKnobs()
		if n := runtime.GOMAXPROCS(0); knobs.MaxWorkers > n {
			knobs.MaxWorkers = n
		}
		dec = autopilot.Decide(autopilot.ProfilePlan(p), fbp, knobs)
		if o.parallelism > 0 {
			// An explicit WithParallelism overrides the worker half of the
			// decision; the backend half still applies.
			dec.Workers = o.parallelism
		}
		dec.Record(tr)
		if dec.Choice == autopilot.ChoiceVectorized || dec.Choice == autopilot.ChoiceVolcano {
			backend = BackendVectorized
			if dec.Choice == autopilot.ChoiceVolcano {
				backend = BackendVolcano
			}
			if useCache {
				// The fingerprint was computed on the parameterized query (a
				// stable feedback key); the interpreter executes the literal
				// one — re-derive it exactly as the param-region overflow
				// path below does.
				if q, err = sema.Analyze(stmt, db.cat); err != nil {
					return nil, err
				}
				if q.LimitParam >= 0 {
					q.Limit = args[q.LimitParam].I
				}
				if q.NumParams > 0 {
					sema.SubstituteParams(q, args)
				}
				if p, err = plan.Build(q); err != nil {
					return nil, err
				}
				params = nil
			}
		} else {
			backend = BackendWasm
			if dec.Workers > 1 {
				o.parallelism = dec.Workers
			}
		}
	}

	res := &Result{}
	for _, oc := range q.Select {
		res.Columns = append(res.Columns, oc.Name)
	}

	switch backend {
	case BackendVolcano:
		sp = tr.Begin(obs.SpanExecute)
		_, rows, err := volcano.Run(q, p)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.rows = rows
	case BackendVectorized:
		sp = tr.Begin(obs.SpanExecute)
		_, rows, _, err := vectorized.Run(q, p)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.rows = rows
	default:
		style := core.Style{}
		cfg := engine.Config{}
		switch backend {
		case BackendWasm:
			cfg.Tier = engine.TierAdaptive
		case BackendWasmLiftoff:
			cfg.Tier = engine.TierLiftoff
		case BackendWasmTurbofan:
			cfg.Tier = engine.TierTurbofan
		case BackendHyperLike:
			cfg.Tier = engine.TierAdaptive
			cfg.OptRounds = hyperOptRounds
			style = core.Style{LibraryHT: true, LibrarySort: true, PredicatedSelection: true}
		}
		// A liftoff-only auto decision keeps the module's adaptive identity
		// (same fingerprint, same cache entry as an adaptive decision) but
		// vetoes its background optimization; an adaptive decision — cold or
		// a later feedback-corrected warm hit on the same entry — kicks it
		// via EnsureOptimizing below.
		autoLiftoff := autoKey != "" && dec.Choice == autopilot.ChoiceLiftoff
		if autoLiftoff {
			cfg.TierPolicy = func(int, int) bool { return false }
		}
		eng := engine.New(cfg)
		var cq *core.CompiledQuery
		var mod *engine.Module
		if useCache {
			fp := core.Fingerprint(q, p, db.cat.Version(), style, cfg.Tier, cfg.OptRounds)
			ent, hit, cerr := db.pcache.GetOrCompile(fp, func() (*core.CompiledQuery, *engine.Module, error) {
				csp := tr.Begin(obs.SpanCodegen)
				c, err := core.CompileStyled(q, p, style)
				csp.End()
				if err != nil {
					return nil, nil, err
				}
				m, err := eng.CompileTraced(c.Bin, tr)
				if err != nil {
					return nil, nil, err
				}
				return c, m, nil
			})
			switch {
			case cerr == nil:
				cq, mod = ent.CQ, ent.Mod
				result, tier := "miss", "liftoff"
				if hit {
					result = "hit"
				}
				if mod.Optimized() {
					tier = "turbofan"
				}
				tr.Event(obs.EvPlanCache,
					obs.S("result", result),
					obs.S("fingerprint", fp[:12]),
					obs.S("tier", tier))
			case errors.Is(cerr, core.ErrParamRegionOverflow):
				// More literal bytes than the parameter region holds:
				// re-derive the literal query and compile it below, uncached.
				if q, err = sema.Analyze(stmt, db.cat); err != nil {
					return nil, err
				}
				if q.LimitParam >= 0 {
					q.Limit = args[q.LimitParam].I
				}
				if q.NumParams > 0 {
					sema.SubstituteParams(q, args)
				}
				if p, err = plan.Build(q); err != nil {
					return nil, err
				}
				params = nil
			default:
				return nil, cerr
			}
		}
		if cq == nil && mod == nil {
			sp = tr.Begin(obs.SpanCodegen)
			cq, err = core.CompileStyled(q, p, style)
			sp.End()
			if err != nil {
				return nil, err
			}
		}
		if mod != nil && cfg.Tier == engine.TierAdaptive && !autoLiftoff {
			// A warm hit on a module whose earlier liftoff-only compile
			// deferred tier-up starts it now; modules already optimizing (or
			// optimized) ignore the kick.
			mod.EnsureOptimizing()
		}
		out, _, err := core.Execute(cq, q, eng, core.ExecOptions{
			MorselRows:        o.morselRows,
			WaitOptimized:     o.wait,
			Ctx:               ctx,
			Fuel:              o.fuel,
			MemoryBudgetPages: o.memBudget,
			Parallelism:       o.parallelism,
			Scheduler:         o.scheduler,
			Trace:             tr,
			// A cache-managed module skips the per-query compile entirely.
			Precompiled: mod,
			Params:      params,
			// A caller-supplied trace gets the complete tier-up timeline.
			DrainBackground: o.trace != nil,
		})
		if err != nil {
			return nil, err
		}
		res.rows = out.Rows
	}
	res.Stats = statsFromTrace(tr, o.backend)
	obs.Default.Counter(obs.MetricQueries + "." + o.backend.String()).Add(1)
	if autoKey != "" {
		// Close the feedback loop: store what actually happened under this
		// fingerprint, so the next decision for the shape corrects itself.
		// The write goes through the cache's own lock — concurrent warm hits
		// replace the slot whole, never tear it.
		fb := plancache.Feedback{
			Rows:           int64(len(res.rows)),
			ExecNs:         tr.Dur(obs.SpanExecute).Nanoseconds(),
			Morsels:        int64(res.Stats.MorselsLiftoff + res.Stats.MorselsTurbofan),
			TierUpMorsel:   -1,
			Workers:        res.Stats.Workers,
			SerialFallback: res.Stats.SerialFallback,
			Choice:         dec.Choice.String(),
		}
		fb.FallbackIntrinsic = core.FallbackIntrinsic(fb.SerialFallback)
		if fb.Morsels > 0 {
			fb.MorselNs = fb.ExecNs / fb.Morsels
		}
		for _, ev := range tr.Events() {
			if ev.Name == obs.EvTierSwitch && fb.TierUpMorsel < 0 {
				for _, a := range ev.Args {
					if a.Key == "morsel" {
						fb.TierUpMorsel = a.Val
					}
				}
			}
		}
		db.pcache.RecordFeedback(autoKey, fb)
	}
	return res, nil
}

// analyze parses and binds a SELECT without running it. Caller holds db.mu.
func (db *DB) analyze(src string) (*sema.Query, error) {
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return sema.Analyze(stmt, db.cat)
}

// Explain returns the physical plan and its pipeline dissection.
func (db *DB) Explain(src string) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		return "", err
	}
	q, err := sema.Analyze(stmt, db.cat)
	if err != nil {
		return "", err
	}
	p, err := plan.Build(q)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(plan.Describe(p))
	sb.WriteString("\npipelines (topological order):\n")
	for i, pl := range plan.Pipelines(p) {
		fmt.Fprintf(&sb, "  %d: %s\n", i+1, pl)
	}
	return sb.String(), nil
}

// ExplainWAT returns the WebAssembly (text form) generated for a query —
// the module the engine JIT-compiles, including the ad-hoc generated
// library code (hash tables, quicksort, string matchers).
func (db *DB) ExplainWAT(src string) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		return "", err
	}
	q, err := sema.Analyze(stmt, db.cat)
	if err != nil {
		return "", err
	}
	p, err := plan.Build(q)
	if err != nil {
		return "", err
	}
	cq, err := core.Compile(q, p)
	if err != nil {
		return "", err
	}
	return cq.WAT(), nil
}
