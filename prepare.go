package wasmdb

import (
	"context"
	"fmt"
	"math"

	"wasmdb/internal/types"
)

// Stmt is a prepared statement: a SELECT with ? placeholders, validated once
// and executable many times with different arguments. Execution goes through
// the same plan cache as ad-hoc queries — the first Query compiles the
// statement's module, later ones (and ad-hoc queries of the same shape) hit
// the cached compilation and only rewrite the parameter region of linear
// memory. A Stmt is safe for concurrent use.
type Stmt struct {
	db         *DB
	src        string
	numParams  int
	paramTypes []types.Type
}

// Prepare parses and binds a SELECT statement, inferring a type for each ?
// placeholder from the expression it appears in (a placeholder compared
// against a column adopts the column's type; LIMIT ? is a BIGINT).
func (db *DB) Prepare(src string) (*Stmt, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	q, err := db.analyze(src)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, src: src, numParams: q.NumParams, paramTypes: q.ParamTypes}, nil
}

// NumParams returns the number of ? placeholders in the statement.
func (s *Stmt) NumParams() int { return s.numParams }

// Query executes the statement with the given placeholder arguments.
// Accepted Go types per placeholder type: int/int32/int64 for the integer
// and DECIMAL types, float64 for DOUBLE and DECIMAL, string for CHAR, DATE
// ("YYYY-MM-DD") and DECIMAL, bool for BOOLEAN.
func (s *Stmt) Query(args ...any) (*Result, error) {
	return s.QueryContext(context.Background(), args)
}

// QueryContext executes the statement under ctx with the given arguments;
// opts apply as in DB.QueryContext.
func (s *Stmt) QueryContext(ctx context.Context, args []any, opts ...Option) (*Result, error) {
	if len(args) != s.numParams {
		return nil, fmt.Errorf("wasmdb: statement expects %d argument(s), got %d", s.numParams, len(args))
	}
	vals := make([]types.Value, len(args))
	for i, a := range args {
		v, err := bindArg(a, s.paramTypes[i])
		if err != nil {
			return nil, fmt.Errorf("wasmdb: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return s.db.queryContext(ctx, s.src, vals, opts...)
}

// bindArg converts a Go value into a typed engine value for one placeholder.
func bindArg(a any, t types.Type) (types.Value, error) {
	switch t.Kind {
	case types.Int32:
		if n, ok := argInt(a); ok {
			if n < math.MinInt32 || n > math.MaxInt32 {
				return types.Value{}, fmt.Errorf("value %d overflows INTEGER", n)
			}
			return types.NewInt32(int32(n)), nil
		}
	case types.Int64:
		if n, ok := argInt(a); ok {
			return types.NewInt64(n), nil
		}
	case types.Float64:
		switch v := a.(type) {
		case float64:
			return types.NewFloat64(v), nil
		case float32:
			return types.NewFloat64(float64(v)), nil
		}
		if n, ok := argInt(a); ok {
			return types.NewFloat64(float64(n)), nil
		}
	case types.Decimal:
		switch v := a.(type) {
		case string:
			raw, err := types.ParseDecimal(v, t.Scale)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewDecimal(raw, t.Prec, t.Scale), nil
		case float64:
			return types.NewDecimal(int64(math.Round(v*float64(types.Pow10(t.Scale)))), t.Prec, t.Scale), nil
		}
		if n, ok := argInt(a); ok {
			return types.NewDecimal(n*types.Pow10(t.Scale), t.Prec, t.Scale), nil
		}
	case types.Char:
		if s, ok := a.(string); ok {
			if len(s) > t.Length {
				return types.Value{}, fmt.Errorf("string %q longer than CHAR(%d)", s, t.Length)
			}
			return types.NewChar(s, t.Length), nil
		}
	case types.Date:
		if s, ok := a.(string); ok {
			days, err := types.ParseDate(s)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewDate(days), nil
		}
	case types.Bool:
		if b, ok := a.(bool); ok {
			return types.NewBool(b), nil
		}
	}
	return types.Value{}, fmt.Errorf("cannot bind %T to %s", a, t)
}

func argInt(a any) (int64, bool) {
	switch v := a.(type) {
	case int:
		return int64(v), true
	case int32:
		return int64(v), true
	case int64:
		return v, true
	}
	return 0, false
}

// PlanCacheStats is a point-in-time snapshot of the DB's compiled-query
// cache: lookup outcomes since Open, and current occupancy.
type PlanCacheStats struct {
	// Hits counts lookups that reused a cached module (including queries that
	// attached to another query's in-flight compilation).
	Hits int64
	// Misses counts lookups that compiled.
	Misses int64
	// Evictions counts entries dropped by the LRU budget, Invalidations
	// entries dropped by DDL.
	Evictions     int64
	Invalidations int64
	// Entries and CodeBytes describe current occupancy.
	Entries   int
	CodeBytes int64
}

// PlanCacheStats snapshots the plan cache's effectiveness counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	s := db.pcache.Stats()
	return PlanCacheStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Invalidations: s.Invalidations,
		Entries:       s.Entries,
		CodeBytes:     s.CodeBytes,
	}
}

// SetPlanCacheLimits bounds the plan cache to at most maxEntries compiled
// queries and maxBytes of generated module code (values <= 0 select the
// defaults: 128 entries, 64 MiB). Tightening evicts immediately, least
// recently used first.
func (db *DB) SetPlanCacheLimits(maxEntries int, maxBytes int64) {
	db.pcache.SetLimits(maxEntries, maxBytes)
}

// FlushPlanCache drops every cached compilation and returns how many entries
// were dropped.
func (db *DB) FlushPlanCache() int { return db.pcache.Flush() }
