GO ?= go

.PHONY: build test verify fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: compile everything, lint with vet, and run the full
# suite under the race detector (the guardrail watchdog and background
# tier-up are concurrency-heavy paths).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# fuzz the adversarial-module executor for a short budget.
fuzz:
	$(GO) test . -run '^$$' -fuzz FuzzAdversarialModuleExecution -fuzztime 30s
