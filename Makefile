GO ?= go

.PHONY: build test verify fuzz lint-layers bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: compile everything, lint with vet, enforce the
# observability layering invariant, and run the full suite under the race
# detector (the guardrail watchdog, background tier-up, and the parallel
# morsel worker pool — including the fault-injection and cancellation tests
# in internal/core/parallel_test.go — are concurrency-heavy paths).
verify: lint-layers
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# internal/obs must stay at the bottom of the dependency graph: it may
# import nothing from this module, or every layer recording into it would
# risk an import cycle. Fails if any wasmdb-internal import appears.
lint-layers:
	@if grep -n '"wasmdb/' internal/obs/*.go; then \
		echo "lint-layers: internal/obs must not import other wasmdb packages" >&2; \
		exit 1; \
	fi
	@echo "lint-layers: ok (internal/obs imports stdlib only)"

# bench-smoke runs one micro-benchmark per backend at a small scale plus the
# 1/2/4-worker scaling experiment, and validates that the emitted
# BENCH_*.json parse (the bench binary re-reads and unmarshals what it
# wrote).
bench-smoke:
	$(GO) run ./cmd/bench -experiment smoke,scaling -rows 100000 -reps 1 -json
	@rm -f BENCH_smoke.json BENCH_scaling.json

# fuzz the adversarial-module executor for a short budget.
fuzz:
	$(GO) test . -run '^$$' -fuzz FuzzAdversarialModuleExecution -fuzztime 30s
