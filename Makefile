GO ?= go

.PHONY: build test verify fuzz lint-layers bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: compile everything, lint with vet, enforce the
# observability layering invariant, and run the full suite under the race
# detector (the guardrail watchdog, background tier-up, and the parallel
# morsel worker pool — including the fault-injection and cancellation tests
# in internal/core/parallel_test.go — are concurrency-heavy paths).
verify: lint-layers
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# internal/obs must stay at the bottom of the dependency graph: it may
# import nothing from this module, or every layer recording into it would
# risk an import cycle. Fails if any wasmdb-internal import appears.
# internal/plancache sits above core and engine and below the public API:
# it may import only core, engine, and obs, and nothing under core or
# engine may import it back.
lint-layers:
	@if grep -n '"wasmdb/' internal/obs/*.go; then \
		echo "lint-layers: internal/obs must not import other wasmdb packages" >&2; \
		exit 1; \
	fi
	@if grep -rn '"wasmdb/internal/plancache"' internal/core internal/engine; then \
		echo "lint-layers: core/engine must not import internal/plancache (it sits above them)" >&2; \
		exit 1; \
	fi
	@if grep -n '"wasmdb/' internal/plancache/*.go | grep -v 'wasmdb/internal/core"\|wasmdb/internal/engine"\|wasmdb/internal/obs"'; then \
		echo "lint-layers: internal/plancache may import only core, engine, and obs" >&2; \
		exit 1; \
	fi
	@if grep -rn '"wasmdb/internal/server"' internal/core internal/engine internal/plancache; then \
		echo "lint-layers: core/engine/plancache must not import internal/server (it sits above the public API)" >&2; \
		exit 1; \
	fi
	@if grep -n '"wasmdb/' internal/server/*.go | grep -v '_test.go:' | grep -v '"wasmdb"\|wasmdb/internal/obs"\|wasmdb/internal/faultpoint"'; then \
		echo "lint-layers: internal/server may import only the public API (wasmdb), obs, and faultpoint" >&2; \
		exit 1; \
	fi
	@if grep -n '"wasmdb/' internal/autopilot/*.go | grep -v '_test.go:' | grep -v 'wasmdb/internal/plan"\|wasmdb/internal/plancache"\|wasmdb/internal/obs"'; then \
		echo "lint-layers: internal/autopilot may import only plan, plancache, and obs" >&2; \
		exit 1; \
	fi
	@echo "lint-layers: ok (internal/obs imports stdlib only; plancache between core/engine and the API; server above the API; autopilot beside the planner)"

# bench-smoke runs one micro-benchmark per backend at a small scale, the
# 1/2/4-worker scaling experiment, the plan-cache cold/warm experiment, the
# autopilot crossover experiment (small→interpret, large→compile, and the
# feedback-corrected warm decision — fails if auto misses best-in-class by
# >10%), and the concurrent-serving load experiment (throughput/p99/rejection-rate at
# 1/4/8 virtual users against a 2-slot server, plus the telemetry-overhead
# probe, which fails the run above a 5% p50 regression), and validates that
# the emitted BENCH_*.json parse (the bench binary re-reads and unmarshals
# what it wrote). It then asserts the disabled-tracer contract on the morsel
# dispatch path: with no trace attached the telemetry must cost only a nil
# check, so traced-vs-untraced overhead stays ≈0% (≤5% allows timer noise).
bench-smoke:
	$(GO) run ./cmd/bench -experiment smoke,scaling,plancache,serving,auto -rows 100000 -reps 1 -sf 0.01 -json
	@rm -f BENCH_smoke.json BENCH_scaling.json BENCH_plancache.json BENCH_serving.json BENCH_auto.json
	@$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkMorselDispatch(Untraced|Traced)$$' -benchtime 200x -count 3 \
		| awk '/DispatchUntraced/ { if (u==0 || $$3<u) u=$$3 } \
		       /DispatchTraced/   { if (t==0 || $$3<t) t=$$3 } \
		       END { if (u==0 || t==0) { print "bench-smoke: missing morsel-dispatch benchmark output" > "/dev/stderr"; exit 1 } \
		             pct=(t-u)*100.0/u; \
		             printf "bench-smoke: morsel-dispatch tracer overhead %.1f%% (untraced %d ns/op, traced %d ns/op)\n", pct, u, t; \
		             if (pct > 5) { print "bench-smoke: tracer overhead exceeds the ≈0% budget" > "/dev/stderr"; exit 1 } }'

# fuzz the adversarial-module executor for a short budget.
fuzz:
	$(GO) test . -run '^$$' -fuzz FuzzAdversarialModuleExecution -fuzztime 30s
