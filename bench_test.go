package wasmdb_test

import (
	"fmt"
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/experiments"
	"wasmdb/internal/tpch"
	"wasmdb/internal/workload"
)

// One testing.B benchmark per paper table/figure. These run reduced sizes so
// `go test -bench=.` finishes quickly; cmd/bench regenerates the figures at
// full scale with sweeps and per-system series (see DESIGN.md §4).

const benchRows = 200_000

var benchSystems = []string{"mutable", "hyper", "vectorized", "volcano"}

func benchQuery(b *testing.B, cat *catalog.Catalog, src string) {
	b.Helper()
	for _, sys := range benchSystems {
		sys := sys
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunOn(cat, src, sys, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func selCatalog(b *testing.B) *catalog.Catalog {
	b.Helper()
	cat, err := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, IntCols: 2, FloatCols: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return cat
}

// BenchmarkFig6SelectionI32 — Fig. 6a at 50% selectivity (the branching
// worst case).
func BenchmarkFig6SelectionI32(b *testing.B) {
	benchQuery(b, selCatalog(b), "SELECT COUNT(*) FROM t WHERE i0 < 0")
}

// BenchmarkFig6SelectionF64 — Fig. 6b at 50%.
func BenchmarkFig6SelectionF64(b *testing.B) {
	benchQuery(b, selCatalog(b), "SELECT COUNT(*) FROM t WHERE f0 < 0.5")
}

// BenchmarkFig6TwoCondEqual — Fig. 6c at ~71% per condition (mutable's
// worst case per §8.2).
func BenchmarkFig6TwoCondEqual(b *testing.B) {
	c := int64(902_000_000) // ≈ 71% of the int32 domain
	benchQuery(b, selCatalog(b), fmt.Sprintf("SELECT COUNT(*) FROM t WHERE i0 < %d AND i1 < %d", c, c))
}

// BenchmarkFig6TwoCondFixed — Fig. 6d with the second condition at 1%.
func BenchmarkFig6TwoCondFixed(b *testing.B) {
	benchQuery(b, selCatalog(b),
		"SELECT COUNT(*) FROM t WHERE i0 < 0 AND i1 < -2104533975")
}

// BenchmarkFig7GroupRows — Fig. 7a (100 groups).
func BenchmarkFig7GroupRows(b *testing.B) {
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, GroupCols: 1, GroupDistinct: 100, Seed: 2})
	benchQuery(b, cat, "SELECT g0, COUNT(*) FROM t GROUP BY g0")
}

// BenchmarkFig7GroupDistinct — Fig. 7b (100k distinct values).
func BenchmarkFig7GroupDistinct(b *testing.B) {
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, GroupCols: 1, GroupDistinct: 100_000, Seed: 3})
	benchQuery(b, cat, "SELECT g0, COUNT(*) FROM t GROUP BY g0")
}

// BenchmarkFig7GroupAttrs — Fig. 7c (two attributes, ~10k groups).
func BenchmarkFig7GroupAttrs(b *testing.B) {
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, GroupCols: 2, GroupDistinct: 100, Seed: 4})
	benchQuery(b, cat, "SELECT g0, g1, COUNT(*) FROM t GROUP BY g0, g1")
}

// BenchmarkFig7Aggregates — Fig. 7d (four MIN aggregates, branch-free).
func BenchmarkFig7Aggregates(b *testing.B) {
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, IntCols: 4, Seed: 5})
	benchQuery(b, cat, "SELECT MIN(i0), MIN(i1), MIN(i2), MIN(i3) FROM t")
}

// BenchmarkFig8JoinFK — Fig. 8a (foreign-key join).
func BenchmarkFig8JoinFK(b *testing.B) {
	cat, _ := workload.JoinPair(benchRows/4, benchRows, 1, 6)
	benchQuery(b, cat, "SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk")
}

// BenchmarkFig8JoinNM — Fig. 8b (n:m join, selectivity 1e-6).
func BenchmarkFig8JoinNM(b *testing.B) {
	cat, _ := workload.JoinPair(benchRows/2, benchRows/2, 1_000_000, 7)
	benchQuery(b, cat, "SELECT COUNT(*) FROM build, probe WHERE build.nk = probe.nk")
}

// BenchmarkFig9Sort — Fig. 9 (single-key sort).
func BenchmarkFig9Sort(b *testing.B) {
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, IntCols: 2, Seed: 8})
	benchQuery(b, cat, "SELECT i0 FROM t ORDER BY i0 LIMIT 100")
}

// BenchmarkFig9SortMultiKey — Fig. 9c (two sort attributes).
func BenchmarkFig9SortMultiKey(b *testing.B) {
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, IntCols: 2, Seed: 9})
	benchQuery(b, cat, "SELECT i0 FROM t ORDER BY i0, i1 LIMIT 100")
}

// BenchmarkFig10TPCH — Fig. 10 (full phase runs, adaptive mode).
func BenchmarkFig10TPCH(b *testing.B) {
	cat, err := tpch.Generate(0.01, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range tpch.QueryIDs {
		id := id
		for _, sys := range []string{"mutable", "hyper", "vectorized", "volcano"} {
			sys := sys
			b.Run(id+"/"+sys, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.RunOn(cat, tpch.Queries[id], sys, true); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig1CompileVsExecute — Fig. 1: per-tier latency on TPC-H Q1.
func BenchmarkFig1CompileVsExecute(b *testing.B) {
	cat, err := tpch.Generate(0.01, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range []string{"liftoff", "turbofan", "adaptive"} {
		sys := sys
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunOn(cat, tpch.Queries["Q1"], sys, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHashTable — §4.3 ablation (generated vs library HT).
func BenchmarkAblationHashTable(b *testing.B) {
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, GroupCols: 1, GroupDistinct: 1000, Seed: 10})
	src := "SELECT g0, COUNT(*) FROM t GROUP BY g0"
	for _, sys := range []string{"mutable", "hyper"} {
		sys := sys
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunOn(cat, src, sys, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSort — §5 ablation (generated vs library sort).
func BenchmarkAblationSort(b *testing.B) {
	cat, _ := workload.Catalog(workload.Spec{Name: "t", Rows: benchRows, IntCols: 2, Seed: 11})
	src := "SELECT i0 FROM t ORDER BY i0, i1 LIMIT 100"
	for _, sys := range []string{"mutable", "hyper"} {
		sys := sys
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunOn(cat, src, sys, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
