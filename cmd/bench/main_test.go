package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"wasmdb/internal/experiments"
)

// TestSmokeEmitsValidJSON runs the per-backend smoke benchmark at a tiny
// scale and proves the BENCH_*.json output round-trips through the schema
// downstream tooling parses.
func TestSmokeEmitsValidJSON(t *testing.T) {
	recs, err := experiments.Smoke(experiments.Options{Rows: 20_000, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(experiments.DefaultSystems) {
		t.Fatalf("got %d records, want one per system (%d)", len(recs), len(experiments.DefaultSystems))
	}

	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	if err := writeAndValidate(path, recs); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []experiments.Record
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, b)
	}
	seen := map[string]bool{}
	for _, r := range parsed {
		if r.Name != "smoke" {
			t.Errorf("record name %q, want smoke", r.Name)
		}
		if r.ExecNs <= 0 {
			t.Errorf("backend %s: exec_ns = %d, want > 0", r.Backend, r.ExecNs)
		}
		seen[r.Backend] = true
		// The compiling architectures must report compile phases.
		if r.Backend == "mutable" || r.Backend == "hyper" {
			if r.TranslateNs <= 0 {
				t.Errorf("backend %s: translate_ns = %d, want > 0", r.Backend, r.TranslateNs)
			}
			if r.MorselsLiftoff+r.MorselsTurbofan == 0 {
				t.Errorf("backend %s: no morsel accounting", r.Backend)
			}
		}
	}
	for _, sys := range experiments.DefaultSystems {
		if !seen[sys] {
			t.Errorf("no record for system %s", sys)
		}
	}
}

// TestPlanCacheBenchEmitsValidJSON runs the plan-cache cold/warm experiment
// at a tiny scale and proves its BENCH_plancache.json round-trips and shows
// the cache contract: the cold record pays compilation, the warm record
// reports zero compile time and runs entirely on the optimizing tier.
func TestPlanCacheBenchEmitsValidJSON(t *testing.T) {
	recs, err := experiments.PlanCache(experiments.Options{SF: 0.005, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want cold+warm", len(recs))
	}
	path := filepath.Join(t.TempDir(), "BENCH_plancache.json")
	if err := writeAndValidate(path, recs); err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiments.Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	cold, warm := byName["plancache:cold"], byName["plancache:warm"]
	if cold.TranslateNs <= 0 || cold.LiftoffNs <= 0 {
		t.Errorf("cold record missing compile phases: %+v", cold)
	}
	if warm.LiftoffNs != 0 || warm.TurbofanNs != 0 {
		t.Errorf("warm record reports compile time: %+v", warm)
	}
	if warm.MorselsLiftoff != 0 || warm.MorselsTurbofan == 0 {
		t.Errorf("warm record not fully on the optimizing tier: %+v", warm)
	}
	if warm.ExecNs <= 0 {
		t.Errorf("warm record has no execution time: %+v", warm)
	}
}
