// Command bench regenerates the paper's tables and figures (§8) and the
// ablation studies. Each experiment prints one aligned table (or CSV with
// -csv) with one series per system.
//
// Usage:
//
//	bench -experiment fig6a
//	bench -experiment all -rows 1000000 -sf 0.05
//	bench -experiment fig10 -sf 0.1
//	bench -experiment fig6a,fig6c -systems mutable,vectorized -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wasmdb/internal/experiments"
	"wasmdb/internal/harness"
)

var allExperiments = []string{
	"fig1", "fig6a", "fig6b", "fig6c", "fig6d",
	"fig7a", "fig7b", "fig7c", "fig7d",
	"fig8a", "fig8b", "fig9", "fig10",
	"abl-ht", "abl-sort", "abl-rewire", "abl-tier",
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment ids, or 'all' ("+strings.Join(allExperiments, ", ")+")")
		rows       = flag.Int("rows", 1_000_000, "rows for the micro-benchmarks (the paper uses 10000000)")
		reps       = flag.Int("reps", harness.Reps, "repetitions per measurement (median is reported)")
		sf         = flag.Float64("sf", 0.05, "TPC-H scale factor (the paper uses 1.0)")
		systems    = flag.String("systems", strings.Join(experiments.DefaultSystems, ","), "systems to measure")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		full       = flag.Bool("full", false, "paper-scale settings (10M rows, SF 0.5) — slow on the VM substrate")
	)
	flag.Parse()

	if *full {
		*rows = 10_000_000
		*sf = 0.5
	}
	opts := experiments.Options{
		Rows:    *rows,
		Reps:    *reps,
		SF:      *sf,
		Systems: strings.Split(*systems, ","),
		Out:     os.Stdout,
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = allExperiments
	}
	render := func(f *harness.Figure) {
		if *csv {
			f.RenderCSV(os.Stdout)
		} else {
			f.Render(os.Stdout)
		}
	}
	for _, id := range ids {
		switch strings.TrimSpace(id) {
		case "fig1":
			if err := experiments.Fig1(opts, os.Stdout); err != nil {
				fail(err)
			}
		case "fig6a":
			render(experiments.Fig6a(opts))
		case "fig6b":
			render(experiments.Fig6b(opts))
		case "fig6c":
			render(experiments.Fig6c(opts))
		case "fig6d":
			render(experiments.Fig6d(opts))
		case "fig7a":
			render(experiments.Fig7a(opts))
		case "fig7b":
			render(experiments.Fig7b(opts))
		case "fig7c":
			render(experiments.Fig7c(opts))
		case "fig7d":
			render(experiments.Fig7d(opts))
		case "fig8a":
			render(experiments.Fig8a(opts))
		case "fig8b":
			render(experiments.Fig8b(opts))
		case "fig9":
			for _, f := range experiments.Fig9(opts) {
				render(f)
			}
		case "fig10":
			if err := experiments.Fig10(opts, os.Stdout); err != nil {
				fail(err)
			}
		case "abl-ht":
			render(experiments.AblationHashTable(opts))
		case "abl-sort":
			render(experiments.AblationSort(opts))
		case "abl-rewire":
			experiments.AblationRewiring(opts, os.Stdout)
		case "abl-tier":
			if err := experiments.AblationTiers(opts, os.Stdout); err != nil {
				fail(err)
			}
		default:
			fail(fmt.Errorf("unknown experiment %q", id))
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
