// Command bench regenerates the paper's tables and figures (§8) and the
// ablation studies. Each experiment prints one aligned table (or CSV with
// -csv) with one series per system; -json additionally writes machine-
// readable BENCH_<experiment>.json records for plotting and regression
// tracking.
//
// Usage:
//
//	bench -experiment fig6a
//	bench -experiment all -rows 1000000 -sf 0.05
//	bench -experiment fig10 -sf 0.1
//	bench -experiment fig6a,fig6c -systems mutable,vectorized -csv
//	bench -experiment smoke -rows 100000 -json   # health check, BENCH_smoke.json
//	bench -experiment scaling -json              # 1/2/4-worker parallel speedup
//	bench -experiment plancache -json            # cold vs warm plan-cache latency
//	bench -experiment auto -json                 # autopilot crossover sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"wasmdb/internal/experiments"
	"wasmdb/internal/harness"
)

var allExperiments = []string{
	"fig1", "fig6a", "fig6b", "fig6c", "fig6d",
	"fig7a", "fig7b", "fig7c", "fig7d",
	"fig8a", "fig8b", "fig9", "fig10",
	"abl-ht", "abl-sort", "abl-rewire", "abl-tier",
	"smoke", "scaling", "plancache", "serving", "auto",
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment ids, or 'all' ("+strings.Join(allExperiments, ", ")+")")
		rows       = flag.Int("rows", 1_000_000, "rows for the micro-benchmarks (the paper uses 10000000)")
		reps       = flag.Int("reps", harness.Reps, "repetitions per measurement (median is reported)")
		sf         = flag.Float64("sf", 0.05, "TPC-H scale factor (the paper uses 1.0)")
		systems    = flag.String("systems", strings.Join(experiments.DefaultSystems, ","), "systems to measure")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = flag.Bool("json", false, "write BENCH_<experiment>.json machine-readable records")
		full       = flag.Bool("full", false, "paper-scale settings (10M rows, SF 0.5) — slow on the VM substrate")
	)
	flag.Parse()

	if *full {
		*rows = 10_000_000
		*sf = 0.5
	}
	opts := experiments.Options{
		Rows:    *rows,
		Reps:    *reps,
		SF:      *sf,
		Systems: strings.Split(*systems, ","),
		Out:     os.Stdout,
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = allExperiments
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		var figs []*harness.Figure
		var recs []experiments.Record
		switch id {
		case "fig1":
			if err := experiments.Fig1(opts, os.Stdout); err != nil {
				fail(err)
			}
		case "fig6a":
			figs = append(figs, experiments.Fig6a(opts))
		case "fig6b":
			figs = append(figs, experiments.Fig6b(opts))
		case "fig6c":
			figs = append(figs, experiments.Fig6c(opts))
		case "fig6d":
			figs = append(figs, experiments.Fig6d(opts))
		case "fig7a":
			figs = append(figs, experiments.Fig7a(opts))
		case "fig7b":
			figs = append(figs, experiments.Fig7b(opts))
		case "fig7c":
			figs = append(figs, experiments.Fig7c(opts))
		case "fig7d":
			figs = append(figs, experiments.Fig7d(opts))
		case "fig8a":
			figs = append(figs, experiments.Fig8a(opts))
		case "fig8b":
			figs = append(figs, experiments.Fig8b(opts))
		case "fig9":
			figs = experiments.Fig9(opts)
		case "fig10":
			if err := experiments.Fig10(opts, os.Stdout); err != nil {
				fail(err)
			}
		case "abl-ht":
			figs = append(figs, experiments.AblationHashTable(opts))
		case "abl-sort":
			figs = append(figs, experiments.AblationSort(opts))
		case "abl-rewire":
			experiments.AblationRewiring(opts, os.Stdout)
		case "abl-tier":
			if err := experiments.AblationTiers(opts, os.Stdout); err != nil {
				fail(err)
			}
		case "smoke":
			r, err := experiments.Smoke(opts)
			if err != nil {
				fail(err)
			}
			recs = r
			if err := experiments.WriteRecords(os.Stdout, recs); err != nil {
				fail(err)
			}
		case "scaling":
			r, err := experiments.Scaling(opts)
			if err != nil {
				fail(err)
			}
			recs = r
			if err := experiments.WriteRecords(os.Stdout, recs); err != nil {
				fail(err)
			}
		case "plancache":
			r, err := experiments.PlanCache(opts)
			if err != nil {
				fail(err)
			}
			recs = r
			if err := experiments.WriteRecords(os.Stdout, recs); err != nil {
				fail(err)
			}
		case "serving":
			r, err := experiments.Serving(opts)
			if err != nil {
				fail(err)
			}
			recs = r
			if err := experiments.WriteRecords(os.Stdout, recs); err != nil {
				fail(err)
			}
		case "auto":
			r, err := experiments.Auto(opts)
			if err != nil {
				fail(err)
			}
			recs = r
			if err := experiments.WriteRecords(os.Stdout, recs); err != nil {
				fail(err)
			}
		default:
			fail(fmt.Errorf("unknown experiment %q", id))
		}
		for _, f := range figs {
			if *csv {
				f.RenderCSV(os.Stdout)
			} else {
				f.Render(os.Stdout)
			}
			recs = append(recs, experiments.RecordsFromFigure(id, f)...)
		}
		if *jsonOut && len(recs) > 0 {
			path := "BENCH_" + id + ".json"
			if err := writeAndValidate(path, recs); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", path, len(recs))
		}
	}
}

// writeAndValidate emits the records and proves the file round-trips: a
// BENCH_*.json that downstream tooling cannot parse is a bench bug.
func writeAndValidate(path string, recs []experiments.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteRecords(f, recs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var check []experiments.Record
	if err := json.Unmarshal(b, &check); err != nil {
		return fmt.Errorf("%s does not parse: %w", path, err)
	}
	if len(check) != len(recs) {
		return fmt.Errorf("%s round-trip lost records: wrote %d, read %d", path, len(recs), len(check))
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
