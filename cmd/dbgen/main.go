// Command dbgen generates TPC-H tables at a given scale factor and writes
// them as CSV files (one per table) — useful for inspecting the generated
// data or feeding it to other systems.
//
//	dbgen -sf 0.01 -o /tmp/tpch
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wasmdb/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor")
	out := flag.String("o", ".", "output directory")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	cat, err := tpch.Generate(*sf, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
	for _, tbl := range tpch.Tables(cat) {
		path := filepath.Join(*out, tbl.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbgen:", err)
			os.Exit(1)
		}
		w := make([]string, len(tbl.Columns))
		for i, c := range tbl.Columns {
			w[i] = c.Name
		}
		fmt.Fprintln(f, strings.Join(w, ","))
		for r := 0; r < tbl.Rows(); r++ {
			for i, c := range tbl.Columns {
				w[i] = c.ValueAt(r).String()
			}
			fmt.Fprintln(f, strings.Join(w, ","))
		}
		f.Close()
		fmt.Printf("%s: %d rows\n", path, tbl.Rows())
	}
}
