package main

import (
	"errors"
	"strings"
	"testing"
	"time"

	"wasmdb"
	"wasmdb/internal/faultpoint"
)

// TestReplSurvivesFailedQueries drives a scripted session through every
// failure class — parse error, semantic error, guest trap via fuel, timeout
// — and asserts each prints an error while the shell keeps serving.
func TestReplSurvivesFailedQueries(t *testing.T) {
	db := wasmdb.Open()
	script := strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1),(2),(3)",
		"SELECT a FROM",          // parse error
		"SELECT missing FROM t",  // unknown column
		"SELECT nope FROM nada",  // unknown table
		"\\backend bogus",        // bad meta argument
		"SELECT COUNT(*) FROM t", // still works
		"\\q",
	}, "\n")
	var out strings.Builder
	repl(db, strings.NewReader(script), &out, 0)
	got := out.String()

	if n := strings.Count(got, "error:"); n != 3 {
		t.Errorf("printed %d errors, want 3:\n%s", n, got)
	}
	// The good query after the failures produced its result (3 rows counted).
	if !strings.Contains(got, "3") || !strings.Contains(got, "(1 rows)") {
		t.Errorf("query after failures produced no result:\n%s", got)
	}
	if strings.Count(got, "ok\n") != 2 {
		t.Errorf("CREATE/INSERT acknowledgements missing:\n%s", got)
	}
}

// TestReplSurvivesTimeout runs a runaway query under the shell's per-query
// timeout: the error is printed, and the next query still answers.
func TestReplSurvivesTimeout(t *testing.T) {
	db := wasmdb.Open()
	faultpoint.Enable("core-infinite-loop", faultpoint.Always(errors.New("arm")))
	defer faultpoint.Disable("core-infinite-loop")

	var out strings.Builder
	repl(db, strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1)",
		"SELECT COUNT(*) FROM t", // spins forever until the timeout fires
	}, "\n")), &out, 50*time.Millisecond)
	if !strings.Contains(out.String(), "deadline exceeded") {
		t.Errorf("timeout not reported:\n%s", out.String())
	}

	faultpoint.Disable("core-infinite-loop")
	out.Reset()
	repl(db, strings.NewReader("SELECT COUNT(*) FROM t"), &out, 50*time.Millisecond)
	if !strings.Contains(out.String(), "(1 rows)") {
		t.Errorf("shell unusable after timeout:\n%s", out.String())
	}
}

// TestReplContainsPanics: even a panic that escapes the engine's isolation
// is caught at the shell's prompt loop.
func TestReplSurvivesEnginePanic(t *testing.T) {
	db := wasmdb.Open()
	faultpoint.Enable("engine-call-panic", faultpoint.Always(errors.New("simulated engine bug")))
	defer faultpoint.Disable("engine-call-panic")

	var out strings.Builder
	repl(db, strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1)",
		"SELECT COUNT(*) FROM t",
	}, "\n")), &out, 0)
	if !strings.Contains(out.String(), "error:") {
		t.Errorf("engine panic not reported as error:\n%s", out.String())
	}

	faultpoint.Disable("engine-call-panic")
	out.Reset()
	repl(db, strings.NewReader("SELECT COUNT(*) FROM t"), &out, 0)
	if !strings.Contains(out.String(), "(1 rows)") {
		t.Errorf("shell unusable after engine panic:\n%s", out.String())
	}
}
