package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wasmdb"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/server"
)

// TestReplSurvivesFailedQueries drives a scripted session through every
// failure class — parse error, semantic error, guest trap via fuel, timeout
// — and asserts each prints an error while the shell keeps serving.
func TestReplSurvivesFailedQueries(t *testing.T) {
	db := wasmdb.Open()
	script := strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1),(2),(3)",
		"SELECT a FROM",          // parse error
		"SELECT missing FROM t",  // unknown column
		"SELECT nope FROM nada",  // unknown table
		"\\backend bogus",        // bad meta argument
		"SELECT COUNT(*) FROM t", // still works
		"\\q",
	}, "\n")
	var out strings.Builder
	repl(context.Background(), db, strings.NewReader(script), &out, replConfig{})
	got := out.String()

	if n := strings.Count(got, "error:"); n != 3 {
		t.Errorf("printed %d errors, want 3:\n%s", n, got)
	}
	// The good query after the failures produced its result (3 rows counted).
	if !strings.Contains(got, "3") || !strings.Contains(got, "(1 rows)") {
		t.Errorf("query after failures produced no result:\n%s", got)
	}
	if strings.Count(got, "ok\n") != 2 {
		t.Errorf("CREATE/INSERT acknowledgements missing:\n%s", got)
	}
}

// TestReplSurvivesTimeout runs a runaway query under the shell's per-query
// timeout: the error is printed, and the next query still answers.
func TestReplSurvivesTimeout(t *testing.T) {
	db := wasmdb.Open()
	faultpoint.Enable("core-infinite-loop", faultpoint.Always(errors.New("arm")))
	defer faultpoint.Disable("core-infinite-loop")

	var out strings.Builder
	repl(context.Background(), db, strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1)",
		"SELECT COUNT(*) FROM t", // spins forever until the timeout fires
	}, "\n")), &out, replConfig{timeout: 50 * time.Millisecond})
	if !strings.Contains(out.String(), "deadline exceeded") {
		t.Errorf("timeout not reported:\n%s", out.String())
	}

	faultpoint.Disable("core-infinite-loop")
	out.Reset()
	repl(context.Background(), db, strings.NewReader("SELECT COUNT(*) FROM t"), &out, replConfig{timeout: 50 * time.Millisecond})
	if !strings.Contains(out.String(), "(1 rows)") {
		t.Errorf("shell unusable after timeout:\n%s", out.String())
	}
}

// TestReplContainsPanics: even a panic that escapes the engine's isolation
// is caught at the shell's prompt loop.
func TestReplSurvivesEnginePanic(t *testing.T) {
	db := wasmdb.Open()
	faultpoint.Enable("engine-call-panic", faultpoint.Always(errors.New("simulated engine bug")))
	defer faultpoint.Disable("engine-call-panic")

	var out strings.Builder
	repl(context.Background(), db, strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1)",
		"SELECT COUNT(*) FROM t",
	}, "\n")), &out, replConfig{})
	if !strings.Contains(out.String(), "error:") {
		t.Errorf("engine panic not reported as error:\n%s", out.String())
	}

	faultpoint.Disable("engine-call-panic")
	out.Reset()
	repl(context.Background(), db, strings.NewReader("SELECT COUNT(*) FROM t"), &out, replConfig{})
	if !strings.Contains(out.String(), "(1 rows)") {
		t.Errorf("shell unusable after engine panic:\n%s", out.String())
	}
}

// TestReplTraceExport: a session run with a trace path writes Perfetto-
// loadable trace_event JSON covering every query of the session.
func TestReplTraceExport(t *testing.T) {
	db := wasmdb.Open()
	path := filepath.Join(t.TempDir(), "out.json")
	var out strings.Builder
	repl(context.Background(), db, strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1),(2),(3)",
		"SELECT COUNT(*) FROM t",
		"SELECT a FROM t",
		"\\q",
	}, "\n")), &out, replConfig{tracePath: path})

	if !strings.Contains(out.String(), "wrote 2 query trace(s)") {
		t.Errorf("trace write not reported:\n%s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("trace file is not valid JSON: %v\n%s", err, b)
	}
	tids := map[int]bool{}
	var sawSpan bool
	for _, ev := range parsed.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Ts < 0 {
			t.Errorf("malformed event %+v", ev)
		}
		if ev.Ph == "X" {
			sawSpan = true
		}
		tids[ev.Tid] = true
	}
	if !sawSpan {
		t.Error("no complete (ph X) events in session trace")
	}
	if len(tids) < 2 {
		t.Errorf("expected one lane per query, got tids %v", tids)
	}
}

// TestReplExplainAnalyze: the EXPLAIN ANALYZE statement prints the
// annotated plan instead of a result table.
func TestReplExplainAnalyze(t *testing.T) {
	db := wasmdb.Open()
	var out strings.Builder
	repl(context.Background(), db, strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1),(2),(3)",
		"explain analyze SELECT COUNT(*) FROM t",
	}, "\n")), &out, replConfig{})
	got := out.String()
	for _, want := range []string{"phases:", "totals:", "morsels"} {
		if !strings.Contains(got, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, got)
		}
	}
}

// TestReplMetricsDump: \metrics renders the process-wide registry.
func TestReplMetricsDump(t *testing.T) {
	db := wasmdb.Open()
	var out strings.Builder
	repl(context.Background(), db, strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1)",
		"SELECT COUNT(*) FROM t",
		"\\metrics",
	}, "\n")), &out, replConfig{})
	if !strings.Contains(out.String(), "queries_total") {
		t.Errorf("\\metrics dump missing queries_total:\n%s", out.String())
	}
}

// TestReplFlightRecorderAndQueryLog: errored queries land in the session
// flight recorder (dumpable via \flightrec, to the terminal or a file), and
// -querylog appends one JSON record per query — including failures.
func TestReplFlightRecorderAndQueryLog(t *testing.T) {
	db := wasmdb.Open()
	qlogPath := filepath.Join(t.TempDir(), "queries.jsonl")
	qlogFile, err := os.OpenFile(qlogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer qlogFile.Close()
	dumpPath := filepath.Join(t.TempDir(), "flight.json")

	var out strings.Builder
	repl(context.Background(), db, strings.NewReader(strings.Join([]string{
		"CREATE TABLE t (a INT)",
		"INSERT INTO t VALUES (1),(2),(3)",
		"SELECT COUNT(*) FROM t",
		"SELECT missing FROM t", // errored → always captured
		"\\flightrec " + dumpPath,
		"\\q",
	}, "\n")), &out, replConfig{qlogFile: qlogFile})

	if !strings.Contains(out.String(), "captured") {
		t.Errorf("\\flightrec wrote nothing:\n%s", out.String())
	}
	b, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("flight dump is not valid trace JSON: %v", err)
	}

	logBytes, err := os.ReadFile(qlogPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(logBytes)), "\n")
	if len(lines) != 2 {
		t.Fatalf("query log has %d records, want 2:\n%s", len(lines), logBytes)
	}
	var sawError bool
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("query-log line is not JSON: %v\n%s", err, line)
		}
		if rec["query_hash"] == nil || rec["sql"] == nil {
			t.Errorf("record missing identity fields: %v", rec)
		}
		if rec["error"] != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Error("errored query produced no query-log record")
	}
}

// TestReplInterrupt cancels the session context mid-stream — the SIGINT
// path — and asserts the shell exits promptly and still runs its exit work
// (the session trace is written, not abandoned).
func TestReplInterrupt(t *testing.T) {
	db := wasmdb.Open()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	path := filepath.Join(t.TempDir(), "out.json")

	done := make(chan struct{})
	var out strings.Builder
	go func() {
		defer close(done)
		repl(ctx, db, pr, &out, replConfig{tracePath: path})
	}()
	for _, line := range []string{
		"CREATE TABLE t (a INT)\n",
		"INSERT INTO t VALUES (1)\n",
		"SELECT COUNT(*) FROM t\n",
	} {
		if _, err := io.WriteString(pw, line); err != nil {
			t.Fatal(err)
		}
	}
	// The scanner is now parked on the open pipe; only the context can end
	// the session.
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("repl did not exit on context cancellation")
	}
	pw.Close()
	if !strings.Contains(out.String(), "interrupted") {
		t.Errorf("interrupt not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "query trace(s)") {
		t.Errorf("session trace not written on interrupt:\n%s", out.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("trace file missing after interrupt: %v", err)
	}
}

// TestServeGracefulShutdown boots the serve mode on an ephemeral port,
// answers a query over HTTP, then delivers the shutdown signal (context
// cancellation) and asserts a clean drain.
func TestServeGracefulShutdown(t *testing.T) {
	db := wasmdb.Open()
	if err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("INSERT INTO t VALUES (1),(2),(3)"); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out strings.Builder
	done := make(chan error, 1)
	go func() { done <- serveOn(ctx, db, ln, server.Config{}, 5*time.Second, &out) }()

	url := fmt.Sprintf("http://%s/v1/query", ln.Addr())
	resp, err := http.Post(url, "application/json",
		bytes.NewReader([]byte(`{"sql": "SELECT COUNT(*) FROM t"}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"row_count":1`) {
		t.Fatalf("query over HTTP: %d %s", resp.StatusCode, body)
	}

	cancel() // the signal
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve mode did not shut down on signal")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("drain not reported:\n%s", out.String())
	}
	// The listener is closed: new connections must fail.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting connections after shutdown")
	}
}
