// Command wasmdb is an interactive SQL shell over the wasmdb engine.
//
//	wasmdb                 # empty database
//	wasmdb -tpch 0.01      # preloaded with TPC-H at the given scale factor
//
// Meta commands:
//
//	\backend <name>   switch execution backend (wasm, liftoff, turbofan,
//	                  hyper, vectorized, volcano)
//	\explain <sql>    show the plan and pipeline dissection
//	\wat <sql>        dump the generated WebAssembly (text form)
//	\timing           toggle per-query phase timings
//	\tpch <id>        run a built-in TPC-H query (Q1, Q3, Q6, Q12, Q14)
//	\q                quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"wasmdb"
)

func main() {
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H at this scale factor")
	flag.Parse()

	db := wasmdb.Open()
	if *tpchSF > 0 {
		fmt.Printf("loading TPC-H at SF %g …\n", *tpchSF)
		if err := db.LoadTPCH(*tpchSF, 42); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	backend := wasmdb.BackendWasm
	timing := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	fmt.Println("wasmdb shell — SQL → WebAssembly → adaptive execution. \\q to quit.")
	for {
		fmt.Printf("%s> ", backend)
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if !meta(db, line, &backend, &timing) {
				return
			}
			continue
		}
		runSQL(db, line, backend, timing)
	}
}

func meta(db *wasmdb.DB, line string, backend *wasmdb.Backend, timing *bool) bool {
	cmd, arg, _ := strings.Cut(line, " ")
	arg = strings.TrimSpace(arg)
	switch cmd {
	case "\\q", "\\quit":
		return false
	case "\\timing":
		*timing = !*timing
		fmt.Printf("timing %v\n", *timing)
	case "\\backend":
		switch arg {
		case "wasm", "adaptive":
			*backend = wasmdb.BackendWasm
		case "liftoff":
			*backend = wasmdb.BackendWasmLiftoff
		case "turbofan":
			*backend = wasmdb.BackendWasmTurbofan
		case "hyper":
			*backend = wasmdb.BackendHyperLike
		case "vectorized":
			*backend = wasmdb.BackendVectorized
		case "volcano":
			*backend = wasmdb.BackendVolcano
		default:
			fmt.Println("backends: wasm, liftoff, turbofan, hyper, vectorized, volcano")
		}
	case "\\explain":
		out, err := db.Explain(arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\wat":
		out, err := db.ExplainWAT(arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\tpch":
		src, ok := wasmdb.TPCHQuery(strings.ToUpper(arg))
		if !ok {
			fmt.Println("known queries: Q1, Q3, Q6, Q12, Q14")
			return true
		}
		fmt.Println(src)
		runSQL(db, src, *backend, *timing)
	default:
		fmt.Println("meta commands: \\backend, \\explain, \\wat, \\timing, \\tpch, \\q")
	}
	return true
}

func runSQL(db *wasmdb.DB, src string, backend wasmdb.Backend, timing bool) {
	upper := strings.ToUpper(strings.TrimSpace(src))
	if strings.HasPrefix(upper, "CREATE") || strings.HasPrefix(upper, "INSERT") {
		if err := db.Exec(src); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("ok")
		}
		return
	}
	res, err := db.Query(src, wasmdb.WithBackend(backend))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res.Format())
	fmt.Printf("(%d rows)\n", res.NumRows())
	if timing {
		s := res.Stats
		fmt.Printf("translate=%v liftoff=%v turbofan=%v execute=%v morsels(lo/tf)=%d/%d module=%dB\n",
			s.Translate, s.Liftoff, s.Turbofan, s.Execute, s.MorselsLiftoff, s.MorselsTurbofan, s.ModuleBytes)
	}
}
