// Command wasmdb is an interactive SQL shell over the wasmdb engine.
//
//	wasmdb                 # empty database
//	wasmdb -tpch 0.01      # preloaded with TPC-H at the given scale factor
//	wasmdb -timeout 5s     # per-query wall-clock budget
//
// Meta commands:
//
//	\backend <name>   switch execution backend (wasm, liftoff, turbofan,
//	                  hyper, vectorized, volcano)
//	\explain <sql>    show the plan and pipeline dissection
//	\wat <sql>        dump the generated WebAssembly (text form)
//	\timing           toggle per-query phase timings
//	\tpch <id>        run a built-in TPC-H query (Q1, Q3, Q6, Q12, Q14)
//	\q                quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"wasmdb"
)

func main() {
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H at this scale factor")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 disables)")
	flag.Parse()

	db := wasmdb.Open()
	if *tpchSF > 0 {
		fmt.Printf("loading TPC-H at SF %g …\n", *tpchSF)
		if err := db.LoadTPCH(*tpchSF, 42); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	repl(db, os.Stdin, os.Stdout, *timeout)
}

// shell holds the REPL's mutable session state.
type shell struct {
	db      *wasmdb.DB
	out     io.Writer
	backend wasmdb.Backend
	timing  bool
	timeout time.Duration
}

// repl reads statements from in and writes results to out until EOF or \q.
// Every failure — parse error, trap, timeout, even an engine panic — is
// printed and the loop continues; a bad query must never kill the shell.
func repl(db *wasmdb.DB, in io.Reader, out io.Writer, timeout time.Duration) {
	sh := &shell{db: db, out: out, backend: wasmdb.BackendWasm, timeout: timeout}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	fmt.Fprintln(out, "wasmdb shell — SQL → WebAssembly → adaptive execution. \\q to quit.")
	for {
		fmt.Fprintf(out, "%s> ", sh.backend)
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if !sh.meta(line) {
				return
			}
			continue
		}
		sh.runSQL(line)
	}
}

func (sh *shell) meta(line string) bool {
	cmd, arg, _ := strings.Cut(line, " ")
	arg = strings.TrimSpace(arg)
	switch cmd {
	case "\\q", "\\quit":
		return false
	case "\\timing":
		sh.timing = !sh.timing
		fmt.Fprintf(sh.out, "timing %v\n", sh.timing)
	case "\\backend":
		switch arg {
		case "wasm", "adaptive":
			sh.backend = wasmdb.BackendWasm
		case "liftoff":
			sh.backend = wasmdb.BackendWasmLiftoff
		case "turbofan":
			sh.backend = wasmdb.BackendWasmTurbofan
		case "hyper":
			sh.backend = wasmdb.BackendHyperLike
		case "vectorized":
			sh.backend = wasmdb.BackendVectorized
		case "volcano":
			sh.backend = wasmdb.BackendVolcano
		default:
			fmt.Fprintln(sh.out, "backends: wasm, liftoff, turbofan, hyper, vectorized, volcano")
		}
	case "\\explain":
		out, err := sh.db.Explain(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprint(sh.out, out)
		}
	case "\\wat":
		out, err := sh.db.ExplainWAT(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprint(sh.out, out)
		}
	case "\\tpch":
		src, ok := wasmdb.TPCHQuery(strings.ToUpper(arg))
		if !ok {
			fmt.Fprintln(sh.out, "known queries: Q1, Q3, Q6, Q12, Q14")
			return true
		}
		fmt.Fprintln(sh.out, src)
		sh.runSQL(src)
	default:
		fmt.Fprintln(sh.out, "meta commands: \\backend, \\explain, \\wat, \\timing, \\tpch, \\q")
	}
	return true
}

func (sh *shell) runSQL(src string) {
	// Last line of defense: whatever escapes the engine's own panic
	// isolation is reported like any other error and the shell lives on.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(sh.out, "error: internal panic: %v\n", r)
		}
	}()
	upper := strings.ToUpper(strings.TrimSpace(src))
	if strings.HasPrefix(upper, "CREATE") || strings.HasPrefix(upper, "INSERT") {
		if err := sh.db.Exec(src); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprintln(sh.out, "ok")
		}
		return
	}
	opts := []wasmdb.Option{wasmdb.WithBackend(sh.backend)}
	if sh.timeout > 0 {
		opts = append(opts, wasmdb.WithTimeout(sh.timeout))
	}
	res, err := sh.db.Query(src, opts...)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	fmt.Fprint(sh.out, res.Format())
	fmt.Fprintf(sh.out, "(%d rows)\n", res.NumRows())
	if sh.timing {
		s := res.Stats
		fmt.Fprintf(sh.out, "translate=%v liftoff=%v turbofan=%v execute=%v morsels(lo/tf)=%d/%d module=%dB\n",
			s.Translate, s.Liftoff, s.Turbofan, s.Execute, s.MorselsLiftoff, s.MorselsTurbofan, s.ModuleBytes)
	}
}
