// Command wasmdb is an interactive SQL shell over the wasmdb engine.
//
//	wasmdb                 # empty database
//	wasmdb -tpch 0.01      # preloaded with TPC-H at the given scale factor
//	wasmdb -timeout 5s     # per-query wall-clock budget
//	wasmdb -trace out.json # record every query; write Chrome trace_event
//	                       # JSON on exit (open in Perfetto)
//
// EXPLAIN ANALYZE <query> executes the query and prints the plan annotated
// with per-phase timings and the adaptive tier-switch timeline.
//
// Meta commands:
//
//	\backend <name>       switch execution backend (wasm, liftoff, turbofan,
//	                      hyper, vectorized, volcano)
//	\set parallelism <n>  morsel worker-pool size for the Wasm backends
//	                      (1 = serial, 0 = GOMAXPROCS)
//	\set plancache on|off reuse compiled modules across same-shaped queries
//	                      (default on; applies to the Wasm backends)
//	\explain <sql>        show the plan and pipeline dissection
//	\wat <sql>            dump the generated WebAssembly (text form)
//	\timing               toggle per-query phase timings
//	\metrics              dump the process-wide metrics registry
//	\tpch <id>            run a built-in TPC-H query (Q1, Q3, Q6, Q12, Q14)
//	\q                    quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"wasmdb"
)

func main() {
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H at this scale factor")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 disables)")
	tracePath := flag.String("trace", "", "record every query and write Chrome trace_event JSON here on exit")
	flag.Parse()

	db := wasmdb.Open()
	if *tpchSF > 0 {
		fmt.Printf("loading TPC-H at SF %g …\n", *tpchSF)
		if err := db.LoadTPCH(*tpchSF, 42); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	repl(db, os.Stdin, os.Stdout, *timeout, *tracePath)
}

// shell holds the REPL's mutable session state.
type shell struct {
	db      *wasmdb.DB
	out     io.Writer
	backend wasmdb.Backend
	timing  bool
	timeout time.Duration
	// parallelism is the morsel worker-pool size for Wasm-backed queries
	// (0 or 1 = serial execution, matching the engine default).
	parallelism int
	// plancacheOff disables compiled-module reuse across same-shaped
	// queries (\set plancache off).
	plancacheOff bool
	// tracing, when set, collects one trace per executed query for the
	// session-wide trace_event export written at exit.
	tracing bool
	traces  []*wasmdb.Trace
}

// repl reads statements from in and writes results to out until EOF or \q.
// Every failure — parse error, trap, timeout, even an engine panic — is
// printed and the loop continues; a bad query must never kill the shell.
// With a non-empty tracePath, every query is traced and the session's
// timeline is written there as Chrome trace_event JSON when the loop ends.
func repl(db *wasmdb.DB, in io.Reader, out io.Writer, timeout time.Duration, tracePath string) {
	sh := &shell{db: db, out: out, backend: wasmdb.BackendWasm, timeout: timeout, tracing: tracePath != ""}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	fmt.Fprintln(out, "wasmdb shell — SQL → WebAssembly → adaptive execution. \\q to quit.")
	for {
		fmt.Fprintf(out, "%s> ", sh.backend)
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if !sh.meta(line) {
				break
			}
			continue
		}
		sh.runSQL(line)
	}
	if sh.tracing {
		if err := writeSessionTrace(tracePath, sh.traces); err != nil {
			fmt.Fprintln(out, "error writing trace:", err)
		} else {
			fmt.Fprintf(out, "wrote %d query trace(s) to %s\n", len(sh.traces), tracePath)
		}
	}
}

// writeSessionTrace exports the session's query traces for Perfetto.
func writeSessionTrace(path string, traces []*wasmdb.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wasmdb.WriteTraceEvents(f, traces...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (sh *shell) meta(line string) bool {
	cmd, arg, _ := strings.Cut(line, " ")
	arg = strings.TrimSpace(arg)
	switch cmd {
	case "\\q", "\\quit":
		return false
	case "\\timing":
		sh.timing = !sh.timing
		fmt.Fprintf(sh.out, "timing %v\n", sh.timing)
	case "\\metrics":
		fmt.Fprint(sh.out, sh.db.Metrics().Dump())
	case "\\backend":
		switch arg {
		case "wasm", "adaptive":
			sh.backend = wasmdb.BackendWasm
		case "liftoff":
			sh.backend = wasmdb.BackendWasmLiftoff
		case "turbofan":
			sh.backend = wasmdb.BackendWasmTurbofan
		case "hyper":
			sh.backend = wasmdb.BackendHyperLike
		case "vectorized":
			sh.backend = wasmdb.BackendVectorized
		case "volcano":
			sh.backend = wasmdb.BackendVolcano
		default:
			fmt.Fprintln(sh.out, "backends: wasm, liftoff, turbofan, hyper, vectorized, volcano")
		}
	case "\\set":
		key, val, _ := strings.Cut(arg, " ")
		switch key {
		case "parallelism":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || n < 0 {
				fmt.Fprintln(sh.out, "usage: \\set parallelism <n>  (1 = serial, 0 = all cores)")
				return true
			}
			if n == 0 {
				n = runtime.GOMAXPROCS(0)
			}
			sh.parallelism = n
			fmt.Fprintf(sh.out, "parallelism %d\n", n)
		case "plancache":
			switch strings.TrimSpace(val) {
			case "on":
				sh.plancacheOff = false
			case "off":
				sh.plancacheOff = true
			default:
				fmt.Fprintln(sh.out, "usage: \\set plancache on|off")
				return true
			}
			fmt.Fprintf(sh.out, "plancache %s\n", strings.TrimSpace(val))
		default:
			fmt.Fprintln(sh.out, "settable: parallelism, plancache")
		}
	case "\\explain":
		out, err := sh.db.Explain(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprint(sh.out, out)
		}
	case "\\wat":
		out, err := sh.db.ExplainWAT(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprint(sh.out, out)
		}
	case "\\tpch":
		src, ok := wasmdb.TPCHQuery(strings.ToUpper(arg))
		if !ok {
			fmt.Fprintln(sh.out, "known queries: Q1, Q3, Q6, Q12, Q14")
			return true
		}
		fmt.Fprintln(sh.out, src)
		sh.runSQL(src)
	default:
		fmt.Fprintln(sh.out, "meta commands: \\backend, \\set, \\explain, \\wat, \\timing, \\metrics, \\tpch, \\q")
	}
	return true
}

func (sh *shell) runSQL(src string) {
	// Last line of defense: whatever escapes the engine's own panic
	// isolation is reported like any other error and the shell lives on.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(sh.out, "error: internal panic: %v\n", r)
		}
	}()
	upper := strings.ToUpper(strings.TrimSpace(src))
	if strings.HasPrefix(upper, "CREATE") || strings.HasPrefix(upper, "INSERT") {
		if err := sh.db.Exec(src); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprintln(sh.out, "ok")
		}
		return
	}
	opts := []wasmdb.Option{wasmdb.WithBackend(sh.backend)}
	if sh.timeout > 0 {
		opts = append(opts, wasmdb.WithTimeout(sh.timeout))
	}
	if sh.parallelism > 1 {
		opts = append(opts, wasmdb.WithParallelism(sh.parallelism))
	}
	if sh.plancacheOff {
		opts = append(opts, wasmdb.WithPlanCache(false))
	}
	if strings.HasPrefix(upper, "EXPLAIN ANALYZE") {
		rest := strings.TrimSpace(src)[len("EXPLAIN ANALYZE"):]
		out, err := sh.db.ExplainAnalyze(strings.TrimSpace(rest), opts...)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprintln(sh.out, out)
		}
		return
	}
	var tr *wasmdb.Trace
	if sh.tracing {
		tr = wasmdb.NewTrace()
		opts = append(opts, wasmdb.WithTrace(tr))
	}
	res, err := sh.db.Query(src, opts...)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	if tr != nil {
		sh.traces = append(sh.traces, tr)
	}
	fmt.Fprint(sh.out, res.Format())
	fmt.Fprintf(sh.out, "(%d rows)\n", res.NumRows())
	if sh.timing {
		s := res.Stats
		fmt.Fprintf(sh.out, "translate=%v liftoff=%v turbofan=%v execute=%v morsels(lo/tf)=%d/%d module=%dB",
			s.Translate, s.Liftoff, s.Turbofan, s.Execute, s.MorselsLiftoff, s.MorselsTurbofan, s.ModuleBytes)
		if s.Workers > 1 {
			fmt.Fprintf(sh.out, " workers=%d pipelines(par/ser)=%d/%d", s.Workers, s.PipelinesParallel, s.PipelinesSerial)
		}
		fmt.Fprintln(sh.out)
	}
}
