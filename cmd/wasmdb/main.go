// Command wasmdb is an interactive SQL shell — or, with -serve, a
// concurrent HTTP query service — over the wasmdb engine.
//
//	wasmdb                 # empty database
//	wasmdb -tpch 0.01      # preloaded with TPC-H at the given scale factor
//	wasmdb -timeout 5s     # per-query wall-clock budget
//	wasmdb -trace out.json # record every query; write Chrome trace_event
//	                       # JSON on exit (open in Perfetto)
//	wasmdb -serve :8080    # HTTP query service with admission control
//	wasmdb -serve :8080 -drain 30s  # drain deadline for graceful shutdown
//	wasmdb -querylog q.jsonl        # structured query log, one JSON record
//	                                # per query (both modes)
//	wasmdb -slow 100ms              # slow-query threshold for log promotion
//	                                # and flight-recorder capture
//	wasmdb -serve :8080 -pprof      # expose net/http/pprof under /debug/pprof/
//
// Both modes shut down gracefully on SIGINT/SIGTERM: the shell cancels any
// running query and still writes its session trace; the server stops
// admitting, drains in-flight queries under the -drain deadline, then
// cancels whatever remains.
//
// EXPLAIN ANALYZE <query> executes the query and prints the plan annotated
// with per-phase timings and the adaptive tier-switch timeline.
//
// Meta commands:
//
//	\backend <name>       switch execution backend (auto, wasm, liftoff,
//	                      turbofan, hyper, vectorized, volcano); "auto" lets
//	                      the autopilot pick interpret/compile and workers
//	                      per query ("\set backend <name>" is an alias)
//	\set parallelism <n>  morsel worker-pool size for the Wasm backends
//	                      (1 = serial, 0 = GOMAXPROCS)
//	\set plancache on|off reuse compiled modules across same-shaped queries
//	                      (default on; applies to the Wasm backends)
//	\explain <sql>        show the plan and pipeline dissection
//	\wat <sql>            dump the generated WebAssembly (text form)
//	\timing               toggle per-query phase timings
//	\metrics              dump the process-wide metrics registry
//	\flightrec [file]     dump the session flight recorder (slow, errored,
//	                      and sampled queries) as Chrome trace_event JSON,
//	                      to the terminal or to file
//	\tpch <id>            run a built-in TPC-H query (Q1, Q3, Q6, Q12, Q14)
//	\q                    quit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wasmdb"
	"wasmdb/internal/server"
)

func main() {
	tpchSF := flag.Float64("tpch", 0, "preload TPC-H at this scale factor")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 disables)")
	tracePath := flag.String("trace", "", "record every query and write Chrome trace_event JSON here on exit")
	serveAddr := flag.String("serve", "", "run as an HTTP query service on this address instead of the shell")
	drain := flag.Duration("drain", 15*time.Second, "serve mode: how long shutdown waits for in-flight queries before canceling them")
	querylog := flag.String("querylog", "", "append one JSON record per query to this file (structured query log)")
	slow := flag.Duration("slow", 500*time.Millisecond, "slow-query threshold for query-log promotion and flight-recorder capture")
	pprofFlag := flag.Bool("pprof", false, "serve mode: expose net/http/pprof under /debug/pprof/")
	flag.Parse()

	db := wasmdb.Open()
	if *tpchSF > 0 {
		fmt.Printf("loading TPC-H at SF %g …\n", *tpchSF)
		if err := db.LoadTPCH(*tpchSF, 42); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var qlogFile *os.File
	if *querylog != "" {
		var err error
		qlogFile, err = os.OpenFile(*querylog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer qlogFile.Close()
	}

	if *serveAddr != "" {
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg := server.Config{SlowQuery: *slow, EnablePprof: *pprofFlag}
		if qlogFile != nil {
			cfg.QueryLogWriter = qlogFile
		}
		fmt.Printf("serving on http://%s (drain %v)\n", ln.Addr(), *drain)
		if err := serveOn(ctx, db, ln, cfg, *drain, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	repl(ctx, db, os.Stdin, os.Stdout, replConfig{
		timeout:   *timeout,
		tracePath: *tracePath,
		slow:      *slow,
		qlogFile:  qlogFile,
	})
}

// serveOn runs the query service on ln until ctx is canceled (SIGINT or
// SIGTERM), then shuts down gracefully: stop admitting, drain in-flight
// queries under the drain deadline, cancel stragglers through the context
// plumbing, and only then close the HTTP listener.
func serveOn(ctx context.Context, db *wasmdb.DB, ln net.Listener, cfg server.Config, drain time.Duration, out io.Writer) error {
	srv := server.New(db, cfg)
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "shutting down: draining in-flight queries (deadline %v) …\n", drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	<-serveErr // http.ErrServerClosed — the serve goroutine has exited
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	if drainErr != nil {
		fmt.Fprintln(out, "drain deadline passed; remaining queries were canceled")
	} else {
		fmt.Fprintln(out, "drained cleanly")
	}
	return nil
}

// replConfig carries the shell's flag-derived settings.
type replConfig struct {
	timeout   time.Duration
	tracePath string
	// slow is the threshold above which a query is promoted into the query
	// log and captured by the session flight recorder.
	slow time.Duration
	// qlogFile, when non-nil, receives one JSON record per query.
	qlogFile *os.File
}

// shell holds the REPL's mutable session state.
type shell struct {
	db  *wasmdb.DB
	ctx context.Context
	out io.Writer

	backend wasmdb.Backend
	timing  bool
	timeout time.Duration
	// slow is the flight-recorder / query-log slow threshold.
	slow time.Duration
	// frec captures slow, errored, and 1-in-N sampled queries for \flightrec.
	frec *wasmdb.FlightRecorder
	// qlogEnc, when set, appends one JSON query-log record per query
	// (the shell is single-threaded, so a bare encoder suffices).
	qlogEnc *json.Encoder
	// parallelism is the morsel worker-pool size for Wasm-backed queries
	// (0 or 1 = serial execution, matching the engine default).
	parallelism int
	// plancacheOff disables compiled-module reuse across same-shaped
	// queries (\set plancache off).
	plancacheOff bool
	// tracing, when set, collects one trace per executed query for the
	// session-wide trace_event export written at exit.
	tracing bool
	traces  []*wasmdb.Trace
}

// repl reads statements from in and writes results to out until EOF, \q, or
// ctx cancellation (SIGINT/SIGTERM). Every failure — parse error, trap,
// timeout, even an engine panic — is printed and the loop continues; a bad
// query must never kill the shell. Canceling ctx aborts the in-flight query
// through its context and still runs the exit path, so a session trace
// (-trace) is written even on interrupt. With a non-empty tracePath, every
// query is traced and the session's timeline is written there as Chrome
// trace_event JSON when the loop ends.
func repl(ctx context.Context, db *wasmdb.DB, in io.Reader, out io.Writer, cfg replConfig) {
	tracePath := cfg.tracePath
	sh := &shell{
		db: db, ctx: ctx, out: out,
		backend: wasmdb.BackendWasm,
		timeout: cfg.timeout,
		tracing: tracePath != "",
		slow:    cfg.slow,
		frec:    wasmdb.NewFlightRecorder(256, 64),
	}
	if cfg.qlogFile != nil {
		sh.qlogEnc = json.NewEncoder(cfg.qlogFile)
	}

	// The scanner feeds a channel so the loop can select against ctx: a
	// signal interrupts the session even while blocked on input. (A reader
	// parked on an un-closable stdin is released when the process exits.)
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
	}()

	fmt.Fprintln(out, "wasmdb shell — SQL → WebAssembly → adaptive execution. \\q to quit.")
loop:
	for {
		fmt.Fprintf(out, "%s> ", sh.backend)
		select {
		case <-ctx.Done():
			fmt.Fprintln(out, "\ninterrupted")
			break loop
		case raw, ok := <-lines:
			if !ok {
				break loop
			}
			line := strings.TrimSpace(raw)
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "\\") {
				if !sh.meta(line) {
					break loop
				}
				continue
			}
			sh.runSQL(line)
		}
	}
	if sh.tracing {
		if err := writeSessionTrace(tracePath, sh.traces); err != nil {
			fmt.Fprintln(out, "error writing trace:", err)
		} else {
			fmt.Fprintf(out, "wrote %d query trace(s) to %s\n", len(sh.traces), tracePath)
		}
	}
}

// writeSessionTrace exports the session's query traces for Perfetto.
func writeSessionTrace(path string, traces []*wasmdb.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wasmdb.WriteTraceEvents(f, traces...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (sh *shell) meta(line string) bool {
	cmd, arg, _ := strings.Cut(line, " ")
	arg = strings.TrimSpace(arg)
	switch cmd {
	case "\\q", "\\quit":
		return false
	case "\\timing":
		sh.timing = !sh.timing
		fmt.Fprintf(sh.out, "timing %v\n", sh.timing)
	case "\\metrics":
		fmt.Fprint(sh.out, sh.db.Metrics().Dump())
	case "\\flightrec":
		if sh.frec.Len() == 0 {
			fmt.Fprintln(sh.out, "flight recorder is empty (captures slow, errored, and 1-in-64 sampled queries)")
			return true
		}
		if arg == "" {
			if err := sh.frec.WriteTraceEvents(sh.out); err != nil {
				fmt.Fprintln(sh.out, "error:", err)
			}
			fmt.Fprintln(sh.out)
			return true
		}
		f, err := os.Create(arg)
		if err == nil {
			err = sh.frec.WriteTraceEvents(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprintf(sh.out, "wrote %d captured quer%s to %s\n",
				sh.frec.Len(), map[bool]string{true: "y", false: "ies"}[sh.frec.Len() == 1], arg)
		}
	case "\\backend":
		switch arg {
		case "auto":
			sh.backend = wasmdb.BackendAuto
		case "wasm", "adaptive":
			sh.backend = wasmdb.BackendWasm
		case "liftoff":
			sh.backend = wasmdb.BackendWasmLiftoff
		case "turbofan":
			sh.backend = wasmdb.BackendWasmTurbofan
		case "hyper":
			sh.backend = wasmdb.BackendHyperLike
		case "vectorized":
			sh.backend = wasmdb.BackendVectorized
		case "volcano":
			sh.backend = wasmdb.BackendVolcano
		default:
			fmt.Fprintln(sh.out, "backends: auto, wasm, liftoff, turbofan, hyper, vectorized, volcano")
		}
	case "\\set":
		key, val, _ := strings.Cut(arg, " ")
		switch key {
		case "backend":
			// Alias for \backend, so "\set backend auto" reads naturally.
			return sh.meta("\\backend " + strings.TrimSpace(val))
		case "parallelism":
			n, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil || n < 0 {
				fmt.Fprintln(sh.out, "usage: \\set parallelism <n>  (1 = serial, 0 = all cores)")
				return true
			}
			if n == 0 {
				n = runtime.GOMAXPROCS(0)
			}
			sh.parallelism = n
			fmt.Fprintf(sh.out, "parallelism %d\n", n)
		case "plancache":
			switch strings.TrimSpace(val) {
			case "on":
				sh.plancacheOff = false
			case "off":
				sh.plancacheOff = true
			default:
				fmt.Fprintln(sh.out, "usage: \\set plancache on|off")
				return true
			}
			fmt.Fprintf(sh.out, "plancache %s\n", strings.TrimSpace(val))
		default:
			fmt.Fprintln(sh.out, "settable: backend, parallelism, plancache")
		}
	case "\\explain":
		out, err := sh.db.Explain(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprint(sh.out, out)
		}
	case "\\wat":
		out, err := sh.db.ExplainWAT(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprint(sh.out, out)
		}
	case "\\tpch":
		src, ok := wasmdb.TPCHQuery(strings.ToUpper(arg))
		if !ok {
			fmt.Fprintln(sh.out, "known queries: Q1, Q3, Q6, Q12, Q14")
			return true
		}
		fmt.Fprintln(sh.out, src)
		sh.runSQL(src)
	default:
		fmt.Fprintln(sh.out, "meta commands: \\backend, \\set, \\explain, \\wat, \\timing, \\metrics, \\flightrec, \\tpch, \\q")
	}
	return true
}

func (sh *shell) runSQL(src string) {
	// Last line of defense: whatever escapes the engine's own panic
	// isolation is reported like any other error and the shell lives on.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(sh.out, "error: internal panic: %v\n", r)
		}
	}()
	upper := strings.ToUpper(strings.TrimSpace(src))
	if strings.HasPrefix(upper, "CREATE") || strings.HasPrefix(upper, "INSERT") {
		if err := sh.db.Exec(src); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprintln(sh.out, "ok")
		}
		return
	}
	opts := []wasmdb.Option{wasmdb.WithBackend(sh.backend)}
	if sh.timeout > 0 {
		opts = append(opts, wasmdb.WithTimeout(sh.timeout))
	}
	if sh.parallelism > 1 {
		opts = append(opts, wasmdb.WithParallelism(sh.parallelism))
	}
	if sh.plancacheOff {
		opts = append(opts, wasmdb.WithPlanCache(false))
	}
	if strings.HasPrefix(upper, "EXPLAIN ANALYZE") {
		rest := strings.TrimSpace(src)[len("EXPLAIN ANALYZE"):]
		out, err := sh.db.ExplainAnalyze(strings.TrimSpace(rest), opts...)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		} else {
			fmt.Fprintln(sh.out, out)
		}
		return
	}
	var tr *wasmdb.Trace
	if sh.tracing {
		tr = wasmdb.NewTrace()
		opts = append(opts, wasmdb.WithTrace(tr))
	}
	// Feed every query into the session telemetry: slow classification
	// against -slow, the flight recorder behind \flightrec, and the
	// structured query log when -querylog is set.
	opts = append(opts, wasmdb.WithQueryLog(func(rec wasmdb.QueryLogRecord) {
		if sh.slow > 0 && rec.TotalNs >= sh.slow.Nanoseconds() {
			rec.Slow = true
		}
		sh.frec.Observe(rec)
		if sh.qlogEnc != nil {
			if err := sh.qlogEnc.Encode(rec); err != nil {
				fmt.Fprintln(sh.out, "querylog error:", err)
			}
		}
	}))
	// The session context flows into execution, so SIGINT aborts the query
	// mid-morsel instead of waiting it out.
	res, err := sh.db.QueryContext(sh.ctx, src, opts...)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	if tr != nil {
		sh.traces = append(sh.traces, tr)
	}
	fmt.Fprint(sh.out, res.Format())
	fmt.Fprintf(sh.out, "(%d rows)\n", res.NumRows())
	if sh.timing {
		s := res.Stats
		fmt.Fprintf(sh.out, "translate=%v liftoff=%v turbofan=%v execute=%v morsels(lo/tf)=%d/%d module=%dB",
			s.Translate, s.Liftoff, s.Turbofan, s.Execute, s.MorselsLiftoff, s.MorselsTurbofan, s.ModuleBytes)
		if s.Workers > 1 {
			fmt.Fprintf(sh.out, " workers=%d pipelines(par/ser)=%d/%d", s.Workers, s.PipelinesParallel, s.PipelinesSerial)
		}
		fmt.Fprintln(sh.out)
	}
}
