package wasmdb_test

import (
	"strings"
	"sync"
	"testing"

	"wasmdb"
)

// autoDiff asserts backend-auto produces byte-identical results to every
// manual backend for src — cold (plan cache flushed first), warm (second
// run, feedback present), and with an explicit parallel worker request.
func autoDiff(t *testing.T, db *wasmdb.DB, src string, ordered bool) {
	t.Helper()
	ref, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendVolcano))
	if err != nil {
		t.Fatalf("volcano oracle: %v\nquery: %s", err, src)
	}
	want := formatSorted(t, ref, ordered)
	for _, b := range allBackends {
		res, err := db.Query(src, wasmdb.WithBackend(b))
		if err != nil {
			t.Fatalf("%v: %v\nquery: %s", b, err, src)
		}
		if got := formatSorted(t, res, ordered); got != want {
			t.Errorf("%v disagrees with volcano on %q:\n--- volcano ---\n%s\n--- %v ---\n%s",
				b, src, clip(want), b, clip(got))
		}
	}
	check := func(label string, opts ...wasmdb.Option) {
		res, err := db.Query(src, opts...)
		if err != nil {
			t.Fatalf("auto %s: %v\nquery: %s", label, err, src)
		}
		if res.Stats.Auto == "" {
			t.Errorf("auto %s: no decision recorded on %q", label, src)
		}
		if got := formatSorted(t, res, ordered); got != want {
			t.Errorf("auto %s (chose %s) disagrees with volcano on %q:\n--- volcano ---\n%s\n--- auto ---\n%s",
				label, res.Stats.Auto, src, clip(want), clip(got))
		}
	}
	db.FlushPlanCache()
	check("cold", wasmdb.WithAutoTuning())
	check("warm", wasmdb.WithAutoTuning())
	check("parallel", wasmdb.WithAutoTuning(), wasmdb.WithParallelism(2))
	check("cache-off", wasmdb.WithAutoTuning(), wasmdb.WithPlanCache(false))
}

// TestAutoDifferential is the auto-tuning correctness oracle: whatever the
// autopilot picks, the bytes must match every manual backend.
func TestAutoDifferential(t *testing.T) {
	db := tpchDB(t)
	for _, id := range []string{"Q1", "Q3", "Q6", "Q12", "Q14"} {
		id := id
		t.Run(id, func(t *testing.T) {
			src, ok := wasmdb.TPCHQuery(id)
			if !ok {
				t.Fatalf("unknown query %s", id)
			}
			autoDiff(t, db, src, strings.Contains(src, "ORDER BY"))
		})
	}
	t.Run("micro", func(t *testing.T) {
		for _, q := range []struct {
			src     string
			ordered bool
		}{
			// Tiny: lands in the volcano band.
			{"SELECT COUNT(*), SUM(s_acctbal) FROM supplier", false},
			// Mid: vectorized/liftoff band.
			{"SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment", false},
			// Large scan: adaptive band.
			{"SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 25", false},
			// Order-stable shapes the worker grant considers.
			{"SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 25", true},
			{"SELECT l_orderkey, l_linenumber FROM lineitem WHERE l_shipmode = 'AIR' ORDER BY l_orderkey, l_linenumber LIMIT 100", true},
			// Join + empty result edge.
			{"SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey AND o_totalprice > 200000.0", false},
			{"SELECT l_orderkey FROM lineitem WHERE l_quantity < 0", false},
		} {
			autoDiff(t, db, q.src, q.ordered)
		}
	})
}

// TestAutoPreparedDecisionFlip pins the satellite: the decision for a
// prepared statement must resolve bound parameters first. The same statement
// flips between interpretation and adaptive compilation purely on the bound
// LIMIT value — in both bind orders, so the shared feedback slot cannot drag
// one binding's decision onto the other.
func TestAutoPreparedDecisionFlip(t *testing.T) {
	for _, order := range []string{"small-first", "large-first"} {
		order := order
		t.Run(order, func(t *testing.T) {
			db := tpchDB(t)
			stmt, err := db.Prepare("SELECT l_orderkey FROM lineitem LIMIT ?")
			if err != nil {
				t.Fatal(err)
			}
			run := func(limit int) string {
				t.Helper()
				res, err := stmt.QueryContext(nil, []any{limit}, wasmdb.WithAutoTuning())
				if err != nil {
					t.Fatal(err)
				}
				if res.NumRows() != limit {
					t.Fatalf("limit %d returned %d rows", limit, res.NumRows())
				}
				return res.Stats.Auto
			}
			binds := []int{4, 60000}
			if order == "large-first" {
				binds = []int{60000, 4}
			}
			choices := map[int]string{}
			for _, n := range binds {
				choices[n] = run(n)
			}
			if choices[4] != "volcano" {
				t.Errorf("bind 4: choice %q, want volcano", choices[4])
			}
			if choices[60000] != "adaptive" {
				t.Errorf("bind 60000: choice %q, want adaptive", choices[60000])
			}
			// Repeat with feedback present: decisions must hold steady.
			for _, n := range binds {
				if got := run(n); got != choices[n] {
					t.Errorf("bind %d warm: choice %q, want %q", n, got, choices[n])
				}
			}
		})
	}
}

// TestAutoMispredictionCorrected pins the feedback loop end to end: stacked
// always-true conjuncts make the planner estimate ~6% of customer, the cold
// decision interprets, and the warm decision — corrected by the observed
// cardinality on the feedback slot — compiles. DDL flushes the feedback, so
// the decision after a schema change is cold again.
func TestAutoMispredictionCorrected(t *testing.T) {
	db := tpchDB(t)
	src := "SELECT c_custkey, c_acctbal FROM customer " +
		"WHERE c_acctbal > -99999 AND c_acctbal > -99998 AND c_acctbal > -99997 AND c_acctbal > -99996 " +
		"ORDER BY c_custkey"
	query := func() wasmdb.Stats {
		t.Helper()
		res, err := db.Query(src, wasmdb.WithAutoTuning())
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	cold := query()
	if cold.Auto != "vectorized" {
		t.Fatalf("cold choice %q, want vectorized (est-work misprediction setup broke)", cold.Auto)
	}
	warm := query()
	if warm.Auto == cold.Auto {
		t.Fatalf("warm choice %q did not change from cold", warm.Auto)
	}
	if warm.Auto != "liftoff" {
		t.Errorf("warm choice %q, want liftoff", warm.Auto)
	}
	if !strings.Contains(warm.AutoReason, "feedback-corrected") {
		t.Errorf("warm reason %q does not mention the correction", warm.AutoReason)
	}
	// The corrected decision is stable across further warm hits.
	if again := query(); again.Auto != warm.Auto {
		t.Errorf("second warm choice %q, want %q", again.Auto, warm.Auto)
	}
	// DDL invalidates the observed feedback along with the cached code.
	if err := db.Exec("CREATE TABLE autoflush (x INT)"); err != nil {
		t.Fatal(err)
	}
	if reset := query(); reset.Auto != cold.Auto {
		t.Errorf("post-DDL choice %q, want cold choice %q", reset.Auto, cold.Auto)
	}
}

// TestAutoConcurrentWarmHits hammers one query shape from many goroutines so
// the per-execution feedback write-back races against concurrent decisions
// reading the same slot — run under -race, nothing may tear.
func TestAutoConcurrentWarmHits(t *testing.T) {
	db := tpchDB(t)
	src := "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 25"
	// Prime: one cold run creates the cache entry and the feedback slot.
	if _, err := db.Query(src, wasmdb.WithAutoTuning()); err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, err := db.Query(src, wasmdb.WithAutoTuning())
				if err != nil {
					errs <- err
					return
				}
				if res.NumRows() != 1 || res.Stats.Auto == "" {
					errs <- nil
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent warm hit: %v", err)
	}
}

// TestAutoExplainAnalyze checks the decision's EXPLAIN ANALYZE surface.
func TestAutoExplainAnalyze(t *testing.T) {
	db := tpchDB(t)
	out, err := db.ExplainAnalyze("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25", wasmdb.WithAutoTuning())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "auto ") || !strings.Contains(out, "est-work") {
		t.Errorf("EXPLAIN ANALYZE missing the auto line:\n%s", out)
	}
}
