package wasmdb_test

import (
	"sort"
	"strings"
	"testing"

	"wasmdb"
)

// allBackends lists every execution architecture; differential tests demand
// bit-identical result sets across all of them.
var allBackends = []wasmdb.Backend{
	wasmdb.BackendWasm,
	wasmdb.BackendWasmLiftoff,
	wasmdb.BackendWasmTurbofan,
	wasmdb.BackendHyperLike,
	wasmdb.BackendVectorized,
	wasmdb.BackendVolcano,
}

func formatSorted(t *testing.T, r *wasmdb.Result, ordered bool) string {
	t.Helper()
	lines := make([]string, r.NumRows())
	for i := range lines {
		lines[i] = strings.Join(r.Row(i), "|")
	}
	if !ordered {
		sort.Strings(lines)
	}
	return strings.Join(lines, "\n")
}

func diffQuery(t *testing.T, db *wasmdb.DB, src string, ordered bool) {
	t.Helper()
	var ref string
	var refBackend wasmdb.Backend
	for _, b := range allBackends {
		res, err := db.Query(src, wasmdb.WithBackend(b))
		if err != nil {
			t.Fatalf("%v: %v\nquery: %s", b, err, src)
		}
		got := formatSorted(t, res, ordered)
		if ref == "" && refBackend == 0 {
			ref, refBackend = got, b
			continue
		}
		if got != ref {
			t.Errorf("%v disagrees with %v on %q:\n--- %v ---\n%s\n--- %v ---\n%s",
				b, refBackend, src, refBackend, clip(ref), b, clip(got))
		}
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "\n…"
	}
	return s
}

func tpchDB(t *testing.T) *wasmdb.DB {
	t.Helper()
	db := wasmdb.Open()
	if err := db.LoadTPCH(0.01, 42); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTPCHDifferential runs every reproduced TPC-H query on every backend
// and requires identical results — the project's primary correctness
// oracle.
func TestTPCHDifferential(t *testing.T) {
	db := tpchDB(t)
	for _, id := range []string{"Q1", "Q3", "Q6", "Q12", "Q14"} {
		id := id
		t.Run(id, func(t *testing.T) {
			src, ok := wasmdb.TPCHQuery(id)
			if !ok {
				t.Fatalf("unknown query %s", id)
			}
			ordered := strings.Contains(src, "ORDER BY")
			diffQuery(t, db, src, ordered)
		})
	}
}

// TestMicroDifferential covers the §8.2-style building blocks plus edge
// cases on every backend.
func TestMicroDifferential(t *testing.T) {
	db := tpchDB(t)
	queries := []struct {
		src     string
		ordered bool
	}{
		{"SELECT COUNT(*) FROM lineitem", false},
		{"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25", false},
		{"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25 AND l_discount < 0.05", false},
		{"SELECT COUNT(*), SUM(l_extendedprice), MIN(l_shipdate), MAX(l_shipdate) FROM lineitem", false},
		{"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag", false},
		{"SELECT l_shipmode, MIN(l_quantity), MAX(l_quantity) FROM lineitem GROUP BY l_shipmode", false},
		{"SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority ORDER BY o_orderpriority", true},
		{"SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey AND o_totalprice > 200000.0", false},
		{"SELECT c_mktsegment, COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey GROUP BY c_mktsegment", false},
		{"SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 25", true},
		{"SELECT l_orderkey, l_linenumber FROM lineitem WHERE l_shipmode = 'AIR' ORDER BY l_orderkey, l_linenumber LIMIT 100", true},
		{"SELECT COUNT(*) FROM part WHERE p_type LIKE 'PROMO%'", false},
		{"SELECT COUNT(*) FROM part WHERE p_type LIKE '%BRASS'", false},
		{"SELECT COUNT(*) FROM part WHERE p_type LIKE '%ANODIZED%'", false},
		{"SELECT COUNT(*) FROM part WHERE p_type NOT LIKE 'PROMO%'", false},
		{"SELECT COUNT(*) FROM orders WHERE o_orderpriority IN ('1-URGENT', '5-LOW')", false},
		{"SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 10 AND 20", false},
		{"SELECT COUNT(*) FROM lineitem WHERE NOT (l_quantity < 25)", false},
		{"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 10 OR l_quantity > 45", false},
		{"SELECT EXTRACT(YEAR FROM o_orderdate) AS y, COUNT(*) FROM orders GROUP BY EXTRACT(YEAR FROM o_orderdate) ORDER BY y", true},
		{"SELECT SUM(CASE WHEN l_discount > 0.05 THEN l_extendedprice ELSE 0 END) FROM lineitem", false},
		{"SELECT COUNT(*) FROM lineitem WHERE l_commitdate < l_receiptdate", false},
		{"SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= DATE '1995-01-01' AND l_shipdate < DATE '1996-01-01'", false},
		{"SELECT COUNT(*), AVG(l_quantity) FROM lineitem WHERE l_discount = 0.03", false},
		// HAVING: grouped, keyless, and zero-input cases.
		{"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag HAVING COUNT(*) > 100", false},
		{"SELECT l_shipmode, SUM(l_quantity), COUNT(*) FROM lineitem GROUP BY l_shipmode HAVING MIN(l_quantity) < 5 OR COUNT(*) > 500", false},
		{"SELECT l_returnflag, AVG(l_quantity) FROM lineitem GROUP BY l_returnflag HAVING AVG(l_quantity) > 25 ORDER BY l_returnflag", true},
		{"SELECT COUNT(*) FROM lineitem HAVING COUNT(*) > 0", false},
		{"SELECT COUNT(*) FROM lineitem HAVING COUNT(*) < 0", false},
		// Zero input rows: the zero group exists and HAVING decides its fate.
		{"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 0 HAVING COUNT(*) = 0", false},
		{"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 0 HAVING COUNT(*) > 0", false},
		{"SELECT l_returnflag, COUNT(*) FROM lineitem WHERE l_quantity < 0 GROUP BY l_returnflag HAVING COUNT(*) > 0", false},
		// Empty result sets.
		{"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 0", false},
		{"SELECT l_returnflag, COUNT(*) FROM lineitem WHERE l_quantity < 0 GROUP BY l_returnflag", false},
		{"SELECT l_orderkey FROM lineitem WHERE l_quantity < 0", false},
	}
	for _, q := range queries {
		diffQuery(t, db, q.src, q.ordered)
	}
}

// TestCreateInsertQuery exercises the DDL/DML path of the public API.
func TestCreateInsertQuery(t *testing.T) {
	db := wasmdb.Open()
	mustExec := func(s string) {
		t.Helper()
		if err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	mustExec(`CREATE TABLE items (id INT, name CHAR(12), price DECIMAL(10,2), added DATE)`)
	mustExec(`INSERT INTO items VALUES
		(1, 'hammer', 9.99, DATE '2024-01-05'),
		(2, 'wrench', 14.50, DATE '2024-02-11'),
		(3, 'pliers', 7.25, DATE '2024-02-28'),
		(4, 'saw', 22.00, DATE '2024-03-02')`)
	diffQuery(t, db, "SELECT name, price FROM items WHERE price < 15.00 ORDER BY price DESC", true)
	res, err := db.Query("SELECT COUNT(*), SUM(price) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Row(0)[0] != "4" || res.Row(0)[1] != "53.74" {
		t.Fatalf("unexpected: %v", res.Row(0))
	}
}

// TestAdaptiveStatsExposed checks the paper's observable: morsels migrate
// from the baseline tier to the optimized tier mid-query.
func TestAdaptiveStatsExposed(t *testing.T) {
	db := tpchDB(t)
	res, err := db.Query("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 30",
		wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithMorselRows(256))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MorselsLiftoff+res.Stats.MorselsTurbofan == 0 {
		t.Error("no morsel accounting")
	}
	if res.Stats.ModuleBytes == 0 || res.Stats.Translate == 0 {
		t.Errorf("missing stats: %+v", res.Stats)
	}
}

func TestExplain(t *testing.T) {
	db := tpchDB(t)
	src, _ := wasmdb.TPCHQuery("Q3")
	out, err := db.Explain(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HashJoin", "GroupBy", "Sort", "pipelines", "scan lineitem"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	wat, err := db.ExplainWAT("SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode ORDER BY l_shipmode")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"$pipeline_0", "$qsort_", "$grow_group", "$q_init"} {
		if !strings.Contains(wat, want) {
			t.Errorf("WAT missing %q", want)
		}
	}
}
