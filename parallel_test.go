package wasmdb_test

import (
	"context"
	"strings"
	"testing"

	"wasmdb"
)

// parallelCorpus spans every pipeline shape: parallel-eligible scans,
// keyless and grouped aggregations, joins, and sorts, plus queries that must
// fall back (LIMIT, float SUM) and still agree with serial execution.
var parallelCorpus = []struct {
	src     string
	ordered bool
}{
	{"SELECT COUNT(*) FROM lineitem", false},
	{"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 25", false},
	{"SELECT COUNT(*), MIN(l_shipdate), MAX(l_shipdate) FROM lineitem", false},
	{"SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_discount < 0.05", false},
	{"SELECT l_orderkey, l_quantity FROM lineitem WHERE l_quantity < 3", false},
	{"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag", false},
	{"SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_returnflag, l_linestatus", false},
	{"SELECT l_shipmode, MIN(l_quantity), MAX(l_quantity) FROM lineitem GROUP BY l_shipmode ORDER BY l_shipmode", true},
	{"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag HAVING COUNT(*) > 100", false},
	{"SELECT l_orderkey, l_linenumber FROM lineitem ORDER BY l_orderkey, l_linenumber", true},
	{"SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey AND o_totalprice > 200000.0", false},
	{"SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 25", true},
	{"SELECT l_orderkey FROM lineitem WHERE l_quantity < 10 LIMIT 50", false},
	{"SELECT COUNT(*), AVG(l_quantity) FROM lineitem WHERE l_discount = 0.03", false},
	{"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 0", false},
	{"SELECT l_returnflag, COUNT(*) FROM lineitem WHERE l_quantity < 0 GROUP BY l_returnflag", false},
}

// TestParallelDifferential is the serial-vs-parallel oracle: every corpus
// query must produce the same result multiset with a 4-worker pool as with
// serial execution (row order is compared only for ORDER BY queries).
func TestParallelDifferential(t *testing.T) {
	db := tpchDB(t)
	for _, c := range parallelCorpus {
		serial, err := db.Query(c.src, wasmdb.WithBackend(wasmdb.BackendWasm))
		if err != nil {
			t.Fatalf("serial: %v\nquery: %s", err, c.src)
		}
		par, err := db.Query(c.src, wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithParallelism(4))
		if err != nil {
			t.Fatalf("parallel: %v\nquery: %s", err, c.src)
		}
		// LIMIT without ORDER BY is non-deterministic in principle, but the
		// executor runs those serially (see the fallback matrix), so exact
		// agreement is still required.
		want := formatSorted(t, serial, c.ordered)
		got := formatSorted(t, par, c.ordered)
		if got != want {
			t.Errorf("parallel disagrees with serial on %q:\n--- serial ---\n%s\n--- parallel ---\n%s",
				c.src, clip(want), clip(got))
		}
		if par.Stats.Workers < 1 {
			t.Errorf("%s: stats did not record a worker count", c.src)
		}
	}

	// TPC-H: the full reproduced queries under parallelism.
	for _, id := range []string{"Q1", "Q3", "Q6", "Q12", "Q14"} {
		src, _ := wasmdb.TPCHQuery(id)
		ordered := strings.Contains(src, "ORDER BY")
		serial, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendWasm))
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		par, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithParallelism(4))
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if got, want := formatSorted(t, par, ordered), formatSorted(t, serial, ordered); got != want {
			t.Errorf("%s: parallel disagrees with serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, clip(want), clip(got))
		}
	}
}

// TestParallelStatsSurface checks the public stats plumbing: an eligible
// aggregation reports its pool size and parallel pipeline, a join reports
// both of its pipelines parallel and the merged build partitions.
func TestParallelStatsSurface(t *testing.T) {
	db := tpchDB(t)
	res, err := db.Query("SELECT COUNT(*), MIN(l_quantity) FROM lineitem",
		wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Workers != 2 || s.PipelinesParallel != 1 || s.PipelinesSerial != 0 {
		t.Errorf("aggregation stats = workers %d, parallel %d, serial %d; want 2/1/0",
			s.Workers, s.PipelinesParallel, s.PipelinesSerial)
	}

	res, err = db.Query("SELECT COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey",
		wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	s = res.Stats
	if s.Workers != 4 || s.PipelinesParallel != 2 || s.SerialFallback != "" {
		t.Errorf("join stats = workers %d, parallel %d, serial %d, fallback %q; want both pipelines parallel",
			s.Workers, s.PipelinesParallel, s.PipelinesSerial, s.SerialFallback)
	}
	if s.JoinPartitionsMerged == 0 {
		t.Error("parallel join reported no merged build partitions")
	}
}

// TestParallelGroupedTPCH is the headline acceptance check: TPC-H Q1 (grouped
// aggregation over decimals with ORDER BY) under a 4-worker pool must scan in
// parallel, merge partial groups, record no fallback, and produce
// byte-identical rows to serial execution. The post-merge output and sort
// pipelines legitimately run serially on the primary worker.
func TestParallelGroupedTPCH(t *testing.T) {
	db := tpchDB(t)
	src, _ := wasmdb.TPCHQuery("Q1")
	serial, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendWasm))
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := formatSorted(t, par, true), formatSorted(t, serial, true); got != want {
		t.Errorf("Q1 parallel differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			clip(want), clip(got))
	}
	s := par.Stats
	if s.Workers != 4 || s.PipelinesParallel == 0 || s.SerialFallback != "" {
		t.Errorf("Q1 stats = workers %d, parallel %d, fallback %q; want a merged parallel scan",
			s.Workers, s.PipelinesParallel, s.SerialFallback)
	}
	if s.GroupsMerged == 0 {
		t.Error("Q1 under parallelism reported no merged groups")
	}
}

// TestPreparedLimitParallel pins the classifier × plan-cache interaction: a
// cached module compiled for LIMIT ? must be classified against the limit
// bound at execution time, not the compile-time placeholder — each run takes
// the serial LIMIT path and returns exactly the bound number of rows.
func TestPreparedLimitParallel(t *testing.T) {
	db := tpchDB(t)
	stmt, err := db.Prepare("SELECT l_orderkey FROM lineitem WHERE l_quantity < ? LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{5, 17} {
		res, err := stmt.QueryContext(context.Background(), []any{30, limit},
			wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithParallelism(4))
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if res.NumRows() != limit {
			t.Errorf("limit %d returned %d rows", limit, res.NumRows())
		}
		if res.Stats.SerialFallback != "limit" || res.Stats.PipelinesParallel != 0 {
			t.Errorf("limit %d: stats = parallel %d, fallback %q; want serial limit fallback",
				limit, res.Stats.PipelinesParallel, res.Stats.SerialFallback)
		}
	}
	// The same prepared scan without a limit binding stays parallel-eligible.
	noLim, err := db.Prepare("SELECT l_orderkey FROM lineitem WHERE l_quantity < ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := noLim.QueryContext(context.Background(), []any{3},
		wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PipelinesParallel != 1 || res.Stats.SerialFallback != "" {
		t.Errorf("unlimited prepared scan: stats = parallel %d, fallback %q; want parallel",
			res.Stats.PipelinesParallel, res.Stats.SerialFallback)
	}
}
