package wasmdb_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wasmdb"
	"wasmdb/internal/engine"
	"wasmdb/internal/engine/rt"
	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/wasm"
)

// TestRandomQueryDifferential generates random queries from a small grammar
// and demands identical results across all six backend configurations —
// property-based testing with the backends as each other's oracles.
func TestRandomQueryDifferential(t *testing.T) {
	db := wasmdb.Open()
	mustExec := func(s string) {
		if err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE t (id INT, a INT, b INT, f DOUBLE, dec DECIMAL(10,2), d DATE, s CHAR(8), g INT)`)
	rng := rand.New(rand.NewSource(20260705))
	words := []string{"alpha", "beta", "gamma", "PROMO", "PROMO X", "delta", ""}
	var rows []string
	for i := 0; i < 2000; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %d.%04d, %d.%02d, DATE '19%02d-%02d-%02d', '%s', %d)",
			i, rng.Intn(1000)-500, rng.Intn(100), rng.Intn(3), rng.Intn(10000),
			rng.Intn(1000), rng.Intn(100),
			90+rng.Intn(10), 1+rng.Intn(12), 1+rng.Intn(28),
			words[rng.Intn(len(words))], rng.Intn(6)))
	}
	mustExec("INSERT INTO t VALUES " + strings.Join(rows, ", "))

	genPred := func(depth int) string {
		var gen func(d int) string
		gen = func(d int) string {
			if d > 0 && rng.Intn(2) == 0 {
				op := "AND"
				if rng.Intn(2) == 0 {
					op = "OR"
				}
				lhs, rhs := gen(d-1), gen(d-1)
				p := fmt.Sprintf("(%s %s %s)", lhs, op, rhs)
				if rng.Intn(4) == 0 {
					p = "NOT " + p
				}
				return p
			}
			switch rng.Intn(8) {
			case 0:
				return fmt.Sprintf("a %s %d", cmpOps[rng.Intn(len(cmpOps))], rng.Intn(1000)-500)
			case 1:
				return fmt.Sprintf("f %s %d.%02d", cmpOps[rng.Intn(len(cmpOps))], rng.Intn(3), rng.Intn(100))
			case 2:
				return fmt.Sprintf("dec %s %d.%02d", cmpOps[rng.Intn(len(cmpOps))], rng.Intn(1000), rng.Intn(100))
			case 3:
				return fmt.Sprintf("d %s DATE '19%02d-06-15'", cmpOps[rng.Intn(len(cmpOps))], 90+rng.Intn(10))
			case 4:
				return fmt.Sprintf("b BETWEEN %d AND %d", rng.Intn(50), 50+rng.Intn(50))
			case 5:
				return fmt.Sprintf("g IN (%d, %d)", rng.Intn(6), rng.Intn(6))
			case 6:
				pats := []string{"PROMO%", "%a", "%mm%", "alpha", "%et%", "a%a", "_eta"}
				return fmt.Sprintf("s LIKE '%s'", pats[rng.Intn(len(pats))])
			default:
				return fmt.Sprintf("s = '%s'", words[rng.Intn(len(words)-1)])
			}
		}
		return gen(depth)
	}

	for trial := 0; trial < 40; trial++ {
		var sb strings.Builder
		grouped := rng.Intn(2) == 0
		ordered := false
		if grouped {
			keys := []string{"g"}
			if rng.Intn(3) == 0 {
				keys = []string{"g", "s"}
			}
			aggs := []string{"COUNT(*)", "SUM(a)", "MIN(b)", "MAX(f)", "AVG(dec)", "SUM(dec)"}
			n := 1 + rng.Intn(3)
			sel := append([]string{}, keys...)
			for k := 0; k < n; k++ {
				sel = append(sel, aggs[rng.Intn(len(aggs))])
			}
			fmt.Fprintf(&sb, "SELECT %s FROM t", strings.Join(sel, ", "))
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, " WHERE %s", genPred(2))
			}
			fmt.Fprintf(&sb, " GROUP BY %s", strings.Join(keys, ", "))
		} else {
			fmt.Fprintf(&sb, "SELECT id, a, s FROM t")
			if rng.Intn(4) != 0 {
				fmt.Fprintf(&sb, " WHERE %s", genPred(2))
			}
			if rng.Intn(2) == 0 {
				ordered = true
				fmt.Fprintf(&sb, " ORDER BY a, id")
				if rng.Intn(2) == 0 {
					fmt.Fprintf(&sb, " LIMIT %d", 1+rng.Intn(50))
				}
			}
		}
		src := sb.String()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			diffQuery(t, db, src, ordered)
		})
	}
}

var cmpOps = []string{"=", "<>", "<", "<=", ">", ">="}

// TestFeatureMatrix asserts the capability claims of the paper's Figure 2b
// for this architecture: an interpreted-speed start (fast baseline tier),
// fast JIT compilation, optimizing compilation, and adaptive execution —
// all provided by the off-the-shelf engine.
func TestFeatureMatrix(t *testing.T) {
	db := wasmdb.Open()
	if err := db.LoadTPCH(0.02, 42); err != nil {
		t.Fatal(err)
	}
	src, _ := wasmdb.TPCHQuery("Q1")

	// Fast JIT compilation: the baseline tier compiles faster than the
	// optimizing tier (take the best of a few runs — timings jitter under
	// CPU contention). The plan cache is off: a cache hit reports zero
	// compile time, and this test exists to measure compilation.
	best := func(b wasmdb.Backend, pick func(wasmdb.Stats) int64) (int64, *wasmdb.Result) {
		bestV := int64(1 << 62)
		var last *wasmdb.Result
		for i := 0; i < 3; i++ {
			res, err := db.Query(src, wasmdb.WithBackend(b), wasmdb.WithPlanCache(false))
			if err != nil {
				t.Fatal(err)
			}
			if v := pick(res.Stats); v < bestV {
				bestV = v
			}
			last = res
		}
		return bestV, last
	}
	loC, lo := best(wasmdb.BackendWasmLiftoff, func(s wasmdb.Stats) int64 { return int64(s.Liftoff) })
	tfC, tf := best(wasmdb.BackendWasmTurbofan, func(s wasmdb.Stats) int64 { return int64(s.Turbofan) })
	if loC == 0 || tfC == 0 {
		t.Fatalf("missing compile stats: %+v %+v", lo.Stats, tf.Stats)
	}
	if loC >= tfC {
		t.Errorf("baseline compile (%v) not faster than optimizing compile (%v)", loC, tfC)
	} else {
		t.Logf("compile asymmetry: liftoff %vns vs turbofan %vns (%.1fx)", loC, tfC, float64(tfC)/float64(loC))
	}
	// Optimizing compilation pays off at execution time.
	if tf.Stats.Execute >= lo.Stats.Execute {
		t.Logf("note: turbofan execute %v not faster than liftoff %v on this run",
			tf.Stats.Execute, lo.Stats.Execute)
	}

	// Adaptive execution: with small morsels, some calls run on each tier.
	ad, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithMorselRows(512))
	if err != nil {
		t.Fatal(err)
	}
	if ad.Stats.MorselsLiftoff+ad.Stats.MorselsTurbofan == 0 {
		t.Fatal("no morsels recorded")
	}
	if ad.Stats.MorselsTurbofan == 0 {
		t.Log("note: query finished before background optimization (acceptable on tiny data)")
	}

	// Hardware independence: the interchange format is genuine WebAssembly;
	// the same module bytes validate and decode.
	wat, err := db.ExplainWAT(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wat, "(module") {
		t.Error("no module generated")
	}
}

// FuzzAdversarialModuleExecution builds a syntactically valid but
// semantically hostile Wasm module from the fuzz input and executes it under
// every tier with fuel and memory budgets armed. The properties under test:
// no panic ever escapes the engine's call boundary, every failure is a typed
// error, and the instance survives to serve a well-behaved function
// afterwards. The generator deliberately emits wild addresses, division by
// fuzz-chosen constants, unbounded memory growth, and (rarely) genuine
// infinite loops — the fuel budget must contain all of it.
func FuzzAdversarialModuleExecution(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x80, 0xFF, 0x07, 0x13})
	f.Add([]byte("divide and conquer"))
	f.Add([]byte{0xE0, 0xE0, 0xE0}) // loop-heavy
	f.Add(bytes.Repeat([]byte{0x55, 0xAA}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		bin := buildAdversarialModule(data)
		for _, tier := range []engine.Tier{engine.TierLiftoff, engine.TierTurbofan, engine.TierAdaptive} {
			m, err := engine.New(engine.Config{Tier: tier}).Compile(bin)
			if err != nil {
				// The generator should only emit valid modules; a rejection
				// is a generator bug worth knowing about.
				t.Fatalf("%v: generated module rejected: %v", tier, err)
			}
			inst, err := m.Instantiate(engine.Imports{})
			if err != nil {
				t.Fatalf("%v: instantiate: %v", tier, err)
			}
			inst.SetFuel(200_000)
			inst.SetMemoryBudget(64)
			if _, err := inst.Call("adv"); err != nil {
				// Traps, fuel exhaustion, and memory limits are legitimate
				// outcomes for hostile code — but only as typed errors.
				switch {
				case errors.Is(err, engine.ErrFuelExhausted),
					errors.Is(err, engine.ErrMemoryLimit):
				default:
					var te *rt.TrapError
					var mt *wmem.Trap
					if !errors.As(err, &te) && !errors.As(err, &mt) {
						t.Fatalf("%v: adv failed with untyped error %T: %v", tier, err, err)
					}
				}
			}
			// The guardrail invariant: whatever the adversarial function
			// did, the instance still answers.
			inst.SetFuel(10_000)
			got, err := inst.Call("ok")
			if err != nil || got[0] != 42 {
				t.Fatalf("%v: instance unusable after adversarial call: %v %v", tier, got, err)
			}
			if err := m.WaitOptimized(); err != nil {
				t.Fatalf("%v: background compile failed on valid module: %v", tier, err)
			}
		}
	})
}

// buildAdversarialModule translates fuzz bytes into a valid module with an
// "adv" function (the hostile payload) and an "ok" function (the liveness
// probe). A simulated operand-stack depth keeps the emission well-typed.
func buildAdversarialModule(data []byte) []byte {
	b := wasm.NewModuleBuilder()
	b.AddMemory(1, 128)

	adv := b.NewFunc("adv", wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	depth := 0
	live := true // false once an infinite loop makes the rest unreachable
	ctr := adv.AddLocal(wasm.I64)
	for i := 0; i < len(data) && live; i++ {
		op := data[i]
		var imm int64 = int64(op) * 0x9E3779B9 // spread fuzz bytes around
		if i+1 < len(data) {
			imm = int64(op)<<8 | int64(data[i+1])
		}
		switch {
		case depth < 2 || op < 0x30: // push a constant
			adv.I64Const(imm)
			depth++
		case op < 0x60: // arithmetic, including trapping division
			ops := []wasm.Opcode{wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul,
				wasm.OpI64DivS, wasm.OpI64RemU, wasm.OpI64Xor, wasm.OpI64Shl}
			adv.Op(ops[int(op)%len(ops)])
			depth--
		case op < 0x80: // load from a fuzz-chosen (usually wild) address
			adv.Op(wasm.OpI32WrapI64)
			adv.I64Load(uint32(op))
			// depth unchanged: pops address, pushes value
		case op < 0x98: // store through a fuzz-chosen address
			adv.Op(wasm.OpI32WrapI64)
			adv.I64Const(imm)
			adv.I64Store(0)
			depth--
		case op < 0xB0: // memory.grow by a fuzz-chosen page count
			adv.Op(wasm.OpI32WrapI64)
			adv.MemoryGrow()
			adv.Op(wasm.OpI64ExtendI32U)
		case op < 0xC8: // complete if/else unit consuming one value
			adv.Op(wasm.OpI32WrapI64)
			adv.If(wasm.BlockOf(wasm.I64))
			adv.I64Const(imm)
			adv.Else()
			adv.I64Const(-imm)
			adv.End()
		case op < 0xF0: // bounded counting loop (fuel-charged back edge)
			adv.I64Const(int64(op&0x3F) + 1)
			adv.LocalSet(ctr)
			adv.Loop(wasm.BlockVoid)
			adv.LocalGet(ctr)
			adv.I64Const(1)
			adv.Op(wasm.OpI64Sub)
			adv.LocalTee(ctr)
			adv.Op(wasm.OpI64Eqz)
			adv.Op(wasm.OpI32Eqz)
			adv.BrIf(0)
			adv.End()
		default: // rare: genuine infinite loop; only fuel can stop this
			for depth > 1 {
				adv.Op(wasm.OpI64Xor)
				depth--
			}
			if depth == 1 {
				adv.Drop()
				depth--
			}
			adv.Loop(wasm.BlockVoid)
			adv.Br(0)
			adv.End()
			live = false
		}
	}
	if live {
		for depth > 1 {
			adv.Op(wasm.OpI64Xor)
			depth--
		}
		if depth == 0 {
			adv.I64Const(0)
		}
	} else {
		// Unreachable dead code still has to satisfy the validator.
		adv.I64Const(0)
	}
	b.Export("adv", wasm.ExternFunc, adv.Index)

	ok := b.NewFunc("ok", wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	ok.I64Const(42)
	b.Export("ok", wasm.ExternFunc, ok.Index)
	return b.Bytes()
}
