package wasmdb_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wasmdb"
)

// TestRandomQueryDifferential generates random queries from a small grammar
// and demands identical results across all six backend configurations —
// property-based testing with the backends as each other's oracles.
func TestRandomQueryDifferential(t *testing.T) {
	db := wasmdb.Open()
	mustExec := func(s string) {
		if err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE t (id INT, a INT, b INT, f DOUBLE, dec DECIMAL(10,2), d DATE, s CHAR(8), g INT)`)
	rng := rand.New(rand.NewSource(20260705))
	words := []string{"alpha", "beta", "gamma", "PROMO", "PROMO X", "delta", ""}
	var rows []string
	for i := 0; i < 2000; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d, %d.%04d, %d.%02d, DATE '19%02d-%02d-%02d', '%s', %d)",
			i, rng.Intn(1000)-500, rng.Intn(100), rng.Intn(3), rng.Intn(10000),
			rng.Intn(1000), rng.Intn(100),
			90+rng.Intn(10), 1+rng.Intn(12), 1+rng.Intn(28),
			words[rng.Intn(len(words))], rng.Intn(6)))
	}
	mustExec("INSERT INTO t VALUES " + strings.Join(rows, ", "))

	genPred := func(depth int) string {
		var gen func(d int) string
		gen = func(d int) string {
			if d > 0 && rng.Intn(2) == 0 {
				op := "AND"
				if rng.Intn(2) == 0 {
					op = "OR"
				}
				lhs, rhs := gen(d-1), gen(d-1)
				p := fmt.Sprintf("(%s %s %s)", lhs, op, rhs)
				if rng.Intn(4) == 0 {
					p = "NOT " + p
				}
				return p
			}
			switch rng.Intn(8) {
			case 0:
				return fmt.Sprintf("a %s %d", cmpOps[rng.Intn(len(cmpOps))], rng.Intn(1000)-500)
			case 1:
				return fmt.Sprintf("f %s %d.%02d", cmpOps[rng.Intn(len(cmpOps))], rng.Intn(3), rng.Intn(100))
			case 2:
				return fmt.Sprintf("dec %s %d.%02d", cmpOps[rng.Intn(len(cmpOps))], rng.Intn(1000), rng.Intn(100))
			case 3:
				return fmt.Sprintf("d %s DATE '19%02d-06-15'", cmpOps[rng.Intn(len(cmpOps))], 90+rng.Intn(10))
			case 4:
				return fmt.Sprintf("b BETWEEN %d AND %d", rng.Intn(50), 50+rng.Intn(50))
			case 5:
				return fmt.Sprintf("g IN (%d, %d)", rng.Intn(6), rng.Intn(6))
			case 6:
				pats := []string{"PROMO%", "%a", "%mm%", "alpha", "%et%", "a%a", "_eta"}
				return fmt.Sprintf("s LIKE '%s'", pats[rng.Intn(len(pats))])
			default:
				return fmt.Sprintf("s = '%s'", words[rng.Intn(len(words)-1)])
			}
		}
		return gen(depth)
	}

	for trial := 0; trial < 40; trial++ {
		var sb strings.Builder
		grouped := rng.Intn(2) == 0
		ordered := false
		if grouped {
			keys := []string{"g"}
			if rng.Intn(3) == 0 {
				keys = []string{"g", "s"}
			}
			aggs := []string{"COUNT(*)", "SUM(a)", "MIN(b)", "MAX(f)", "AVG(dec)", "SUM(dec)"}
			n := 1 + rng.Intn(3)
			sel := append([]string{}, keys...)
			for k := 0; k < n; k++ {
				sel = append(sel, aggs[rng.Intn(len(aggs))])
			}
			fmt.Fprintf(&sb, "SELECT %s FROM t", strings.Join(sel, ", "))
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, " WHERE %s", genPred(2))
			}
			fmt.Fprintf(&sb, " GROUP BY %s", strings.Join(keys, ", "))
		} else {
			fmt.Fprintf(&sb, "SELECT id, a, s FROM t")
			if rng.Intn(4) != 0 {
				fmt.Fprintf(&sb, " WHERE %s", genPred(2))
			}
			if rng.Intn(2) == 0 {
				ordered = true
				fmt.Fprintf(&sb, " ORDER BY a, id")
				if rng.Intn(2) == 0 {
					fmt.Fprintf(&sb, " LIMIT %d", 1+rng.Intn(50))
				}
			}
		}
		src := sb.String()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			diffQuery(t, db, src, ordered)
		})
	}
}

var cmpOps = []string{"=", "<>", "<", "<=", ">", ">="}

// TestFeatureMatrix asserts the capability claims of the paper's Figure 2b
// for this architecture: an interpreted-speed start (fast baseline tier),
// fast JIT compilation, optimizing compilation, and adaptive execution —
// all provided by the off-the-shelf engine.
func TestFeatureMatrix(t *testing.T) {
	db := wasmdb.Open()
	if err := db.LoadTPCH(0.02, 42); err != nil {
		t.Fatal(err)
	}
	src, _ := wasmdb.TPCHQuery("Q1")

	// Fast JIT compilation: the baseline tier compiles faster than the
	// optimizing tier (take the best of a few runs — timings jitter under
	// CPU contention).
	best := func(b wasmdb.Backend, pick func(wasmdb.Stats) int64) (int64, *wasmdb.Result) {
		bestV := int64(1 << 62)
		var last *wasmdb.Result
		for i := 0; i < 3; i++ {
			res, err := db.Query(src, wasmdb.WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			if v := pick(res.Stats); v < bestV {
				bestV = v
			}
			last = res
		}
		return bestV, last
	}
	loC, lo := best(wasmdb.BackendWasmLiftoff, func(s wasmdb.Stats) int64 { return int64(s.Liftoff) })
	tfC, tf := best(wasmdb.BackendWasmTurbofan, func(s wasmdb.Stats) int64 { return int64(s.Turbofan) })
	if loC == 0 || tfC == 0 {
		t.Fatalf("missing compile stats: %+v %+v", lo.Stats, tf.Stats)
	}
	if loC >= tfC {
		t.Errorf("baseline compile (%v) not faster than optimizing compile (%v)", loC, tfC)
	} else {
		t.Logf("compile asymmetry: liftoff %vns vs turbofan %vns (%.1fx)", loC, tfC, float64(tfC)/float64(loC))
	}
	// Optimizing compilation pays off at execution time.
	if tf.Stats.Execute >= lo.Stats.Execute {
		t.Logf("note: turbofan execute %v not faster than liftoff %v on this run",
			tf.Stats.Execute, lo.Stats.Execute)
	}

	// Adaptive execution: with small morsels, some calls run on each tier.
	ad, err := db.Query(src, wasmdb.WithBackend(wasmdb.BackendWasm), wasmdb.WithMorselRows(512))
	if err != nil {
		t.Fatal(err)
	}
	if ad.Stats.MorselsLiftoff+ad.Stats.MorselsTurbofan == 0 {
		t.Fatal("no morsels recorded")
	}
	if ad.Stats.MorselsTurbofan == 0 {
		t.Log("note: query finished before background optimization (acceptable on tiny data)")
	}

	// Hardware independence: the interchange format is genuine WebAssembly;
	// the same module bytes validate and decode.
	wat, err := db.ExplainWAT(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wat, "(module") {
		t.Error("no module generated")
	}
}
