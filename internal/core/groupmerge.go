package core

import (
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// Parallel group-merge exports (host-side partial-state merge). Every worker
// builds a private group hash table during the parallel scan; these three
// ad-hoc exports let the host drain secondary workers' tables, fold the
// partial records per key, and feed the merged records into the primary
// worker, whose output pipeline then runs unchanged. Like the rest of the
// module they are monomorphized against the QEP's types — the merge loop is
// the same inlined probe/claim/combine code shape as the feeding pipeline,
// except that colliding aggregates fold partial states instead of rows.
// Serial execution never calls them.

const (
	groupDumpExport  = "q_groups_dump"
	groupRecvExport  = "q_merge_recv"
	groupMergeExport = "q_group_merge"
)

// genGroupMerge emits the dump/recv/merge exports for the group hash table
// and records the metadata the parallel executor needs. Only the first
// (and in practice only) keyed group of a query gets the exports.
func (c *compiler) genGroupMerge(gr *plan.Group, ht *htInfo, aggSlots []*sema.AggRef) {
	if c.out.GroupMerge != nil {
		return
	}
	gm := &GroupMerge{
		DumpExport:  groupDumpExport,
		RecvExport:  groupRecvExport,
		MergeExport: groupMergeExport,
		CountGlobal: ht.gCount,
		Stride:      ht.layout.stride,
	}
	for _, k := range gr.Keys {
		fld, ok := ht.layout.find(k)
		if !ok {
			return
		}
		gm.Keys = append(gm.Keys, MergeField{Offset: fld.offset, T: fld.t})
	}
	for i, a := range gr.Aggs {
		fld, ok := ht.layout.find(aggSlots[i])
		if !ok {
			return
		}
		gm.Aggs = append(gm.Aggs, MergeAgg{Offset: fld.offset, T: fld.t, Func: a.Func})
	}

	c.genDumpFunc(groupDumpExport, ht)
	gRecv := c.genRecvFunc(groupRecvExport, ht)
	c.genGroupMergeFunc(gr, ht, aggSlots, gRecv)
	c.out.GroupMerge = gm
}

// genDumpFunc emits <name>() -> i32: compact the occupied entries of the
// hash table into a fresh allocation (flag word included, so each record is
// a verbatim entry image) and return its base. The record count is the live
// gCount, read host-side. Shared by the group and join merge protocols.
func (c *compiler) genDumpFunc(name string, ht *htInfo) {
	f := c.b.NewFunc(name, wasm.FuncType{Results: []wasm.ValType{wasm.I32}})
	c.b.Export(name, wasm.ExternFunc, f.Index)
	stride := int32(ht.layout.stride)

	base := f.AddLocal(wasm.I32)
	out := f.AddLocal(wasm.I32)
	cap := f.AddLocal(wasm.I32)
	i := f.AddLocal(wasm.I32)
	entry := f.AddLocal(wasm.I32)

	f.GlobalGet(ht.gCount)
	f.I32Const(stride)
	f.I32Mul()
	f.Call(c.allocFunc().Index)
	f.LocalTee(base)
	f.LocalSet(out)
	f.GlobalGet(ht.gMask)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(cap)

	// for i in 0..cap: if occupied, copy entry to out, out += stride
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(cap)
	f.I32GeU()
	f.BrIf(1)
	f.GlobalGet(ht.gBase)
	f.LocalGet(i)
	f.I32Const(stride)
	f.I32Mul()
	f.I32Add()
	f.LocalSet(entry)
	f.LocalGet(entry)
	f.Emit(wasm.OpI32Load, 0, 2) // occupancy flag
	f.If(wasm.BlockVoid)
	emitWordCopy(f, out, entry, stride)
	f.LocalGet(out)
	f.I32Const(stride)
	f.I32Add()
	f.LocalSet(out)
	f.End()
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(base)
}

// genRecvFunc emits <name>(n) -> i32: allocate room for n merged records,
// remember the base in a dedicated global (the merge loop reads it), and
// return it so the host can write the records. Shared by the group and join
// merge protocols.
func (c *compiler) genRecvFunc(name string, ht *htInfo) uint32 {
	gRecv := c.b.AddGlobal(wasm.I32, true, 0)
	f := c.b.NewFunc(name, wasm.FuncType{
		Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32},
	})
	c.b.Export(name, wasm.ExternFunc, f.Index)
	f.LocalGet(f.Param(0))
	f.I32Const(int32(ht.layout.stride))
	f.I32Mul()
	f.Call(c.allocFunc().Index)
	f.GlobalSet(gRecv)
	f.GlobalGet(gRecv)
	return gRecv
}

// genGroupMergeFunc emits q_group_merge(begin, end) -> i32: fold received
// records [begin, end) into this worker's group table — claim empty slots
// with a verbatim record copy, combine colliding partial states. The
// morsel-shaped signature lets the executor drive it through the same
// callMorsel path as pipelines (tracing and fault injection apply).
func (c *compiler) genGroupMergeFunc(gr *plan.Group, ht *htInfo, aggSlots []*sema.AggRef, gRecv uint32) {
	f := c.b.NewFunc(groupMergeExport, wasm.FuncType{
		Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32},
	})
	c.b.Export(groupMergeExport, wasm.ExternFunc, f.Index)
	g := &gen{c: c, f: f}
	stride := int32(ht.layout.stride)

	i := f.AddLocal(wasm.I32)
	rec := f.AddLocal(wasm.I32)
	entry := f.AddLocal(wasm.I32)

	f.LocalGet(f.Param(0))
	f.LocalSet(i)

	f.Block(wasm.BlockVoid) // all records done
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(f.Param(1))
	f.I32GeU()
	f.BrIf(1)
	f.GlobalGet(gRecv)
	f.LocalGet(i)
	f.I32Const(stride)
	f.I32Mul()
	f.I32Add()
	f.LocalSet(rec)

	// Key sources read from the record, which mirrors the entry layout.
	keys := make([]keySrc, len(gr.Keys))
	for ki, k := range gr.Keys {
		fld, _ := ht.layout.find(k)
		kf := fld
		keys[ki] = keySrc{t: kf.t, pushVal: func() { g.loadField(rec, kf) }}
	}
	h := g.emitHash(keys)
	idx := g.emitSlotIndex(ht, h)

	f.Block(wasm.BlockVoid) // this record done
	f.Loop(wasm.BlockVoid)
	g.emitEntryPtr(ht, idx, entry)
	f.LocalGet(entry)
	f.Emit(wasm.OpI32Load, 0, 2)
	f.I32Eqz()
	f.If(wasm.BlockVoid)
	// Claim: the record is a full entry image (flag, keys, partial states),
	// so a verbatim copy installs the group.
	emitWordCopy(f, entry, rec, stride)
	f.GlobalGet(ht.gCount)
	f.I32Const(1)
	f.I32Add()
	f.GlobalSet(ht.gCount)
	g.emitMaybeGrow(ht)
	f.Br(2) // this record done
	f.End()
	// Occupied: keys equal → fold partial states; else advance.
	g.emitKeysEqual(ht, keys, entry)
	f.If(wasm.BlockVoid)
	for ai, a := range gr.Aggs {
		fld, _ := ht.layout.find(aggSlots[ai])
		af := fld
		g.emitAggMerge(entry, af, a, func() { g.loadField(rec, af) })
	}
	f.Br(2) // this record done
	f.End()
	f.LocalGet(idx)
	f.I32Const(1)
	f.I32Add()
	f.GlobalGet(ht.gMask)
	f.I32And()
	f.LocalSet(idx)
	f.Br(0)
	f.End()
	f.End()

	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.I32Const(0)
	if g.err != nil && c.err == nil {
		c.err = g.err
	}
}

// emitAggMerge folds a partial aggregate state (pushed by pushPartial, same
// type as the slot) into an entry's slot — the guest half of the parallel
// group merge. It differs from emitAggUpdate in that COUNT adds the partial
// count rather than 1; SUM and MIN/MAX fold the partial like a row value.
func (g *gen) emitAggMerge(entry wasm.Local, fld field, a sema.Aggregate, pushPartial func()) {
	f := g.f
	switch a.Func {
	case sema.AggCountStar, sema.AggCount:
		g.storeFieldFromStack(entry, fld, func() {
			g.loadField(entry, fld)
			pushPartial()
			f.I64Add()
		})
	case sema.AggSum:
		g.storeFieldFromStack(entry, fld, func() {
			g.loadField(entry, fld)
			pushPartial()
			if fld.t.Kind == types.Float64 {
				f.F64Add()
			} else {
				f.I64Add()
			}
		})
	case sema.AggMin, sema.AggMax:
		g.storeFieldFromStack(entry, fld, func() {
			// select(partial, old, cmp) — same branch-free shape as the
			// per-row update.
			pushPartial()
			g.loadField(entry, fld)
			pushPartial()
			g.loadField(entry, fld)
			f.Op(minMaxCmp(a.Func, fld.t))
			f.Select()
		})
	default:
		g.fail("no merge rule for aggregate %v", a.Func)
	}
}

// sortRecvExport is the receive export of the parallel sorted-run merge.
const sortRecvExport = "q_sort_recv"

// genSortMerge emits q_sort_recv(n) -> i32 — allocate room for n merged
// tuples, point the sort array globals at it, and return the base the host
// writes the k-way-merged run to — and records the SortMerge metadata. Only
// the first sort of a query gets the export.
func (c *compiler) genSortMerge(s *plan.Sort, layout tupleLayout, gBase, gCount uint32) {
	if c.out.SortMerge != nil {
		return
	}
	sm := &SortMerge{
		RecvExport:  sortRecvExport,
		BaseGlobal:  gBase,
		CountGlobal: gCount,
		Stride:      layout.stride,
	}
	for _, k := range s.Keys {
		fld, ok := layout.find(k.Expr)
		if !ok {
			return
		}
		sm.Keys = append(sm.Keys, SortKeyField{Offset: fld.offset, T: fld.t, Desc: k.Desc})
	}

	f := c.b.NewFunc(sortRecvExport, wasm.FuncType{
		Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32},
	})
	c.b.Export(sortRecvExport, wasm.ExternFunc, f.Index)
	f.LocalGet(f.Param(0))
	f.I32Const(int32(layout.stride))
	f.I32Mul()
	f.Call(c.allocFunc().Index)
	f.GlobalSet(gBase)
	f.LocalGet(f.Param(0))
	f.GlobalSet(gCount)
	f.GlobalGet(gBase)
	c.out.SortMerge = sm
}

// emitWordCopy copies stride bytes (a multiple of 8) from src to dst with
// an i64 word loop — the same shape the grow function uses.
func emitWordCopy(f *wasm.FuncBuilder, dst, src wasm.Local, stride int32) {
	w := f.AddLocal(wasm.I32)
	f.I32Const(0)
	f.LocalSet(w)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(w)
	f.I32Const(stride)
	f.I32GeU()
	f.BrIf(1)
	f.LocalGet(dst)
	f.LocalGet(w)
	f.I32Add()
	f.LocalGet(src)
	f.LocalGet(w)
	f.I32Add()
	f.I64Load(0)
	f.I64Store(0)
	f.LocalGet(w)
	f.I32Const(8)
	f.I32Add()
	f.LocalSet(w)
	f.Br(0)
	f.End()
	f.End()
}
