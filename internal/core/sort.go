package core

import (
	"fmt"

	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// produceSort compiles ORDER BY via the paper's §5 running example: the
// feeding pipeline materializes tuples into a growable array; a generated,
// fully specialized recursive quicksort (Hoare partitioning, median-of-three
// pivot, insertion sort below a cutoff) sorts it with the multi-key
// comparison *inlined* at every use site; a final pipeline scans the sorted
// array.
func (c *compiler) produceSort(s *plan.Sort, consume consumer) error {
	// Tuple fields: sort keys plus everything downstream needs. Downstream
	// expressions live in the same domain as the sort input, so collecting
	// the leaf references of select/order expressions suffices.
	fieldSet := dedupExprs(c.sortFieldExprs(s))
	layout := buildLayout(fieldSet, 0)

	gBase := c.b.AddGlobal(wasm.I32, true, 0)
	gCount := c.b.AddGlobal(wasm.I32, true, 0)
	gCap := c.b.AddGlobal(wasm.I32, true, 0)
	gScratchA := c.b.AddGlobal(wasm.I32, true, 0) // pivot tuple
	gScratchB := c.b.AddGlobal(wasm.I32, true, 0) // insertion-sort carrier

	initialCap := uint32(1024)
	c.initSteps = append(c.initSteps, func(g *gen) {
		f := g.f
		f.I32Const(int32(initialCap * layout.stride))
		f.Call(c.allocFunc().Index)
		f.GlobalSet(gBase)
		f.I32Const(int32(initialCap))
		f.GlobalSet(gCap)
		f.I32Const(0)
		f.GlobalSet(gCount)
		f.I32Const(int32(layout.stride))
		f.Call(c.allocFunc().Index)
		f.GlobalSet(gScratchA)
		f.I32Const(int32(layout.stride))
		f.Call(c.allocFunc().Index)
		f.GlobalSet(gScratchB)
	})

	sortID := len(c.pipes)
	growFn := c.genArrayGrow(sortID, gBase, gCount, gCap, layout.stride)

	// Feeding pipeline: append tuples to the array.
	err := c.produce(s.Input, func(g *gen, e *env) {
		f := g.f
		// if count == cap: grow
		f.GlobalGet(gCount)
		f.GlobalGet(gCap)
		f.I32GeU()
		f.If(wasm.BlockVoid)
		f.Call(growFn.Index)
		f.End()
		ptr := f.AddLocal(wasm.I32)
		f.GlobalGet(gBase)
		f.GlobalGet(gCount)
		f.I32Const(int32(layout.stride))
		f.I32Mul()
		f.I32Add()
		f.LocalSet(ptr)
		for _, fld := range layout.fields {
			fld := fld
			g.storeFieldFromStack(ptr, fld, func() { g.expr(e, fld.expr) })
		}
		f.GlobalGet(gCount)
		f.I32Const(1)
		f.I32Add()
		f.GlobalSet(gCount)
	})
	if err != nil {
		return err
	}

	// The generated quicksort and its helpers.
	qs := c.genQuicksort(sortID, s.Keys, layout, gBase, gScratchA, gScratchB)

	// Sorted-run merge metadata + receive export for parallel execution:
	// the host k-way merges per-worker sorted runs and installs the merged
	// array on the primary via q_sort_recv. Dead code on serial runs.
	c.genSortMerge(s, layout, gBase, gCount)

	// Run-once pipeline invoking qsort(0, count).
	g := c.newPipeline(PipeRunOnce, -1, 0)
	g.f.I32Const(0)
	g.f.GlobalGet(gCount)
	g.f.Call(qs.Index)
	g.f.I32Const(0)

	// Scan pipeline over the sorted array.
	g = c.newPipeline(PipeScanArray, -1, gCount)
	f := g.f
	i := f.AddLocal(wasm.I32)
	ptr := f.AddLocal(wasm.I32)
	f.LocalGet(f.Param(0))
	f.LocalSet(i)
	e := &env{}
	for _, fld := range layout.fields {
		fld := fld
		e.add(fld.expr, func() { g.loadField(ptr, fld) })
	}
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(f.Param(1))
	f.I32GeU()
	f.BrIf(1)
	f.GlobalGet(gBase)
	f.LocalGet(i)
	f.I32Const(int32(layout.stride))
	f.I32Mul()
	f.I32Add()
	f.LocalSet(ptr)
	consume(g, e)
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.I32Const(0)
	return g.err
}

// sortFieldExprs collects the expressions a sort tuple must carry: the sort
// keys and the leaf references (or whole expressions) the projection needs.
func (c *compiler) sortFieldExprs(s *plan.Sort) []sema.Expr {
	var out []sema.Expr
	for _, k := range s.Keys {
		out = append(out, k.Expr)
	}
	// Select expressions are evaluated after the sort; carry their leaf
	// references so they can be recomputed from the tuple.
	for _, oc := range c.q.Select {
		out = append(out, leafRefs(oc.Expr)...)
	}
	return out
}

// leafRefs extracts the ColRef/KeyRef/AggRef leaves of an expression.
func leafRefs(e sema.Expr) []sema.Expr {
	switch x := e.(type) {
	case *sema.ColRef, *sema.KeyRef, *sema.AggRef:
		return []sema.Expr{e}
	case *sema.Binary:
		return append(leafRefs(x.L), leafRefs(x.R)...)
	case *sema.Not:
		return leafRefs(x.E)
	case *sema.Cast:
		return leafRefs(x.E)
	case *sema.Like:
		return leafRefs(x.E)
	case *sema.Case:
		var out []sema.Expr
		for _, w := range x.Whens {
			out = append(out, leafRefs(w.Cond)...)
			out = append(out, leafRefs(w.Then)...)
		}
		return append(out, leafRefs(x.Else)...)
	case *sema.ExtractYear:
		return leafRefs(x.E)
	}
	return nil
}

// genArrayGrow generates the array-doubling routine (alloc + word copy).
func (c *compiler) genArrayGrow(id int, gBase, gCount, gCap uint32, stride uint32) *wasm.FuncBuilder {
	f := c.b.NewFunc(fmt.Sprintf("arr_grow_%d", id), wasm.FuncType{})
	newBase := f.AddLocal(wasm.I32)
	n := f.AddLocal(wasm.I32)
	w := f.AddLocal(wasm.I32)

	f.GlobalGet(gCap)
	f.I32Const(1)
	f.Op(wasm.OpI32Shl)
	f.I32Const(int32(stride))
	f.I32Mul()
	f.Call(c.allocFunc().Index)
	f.LocalSet(newBase)
	// n = count*stride bytes; copy as 8-byte words (stride is 8-aligned).
	f.GlobalGet(gCount)
	f.I32Const(int32(stride))
	f.I32Mul()
	f.LocalSet(n)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(w)
	f.LocalGet(n)
	f.I32GeU()
	f.BrIf(1)
	f.LocalGet(newBase)
	f.LocalGet(w)
	f.I32Add()
	f.GlobalGet(gBase)
	f.LocalGet(w)
	f.I32Add()
	f.I64Load(0)
	f.I64Store(0)
	f.LocalGet(w)
	f.I32Const(8)
	f.I32Add()
	f.LocalSet(w)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(newBase)
	f.GlobalSet(gBase)
	f.GlobalGet(gCap)
	f.I32Const(1)
	f.Op(wasm.OpI32Shl)
	f.GlobalSet(gCap)
	return f
}

const insertionCutoff = 16

// genQuicksort generates the specialized quicksort of §5.3: recursive, Hoare
// partitioning against a pivot copied to scratch, the multi-key less-than
// comparison inlined at each of its call sites, tail-recursion on the right
// partition converted to a loop, and insertion sort below the cutoff.
func (c *compiler) genQuicksort(id int, keys []sema.OrderKey, layout tupleLayout, gBase, gScratchA, gScratchB uint32) *wasm.FuncBuilder {
	stride := int32(layout.stride)

	// elemPtr pushes gBase + i*stride for the index in local i.
	elemPtr := func(f *wasm.FuncBuilder, idx wasm.Local) {
		f.GlobalGet(gBase)
		f.LocalGet(idx)
		f.I32Const(stride)
		f.I32Mul()
		f.I32Add()
	}

	// copyTuple emits a word-wise copy of one tuple from src to dst
	// (pointer push functions), fully unrolled — no memcpy exists (§3.1).
	copyTuple := func(f *wasm.FuncBuilder, pushDst, pushSrc func()) {
		for off := int32(0); off < stride; off += 8 {
			pushDst()
			pushSrc()
			f.I64Load(uint32(off))
			f.I64Store(uint32(off))
		}
	}

	// emitLess generates the inlined multi-key "tuple@a < tuple@b"
	// comparison honoring ASC/DESC: for each key, if the fields differ the
	// result is their comparison; otherwise the next key decides.
	emitLess := func(g *gen, a, b wasm.Local) {
		f := g.f
		f.Block(wasm.BlockOf(wasm.I32))
		for _, k := range keys {
			fld, ok := layout.find(k.Expr)
			if !ok {
				g.fail("sort key %s not materialized", k.Expr)
				break
			}
			lo, hi := a, b
			if k.Desc {
				lo, hi = b, a
			}
			switch fld.t.Kind {
			case types.Char:
				cmp := g.c.strcmpFunc(fld.t.Length, fld.t.Length)
				r := f.AddLocal(wasm.I32)
				g.loadField(lo, fld)
				g.loadField(hi, fld)
				f.Call(cmp.Index)
				f.LocalSet(r)
				// if r != 0: result is r < 0
				f.LocalGet(r)
				f.I32Const(0)
				f.Op(wasm.OpI32LtS)
				f.LocalGet(r)
				f.BrIf(0)
				f.Drop()
			case types.Float64:
				g.loadField(lo, fld)
				g.loadField(hi, fld)
				f.Op(wasm.OpF64Lt)
				g.loadField(lo, fld)
				g.loadField(hi, fld)
				f.Op(wasm.OpF64Ne)
				f.BrIf(0)
				f.Drop()
			case types.Int64, types.Decimal:
				g.loadField(lo, fld)
				g.loadField(hi, fld)
				f.Op(wasm.OpI64LtS)
				g.loadField(lo, fld)
				g.loadField(hi, fld)
				f.Op(wasm.OpI64Ne)
				f.BrIf(0)
				f.Drop()
			default: // i32-class
				g.loadField(lo, fld)
				g.loadField(hi, fld)
				f.Op(wasm.OpI32LtS)
				g.loadField(lo, fld)
				g.loadField(hi, fld)
				f.I32Ne()
				f.BrIf(0)
				f.Drop()
			}
		}
		f.I32Const(0) // all keys equal: not less
		f.End()
	}

	// --- Insertion sort --------------------------------------------------
	isort := c.b.NewFunc(fmt.Sprintf("isort_%d", id),
		wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}})
	{
		f := isort
		g := &gen{c: c, f: f}
		k := f.AddLocal(wasm.I32)
		m := f.AddLocal(wasm.I32)
		carrier := f.AddLocal(wasm.I32)
		cur := f.AddLocal(wasm.I32)
		prev := f.AddLocal(wasm.I32)

		f.GlobalGet(gScratchB)
		f.LocalSet(carrier)
		// for k = lo+1; k < hi; k++
		f.LocalGet(f.Param(0))
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(k)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(k)
		f.LocalGet(f.Param(1))
		f.Op(wasm.OpI32GeS)
		f.BrIf(1)
		// carrier = arr[k]
		copyTuple(f, func() { f.LocalGet(carrier) }, func() { elemPtr(f, k) })
		// m = k; while m > lo && carrier < arr[m-1]: arr[m] = arr[m-1]; m--
		f.LocalGet(k)
		f.LocalSet(m)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(m)
		f.LocalGet(f.Param(0))
		f.Op(wasm.OpI32LeS)
		f.BrIf(1)
		// prev = &arr[m-1]
		f.GlobalGet(gBase)
		f.LocalGet(m)
		f.I32Const(1)
		f.I32Sub()
		f.I32Const(stride)
		f.I32Mul()
		f.I32Add()
		f.LocalSet(prev)
		emitLess(g, carrier, prev)
		f.I32Eqz()
		f.BrIf(1)
		// arr[m] = arr[m-1]
		elemPtr(f, m)
		f.LocalSet(cur)
		copyTuple(f, func() { f.LocalGet(cur) }, func() { f.LocalGet(prev) })
		f.LocalGet(m)
		f.I32Const(1)
		f.I32Sub()
		f.LocalSet(m)
		f.Br(0)
		f.End()
		f.End()
		// arr[m] = carrier
		elemPtr(f, m)
		f.LocalSet(cur)
		copyTuple(f, func() { f.LocalGet(cur) }, func() { f.LocalGet(carrier) })
		f.LocalGet(k)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(k)
		f.Br(0)
		f.End()
		f.End()
		if g.err != nil {
			panic(g.err)
		}
	}

	// --- Quicksort ---------------------------------------------------------
	qs := c.b.NewFunc(fmt.Sprintf("qsort_%d", id),
		wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}})
	{
		f := qs
		g := &gen{c: c, f: f}
		lo := f.AddLocal(wasm.I32)
		hi := f.AddLocal(wasm.I32)
		i := f.AddLocal(wasm.I32)
		j := f.AddLocal(wasm.I32)
		mid := f.AddLocal(wasm.I32)
		pivot := f.AddLocal(wasm.I32)
		pi := f.AddLocal(wasm.I32)
		pj := f.AddLocal(wasm.I32)
		tmp := f.AddLocal(wasm.I64)

		f.LocalGet(f.Param(0))
		f.LocalSet(lo)
		f.LocalGet(f.Param(1))
		f.LocalSet(hi)
		f.GlobalGet(gScratchA)
		f.LocalSet(pivot)

		// while hi - lo > cutoff
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(hi)
		f.LocalGet(lo)
		f.I32Sub()
		f.I32Const(insertionCutoff)
		f.Op(wasm.OpI32LeS)
		f.BrIf(1)

		// pivot = arr[lo + (hi-lo)/2] (copied out; median-of-three omitted
		// in favor of the paper's plain Hoare scheme with a mid pivot).
		f.LocalGet(lo)
		f.LocalGet(hi)
		f.LocalGet(lo)
		f.I32Sub()
		f.I32Const(1)
		f.Op(wasm.OpI32ShrU)
		f.I32Add()
		f.LocalSet(mid)
		copyTuple(f, func() { f.LocalGet(pivot) }, func() { elemPtr(f, mid) })

		// Hoare partition: i = lo-1, j = hi
		f.LocalGet(lo)
		f.I32Const(1)
		f.I32Sub()
		f.LocalSet(i)
		f.LocalGet(hi)
		f.LocalSet(j)
		f.Block(wasm.BlockVoid) // partition done
		f.Loop(wasm.BlockVoid)
		// do i++ while arr[i] < pivot
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(i)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(i)
		elemPtr(f, i)
		f.LocalSet(pi)
		emitLess(g, pi, pivot)
		f.I32Eqz()
		f.BrIf(1)
		f.Br(0)
		f.End()
		f.End()
		// do j-- while pivot < arr[j]
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Sub()
		f.LocalSet(j)
		elemPtr(f, j)
		f.LocalSet(pj)
		emitLess(g, pivot, pj)
		f.I32Eqz()
		f.BrIf(1)
		f.Br(0)
		f.End()
		f.End()
		// if i >= j: break
		f.LocalGet(i)
		f.LocalGet(j)
		f.Op(wasm.OpI32GeS)
		f.BrIf(1)
		// swap arr[i], arr[j] — word-wise, unrolled
		for off := int32(0); off < stride; off += 8 {
			f.LocalGet(pi)
			f.I64Load(uint32(off))
			f.LocalSet(tmp)
			f.LocalGet(pi)
			f.LocalGet(pj)
			f.I64Load(uint32(off))
			f.I64Store(uint32(off))
			f.LocalGet(pj)
			f.LocalGet(tmp)
			f.I64Store(uint32(off))
		}
		f.Br(0)
		f.End()
		f.End()
		// Recurse into the smaller partition and loop on the larger one,
		// bounding recursion depth to O(log n).
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalGet(lo)
		f.I32Sub()
		f.LocalGet(hi)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.I32Sub()
		f.Op(wasm.OpI32LeS)
		f.If(wasm.BlockVoid)
		f.LocalGet(lo)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.CallBuilder(qs)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(lo)
		f.Else()
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalGet(hi)
		f.CallBuilder(qs)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(hi)
		f.End()
		f.Br(0)
		f.End()
		f.End()
		// insertion sort the remainder
		f.LocalGet(lo)
		f.LocalGet(hi)
		f.Call(isort.Index)
		if g.err != nil {
			panic(g.err)
		}
	}
	return qs
}
