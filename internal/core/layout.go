// Package core is the paper's primary contribution: compilation of query
// execution plans to WebAssembly with ad-hoc generation of all required
// library code, and morsel-wise adaptive execution on the embedded engine.
//
// The compiler walks the physical plan in data-centric style (Neumann):
// every pipeline becomes one exported Wasm function `pipeline_i(begin, end)`
// driven morsel-wise by the host, so the engine's background tier-up
// replaces baseline code with optimized code *between* morsels — adaptive
// execution for free (§2.2). Algorithms and data structures the plan needs —
// open-addressing hash tables for grouping and joins, quicksort with
// inlined comparators, LIKE matchers — are generated monomorphically into
// the same module (§5): no type-agnostic interfaces, no per-element function
// calls, no pre-compiled library.
package core

import (
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// Address-space plan (§6): page 0 traps, a small constant region holds
// string literals and LIKE patterns, a writable parameter region holds the
// per-execution query parameters (hoisted literals and prepared-statement
// arguments — written by the host before q_init, read by generated code),
// referenced table columns are rewired page-aligned after it, then the
// result buffer, then the bump-allocated heap for generated data structures.
const (
	pageSize    = 64 * 1024
	constBase   = pageSize // string constants live in page 1
	constSize   = pageSize
	paramBase   = constBase + constSize // parameter region is page 2
	paramSize   = pageSize
	columnsBase = paramBase + paramSize
)

// resultCapacityRows is the size of the result buffer in rows; when full,
// the generated code calls the host's result_flush callback (§6.2).
const resultCapacityRows = 64 * 1024

// DefaultMorselRows is the number of rows per morsel call.
const DefaultMorselRows = 16 * 1024

// wasmType maps a SQL type to its Wasm value type; CHAR values are pointers
// into linear memory.
func wasmType(t types.Type) wasm.ValType {
	switch t.Kind {
	case types.Bool, types.Int32, types.Date, types.Char:
		return wasm.I32
	case types.Int64, types.Decimal:
		return wasm.I64
	case types.Float64:
		return wasm.F64
	}
	panic("core: unknown type")
}

// field is one attribute inside a materialized tuple.
type field struct {
	expr   sema.Expr
	t      types.Type
	offset uint32
}

// tupleLayout is the byte layout of a materialized tuple (hash-table entry
// payload, sort-array element, or result row).
type tupleLayout struct {
	fields []field
	stride uint32
}

// buildLayout assigns aligned offsets. startOffset reserves a prefix (e.g.
// a hash-table entry's occupancy flag).
func buildLayout(exprs []sema.Expr, startOffset uint32) tupleLayout {
	l := tupleLayout{}
	// 8-byte fields first, then 4-byte, then chars: natural alignment
	// without padding holes.
	off := startOffset
	add := func(e sema.Expr, size int) {
		l.fields = append(l.fields, field{expr: e, t: e.Type(), offset: off})
		off += uint32(size)
	}
	for _, e := range exprs {
		if s := e.Type().Size(); s == 8 {
			add(e, 8)
		}
	}
	for _, e := range exprs {
		if s := e.Type().Size(); s == 4 {
			add(e, 4)
		}
	}
	for _, e := range exprs {
		s := e.Type().Size()
		if s != 8 && s != 4 {
			add(e, s)
		}
	}
	// Stride aligned to 8 so consecutive tuples keep field alignment.
	l.stride = (off + 7) &^ 7
	if l.stride == 0 {
		l.stride = 8
	}
	return l
}

// find returns the field holding an expression structurally equal to e.
func (l *tupleLayout) find(e sema.Expr) (field, bool) {
	for _, f := range l.fields {
		if sema.Equal(f.expr, e) {
			return f, true
		}
	}
	return field{}, false
}

// align8 requires startOffset alignment guarantees: tuples are placed at
// 8-aligned base addresses by the allocator, so 8-byte fields need 8-aligned
// offsets. buildLayout's ordering (8s first from an 8-aligned or flag-adjusted
// start) ensures this as long as startOffset is 0 or 8; the hash-table entry
// flag occupies a full 8 bytes for that reason.

// binding makes one expression's value obtainable in the current pipeline
// context; push emits code leaving the value on the stack (a pointer for
// CHAR).
type binding struct {
	expr sema.Expr
	push func()
}

// env is the set of bindings available while compiling a pipeline body.
type env struct {
	binds []binding
}

func (e *env) add(expr sema.Expr, push func()) {
	e.binds = append(e.binds, binding{expr: expr, push: push})
}

func (e *env) lookup(expr sema.Expr) (binding, bool) {
	for _, b := range e.binds {
		if sema.Equal(b.expr, expr) {
			return b, true
		}
	}
	return binding{}, false
}
