package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

// ErrParamRegionOverflow reports a query whose hoisted literals and
// placeholders need more bytes than the parameter region holds. Callers
// respond by recompiling the query with its literals baked (uncached).
var ErrParamRegionOverflow = errors.New("core: parameters exceed the parameter region")

// layoutParams assigns a parameter-region slot to every parameter the query's
// expressions reference (plus the hoisted LIMIT). Offsets are deterministic —
// ordinal order, 8-byte aligned — so two queries with the same fingerprint
// compile to byte-identical modules and can share one plan-cache entry.
func (c *compiler) layoutParams() error {
	used := map[int]types.Type{}
	for _, e := range c.q.Conjuncts {
		paramsUsed(e, used)
	}
	for _, e := range c.q.GroupBy {
		paramsUsed(e, used)
	}
	for _, a := range c.q.Aggs {
		if a.Arg != nil {
			paramsUsed(a.Arg, used)
		}
	}
	for _, oc := range c.q.Select {
		paramsUsed(oc.Expr, used)
	}
	for _, e := range c.q.Having {
		paramsUsed(e, used)
	}
	for _, k := range c.q.OrderBy {
		paramsUsed(k.Expr, used)
	}
	if c.q.LimitSlot >= 0 {
		used[c.q.LimitSlot] = types.TInt64
		c.out.LimitSlot = c.q.LimitSlot
	}
	if len(used) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(used))
	for i := range used {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var off uint32
	for _, i := range idxs {
		t := used[i]
		slot := ParamSlot{Idx: i, Off: off, T: t}
		c.paramSlots[i] = slot
		c.out.ParamSlots = append(c.out.ParamSlots, slot)
		off += (uint32(t.Size()) + 7) &^ 7
	}
	if off > paramSize {
		return fmt.Errorf("core: %d parameter bytes do not fit the %d-byte region: %w",
			off, paramSize, ErrParamRegionOverflow)
	}
	return nil
}

// paramsUsed records every parameter slot referenced by e: Param nodes and
// parameterized LIKE needles (whose slot type is CHAR of the needle's byte
// length).
func paramsUsed(e sema.Expr, out map[int]types.Type) {
	switch x := e.(type) {
	case *sema.Param:
		out[x.Idx] = x.T
	case *sema.Binary:
		paramsUsed(x.L, out)
		paramsUsed(x.R, out)
	case *sema.Not:
		paramsUsed(x.E, out)
	case *sema.Cast:
		paramsUsed(x.E, out)
	case *sema.Like:
		paramsUsed(x.E, out)
		if x.PIdx >= 0 {
			n := len(x.Needle)
			if x.Kind == sema.LikeComplex {
				n = len(x.Pattern)
			}
			out[x.PIdx] = types.Type{Kind: types.Char, Length: n}
		}
	case *sema.Case:
		for _, w := range x.Whens {
			paramsUsed(w.Cond, out)
			paramsUsed(w.Then, out)
		}
		paramsUsed(x.Else, out)
	case *sema.ExtractYear:
		paramsUsed(x.E, out)
	}
}

// writeParams encodes the execution's parameter values into the parameter
// region of one worker memory. The generated code reads the slots with plain
// typed loads, so values use the wasm little-endian machine representation;
// CHAR slots are space-padded to the slot width (SQL padded semantics, same
// as column storage).
func writeParams(mem *wmem.Memory, slots []ParamSlot, vals []types.Value) error {
	for _, s := range slots {
		if s.Idx >= len(vals) {
			return fmt.Errorf("core: missing value for parameter ?%d (have %d values)", s.Idx, len(vals))
		}
		v := vals[s.Idx]
		if v.Type.Kind != s.T.Kind {
			return fmt.Errorf("core: parameter ?%d is %s, slot expects %s", s.Idx, v.Type, s.T)
		}
		switch s.T.Kind {
		case types.Bool, types.Int32, types.Date:
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(int32(v.I)))
			mem.WriteBytes(paramBase+s.Off, b[:])
		case types.Int64, types.Decimal:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v.I))
			mem.WriteBytes(paramBase+s.Off, b[:])
		case types.Float64:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			mem.WriteBytes(paramBase+s.Off, b[:])
		case types.Char:
			n := s.T.Length
			if len(v.S) > n {
				return fmt.Errorf("core: CHAR parameter ?%d is %d bytes, slot holds %d", s.Idx, len(v.S), n)
			}
			if n == 0 {
				continue
			}
			b := make([]byte, n)
			copy(b, v.S)
			for i := len(v.S); i < n; i++ {
				b[i] = ' '
			}
			mem.WriteBytes(paramBase+s.Off, b)
		default:
			return fmt.Errorf("core: unsupported parameter type %s", s.T)
		}
	}
	return nil
}
