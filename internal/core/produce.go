package core

import (
	"fmt"

	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// resultConsumer emits the final step of the last pipeline: write the output
// row to the result buffer, flushing to the host when the buffer fills
// (§6.2), and stop early once LIMIT is reached.
func (c *compiler) resultConsumer(proj *plan.Project) consumer {
	return func(g *gen, e *env) {
		f := g.f
		// Flush when full: cursor = result_flush(cursor).
		f.GlobalGet(c.gCursor)
		f.I32Const(resultCapacityRows)
		f.I32GeU()
		f.If(wasm.BlockVoid)
		f.GlobalGet(c.gCursor)
		f.Call(c.fnResultFlush)
		f.GlobalSet(c.gCursor)
		f.End()

		// rowPtr = ResultBase + cursor*stride
		rowPtr := f.AddLocal(wasm.I32)
		f.GlobalGet(c.gCursor)
		f.I32Const(int32(c.resultLayout.stride))
		f.I32Mul()
		f.I32Const(int32(c.out.ResultBase))
		f.I32Add()
		f.LocalSet(rowPtr)

		for _, fld := range c.resultLayout.fields {
			fld := fld
			g.storeFieldFromStack(rowPtr, fld, func() { g.expr(e, fld.expr) })
		}

		// cursor++
		f.GlobalGet(c.gCursor)
		f.I32Const(1)
		f.I32Add()
		f.GlobalSet(c.gCursor)

		// LIMIT: totalRows++; if totalRows >= N return 1. A parameterized
		// limit is read from its parameter-region slot (i64), so the same
		// module serves every LIMIT value; a baked limit stays an i32
		// immediate.
		if c.out.LimitSlot >= 0 {
			slot, ok := c.paramSlots[c.out.LimitSlot]
			if !ok {
				g.fail("limit parameter ?%d has no slot", c.out.LimitSlot)
				return
			}
			f.GlobalGet(c.gTotalRows)
			f.I32Const(1)
			f.I32Add()
			f.GlobalSet(c.gTotalRows)
			f.GlobalGet(c.gTotalRows)
			f.Op(wasm.OpI64ExtendI32U)
			f.I32Const(0)
			f.I64Load(uint32(paramBase) + slot.Off)
			f.Op(wasm.OpI64GeS)
			f.If(wasm.BlockVoid)
			f.I32Const(1)
			f.Return()
			f.End()
		} else if c.out.Limit >= 0 {
			f.GlobalGet(c.gTotalRows)
			f.I32Const(1)
			f.I32Add()
			f.GlobalSet(c.gTotalRows)
			f.GlobalGet(c.gTotalRows)
			f.I32Const(int32(c.out.Limit))
			f.I32GeU()
			f.If(wasm.BlockVoid)
			f.I32Const(1)
			f.Return()
			f.End()
		}
	}
}

// produceGroup compiles hash-based grouping & aggregation (§4.3): the
// feeding pipeline updates a generated hash table; a new pipeline then scans
// the table's slots.
func (c *compiler) produceGroup(gr *plan.Group, consume consumer) error {
	// Entry fields: group keys followed by one slot per aggregate
	// (referenced as AggRef in the post-aggregation domain).
	fields := append([]sema.Expr{}, gr.Keys...)
	var aggSlots []*sema.AggRef
	for i, a := range gr.Aggs {
		ref := &sema.AggRef{Idx: i, T: a.T}
		aggSlots = append(aggSlots, ref)
		fields = append(fields, ref)
		if a.Arg != nil && a.Arg.Type().Kind == types.Char {
			return fmt.Errorf("core: aggregates over CHAR are not supported")
		}
	}
	est := uint32(1024)
	ht := c.newHashTable(fmt.Sprintf("group%d", len(c.pipes)), fields, gr.Keys, est, false)
	// Merge exports for parallel execution (dead code on serial runs).
	c.genGroupMerge(gr, ht, aggSlots)

	// Feeding pipeline: insert-or-update.
	err := c.produce(gr.Input, func(g *gen, e *env) {
		f := g.f
		keys := g.keySrcsFromEnv(e, gr.Keys)
		// Aggregate arguments, computed once per tuple.
		argLocals := make([]wasm.Local, len(gr.Aggs))
		for i, a := range gr.Aggs {
			if a.Arg == nil {
				continue
			}
			l := f.AddLocal(wasmType(a.Arg.Type()))
			g.expr(e, a.Arg)
			f.LocalSet(l)
			argLocals[i] = l
		}

		h := g.emitHash(keys)
		idx := g.emitSlotIndex(ht, h)
		entry := f.AddLocal(wasm.I32)

		f.Block(wasm.BlockVoid) // done
		f.Loop(wasm.BlockVoid)
		g.emitEntryPtr(ht, idx, entry)
		f.LocalGet(entry)
		f.Emit(wasm.OpI32Load, 0, 2) // occupancy flag
		f.I32Eqz()
		f.If(wasm.BlockVoid)
		// Claim: flag=1, store keys, init aggregates.
		f.LocalGet(entry)
		f.I32Const(1)
		f.I32Store(0)
		for i, k := range gr.Keys {
			fld, _ := ht.layout.find(k)
			ks := keys[i]
			g.storeFieldFromStack(entry, fld, ks.pushVal)
		}
		for i, a := range gr.Aggs {
			fld, _ := ht.layout.find(aggSlots[i])
			g.emitAggInit(entry, fld, a, argLocals[i])
		}
		// count++, maybe grow.
		f.GlobalGet(ht.gCount)
		f.I32Const(1)
		f.I32Add()
		f.GlobalSet(ht.gCount)
		g.emitMaybeGrow(ht)
		f.Br(2) // done
		f.End()
		// Occupied: keys equal → update; else advance.
		g.emitKeysEqual(ht, keys, entry)
		f.If(wasm.BlockVoid)
		for i, a := range gr.Aggs {
			fld, _ := ht.layout.find(aggSlots[i])
			g.emitAggUpdate(entry, fld, a, argLocals[i])
		}
		f.Br(2) // done
		f.End()
		f.LocalGet(idx)
		f.I32Const(1)
		f.I32Add()
		f.GlobalGet(ht.gMask)
		f.I32And()
		f.LocalSet(idx)
		f.Br(0)
		f.End()
		f.End()
	})
	if err != nil {
		return err
	}

	// Scanning pipeline: iterate slots [begin, end), skip empty, bind
	// KeyRef/AggRef to entry fields.
	g := c.newPipeline(PipeScanSlots, -1, ht.gMask)
	f := g.f
	slot := f.AddLocal(wasm.I32)
	entry := f.AddLocal(wasm.I32)
	f.LocalGet(f.Param(0))
	f.LocalSet(slot)

	e := &env{}
	for i, k := range gr.Keys {
		kf, _ := ht.layout.find(k)
		e.add(&sema.KeyRef{Idx: i, T: k.Type()}, func() { g.loadField(entry, kf) })
	}
	for i := range gr.Aggs {
		af, _ := ht.layout.find(aggSlots[i])
		e.add(aggSlots[i], func() { g.loadField(entry, af) })
	}

	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(slot)
	f.LocalGet(f.Param(1))
	f.I32GeU()
	f.BrIf(1)
	g.emitEntryPtr(ht, slot, entry)
	f.LocalGet(entry)
	f.Emit(wasm.OpI32Load, 0, 2)
	f.If(wasm.BlockVoid)
	consume(g, e)
	f.End()
	f.LocalGet(slot)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(slot)
	f.Br(0)
	f.End()
	f.End()
	f.I32Const(0)
	return g.err
}

// emitAggInit initializes an aggregate slot from the first tuple of a group.
func (g *gen) emitAggInit(entry wasm.Local, fld field, a sema.Aggregate, arg wasm.Local) {
	f := g.f
	switch a.Func {
	case sema.AggCountStar, sema.AggCount:
		g.storeFieldFromStack(entry, fld, func() { f.I64Const(1) })
	case sema.AggSum, sema.AggMin, sema.AggMax:
		g.storeFieldFromStack(entry, fld, func() { f.LocalGet(arg) })
	}
}

// emitAggUpdate folds the current tuple into an aggregate slot. MIN and MAX
// are branch-free via select (§8.2, Fig. 7d).
func (g *gen) emitAggUpdate(entry wasm.Local, fld field, a sema.Aggregate, arg wasm.Local) {
	f := g.f
	switch a.Func {
	case sema.AggCountStar, sema.AggCount:
		g.storeFieldFromStack(entry, fld, func() {
			g.loadField(entry, fld)
			f.I64Const(1)
			f.I64Add()
		})
	case sema.AggSum:
		g.storeFieldFromStack(entry, fld, func() {
			g.loadField(entry, fld)
			f.LocalGet(arg)
			if fld.t.Kind == types.Float64 {
				f.F64Add()
			} else {
				f.I64Add()
			}
		})
	case sema.AggMin, sema.AggMax:
		g.storeFieldFromStack(entry, fld, func() {
			// select(new, old, cmp) — branch-free.
			f.LocalGet(arg)
			g.loadField(entry, fld)
			f.LocalGet(arg)
			g.loadField(entry, fld)
			op := minMaxCmp(a.Func, fld.t)
			f.Op(op)
			f.Select()
		})
	}
}

func minMaxCmp(fn sema.AggFunc, t types.Type) wasm.Opcode {
	lt := fn == sema.AggMin
	switch t.Kind {
	case types.Int32, types.Date, types.Bool:
		if lt {
			return wasm.OpI32LtS
		}
		return wasm.OpI32GtS
	case types.Int64, types.Decimal:
		if lt {
			return wasm.OpI64LtS
		}
		return wasm.OpI64GtS
	case types.Float64:
		if lt {
			return wasm.OpF64Lt
		}
		return wasm.OpF64Gt
	}
	panic("core: no min/max comparison")
}

// emitFloatKeysNotNaN pushes, for each Float64 key, a self-equality check
// (false only for NaN) and ANDs them into one i32 condition. Returns false —
// emitting nothing — when no key is a float.
func emitFloatKeysNotNaN(f *wasm.FuncBuilder, keys []keySrc) bool {
	emitted := false
	for _, k := range keys {
		if k.t.Kind != types.Float64 {
			continue
		}
		k.pushVal()
		k.pushVal()
		f.Op(wasm.OpF64Eq)
		if emitted {
			f.I32And()
		}
		emitted = true
	}
	return emitted
}

// produceJoin compiles a simple hash join (§4.3): the build pipeline inserts
// build-side tuples into a generated table; the probe side continues its
// pipeline through an inlined probe loop.
func (c *compiler) produceJoin(j *plan.HashJoin, consume consumer) error {
	// Payload: every referenced column of the build side, plus the keys.
	buildTables := j.Build.Tables()
	fields := append([]sema.Expr{}, j.BuildKeys...)
	used := map[[2]int]bool{}
	c.collectColumns(used)
	for ti := range c.q.Tables {
		if !buildTables[ti] {
			continue
		}
		tbl := c.q.Tables[ti].Table
		for ci, col := range tbl.Columns {
			if used[[2]int{ti, ci}] {
				fields = append(fields, &sema.ColRef{Table: ti, Col: ci, T: col.Type, Name: col.Name})
			}
		}
	}
	ht := c.newHashTable(fmt.Sprintf("join%d", len(c.pipes)), fields, j.BuildKeys, joinInitialCap(j.Build.Rows()), true)

	// Build pipeline: append-style insert (duplicates coexist).
	err := c.produce(j.Build, func(g *gen, e *env) {
		f := g.f
		keys := g.keySrcsFromEnv(e, j.BuildKeys)
		// A NaN key can never satisfy the probe's F64Eq, so inserting it
		// would only bloat the table with unreachable entries — skip the row.
		nanGuard := emitFloatKeysNotNaN(f, keys)
		if nanGuard {
			f.If(wasm.BlockVoid)
		}
		h := g.emitHashCanon(keys, true)
		idx := g.emitSlotIndex(ht, h)
		entry := f.AddLocal(wasm.I32)

		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		g.emitEntryPtr(ht, idx, entry)
		f.LocalGet(entry)
		f.Emit(wasm.OpI32Load, 0, 2)
		f.I32Eqz()
		f.If(wasm.BlockVoid)
		f.LocalGet(entry)
		f.I32Const(1)
		f.I32Store(0)
		// Store every entry field from the build-side environment.
		for _, fld := range ht.layout.fields {
			fld := fld
			g.storeFieldFromStack(entry, fld, func() { g.expr(e, fld.expr) })
		}
		f.GlobalGet(ht.gCount)
		f.I32Const(1)
		f.I32Add()
		f.GlobalSet(ht.gCount)
		g.emitMaybeGrow(ht)
		f.Br(2)
		f.End()
		f.LocalGet(idx)
		f.I32Const(1)
		f.I32Add()
		f.GlobalGet(ht.gMask)
		f.I32And()
		f.LocalSet(idx)
		f.Br(0)
		f.End()
		f.End()
		if nanGuard {
			f.End()
		}
	})
	if err != nil {
		return err
	}
	// Merge exports for parallel execution (dead code on serial runs). The
	// pipeline just produced — the last one — is the build pipeline the
	// executor barriers on.
	c.genJoinMerge(ht, len(c.out.Pipelines)-1)

	// Probe side: continue the enclosing pipeline.
	return c.produce(j.Probe, func(g *gen, e *env) {
		f := g.f
		keys := g.keySrcsFromEnv(e, j.ProbeKeys)
		h := g.emitHashCanon(keys, true)
		idx := g.emitSlotIndex(ht, h)
		entry := f.AddLocal(wasm.I32)

		// Extended environment: probe bindings plus entry fields.
		e2 := &env{binds: append([]binding{}, e.binds...)}
		for _, fld := range ht.layout.fields {
			fld := fld
			e2.add(fld.expr, func() { g.loadField(entry, fld) })
		}

		f.Block(wasm.BlockVoid) // probe done
		f.Loop(wasm.BlockVoid)
		g.emitEntryPtr(ht, idx, entry)
		f.LocalGet(entry)
		f.Emit(wasm.OpI32Load, 0, 2)
		f.I32Eqz()
		f.BrIf(1) // empty slot: no more candidates
		g.emitKeysEqual(ht, keys, entry)
		f.If(wasm.BlockVoid)
		if len(j.Residual) > 0 {
			if err := g.conjunction(e2, j.Residual); err != nil {
				return
			}
			f.If(wasm.BlockVoid)
			consume(g, e2)
			f.End()
		} else {
			consume(g, e2)
		}
		f.End()
		f.LocalGet(idx)
		f.I32Const(1)
		f.I32Add()
		f.GlobalGet(ht.gMask)
		f.I32And()
		f.LocalSet(idx)
		f.Br(0)
		f.End()
		f.End()
	})
}
