package core

import (
	"sync"
	"testing"

	"wasmdb/internal/engine"
)

func TestSchedulerFairShareAndDenial(t *testing.T) {
	s := NewScheduler(4)

	// An idle pool grants the full request.
	l1 := s.Acquire(5) // wants 4 extras
	if l1 == nil || l1.Extras() != 4 {
		t.Fatalf("idle acquire: got %v extras, want 4", l1.Extras())
	}
	if s.InUse() != 4 {
		t.Fatalf("InUse = %d, want 4", s.InUse())
	}

	// A second query finds nothing free: denied, and the first lease is
	// marked down to the new fair share (4 slots / 2 queries = 2 extras).
	if l2 := s.Acquire(3); l2 != nil {
		t.Fatalf("exhausted acquire granted %d extras, want denial", l2.Extras())
	}
	if l1.ShouldYield(0) {
		t.Fatal("worker 0 (primary) must never yield")
	}
	for _, id := range []int{1, 2} {
		if l1.ShouldYield(id) {
			t.Errorf("worker %d within fair share should not yield", id)
		}
	}
	for _, id := range []int{3, 4} {
		if !l1.ShouldYield(id) {
			t.Errorf("worker %d beyond fair share should yield", id)
		}
		if !l1.ShouldYield(id) {
			t.Errorf("worker %d: yield verdict must be sticky", id)
		}
	}
	// The two yielded slots are back in the pool for the next query.
	if s.InUse() != 2 {
		t.Fatalf("after yields InUse = %d, want 2", s.InUse())
	}
	l3 := s.Acquire(3)
	if l3 == nil || l3.Extras() != 2 {
		// fair share with one active lease: 4/(1+1) = 2 extras, both free.
		t.Fatalf("post-yield acquire: got %v, want 2 extras", l3.Extras())
	}

	l1.Release()
	l1.Release() // idempotent
	l3.Release()
	if s.InUse() != 0 {
		t.Fatalf("after release InUse = %d, want 0", s.InUse())
	}
}

func TestSchedulerSerialRequestsBypassPool(t *testing.T) {
	s := NewScheduler(2)
	if l := s.Acquire(1); l != nil {
		t.Fatal("a serial query (1 worker) must not take a lease")
	}
	if l := s.Acquire(0); l != nil {
		t.Fatal("workers <= 1 must not take a lease")
	}
	if s.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", s.InUse())
	}
}

func TestSchedulerNilLeaseIsInert(t *testing.T) {
	var l *Lease
	if l.Extras() != 0 || l.ShouldYield(3) {
		t.Fatal("nil lease must grant nothing and never yield")
	}
	l.Release()
}

func TestSchedulerConcurrentAcquireRelease(t *testing.T) {
	s := NewScheduler(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l := s.Acquire(4)
				for w := 1; w < 4; w++ {
					l.ShouldYield(w)
				}
				l.Release()
			}
		}()
	}
	wg.Wait()
	if s.InUse() != 0 {
		t.Fatalf("slots leaked: InUse = %d, want 0", s.InUse())
	}
}

// TestExecuteUnderScheduler proves the executor contract end to end: a
// parallel-eligible query under an exhausted scheduler runs serially with
// the worker-slots-exhausted fallback recorded, and under a free scheduler
// runs with the granted pool — with identical results either way.
func TestExecuteUnderScheduler(t *testing.T) {
	cat := parCatalog(t, 50_000)
	cq, q := compileOn(t, cat, "SELECT i0, i1 FROM t WHERE i0 < 0")
	eng := engine.New(engine.Config{Tier: engine.TierLiftoff})

	sched := NewScheduler(4)
	hog := sched.Acquire(5) // drain the pool
	res1, st1, err := Execute(cq, q, eng, ExecOptions{Parallelism: 4, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Workers != 1 || st1.SerialFallback != fallbackSlots {
		t.Fatalf("exhausted pool: workers=%d fallback=%q, want 1/%q",
			st1.Workers, st1.SerialFallback, fallbackSlots)
	}
	hog.Release()

	res2, st2, err := Execute(cq, q, eng, ExecOptions{Parallelism: 4, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Workers < 2 || st2.SerialFallback != "" {
		t.Fatalf("free pool: workers=%d fallback=%q, want >1 workers and no fallback",
			st2.Workers, st2.SerialFallback)
	}
	if sched.InUse() != 0 {
		t.Fatalf("lease not released: InUse = %d", sched.InUse())
	}
	got, want := sortedRows(res2), sortedRows(res1)
	if len(got) != len(want) {
		t.Fatalf("scheduler changed row count: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scheduler changed results at row %d: %q vs %q", i, got[i], want[i])
		}
	}
}
