package core

import (
	"testing"

	"wasmdb/internal/leakcheck"
)

// TestMain sweeps the whole package — the parallel executor's worker pools,
// cancellation watchdogs, and background tier-up goroutines — for leaked
// goroutines after the suite finishes (see internal/leakcheck). Runs under
// -race in `make verify`.
func TestMain(m *testing.M) { leakcheck.Main(m) }
