package core

import (
	"testing"

	"wasmdb/internal/engine"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/workload"
)

// TestChunkedRewiring processes a scan through a bounded address window:
// the executor re-maps the columns chunk by chunk (§6.1) and the result must
// match the whole-table mapping exactly.
func TestChunkedRewiring(t *testing.T) {
	// 200k rows: three 64Ki-row chunks, the last one partial.
	cat, err := workload.Catalog(workload.Spec{Name: "t", Rows: 200_000, IntCols: 2, FloatCols: 1, Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT COUNT(*), SUM(i1), MIN(i0), MAX(i0) FROM t WHERE i0 < 1000000",
		"SELECT COUNT(*) FROM t WHERE f0 < 0.25",
	}
	for _, src := range queries {
		stmt, _ := sql.ParseSelect(src)
		q, err := sema.Analyze(stmt, cat)
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(q)
		if err != nil {
			t.Fatal(err)
		}
		cq, err := Compile(q, p)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(engine.Config{Tier: engine.TierTurbofan})
		whole, _, err := Execute(cq, q, eng, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		chunkedRes, _, err := Execute(cq, q, eng, ExecOptions{ChunkRows: 65536, MorselRows: 10_000})
		if err != nil {
			t.Fatalf("chunked: %v", err)
		}
		if fmtRows(whole) != fmtRows(chunkedRes) {
			t.Errorf("%s:\nwhole:\n%s\nchunked:\n%s", src, fmtRows(whole), fmtRows(chunkedRes))
		}
	}
	// Misaligned chunk size is rejected.
	stmt, _ := sql.ParseSelect(queries[0])
	q, _ := sema.Analyze(stmt, cat)
	p, _ := plan.Build(q)
	cq, _ := Compile(q, p)
	if _, _, err := Execute(cq, q, engine.New(engine.Config{}), ExecOptions{ChunkRows: 1000}); err == nil {
		t.Error("misaligned ChunkRows accepted")
	}
}

// TestChunkedRewiringWithJoin: only the probe-scan table is chunked; the
// build side stays wholly mapped.
func TestChunkedRewiringWithJoin(t *testing.T) {
	cat, err := workload.JoinPair(5_000, 150_000, 1, 67)
	if err != nil {
		t.Fatal(err)
	}
	src := "SELECT COUNT(*), SUM(probe.payload) FROM build, probe WHERE build.pk = probe.fk AND build.nk = 0"
	stmt, _ := sql.ParseSelect(src)
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Compile(q, p)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Tier: engine.TierLiftoff})
	whole, _, err := Execute(cq, q, eng, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chunked, _, err := Execute(cq, q, eng, ExecOptions{ChunkRows: 65536})
	if err != nil {
		t.Fatal(err)
	}
	if fmtRows(whole) != fmtRows(chunked) {
		t.Errorf("whole:\n%s\nchunked:\n%s", fmtRows(whole), fmtRows(chunked))
	}
}
