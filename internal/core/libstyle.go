package core

import (
	"fmt"

	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// This file implements the "pre-compiled library" designs the paper argues
// against (§4.3, §5.1, Listing 3), selected by Style flags. They power the
// HyPer-like baseline and the ablation benchmarks:
//
//   - chained, type-agnostic hash tables whose every access is a function
//     call, with key comparison behind call_indirect;
//   - a generic qsort with a comparator function pointer and byte-wise
//     element moves;
//   - branch-free (predicated) selection for global aggregation.

// libRoutines holds the generic library functions, generated once per
// module.
type libRoutines struct {
	htInit   *wasm.FuncBuilder // (nBuckets, entrySize) -> ctrl
	htInsert *wasm.FuncBuilder // (ctrl, hash) -> entry
	htLookup *wasm.FuncBuilder // (ctrl, hash, cmpFn) -> entry | 0
	htNext   *wasm.FuncBuilder // (entry, hash, cmpFn) -> entry | 0
	sort     *wasm.FuncBuilder // (base, n, stride, cmpFn)
	cmp1Type uint32            // type of (entry i32) -> i32
	cmp2Type uint32            // type of (a i32, b i32) -> i32
}

// Chained entry layout: [next i32 @0][hash u64 @8][fields @16].
const (
	libEntryNext = 0
	libEntryHash = 8
	libEntryData = 16
)

// Ctrl block: [buckets i32 @0][mask i32 @4][count i32 @8][entrySize i32 @12].

func (c *compiler) libs() *libRoutines {
	if c.lib != nil {
		return c.lib
	}
	l := &libRoutines{}
	c.lib = l
	b := c.b
	i32 := wasm.I32
	l.cmp1Type = b.AddType(wasm.FuncType{Params: []wasm.ValType{i32}, Results: []wasm.ValType{i32}})
	l.cmp2Type = b.AddType(wasm.FuncType{Params: []wasm.ValType{i32, i32}, Results: []wasm.ValType{i32}})

	// lib_ht_init(nBuckets, entrySize) -> ctrl
	{
		f := b.NewFunc("lib_ht_init", wasm.FuncType{Params: []wasm.ValType{i32, i32}, Results: []wasm.ValType{i32}})
		l.htInit = f
		ctrl := f.AddLocal(i32)
		f.I32Const(16)
		f.Call(c.allocFunc().Index)
		f.LocalSet(ctrl)
		f.LocalGet(ctrl)
		f.LocalGet(f.Param(0))
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.Call(c.allocFunc().Index)
		f.I32Store(0)
		f.LocalGet(ctrl)
		f.LocalGet(f.Param(0))
		f.I32Const(1)
		f.I32Sub()
		f.I32Store(4)
		f.LocalGet(ctrl)
		f.I32Const(0)
		f.I32Store(8)
		f.LocalGet(ctrl)
		f.LocalGet(f.Param(1))
		f.I32Store(12)
		f.LocalGet(ctrl)
	}

	// lib_ht_grow(ctrl): double buckets, relink by stored hash.
	grow := b.NewFunc("lib_ht_grow", wasm.FuncType{Params: []wasm.ValType{i32}})
	{
		f := grow
		ctrl := f.Param(0)
		oldBase := f.AddLocal(i32)
		oldCap := f.AddLocal(i32)
		newBase := f.AddLocal(i32)
		newMask := f.AddLocal(i32)
		bi := f.AddLocal(i32)
		e := f.AddLocal(i32)
		nxt := f.AddLocal(i32)
		slot := f.AddLocal(i32)
		f.LocalGet(ctrl)
		f.I32Load(0)
		f.LocalSet(oldBase)
		f.LocalGet(ctrl)
		f.I32Load(4)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(oldCap)
		f.LocalGet(oldCap)
		f.I32Const(3)
		f.Op(wasm.OpI32Shl) // *8 bytes = 2x buckets * 4
		f.Call(c.allocFunc().Index)
		f.LocalSet(newBase)
		f.LocalGet(oldCap)
		f.I32Const(1)
		f.Op(wasm.OpI32Shl)
		f.I32Const(1)
		f.I32Sub()
		f.LocalSet(newMask)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(bi)
		f.LocalGet(oldCap)
		f.I32GeU()
		f.BrIf(1)
		f.LocalGet(oldBase)
		f.LocalGet(bi)
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.I32Add()
		f.I32Load(0)
		f.LocalSet(e)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(e)
		f.I32Eqz()
		f.BrIf(1)
		f.LocalGet(e)
		f.I32Load(libEntryNext)
		f.LocalSet(nxt)
		// slot = newBase + (hash & newMask)*4
		f.LocalGet(newBase)
		f.LocalGet(e)
		f.I64Load(libEntryHash)
		f.Op(wasm.OpI32WrapI64)
		f.LocalGet(newMask)
		f.I32And()
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.I32Add()
		f.LocalSet(slot)
		f.LocalGet(e)
		f.LocalGet(slot)
		f.I32Load(0)
		f.I32Store(libEntryNext)
		f.LocalGet(slot)
		f.LocalGet(e)
		f.I32Store(0)
		f.LocalGet(nxt)
		f.LocalSet(e)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(bi)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(bi)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(ctrl)
		f.LocalGet(newBase)
		f.I32Store(0)
		f.LocalGet(ctrl)
		f.LocalGet(newMask)
		f.I32Store(4)
	}

	// lib_ht_insert(ctrl, hash) -> entry
	{
		f := b.NewFunc("lib_ht_insert", wasm.FuncType{Params: []wasm.ValType{i32, wasm.I64}, Results: []wasm.ValType{i32}})
		l.htInsert = f
		ctrl, hash := f.Param(0), f.Param(1)
		e := f.AddLocal(i32)
		slot := f.AddLocal(i32)
		// grow when count >= buckets
		f.LocalGet(ctrl)
		f.I32Load(8)
		f.LocalGet(ctrl)
		f.I32Load(4)
		f.I32Const(1)
		f.I32Add()
		f.I32GeU()
		f.If(wasm.BlockVoid)
		f.LocalGet(ctrl)
		f.Call(grow.Index)
		f.End()
		f.LocalGet(ctrl)
		f.I32Load(12)
		f.Call(c.allocFunc().Index)
		f.LocalSet(e)
		f.LocalGet(ctrl)
		f.I32Load(0)
		f.LocalGet(hash)
		f.Op(wasm.OpI32WrapI64)
		f.LocalGet(ctrl)
		f.I32Load(4)
		f.I32And()
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.I32Add()
		f.LocalSet(slot)
		f.LocalGet(e)
		f.LocalGet(slot)
		f.I32Load(0)
		f.I32Store(libEntryNext)
		f.LocalGet(slot)
		f.LocalGet(e)
		f.I32Store(0)
		f.LocalGet(e)
		f.LocalGet(hash)
		f.I64Store(libEntryHash)
		f.LocalGet(ctrl)
		f.LocalGet(ctrl)
		f.I32Load(8)
		f.I32Const(1)
		f.I32Add()
		f.I32Store(8)
		f.LocalGet(e)
	}

	// chainScan emits the shared walk: from entry local e, find the first
	// entry with matching hash whose comparator accepts it.
	chainScan := func(f *wasm.FuncBuilder, e wasm.Local, hash, cmpFn wasm.Local) {
		f.Block(wasm.BlockOf(wasm.I32))
		f.Loop(wasm.BlockOf(wasm.I32))
		f.I32Const(0)
		f.LocalGet(e)
		f.I32Eqz()
		f.BrIf(1)
		f.Drop()
		f.LocalGet(e)
		f.LocalGet(e)
		f.I64Load(libEntryHash)
		f.LocalGet(hash)
		f.Op(wasm.OpI64Eq)
		f.If(wasm.BlockOf(wasm.I32))
		// The comparison callback — one indirect call per candidate.
		f.LocalGet(e)
		f.LocalGet(cmpFn)
		f.Emit(wasm.OpCallIndirect, uint64(l.cmp1Type), 0)
		f.Else()
		f.I32Const(0)
		f.End()
		f.BrIf(1)
		f.Drop()
		f.LocalGet(e)
		f.I32Load(libEntryNext)
		f.LocalSet(e)
		f.Br(0)
		f.End()
		f.End()
	}

	// lib_ht_lookup(ctrl, hash, cmpFn) -> entry | 0
	{
		f := b.NewFunc("lib_ht_lookup", wasm.FuncType{
			Params: []wasm.ValType{i32, wasm.I64, i32}, Results: []wasm.ValType{i32}})
		l.htLookup = f
		ctrl, hash, cmpFn := f.Param(0), f.Param(1), f.Param(2)
		e := f.AddLocal(i32)
		f.LocalGet(ctrl)
		f.I32Load(0)
		f.LocalGet(hash)
		f.Op(wasm.OpI32WrapI64)
		f.LocalGet(ctrl)
		f.I32Load(4)
		f.I32And()
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.I32Add()
		f.I32Load(0)
		f.LocalSet(e)
		chainScan(f, e, hash, cmpFn)
	}

	// lib_ht_next(entry, hash, cmpFn) -> next matching entry | 0
	{
		f := b.NewFunc("lib_ht_next", wasm.FuncType{
			Params: []wasm.ValType{i32, wasm.I64, i32}, Results: []wasm.ValType{i32}})
		l.htNext = f
		prev, hash, cmpFn := f.Param(0), f.Param(1), f.Param(2)
		e := f.AddLocal(i32)
		f.LocalGet(prev)
		f.I32Load(libEntryNext)
		f.LocalSet(e)
		chainScan(f, e, hash, cmpFn)
	}

	// lib_sort(base, n, stride, cmpFn): generic quicksort + insertion sort,
	// comparator via call_indirect, element moves via byte loops.
	copyBytes := b.NewFunc("lib_copy", wasm.FuncType{Params: []wasm.ValType{i32, i32, i32}})
	{
		f := copyBytes
		dst, src, n := f.Param(0), f.Param(1), f.Param(2)
		i := f.AddLocal(i32)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(i)
		f.LocalGet(n)
		f.I32GeU()
		f.BrIf(1)
		f.LocalGet(dst)
		f.LocalGet(i)
		f.I32Add()
		f.LocalGet(src)
		f.LocalGet(i)
		f.I32Add()
		f.I32Load8U(0)
		f.I32Store8(0)
		f.LocalGet(i)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(i)
		f.Br(0)
		f.End()
		f.End()
	}

	isort := b.NewFunc("lib_isort", wasm.FuncType{
		Params: []wasm.ValType{i32, i32, i32, i32, i32, i32}}) // base, lo, hi, stride, cmpFn, scratch
	{
		f := isort
		base, lo, hi, stride, cmpFn, scr := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5)
		kk := f.AddLocal(i32)
		m := f.AddLocal(i32)
		prev := f.AddLocal(i32)
		eAddr := func(idx wasm.Local) {
			f.LocalGet(idx)
			f.LocalGet(stride)
			f.I32Mul()
			f.LocalGet(base)
			f.I32Add()
		}
		f.LocalGet(lo)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(kk)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(kk)
		f.LocalGet(hi)
		f.Op(wasm.OpI32GeS)
		f.BrIf(1)
		f.LocalGet(scr)
		eAddr(kk)
		f.LocalGet(stride)
		f.Call(copyBytes.Index)
		f.LocalGet(kk)
		f.LocalSet(m)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(m)
		f.LocalGet(lo)
		f.Op(wasm.OpI32LeS)
		f.BrIf(1)
		f.LocalGet(m)
		f.I32Const(1)
		f.I32Sub()
		f.LocalGet(stride)
		f.I32Mul()
		f.LocalGet(base)
		f.I32Add()
		f.LocalSet(prev)
		// if !(scratch < prev): break
		f.LocalGet(scr)
		f.LocalGet(prev)
		f.LocalGet(cmpFn)
		f.Emit(wasm.OpCallIndirect, uint64(l.cmp2Type), 0)
		f.I32Eqz()
		f.BrIf(1)
		eAddr(m)
		f.LocalGet(prev)
		f.LocalGet(stride)
		f.Call(copyBytes.Index)
		f.LocalGet(m)
		f.I32Const(1)
		f.I32Sub()
		f.LocalSet(m)
		f.Br(0)
		f.End()
		f.End()
		eAddr(m)
		f.LocalGet(scr)
		f.LocalGet(stride)
		f.Call(copyBytes.Index)
		f.LocalGet(kk)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(kk)
		f.Br(0)
		f.End()
		f.End()
	}

	sortRec := b.NewFunc("lib_qsort_rec", wasm.FuncType{
		Params: []wasm.ValType{i32, i32, i32, i32, i32, i32, i32}}) // base, lo, hi, stride, cmpFn, scrA, scrB
	{
		f := sortRec
		base, lo0, hi0, stride, cmpFn, scrA, scrB := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5), f.Param(6)
		lo := f.AddLocal(i32)
		hi := f.AddLocal(i32)
		i := f.AddLocal(i32)
		j := f.AddLocal(i32)
		pi := f.AddLocal(i32)
		pj := f.AddLocal(i32)
		eAddr := func(idx wasm.Local) {
			f.LocalGet(idx)
			f.LocalGet(stride)
			f.I32Mul()
			f.LocalGet(base)
			f.I32Add()
		}
		f.LocalGet(lo0)
		f.LocalSet(lo)
		f.LocalGet(hi0)
		f.LocalSet(hi)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(hi)
		f.LocalGet(lo)
		f.I32Sub()
		f.I32Const(16)
		f.Op(wasm.OpI32LeS)
		f.BrIf(1)
		// pivot → scrA
		f.LocalGet(scrA)
		f.LocalGet(lo)
		f.LocalGet(hi)
		f.LocalGet(lo)
		f.I32Sub()
		f.I32Const(1)
		f.Op(wasm.OpI32ShrU)
		f.I32Add()
		f.LocalGet(stride)
		f.I32Mul()
		f.LocalGet(base)
		f.I32Add()
		f.LocalGet(stride)
		f.Call(copyBytes.Index)
		f.LocalGet(lo)
		f.I32Const(1)
		f.I32Sub()
		f.LocalSet(i)
		f.LocalGet(hi)
		f.LocalSet(j)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(i)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(i)
		eAddr(i)
		f.LocalSet(pi)
		f.LocalGet(pi)
		f.LocalGet(scrA)
		f.LocalGet(cmpFn)
		f.Emit(wasm.OpCallIndirect, uint64(l.cmp2Type), 0)
		f.I32Eqz()
		f.BrIf(1)
		f.Br(0)
		f.End()
		f.End()
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Sub()
		f.LocalSet(j)
		eAddr(j)
		f.LocalSet(pj)
		f.LocalGet(scrA)
		f.LocalGet(pj)
		f.LocalGet(cmpFn)
		f.Emit(wasm.OpCallIndirect, uint64(l.cmp2Type), 0)
		f.I32Eqz()
		f.BrIf(1)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(i)
		f.LocalGet(j)
		f.Op(wasm.OpI32GeS)
		f.BrIf(1)
		// swap via scrB (generic byte moves)
		f.LocalGet(scrB)
		f.LocalGet(pi)
		f.LocalGet(stride)
		f.Call(copyBytes.Index)
		f.LocalGet(pi)
		f.LocalGet(pj)
		f.LocalGet(stride)
		f.Call(copyBytes.Index)
		f.LocalGet(pj)
		f.LocalGet(scrB)
		f.LocalGet(stride)
		f.Call(copyBytes.Index)
		f.Br(0)
		f.End()
		f.End()
		// recurse smaller partition
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalGet(lo)
		f.I32Sub()
		f.LocalGet(hi)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.I32Sub()
		f.Op(wasm.OpI32LeS)
		f.If(wasm.BlockVoid)
		f.LocalGet(base)
		f.LocalGet(lo)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalGet(stride)
		f.LocalGet(cmpFn)
		f.LocalGet(scrA)
		f.LocalGet(scrB)
		f.CallBuilder(sortRec)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(lo)
		f.Else()
		f.LocalGet(base)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalGet(hi)
		f.LocalGet(stride)
		f.LocalGet(cmpFn)
		f.LocalGet(scrA)
		f.LocalGet(scrB)
		f.CallBuilder(sortRec)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(hi)
		f.End()
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(base)
		f.LocalGet(lo)
		f.LocalGet(hi)
		f.LocalGet(stride)
		f.LocalGet(cmpFn)
		f.LocalGet(scrB)
		f.Call(isort.Index)
	}

	{
		f := b.NewFunc("lib_sort", wasm.FuncType{Params: []wasm.ValType{i32, i32, i32, i32}})
		l.sort = f
		base, n, stride, cmpFn := f.Param(0), f.Param(1), f.Param(2), f.Param(3)
		scrA := f.AddLocal(i32)
		scrB := f.AddLocal(i32)
		f.LocalGet(stride)
		f.Call(c.allocFunc().Index)
		f.LocalSet(scrA)
		f.LocalGet(stride)
		f.Call(c.allocFunc().Index)
		f.LocalSet(scrB)
		f.LocalGet(base)
		f.I32Const(0)
		f.LocalGet(n)
		f.LocalGet(stride)
		f.LocalGet(cmpFn)
		f.LocalGet(scrA)
		f.LocalGet(scrB)
		f.Call(sortRec.Index)
	}
	return l
}

// registerTableFunc adds a function to the call_indirect table, returning
// its table index.
func (c *compiler) registerTableFunc(fn *wasm.FuncBuilder) uint32 {
	c.tableFuncs = append(c.tableFuncs, fn.Index)
	return uint32(len(c.tableFuncs) - 1)
}

// ---------------------------------------------------------------------------
// Library-style grouping.

// libHT describes one chained library hash table used by a query.
type libHT struct {
	layout  tupleLayout // fields start at libEntryData
	keys    []sema.Expr
	gCtrl   uint32 // global holding the ctrl pointer
	keyGlob []uint32
	cmpIdx  uint32 // table index of the key comparator
	// canonFloatKeys mirrors htInfo's flag: join tables hash Float64 keys
	// through -0.0→+0.0 canonicalization so the F64Eq comparator and the
	// hash agree; group tables keep raw-bit hashing.
	canonFloatKeys bool
}

// newLibHT declares globals, the comparator, and the init step.
func (c *compiler) newLibHT(name string, fields []sema.Expr, keys []sema.Expr, canonFloatKeys bool) *libHT {
	l := c.libs()
	ht := &libHT{
		layout:         buildLayout(dedupExprs(fields), libEntryData),
		keys:           keys,
		gCtrl:          c.b.AddGlobal(wasm.I32, true, 0),
		canonFloatKeys: canonFloatKeys,
	}
	// One "current key" global per key; CHAR keys hold a pointer.
	for _, k := range keys {
		ht.keyGlob = append(ht.keyGlob, c.b.AddGlobal(wasmType(k.Type()), true, 0))
	}
	// Comparator: reads the key globals, compares against entry fields.
	cmp := c.b.NewFunc("cmp_"+name, wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	g := &gen{c: c, f: cmp}
	entry := cmp.Param(0)
	for i, k := range keys {
		fld, ok := ht.layout.find(k)
		if !ok {
			panic("core: key missing from library entry layout")
		}
		switch k.Type().Kind {
		case types.Char:
			sc := c.strcmpFunc(k.Type().Length, fld.t.Length)
			cmp.GlobalGet(ht.keyGlob[i])
			g.loadField(entry, fld)
			cmp.Call(sc.Index)
			cmp.I32Eqz()
		case types.Float64:
			cmp.GlobalGet(ht.keyGlob[i])
			g.loadField(entry, fld)
			cmp.Op(wasm.OpF64Eq)
		case types.Int64, types.Decimal:
			cmp.GlobalGet(ht.keyGlob[i])
			g.loadField(entry, fld)
			cmp.Op(wasm.OpI64Eq)
		default:
			cmp.GlobalGet(ht.keyGlob[i])
			g.loadField(entry, fld)
			cmp.I32Eq()
		}
		if i > 0 {
			cmp.I32And()
		}
	}
	if len(keys) == 0 {
		cmp.I32Const(1)
	}
	ht.cmpIdx = c.registerTableFunc(cmp)

	c.initSteps = append(c.initSteps, func(gi *gen) {
		gi.f.I32Const(1024)
		gi.f.I32Const(int32(ht.layout.stride))
		gi.f.Call(l.htInit.Index)
		gi.f.GlobalSet(ht.gCtrl)
	})
	return ht
}

// emitSetKeys evaluates the table's own key expressions into the key
// globals and computes the hash.
func (g *gen) emitSetKeys(e *env, ht *libHT) wasm.Local {
	return g.emitSetKeysFor(e, ht, ht.keys)
}

// emitSetKeysFor evaluates the given key expressions (e.g. the probe side's
// keys) into the key globals and computes the hash (same mixing as the
// specialized path, so both sides agree).
func (g *gen) emitSetKeysFor(e *env, ht *libHT, keys []sema.Expr) wasm.Local {
	var srcs []keySrc
	for i, k := range keys {
		g.expr(e, k)
		g.f.GlobalSet(ht.keyGlob[i])
		gi := ht.keyGlob[i]
		t := k.Type()
		srcs = append(srcs, keySrc{t: t, pushVal: func() { g.f.GlobalGet(gi) }})
	}
	return g.emitHashCanon(srcs, ht.canonFloatKeys)
}

// produceGroupLib compiles grouping through the generic library hash table.
func (c *compiler) produceGroupLib(gr *plan.Group, consume consumer) error {
	fields := append([]sema.Expr{}, gr.Keys...)
	var aggSlots []*sema.AggRef
	for i, a := range gr.Aggs {
		ref := &sema.AggRef{Idx: i, T: a.T}
		aggSlots = append(aggSlots, ref)
		fields = append(fields, ref)
	}
	ht := c.newLibHT(fmt.Sprintf("group%d", len(c.pipes)), fields, gr.Keys, false)
	l := c.libs()

	err := c.produce(gr.Input, func(g *gen, e *env) {
		f := g.f
		h := g.emitSetKeys(e, ht)
		argLocals := make([]wasm.Local, len(gr.Aggs))
		for i, a := range gr.Aggs {
			if a.Arg == nil {
				continue
			}
			lv := f.AddLocal(wasmType(a.Arg.Type()))
			g.expr(e, a.Arg)
			f.LocalSet(lv)
			argLocals[i] = lv
		}
		entry := f.AddLocal(wasm.I32)
		// entry = lookup(ctrl, h, cmp) — a library call per tuple.
		f.GlobalGet(ht.gCtrl)
		f.LocalGet(h)
		f.I32Const(int32(ht.cmpIdx))
		f.Call(l.htLookup.Index)
		f.LocalTee(entry)
		f.I32Eqz()
		f.If(wasm.BlockVoid)
		// entry = insert(ctrl, h); store keys; init aggregates.
		f.GlobalGet(ht.gCtrl)
		f.LocalGet(h)
		f.Call(l.htInsert.Index)
		f.LocalSet(entry)
		for i, k := range gr.Keys {
			fld, _ := ht.layout.find(k)
			gi := ht.keyGlob[i]
			g.storeFieldFromStack(entry, fld, func() { f.GlobalGet(gi) })
		}
		for i, a := range gr.Aggs {
			fld, _ := ht.layout.find(aggSlots[i])
			g.emitAggInit(entry, fld, a, argLocals[i])
		}
		f.Else()
		for i, a := range gr.Aggs {
			fld, _ := ht.layout.find(aggSlots[i])
			g.emitAggUpdate(entry, fld, a, argLocals[i])
		}
		f.End()
	})
	if err != nil {
		return err
	}

	// Scan pipeline: walk buckets [begin, end), following chains. The host
	// reads the bucket count from the ctrl block (PipeScanBuckets).
	g := c.newPipeline(PipeScanBuckets, -1, ht.gCtrl)
	f := g.f
	bi := f.AddLocal(wasm.I32)
	entry := f.AddLocal(wasm.I32)
	f.LocalGet(f.Param(0))
	f.LocalSet(bi)

	e := &env{}
	for i, k := range gr.Keys {
		kf, _ := ht.layout.find(k)
		e.add(&sema.KeyRef{Idx: i, T: k.Type()}, func() { g.loadField(entry, kf) })
	}
	for i := range gr.Aggs {
		af, _ := ht.layout.find(aggSlots[i])
		e.add(aggSlots[i], func() { g.loadField(entry, af) })
	}

	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(bi)
	f.LocalGet(f.Param(1))
	f.I32GeU()
	f.BrIf(1)
	// entry = buckets[bi]
	f.GlobalGet(ht.gCtrl)
	f.I32Load(0)
	f.LocalGet(bi)
	f.I32Const(2)
	f.Op(wasm.OpI32Shl)
	f.I32Add()
	f.I32Load(0)
	f.LocalSet(entry)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(entry)
	f.I32Eqz()
	f.BrIf(1)
	consume(g, e)
	f.LocalGet(entry)
	f.I32Load(libEntryNext)
	f.LocalSet(entry)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(bi)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(bi)
	f.Br(0)
	f.End()
	f.End()
	f.I32Const(0)
	return g.err
}
