package core

import "wasmdb/internal/wasm"

// WAT renders the generated module in text form (for EXPLAIN and the
// examples/adhoc demo).
func (cq *CompiledQuery) WAT() string { return wasm.Print(cq.Module) }

func wasmPrint(cq *CompiledQuery) string { return cq.WAT() }
