package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"wasmdb/internal/engine"
	"wasmdb/internal/engine/rt"
	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/obs"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// Process-wide executor metrics, resolved once so recording is atomic-only.
var (
	mFuelConsumed  = obs.Default.Counter(obs.MetricFuelConsumed)
	mPeakHeapPages = obs.Default.Gauge(obs.MetricPeakHeapPages)
	mMorselLatency = obs.Default.Histogram(obs.MetricMorselLatency)
)

// ExecOptions configures query execution.
type ExecOptions struct {
	// Tier selects the engine configuration (default TierAdaptive).
	Tier engine.Tier
	// MorselRows is the morsel size (default DefaultMorselRows).
	MorselRows int
	// ChunkRows enables chunked rewiring (§6.1) for table-scan pipelines:
	// instead of mapping whole columns, the executor maps a window of
	// ChunkRows rows and re-maps the window to the next chunk between
	// morsel batches — how tables beyond the 32-bit address budget are
	// processed. Must be a multiple of 65536 so every column's chunk stays
	// page-aligned; 0 disables chunking.
	ChunkRows int
	// WaitOptimized blocks until background optimization finished before
	// the first morsel runs — used by benchmarks that want to measure pure
	// TurboFan-tier execution under the adaptive configuration.
	WaitOptimized bool
	// Ctx cancels the query: between morsels via a direct check, and inside
	// a running morsel via the instance's interrupt flag (metering is
	// enabled automatically when Ctx is cancellable). nil means Background.
	Ctx context.Context
	// Fuel bounds execution to that many units (function entries plus taken
	// loop back-edges); exhaustion fails the query with
	// engine.ErrFuelExhausted. 0 means unlimited.
	Fuel int64
	// MemoryBudgetPages caps the query's linear memory (in 64 KiB pages);
	// growth beyond it fails the query with engine.ErrMemoryLimit. 0 means
	// no budget.
	MemoryBudgetPages uint32
	// Trace, when non-nil, receives the query's spans, point events, and
	// counters (compile phases, rewiring, per-pipeline execution, tier-up
	// timeline). nil disables span recording on the hot path.
	Trace *obs.Trace
	// DrainBackground waits for background optimization to finish after the
	// last morsel — adaptive behavior during the query is unchanged, but the
	// trace's tier-up timeline and Turbofan timing are complete when Execute
	// returns.
	DrainBackground bool
}

// ExecStats reports where time went, phase by phase (the paper's Fig. 10
// breakdown). The fields are flat — one struct instead of nested
// engine.CompileStats — and agree with the spans and counters recorded on
// the query trace, which is the single source of truth the public
// wasmdb.Stats is also derived from.
type ExecStats struct {
	// Engine compilation phases.
	Decode   time.Duration
	Validate time.Duration
	Liftoff  time.Duration
	// Turbofan is the optimizing-tier compile time. Under TierAdaptive it is
	// measured on the background goroutine and is valid once optimization
	// finished (WaitOptimized or DrainBackground).
	Turbofan time.Duration
	// Rewire covers mapping the referenced columns into linear memory.
	Rewire time.Duration
	// Init covers instantiation, column rewiring, and q_init.
	Init time.Duration
	// Run covers pipeline execution.
	Run time.Duration
	// MorselsLiftoff and MorselsTurbofan count exported calls served by
	// each tier — the observable adaptive switch.
	MorselsLiftoff  uint64
	MorselsTurbofan uint64
	// TurbofanFailed counts functions whose optimizing compile failed; they
	// keep serving baseline code.
	TurbofanFailed int
	// ModuleBytes is the size of the generated Wasm binary.
	ModuleBytes int
	// FuelUsed is the fuel consumed by the query (0 when unmetered).
	FuelUsed int64
	// PeakMemBytes is the high-water linear-memory size (pages never
	// shrink, so the final size is the peak).
	PeakMemBytes uint64
}

// ResultSet holds decoded query results.
type ResultSet struct {
	Names []string
	Types []types.Type
	Rows  [][]types.Value
}

// Execute runs a compiled query against its bound tables on the given
// engine: it rewires the referenced columns into a fresh linear memory
// (§6.1), instantiates the module, and drives every pipeline morsel-wise so
// the engine's background tier-up can swap code between morsels.
func Execute(cq *CompiledQuery, q *sema.Query, eng *engine.Engine, opt ExecOptions) (*ResultSet, *ExecStats, error) {
	stats := &ExecStats{ModuleBytes: len(cq.Bin)}
	if opt.MorselRows <= 0 {
		opt.MorselRows = DefaultMorselRows
	}
	// tr drives all instrumentation below. It stays exactly opt.Trace —
	// nil when the caller asked for no tracing — so an untraced query pays
	// one pointer test per recording site and nothing more.
	tr := opt.Trace
	// Context-free instrumentation (faultpoint) finds the trace through the
	// process-wide active slot for the duration of the query.
	if tr != nil {
		prev := obs.SwapActive(tr)
		defer obs.SwapActive(prev)
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// wrapErr maps the interrupt trap raised by the cancellation watchdog
	// back to the context's error, so callers see DeadlineExceeded/Canceled
	// rather than an engine-internal trap.
	wrapErr := func(err error) error {
		if errors.Is(err, rt.ErrInterrupted) && ctx.Err() != nil {
			return fmt.Errorf("core: query canceled: %w", ctx.Err())
		}
		return err
	}
	canceled := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: query canceled: %w", err)
		}
		return nil
	}

	mod, err := eng.CompileTraced(cq.Bin, tr)
	if err != nil {
		return nil, nil, fmt.Errorf("core: engine compile: %w", err)
	}

	if opt.ChunkRows != 0 && opt.ChunkRows%wmem.PageSize != 0 {
		return nil, nil, fmt.Errorf("core: ChunkRows must be a multiple of %d", wmem.PageSize)
	}
	// Tables scanned by a pipeline are chunk-rewired when chunking is on;
	// all other referenced tables (build sides) are mapped whole.
	chunked := map[int]bool{}
	if opt.ChunkRows > 0 {
		for _, p := range cq.Pipelines {
			if p.Kind == PipeScanTable {
				chunked[p.TableIdx] = true
			}
		}
	}

	t0 := time.Now()
	spRewire := tr.Begin(obs.SpanRewire)
	mem := wmem.New(cq.MinPages, 65536)
	mem.SetTracer(tr)
	if opt.MemoryBudgetPages > 0 {
		mem.SetBudget(opt.MemoryBudgetPages)
	}
	mapped := 0
	for _, cm := range cq.Columns {
		if chunked[cm.TableIdx] {
			continue // mapped chunk-by-chunk while scanning
		}
		col := q.Tables[cm.TableIdx].Table.Columns[cm.ColIdx]
		if col.MappedBytes() == 0 {
			continue
		}
		if err := mem.Map(cm.Base, col.Data()); err != nil {
			return nil, nil, fmt.Errorf("core: rewiring column %s.%s: %w",
				q.Tables[cm.TableIdx].Table.Name, col.Name, err)
		}
		mapped++
	}
	spRewire.End(obs.I("columns", int64(mapped)))
	stats.Rewire = time.Since(t0)

	// mapChunk rewires rows [start, start+n) of every referenced column of
	// table ti into the column's window.
	mapChunk := func(ti, start, n int) error {
		if err := faultpoint.Hit("core-rewire"); err != nil {
			return fmt.Errorf("core: chunk rewiring: %w", err)
		}
		for _, cm := range cq.Columns {
			if cm.TableIdx != ti {
				continue
			}
			col := q.Tables[ti].Table.Columns[cm.ColIdx]
			sz := col.Type.Size()
			lo := start * sz
			hi := (start + n) * sz
			hi = (hi + wmem.PageSize - 1) &^ (wmem.PageSize - 1)
			data := col.Data()
			if hi > len(data) {
				hi = len(data)
			}
			if lo >= hi {
				continue
			}
			if err := mem.Map(cm.Base, data[lo:hi]); err != nil {
				return fmt.Errorf("core: chunk rewiring %s.%s: %w", q.Tables[ti].Table.Name, col.Name, err)
			}
		}
		return nil
	}

	res := &ResultSet{}
	for _, rf := range cq.ResultFields {
		res.Names = append(res.Names, rf.Name)
		res.Types = append(res.Types, rf.Type)
	}

	drain := func(m *wmem.Memory, count uint32) {
		for i := uint32(0); i < count; i++ {
			res.Rows = append(res.Rows, decodeRow(m, cq, i))
		}
	}

	imports := engine.Imports{
		Memory: mem,
		Funcs: map[string]*rt.HostFunc{
			"env.result_flush": {
				Type: wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}},
				Fn: func(env *rt.Env, args, out []uint64) {
					drain(env.Mem, uint32(args[0]))
					out[0] = 0
				},
			},
		},
	}
	spInst := tr.Begin(obs.SpanInstantiate)
	inst, err := mod.Instantiate(imports)
	if err != nil {
		return nil, nil, fmt.Errorf("core: instantiate: %w", err)
	}
	spInst.End()

	// Fuel metering. A cancellable context needs metering too: the fuel
	// checks double as interruption points, which is the only way to stop
	// generated code in the middle of a morsel.
	fuel := opt.Fuel
	if fuel <= 0 && ctx.Done() != nil {
		fuel = math.MaxInt64
	}
	if fuel > 0 {
		inst.SetFuel(fuel)
	}
	if ctx.Done() != nil {
		// Watchdog: flips the instance's interrupt flag when the context
		// fires, trapping the in-flight call at its next fuel check.
		watchdogDone := make(chan struct{})
		defer close(watchdogDone)
		go func() {
			select {
			case <-ctx.Done():
				inst.Interrupt()
			case <-watchdogDone:
			}
		}()
	}

	if _, err := inst.Call("q_init"); err != nil {
		return nil, nil, fmt.Errorf("core: q_init: %w", wrapErr(err))
	}
	stats.Init = time.Since(t0)

	if opt.WaitOptimized {
		// A failed background compile is not a query error: affected
		// functions keep running on baseline code, and the failure is
		// visible in CompileStats.TurbofanFailed.
		_ = mod.WaitOptimized()
	}

	// callMorsel dispatches one morsel: faultpoint check, morsel count (the
	// tier-up timeline is stamped against it), latency histogram, and —
	// only when the trace asks for Detail — a per-morsel span.
	callMorsel := func(export string, begin, end int) (bool, error) {
		if ferr := faultpoint.Hit("core-morsel"); ferr != nil {
			return false, fmt.Errorf("core: %s[%d,%d): %w", export, begin, end, ferr)
		}
		tr.AddMorsel()
		tm := time.Now()
		r, err := inst.Call(export, uint64(uint32(begin)), uint64(uint32(end)))
		d := time.Since(tm)
		mMorselLatency.Observe(d.Nanoseconds())
		if tr != nil && tr.Detail {
			tr.AddSpan(obs.SpanMorsel+export, tm, d,
				obs.I("begin", int64(begin)), obs.I("end", int64(end)))
		}
		if err != nil {
			return false, fmt.Errorf("core: %s[%d,%d): %w", export, begin, end, wrapErr(err))
		}
		return r[0] != 0, nil
	}

	t1 := time.Now()
	spRun := tr.Begin(obs.SpanExecute)
	for _, p := range cq.Pipelines {
		spPipe := tr.Begin(obs.SpanPipeline + p.Export)
		var total int
		switch p.Kind {
		case PipeScanTable:
			total = q.Tables[p.TableIdx].Table.Rows()
		case PipeScanSlots:
			total = int(uint32(inst.Global(int(p.CountGlobal)))) + 1
		case PipeScanArray:
			total = int(uint32(inst.Global(int(p.CountGlobal))))
		case PipeScanBuckets:
			ctrl := uint32(inst.Global(int(p.CountGlobal)))
			total = int(mem.U32(ctrl+4)) + 1
		case PipeRunOnce:
			if _, err := inst.Call(p.Export, 0, 0); err != nil {
				return nil, nil, fmt.Errorf("core: %s: %w", p.Export, wrapErr(err))
			}
			spPipe.End()
			continue
		}
		stop := false
		if p.Kind == PipeScanTable && chunked[p.TableIdx] {
			// Chunked rewiring: remap the window, then drive morsels with
			// window-relative row ranges.
			for cs := 0; cs < total && !stop; cs += opt.ChunkRows {
				ce := cs + opt.ChunkRows
				if ce > total {
					ce = total
				}
				if err := mapChunk(p.TableIdx, cs, ce-cs); err != nil {
					return nil, nil, err
				}
				for begin := 0; begin < ce-cs && !stop; begin += opt.MorselRows {
					if err := canceled(); err != nil {
						return nil, nil, err
					}
					end := begin + opt.MorselRows
					if end > ce-cs {
						end = ce - cs
					}
					var err error
					if stop, err = callMorsel(p.Export, begin, end); err != nil {
						return nil, nil, err
					}
				}
			}
			spPipe.End(obs.I("rows", int64(total)))
			if fuel > 0 {
				tr.Event(obs.EvFuel, obs.I("remaining", inst.FuelLeft()))
			}
			continue
		}
		for begin := 0; begin < total && !stop; begin += opt.MorselRows {
			if err := canceled(); err != nil {
				return nil, nil, err
			}
			end := begin + opt.MorselRows
			if end > total {
				end = total
			}
			var err error
			if stop, err = callMorsel(p.Export, begin, end); err != nil {
				return nil, nil, err
			}
		}
		spPipe.End(obs.I("rows", int64(total)))
		// Fuel checkpoint at every pipeline boundary on metered queries —
		// the audit trail of where the budget went.
		if fuel > 0 {
			tr.Event(obs.EvFuel, obs.I("remaining", inst.FuelLeft()))
		}
	}
	// Drain the rows still in the buffer.
	drain(mem, uint32(inst.Global(int(cq.CursorGlobal))))
	spRun.End()
	stats.Run = time.Since(t1)

	if opt.DrainBackground {
		// Complete the tier-up timeline (and Turbofan timing) without having
		// perturbed adaptive behavior during the query. A failed background
		// compile is not a query error — see WaitOptimized above.
		_ = mod.WaitOptimized()
	}

	// Fold the compile-side stats and runtime counters into the flat struct,
	// and mirror them onto the trace and the process-wide metrics.
	es := mod.Stats()
	stats.Decode, stats.Validate = es.Decode, es.Validate
	stats.Liftoff, stats.Turbofan = es.Liftoff, es.Turbofan
	stats.TurbofanFailed = es.TurbofanFailed
	stats.MorselsLiftoff, stats.MorselsTurbofan = inst.TierCalls()
	if left := inst.FuelLeft(); left >= 0 && fuel > 0 {
		stats.FuelUsed = fuel - left
	}
	stats.PeakMemBytes = uint64(mem.Pages()) * wmem.PageSize
	mFuelConsumed.Add(stats.FuelUsed)
	mPeakHeapPages.SetMax(int64(mem.Pages()))
	if tr != nil {
		tr.Set(obs.CtrMorselsLiftoff, int64(stats.MorselsLiftoff))
		tr.Set(obs.CtrMorselsTurbofan, int64(stats.MorselsTurbofan))
		tr.Set(obs.CtrTurbofanFailed, int64(stats.TurbofanFailed))
		tr.Set(obs.CtrModuleBytes, int64(stats.ModuleBytes))
		tr.Set(obs.CtrFuelUsed, stats.FuelUsed)
		tr.Set(obs.CtrPeakMemBytes, int64(stats.PeakMemBytes))
		tr.Set(obs.CtrResultRows, int64(len(res.Rows)))
	}

	if cq.Limit >= 0 && int64(len(res.Rows)) > cq.Limit {
		res.Rows = res.Rows[:cq.Limit]
	}
	// SQL semantics: a global aggregation over zero input rows still yields
	// one row (COUNT = 0, SUM/MIN/MAX = 0 by this system's convention).
	if len(res.Rows) == 0 && q.Grouped && len(q.GroupBy) == 0 && (cq.Limit != 0) {
		res.Rows = append(res.Rows, zeroAggregateRow(q))
	}
	return res, stats, nil
}

// zeroAggregateRow fabricates the zero-group output row.
func zeroAggregateRow(q *sema.Query) []types.Value {
	out := make([]types.Value, len(q.Select))
	for i, oc := range q.Select {
		out[i] = evalZero(oc.Expr, q)
	}
	return out
}

func evalZero(e sema.Expr, q *sema.Query) types.Value {
	switch x := e.(type) {
	case *sema.Const:
		return x.V
	case *sema.AggRef:
		t := q.Aggs[x.Idx].T
		switch t.Kind {
		case types.Float64:
			return types.NewFloat64(0)
		case types.Decimal:
			return types.NewDecimal(0, t.Prec, t.Scale)
		case types.Int32:
			return types.NewInt32(0)
		case types.Date:
			return types.NewDate(0)
		default:
			return types.NewInt64(0)
		}
	case *sema.Binary:
		l := evalZero(x.L, q)
		if x.Op == sema.OpDiv {
			return types.NewFloat64(0) // 0/0 reported as 0
		}
		return l
	case *sema.Cast:
		v := evalZero(x.E, q)
		if x.To.Kind == types.Float64 {
			return types.NewFloat64(0)
		}
		return v
	}
	return types.Value{Type: e.Type()}
}

// decodeRow reads result row i from guest memory.
func decodeRow(m *wmem.Memory, cq *CompiledQuery, i uint32) []types.Value {
	base := cq.ResultBase + i*cq.ResultStride
	out := make([]types.Value, len(cq.ResultFields))
	for fi, rf := range cq.ResultFields {
		addr := base + rf.Offset
		switch rf.Type.Kind {
		case types.Bool:
			out[fi] = types.NewBool(m.U8(addr) != 0)
		case types.Int32:
			out[fi] = types.NewInt32(int32(m.U32(addr)))
		case types.Date:
			out[fi] = types.NewDate(int32(m.U32(addr)))
		case types.Int64:
			out[fi] = types.NewInt64(int64(m.U64(addr)))
		case types.Decimal:
			out[fi] = types.NewDecimal(int64(m.U64(addr)), rf.Type.Prec, rf.Type.Scale)
		case types.Float64:
			out[fi] = types.NewFloat64(rtF64(m.U64(addr)))
		case types.Char:
			b := m.ReadBytes(addr, uint32(rf.Type.Length))
			end := len(b)
			for end > 0 && b[end-1] == ' ' {
				end--
			}
			out[fi] = types.NewChar(string(b[:end]), rf.Type.Length)
		}
	}
	return out
}

func rtF64(bits uint64) float64 { return rt.F64(bits) }
