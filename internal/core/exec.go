package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"wasmdb/internal/engine"
	"wasmdb/internal/engine/rt"
	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/obs"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// Process-wide executor metrics, resolved once so recording is atomic-only.
var (
	mFuelConsumed  = obs.Default.Counter(obs.MetricFuelConsumed)
	mPeakHeapPages = obs.Default.Gauge(obs.MetricPeakHeapPages)
	mMorselLatency = obs.Default.Histogram(obs.MetricMorselLatency)
)

// ExecOptions configures query execution.
type ExecOptions struct {
	// Tier selects the engine configuration (default TierAdaptive).
	Tier engine.Tier
	// MorselRows is the morsel size (default DefaultMorselRows).
	MorselRows int
	// ChunkRows enables chunked rewiring (§6.1) for table-scan pipelines:
	// instead of mapping whole columns, the executor maps a window of
	// ChunkRows rows and re-maps the window to the next chunk between
	// morsel batches — how tables beyond the 32-bit address budget are
	// processed. Must be a multiple of 65536 so every column's chunk stays
	// page-aligned; 0 disables chunking.
	ChunkRows int
	// WaitOptimized blocks until background optimization finished before
	// the first morsel runs — used by benchmarks that want to measure pure
	// TurboFan-tier execution under the adaptive configuration.
	WaitOptimized bool
	// Ctx cancels the query: between morsels via a direct check, and inside
	// a running morsel via the instance's interrupt flag (metering is
	// enabled automatically when Ctx is cancellable). nil means Background.
	Ctx context.Context
	// Fuel bounds execution to that many units (function entries plus taken
	// loop back-edges); exhaustion fails the query with
	// engine.ErrFuelExhausted. 0 means unlimited.
	Fuel int64
	// MemoryBudgetPages caps the query's linear memory (in 64 KiB pages);
	// growth beyond it fails the query with engine.ErrMemoryLimit. 0 means
	// no budget.
	MemoryBudgetPages uint32
	// Trace, when non-nil, receives the query's spans, point events, and
	// counters (compile phases, rewiring, per-pipeline execution, tier-up
	// timeline). nil disables span recording on the hot path.
	Trace *obs.Trace
	// DrainBackground waits for background optimization to finish after the
	// last morsel — adaptive behavior during the query is unchanged, but the
	// trace's tier-up timeline and Turbofan timing are complete when Execute
	// returns.
	DrainBackground bool
	// Parallelism sets the morsel worker-pool size (<= 1 runs serially).
	// Each worker owns a private instance and linear memory created from the
	// shared compiled module; pipelines whose state the host cannot merge
	// fall back to serial execution (see ExecStats.SerialFallback).
	Parallelism int
	// Scheduler, when non-nil, is the shared global worker-slot pool that
	// multiplexes morsel workers across concurrent queries: Parallelism
	// becomes a request, the scheduler's lease decides the actual pool size,
	// and a denied lease forces serial execution with the
	// "worker-slots-exhausted" fallback recorded. Revoked slots are given
	// back at morsel boundaries (see Scheduler). nil keeps per-query
	// parallelism ungoverned, as before.
	Scheduler *Scheduler
	// Precompiled, when non-nil, is an already-compiled engine module for
	// cq.Bin (a plan-cache hit): Execute skips engine compilation entirely —
	// no decode/validate/liftoff spans are recorded and the returned stats
	// report zero compile time — and instantiates this module instead. The
	// module may already be serving turbofan code from earlier executions.
	Precompiled *engine.Module
	// Params is the execution-time parameter vector, indexed by parameter
	// ordinal (explicit placeholders first, then literals hoisted by
	// sema.Parameterize). Its values are written into the parameter region
	// of every worker memory before q_init. Required when cq.ParamSlots is
	// non-empty.
	Params []types.Value
}

// ExecStats reports where time went, phase by phase (the paper's Fig. 10
// breakdown). The fields are flat — one struct instead of nested
// engine.CompileStats — and agree with the spans and counters recorded on
// the query trace, which is the single source of truth the public
// wasmdb.Stats is also derived from.
type ExecStats struct {
	// Engine compilation phases.
	Decode   time.Duration
	Validate time.Duration
	Liftoff  time.Duration
	// Turbofan is the optimizing-tier compile time. Under TierAdaptive it is
	// measured on the background goroutine and is valid once optimization
	// finished (WaitOptimized or DrainBackground).
	Turbofan time.Duration
	// Rewire covers mapping the referenced columns into linear memory.
	Rewire time.Duration
	// Init covers instantiation, column rewiring, and q_init.
	Init time.Duration
	// Run covers pipeline execution.
	Run time.Duration
	// MorselsLiftoff and MorselsTurbofan count exported calls served by
	// each tier — the observable adaptive switch.
	MorselsLiftoff  uint64
	MorselsTurbofan uint64
	// TurbofanFailed counts functions whose optimizing compile failed; they
	// keep serving baseline code.
	TurbofanFailed int
	// ModuleBytes is the size of the generated Wasm binary.
	ModuleBytes int
	// FuelUsed is the fuel consumed against a user-supplied ExecOptions.Fuel
	// budget (0 when no budget was set). A cancellable context arms implicit
	// metering so interruption can reach inside a morsel, but that synthetic
	// budget is bookkeeping, not a user contract, and is never reported here.
	FuelUsed int64
	// PeakMemBytes is the high-water linear-memory size (pages never
	// shrink, so the final size is the peak). Under parallel execution it is
	// the sum across all worker memories — the query's total footprint.
	PeakMemBytes uint64
	// Workers is the size of the morsel worker pool the query ran with (1
	// when serial).
	Workers int
	// PipelinesParallel and PipelinesSerial count morsel-driven pipelines by
	// how they were executed (run-once pipelines, which dispatch a single
	// call, are counted in neither). PipelinesSerial > 0 alone does not mean
	// the query fell back: under parallel grouped aggregation or sort the
	// post-barrier output pipelines legitimately run serially on the primary
	// worker over merged state. A fallback is indicated by SerialFallback
	// being non-empty.
	PipelinesParallel int
	PipelinesSerial   int
	// SerialFallback names why a query that requested parallelism ran its
	// pipelines serially ("" when parallel execution applied or was never
	// requested): chunked-rewiring, fuel-budget, limit, float-sum-order,
	// float-group-key, or unmergeable-pipeline-state.
	SerialFallback string
	// GroupsMerged counts the distinct groups folded at the parallel
	// group-by barrier (0 when no group merge ran).
	GroupsMerged int
	// JoinPartitionsMerged counts the secondary-worker build partitions
	// drained at parallel join barriers, summed across the query's joins (0
	// when no join merge ran).
	JoinPartitionsMerged int
}

// ResultSet holds decoded query results.
type ResultSet struct {
	Names []string
	Types []types.Type
	Rows  [][]types.Value
}

// worker is one execution lane of the morsel pool: a private instance and
// linear memory created from the shared compiled module, plus the rows its
// result_flush calls have decoded so far. Serial queries use a single worker.
type worker struct {
	id   int
	mem  *wmem.Memory
	inst *engine.Instance
	// rows are this worker's decoded results; the merge pass concatenates
	// them in worker order.
	rows [][]types.Value
	// limitHit is set by the drain once the query's LIMIT is satisfied; the
	// morsel loop treats it like the guest's stop signal.
	limitHit bool
}

// Execute runs a compiled query against its bound tables on the given
// engine: it rewires the referenced columns into a fresh linear memory
// (§6.1), instantiates the module, and drives every pipeline morsel-wise so
// the engine's background tier-up can swap code between morsels.
func Execute(cq *CompiledQuery, q *sema.Query, eng *engine.Engine, opt ExecOptions) (*ResultSet, *ExecStats, error) {
	stats := &ExecStats{ModuleBytes: len(cq.Bin)}
	if opt.MorselRows <= 0 {
		opt.MorselRows = DefaultMorselRows
	}
	// tr drives all instrumentation below. It stays exactly opt.Trace —
	// nil when the caller asked for no tracing — so an untraced query pays
	// one pointer test per recording site and nothing more.
	tr := opt.Trace
	// Context-free instrumentation (faultpoint) finds the trace through the
	// process-wide active slot for the duration of the query.
	if tr != nil {
		prev := obs.SwapActive(tr)
		defer obs.SwapActive(prev)
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// wrapErr maps the interrupt trap raised by the cancellation watchdog
	// back to the context's error, so callers see DeadlineExceeded/Canceled
	// rather than an engine-internal trap.
	wrapErr := func(err error) error {
		if errors.Is(err, rt.ErrInterrupted) && ctx.Err() != nil {
			return fmt.Errorf("core: query canceled: %w", ctx.Err())
		}
		return err
	}
	canceled := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: query canceled: %w", err)
		}
		return nil
	}

	// Effective LIMIT: a parameterized limit lives in the parameter vector
	// (cq.Limit is the value the module was first compiled with and may be
	// stale on a plan-cache hit).
	limit := cq.Limit
	if cq.LimitSlot >= 0 {
		if cq.LimitSlot >= len(opt.Params) {
			return nil, nil, fmt.Errorf("core: missing value for limit parameter ?%d", cq.LimitSlot)
		}
		limit = opt.Params[cq.LimitSlot].I
		if limit < 0 {
			return nil, nil, fmt.Errorf("core: negative LIMIT %d", limit)
		}
	}

	mod := opt.Precompiled
	if mod == nil {
		var err error
		mod, err = eng.CompileTraced(cq.Bin, tr)
		if err != nil {
			return nil, nil, fmt.Errorf("core: engine compile: %w", err)
		}
	}

	if opt.ChunkRows != 0 && opt.ChunkRows%wmem.PageSize != 0 {
		return nil, nil, fmt.Errorf("core: ChunkRows must be a multiple of %d", wmem.PageSize)
	}
	// Tables scanned by a pipeline are chunk-rewired when chunking is on;
	// all other referenced tables (build sides) are mapped whole.
	chunked := map[int]bool{}
	if opt.ChunkRows > 0 {
		for _, p := range cq.Pipelines {
			if p.Kind == PipeScanTable {
				chunked[p.TableIdx] = true
			}
		}
	}

	// Choose the execution strategy: a worker pool when every stateful
	// pipeline can be merged afterwards, serial otherwise — with the
	// fallback recorded, never silent.
	workers := opt.Parallelism
	if workers <= 1 {
		workers = 1
	}
	mode, fallback := classifyParallel(cq, opt, workers, limit)
	if mode == parNone {
		workers = 1
	}
	// Under a shared scheduler the classified worker count is a request:
	// the lease grants what the pool's fair share allows right now. A
	// denied lease (no extra slots, or not even one after rebalancing) is
	// the forced serial fallback — recorded like every other fallback,
	// never silent.
	var lease *Lease
	if workers > 1 && opt.Scheduler != nil {
		lease = opt.Scheduler.Acquire(workers)
		if lease == nil {
			mode, workers = parNone, 1
			fallback = fallbackSlots
		} else {
			workers = 1 + lease.Extras()
			defer lease.Release()
		}
	}
	stats.Workers = workers
	stats.SerialFallback = fallback
	if fallback != "" {
		tr.Event(obs.EvSerialFallback, obs.S("reason", fallback))
		obs.Default.CounterWith(obs.MetricSerialFallbacks, obs.Label{Key: "reason", Val: fallback}).Add(1)
	}
	if workers > 1 {
		tr.Event(obs.EvParallel, obs.I("workers", int64(workers)))
	}

	// Fuel metering. A cancellable context needs metering too: the fuel
	// checks double as interruption points, which is the only way to stop
	// generated code in the middle of a morsel. That implicit budget is
	// distinct from a user Fuel budget: only the latter is reported in
	// FuelUsed and fuel trace events (the stat's documented contract).
	userFuel := opt.Fuel > 0
	meterFuel := opt.Fuel
	if !userFuel && ctx.Done() != nil {
		meterFuel = math.MaxInt64
	}

	res := &ResultSet{}
	for _, rf := range cq.ResultFields {
		res.Names = append(res.Names, rf.Name)
		res.Types = append(res.Types, rf.Type)
	}

	// drain decodes count rows from a worker's result buffer into its private
	// row slice. The decode stops as soon as the query's LIMIT is satisfied —
	// rows beyond it would be discarded anyway — and trips the worker's
	// limitHit flag so the morsel loop short-circuits via the stop path.
	drain := func(w *worker, m *wmem.Memory, count uint32) {
		for i := uint32(0); i < count; i++ {
			if limit >= 0 && int64(len(w.rows)) >= limit {
				w.limitHit = true
				return
			}
			w.rows = append(w.rows, decodeRow(m, cq, i))
		}
	}

	// Build the worker pool: every worker owns a private memory with the
	// same host columns rewired in, and a private instance of the shared
	// module (background tier-up publishes optimized code to all of them at
	// once). Worker 0 is the primary: serial pipelines and run-once output
	// pipelines execute on it.
	t0 := time.Now()
	spRewire := tr.Begin(obs.SpanRewire)
	ws := make([]*worker, workers)
	mapped := 0
	for wi := range ws {
		w := &worker{id: wi}
		w.mem = wmem.New(cq.MinPages, 65536)
		w.mem.SetTracer(tr)
		if opt.MemoryBudgetPages > 0 {
			// The budget bounds each worker's heap: it exists to stop
			// runaway per-query allocations, and parallel-eligible pipelines
			// allocate almost nothing beyond the fixed layout.
			w.mem.SetBudget(opt.MemoryBudgetPages)
		}
		for _, cm := range cq.Columns {
			if chunked[cm.TableIdx] {
				continue // mapped chunk-by-chunk while scanning
			}
			col := q.Tables[cm.TableIdx].Table.Columns[cm.ColIdx]
			if col.MappedBytes() == 0 {
				continue
			}
			if err := w.mem.Map(cm.Base, col.Data()); err != nil {
				return nil, nil, fmt.Errorf("core: rewiring column %s.%s: %w",
					q.Tables[cm.TableIdx].Table.Name, col.Name, err)
			}
			mapped++
		}
		if len(cq.ParamSlots) > 0 {
			// The execution's parameter values become plain memory contents
			// before q_init; the shared module never changes.
			if err := writeParams(w.mem, cq.ParamSlots, opt.Params); err != nil {
				return nil, nil, err
			}
		}
		ws[wi] = w
	}
	spRewire.End(obs.I("columns", int64(mapped)), obs.I("workers", int64(workers)))
	stats.Rewire = time.Since(t0)

	primary := ws[0]

	// mapChunk rewires rows [start, start+n) of every referenced column of
	// table ti into the column's window (serial execution only — chunking
	// falls back, see classifyParallel).
	mapChunk := func(ti, start, n int) error {
		if err := faultpoint.Hit("core-rewire"); err != nil {
			return fmt.Errorf("core: chunk rewiring: %w", err)
		}
		for _, cm := range cq.Columns {
			if cm.TableIdx != ti {
				continue
			}
			col := q.Tables[ti].Table.Columns[cm.ColIdx]
			sz := col.Type.Size()
			lo := start * sz
			hi := (start + n) * sz
			hi = (hi + wmem.PageSize - 1) &^ (wmem.PageSize - 1)
			data := col.Data()
			if hi > len(data) {
				hi = len(data)
			}
			if lo >= hi {
				continue
			}
			if err := primary.mem.Map(cm.Base, data[lo:hi]); err != nil {
				return fmt.Errorf("core: chunk rewiring %s.%s: %w", q.Tables[ti].Table.Name, col.Name, err)
			}
		}
		return nil
	}

	spInst := tr.Begin(obs.SpanInstantiate)
	for _, w := range ws {
		w := w
		imports := engine.Imports{
			Memory: w.mem,
			Funcs: map[string]*rt.HostFunc{
				"env.result_flush": {
					Type: wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}},
					Fn: func(env *rt.Env, args, out []uint64) {
						drain(w, env.Mem, uint32(args[0]))
						out[0] = 0
					},
				},
			},
		}
		inst, err := mod.InstantiateWithTrace(imports, tr)
		if err != nil {
			return nil, nil, fmt.Errorf("core: instantiate: %w", err)
		}
		w.inst = inst
		if meterFuel > 0 {
			inst.SetFuel(meterFuel)
		}
	}

	if ctx.Done() != nil {
		// Watchdog: flips every instance's interrupt flag when the context
		// fires, trapping each in-flight call at its next fuel check.
		watchdogDone := make(chan struct{})
		defer close(watchdogDone)
		go func() {
			select {
			case <-ctx.Done():
				for _, w := range ws {
					w.inst.Interrupt()
				}
			case <-watchdogDone:
			}
		}()
	}

	for _, w := range ws {
		if _, err := w.inst.Call("q_init"); err != nil {
			return nil, nil, fmt.Errorf("core: q_init: %w", wrapErr(err))
		}
	}
	spInst.End(obs.I("workers", int64(workers)))
	stats.Init = time.Since(t0)

	if opt.WaitOptimized {
		// A failed background compile is not a query error: affected
		// functions keep running on baseline code, and the failure is
		// visible in CompileStats.TurbofanFailed.
		_ = mod.WaitOptimized()
	}

	// callMorsel dispatches one morsel on one worker: faultpoint check,
	// morsel count (the tier-up timeline is stamped against it), latency
	// histogram, and — only when the trace asks for Detail — a per-morsel
	// span carrying the worker id.
	callMorsel := func(w *worker, export string, begin, end int) (bool, error) {
		if ferr := faultpoint.Hit("core-morsel"); ferr != nil {
			return false, fmt.Errorf("core: %s[%d,%d): %w", export, begin, end, ferr)
		}
		tr.AddMorsel()
		tm := time.Now()
		r, err := w.inst.Call(export, uint64(uint32(begin)), uint64(uint32(end)))
		d := time.Since(tm)
		mMorselLatency.Observe(d.Nanoseconds())
		if tr != nil && tr.Detail {
			tr.AddSpan(obs.SpanMorsel+export, tm, d,
				obs.I("begin", int64(begin)), obs.I("end", int64(end)),
				obs.I("worker", int64(w.id)))
		}
		if err != nil {
			return false, fmt.Errorf("core: %s[%d,%d): %w", export, begin, end, wrapErr(err))
		}
		return r[0] != 0, nil
	}

	// runParallel drives one pipeline with the whole pool: morsels come off
	// one atomic counter (work stealing by construction), each worker runs
	// them on its private instance, and the first error or stop request
	// halts everyone.
	runParallel := func(export string, total int) error {
		var next atomic.Int64
		var stopFlag atomic.Bool
		var mu sync.Mutex
		var firstErr error
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			stopFlag.Store(true)
		}
		var wg sync.WaitGroup
		for _, w := range ws {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for !stopFlag.Load() {
					if lease.ShouldYield(w.id) {
						// The scheduler revoked this worker's slot for a
						// newer query's fair share: retire at the morsel
						// boundary. Remaining workers keep claiming morsels,
						// and this worker's partial state is still merged at
						// the barrier, so results are unchanged.
						return
					}
					if err := canceled(); err != nil {
						fail(err)
						return
					}
					begin := int(next.Add(int64(opt.MorselRows))) - opt.MorselRows
					if begin >= total {
						return
					}
					end := begin + opt.MorselRows
					if end > total {
						end = total
					}
					stop, err := callMorsel(w, export, begin, end)
					if err != nil {
						fail(err)
						return
					}
					if stop {
						stopFlag.Store(true)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}

	// mergeGroups drains every secondary worker's partial group table, folds
	// the records per key host-side, and feeds the merged records into the
	// primary worker's table — the parGroup pipeline barrier. The fold into
	// the primary is driven morsel-wise through callMorsel so tracing and
	// fault injection cover the merge like any pipeline; an error leaves the
	// query failed, never partially merged.
	mergeGroups := func() error {
		gm := cq.GroupMerge
		sp := tr.Begin(obs.SpanMerge)
		runs := make([][]byte, 0, len(ws)-1)
		records := 0
		for _, w := range ws[1:] {
			if err := canceled(); err != nil {
				return err
			}
			r, err := w.inst.Call(gm.DumpExport)
			if err != nil {
				return fmt.Errorf("core: %s: %w", gm.DumpExport, wrapErr(err))
			}
			n := int(uint32(w.inst.Global(int(gm.CountGlobal))))
			runs = append(runs, w.mem.ReadBytes(uint32(r[0]), uint32(n)*gm.Stride))
			records += n
		}
		merged, n := foldGroupRecords(gm, runs)
		if n > 0 {
			r, err := primary.inst.Call(gm.RecvExport, uint64(uint32(n)))
			if err != nil {
				return fmt.Errorf("core: %s: %w", gm.RecvExport, wrapErr(err))
			}
			primary.mem.WriteBytes(uint32(r[0]), merged)
			for begin := 0; begin < n; begin += opt.MorselRows {
				if err := canceled(); err != nil {
					return err
				}
				end := begin + opt.MorselRows
				if end > n {
					end = n
				}
				if _, err := callMorsel(primary, gm.MergeExport, begin, end); err != nil {
					return err
				}
			}
		}
		stats.GroupsMerged = n
		tr.Event(obs.EvGroupMerge, obs.I("groups", int64(n)),
			obs.I("records", int64(records)), obs.I("workers", int64(workers)))
		sp.End(obs.I("groups", int64(n)))
		return nil
	}

	// mergeSortRuns has every worker quicksort its private tuple run (the
	// given run-once export) concurrently, k-way merges the sorted runs
	// host-side with the emitLess-mirroring comparator, and installs the
	// merged array on the primary — the parSort pipeline barrier.
	mergeSortRuns := func(export string) error {
		sm := cq.SortMerge
		sp := tr.Begin(obs.SpanMerge)
		var wg sync.WaitGroup
		errs := make([]error, len(ws))
		for i, w := range ws {
			wg.Add(1)
			go func(i int, w *worker) {
				defer wg.Done()
				if _, err := w.inst.Call(export, 0, 0); err != nil {
					errs[i] = fmt.Errorf("core: %s: %w", export, wrapErr(err))
				}
			}(i, w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		total := 0
		runs := make([][]byte, 0, len(ws))
		for _, w := range ws {
			base := uint32(w.inst.Global(int(sm.BaseGlobal)))
			n := uint32(w.inst.Global(int(sm.CountGlobal)))
			runs = append(runs, w.mem.ReadBytes(base, n*sm.Stride))
			total += int(n)
		}
		merged := mergeSortedRuns(sm, runs)
		r, err := primary.inst.Call(sm.RecvExport, uint64(uint32(total)))
		if err != nil {
			return fmt.Errorf("core: %s: %w", sm.RecvExport, wrapErr(err))
		}
		primary.mem.WriteBytes(uint32(r[0]), merged)
		tr.Event(obs.EvSortMerge, obs.I("tuples", int64(total)),
			obs.I("workers", int64(workers)))
		sp.End(obs.I("tuples", int64(total)))
		return nil
	}

	// mergeJoin drains every secondary worker's private build partition,
	// appends the records into the primary worker's table (morsel-wise
	// through callMorsel, so tracing and fault injection cover the merge),
	// and replicates the primary's completed table into every secondary so
	// the parallel probe sees the full build side — the join pipeline
	// barrier. Join inserts are append-style (duplicate keys coexist), so
	// the host concatenates the dumps without folding. An error leaves the
	// query failed, never partially merged.
	mergeJoin := func(jm *JoinMerge) error {
		sp := tr.Begin(obs.SpanMerge)
		var recs []byte
		records := 0
		for _, w := range ws[1:] {
			if err := canceled(); err != nil {
				return err
			}
			r, err := w.inst.Call(jm.DumpExport)
			if err != nil {
				return fmt.Errorf("core: %s: %w", jm.DumpExport, wrapErr(err))
			}
			n := int(uint32(w.inst.Global(int(jm.CountGlobal))))
			recs = append(recs, w.mem.ReadBytes(uint32(r[0]), uint32(n)*jm.Stride)...)
			records += n
		}
		if records > 0 {
			// Grow the primary's table to its final size up front: the merge
			// loop then only claims slots, never rehashes mid-insertion.
			needed := records + int(uint32(primary.inst.Global(int(jm.CountGlobal))))
			if _, err := primary.inst.Call(jm.PresizeExport, uint64(uint32(needed))); err != nil {
				return fmt.Errorf("core: %s: %w", jm.PresizeExport, wrapErr(err))
			}
			r, err := primary.inst.Call(jm.RecvExport, uint64(uint32(records)))
			if err != nil {
				return fmt.Errorf("core: %s: %w", jm.RecvExport, wrapErr(err))
			}
			primary.mem.WriteBytes(uint32(r[0]), recs)
			for begin := 0; begin < records; begin += opt.MorselRows {
				if err := canceled(); err != nil {
					return err
				}
				end := begin + opt.MorselRows
				if end > records {
					end = records
				}
				if _, err := callMorsel(primary, jm.MergeExport, begin, end); err != nil {
					return err
				}
			}
		}
		// Replicate the completed table to every secondary — their partial
		// partitions must be replaced even when no records moved the other
		// way, or the parallel probe would miss the primary's entries. A
		// verbatim image is position-correct because slot indexes depend
		// only on hash and mask, which travel with it.
		cap := uint32(primary.inst.Global(int(jm.MaskGlobal))) + 1
		count := uint64(uint32(primary.inst.Global(int(jm.CountGlobal))))
		img := primary.mem.ReadBytes(uint32(primary.inst.Global(int(jm.BaseGlobal))), cap*jm.Stride)
		for _, w := range ws[1:] {
			if err := canceled(); err != nil {
				return err
			}
			r, err := w.inst.Call(jm.InstallExport, uint64(cap), count)
			if err != nil {
				return fmt.Errorf("core: %s: %w", jm.InstallExport, wrapErr(err))
			}
			w.mem.WriteBytes(uint32(r[0]), img)
		}
		stats.JoinPartitionsMerged += len(ws) - 1
		tr.Event(obs.EvJoinMerge, obs.I("records", int64(records)),
			obs.I("partitions", int64(len(ws)-1)), obs.I("workers", int64(workers)))
		sp.End(obs.I("records", int64(records)))
		return nil
	}

	// The last table scan is the probe pipeline the terminal merge barriers
	// on; earlier scans are join build pipelines with their own barriers.
	lastScan := -1
	for i, p := range cq.Pipelines {
		if p.Kind == PipeScanTable {
			lastScan = i
		}
	}

	t1 := time.Now()
	spRun := tr.Begin(obs.SpanExecute)
	aggMerged, groupMerged, sortMerged := false, false, false
	for pi, p := range cq.Pipelines {
		spPipe := tr.Begin(obs.SpanPipeline + p.Export)
		var total int
		switch p.Kind {
		case PipeScanTable:
			total = q.Tables[p.TableIdx].Table.Rows()
		case PipeScanSlots:
			total = int(uint32(primary.inst.Global(int(p.CountGlobal)))) + 1
		case PipeScanArray:
			total = int(uint32(primary.inst.Global(int(p.CountGlobal))))
		case PipeScanBuckets:
			ctrl := uint32(primary.inst.Global(int(p.CountGlobal)))
			total = int(primary.mem.U32(ctrl+4)) + 1
		case PipeRunOnce:
			// A canceled context must be observed between consecutive
			// run-once pipelines too, not only in morsel loops.
			if err := canceled(); err != nil {
				return nil, nil, err
			}
			if mode == parAgg && !aggMerged {
				// Pipeline barrier: fold every worker's partial aggregation
				// state into the primary before its output pipeline runs.
				mergeAggGlobals(cq, ws)
				aggMerged = true
			}
			if mode == parSort && !sortMerged {
				// Sort barrier: this run-once pipeline is the quicksort call.
				// Run it on every worker concurrently, merge the sorted runs
				// into the primary, and skip the primary's (already spent)
				// serial invocation.
				sortMerged = true
				if err := mergeSortRuns(p.Export); err != nil {
					return nil, nil, err
				}
				spPipe.End()
				continue
			}
			if _, err := primary.inst.Call(p.Export, 0, 0); err != nil {
				return nil, nil, fmt.Errorf("core: %s: %w", p.Export, wrapErr(err))
			}
			spPipe.End()
			continue
		}
		if workers > 1 && p.Kind == PipeScanTable {
			// Parallel morsel dispatch (classifyParallel guarantees the
			// pipeline's state is mergeable afterwards).
			if err := runParallel(p.Export, total); err != nil {
				return nil, nil, err
			}
			stats.PipelinesParallel++
			// Join barrier: if this scan was a build pipeline, merge every
			// worker's partition and replicate the completed table before
			// anything probes it. Fires in every parallel mode — downstream
			// group/sort/agg merges compose after the probe.
			for _, jm := range cq.JoinMerges {
				if jm.BuildPipeline == pi {
					if err := mergeJoin(jm); err != nil {
						return nil, nil, err
					}
				}
			}
			if mode == parGroup && !groupMerged && pi == lastScan {
				// Group barrier: the parallel scan just filled every worker's
				// private group table; merge them into the primary before any
				// downstream pipeline reads the groups.
				groupMerged = true
				if err := mergeGroups(); err != nil {
					return nil, nil, err
				}
			}
			spPipe.End(obs.I("rows", int64(total)), obs.I("workers", int64(workers)))
			continue
		}
		stats.PipelinesSerial++
		stop := false
		if p.Kind == PipeScanTable && chunked[p.TableIdx] {
			// Chunked rewiring: remap the window, then drive morsels with
			// window-relative row ranges.
			for cs := 0; cs < total && !stop; cs += opt.ChunkRows {
				ce := cs + opt.ChunkRows
				if ce > total {
					ce = total
				}
				if err := mapChunk(p.TableIdx, cs, ce-cs); err != nil {
					return nil, nil, err
				}
				for begin := 0; begin < ce-cs && !stop; begin += opt.MorselRows {
					if err := canceled(); err != nil {
						return nil, nil, err
					}
					end := begin + opt.MorselRows
					if end > ce-cs {
						end = ce - cs
					}
					var err error
					if stop, err = callMorsel(primary, p.Export, begin, end); err != nil {
						return nil, nil, err
					}
					stop = stop || primary.limitHit
				}
			}
			spPipe.End(obs.I("rows", int64(total)))
			if userFuel {
				tr.Event(obs.EvFuel, obs.I("remaining", primary.inst.FuelLeft()))
			}
			continue
		}
		for begin := 0; begin < total && !stop; begin += opt.MorselRows {
			if err := canceled(); err != nil {
				return nil, nil, err
			}
			end := begin + opt.MorselRows
			if end > total {
				end = total
			}
			var err error
			if stop, err = callMorsel(primary, p.Export, begin, end); err != nil {
				return nil, nil, err
			}
			// Host-side LIMIT guard: once the drain has cq.Limit rows, the
			// remaining morsels cannot contribute — short-circuit them.
			stop = stop || primary.limitHit
		}
		spPipe.End(obs.I("rows", int64(total)))
		// Fuel checkpoint at every pipeline boundary on metered queries —
		// the audit trail of where the budget went.
		if userFuel {
			tr.Event(obs.EvFuel, obs.I("remaining", primary.inst.FuelLeft()))
		}
	}
	// Drain the rows still in each worker's buffer; the merge for parallel
	// scans is this concatenation, in worker order.
	for _, w := range ws {
		drain(w, w.mem, uint32(w.inst.Global(int(cq.CursorGlobal))))
	}
	for _, w := range ws {
		res.Rows = append(res.Rows, w.rows...)
	}
	spRun.End()
	stats.Run = time.Since(t1)

	if opt.DrainBackground {
		// Complete the tier-up timeline (and Turbofan timing) without having
		// perturbed adaptive behavior during the query. A failed background
		// compile is not a query error — see WaitOptimized above.
		_ = mod.WaitOptimized()
	}

	// Fold the compile-side stats and runtime counters into the flat struct,
	// and mirror them onto the trace and the process-wide metrics.
	es := mod.Stats()
	if opt.Precompiled == nil {
		// On a plan-cache hit the module's compile phases belong to the
		// execution that populated the cache; this one paid nothing and
		// reports nothing.
		stats.Decode, stats.Validate = es.Decode, es.Validate
		stats.Liftoff, stats.Turbofan = es.Liftoff, es.Turbofan
	}
	stats.TurbofanFailed = es.TurbofanFailed
	for _, w := range ws {
		lo, tf := w.inst.TierCalls()
		stats.MorselsLiftoff += lo
		stats.MorselsTurbofan += tf
		stats.PeakMemBytes += uint64(w.mem.Pages()) * wmem.PageSize
		mPeakHeapPages.SetMax(int64(w.mem.Pages()))
		if workers > 1 {
			tr.Set(obs.WorkerCtr(w.id, obs.CtrMorselsLiftoff), int64(lo))
			tr.Set(obs.WorkerCtr(w.id, obs.CtrMorselsTurbofan), int64(tf))
		}
	}
	if userFuel {
		if left := primary.inst.FuelLeft(); left >= 0 {
			stats.FuelUsed = opt.Fuel - left
		}
		mFuelConsumed.Add(stats.FuelUsed)
	}
	if tr != nil {
		tr.Set(obs.CtrMorselsLiftoff, int64(stats.MorselsLiftoff))
		tr.Set(obs.CtrMorselsTurbofan, int64(stats.MorselsTurbofan))
		tr.Set(obs.CtrTurbofanFailed, int64(stats.TurbofanFailed))
		tr.Set(obs.CtrModuleBytes, int64(stats.ModuleBytes))
		tr.Set(obs.CtrFuelUsed, stats.FuelUsed)
		tr.Set(obs.CtrPeakMemBytes, int64(stats.PeakMemBytes))
		tr.Set(obs.CtrResultRows, int64(len(res.Rows)))
		tr.Set(obs.CtrWorkers, int64(stats.Workers))
		tr.Set(obs.CtrPipelinesParallel, int64(stats.PipelinesParallel))
		tr.Set(obs.CtrPipelinesSerial, int64(stats.PipelinesSerial))
		tr.Set(obs.CtrGroupsMerged, int64(stats.GroupsMerged))
		tr.Set(obs.CtrJoinPartitionsMerged, int64(stats.JoinPartitionsMerged))
	}

	if limit >= 0 && int64(len(res.Rows)) > limit {
		res.Rows = res.Rows[:limit]
	}
	// SQL semantics: a global aggregation over zero input rows still yields
	// one row (COUNT = 0, SUM/MIN/MAX = 0 by this system's convention) —
	// unless a HAVING clause exists, in which case the generated code already
	// evaluated it over the zero group and its verdict (zero rows) stands.
	if len(res.Rows) == 0 && q.Grouped && len(q.GroupBy) == 0 && len(q.Having) == 0 && (limit != 0) {
		res.Rows = append(res.Rows, zeroAggregateRow(q, opt.Params))
	}
	return res, stats, nil
}

// zeroAggregateRow fabricates the zero-group output row. params resolves
// hoisted literals so the parameterized query yields the same row the
// constant-folded one would.
func zeroAggregateRow(q *sema.Query, params []types.Value) []types.Value {
	out := make([]types.Value, len(q.Select))
	for i, oc := range q.Select {
		out[i] = evalZero(oc.Expr, q, params)
	}
	return out
}

func evalZero(e sema.Expr, q *sema.Query, params []types.Value) types.Value {
	switch x := e.(type) {
	case *sema.Const:
		return x.V
	case *sema.Param:
		if x.Idx < len(params) {
			return params[x.Idx]
		}
	case *sema.AggRef:
		t := q.Aggs[x.Idx].T
		switch t.Kind {
		case types.Float64:
			return types.NewFloat64(0)
		case types.Decimal:
			return types.NewDecimal(0, t.Prec, t.Scale)
		case types.Int32:
			return types.NewInt32(0)
		case types.Date:
			return types.NewDate(0)
		default:
			return types.NewInt64(0)
		}
	case *sema.Binary:
		l := evalZero(x.L, q, params)
		if x.Op == sema.OpDiv {
			return types.NewFloat64(0) // 0/0 reported as 0
		}
		return l
	case *sema.Cast:
		v := evalZero(x.E, q, params)
		if x.To.Kind == types.Float64 {
			return types.NewFloat64(0)
		}
		return v
	}
	return types.Value{Type: e.Type()}
}

// decodeRow reads result row i from guest memory.
func decodeRow(m *wmem.Memory, cq *CompiledQuery, i uint32) []types.Value {
	base := cq.ResultBase + i*cq.ResultStride
	out := make([]types.Value, len(cq.ResultFields))
	for fi, rf := range cq.ResultFields {
		addr := base + rf.Offset
		switch rf.Type.Kind {
		case types.Bool:
			out[fi] = types.NewBool(m.U8(addr) != 0)
		case types.Int32:
			out[fi] = types.NewInt32(int32(m.U32(addr)))
		case types.Date:
			out[fi] = types.NewDate(int32(m.U32(addr)))
		case types.Int64:
			out[fi] = types.NewInt64(int64(m.U64(addr)))
		case types.Decimal:
			out[fi] = types.NewDecimal(int64(m.U64(addr)), rf.Type.Prec, rf.Type.Scale)
		case types.Float64:
			out[fi] = types.NewFloat64(rtF64(m.U64(addr)))
		case types.Char:
			b := m.ReadBytes(addr, uint32(rf.Type.Length))
			end := len(b)
			for end > 0 && b[end-1] == ' ' {
				end--
			}
			out[fi] = types.NewChar(string(b[:end]), rf.Type.Length)
		}
	}
	return out
}

func rtF64(bits uint64) float64 { return rt.F64(bits) }
