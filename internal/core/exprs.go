package core

import (
	"fmt"

	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// gen wraps a function builder with the compiler context and an error slot
// (emission helpers are void; the first error wins and aborts compilation).
type gen struct {
	c   *compiler
	f   *wasm.FuncBuilder
	err error
}

func (g *gen) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("core: "+format, args...)
	}
}

// loadColumn pushes column[row], given the column's rewired base address.
// For CHAR columns it pushes the address of the value.
func (g *gen) loadColumn(base uint32, t types.Type, row wasm.Local) {
	f := g.f
	switch t.Kind {
	case types.Bool:
		f.LocalGet(row)
		f.I32Load8U(base)
	case types.Int32, types.Date:
		f.LocalGet(row)
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.I32Load(base)
	case types.Int64, types.Decimal:
		f.LocalGet(row)
		f.I32Const(3)
		f.Op(wasm.OpI32Shl)
		f.I64Load(base)
	case types.Float64:
		f.LocalGet(row)
		f.I32Const(3)
		f.Op(wasm.OpI32Shl)
		f.F64Load(base)
	case types.Char:
		f.LocalGet(row)
		f.I32Const(int32(t.Length))
		f.I32Mul()
		f.I32Const(int32(base))
		f.I32Add()
	}
}

// internString places a string constant in the constant region and returns
// its guest address.
func (c *compiler) internString(s string) uint32 {
	if addr, ok := c.constStrings[s]; ok {
		return addr
	}
	addr := constBase + c.constCursor
	c.constData = append(c.constData, s...)
	c.constCursor += uint32(len(s))
	if c.constCursor > constSize && c.err == nil {
		// No error return path through the expression emitters; record the
		// failure for compile() to surface instead of panicking out of the
		// public API.
		c.err = fmt.Errorf("core: string constants exceed the %d-byte constant region", constSize)
	}
	c.constStrings[s] = addr
	return addr
}

// expr compiles a bound expression, leaving its value on the stack (an i32
// pointer for CHAR values).
func (g *gen) expr(e *env, ex sema.Expr) {
	if b, ok := e.lookup(ex); ok {
		b.push()
		return
	}
	f := g.f
	switch x := ex.(type) {
	case *sema.Const:
		switch x.V.Type.Kind {
		case types.Bool, types.Int32, types.Date:
			f.I32Const(int32(x.V.I))
		case types.Int64, types.Decimal:
			f.I64Const(x.V.I)
		case types.Float64:
			f.F64Const(x.V.F)
		case types.Char:
			f.I32Const(int32(g.c.internString(x.V.S)))
		default:
			g.fail("unsupported constant type %s", x.V.Type)
		}
	case *sema.Param:
		// Typed load from the parameter region: the slot address is a
		// compile-time constant, only its contents vary per execution — the
		// code is byte-identical for every literal the slot may hold.
		slot, ok := g.c.paramSlots[x.Idx]
		if !ok {
			g.fail("parameter ?%d has no slot", x.Idx)
			return
		}
		addr := uint32(paramBase) + slot.Off
		switch x.T.Kind {
		case types.Bool, types.Int32, types.Date:
			f.I32Const(0)
			f.I32Load(addr)
		case types.Int64, types.Decimal:
			f.I32Const(0)
			f.I64Load(addr)
		case types.Float64:
			f.I32Const(0)
			f.F64Load(addr)
		case types.Char:
			f.I32Const(int32(addr))
		default:
			g.fail("unsupported parameter type %s", x.T)
		}
	case *sema.ColRef:
		g.fail("unbound column reference %s", x)
	case *sema.AggRef:
		g.fail("unbound aggregate reference %s", x)
	case *sema.KeyRef:
		g.fail("unbound key reference %s", x)
	case *sema.Binary:
		g.binary(e, x)
	case *sema.Not:
		g.expr(e, x.E)
		f.I32Eqz()
	case *sema.Cast:
		g.cast(e, x)
	case *sema.Like:
		g.like(e, x)
	case *sema.Case:
		g.caseExpr(e, x)
	case *sema.ExtractYear:
		g.expr(e, x.E)
		f.Call(g.c.extractYearFunc().Index)
	default:
		g.fail("unsupported expression %T", ex)
	}
}

// conjunction evaluates conjuncts as one boolean expression combined with
// bitwise AND — a single conditional branch per selection, no
// short-circuiting (matching the paper's mutable).
func (g *gen) conjunction(e *env, conjuncts []sema.Expr) error {
	for i, cj := range conjuncts {
		g.expr(e, cj)
		if i > 0 {
			g.f.I32And()
		}
	}
	return g.err
}

func (g *gen) binary(e *env, x *sema.Binary) {
	f := g.f
	// Logical connectives: bitwise on 0/1 (no short-circuit).
	if x.Op == sema.OpAnd || x.Op == sema.OpOr {
		g.expr(e, x.L)
		g.expr(e, x.R)
		if x.Op == sema.OpAnd {
			f.I32And()
		} else {
			f.I32Or()
		}
		return
	}

	operandT := x.L.Type()
	if x.Op.IsComparison() {
		if operandT.Kind == types.Char {
			g.charCompare(e, x)
			return
		}
		g.expr(e, x.L)
		g.expr(e, x.R)
		f.Op(cmpOpcode(x.Op, operandT))
		return
	}

	// Arithmetic.
	g.expr(e, x.L)
	g.expr(e, x.R)
	switch x.T.Kind {
	case types.Int32:
		switch x.Op {
		case sema.OpAdd:
			f.I32Add()
		case sema.OpSub:
			f.I32Sub()
		case sema.OpMul:
			f.I32Mul()
		default:
			g.fail("unexpected i32 operator %s", x.Op)
		}
	case types.Int64, types.Decimal:
		switch x.Op {
		case sema.OpAdd:
			f.I64Add()
		case sema.OpSub:
			f.I64Sub()
		case sema.OpMul:
			f.I64Mul()
		case sema.OpMod:
			f.Op(wasm.OpI64RemS)
		default:
			g.fail("unexpected i64 operator %s", x.Op)
		}
	case types.Float64:
		switch x.Op {
		case sema.OpAdd:
			f.F64Add()
		case sema.OpSub:
			f.F64Sub()
		case sema.OpMul:
			f.F64Mul()
		case sema.OpDiv:
			f.F64Div()
		default:
			g.fail("unexpected f64 operator %s", x.Op)
		}
	default:
		g.fail("unsupported arithmetic result type %s", x.T)
	}
}

// cmpOpcode returns the wasm comparison opcode for op over operand type t.
func cmpOpcode(op sema.OpKind, t types.Type) wasm.Opcode {
	switch t.Kind {
	case types.Bool, types.Int32, types.Date:
		switch op {
		case sema.OpEq:
			return wasm.OpI32Eq
		case sema.OpNe:
			return wasm.OpI32Ne
		case sema.OpLt:
			return wasm.OpI32LtS
		case sema.OpLe:
			return wasm.OpI32LeS
		case sema.OpGt:
			return wasm.OpI32GtS
		case sema.OpGe:
			return wasm.OpI32GeS
		}
	case types.Int64, types.Decimal:
		switch op {
		case sema.OpEq:
			return wasm.OpI64Eq
		case sema.OpNe:
			return wasm.OpI64Ne
		case sema.OpLt:
			return wasm.OpI64LtS
		case sema.OpLe:
			return wasm.OpI64LeS
		case sema.OpGt:
			return wasm.OpI64GtS
		case sema.OpGe:
			return wasm.OpI64GeS
		}
	case types.Float64:
		switch op {
		case sema.OpEq:
			return wasm.OpF64Eq
		case sema.OpNe:
			return wasm.OpF64Ne
		case sema.OpLt:
			return wasm.OpF64Lt
		case sema.OpLe:
			return wasm.OpF64Le
		case sema.OpGt:
			return wasm.OpF64Gt
		case sema.OpGe:
			return wasm.OpF64Ge
		}
	}
	panic("core: no comparison opcode")
}

// charCompare compiles CHAR comparisons through a generated monomorphic
// string-compare function specialized to the two operand widths.
func (g *gen) charCompare(e *env, x *sema.Binary) {
	w1 := x.L.Type().Length
	w2 := x.R.Type().Length
	cmp := g.c.strcmpFunc(w1, w2)
	g.expr(e, x.L)
	g.expr(e, x.R)
	g.f.Call(cmp.Index)
	g.f.I32Const(0)
	switch x.Op {
	case sema.OpEq:
		g.f.I32Eq()
	case sema.OpNe:
		g.f.I32Ne()
	case sema.OpLt:
		g.f.Op(wasm.OpI32LtS)
	case sema.OpLe:
		g.f.Op(wasm.OpI32LeS)
	case sema.OpGt:
		g.f.Op(wasm.OpI32GtS)
	case sema.OpGe:
		g.f.Op(wasm.OpI32GeS)
	}
}

// strcmpFunc generates (once per width pair) a three-way comparison of two
// space-padded CHAR values, honoring SQL padded-comparison semantics.
func (c *compiler) strcmpFunc(w1, w2 int) *wasm.FuncBuilder {
	if f, ok := c.strcmps[[2]int{w1, w2}]; ok {
		return f
	}
	f := c.b.NewFunc(fmt.Sprintf("strcmp_%d_%d", w1, w2),
		wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	c.strcmps[[2]int{w1, w2}] = f
	n := w1
	if w2 > n {
		n = w2
	}
	i := f.AddLocal(wasm.I32)
	b1 := f.AddLocal(wasm.I32)
	b2 := f.AddLocal(wasm.I32)

	// loadByteSafe pushes p[i] for i < width and ' ' beyond (SQL padded
	// comparison), clamping the load index so no out-of-bounds access
	// happens on the shorter operand.
	loadByteSafe := func(param wasm.Local, width int) {
		if width >= n {
			f.LocalGet(param)
			f.LocalGet(i)
			f.I32Add()
			f.I32Load8U(0)
			return
		}
		// idx = min(i, width-1); b = p[idx]; b = i < width ? b : ' '
		f.LocalGet(param)
		f.LocalGet(i)
		f.I32Const(int32(width - 1))
		f.LocalGet(i)
		f.I32Const(int32(width))
		f.Op(wasm.OpI32LtU)
		f.Select()
		f.I32Add()
		f.I32Load8U(0)
		f.I32Const(32)
		f.LocalGet(i)
		f.I32Const(int32(width))
		f.Op(wasm.OpI32LtU)
		f.Select()
	}

	f.Block(wasm.BlockOf(wasm.I32))
	f.Loop(wasm.BlockOf(wasm.I32))
	// if i >= n: equal
	f.I32Const(0)
	f.LocalGet(i)
	f.I32Const(int32(n))
	f.I32GeU()
	f.BrIf(1)
	f.Drop()
	loadByteSafe(f.Param(0), w1)
	f.LocalSet(b1)
	loadByteSafe(f.Param(1), w2)
	f.LocalSet(b2)
	// if b1 != b2: return b1 - b2
	f.LocalGet(b1)
	f.LocalGet(b2)
	f.I32Sub()
	f.LocalGet(b1)
	f.LocalGet(b2)
	f.I32Ne()
	f.BrIf(1)
	f.Drop()
	// i++
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	return f
}

func (g *gen) cast(e *env, x *sema.Cast) {
	from := x.E.Type()
	to := x.To
	g.expr(e, x.E)
	f := g.f
	switch {
	case from.Kind == types.Int32 && to.Kind == types.Int64:
		f.Op(wasm.OpI64ExtendI32S)
	case from.Kind == types.Int32 && to.Kind == types.Float64:
		f.Op(wasm.OpF64ConvertI32S)
	case from.Kind == types.Int64 && to.Kind == types.Float64:
		f.Op(wasm.OpF64ConvertI64S)
	case from.Kind == types.Decimal && to.Kind == types.Float64:
		f.Op(wasm.OpF64ConvertI64S)
		f.F64Const(float64(types.Pow10(from.Scale)))
		f.F64Div()
	case from.Kind == types.Int32 && to.Kind == types.Decimal:
		f.Op(wasm.OpI64ExtendI32S)
		if to.Scale > 0 {
			f.I64Const(types.Pow10(to.Scale))
			f.I64Mul()
		}
	case from.Kind == types.Int64 && to.Kind == types.Decimal:
		if to.Scale > 0 {
			f.I64Const(types.Pow10(to.Scale))
			f.I64Mul()
		}
	case from.Kind == types.Decimal && to.Kind == types.Decimal:
		if d := to.Scale - from.Scale; d > 0 {
			f.I64Const(types.Pow10(d))
			f.I64Mul()
		} else if d < 0 {
			f.I64Const(types.Pow10(-d))
			f.Op(wasm.OpI64DivS)
		}
	case from.Kind == types.Date && to.Kind == types.Int32:
		// Day number is already an i32.
	case from.Kind == to.Kind:
		// Identity (e.g. precision-only decimal difference).
	default:
		g.fail("unsupported cast %s → %s", from, to)
	}
}

func (g *gen) caseExpr(e *env, x *sema.Case) {
	f := g.f
	rt := wasmType(x.T)
	var emit func(i int)
	emit = func(i int) {
		if i == len(x.Whens) {
			g.expr(e, x.Else)
			return
		}
		g.expr(e, x.Whens[i].Cond)
		f.If(wasm.BlockOf(rt))
		g.expr(e, x.Whens[i].Then)
		f.Else()
		emit(i + 1)
		f.End()
	}
	emit(0)
}

// extractYearFunc generates (once) the civil-date year extraction over day
// numbers, using i64 arithmetic and branch-free floored division.
func (c *compiler) extractYearFunc() *wasm.FuncBuilder {
	if c.fnExtractYear != nil {
		return c.fnExtractYear
	}
	f := c.b.NewFunc("extract_year", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	c.fnExtractYear = f
	// z = days + 719468
	z := f.AddLocal(wasm.I64)
	era := f.AddLocal(wasm.I64)
	doe := f.AddLocal(wasm.I64)
	yoe := f.AddLocal(wasm.I64)
	doy := f.AddLocal(wasm.I64)
	mp := f.AddLocal(wasm.I64)
	y := f.AddLocal(wasm.I64)

	f.LocalGet(f.Param(0))
	f.Op(wasm.OpI64ExtendI32S)
	f.I64Const(719468)
	f.I64Add()
	f.LocalSet(z)

	// era = floorDiv(z, 146097): (z >= 0 ? z : z-146096) / 146097
	f.LocalGet(z)
	f.LocalGet(z)
	f.I64Const(146096)
	f.I64Sub()
	f.LocalGet(z)
	f.I64Const(0)
	f.Op(wasm.OpI64GeS)
	f.Select()
	f.I64Const(146097)
	f.Op(wasm.OpI64DivS)
	f.LocalSet(era)

	// doe = z - era*146097
	f.LocalGet(z)
	f.LocalGet(era)
	f.I64Const(146097)
	f.I64Mul()
	f.I64Sub()
	f.LocalSet(doe)

	// yoe = (doe - doe/1460 + doe/36524 - doe/146096) / 365
	f.LocalGet(doe)
	f.LocalGet(doe)
	f.I64Const(1460)
	f.Op(wasm.OpI64DivS)
	f.I64Sub()
	f.LocalGet(doe)
	f.I64Const(36524)
	f.Op(wasm.OpI64DivS)
	f.I64Add()
	f.LocalGet(doe)
	f.I64Const(146096)
	f.Op(wasm.OpI64DivS)
	f.I64Sub()
	f.I64Const(365)
	f.Op(wasm.OpI64DivS)
	f.LocalSet(yoe)

	// doy = doe - (365*yoe + yoe/4 - yoe/100)
	f.LocalGet(doe)
	f.LocalGet(yoe)
	f.I64Const(365)
	f.I64Mul()
	f.LocalGet(yoe)
	f.I64Const(4)
	f.Op(wasm.OpI64DivS)
	f.I64Add()
	f.LocalGet(yoe)
	f.I64Const(100)
	f.Op(wasm.OpI64DivS)
	f.I64Sub()
	f.I64Sub()
	f.LocalSet(doy)

	// mp = (5*doy + 2)/153
	f.LocalGet(doy)
	f.I64Const(5)
	f.I64Mul()
	f.I64Const(2)
	f.I64Add()
	f.I64Const(153)
	f.Op(wasm.OpI64DivS)
	f.LocalSet(mp)

	// y = yoe + era*400, +1 if month <= 2 (mp >= 10)
	f.LocalGet(yoe)
	f.LocalGet(era)
	f.I64Const(400)
	f.I64Mul()
	f.I64Add()
	f.LocalSet(y)

	f.LocalGet(y)
	f.I64Const(1)
	f.I64Add()
	f.LocalGet(y)
	f.LocalGet(mp)
	f.I64Const(10)
	f.Op(wasm.OpI64GeS)
	f.Select()
	f.Op(wasm.OpI32WrapI64)
	return f
}

// alloc pushes the address of a fresh, zeroed, 8-aligned allocation of the
// size currently on the stack (i32), growing memory as needed.
func (c *compiler) allocFunc() *wasm.FuncBuilder {
	if c.fnAlloc != nil {
		return c.fnAlloc
	}
	f := c.b.NewFunc("alloc", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	c.fnAlloc = f
	ptr := f.AddLocal(wasm.I32)
	need := f.AddLocal(wasm.I32)

	// ptr = (heap + 7) &^ 7
	f.GlobalGet(c.gHeap)
	f.I32Const(7)
	f.I32Add()
	f.I32Const(-8)
	f.I32And()
	f.LocalSet(ptr)
	// heap = ptr + size
	f.LocalGet(ptr)
	f.LocalGet(f.Param(0))
	f.I32Add()
	f.GlobalSet(c.gHeap)
	// need = (heap + 65535) >> 16; grow if beyond memory.size
	f.GlobalGet(c.gHeap)
	f.I32Const(65535)
	f.I32Add()
	f.I32Const(16)
	f.Op(wasm.OpI32ShrU)
	f.LocalSet(need)
	f.LocalGet(need)
	f.MemorySize()
	f.Op(wasm.OpI32GtU)
	f.If(wasm.BlockVoid)
	f.LocalGet(need)
	f.MemorySize()
	f.I32Sub()
	// Grow with headroom to amortize.
	f.I32Const(16)
	f.I32Add()
	f.MemoryGrow()
	f.I32Const(-1)
	f.I32Eq()
	f.If(wasm.BlockVoid)
	f.Unreachable() // out of memory
	f.End()
	f.End()
	f.LocalGet(ptr)
	return f
}
