package core

import (
	"fmt"

	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// produceJoinLib compiles a hash join through the generic library hash
// table: every insert and every probe candidate costs a function call
// (Listing 3).
func (c *compiler) produceJoinLib(j *plan.HashJoin, consume consumer) error {
	buildTables := j.Build.Tables()
	fields := append([]sema.Expr{}, j.BuildKeys...)
	used := map[[2]int]bool{}
	c.collectColumns(used)
	for ti := range c.q.Tables {
		if !buildTables[ti] {
			continue
		}
		tbl := c.q.Tables[ti].Table
		for ci, col := range tbl.Columns {
			if used[[2]int{ti, ci}] {
				fields = append(fields, &sema.ColRef{Table: ti, Col: ci, T: col.Type, Name: col.Name})
			}
		}
	}
	ht := c.newLibHT(fmt.Sprintf("join%d", len(c.pipes)), fields, j.BuildKeys, true)
	l := c.libs()

	err := c.produce(j.Build, func(g *gen, e *env) {
		f := g.f
		// A NaN key can never satisfy the comparator's F64Eq — skip the row
		// instead of inserting an unreachable entry.
		keys := g.keySrcsFromEnv(e, j.BuildKeys)
		nanGuard := emitFloatKeysNotNaN(f, keys)
		if nanGuard {
			f.If(wasm.BlockVoid)
		}
		// Insert needs only the hash (append to the bucket chain; the key
		// globals feed the probe-side comparator, not the insert).
		h := g.emitHashCanon(keys, ht.canonFloatKeys)
		entry := f.AddLocal(wasm.I32)
		f.GlobalGet(ht.gCtrl)
		f.LocalGet(h)
		f.Call(l.htInsert.Index)
		f.LocalSet(entry)
		for _, fld := range ht.layout.fields {
			fld := fld
			g.storeFieldFromStack(entry, fld, func() { g.expr(e, fld.expr) })
		}
		if nanGuard {
			f.End()
		}
	})
	if err != nil {
		return err
	}

	return c.produce(j.Probe, func(g *gen, e *env) {
		f := g.f
		h := g.emitSetKeysFor(e, ht, j.ProbeKeys)
		entry := f.AddLocal(wasm.I32)
		e2 := &env{binds: append([]binding{}, e.binds...)}
		for _, fld := range ht.layout.fields {
			fld := fld
			e2.add(fld.expr, func() { g.loadField(entry, fld) })
		}
		// entry = lookup(...); while entry: body; entry = next(...)
		f.GlobalGet(ht.gCtrl)
		f.LocalGet(h)
		f.I32Const(int32(ht.cmpIdx))
		f.Call(l.htLookup.Index)
		f.LocalSet(entry)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(entry)
		f.I32Eqz()
		f.BrIf(1)
		if len(j.Residual) > 0 {
			if err := g.conjunction(e2, j.Residual); err != nil {
				return
			}
			f.If(wasm.BlockVoid)
			consume(g, e2)
			f.End()
		} else {
			consume(g, e2)
		}
		f.LocalGet(entry)
		f.LocalGet(h)
		f.I32Const(int32(ht.cmpIdx))
		f.Call(l.htNext.Index)
		f.LocalSet(entry)
		f.Br(0)
		f.End()
		f.End()
	})
}

// produceSortLib materializes sort tuples like the specialized path but
// sorts them through the generic library qsort with a comparator function
// registered in the call_indirect table.
func (c *compiler) produceSortLib(s *plan.Sort, consume consumer) error {
	fieldSet := dedupExprs(c.sortFieldExprs(s))
	layout := buildLayout(fieldSet, 0)

	gBase := c.b.AddGlobal(wasm.I32, true, 0)
	gCount := c.b.AddGlobal(wasm.I32, true, 0)
	gCap := c.b.AddGlobal(wasm.I32, true, 0)

	initialCap := uint32(1024)
	c.initSteps = append(c.initSteps, func(g *gen) {
		f := g.f
		f.I32Const(int32(initialCap * layout.stride))
		f.Call(c.allocFunc().Index)
		f.GlobalSet(gBase)
		f.I32Const(int32(initialCap))
		f.GlobalSet(gCap)
		f.I32Const(0)
		f.GlobalSet(gCount)
	})
	sortID := len(c.pipes)
	growFn := c.genArrayGrow(sortID, gBase, gCount, gCap, layout.stride)

	err := c.produce(s.Input, func(g *gen, e *env) {
		f := g.f
		f.GlobalGet(gCount)
		f.GlobalGet(gCap)
		f.I32GeU()
		f.If(wasm.BlockVoid)
		f.Call(growFn.Index)
		f.End()
		ptr := f.AddLocal(wasm.I32)
		f.GlobalGet(gBase)
		f.GlobalGet(gCount)
		f.I32Const(int32(layout.stride))
		f.I32Mul()
		f.I32Add()
		f.LocalSet(ptr)
		for _, fld := range layout.fields {
			fld := fld
			g.storeFieldFromStack(ptr, fld, func() { g.expr(e, fld.expr) })
		}
		f.GlobalGet(gCount)
		f.I32Const(1)
		f.I32Add()
		f.GlobalSet(gCount)
	})
	if err != nil {
		return err
	}

	// The comparator: a generated function over two tuple pointers,
	// invoked indirectly by the generic sort for every comparison.
	cmp := c.b.NewFunc(fmt.Sprintf("sortcmp_%d", sortID),
		wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	{
		g := &gen{c: c, f: cmp}
		a, bb := cmp.Param(0), cmp.Param(1)
		emitLessTuple(g, s.Keys, layout, a, bb)
		if g.err != nil {
			return g.err
		}
	}
	cmpIdx := c.registerTableFunc(cmp)

	l := c.libs()
	g := c.newPipeline(PipeRunOnce, -1, 0)
	g.f.GlobalGet(gBase)
	g.f.GlobalGet(gCount)
	g.f.I32Const(int32(layout.stride))
	g.f.I32Const(int32(cmpIdx))
	g.f.Call(l.sort.Index)
	g.f.I32Const(0)

	// Scan pipeline (same as the specialized path).
	g = c.newPipeline(PipeScanArray, -1, gCount)
	f := g.f
	i := f.AddLocal(wasm.I32)
	ptr := f.AddLocal(wasm.I32)
	f.LocalGet(f.Param(0))
	f.LocalSet(i)
	e := &env{}
	for _, fld := range layout.fields {
		fld := fld
		e.add(fld.expr, func() { g.loadField(ptr, fld) })
	}
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(f.Param(1))
	f.I32GeU()
	f.BrIf(1)
	f.GlobalGet(gBase)
	f.LocalGet(i)
	f.I32Const(int32(layout.stride))
	f.I32Mul()
	f.I32Add()
	f.LocalSet(ptr)
	consume(g, e)
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.I32Const(0)
	return g.err
}

// emitLessTuple emits a standalone multi-key "a < b" over tuple pointers.
func emitLessTuple(g *gen, keys []sema.OrderKey, layout tupleLayout, a, b wasm.Local) {
	f := g.f
	f.Block(wasm.BlockOf(wasm.I32))
	for _, k := range keys {
		fld, ok := layout.find(k.Expr)
		if !ok {
			g.fail("sort key %s not materialized", k.Expr)
			break
		}
		lo, hi := a, b
		if k.Desc {
			lo, hi = b, a
		}
		switch fld.t.Kind {
		case types.Char:
			cmp := g.c.strcmpFunc(fld.t.Length, fld.t.Length)
			r := f.AddLocal(wasm.I32)
			g.loadField(lo, fld)
			g.loadField(hi, fld)
			f.Call(cmp.Index)
			f.LocalSet(r)
			f.LocalGet(r)
			f.I32Const(0)
			f.Op(wasm.OpI32LtS)
			f.LocalGet(r)
			f.BrIf(0)
			f.Drop()
		case types.Float64:
			g.loadField(lo, fld)
			g.loadField(hi, fld)
			f.Op(wasm.OpF64Lt)
			g.loadField(lo, fld)
			g.loadField(hi, fld)
			f.Op(wasm.OpF64Ne)
			f.BrIf(0)
			f.Drop()
		case types.Int64, types.Decimal:
			g.loadField(lo, fld)
			g.loadField(hi, fld)
			f.Op(wasm.OpI64LtS)
			g.loadField(lo, fld)
			g.loadField(hi, fld)
			f.Op(wasm.OpI64Ne)
			f.BrIf(0)
			f.Drop()
		default:
			g.loadField(lo, fld)
			g.loadField(hi, fld)
			f.Op(wasm.OpI32LtS)
			g.loadField(lo, fld)
			g.loadField(hi, fld)
			f.I32Ne()
			f.BrIf(0)
			f.Drop()
		}
	}
	f.I32Const(0)
	f.End()
}

// producePredicatedGlobalAgg fuses scan, selection, and keyless aggregation
// into one branch-free pipeline: the selection mask participates in every
// aggregate update arithmetically (count += mask; sum += mask ? v : 0 via
// select) — no conditional branch depends on the data, so execution time is
// flat across selectivities (the paper's reading of HyPer in Fig. 6).
func (c *compiler) producePredicatedGlobalAgg(gr *plan.Group, scan *plan.Scan, consume consumer) error {
	states, gCount := c.newGlobalAggStates(gr)

	// Fused scan pipeline.
	g := c.newPipeline(PipeScanTable, scan.TableIdx, 0)
	f := g.f
	row := f.AddLocal(wasm.I32)
	mask := f.AddLocal(wasm.I32)
	f.LocalGet(f.Param(0))
	f.LocalSet(row)
	e := &env{}
	c.bindTableColumns(g, e, scan.TableIdx, row)

	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(row)
	f.LocalGet(f.Param(1))
	f.I32GeU()
	f.BrIf(1)
	if len(scan.Filter) > 0 {
		if err := g.conjunction(e, scan.Filter); err != nil {
			return err
		}
	} else {
		f.I32Const(1)
	}
	f.LocalSet(mask)
	// count += mask
	f.GlobalGet(gCount)
	f.LocalGet(mask)
	f.Op(wasm.OpI64ExtendI32U)
	f.I64Add()
	f.GlobalSet(gCount)
	for i, a := range gr.Aggs {
		st := states[i]
		switch a.Func {
		case sema.AggCountStar, sema.AggCount:
			f.GlobalGet(st.glob)
			f.LocalGet(mask)
			f.Op(wasm.OpI64ExtendI32U)
			f.I64Add()
			f.GlobalSet(st.glob)
		case sema.AggSum:
			f.GlobalGet(st.glob)
			g.expr(e, a.Arg)
			if st.t == wasm.F64 {
				f.F64Const(0)
			} else {
				f.I64Const(0)
			}
			f.LocalGet(mask)
			f.Select()
			if st.t == wasm.F64 {
				f.F64Add()
			} else {
				f.I64Add()
			}
			f.GlobalSet(st.glob)
		case sema.AggMin, sema.AggMax:
			// cand = mask ? v : cur; glob = cmp(cand, cur) ? cand : cur
			cand := f.AddLocal(st.t)
			g.expr(e, a.Arg)
			f.GlobalGet(st.glob)
			f.LocalGet(mask)
			f.Select()
			f.LocalSet(cand)
			f.LocalGet(cand)
			f.GlobalGet(st.glob)
			f.LocalGet(cand)
			f.GlobalGet(st.glob)
			f.Op(minMaxCmp(a.Func, a.T))
			f.Select()
			f.GlobalSet(st.glob)
		}
	}
	f.LocalGet(row)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(row)
	f.Br(0)
	f.End()
	f.End()
	f.I32Const(0)
	if g.err != nil {
		return g.err
	}

	return c.emitGlobalAggOutput(gr, states, gCount, consume)
}
