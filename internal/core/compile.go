package core

import (
	"fmt"

	"wasmdb/internal/faultpoint"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// PipelineKind tells the executor how to drive a pipeline.
type PipelineKind int

// Pipeline kinds.
const (
	// PipeScanTable iterates rows [begin, end) of a base table; the host
	// drives morsels over the table's row count.
	PipeScanTable PipelineKind = iota
	// PipeScanSlots iterates hash-table slots [begin, end); the host reads
	// the slot count from CountGlobal after the feeding pipeline ran.
	PipeScanSlots
	// PipeScanArray iterates sort-array elements [begin, end).
	PipeScanArray
	// PipeRunOnce is invoked a single time with (0, 0) — e.g. the quicksort
	// call.
	PipeRunOnce
	// PipeScanBuckets iterates the buckets of a chained library hash table
	// (Style.LibraryHT); CountGlobal holds the guest address of the table's
	// control block, whose mask determines the bucket count.
	PipeScanBuckets
)

// PipelineInfo describes one exported pipeline function.
type PipelineInfo struct {
	Export string
	Kind   PipelineKind
	// TableIdx identifies the scanned table for PipeScanTable.
	TableIdx int
	// CountGlobal is the module global holding the iteration bound for
	// PipeScanSlots (capacity) and PipeScanArray (element count).
	CountGlobal uint32
}

// ColumnMapping records where a referenced column must be rewired.
type ColumnMapping struct {
	TableIdx, ColIdx int
	Base             uint32
}

// ResultField describes one column of the result row layout.
type ResultField struct {
	Name   string
	Type   types.Type
	Offset uint32
}

// AggGlobal describes one keyless-aggregation state global — the metadata
// the parallel executor needs to merge per-worker partial aggregates
// host-side (each worker instance accumulates into its own copy of the
// global; the merge folds them with the aggregate's combine rule).
type AggGlobal struct {
	// Global is the module global index holding the running state.
	Global uint32
	// Func is the aggregate function (COUNT/SUM/MIN/MAX) selecting the
	// combine rule.
	Func sema.AggFunc
	// T is the aggregate's state type (determines bit interpretation).
	T types.Type
}

// MergeField locates one group-key field inside a partial group record
// (offsets are relative to the record base, which mirrors a hash-table
// entry including its occupancy flag word).
type MergeField struct {
	Offset uint32
	T      types.Type
}

// MergeAgg locates one aggregate state field inside a partial group record
// and names the fold rule the host applies when two partials collide.
type MergeAgg struct {
	Offset uint32
	T      types.Type
	Func   sema.AggFunc
}

// GroupMerge describes the ad-hoc exports a keyed group-by module provides
// for parallel partial-state merging. Each worker builds a private group
// hash table during the parallel scan; at the barrier the host drains every
// secondary worker's table via DumpExport, folds records per key, and feeds
// the merged records into the primary worker through RecvExport +
// MergeExport (a morsel-shaped probe-or-combine loop over the primary's own
// table). Serial execution never calls these exports.
type GroupMerge struct {
	// DumpExport compacts the occupied entries of the worker's group table
	// into a fresh allocation and returns its base address; the record count
	// is read from CountGlobal.
	DumpExport string
	// RecvExport allocates room for n merged records on the primary worker
	// and returns the base address the host writes them to.
	RecvExport string
	// MergeExport folds received records [begin, end) into the primary
	// worker's group table (insert new keys, combine colliding partials).
	MergeExport string
	// CountGlobal is the module global holding the live group count.
	CountGlobal uint32
	// Stride is the record size in bytes, occupancy flag word included.
	Stride uint32
	// Keys identifies the group-key fields (host fold key = their raw bytes).
	Keys []MergeField
	// Aggs identifies the aggregate state fields and their fold rules.
	Aggs []MergeAgg
}

// JoinMerge describes the ad-hoc exports a hash-join build table provides
// for parallel partitioned builds. Each worker inserts its private partition
// of the build side during the parallel build scan; at the barrier the host
// drains every secondary worker's partition via DumpExport, concatenates the
// records (join inserts are append-style — duplicates coexist, so no
// host-side folding is needed), feeds them into the primary worker through
// RecvExport + MergeExport, and finally replicates the primary's complete
// table into every secondary via InstallExport so the probe pipeline can run
// embarrassingly parallel. Serial execution never calls these exports.
type JoinMerge struct {
	// DumpExport compacts the occupied entries of the worker's partition
	// into a fresh allocation and returns its base address; the record count
	// is read from CountGlobal.
	DumpExport string
	// RecvExport allocates room for n records on the primary worker and
	// returns the base address the host writes them to.
	RecvExport string
	// PresizeExport(needed) grows the primary's table until needed records
	// fit under the load-factor ceiling, so the merge loop never grows
	// mid-insertion (slot-ordered dump records against a near-full table
	// probe pathologically long clusters).
	PresizeExport string
	// MergeExport re-inserts received records [begin, end) into the primary
	// worker's table (append at the first empty probe slot; never combines).
	MergeExport string
	// InstallExport(cap, count) allocates cap*Stride bytes on a secondary
	// worker, repoints the table globals at it, and returns the base the
	// host writes the primary's entry image to — replacing the secondary's
	// partial partition with the complete table before the probe runs.
	InstallExport string
	// BaseGlobal / MaskGlobal / CountGlobal are the table's module globals
	// (read host-side to locate and describe the primary's entry image).
	BaseGlobal  uint32
	MaskGlobal  uint32
	CountGlobal uint32
	// Stride is the entry size in bytes, occupancy flag word included.
	Stride uint32
	// BuildPipeline is the index into CompiledQuery.Pipelines of the build
	// pipeline this table is filled by; the executor barriers after it.
	BuildPipeline int
}

// SortKeyField is one ORDER BY key inside a sorted-run tuple; the host-side
// k-way merge comparator mirrors the generated quicksort's emitLess over
// these fields exactly.
type SortKeyField struct {
	Offset uint32
	T      types.Type
	Desc   bool
}

// SortMerge describes the metadata a sort module provides for parallel
// sorted-run merging: every worker quicksorts its private tuple array at
// the barrier, the host k-way merges the runs, and RecvExport installs the
// merged array (gBase/gCount) on the primary worker so the output pipeline
// scans it unchanged.
type SortMerge struct {
	// RecvExport allocates room for n tuples on the primary worker, points
	// the sort array globals at it, and returns the base address.
	RecvExport string
	// BaseGlobal / CountGlobal are the sort array's base-address and
	// tuple-count module globals (read per worker to locate each run).
	BaseGlobal  uint32
	CountGlobal uint32
	// Stride is the tuple size in bytes.
	Stride uint32
	// Keys are the ORDER BY comparator fields, in significance order.
	Keys []SortKeyField
}

// CompiledQuery is the output of Compile: a binary Wasm module plus the
// metadata the executor needs to wire memory and drive pipelines.
type CompiledQuery struct {
	Bin       []byte
	Module    *wasm.Module // for WAT dumps
	Pipelines []PipelineInfo
	Columns   []ColumnMapping

	ResultBase   uint32
	ResultStride uint32
	ResultFields []ResultField
	// CursorGlobal holds the number of rows currently in the result buffer.
	CursorGlobal uint32

	// HeapBase is where the bump allocator starts.
	HeapBase uint32
	// MinPages is the initial memory size the executor must provide.
	MinPages uint32

	// AggGlobals lists the keyless-aggregation state globals (empty unless
	// the query has a single global aggregation); AggCountGlobal is the
	// matched-row counter feeding the zero-input guard. aggStateSets counts
	// how many aggregation operators allocated global state — the parallel
	// merge only applies when exactly one did.
	AggGlobals     []AggGlobal
	AggCountGlobal uint32
	aggStateSets   int

	// GroupMerge describes the ad-hoc merge exports of a keyed group-by
	// module (nil when the query has no specialized group hash table). The
	// parallel executor uses it to drain each worker's partial groups, fold
	// them per key host-side, and feed the result into the primary worker.
	GroupMerge *GroupMerge
	// JoinMerges describes the partition merge exports of each ad-hoc hash
	// join build table, in build-pipeline order (empty when the query has no
	// specialized joins). The parallel executor barriers after each build
	// pipeline, merges every worker's partition into the primary, and
	// replicates the result to all workers before the probe continues.
	JoinMerges []*JoinMerge
	// SortMerge describes the sorted-run merge metadata of an order-by
	// module (nil when the query has no specialized sort). The parallel
	// executor k-way merges per-worker sorted runs host-side and installs
	// the merged array into the primary worker.
	SortMerge *SortMerge

	Limit int64 // -1 if none

	// ParamSlots lists the parameter-region slots the generated code reads,
	// ordered by parameter ordinal. The executor writes the execution's
	// parameter values into these slots (in every worker's memory) before
	// calling q_init. Empty for fully constant-baked queries.
	ParamSlots []ParamSlot
	// LimitSlot is the parameter ordinal the generated LIMIT check reads,
	// or -1 when the limit (if any) is baked as a constant. When ≥ 0 the
	// executor takes the effective limit from the parameter vector rather
	// than from Limit.
	LimitSlot int

	// Uncacheable marks a module whose generated code was perturbed by an
	// armed fault-injection point: it is not a pure function of the plan
	// fingerprint, so the plan cache must not retain it.
	Uncacheable bool
}

// ParamSlot is one parameter's home in the parameter region.
type ParamSlot struct {
	// Idx is the parameter ordinal in the execution parameter vector.
	Idx int
	// Off is the byte offset from paramBase.
	Off uint32
	// T is the slot's type: numeric slots hold the value's machine
	// representation; CHAR slots hold T.Length raw bytes.
	T types.Type
}

// Compile translates a physical plan (with its bound query) to WebAssembly
// in the paper's style: ad-hoc specialized library code, fully inlined.
func Compile(q *sema.Query, root plan.Node) (*CompiledQuery, error) {
	return CompileStyled(q, root, Style{})
}

// Style selects between the paper's ad-hoc specialization and the
// "pre-compiled library" designs it argues against (§4.3, §5.1). The
// HyPer-like baseline enables all three flags; the ablation benchmarks
// flip them individually.
type Style struct {
	// LibraryHT replaces inlined monomorphic hash tables with generic,
	// type-agnostic library routines: chained buckets, stored hashes, and a
	// key comparison invoked through call_indirect per candidate —
	// Listing 3's design, one function call per access.
	LibraryHT bool
	// LibrarySort replaces the specialized generated quicksort with a
	// generic qsort taking a comparator function pointer and moving
	// elements with a generic byte copy.
	LibrarySort bool
	// PredicatedSelection compiles selections feeding global aggregation
	// branch-free (masked updates) instead of as conditional branches —
	// the behavior the paper attributes to HyPer in Fig. 6.
	PredicatedSelection bool
}

// CompileStyled compiles with explicit style flags.
func CompileStyled(q *sema.Query, root plan.Node, style Style) (*CompiledQuery, error) {
	c := &compiler{
		q:     q,
		style: style,
		out:   &CompiledQuery{Limit: q.Limit, LimitSlot: -1},
		b:     wasm.NewModuleBuilder(),

		constStrings: map[string]uint32{},
		strcmps:      map[[2]int]*wasm.FuncBuilder{},
		likes:        map[string]*wasm.FuncBuilder{},
		paramSlots:   map[int]ParamSlot{},
	}
	if err := c.compile(root); err != nil {
		return nil, err
	}
	return c.out, nil
}

type compiler struct {
	q     *sema.Query
	style Style
	out   *CompiledQuery
	b     *wasm.ModuleBuilder

	// Library-style shared routines (generated when the style asks for
	// them) and the comparator function table.
	lib        *libRoutines
	tableFuncs []uint32

	// Imports.
	fnResultFlush uint32

	// Shared generated helpers, created on demand.
	fnAlloc       *wasm.FuncBuilder
	fnExtractYear *wasm.FuncBuilder
	strcmps       map[[2]int]*wasm.FuncBuilder
	likes         map[string]*wasm.FuncBuilder

	// Globals.
	gHeap      uint32 // bump-allocator cursor
	gCursor    uint32 // rows in result buffer
	gTotalRows uint32 // total result rows produced (for LIMIT)

	// Constant region.
	constStrings map[string]uint32
	constCursor  uint32
	constData    []byte

	// Parameter region slots, by parameter ordinal.
	paramSlots map[int]ParamSlot

	// Column addresses.
	colBase map[[2]int]uint32

	// Pipelines generated so far.
	pipes []*wasm.FuncBuilder

	// initSteps are emitted into the exported q_init function.
	initSteps []func(g *gen)

	// err records the first failure raised from deep inside expression
	// emitters (which have no error return path); compile checks it before
	// validating the module.
	err error

	// Per-query result layout.
	resultLayout tupleLayout
}

func (c *compiler) compile(root plan.Node) error {
	// --- Parameter region layout -----------------------------------------
	if err := c.layoutParams(); err != nil {
		return err
	}

	// --- Address space layout -------------------------------------------
	c.colBase = map[[2]int]uint32{}
	cursor := uint32(columnsBase)
	used := map[[2]int]bool{}
	c.collectColumns(used)
	// Deterministic order: by table then column index.
	for ti := range c.q.Tables {
		tbl := c.q.Tables[ti].Table
		for ci := range tbl.Columns {
			if !used[[2]int{ti, ci}] {
				continue
			}
			c.colBase[[2]int{ti, ci}] = cursor
			c.out.Columns = append(c.out.Columns, ColumnMapping{TableIdx: ti, ColIdx: ci, Base: cursor})
			cursor += uint32(pageCeilU(uint64(tbl.Columns[ci].MappedBytes())))
			if cursor >= 1<<31 {
				return fmt.Errorf("core: referenced columns exceed the 2 GiB column window; table too large for a single mapping")
			}
		}
	}

	// Result buffer.
	var outExprs []sema.Expr
	for _, oc := range c.q.Select {
		outExprs = append(outExprs, oc.Expr)
	}
	c.resultLayout = buildLayout(outExprs, 0)
	c.out.ResultBase = cursor
	c.out.ResultStride = c.resultLayout.stride
	for i, oc := range c.q.Select {
		f, _ := c.resultLayout.find(oc.Expr)
		// Note: duplicate output expressions share a field; record per item.
		_ = i
		c.out.ResultFields = append(c.out.ResultFields, ResultField{Name: oc.Name, Type: oc.Expr.Type(), Offset: f.offset})
	}
	resBytes := pageCeilU(uint64(c.resultLayout.stride) * resultCapacityRows)
	heapBase := cursor + uint32(resBytes)
	c.out.HeapBase = heapBase
	c.out.MinPages = heapBase/pageSize + 16

	// --- Module skeleton -------------------------------------------------
	c.b.ImportMemory("env", "memory", c.out.MinPages, 65536)
	c.fnResultFlush = c.b.ImportFunc("env", "result_flush",
		wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})

	c.gHeap = c.b.AddGlobal(wasm.I32, true, uint64(heapBase))
	c.gCursor = c.b.AddGlobal(wasm.I32, true, 0)
	c.gTotalRows = c.b.AddGlobal(wasm.I32, true, 0)
	c.out.CursorGlobal = c.gCursor

	// --- Plan walk --------------------------------------------------------
	proj, ok := root.(*plan.Project)
	if !ok {
		return fmt.Errorf("core: plan root must be a projection")
	}
	if err := c.produce(proj.Input, c.resultConsumer(proj)); err != nil {
		return err
	}

	// --- init function ----------------------------------------------------
	fi := c.b.NewFunc("q_init", wasm.FuncType{})
	gi := &gen{c: c, f: fi}
	for _, step := range c.initSteps {
		step(gi)
	}
	c.b.Export("q_init", wasm.ExternFunc, fi.Index)

	// Constant region data.
	if len(c.constData) > 0 {
		c.b.AddData(constBase, c.constData)
	}

	if c.err != nil {
		return c.err
	}

	mod := c.b.Module()
	if len(c.tableFuncs) > 0 {
		mod.HasTable = true
		mod.TableMin = uint32(len(c.tableFuncs))
		mod.Elems = []wasm.ElemSegment{{Offset: 0, Funcs: c.tableFuncs}}
	}
	if err := wasm.Validate(mod); err != nil {
		return fmt.Errorf("core: generated module does not validate: %w", err)
	}
	c.out.Module = mod
	c.out.Bin = wasm.Encode(mod)
	return nil
}

func pageCeilU(n uint64) uint64 { return (n + pageSize - 1) &^ (pageSize - 1) }

// collectColumns marks every (table, column) pair the query references.
func (c *compiler) collectColumns(used map[[2]int]bool) {
	for _, e := range c.q.Conjuncts {
		sema.ColumnsUsed(e, used)
	}
	for _, e := range c.q.GroupBy {
		sema.ColumnsUsed(e, used)
	}
	for _, a := range c.q.Aggs {
		if a.Arg != nil {
			sema.ColumnsUsed(a.Arg, used)
		}
	}
	for _, oc := range c.q.Select {
		sema.ColumnsUsed(oc.Expr, used)
	}
	for _, ok := range c.q.OrderBy {
		sema.ColumnsUsed(ok.Expr, used)
	}
}

// newPipeline opens a new exported pipeline function and registers it.
func (c *compiler) newPipeline(kind PipelineKind, tableIdx int, countGlobal uint32) *gen {
	name := fmt.Sprintf("pipeline_%d", len(c.pipes))
	f := c.b.NewFunc(name, wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	c.pipes = append(c.pipes, f)
	c.b.Export(name, wasm.ExternFunc, f.Index)
	c.out.Pipelines = append(c.out.Pipelines, PipelineInfo{
		Export: name, Kind: kind, TableIdx: tableIdx, CountGlobal: countGlobal,
	})
	if faultpoint.Hit("core-infinite-loop") != nil {
		// Fault injection: open the pipeline with a spin loop, turning it
		// into a well-typed runaway query (the rest of the body becomes dead
		// code). Tests use this to prove fuel budgets and cancellation stop
		// generated code the host otherwise cannot interrupt.
		f.Loop(wasm.BlockVoid)
		f.Br(0)
		f.End()
		c.out.Uncacheable = true
	}
	return &gen{c: c, f: f}
}

// consumer emits the code that consumes one tuple in the current pipeline;
// the environment provides the tuple's attribute bindings.
type consumer func(g *gen, e *env)

// havingConsumer gates a group consumer behind the HAVING conjunction: the
// group tuple reaches the downstream consumer only when every conjunct holds.
func havingConsumer(having []sema.Expr, consume consumer) consumer {
	return func(g *gen, e *env) {
		if g.err != nil {
			return
		}
		if err := g.conjunction(e, having); err != nil {
			return
		}
		g.f.If(wasm.BlockVoid)
		consume(g, e)
		g.f.End()
	}
}

// produce compiles the subplan rooted at n, feeding each produced tuple to
// consume (data-centric compilation, §4.2).
func (c *compiler) produce(n plan.Node, consume consumer) error {
	switch x := n.(type) {
	case *plan.Scan:
		return c.produceScan(x, consume)
	case *plan.HashJoin:
		if c.style.LibraryHT {
			return c.produceJoinLib(x, consume)
		}
		return c.produceJoin(x, consume)
	case *plan.Group:
		if len(x.Having) > 0 {
			// Wrap the consumer once, centrally: every group output path
			// (ad-hoc slot scan, library bucket walk, keyless run-once) binds
			// KeyRef/AggRef in its env, so the compiled HAVING conjunction
			// gates emission uniformly across styles.
			consume = havingConsumer(x.Having, consume)
		}
		if len(x.Keys) == 0 {
			// Keyless aggregation never needs a hash table.
			if c.style.PredicatedSelection {
				if scan, ok := x.Input.(*plan.Scan); ok {
					return c.producePredicatedGlobalAgg(x, scan, consume)
				}
			}
			return c.produceGlobalAgg(x, consume)
		}
		if c.style.LibraryHT {
			return c.produceGroupLib(x, consume)
		}
		return c.produceGroup(x, consume)
	case *plan.Sort:
		if c.style.LibrarySort {
			return c.produceSortLib(x, consume)
		}
		return c.produceSort(x, consume)
	case *plan.Limit:
		// LIMIT is enforced in the result consumer via gTotalRows.
		return c.produce(x.Input, consume)
	case *plan.Project:
		return c.produce(x.Input, consume)
	}
	return fmt.Errorf("core: unsupported plan node %T", n)
}

// produceScan generates the morsel-driven table-scan pipeline.
func (c *compiler) produceScan(s *plan.Scan, consume consumer) error {
	g := c.newPipeline(PipeScanTable, s.TableIdx, 0)
	row := g.f.AddLocal(wasm.I32)
	g.f.LocalGet(g.f.Param(0))
	g.f.LocalSet(row)

	e := &env{}
	c.bindTableColumns(g, e, s.TableIdx, row)

	// for (row = begin; row < end; row++)
	g.f.Block(wasm.BlockVoid) // exit
	g.f.Loop(wasm.BlockVoid)
	g.f.LocalGet(row)
	g.f.LocalGet(g.f.Param(1))
	g.f.I32GeU()
	g.f.BrIf(1)

	// Selection: evaluate the whole conjunction, one conditional branch
	// (no short-circuiting — §8.2's analysis of Fig. 6c depends on this).
	body := func() error {
		consume(g, e)
		return g.err
	}
	if len(s.Filter) > 0 {
		if err := g.conjunction(e, s.Filter); err != nil {
			return err
		}
		g.f.If(wasm.BlockVoid)
		if err := body(); err != nil {
			return err
		}
		g.f.End()
	} else {
		if err := body(); err != nil {
			return err
		}
	}

	// row++
	g.f.LocalGet(row)
	g.f.I32Const(1)
	g.f.I32Add()
	g.f.LocalSet(row)
	g.f.Br(0)
	g.f.End()
	g.f.End()
	g.f.I32Const(0)
	return g.err
}

// bindTableColumns adds bindings for all referenced columns of a table,
// loading from the rewired column arrays by row index.
func (c *compiler) bindTableColumns(g *gen, e *env, tableIdx int, row wasm.Local) {
	tbl := c.q.Tables[tableIdx].Table
	for ci, col := range tbl.Columns {
		base, ok := c.colBase[[2]int{tableIdx, ci}]
		if !ok {
			continue
		}
		col := col
		ref := &sema.ColRef{Table: tableIdx, Col: ci, T: col.Type, Name: col.Name}
		e.add(ref, func() { g.loadColumn(base, col.Type, row) })
	}
}
