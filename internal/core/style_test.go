package core

import (
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/engine"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
)

// runStyled compiles with the given style and runs on turbofan.
func runStyled(t *testing.T, cat *catalog.Catalog, src string, style Style) *ResultSet {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileStyled(q, p, style)
	if err != nil {
		t.Fatalf("compile styled: %v", err)
	}
	res, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierTurbofan}), ExecOptions{MorselRows: 700})
	if err != nil {
		t.Fatalf("execute styled: %v", err)
	}
	return res
}

// hyperStyle is the HyPer-like configuration: all library designs on.
var hyperStyle = Style{LibraryHT: true, LibrarySort: true, PredicatedSelection: true}

// TestStyledMatchesSpecialized runs the same queries through the ad-hoc
// specialized compiler and the library-style compiler and requires identical
// result sets (order-insensitive where no ORDER BY is present).
func TestStyledMatchesSpecialized(t *testing.T) {
	cat := microCatalog(t, 4000)
	ordered := []string{
		"SELECT id, x FROM r WHERE g = 2 ORDER BY x DESC, id LIMIT 20",
		"SELECT name, COUNT(*) FROM r GROUP BY name ORDER BY name",
		"SELECT g, SUM(big) FROM r GROUP BY g ORDER BY g",
	}
	unordered := []string{
		"SELECT COUNT(*) FROM r WHERE x < 300",
		"SELECT COUNT(*), SUM(big), MIN(x), MAX(x) FROM r WHERE y < 0.5",
		"SELECT g, COUNT(*), MIN(price), MAX(price) FROM r GROUP BY g",
		"SELECT COUNT(*), SUM(s.v) FROM r, s WHERE r.id = s.rid AND r.x < 500",
		"SELECT r.g, COUNT(*) FROM r JOIN s ON r.id = s.rid GROUP BY r.g",
		"SELECT COUNT(*) FROM r WHERE x < -5",
		"SELECT COUNT(*), MIN(x) FROM r WHERE x < -5", // empty: min falls back to 0
	}
	for _, src := range ordered {
		spec := runStyled(t, cat, src, Style{})
		lib := runStyled(t, cat, src, hyperStyle)
		if fmtRows(spec) != fmtRows(lib) {
			t.Errorf("%s:\nspecialized:\n%slibrary:\n%s", src, fmtRows(spec), fmtRows(lib))
		}
	}
	for _, src := range unordered {
		spec := sortedRows(runStyled(t, cat, src, Style{}))
		lib := sortedRows(runStyled(t, cat, src, hyperStyle))
		if len(spec) != len(lib) {
			t.Errorf("%s: %d vs %d rows", src, len(spec), len(lib))
			continue
		}
		for i := range spec {
			if spec[i] != lib[i] {
				t.Errorf("%s row %d:\n%s\nvs\n%s", src, i, spec[i], lib[i])
				break
			}
		}
	}
}

// TestStyledFlagsIndividually exercises each library design alone (the
// ablation configurations).
func TestStyledFlagsIndividually(t *testing.T) {
	cat := microCatalog(t, 3000)
	cases := []struct {
		name  string
		style Style
		query string
	}{
		{"library-ht-group", Style{LibraryHT: true}, "SELECT g, COUNT(*), SUM(big) FROM r GROUP BY g ORDER BY g"},
		{"library-ht-join", Style{LibraryHT: true}, "SELECT COUNT(*), SUM(s.v) FROM r, s WHERE r.id = s.rid"},
		{"library-sort", Style{LibrarySort: true}, "SELECT id, x FROM r WHERE g = 1 ORDER BY x, id LIMIT 50"},
		{"predicated", Style{PredicatedSelection: true}, "SELECT COUNT(*), SUM(big), MIN(x), MAX(x) FROM r WHERE x < 500 AND y < 0.7"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := runStyled(t, cat, c.query, Style{})
			lib := runStyled(t, cat, c.query, c.style)
			s1, s2 := sortedRows(spec), sortedRows(lib)
			if len(s1) != len(s2) {
				t.Fatalf("rows: %d vs %d", len(s1), len(s2))
			}
			for i := range s1 {
				if s1[i] != s2[i] {
					t.Fatalf("row %d: %s vs %s", i, s1[i], s2[i])
				}
			}
		})
	}
}
