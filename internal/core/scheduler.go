package core

import (
	"runtime"
	"sync"

	"wasmdb/internal/obs"
)

// Scheduler is the process-wide morsel worker-slot pool shared by every
// concurrently executing query — the inter-query half of morsel-driven
// scheduling. Intra-query parallelism (ExecOptions.Parallelism) decides how
// many workers a query *wants*; the scheduler decides how many it *gets*,
// so a burst of concurrent queries cannot oversubscribe the machine with
// worker pools sized as if each query ran alone.
//
// Slots count the extra worker goroutines a query runs beyond its own
// calling goroutine: a serial query consumes none (bounding serial
// concurrency is the admission layer's job, not the scheduler's), a query
// granted e extras runs 1+e workers. Grants are leases:
//
//   - Acquire never blocks. It grants min(want-1, fair share, available)
//     extras, where the fair share is total/(active leases + 1) — a query
//     arriving on an idle pool gets everything, the second query arriving
//     concurrently gets half, and so on.
//   - A grant below one extra is a denial: the query runs serially and the
//     executor records the never-silent "worker-slots-exhausted" fallback.
//   - Leases are revocable at morsel granularity — the fair time-slice.
//     When a new query cannot obtain its fair share, over-share leases are
//     marked down to the new fair share; their workers observe
//     ShouldYield between morsels, retire, and return their slots, so the
//     pool converges to fairness while every query keeps making progress
//     (worker 0 is never revoked). Partial state held by a retired worker
//     is still merged at the pipeline barrier, so early retirement never
//     changes results.
type Scheduler struct {
	total int

	mu     sync.Mutex
	avail  int
	leases map[*Lease]struct{}
}

// Scheduler metrics, resolved once (recording is then atomic-only).
var (
	mSchedLeases = obs.Default.Counter(obs.MetricSchedLeases)
	mSchedDenied = obs.Default.Counter(obs.MetricSchedDenied)
	mSchedYields = obs.Default.Counter(obs.MetricSchedYields)
	gSchedAvail  = obs.Default.Gauge(obs.MetricSchedSlotsAvail)
	gSchedTotal  = obs.Default.Gauge(obs.MetricSchedSlotsTotal)
)

// NewScheduler creates a pool of total extra-worker slots (<= 0 means
// GOMAXPROCS).
func NewScheduler(total int) *Scheduler {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	gSchedTotal.Set(int64(total))
	gSchedAvail.Set(int64(total))
	return &Scheduler{total: total, avail: total, leases: map[*Lease]struct{}{}}
}

// Total returns the pool size.
func (s *Scheduler) Total() int { return s.total }

// Lease is one query's hold on scheduler slots. The zero of *Lease (nil) is
// inert: every method is nil-safe, so serial and scheduler-less executions
// share the parallel code path unconditionally.
type Lease struct {
	s      *Scheduler
	extras int // immutable initial grant

	mu       sync.Mutex
	keep     int    // current target extras (<= extras, only ever lowered)
	yielded  []bool // per extra worker: slot already returned by ShouldYield
	returned int    // slots given back early, total
	released bool
}

// Acquire requests slots for a query that wants `workers` workers in total.
// It returns nil when the pool cannot grant at least one extra — the caller
// must fall back to serial execution — and a lease for 1+Extras() workers
// otherwise. Acquire never blocks: admission control queues *queries*; the
// scheduler only divides worker slots among the queries already running.
func (s *Scheduler) Acquire(workers int) *Lease {
	want := workers - 1
	if want < 1 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fair := s.total / (len(s.leases) + 1)
	n := min(want, fair, s.avail)
	if n < 1 {
		// Denied. Mark over-share leases down to the new fair share so their
		// workers retire at the next morsel boundary and the *next* query
		// finds slots — the time-slicing half of fairness.
		s.rebalanceLocked(fair)
		mSchedDenied.Add(1)
		return nil
	}
	if n < want {
		// Short grant under contention: shrink the incumbents too.
		s.rebalanceLocked(fair)
	}
	s.avail -= n
	gSchedAvail.Set(int64(s.avail))
	l := &Lease{s: s, extras: n, keep: n, yielded: make([]bool, n)}
	s.leases[l] = struct{}{}
	mSchedLeases.Add(1)
	return l
}

// rebalanceLocked lowers every lease's keep target to at most fair (but
// never below one extra — revoking a lease entirely would leave a query
// that already built its worker pool paying pool overhead for nothing).
func (s *Scheduler) rebalanceLocked(fair int) {
	if fair < 1 {
		fair = 1
	}
	for l := range s.leases {
		l.mu.Lock()
		if l.keep > fair {
			l.keep = fair
		}
		l.mu.Unlock()
	}
}

// Extras returns the number of extra worker slots granted (0 on a nil
// lease), fixed at Acquire time.
func (l *Lease) Extras() int {
	if l == nil {
		return 0
	}
	return l.extras
}

// ShouldYield reports whether the worker with the given pool index should
// retire at this morsel boundary because the lease was marked down. Worker 0
// (the primary) never yields. The first observation by a given worker
// returns its slot to the pool immediately; the call is cheap enough for the
// morsel loop (one mutex acquisition, uncontended in steady state).
func (l *Lease) ShouldYield(workerID int) bool {
	if l == nil || workerID == 0 {
		return false
	}
	l.mu.Lock()
	if workerID <= l.keep {
		l.mu.Unlock()
		return false
	}
	idx := workerID - 1
	give := !l.released && !l.yielded[idx]
	if give {
		l.yielded[idx] = true
		l.returned++
	}
	l.mu.Unlock()
	if give {
		l.s.giveBack(1)
		mSchedYields.Add(1)
	}
	return true
}

// Release returns the lease's remaining slots to the pool. Idempotent.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return
	}
	l.released = true
	held := l.extras - l.returned
	l.mu.Unlock()
	l.s.mu.Lock()
	delete(l.s.leases, l)
	l.s.mu.Unlock()
	l.s.giveBack(held)
}

// giveBack returns n slots to the pool.
func (s *Scheduler) giveBack(n int) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.avail += n
	gSchedAvail.Set(int64(s.avail))
	s.mu.Unlock()
}

// InUse returns the number of slots currently leased out, for tests and
// metrics scraping.
func (s *Scheduler) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total - s.avail
}
