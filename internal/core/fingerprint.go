package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"wasmdb/internal/engine"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

// fpSalt versions the fingerprint format itself: any change to the
// serialization below, or to codegen that is not otherwise captured, must
// bump it so stale cache keys cannot alias new modules.
const fpSalt = "wasmdb-plancache-v3"

// Fingerprint computes the plan-cache key of a parameterized query: a
// sha256 over everything that determines the bytes of the compiled module —
// plan structure, expression trees with parameter slots (not values), bound
// types, compile style, engine tier configuration, the catalog schema
// version, and each referenced column's mapped page count (column base
// addresses are baked into generated loads). Parameter *values* are
// deliberately excluded: two queries that differ only in hoisted literals
// hash identically and share one cache entry. The one estimate-derived input
// codegen consumes — a hash join's initial capacity — is serialized in its
// quantized (power-of-two) form, so row-count drift only changes the key
// when it would change the generated table.
func Fingerprint(q *sema.Query, root plan.Node, schemaVersion uint64, style Style, tier engine.Tier, optRounds int) string {
	w := &fpWriter{h: sha256.New()}
	w.str(fpSalt)
	w.bool(style.LibraryHT)
	w.bool(style.LibrarySort)
	w.bool(style.PredicatedSelection)
	w.u64(uint64(tier))
	w.u64(uint64(optRounds))
	w.u64(schemaVersion)

	// Tables: schema and the page count of every column (all columns: the
	// referenced set is implied by the expressions, and base addresses of
	// later columns depend on the sizes of earlier ones).
	w.u64(uint64(len(q.Tables)))
	for _, tr := range q.Tables {
		w.str(tr.Table.Name)
		w.str(tr.Alias)
		w.u64(uint64(len(tr.Table.Columns)))
		for _, col := range tr.Table.Columns {
			w.str(col.Name)
			w.typ(col.Type)
			w.u64(uint64(col.MappedBytes()) / pageSize)
		}
	}

	w.node(q, root)
	return hex.EncodeToString(w.h.Sum(nil))
}

type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) i64(v int64) { w.u64(uint64(v)) }

func (w *fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpWriter) bool(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *fpWriter) typ(t types.Type) {
	w.u64(uint64(t.Kind))
	w.i64(int64(t.Prec))
	w.i64(int64(t.Scale))
	w.i64(int64(t.Length))
}

func (w *fpWriter) node(q *sema.Query, n plan.Node) {
	switch x := n.(type) {
	case *plan.Scan:
		w.str("scan")
		w.i64(int64(x.TableIdx))
		w.u64(uint64(len(x.Filter)))
		for _, f := range x.Filter {
			w.expr(f)
		}
	case *plan.HashJoin:
		w.str("join")
		// The only estimate → codegen dependency: the build table's initial
		// capacity, in the quantized form newHashTable actually allocates.
		w.u64(uint64(joinInitialCap(x.Build.Rows())))
		w.u64(uint64(len(x.BuildKeys)))
		for _, k := range x.BuildKeys {
			w.expr(k)
		}
		w.u64(uint64(len(x.ProbeKeys)))
		for _, k := range x.ProbeKeys {
			w.expr(k)
		}
		w.u64(uint64(len(x.Residual)))
		for _, r := range x.Residual {
			w.expr(r)
		}
		w.node(q, x.Build)
		w.node(q, x.Probe)
	case *plan.Group:
		w.str("group")
		w.u64(uint64(len(x.Keys)))
		for _, k := range x.Keys {
			w.expr(k)
		}
		w.u64(uint64(len(x.Aggs)))
		for _, a := range x.Aggs {
			w.u64(uint64(a.Func))
			w.typ(a.T)
			if a.Arg != nil {
				w.expr(a.Arg)
			} else {
				w.str("*")
			}
		}
		w.u64(uint64(len(x.Having)))
		for _, h := range x.Having {
			w.expr(h)
		}
		w.node(q, x.Input)
	case *plan.Sort:
		w.str("sort")
		w.u64(uint64(len(x.Keys)))
		for _, k := range x.Keys {
			w.bool(k.Desc)
			w.expr(k.Expr)
		}
		w.node(q, x.Input)
	case *plan.Limit:
		w.str("limit")
		if q.LimitSlot >= 0 {
			// Parameterized: the value lives in the parameter region and the
			// generated check reads it there — exclude it from the key.
			w.i64(int64(q.LimitSlot))
		} else {
			w.str("=")
			w.i64(x.N)
		}
		w.node(q, x.Input)
	case *plan.Project:
		w.str("project")
		w.u64(uint64(len(x.Cols)))
		for _, oc := range x.Cols {
			w.str(oc.Name)
			w.expr(oc.Expr)
		}
		w.node(q, x.Input)
	default:
		w.str("?node")
	}
}

func (w *fpWriter) expr(e sema.Expr) {
	switch x := e.(type) {
	case *sema.ColRef:
		w.str("c")
		w.i64(int64(x.Table))
		w.i64(int64(x.Col))
		w.typ(x.T)
	case *sema.Const:
		// A constant that survived Parameterize (all-constant predicate,
		// projected literal, …) is baked into the module: its value is part
		// of the key.
		w.str("k")
		w.typ(x.V.Type)
		w.i64(x.V.I)
		w.u64(math.Float64bits(x.V.F))
		w.str(x.V.S)
	case *sema.Param:
		w.str("p")
		w.i64(int64(x.Idx))
		w.typ(x.T)
	case *sema.Binary:
		w.str("b")
		w.u64(uint64(x.Op))
		w.typ(x.T)
		w.expr(x.L)
		w.expr(x.R)
	case *sema.Not:
		w.str("!")
		w.expr(x.E)
	case *sema.Cast:
		w.str("cast")
		w.typ(x.To)
		w.expr(x.E)
	case *sema.Like:
		w.str("like")
		w.u64(uint64(x.Kind))
		w.bool(x.Not)
		if x.PIdx >= 0 {
			// Parameterized pattern: the slot and the byte length shape the
			// generated matcher; the bytes themselves do not.
			w.i64(int64(x.PIdx))
			n := len(x.Needle)
			if x.Kind == sema.LikeComplex {
				n = len(x.Pattern)
			}
			w.i64(int64(n))
		} else {
			w.i64(-1)
			w.str(x.Pattern)
			w.str(x.Needle)
		}
		w.expr(x.E)
	case *sema.Case:
		w.str("case")
		w.typ(x.T)
		w.u64(uint64(len(x.Whens)))
		for _, wh := range x.Whens {
			w.expr(wh.Cond)
			w.expr(wh.Then)
		}
		w.expr(x.Else)
	case *sema.ExtractYear:
		w.str("year")
		w.expr(x.E)
	case *sema.AggRef:
		w.str("a")
		w.i64(int64(x.Idx))
		w.typ(x.T)
	case *sema.KeyRef:
		w.str("g")
		w.i64(int64(x.Idx))
		w.typ(x.T)
	default:
		w.str("?expr")
	}
}
