package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/engine"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/types"
)

// runQuery compiles and executes src against cat on the given tier.
func runQuery(t *testing.T, cat *catalog.Catalog, src string, tier engine.Tier) *ResultSet {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	cq, err := Compile(q, p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, _, err := Execute(cq, q, engine.New(engine.Config{Tier: tier}), ExecOptions{MorselRows: 1000})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return res
}

// runAllTiers runs the query on every tier and asserts identical results.
func runAllTiers(t *testing.T, cat *catalog.Catalog, src string) *ResultSet {
	t.Helper()
	var ref *ResultSet
	for _, tier := range []engine.Tier{engine.TierLiftoff, engine.TierTurbofan, engine.TierAdaptive} {
		got := runQuery(t, cat, src, tier)
		if ref == nil {
			ref = got
			continue
		}
		if fmtRows(got) != fmtRows(ref) {
			t.Fatalf("%v differs from liftoff:\n%s\nvs\n%s", tier, fmtRows(got), fmtRows(ref))
		}
	}
	return ref
}

func fmtRows(r *ResultSet) string {
	var sb strings.Builder
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteString("|")
			}
			sb.WriteString(v.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// sortedRows returns the formatted rows sorted, for order-insensitive
// comparison.
func sortedRows(r *ResultSet) []string {
	var out []string
	for _, row := range r.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func microCatalog(t *testing.T, n int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	r, err := cat.Create("r", []catalog.ColumnDef{
		{Name: "id", Type: types.TInt32},
		{Name: "x", Type: types.TInt32},
		{Name: "y", Type: types.TFloat64},
		{Name: "g", Type: types.TInt32},
		{Name: "d", Type: types.TDate},
		{Name: "price", Type: types.TDecimal(12, 2)},
		{Name: "name", Type: types.TChar(8)},
		{Name: "big", Type: types.TInt64},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	names := []string{"alpha", "beta", "gamma", "delta", "PROMO X", "PROMO Y", "misc"}
	for i := 0; i < n; i++ {
		r.AppendRow(
			types.NewInt32(int32(i)),
			types.NewInt32(int32(rng.Intn(1000))),
			types.NewFloat64(rng.Float64()),
			types.NewInt32(int32(rng.Intn(10))),
			types.NewDate(int32(10000+rng.Intn(1000))),
			types.NewDecimal(int64(rng.Intn(100000)), 12, 2),
			types.NewChar(names[rng.Intn(len(names))], 8),
			types.NewInt64(int64(rng.Intn(1000000))),
		)
	}
	s, err := cat.Create("s", []catalog.ColumnDef{
		{Name: "rid", Type: types.TInt32},
		{Name: "v", Type: types.TInt32},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n*3; i++ {
		s.AppendRow(types.NewInt32(int32(rng.Intn(n))), types.NewInt32(int32(rng.Intn(100))))
	}
	return cat
}

func TestSelectCount(t *testing.T) {
	cat := microCatalog(t, 5000)
	res := runAllTiers(t, cat, "SELECT COUNT(*) FROM r WHERE x < 500")
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// Host-side check.
	tbl, _ := cat.Table("r")
	xc, _ := tbl.Column("x")
	want := int64(0)
	for i := 0; i < tbl.Rows(); i++ {
		if xc.I32At(i) < 500 {
			want++
		}
	}
	if res.Rows[0][0].I != want {
		t.Errorf("count = %d, want %d", res.Rows[0][0].I, want)
	}
}

func TestProjectionArithmetic(t *testing.T) {
	cat := microCatalog(t, 100)
	res := runAllTiers(t, cat, "SELECT id, x + 1 AS x1, y * 2.0 AS y2 FROM r WHERE id < 5")
	if len(res.Rows) != 5 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	tbl, _ := cat.Table("r")
	xc, _ := tbl.Column("x")
	yc, _ := tbl.Column("y")
	for _, row := range res.Rows {
		id := int(row[0].I)
		if row[1].I != int64(xc.I32At(id))+1 {
			t.Errorf("row %d: x1 = %d", id, row[1].I)
		}
		if row[2].F != yc.F64At(id)*2 {
			t.Errorf("row %d: y2 = %v", id, row[2].F)
		}
	}
}

func TestGroupByCounts(t *testing.T) {
	cat := microCatalog(t, 5000)
	res := runAllTiers(t, cat, "SELECT g, COUNT(*), SUM(big), MIN(x), MAX(x) FROM r GROUP BY g")
	tbl, _ := cat.Table("r")
	gc, _ := tbl.Column("g")
	xc, _ := tbl.Column("x")
	bc, _ := tbl.Column("big")
	type agg struct {
		n        int64
		sum      int64
		min, max int32
	}
	want := map[int32]*agg{}
	for i := 0; i < tbl.Rows(); i++ {
		g := gc.I32At(i)
		a := want[g]
		if a == nil {
			a = &agg{min: xc.I32At(i), max: xc.I32At(i)}
			want[g] = a
		}
		a.n++
		a.sum += bc.I64At(i)
		if xc.I32At(i) < a.min {
			a.min = xc.I32At(i)
		}
		if xc.I32At(i) > a.max {
			a.max = xc.I32At(i)
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups: %d, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		a := want[int32(row[0].I)]
		if a == nil {
			t.Fatalf("unexpected group %d", row[0].I)
		}
		if row[1].I != a.n || row[2].I != a.sum || int32(row[3].I) != a.min || int32(row[4].I) != a.max {
			t.Errorf("group %d: got (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				row[0].I, row[1].I, row[2].I, row[3].I, row[4].I, a.n, a.sum, a.min, a.max)
		}
	}
}

func TestGroupByCharKeyAndAvg(t *testing.T) {
	cat := microCatalog(t, 3000)
	res := runAllTiers(t, cat, "SELECT name, COUNT(*), AVG(y) FROM r GROUP BY name")
	tbl, _ := cat.Table("r")
	nc, _ := tbl.Column("name")
	yc, _ := tbl.Column("y")
	cnt := map[string]int64{}
	sum := map[string]float64{}
	for i := 0; i < tbl.Rows(); i++ {
		cnt[nc.CharAt(i)]++
		sum[nc.CharAt(i)] += yc.F64At(i)
	}
	if len(res.Rows) != len(cnt) {
		t.Fatalf("groups: %d want %d", len(res.Rows), len(cnt))
	}
	for _, row := range res.Rows {
		name := row[0].S
		if row[1].I != cnt[name] {
			t.Errorf("count(%q) = %d, want %d", name, row[1].I, cnt[name])
		}
		avg := sum[name] / float64(cnt[name])
		if diff := row[2].F - avg; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("avg(%q) = %v, want %v", name, row[2].F, avg)
		}
	}
}

func TestGlobalAggregates(t *testing.T) {
	cat := microCatalog(t, 1000)
	res := runAllTiers(t, cat, "SELECT COUNT(*), SUM(price), MIN(d), MAX(d) FROM r")
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	tbl, _ := cat.Table("r")
	pc, _ := tbl.Column("price")
	dc, _ := tbl.Column("d")
	var sum int64
	minD, maxD := dc.I32At(0), dc.I32At(0)
	for i := 0; i < tbl.Rows(); i++ {
		sum += pc.I64At(i)
		if dc.I32At(i) < minD {
			minD = dc.I32At(i)
		}
		if dc.I32At(i) > maxD {
			maxD = dc.I32At(i)
		}
	}
	row := res.Rows[0]
	if row[0].I != 1000 || row[1].I != sum || int32(row[2].I) != minD || int32(row[3].I) != maxD {
		t.Errorf("got %v, want (1000, %d, %d, %d)", row, sum, minD, maxD)
	}
}

func TestHashJoin(t *testing.T) {
	cat := microCatalog(t, 500)
	res := runAllTiers(t, cat, "SELECT COUNT(*), SUM(s.v) FROM r, s WHERE r.id = s.rid AND r.x < 300")
	tbl, _ := cat.Table("r")
	st, _ := cat.Table("s")
	xc, _ := tbl.Column("x")
	rid, _ := st.Column("rid")
	vc, _ := st.Column("v")
	var n, sum int64
	for i := 0; i < st.Rows(); i++ {
		r := int(rid.I32At(i))
		if xc.I32At(r) < 300 {
			n++
			sum += int64(vc.I32At(i))
		}
	}
	row := res.Rows[0]
	if row[0].I != n || row[1].I != sum {
		t.Errorf("join: got (%d, %d), want (%d, %d)", row[0].I, row[1].I, n, sum)
	}
}

func TestJoinWithGroupBy(t *testing.T) {
	cat := microCatalog(t, 400)
	res := runAllTiers(t, cat, "SELECT r.g, COUNT(*) FROM r JOIN s ON r.id = s.rid GROUP BY r.g")
	tbl, _ := cat.Table("r")
	st, _ := cat.Table("s")
	gc, _ := tbl.Column("g")
	rid, _ := st.Column("rid")
	want := map[int32]int64{}
	for i := 0; i < st.Rows(); i++ {
		want[gc.I32At(int(rid.I32At(i)))]++
	}
	got := map[int32]int64{}
	for _, row := range res.Rows {
		got[int32(row[0].I)] = row[1].I
	}
	if len(got) != len(want) {
		t.Fatalf("groups: %d want %d", len(got), len(want))
	}
	for g, n := range want {
		if got[g] != n {
			t.Errorf("group %d: %d want %d", g, got[g], n)
		}
	}
}

func TestOrderByWithLimit(t *testing.T) {
	cat := microCatalog(t, 2000)
	res := runAllTiers(t, cat, "SELECT id, x FROM r WHERE g = 3 ORDER BY x DESC, id ASC LIMIT 10")
	if len(res.Rows) > 10 {
		t.Fatalf("limit violated: %d rows", len(res.Rows))
	}
	// Verify against host-side sort.
	tbl, _ := cat.Table("r")
	gc, _ := tbl.Column("g")
	xc, _ := tbl.Column("x")
	type pair struct{ id, x int32 }
	var all []pair
	for i := 0; i < tbl.Rows(); i++ {
		if gc.I32At(i) == 3 {
			all = append(all, pair{int32(i), xc.I32At(i)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].x != all[j].x {
			return all[i].x > all[j].x
		}
		return all[i].id < all[j].id
	})
	for i, row := range res.Rows {
		if int32(row[0].I) != all[i].id || int32(row[1].I) != all[i].x {
			t.Errorf("row %d: got (%d,%d), want (%d,%d)", i, row[0].I, row[1].I, all[i].id, all[i].x)
		}
	}
}

func TestOrderByCharAndFloat(t *testing.T) {
	cat := microCatalog(t, 300)
	res := runAllTiers(t, cat, "SELECT name, y FROM r WHERE id < 50 ORDER BY name ASC, y DESC")
	if len(res.Rows) != 50 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[0].S > b[0].S {
			t.Fatalf("name order violated at %d: %q > %q", i, a[0].S, b[0].S)
		}
		if a[0].S == b[0].S && a[1].F < b[1].F {
			t.Fatalf("y order violated at %d", i)
		}
	}
}

func TestLikePredicates(t *testing.T) {
	cat := microCatalog(t, 1000)
	tbl, _ := cat.Table("r")
	nc, _ := tbl.Column("name")
	count := func(pred func(string) bool) int64 {
		var n int64
		for i := 0; i < tbl.Rows(); i++ {
			if pred(nc.CharAt(i)) {
				n++
			}
		}
		return n
	}
	cases := []struct {
		pat  string
		want int64
	}{
		{"PROMO%", count(func(s string) bool { return strings.HasPrefix(s, "PROMO") })},
		{"%a", count(func(s string) bool { return strings.HasSuffix(s, "a") })},
		{"%et%", count(func(s string) bool { return strings.Contains(s, "et") })},
		{"beta", count(func(s string) bool { return s == "beta" })},
		{"%l_a%", count(func(s string) bool {
			// l, any char, a in sequence
			for i := 0; i+3 <= len(s); i++ {
				if s[i] == 'l' && s[i+2] == 'a' {
					return true
				}
			}
			return false
		})},
	}
	for _, c := range cases {
		res := runAllTiers(t, cat, fmt.Sprintf("SELECT COUNT(*) FROM r WHERE name LIKE '%s'", c.pat))
		if res.Rows[0][0].I != c.want {
			t.Errorf("LIKE %q: got %d, want %d", c.pat, res.Rows[0][0].I, c.want)
		}
		resNot := runAllTiers(t, cat, fmt.Sprintf("SELECT COUNT(*) FROM r WHERE name NOT LIKE '%s'", c.pat))
		if resNot.Rows[0][0].I != int64(tbl.Rows())-c.want {
			t.Errorf("NOT LIKE %q: got %d, want %d", c.pat, resNot.Rows[0][0].I, int64(tbl.Rows())-c.want)
		}
	}
}

func TestCaseExpression(t *testing.T) {
	cat := microCatalog(t, 1000)
	res := runAllTiers(t, cat, `
SELECT SUM(CASE WHEN x < 500 THEN big ELSE 0 END), SUM(big) FROM r`)
	tbl, _ := cat.Table("r")
	xc, _ := tbl.Column("x")
	bc, _ := tbl.Column("big")
	var some, all int64
	for i := 0; i < tbl.Rows(); i++ {
		if xc.I32At(i) < 500 {
			some += bc.I64At(i)
		}
		all += bc.I64At(i)
	}
	row := res.Rows[0]
	if row[0].I != some || row[1].I != all {
		t.Errorf("case: got (%d,%d), want (%d,%d)", row[0].I, row[1].I, some, all)
	}
}

func TestDecimalArithmeticMatchesHost(t *testing.T) {
	cat := microCatalog(t, 1000)
	res := runAllTiers(t, cat, "SELECT SUM(price * (1 - 0.05)) FROM r")
	tbl, _ := cat.Table("r")
	pc, _ := tbl.Column("price")
	var want int64 // scale 4 after multiplication
	for i := 0; i < tbl.Rows(); i++ {
		want += pc.I64At(i) * 95 // price(s2) * 0.95(s2) → s4
	}
	if res.Rows[0][0].I != want {
		t.Errorf("decimal sum: got %d, want %d", res.Rows[0][0].I, want)
	}
	if res.Types[0].Scale != 4 {
		t.Errorf("result scale: %d", res.Types[0].Scale)
	}
}

func TestDatePredicateAndExtract(t *testing.T) {
	cat := microCatalog(t, 1000)
	res := runAllTiers(t, cat, "SELECT EXTRACT(YEAR FROM d), COUNT(*) FROM r WHERE d >= DATE '1997-06-01' GROUP BY EXTRACT(YEAR FROM d)")
	tbl, _ := cat.Table("r")
	dc, _ := tbl.Column("d")
	cut, _ := types.ParseDate("1997-06-01")
	want := map[int32]int64{}
	for i := 0; i < tbl.Rows(); i++ {
		if dc.I32At(i) >= cut {
			want[int32(types.ExtractYear(dc.I32At(i)))]++
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups: %d want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if want[int32(row[0].I)] != row[1].I {
			t.Errorf("year %d: %d want %d", row[0].I, row[1].I, want[int32(row[0].I)])
		}
	}
}

func TestBetweenAndIn(t *testing.T) {
	cat := microCatalog(t, 2000)
	res := runAllTiers(t, cat, "SELECT COUNT(*) FROM r WHERE x BETWEEN 100 AND 200 AND g IN (1, 3, 5)")
	tbl, _ := cat.Table("r")
	xc, _ := tbl.Column("x")
	gc, _ := tbl.Column("g")
	var want int64
	for i := 0; i < tbl.Rows(); i++ {
		x, g := xc.I32At(i), gc.I32At(i)
		if x >= 100 && x <= 200 && (g == 1 || g == 3 || g == 5) {
			want++
		}
	}
	if res.Rows[0][0].I != want {
		t.Errorf("got %d, want %d", res.Rows[0][0].I, want)
	}
}

func TestAdaptiveExecutionSwitchesTiers(t *testing.T) {
	cat := microCatalog(t, 200000)
	stmt, _ := sql.ParseSelect("SELECT COUNT(*) FROM r WHERE x < 500 AND y < 0.9")
	q, _ := sema.Analyze(stmt, cat)
	p, _ := plan.Build(q)
	cq, err := Compile(q, p)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierAdaptive}),
		ExecOptions{MorselRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatal("no result")
	}
	if stats.MorselsLiftoff+stats.MorselsTurbofan == 0 {
		t.Error("no morsel accounting")
	}
	// With tiny morsels on a large table, optimization should complete
	// mid-query and the tail must run on turbofan.
	if stats.MorselsTurbofan == 0 {
		t.Logf("warning: no turbofan morsels (%d liftoff) — background compile slower than query", stats.MorselsLiftoff)
	}
}

func TestResultFlushChunking(t *testing.T) {
	// More output rows than the result buffer holds forces mid-query
	// flush callbacks (§6.2). resultCapacityRows is 64K; use 100K rows.
	cat := catalog.New()
	tbl, _ := cat.Create("big", []catalog.ColumnDef{{Name: "v", Type: types.TInt32}})
	for i := 0; i < 100_000; i++ {
		tbl.AppendRow(types.NewInt32(int32(i)))
	}
	res := runQuery(t, cat, "SELECT v FROM big", engine.TierLiftoff)
	if len(res.Rows) != 100_000 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if int32(row[0].I) != int32(i) {
			t.Fatalf("row %d: %d", i, row[0].I)
		}
	}
}

func TestWATDumpContainsGeneratedLibrary(t *testing.T) {
	cat := microCatalog(t, 100)
	stmt, _ := sql.ParseSelect("SELECT name, COUNT(*) FROM r GROUP BY name ORDER BY name")
	q, _ := sema.Analyze(stmt, cat)
	p, _ := plan.Build(q)
	cq, err := Compile(q, p)
	if err != nil {
		t.Fatal(err)
	}
	wat := watOf(cq)
	for _, want := range []string{"$qsort_", "$isort_", "$grow_group", "$alloc", "$q_init", "$pipeline_0"} {
		if !strings.Contains(wat, want) {
			t.Errorf("WAT missing %s", want)
		}
	}
}

func watOf(cq *CompiledQuery) string {
	return wasmPrint(cq)
}
