package core

import (
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
	"wasmdb/internal/wasm"
)

// Ad-hoc generated hash tables (§4.3, §5): open addressing with linear
// probing over power-of-two capacities. Keys and payloads are stored inline
// in the entry, monomorphically laid out for the QEP's types; hashing and
// key comparison are emitted directly into the pipeline code — no
// type-agnostic interface, no comparison callbacks, no per-access function
// calls. A generated grow function doubles and rehashes when the table
// exceeds 75 % load.

// htEntryFlagSize reserves 8 bytes at the front of each entry for the
// occupancy flag so that 8-byte fields stay naturally aligned.
const htEntryFlagSize = 8

// htInfo describes one generated hash table.
type htInfo struct {
	name   string
	layout tupleLayout
	keys   []sema.Expr
	gBase  uint32
	gMask  uint32
	gCount uint32
	grow   *wasm.FuncBuilder
	// canonFloatKeys hashes Float64 keys through -0.0→+0.0 canonicalization
	// so every F64Eq-equal key lands in the same probe chain. Join tables set
	// it (the probe compares with F64Eq, so +0.0 and -0.0 must collide);
	// group tables keep raw-bit hashing, where ±0 forming two groups is the
	// established cross-backend behavior.
	canonFloatKeys bool
}

// keySrc supplies one key value in the current emission context: pushVal
// leaves the value (or CHAR pointer) on the stack.
type keySrc struct {
	t       types.Type
	pushVal func()
}

// newHashTable declares globals, the init step, and the grow function for a
// hash table whose entries contain the given fields (keys must be a prefix
// subset of fields by structural equality).
func (c *compiler) newHashTable(name string, fields []sema.Expr, keys []sema.Expr, initialCap uint32, canonFloatKeys bool) *htInfo {
	ht := &htInfo{
		name:           name,
		layout:         buildLayout(dedupExprs(fields), htEntryFlagSize),
		keys:           keys,
		gBase:          c.b.AddGlobal(wasm.I32, true, 0),
		gMask:          c.b.AddGlobal(wasm.I32, true, 0),
		gCount:         c.b.AddGlobal(wasm.I32, true, 0),
		canonFloatKeys: canonFloatKeys,
	}
	if initialCap < 64 {
		initialCap = 64
	}
	initialCap = pow2ceil(initialCap)
	// The init step bakes initialCap*stride into an i32 immediate; halve the
	// capacity until the product fits comfortably, so a huge cardinality
	// estimate can never wrap into a negative (or tiny) allocation. The table
	// still grows on demand.
	for initialCap > 64 && uint64(initialCap)*uint64(ht.layout.stride) > 1<<30 {
		initialCap >>= 1
	}

	// Init step: allocate the zeroed initial table.
	c.initSteps = append(c.initSteps, func(g *gen) {
		g.f.I32Const(int32(initialCap * ht.layout.stride))
		g.f.Call(c.allocFunc().Index)
		g.f.GlobalSet(ht.gBase)
		g.f.I32Const(int32(initialCap - 1))
		g.f.GlobalSet(ht.gMask)
		g.f.I32Const(0)
		g.f.GlobalSet(ht.gCount)
	})

	ht.grow = c.genGrowFunc(ht)
	return ht
}

func dedupExprs(in []sema.Expr) []sema.Expr {
	var out []sema.Expr
	for _, e := range in {
		dup := false
		for _, o := range out {
			if sema.Equal(o, e) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return out
}

func pow2ceil(v uint32) uint32 {
	// Saturate above 2^31: doubling past it would wrap p to zero and the
	// loop would never terminate.
	if v > 1<<31 {
		return 1 << 31
	}
	p := uint32(1)
	for p < v {
		p <<= 1
	}
	return p
}

// emitHash computes the hash of the key sources into an i64 local and
// returns it. Numeric keys are mixed with multiply-xorshift; CHAR keys are
// FNV-1a over the padding-stripped bytes, so equal logical strings of
// different declared widths hash identically.
func (g *gen) emitHash(keys []keySrc) wasm.Local {
	return g.emitHashCanon(keys, false)
}

// emitHashCanon is emitHash with optional Float64 canonicalization: when
// canonFloat is set, -0.0 hashes like +0.0 (join tables, where the probe's
// F64Eq treats them as equal and a hash mismatch would silently drop
// matching rows).
func (g *gen) emitHashCanon(keys []keySrc, canonFloat bool) wasm.Local {
	f := g.f
	h := f.AddLocal(wasm.I64)
	f.I64Const(-3750763034362895579) // FNV-1a 64 offset basis
	f.LocalSet(h)
	for _, k := range keys {
		switch k.t.Kind {
		case types.Char:
			ptr := f.AddLocal(wasm.I32)
			llen := f.AddLocal(wasm.I32)
			i := f.AddLocal(wasm.I32)
			k.pushVal()
			f.LocalSet(ptr)
			emitLogicalLen(f, ptr, llen, k.t.Length)
			f.I32Const(0)
			f.LocalSet(i)
			f.Block(wasm.BlockVoid)
			f.Loop(wasm.BlockVoid)
			f.LocalGet(i)
			f.LocalGet(llen)
			f.I32GeU()
			f.BrIf(1)
			// h = (h ^ byte) * prime
			f.LocalGet(h)
			f.LocalGet(ptr)
			f.LocalGet(i)
			f.I32Add()
			f.I32Load8U(0)
			f.Op(wasm.OpI64ExtendI32U)
			f.Op(wasm.OpI64Xor)
			f.I64Const(1099511628211)
			f.I64Mul()
			f.LocalSet(h)
			f.LocalGet(i)
			f.I32Const(1)
			f.I32Add()
			f.LocalSet(i)
			f.Br(0)
			f.End()
			f.End()
		default:
			f.LocalGet(h)
			k.pushVal()
			if canonFloat && k.t.Kind == types.Float64 {
				// v + 0.0 maps -0.0 to +0.0 and leaves every other value
				// (including NaN) alone — one branch-free instruction.
				f.F64Const(0)
				f.F64Add()
			}
			g.toI64Bits(k.t)
			f.Op(wasm.OpI64Xor)
			f.I64Const(-0x61c8864680b583eb) // golden-ratio multiplier
			f.I64Mul()
			f.LocalSet(h)
		}
	}
	// Final avalanche: h ^= h >> 29.
	f.LocalGet(h)
	f.LocalGet(h)
	f.I64Const(29)
	f.Op(wasm.OpI64ShrU)
	f.Op(wasm.OpI64Xor)
	f.LocalSet(h)
	return h
}

// toI64Bits converts the stack top of the given type to i64 bits.
func (g *gen) toI64Bits(t types.Type) {
	switch t.Kind {
	case types.Bool, types.Int32, types.Date:
		g.f.Op(wasm.OpI64ExtendI32S)
	case types.Int64, types.Decimal:
	case types.Float64:
		g.f.Op(wasm.OpI64ReinterpretF64)
	default:
		g.fail("cannot hash type %s", t)
	}
}

// emitSlotIndex computes (h & mask) as an i32 local from the i64 hash.
func (g *gen) emitSlotIndex(ht *htInfo, h wasm.Local) wasm.Local {
	f := g.f
	idx := f.AddLocal(wasm.I32)
	f.LocalGet(h)
	f.Op(wasm.OpI32WrapI64)
	f.GlobalGet(ht.gMask)
	f.I32And()
	f.LocalSet(idx)
	return idx
}

// emitEntryPtr computes base + idx*stride into a local.
func (g *gen) emitEntryPtr(ht *htInfo, idx wasm.Local, entry wasm.Local) {
	f := g.f
	f.GlobalGet(ht.gBase)
	f.LocalGet(idx)
	f.I32Const(int32(ht.layout.stride))
	f.I32Mul()
	f.I32Add()
	f.LocalSet(entry)
}

// loadField pushes the field's value (or CHAR pointer) from the entry at
// the pointer local.
func (g *gen) loadField(ptr wasm.Local, fld field) {
	f := g.f
	f.LocalGet(ptr)
	switch fld.t.Kind {
	case types.Bool:
		f.I32Load8U(fld.offset)
	case types.Int32, types.Date:
		f.I32Load(fld.offset)
	case types.Int64, types.Decimal:
		f.I64Load(fld.offset)
	case types.Float64:
		f.F64Load(fld.offset)
	case types.Char:
		if fld.offset != 0 {
			f.I32Const(int32(fld.offset))
			f.I32Add()
		}
	}
}

// storeFieldFromStack stores a value already on the stack into the entry
// field (numeric types only; CHAR uses copyCharField).
func (g *gen) storeFieldFromStack(ptr wasm.Local, fld field, pushVal func()) {
	f := g.f
	switch fld.t.Kind {
	case types.Bool:
		f.LocalGet(ptr)
		pushVal()
		f.I32Store8(fld.offset)
	case types.Int32, types.Date:
		f.LocalGet(ptr)
		pushVal()
		f.I32Store(fld.offset)
	case types.Int64, types.Decimal:
		f.LocalGet(ptr)
		pushVal()
		f.I64Store(fld.offset)
	case types.Float64:
		f.LocalGet(ptr)
		pushVal()
		f.F64Store(fld.offset)
	case types.Char:
		g.copyChar(ptr, fld.offset, pushVal, fld.t.Length)
	}
}

// copyChar copies a CHAR value (source pointer pushed by pushSrc) into
// dst+offset, width bytes, with a simple byte loop.
func (g *gen) copyChar(dst wasm.Local, offset uint32, pushSrc func(), width int) {
	f := g.f
	src := f.AddLocal(wasm.I32)
	i := f.AddLocal(wasm.I32)
	pushSrc()
	f.LocalSet(src)
	f.I32Const(0)
	f.LocalSet(i)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.I32Const(int32(width))
	f.I32GeU()
	f.BrIf(1)
	f.LocalGet(dst)
	f.LocalGet(i)
	f.I32Add()
	f.LocalGet(src)
	f.LocalGet(i)
	f.I32Add()
	f.I32Load8U(0)
	f.I32Store8(offset)
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
}

// emitKeysEqual pushes 1 if the probe keys equal the stored keys of the
// entry at the pointer local. Comparison code is fully inlined and
// monomorphic per key type.
func (g *gen) emitKeysEqual(ht *htInfo, probe []keySrc, entry wasm.Local) {
	f := g.f
	for i, k := range probe {
		fld, ok := ht.layout.find(ht.keys[i])
		if !ok {
			g.fail("hash table %s: key %s not in entry layout", ht.name, ht.keys[i])
			f.I32Const(0)
			return
		}
		switch k.t.Kind {
		case types.Char:
			if k.t.Length == fld.t.Length && k.t.Length <= 8 {
				// Fully inlined byte-wise equality for short fixed-width
				// keys (both sides share the same padding).
				ptr := f.AddLocal(wasm.I32)
				k.pushVal()
				f.LocalSet(ptr)
				for j := 0; j < k.t.Length; j++ {
					f.LocalGet(ptr)
					f.I32Load8U(uint32(j))
					g.loadField(entry, fld)
					f.I32Load8U(uint32(j))
					f.I32Eq()
					if j > 0 {
						f.I32And()
					}
				}
				break
			}
			cmp := g.c.strcmpFunc(k.t.Length, fld.t.Length)
			k.pushVal()
			g.loadField(entry, fld)
			f.Call(cmp.Index)
			f.I32Eqz()
		case types.Float64:
			k.pushVal()
			g.loadField(entry, fld)
			f.Op(wasm.OpF64Eq)
		case types.Int64, types.Decimal:
			k.pushVal()
			g.loadField(entry, fld)
			f.Op(wasm.OpI64Eq)
		default:
			k.pushVal()
			g.loadField(entry, fld)
			f.I32Eq()
		}
		if i > 0 {
			f.I32And()
		}
	}
	if len(probe) == 0 {
		f.I32Const(1)
	}
}

// genGrowFunc generates the doubling/rehash routine for a hash table.
func (c *compiler) genGrowFunc(ht *htInfo) *wasm.FuncBuilder {
	f := c.b.NewFunc("grow_"+ht.name, wasm.FuncType{})
	g := &gen{c: c, f: f}

	oldBase := f.AddLocal(wasm.I32)
	oldCap := f.AddLocal(wasm.I32)
	newBase := f.AddLocal(wasm.I32)
	newMask := f.AddLocal(wasm.I32)
	i := f.AddLocal(wasm.I32)
	entry := f.AddLocal(wasm.I32)
	ne := f.AddLocal(wasm.I32)
	j := f.AddLocal(wasm.I32)
	w := f.AddLocal(wasm.I32)

	stride := int32(ht.layout.stride)

	f.GlobalGet(ht.gBase)
	f.LocalSet(oldBase)
	f.GlobalGet(ht.gMask)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(oldCap)
	// newCap = oldCap*2; newMask = newCap-1
	f.LocalGet(oldCap)
	f.I32Const(1)
	f.Op(wasm.OpI32Shl)
	f.I32Const(int32(ht.layout.stride))
	f.I32Mul()
	f.Call(c.allocFunc().Index)
	f.LocalSet(newBase)
	f.LocalGet(oldCap)
	f.I32Const(1)
	f.Op(wasm.OpI32Shl)
	f.I32Const(1)
	f.I32Sub()
	f.LocalSet(newMask)

	// for i in 0..oldCap
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(oldCap)
	f.I32GeU()
	f.BrIf(1)
	// entry = oldBase + i*stride
	f.LocalGet(oldBase)
	f.LocalGet(i)
	f.I32Const(stride)
	f.I32Mul()
	f.I32Add()
	f.LocalSet(entry)
	// if filled
	f.LocalGet(entry)
	f.Emit(wasm.OpI32Load, 0, 2)
	f.If(wasm.BlockVoid)
	// rehash from stored keys
	var stored []keySrc
	for _, k := range ht.keys {
		fld, ok := ht.layout.find(k)
		if !ok {
			g.fail("grow: key not found")
			continue
		}
		kf := fld
		stored = append(stored, keySrc{t: kf.t, pushVal: func() { g.loadField(entry, kf) }})
	}
	h := g.emitHashCanon(stored, ht.canonFloatKeys)
	// j = h & newMask
	f.LocalGet(h)
	f.Op(wasm.OpI32WrapI64)
	f.LocalGet(newMask)
	f.I32And()
	f.LocalSet(j)
	// find first empty slot in new table
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(newBase)
	f.LocalGet(j)
	f.I32Const(stride)
	f.I32Mul()
	f.I32Add()
	f.LocalSet(ne)
	f.LocalGet(ne)
	f.Emit(wasm.OpI32Load, 0, 2)
	f.I32Eqz()
	f.BrIf(1)
	f.LocalGet(j)
	f.I32Const(1)
	f.I32Add()
	f.LocalGet(newMask)
	f.I32And()
	f.LocalSet(j)
	f.Br(0)
	f.End()
	f.End()
	// copy entry (stride is a multiple of 8): word loop
	f.I32Const(0)
	f.LocalSet(w)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(w)
	f.I32Const(stride)
	f.I32GeU()
	f.BrIf(1)
	f.LocalGet(ne)
	f.LocalGet(w)
	f.I32Add()
	f.LocalGet(entry)
	f.LocalGet(w)
	f.I32Add()
	f.I64Load(0)
	f.I64Store(0)
	f.LocalGet(w)
	f.I32Const(8)
	f.I32Add()
	f.LocalSet(w)
	f.Br(0)
	f.End()
	f.End()
	f.End() // if filled
	// i++
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()

	f.LocalGet(newBase)
	f.GlobalSet(ht.gBase)
	f.LocalGet(newMask)
	f.GlobalSet(ht.gMask)
	if g.err != nil {
		panic(g.err)
	}
	return f
}

// emitMaybeGrow emits the load-factor check and conditional grow call.
func (g *gen) emitMaybeGrow(ht *htInfo) {
	f := g.f
	f.GlobalGet(ht.gCount)
	f.I32Const(4)
	f.I32Mul()
	f.GlobalGet(ht.gMask)
	f.I32Const(1)
	f.I32Add()
	f.I32Const(3)
	f.I32Mul()
	f.I32GeU()
	f.If(wasm.BlockVoid)
	f.Call(ht.grow.Index)
	f.End()
}

// keySrcsFromEnv materializes key expressions into locals once and returns
// key sources reading those locals (so probe loops do not recompute keys).
func (g *gen) keySrcsFromEnv(e *env, keys []sema.Expr) []keySrc {
	f := g.f
	out := make([]keySrc, len(keys))
	for i, k := range keys {
		t := k.Type()
		l := f.AddLocal(wasmType(t))
		g.expr(e, k)
		f.LocalSet(l)
		lv := l
		out[i] = keySrc{t: t, pushVal: func() { f.LocalGet(lv) }}
	}
	return out
}
