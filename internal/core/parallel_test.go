package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/engine"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/workload"
)

// compileOn compiles src against cat.
func compileOn(t *testing.T, cat *catalog.Catalog, src string) (*CompiledQuery, *sema.Query) {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Compile(q, p)
	if err != nil {
		t.Fatal(err)
	}
	return cq, q
}

func parCatalog(t *testing.T, rows int) *catalog.Catalog {
	t.Helper()
	cat, err := workload.Catalog(workload.Spec{Name: "t", Rows: rows, IntCols: 2, FloatCols: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestClassifyParallel pins the serial-fallback matrix: every condition that
// forces serial execution must be named, and the mergeable shapes must be
// recognized.
func TestClassifyParallel(t *testing.T) {
	cat := parCatalog(t, 1000)
	agg, _ := compileOn(t, cat, "SELECT COUNT(*), SUM(i0), MIN(i1) FROM t WHERE i0 < 0")
	scan, _ := compileOn(t, cat, "SELECT i0, i1 FROM t WHERE i0 < 0")
	fagg, _ := compileOn(t, cat, "SELECT SUM(f0) FROM t")
	lim, _ := compileOn(t, cat, "SELECT i0 FROM t LIMIT 10")
	grp, _ := compileOn(t, cat, "SELECT i0, COUNT(*), SUM(i1), MIN(i1) FROM t GROUP BY i0")
	grpOrd, _ := compileOn(t, cat, "SELECT i0, COUNT(*) FROM t GROUP BY i0 ORDER BY i0")
	grpFKey, _ := compileOn(t, cat, "SELECT f0, COUNT(*) FROM t GROUP BY f0")
	grpFSum, _ := compileOn(t, cat, "SELECT i0, SUM(f0) FROM t GROUP BY i0")
	grpHav, _ := compileOn(t, cat, "SELECT i0, COUNT(*) FROM t GROUP BY i0 HAVING COUNT(*) > 1")
	srt, _ := compileOn(t, cat, "SELECT i0, f0 FROM t ORDER BY i0 DESC, f0")

	cases := []struct {
		name    string
		cq      *CompiledQuery
		opt     ExecOptions
		workers int
		limit   int64
		mode    parMode
		reason  string
	}{
		{"serial-request", agg, ExecOptions{}, 1, -1, parNone, ""},
		{"agg", agg, ExecOptions{}, 4, -1, parAgg, ""},
		{"scan", scan, ExecOptions{}, 4, -1, parScan, ""},
		{"chunked", agg, ExecOptions{ChunkRows: 65536}, 4, -1, parNone, fallbackChunked},
		{"fuel", agg, ExecOptions{Fuel: 1 << 40}, 4, -1, parNone, fallbackFuel},
		{"limit", lim, ExecOptions{}, 4, 10, parNone, fallbackLimit},
		{"float-sum", fagg, ExecOptions{}, 4, -1, parNone, fallbackFloatSum},
		{"group-by", grp, ExecOptions{}, 4, -1, parGroup, ""},
		{"group-order", grpOrd, ExecOptions{}, 4, -1, parGroup, ""},
		{"group-having", grpHav, ExecOptions{}, 4, -1, parGroup, ""},
		{"group-float-key", grpFKey, ExecOptions{}, 4, -1, parNone, fallbackFloatKey},
		{"group-float-sum", grpFSum, ExecOptions{}, 4, -1, parNone, fallbackFloatSum},
		{"sort", srt, ExecOptions{}, 4, -1, parSort, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mode, reason := classifyParallel(c.cq, c.opt, c.workers, c.limit)
			if mode != c.mode || reason != c.reason {
				t.Errorf("classifyParallel = (%v, %q), want (%v, %q)", mode, reason, c.mode, c.reason)
			}
		})
	}
}

// TestClassifyParallelJoin pins the classifier over join shapes: mergeable
// ad-hoc joins reach the matching parallel mode (parJoin for a bare join,
// parAgg/parGroup/parSort when the join feeds those tails), and LIMIT still
// forces serial unless a sort merge orders the rows first.
func TestClassifyParallelJoin(t *testing.T) {
	cat, err := workload.JoinPair(2000, 8000, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	join, _ := compileOn(t, cat, "SELECT build.pk, probe.payload FROM build, probe WHERE build.pk = probe.fk")
	joinAgg, _ := compileOn(t, cat, "SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk")
	joinGrp, _ := compileOn(t, cat, "SELECT build.nk, COUNT(*) FROM build, probe WHERE build.pk = probe.fk GROUP BY build.nk")
	joinSrt, _ := compileOn(t, cat, "SELECT build.pk, probe.payload FROM build, probe WHERE build.pk = probe.fk ORDER BY build.pk")
	joinLim, _ := compileOn(t, cat, "SELECT build.pk FROM build, probe WHERE build.pk = probe.fk LIMIT 5")
	joinSrtLim, _ := compileOn(t, cat, "SELECT build.pk FROM build, probe WHERE build.pk = probe.fk ORDER BY build.pk LIMIT 5")

	cases := []struct {
		name   string
		cq     *CompiledQuery
		limit  int64
		mode   parMode
		reason string
	}{
		{"join", join, -1, parJoin, ""},
		{"join-agg", joinAgg, -1, parAgg, ""},
		{"join-group", joinGrp, -1, parGroup, ""},
		{"join-sort", joinSrt, -1, parSort, ""},
		{"join-limit", joinLim, 5, parNone, fallbackLimit},
		// LIMIT over a merged sort is exact: the k-way merge orders tuples
		// before the limit applies, so parallelism stays on.
		{"join-sort-limit", joinSrtLim, 5, parSort, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mode, reason := classifyParallel(c.cq, ExecOptions{}, 4, c.limit)
			if mode != c.mode || reason != c.reason {
				t.Errorf("classifyParallel = (%v, %q), want (%v, %q)", mode, reason, c.mode, c.reason)
			}
		})
	}
}

// TestJoinInitialCap pins the degenerate-capacity fix: the join build table's
// initial capacity used to be computed as rows/2 with no floor, so an empty or
// single-row build produced a capacity-0 table. The estimate is now clamped to
// a sane power-of-two range.
func TestJoinInitialCap(t *testing.T) {
	cases := []struct {
		est  float64
		want uint32
	}{
		{0, 64},
		{1, 64},
		{-5, 64},
		{math.NaN(), 64},
		{127, 64},
		{129, 64},
		{257, 128},
		{300, 256},
		{1 << 21, 1 << 20},
		{math.Inf(1), 1 << 20},
	}
	for _, c := range cases {
		if got := joinInitialCap(c.est); got != c.want {
			t.Errorf("joinInitialCap(%v) = %d, want %d", c.est, got, c.want)
		}
	}
}

// TestPow2CeilSaturates pins the overflow guard: rounding a value above 2^31
// up to a power of two would otherwise loop forever (the doubling wraps to 0).
func TestPow2CeilSaturates(t *testing.T) {
	for _, v := range []uint32{1<<31 + 1, math.MaxUint32} {
		if got := pow2ceil(v); got != 1<<31 {
			t.Errorf("pow2ceil(%d) = %d, want saturation at 2^31", v, got)
		}
	}
}

// TestCombineAggUnknownFuncPanics pins the satellite fix: combineAgg used to
// silently return the first operand for an aggregate it had no rule for,
// dropping every other worker's partial state. It must fail loudly instead.
func TestCombineAggUnknownFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("combineAgg accepted an unknown aggregate function")
		}
	}()
	combineAgg(AggGlobal{Func: sema.AggFunc(127)}, 1, 2)
}

// TestParallelAggMatchesSerial checks the host-side merge pass: a keyless
// aggregation executed by 4 workers must produce the exact row serial
// execution does, including over an empty match set, and must report full
// parallel coverage in the stats.
func TestParallelAggMatchesSerial(t *testing.T) {
	cat := parCatalog(t, 100_000)
	for _, src := range []string{
		"SELECT COUNT(*), SUM(i0), MIN(i1), MAX(i1) FROM t WHERE i0 < 1000000",
		"SELECT COUNT(*), MIN(f0), MAX(f1) FROM t WHERE i1 > 0",
		// Zero matching rows: merged COUNT must be 0 and MIN/MAX fall back to
		// the zero-group convention.
		"SELECT COUNT(*), SUM(i0), MIN(i1) FROM t WHERE i0 < -2147483647",
	} {
		cq, q := compileOn(t, cat, src)
		eng := engine.New(engine.Config{Tier: engine.TierLiftoff})
		serial, _, err := Execute(cq, q, eng, ExecOptions{})
		if err != nil {
			t.Fatalf("serial %s: %v", src, err)
		}
		par, st, err := Execute(cq, q, eng, ExecOptions{Parallelism: 4, MorselRows: 4096})
		if err != nil {
			t.Fatalf("parallel %s: %v", src, err)
		}
		if got, want := fmt.Sprint(sortedRows(par)), fmt.Sprint(sortedRows(serial)); got != want {
			t.Errorf("%s: parallel %s != serial %s", src, got, want)
		}
		if st.Workers != 4 || st.PipelinesParallel != 1 || st.PipelinesSerial != 0 || st.SerialFallback != "" {
			t.Errorf("%s: stats = workers %d, parallel %d, serial %d, fallback %q",
				src, st.Workers, st.PipelinesParallel, st.PipelinesSerial, st.SerialFallback)
		}
	}
}

// grpCatalog generates a table with a bounded-cardinality group column g0
// next to the usual int and float columns.
func grpCatalog(t *testing.T, rows, distinct int) *catalog.Catalog {
	t.Helper()
	cat, err := workload.Catalog(workload.Spec{
		Name: "t", Rows: rows, IntCols: 2, FloatCols: 2,
		GroupCols: 1, GroupDistinct: distinct, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestParallelGroupMatchesSerial checks the group-merge barrier end to end:
// grouped aggregations executed by 4 workers must produce the same rows as
// serial execution — including HAVING, ORDER BY on top, and high-cardinality
// keys that force the merge table to grow — with full parallel-scan coverage
// and no recorded fallback.
func TestParallelGroupMatchesSerial(t *testing.T) {
	cat := grpCatalog(t, 100_000, 100)
	for _, c := range []struct {
		src     string
		ordered bool
	}{
		{"SELECT g0, COUNT(*), SUM(i0), MIN(i1), MAX(i1) FROM t GROUP BY g0", false},
		{"SELECT g0, COUNT(*) FROM t WHERE i0 > 0 GROUP BY g0", false},
		{"SELECT g0, MIN(f0), MAX(f1) FROM t GROUP BY g0", false},
		{"SELECT g0, SUM(i0), AVG(i1) FROM t GROUP BY g0 ORDER BY g0", true},
		{"SELECT g0, COUNT(*) FROM t GROUP BY g0 HAVING COUNT(*) > 1000 ORDER BY g0 DESC", true},
		// High-cardinality keys: ~100k groups, so worker tables grow and the
		// primary's merge path exercises emitMaybeGrow.
		{"SELECT i0, COUNT(*) FROM t GROUP BY i0", false},
	} {
		cq, q := compileOn(t, cat, c.src)
		eng := engine.New(engine.Config{Tier: engine.TierLiftoff})
		serial, _, err := Execute(cq, q, eng, ExecOptions{})
		if err != nil {
			t.Fatalf("serial %s: %v", c.src, err)
		}
		par, st, err := Execute(cq, q, eng, ExecOptions{Parallelism: 4, MorselRows: 4096})
		if err != nil {
			t.Fatalf("parallel %s: %v", c.src, err)
		}
		if c.ordered {
			if got, want := fmt.Sprint(par.Rows), fmt.Sprint(serial.Rows); got != want {
				t.Errorf("%s: parallel order differs from serial", c.src)
			}
		} else if got, want := fmt.Sprint(sortedRows(par)), fmt.Sprint(sortedRows(serial)); got != want {
			t.Errorf("%s: parallel %s != serial %s", c.src, got, want)
		}
		if st.Workers != 4 || st.PipelinesParallel != 1 || st.SerialFallback != "" {
			t.Errorf("%s: stats = workers %d, parallel %d, fallback %q; want 4/1/none",
				c.src, st.Workers, st.PipelinesParallel, st.SerialFallback)
		}
		if st.GroupsMerged == 0 {
			t.Errorf("%s: GroupsMerged = 0, want > 0", c.src)
		}
	}
}

// TestParallelSortMatchesSerial checks the sorted-run merge: ORDER BY over a
// scan executed by 4 workers must produce byte-identical row order to serial
// execution. Select lists are subsets of the sort keys so key-tie
// permutations (quicksort is unstable) cannot masquerade as order bugs.
func TestParallelSortMatchesSerial(t *testing.T) {
	cat := parCatalog(t, 100_000)
	for _, src := range []string{
		"SELECT i0 FROM t ORDER BY i0",
		"SELECT i0 FROM t WHERE i1 > 0 ORDER BY i0 DESC",
		"SELECT f0 FROM t ORDER BY f0",
		"SELECT i0, i1 FROM t ORDER BY i0, i1 DESC",
	} {
		cq, q := compileOn(t, cat, src)
		eng := engine.New(engine.Config{Tier: engine.TierLiftoff})
		serial, _, err := Execute(cq, q, eng, ExecOptions{})
		if err != nil {
			t.Fatalf("serial %s: %v", src, err)
		}
		par, st, err := Execute(cq, q, eng, ExecOptions{Parallelism: 4, MorselRows: 4096})
		if err != nil {
			t.Fatalf("parallel %s: %v", src, err)
		}
		if got, want := fmt.Sprint(par.Rows), fmt.Sprint(serial.Rows); got != want {
			t.Errorf("%s: parallel order differs from serial", src)
		}
		if st.Workers != 4 || st.PipelinesParallel != 1 || st.SerialFallback != "" {
			t.Errorf("%s: stats = workers %d, parallel %d, fallback %q; want 4/1/none",
				src, st.Workers, st.PipelinesParallel, st.SerialFallback)
		}
	}
}

// TestParallelGroupMergeFault injects a morsel failure into the q_group_merge
// loop itself (the scan is 10 morsels, so hit 11 is the first merge morsel):
// the barrier must surface the error and return no result — never a partially
// merged one.
func TestParallelGroupMergeFault(t *testing.T) {
	cat := grpCatalog(t, 10_000, 100)
	cq, q := compileOn(t, cat, "SELECT g0, COUNT(*), SUM(i0) FROM t GROUP BY g0")
	boom := errors.New("injected group-merge failure")
	faultpoint.Enable("core-morsel", faultpoint.AtHit(11, boom))
	defer faultpoint.Disable("core-morsel")
	res, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}),
		ExecOptions{Parallelism: 4, MorselRows: 1000})
	if !errors.Is(err, boom) {
		t.Fatalf("Execute returned %v, want injected merge failure", err)
	}
	if res != nil {
		t.Fatalf("Execute returned a result alongside the merge failure")
	}
}

// TestParallelGroupMergeEnginePanic arms the engine's call-panic fault at the
// first merge morsel: the engine guardrail converts the panic into a typed
// error and the query must fail cleanly rather than return merged-so-far
// groups.
func TestParallelGroupMergeEnginePanic(t *testing.T) {
	cat := grpCatalog(t, 10_000, 100)
	cq, q := compileOn(t, cat, "SELECT g0, COUNT(*), SUM(i0) FROM t GROUP BY g0")
	faultpoint.Enable("core-morsel", func(hit int) error {
		if hit == 11 {
			faultpoint.Enable("engine-call-panic", faultpoint.Always(errors.New("simulated engine bug")))
		}
		return nil
	})
	defer faultpoint.Disable("core-morsel")
	defer faultpoint.Disable("engine-call-panic")
	res, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}),
		ExecOptions{Parallelism: 4, MorselRows: 1000})
	if err == nil {
		t.Fatal("Execute succeeded with a panicking merge call")
	}
	if res != nil {
		t.Fatal("Execute returned a result alongside the engine panic")
	}
}

// TestParallelScanMatchesSerial checks the concatenation merge: a parallel
// filter+project must produce the same multiset of rows as serial execution
// (order may differ across workers).
func TestParallelScanMatchesSerial(t *testing.T) {
	cat := parCatalog(t, 100_000)
	src := "SELECT i0, i1, f0 FROM t WHERE i0 < 0"
	cq, q := compileOn(t, cat, src)
	eng := engine.New(engine.Config{Tier: engine.TierLiftoff})
	serial, _, err := Execute(cq, q, eng, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, st, err := Execute(cq, q, eng, ExecOptions{Parallelism: 4, MorselRows: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Rows) == 0 {
		t.Fatal("predicate selected no rows; test is vacuous")
	}
	a, b := sortedRows(serial), sortedRows(par)
	if len(a) != len(b) {
		t.Fatalf("parallel returned %d rows, serial %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row multiset differs at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if st.PipelinesParallel != 1 || st.SerialFallback != "" {
		t.Errorf("stats = %+v, want one parallel pipeline and no fallback", st)
	}
}

// TestParallelUnmergeableFallsBack checks that a pipeline whose state the
// host cannot merge still runs serially — correct results, recorded fallback.
// Library-style hash tables carry no dump/merge exports, so a library-HT join
// is the canonical unmergeable shape now that ad-hoc joins parallelize.
func TestParallelUnmergeableFallsBack(t *testing.T) {
	cat, err := workload.JoinPair(2000, 8000, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	src := "SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk"
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompileStyled(q, p, Style{LibraryHT: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Tier: engine.TierLiftoff})
	serial, _, err := Execute(cq, q, eng, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, st, err := Execute(cq, q, eng, ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sortedRows(par)) != fmt.Sprint(sortedRows(serial)) {
		t.Errorf("join under fallback disagrees with serial")
	}
	if st.SerialFallback != fallbackUnmergeable || st.PipelinesParallel != 0 || st.PipelinesSerial == 0 {
		t.Errorf("stats = workers %d, parallel %d, serial %d, fallback %q; want recorded unmergeable fallback",
			st.Workers, st.PipelinesParallel, st.PipelinesSerial, st.SerialFallback)
	}
}

// TestParallelJoinMatchesSerial checks the join build barrier: the build side
// is partitioned across workers, drained and appended into one table at the
// barrier, and the probe pipeline then runs embarrassingly parallel. Results
// must match serial execution exactly and the stats must show both pipelines
// parallel with the secondaries' partitions merged.
func TestParallelJoinMatchesSerial(t *testing.T) {
	cat, err := workload.JoinPair(2000, 8000, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Tier: engine.TierLiftoff})
	for _, src := range []string{
		// Keyless aggregate over a join: parAgg with a join barrier.
		"SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk",
		// Join feeding GROUP BY: join barrier composes with the group merge.
		"SELECT build.nk, COUNT(*) FROM build, probe WHERE build.pk = probe.fk GROUP BY build.nk",
		// Plain join scan: both pipelines parallel, concatenation merge.
		"SELECT build.pk, probe.payload FROM build, probe WHERE build.pk = probe.fk AND probe.fk < 500",
	} {
		cq, q := compileOn(t, cat, src)
		serial, _, err := Execute(cq, q, eng, ExecOptions{})
		if err != nil {
			t.Fatalf("%s: serial: %v", src, err)
		}
		par, st, err := Execute(cq, q, eng, ExecOptions{Parallelism: 4, MorselRows: 512})
		if err != nil {
			t.Fatalf("%s: parallel: %v", src, err)
		}
		a, b := sortedRows(serial), sortedRows(par)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("%s: parallel join disagrees with serial (%d vs %d rows)", src, len(b), len(a))
			continue
		}
		if st.SerialFallback != "" || st.PipelinesParallel < 2 {
			t.Errorf("%s: stats = parallel %d, serial %d, fallback %q; want both pipelines parallel",
				src, st.PipelinesParallel, st.PipelinesSerial, st.SerialFallback)
		}
		if st.JoinPartitionsMerged == 0 {
			t.Errorf("%s: JoinPartitionsMerged = 0, want secondaries' partitions merged", src)
		}
	}
}

// TestParallelJoinMergeFault injects a failure into the morsel-wise merge of
// drained build partitions; the query must fail with the injected error and
// never return a partial result.
func TestParallelJoinMergeFault(t *testing.T) {
	cat, err := workload.JoinPair(10_000, 20_000, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	cq, q := compileOn(t, cat, "SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk")
	boom := errors.New("injected join-merge failure")
	// With 1000-row morsels the build pipeline dispatches ~10 morsels per
	// worker wave; hit 11 lands inside or after the merge drain.
	faultpoint.Enable("core-morsel", faultpoint.AtHit(11, boom))
	defer faultpoint.Disable("core-morsel")
	res, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}),
		ExecOptions{Parallelism: 4, MorselRows: 1000})
	if !errors.Is(err, boom) {
		t.Fatalf("Execute returned %v, want injected failure", err)
	}
	if res != nil {
		t.Fatal("Execute returned a partial result alongside the error")
	}
}

// TestParallelJoinMergeEnginePanic arms the engine's call-panic fault once the
// build pipeline's morsels are done, so the panic lands in a merge or probe
// call: the guardrail must convert it into a typed error with no partial
// result.
func TestParallelJoinMergeEnginePanic(t *testing.T) {
	cat, err := workload.JoinPair(10_000, 20_000, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	cq, q := compileOn(t, cat, "SELECT COUNT(*) FROM build, probe WHERE build.pk = probe.fk")
	faultpoint.Enable("core-morsel", func(hit int) error {
		if hit == 11 {
			faultpoint.Enable("engine-call-panic", faultpoint.Always(errors.New("simulated engine bug")))
		}
		return nil
	})
	defer faultpoint.Disable("core-morsel")
	defer faultpoint.Disable("engine-call-panic")
	res, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}),
		ExecOptions{Parallelism: 4, MorselRows: 1000})
	if err == nil || res != nil {
		t.Fatalf("Execute = (%v, %v), want typed engine error and nil result", res, err)
	}
}

// TestParallelFaultInjection injects a morsel failure while 4 workers are
// dispatching; the first failure must stop the pool and surface. Run under
// -race this also exercises the dispatch counter and stop flag.
func TestParallelFaultInjection(t *testing.T) {
	cat := parCatalog(t, 200_000)
	cq, q := compileOn(t, cat, "SELECT COUNT(*), SUM(i0) FROM t WHERE i0 < 1000000")
	boom := errors.New("injected parallel morsel failure")
	faultpoint.Enable("core-morsel", faultpoint.AtHit(5, boom))
	defer faultpoint.Disable("core-morsel")
	_, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}),
		ExecOptions{Parallelism: 4, MorselRows: 4096})
	if !errors.Is(err, boom) {
		t.Fatalf("Execute returned %v, want injected failure", err)
	}
}

// TestParallelCancellationMidPipeline cancels the context while the pool is
// mid-pipeline; every worker must stop and the query must report the
// context's error.
func TestParallelCancellationMidPipeline(t *testing.T) {
	cat := parCatalog(t, 200_000)
	cq, q := compileOn(t, cat, "SELECT COUNT(*), SUM(i0) FROM t WHERE i0 < 1000000")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultpoint.Enable("core-morsel", func(hit int) error {
		if hit == 3 {
			cancel()
		}
		return nil
	})
	defer faultpoint.Disable("core-morsel")
	_, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}),
		ExecOptions{Parallelism: 4, MorselRows: 4096, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute returned %v, want context.Canceled", err)
	}
}

// TestFuelUsedContract pins the ExecStats.FuelUsed contract: consumption is
// reported against a user budget, and the implicit metering a cancellable
// context arms is never reported as consumption.
func TestFuelUsedContract(t *testing.T) {
	cat := parCatalog(t, 50_000)
	cq, q := compileOn(t, cat, "SELECT COUNT(*) FROM t WHERE i0 < 1000000")
	eng := engine.New(engine.Config{Tier: engine.TierLiftoff})

	// User budget: ample fuel, consumption must be positive and bounded.
	budget := int64(1) << 40
	_, st, err := Execute(cq, q, eng, ExecOptions{Fuel: budget})
	if err != nil {
		t.Fatal(err)
	}
	if st.FuelUsed <= 0 || st.FuelUsed >= budget {
		t.Errorf("FuelUsed = %d with budget %d, want 0 < used < budget", st.FuelUsed, budget)
	}

	// Cancellable context, no user budget: metering is armed internally (the
	// watchdog needs interruption points) but FuelUsed must stay 0.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, st, err = Execute(cq, q, eng, ExecOptions{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if st.FuelUsed != 0 {
		t.Errorf("FuelUsed = %d under implicit metering, want 0", st.FuelUsed)
	}

	// A user fuel budget also forces serial execution (one sequential
	// account), recorded as such.
	_, st, err = Execute(cq, q, eng, ExecOptions{Fuel: budget, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.SerialFallback != fallbackFuel || st.Workers != 1 {
		t.Errorf("fuel+parallelism: workers %d fallback %q, want serial with %q",
			st.Workers, st.SerialFallback, fallbackFuel)
	}
}

// TestLimitShortCircuit checks the host-side LIMIT guard: once the drain has
// LIMIT rows the remaining morsels must be skipped, observable as a morsel
// count far below the scan's total.
func TestLimitShortCircuit(t *testing.T) {
	cat := parCatalog(t, 200_000)
	cq, q := compileOn(t, cat, "SELECT i0 FROM t LIMIT 5")
	faultpoint.Enable("core-morsel", func(int) error { return nil })
	defer faultpoint.Disable("core-morsel")
	res, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}),
		ExecOptions{MorselRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("LIMIT 5 returned %d rows", len(res.Rows))
	}
	// 200k rows at 1k per morsel is 200 morsels; the first already satisfies
	// the limit.
	if hits := faultpoint.Hits("core-morsel"); hits > 3 {
		t.Errorf("scan ran %d morsels after the limit was satisfied", hits)
	}

	// LIMIT 0 must decode nothing at all.
	cq0, q0 := compileOn(t, cat, "SELECT i0 FROM t LIMIT 0")
	res0, _, err := Execute(cq0, q0, engine.New(engine.Config{Tier: engine.TierLiftoff}), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res0.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res0.Rows))
	}
}
