package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"wasmdb/internal/engine"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/workload"
)

func compileScanQuery(t *testing.T) (*CompiledQuery, *sema.Query) {
	t.Helper()
	cat, err := workload.Catalog(workload.Spec{Name: "t", Rows: 200_000, IntCols: 2, FloatCols: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sql.ParseSelect("SELECT COUNT(*), SUM(i1) FROM t WHERE i0 < 1000000")
	if err != nil {
		t.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Compile(q, p)
	if err != nil {
		t.Fatal(err)
	}
	return cq, q
}

func TestMorselFaultInjection(t *testing.T) {
	cq, q := compileScanQuery(t)
	boom := errors.New("injected morsel failure")
	faultpoint.Enable("core-morsel", faultpoint.AtHit(3, boom))
	defer faultpoint.Disable("core-morsel")
	_, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}), ExecOptions{MorselRows: 10_000})
	if !errors.Is(err, boom) {
		t.Fatalf("Execute returned %v, want injected failure", err)
	}
	if hits := faultpoint.Hits("core-morsel"); hits != 3 {
		t.Errorf("query stopped after %d morsels, want 3", hits)
	}
}

func TestRewireFaultInjection(t *testing.T) {
	cq, q := compileScanQuery(t)
	boom := errors.New("injected rewire failure")
	faultpoint.Enable("core-rewire", faultpoint.AtHit(2, boom))
	defer faultpoint.Disable("core-rewire")
	_, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}), ExecOptions{ChunkRows: 65536})
	if !errors.Is(err, boom) {
		t.Fatalf("Execute returned %v, want injected failure", err)
	}
	if !strings.Contains(err.Error(), "rewiring") {
		t.Errorf("error %q does not identify the rewiring phase", err)
	}
}

func TestContextCanceledBetweenMorsels(t *testing.T) {
	cq, q := compileScanQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after the second morsel; the check between morsels must stop
	// the scan without an interrupt ever firing mid-call.
	faultpoint.Enable("core-morsel", func(hit int) error {
		if hit == 2 {
			cancel()
		}
		return nil
	})
	defer faultpoint.Disable("core-morsel")
	_, _, err := Execute(cq, q, engine.New(engine.Config{Tier: engine.TierLiftoff}),
		ExecOptions{MorselRows: 10_000, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute returned %v, want context.Canceled", err)
	}
	if hits := faultpoint.Hits("core-morsel"); hits > 3 {
		t.Errorf("scan ran %d morsels after cancellation", hits)
	}
}
