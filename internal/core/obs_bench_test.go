package core

import (
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/engine"
	"wasmdb/internal/obs"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/types"
)

// benchmarkMorselDispatch measures executor overhead at a deliberately tiny
// morsel size (many dispatches per query) so the per-morsel cost of the
// tracer dominates any difference. Compare Untraced vs Traced to verify the
// disabled-tracer contract: tracing off must cost only a pointer test on
// the dispatch path (well under the 2% budget).
func benchmarkMorselDispatch(b *testing.B, mkTrace func() *obs.Trace) {
	cat := catalog.New()
	tbl, err := cat.Create("r", []catalog.ColumnDef{{Name: "x", Type: types.TInt32}})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		tbl.AppendRow(types.NewInt32(int32(i % 1000)))
	}
	stmt, err := sql.ParseSelect("SELECT COUNT(*) FROM r WHERE x < 500")
	if err != nil {
		b.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		b.Fatal(err)
	}
	cq, err := Compile(q, p)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(engine.Config{Tier: engine.TierLiftoff})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Execute(cq, q, eng, ExecOptions{MorselRows: 512, Trace: mkTrace()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMorselDispatchUntraced(b *testing.B) {
	benchmarkMorselDispatch(b, func() *obs.Trace { return nil })
}

func BenchmarkMorselDispatchTraced(b *testing.B) {
	benchmarkMorselDispatch(b, obs.NewTrace)
}

func BenchmarkMorselDispatchDetail(b *testing.B) {
	benchmarkMorselDispatch(b, func() *obs.Trace {
		tr := obs.NewTrace()
		tr.Detail = true
		return tr
	})
}
