package core

import (
	"fmt"

	"wasmdb/internal/sema"
	"wasmdb/internal/wasm"
)

// like compiles a LIKE predicate. Every pattern becomes a monomorphic
// generated matcher specialized to the pattern text and the operand's CHAR
// width — ad-hoc library generation in miniature (§5): no generic regex
// machinery exists at runtime, only the loop this pattern needs.
func (g *gen) like(e *env, x *sema.Like) {
	w := x.E.Type().Length
	fn := g.c.likeFunc(x, w)
	g.expr(e, x.E)
	g.f.Call(fn.Index)
	if x.Not {
		g.f.I32Eqz()
	}
}

func (c *compiler) likeFunc(x *sema.Like, w int) *wasm.FuncBuilder {
	key := fmt.Sprintf("%d|%d|%s", x.Kind, w, x.Pattern)
	if f, ok := c.likes[key]; ok {
		return f
	}
	f := c.b.NewFunc(fmt.Sprintf("like_%d", len(c.likes)),
		wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	c.likes[key] = f

	switch x.Kind {
	case sema.LikeExact:
		c.emitLikeExact(f, x.Needle, w)
	case sema.LikePrefix:
		c.emitLikePrefix(f, x.Needle, w)
	case sema.LikeSuffix:
		c.emitLikeSuffix(f, x.Needle, w)
	case sema.LikeContains:
		c.emitLikeContains(f, x.Needle, w)
	default:
		c.emitLikeComplex(f, x.Pattern, w)
	}
	return f
}

// emitMemEqConst emits code pushing 1 if the w bytes at (ptr + off) equal
// the constant needle, where off is an i32 local; needle address is baked.
func (c *compiler) emitMemEqConst(f *wasm.FuncBuilder, ptr wasm.Local, offset wasm.Local, needle string) {
	addr := c.internString(needle)
	i := f.AddLocal(wasm.I32)
	f.I32Const(0)
	f.LocalSet(i)
	f.Block(wasm.BlockOf(wasm.I32))
	f.Loop(wasm.BlockOf(wasm.I32))
	// if i >= len: all equal
	f.I32Const(1)
	f.LocalGet(i)
	f.I32Const(int32(len(needle)))
	f.I32GeU()
	f.BrIf(1)
	f.Drop()
	// if p[off+i] != needle[i]: 0
	f.I32Const(0)
	f.LocalGet(ptr)
	f.LocalGet(offset)
	f.I32Add()
	f.LocalGet(i)
	f.I32Add()
	f.I32Load8U(0)
	f.LocalGet(i)
	f.I32Load8U(addr)
	f.I32Ne()
	f.BrIf(1)
	f.Drop()
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
}

func (c *compiler) emitLikeExact(f *wasm.FuncBuilder, needle string, w int) {
	if len(needle) > w {
		f.I32Const(0)
		return
	}
	llen := f.AddLocal(wasm.I32)
	zero := f.AddLocal(wasm.I32)
	emitLogicalLen(f, f.Param(0), llen, w)
	// llen == len(needle) && memeq
	f.LocalGet(llen)
	f.I32Const(int32(len(needle)))
	f.I32Eq()
	f.If(wasm.BlockOf(wasm.I32))
	c.emitMemEqConst(f, f.Param(0), zero, needle)
	f.Else()
	f.I32Const(0)
	f.End()
}

func (c *compiler) emitLikePrefix(f *wasm.FuncBuilder, needle string, w int) {
	if len(needle) > w {
		f.I32Const(0)
		return
	}
	zero := f.AddLocal(wasm.I32)
	c.emitMemEqConst(f, f.Param(0), zero, needle)
}

func (c *compiler) emitLikeSuffix(f *wasm.FuncBuilder, needle string, w int) {
	if len(needle) > w {
		f.I32Const(0)
		return
	}
	llen := f.AddLocal(wasm.I32)
	off := f.AddLocal(wasm.I32)
	emitLogicalLen(f, f.Param(0), llen, w)
	// llen >= len && memeq at llen-len
	f.LocalGet(llen)
	f.I32Const(int32(len(needle)))
	f.I32GeU()
	f.If(wasm.BlockOf(wasm.I32))
	f.LocalGet(llen)
	f.I32Const(int32(len(needle)))
	f.I32Sub()
	f.LocalSet(off)
	c.emitMemEqConst(f, f.Param(0), off, needle)
	f.Else()
	f.I32Const(0)
	f.End()
}

func (c *compiler) emitLikeContains(f *wasm.FuncBuilder, needle string, w int) {
	if len(needle) > w {
		f.I32Const(0)
		return
	}
	llen := f.AddLocal(wasm.I32)
	off := f.AddLocal(wasm.I32)
	emitLogicalLen(f, f.Param(0), llen, w)
	f.I32Const(0)
	f.LocalSet(off)
	f.Block(wasm.BlockOf(wasm.I32))
	f.Loop(wasm.BlockOf(wasm.I32))
	// if off + len > llen: no match
	f.I32Const(0)
	f.LocalGet(off)
	f.I32Const(int32(len(needle)))
	f.I32Add()
	f.LocalGet(llen)
	f.Op(wasm.OpI32GtU)
	f.BrIf(1)
	f.Drop()
	// if memeq at off: match
	f.I32Const(1)
	c.emitMemEqConst(f, f.Param(0), off, needle)
	f.BrIf(1)
	f.Drop()
	f.LocalGet(off)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(off)
	f.Br(0)
	f.End()
	f.End()
}

// emitLikeComplex generates the classic iterative glob matcher with
// single-star backtracking over the logical string, with the pattern baked
// into the constant region.
func (c *compiler) emitLikeComplex(f *wasm.FuncBuilder, pattern string, w int) {
	pAddr := c.internString(pattern)
	plen := int32(len(pattern))

	llen := f.AddLocal(wasm.I32)
	s := f.AddLocal(wasm.I32)
	p := f.AddLocal(wasm.I32)
	star := f.AddLocal(wasm.I32)
	ss := f.AddLocal(wasm.I32)
	pc := f.AddLocal(wasm.I32) // current pattern byte

	emitLogicalLen(f, f.Param(0), llen, w)
	f.I32Const(-1)
	f.LocalSet(star)

	f.Block(wasm.BlockOf(wasm.I32)) // result
	f.Loop(wasm.BlockOf(wasm.I32))
	// while s < llen
	f.LocalGet(s)
	f.LocalGet(llen)
	f.I32GeU()
	f.If(wasm.BlockVoid)
	// Consume trailing %'s: while p < plen && pat[p] == '%': p++
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(p)
	f.I32Const(plen)
	f.I32GeU()
	f.BrIf(1)
	f.LocalGet(p)
	f.I32Load8U(pAddr)
	f.I32Const('%')
	f.I32Ne()
	f.BrIf(1)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Br(0)
	f.End()
	f.End()
	// return p == plen
	f.LocalGet(p)
	f.I32Const(plen)
	f.I32Eq()
	f.Br(2) // to result block
	f.End()

	// pc = p < plen ? pat[p] : 0
	f.LocalGet(p)
	f.I32Const(plen)
	f.Op(wasm.OpI32LtU)
	f.If(wasm.BlockOf(wasm.I32))
	f.LocalGet(p)
	f.I32Load8U(pAddr)
	f.Else()
	f.I32Const(0)
	f.End()
	f.LocalSet(pc)

	// if pc == '%': star = p, ss = s, p++
	f.LocalGet(pc)
	f.I32Const('%')
	f.I32Eq()
	f.If(wasm.BlockVoid)
	f.LocalGet(p)
	f.LocalSet(star)
	f.LocalGet(s)
	f.LocalSet(ss)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Else()
	// else if pc == '_' or pc == str[s]: s++, p++
	f.LocalGet(pc)
	f.I32Const('_')
	f.I32Eq()
	f.LocalGet(pc)
	f.LocalGet(f.Param(0))
	f.LocalGet(s)
	f.I32Add()
	f.I32Load8U(0)
	f.I32Eq()
	f.I32Or()
	f.If(wasm.BlockVoid)
	f.LocalGet(s)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(s)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Else()
	// else if star >= 0: p = star+1, ss++, s = ss
	f.LocalGet(star)
	f.I32Const(0)
	f.Op(wasm.OpI32GeS)
	f.If(wasm.BlockVoid)
	f.LocalGet(star)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.LocalGet(ss)
	f.I32Const(1)
	f.I32Add()
	f.LocalTee(ss)
	f.LocalSet(s)
	f.Else()
	// else: no match
	f.I32Const(0)
	f.Br(4)
	f.End()
	f.End()
	f.End()
	f.Br(0)
	f.End() // loop
	f.End() // result block
}

// emitLogicalLen emits code computing the logical (padding-stripped)
// length of the CHAR value at the pointer in ptr, storing it into llen.
func emitLogicalLen(f *wasm.FuncBuilder, ptr wasm.Local, llen wasm.Local, w int) {
	f.I32Const(int32(w))
	f.LocalSet(llen)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(llen)
	f.I32Eqz()
	f.BrIf(1)
	f.LocalGet(ptr)
	f.LocalGet(llen)
	f.I32Add()
	f.I32Const(1)
	f.I32Sub()
	f.I32Load8U(0)
	f.I32Const(32)
	f.I32Ne()
	f.BrIf(1)
	f.LocalGet(llen)
	f.I32Const(1)
	f.I32Sub()
	f.LocalSet(llen)
	f.Br(0)
	f.End()
	f.End()
}
