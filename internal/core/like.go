package core

import (
	"fmt"

	"wasmdb/internal/sema"
	"wasmdb/internal/wasm"
)

// like compiles a LIKE predicate. Every pattern becomes a monomorphic
// generated matcher specialized to the pattern class, the needle length, and
// the operand's CHAR width — ad-hoc library generation in miniature (§5): no
// generic regex machinery exists at runtime, only the loop this pattern
// needs. A parameterized pattern (Like.PIdx ≥ 0) reads its needle bytes from
// the parameter region instead of the constant region; the matcher's shape is
// unchanged, so queries differing only in the pattern text share a module.
func (g *gen) like(e *env, x *sema.Like) {
	w := x.E.Type().Length
	fn := g.c.likeFunc(x, w)
	g.expr(e, x.E)
	g.f.Call(fn.Index)
	if x.Not {
		g.f.I32Eqz()
	}
}

func (c *compiler) likeFunc(x *sema.Like, w int) *wasm.FuncBuilder {
	needle := x.Needle
	if x.Kind == sema.LikeComplex {
		needle = x.Pattern
	}
	var key string
	var addr uint32
	if x.PIdx >= 0 {
		slot, ok := c.paramSlots[x.PIdx]
		if !ok {
			if c.err == nil {
				c.err = fmt.Errorf("core: LIKE parameter ?%d has no slot", x.PIdx)
			}
			stub := c.b.NewFunc(fmt.Sprintf("like_err_%d", len(c.likes)),
				wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
			stub.I32Const(0)
			return stub
		}
		addr = uint32(paramBase) + slot.Off
		// Each parameter slot holds exactly one needle, so the slot index
		// identifies the matcher.
		key = fmt.Sprintf("%d|%d|p%d", x.Kind, w, x.PIdx)
	} else {
		addr = c.internString(needle)
		key = fmt.Sprintf("%d|%d|%s", x.Kind, w, x.Pattern)
	}
	if f, ok := c.likes[key]; ok {
		return f
	}
	f := c.b.NewFunc(fmt.Sprintf("like_%d", len(c.likes)),
		wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	c.likes[key] = f

	switch x.Kind {
	case sema.LikeExact:
		c.emitLikeExact(f, addr, len(needle), w)
	case sema.LikePrefix:
		c.emitLikePrefix(f, addr, len(needle), w)
	case sema.LikeSuffix:
		c.emitLikeSuffix(f, addr, len(needle), w)
	case sema.LikeContains:
		c.emitLikeContains(f, addr, len(needle), w)
	default:
		c.emitLikeComplex(f, addr, len(needle), w)
	}
	return f
}

// emitMemEq emits code pushing 1 if the nlen bytes at (ptr + off) equal the
// nlen bytes at the fixed address addr (constant region for baked needles,
// parameter region for hoisted ones), where off is an i32 local.
func (c *compiler) emitMemEq(f *wasm.FuncBuilder, ptr wasm.Local, offset wasm.Local, addr uint32, nlen int) {
	i := f.AddLocal(wasm.I32)
	f.I32Const(0)
	f.LocalSet(i)
	f.Block(wasm.BlockOf(wasm.I32))
	f.Loop(wasm.BlockOf(wasm.I32))
	// if i >= len: all equal
	f.I32Const(1)
	f.LocalGet(i)
	f.I32Const(int32(nlen))
	f.I32GeU()
	f.BrIf(1)
	f.Drop()
	// if p[off+i] != needle[i]: 0
	f.I32Const(0)
	f.LocalGet(ptr)
	f.LocalGet(offset)
	f.I32Add()
	f.LocalGet(i)
	f.I32Add()
	f.I32Load8U(0)
	f.LocalGet(i)
	f.I32Load8U(addr)
	f.I32Ne()
	f.BrIf(1)
	f.Drop()
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
}

func (c *compiler) emitLikeExact(f *wasm.FuncBuilder, addr uint32, nlen, w int) {
	if nlen > w {
		f.I32Const(0)
		return
	}
	llen := f.AddLocal(wasm.I32)
	zero := f.AddLocal(wasm.I32)
	emitLogicalLen(f, f.Param(0), llen, w)
	// llen == len(needle) && memeq
	f.LocalGet(llen)
	f.I32Const(int32(nlen))
	f.I32Eq()
	f.If(wasm.BlockOf(wasm.I32))
	c.emitMemEq(f, f.Param(0), zero, addr, nlen)
	f.Else()
	f.I32Const(0)
	f.End()
}

func (c *compiler) emitLikePrefix(f *wasm.FuncBuilder, addr uint32, nlen, w int) {
	if nlen > w {
		f.I32Const(0)
		return
	}
	zero := f.AddLocal(wasm.I32)
	c.emitMemEq(f, f.Param(0), zero, addr, nlen)
}

func (c *compiler) emitLikeSuffix(f *wasm.FuncBuilder, addr uint32, nlen, w int) {
	if nlen > w {
		f.I32Const(0)
		return
	}
	llen := f.AddLocal(wasm.I32)
	off := f.AddLocal(wasm.I32)
	emitLogicalLen(f, f.Param(0), llen, w)
	// llen >= len && memeq at llen-len
	f.LocalGet(llen)
	f.I32Const(int32(nlen))
	f.I32GeU()
	f.If(wasm.BlockOf(wasm.I32))
	f.LocalGet(llen)
	f.I32Const(int32(nlen))
	f.I32Sub()
	f.LocalSet(off)
	c.emitMemEq(f, f.Param(0), off, addr, nlen)
	f.Else()
	f.I32Const(0)
	f.End()
}

func (c *compiler) emitLikeContains(f *wasm.FuncBuilder, addr uint32, nlen, w int) {
	if nlen > w {
		f.I32Const(0)
		return
	}
	llen := f.AddLocal(wasm.I32)
	off := f.AddLocal(wasm.I32)
	emitLogicalLen(f, f.Param(0), llen, w)
	f.I32Const(0)
	f.LocalSet(off)
	f.Block(wasm.BlockOf(wasm.I32))
	f.Loop(wasm.BlockOf(wasm.I32))
	// if off + len > llen: no match
	f.I32Const(0)
	f.LocalGet(off)
	f.I32Const(int32(nlen))
	f.I32Add()
	f.LocalGet(llen)
	f.Op(wasm.OpI32GtU)
	f.BrIf(1)
	f.Drop()
	// if memeq at off: match
	f.I32Const(1)
	c.emitMemEq(f, f.Param(0), off, addr, nlen)
	f.BrIf(1)
	f.Drop()
	f.LocalGet(off)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(off)
	f.Br(0)
	f.End()
	f.End()
}

// emitLikeComplex generates the classic iterative glob matcher with
// single-star backtracking over the logical string, reading the pattern from
// the fixed address pAddr (constant region, or parameter region when the
// pattern is hoisted).
func (c *compiler) emitLikeComplex(f *wasm.FuncBuilder, pAddr uint32, patLen, w int) {
	plen := int32(patLen)

	llen := f.AddLocal(wasm.I32)
	s := f.AddLocal(wasm.I32)
	p := f.AddLocal(wasm.I32)
	star := f.AddLocal(wasm.I32)
	ss := f.AddLocal(wasm.I32)
	pc := f.AddLocal(wasm.I32) // current pattern byte

	emitLogicalLen(f, f.Param(0), llen, w)
	f.I32Const(-1)
	f.LocalSet(star)

	f.Block(wasm.BlockOf(wasm.I32)) // result
	f.Loop(wasm.BlockOf(wasm.I32))
	// while s < llen
	f.LocalGet(s)
	f.LocalGet(llen)
	f.I32GeU()
	f.If(wasm.BlockVoid)
	// Consume trailing %'s: while p < plen && pat[p] == '%': p++
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(p)
	f.I32Const(plen)
	f.I32GeU()
	f.BrIf(1)
	f.LocalGet(p)
	f.I32Load8U(pAddr)
	f.I32Const('%')
	f.I32Ne()
	f.BrIf(1)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Br(0)
	f.End()
	f.End()
	// return p == plen
	f.LocalGet(p)
	f.I32Const(plen)
	f.I32Eq()
	f.Br(2) // to result block
	f.End()

	// pc = p < plen ? pat[p] : 0
	f.LocalGet(p)
	f.I32Const(plen)
	f.Op(wasm.OpI32LtU)
	f.If(wasm.BlockOf(wasm.I32))
	f.LocalGet(p)
	f.I32Load8U(pAddr)
	f.Else()
	f.I32Const(0)
	f.End()
	f.LocalSet(pc)

	// if pc == '%': star = p, ss = s, p++
	f.LocalGet(pc)
	f.I32Const('%')
	f.I32Eq()
	f.If(wasm.BlockVoid)
	f.LocalGet(p)
	f.LocalSet(star)
	f.LocalGet(s)
	f.LocalSet(ss)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Else()
	// else if pc == '_' or pc == str[s]: s++, p++
	f.LocalGet(pc)
	f.I32Const('_')
	f.I32Eq()
	f.LocalGet(pc)
	f.LocalGet(f.Param(0))
	f.LocalGet(s)
	f.I32Add()
	f.I32Load8U(0)
	f.I32Eq()
	f.I32Or()
	f.If(wasm.BlockVoid)
	f.LocalGet(s)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(s)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Else()
	// else if star >= 0: p = star+1, ss++, s = ss
	f.LocalGet(star)
	f.I32Const(0)
	f.Op(wasm.OpI32GeS)
	f.If(wasm.BlockVoid)
	f.LocalGet(star)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.LocalGet(ss)
	f.I32Const(1)
	f.I32Add()
	f.LocalTee(ss)
	f.LocalSet(s)
	f.Else()
	// else: no match
	f.I32Const(0)
	f.Br(4)
	f.End()
	f.End()
	f.End()
	f.Br(0)
	f.End() // loop
	f.End() // result block
}

// emitLogicalLen emits code computing the logical (padding-stripped)
// length of the CHAR value at the pointer in ptr, storing it into llen.
func emitLogicalLen(f *wasm.FuncBuilder, ptr wasm.Local, llen wasm.Local, w int) {
	f.I32Const(int32(w))
	f.LocalSet(llen)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(llen)
	f.I32Eqz()
	f.BrIf(1)
	f.LocalGet(ptr)
	f.LocalGet(llen)
	f.I32Add()
	f.I32Const(1)
	f.I32Sub()
	f.I32Load8U(0)
	f.I32Const(32)
	f.I32Ne()
	f.BrIf(1)
	f.LocalGet(llen)
	f.I32Const(1)
	f.I32Sub()
	f.LocalSet(llen)
	f.Br(0)
	f.End()
	f.End()
}
