package core

import (
	"math"

	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

// Intra-query parallelism (morsel-driven, Leis et al. adapted to the paper's
// host-driven design): a pool of workers, each owning a private rt instance
// and linear memory instantiated from the *shared* compiled Module, pulls
// morsels off one atomic counter — work stealing by construction, and
// background TurboFan tier-up benefits every worker at once because the
// published code objects are shared at function granularity.
//
// Only pipelines whose state the host can merge afterwards are eligible:
//
//	scan/filter/project   → per-worker result buffers, merged by concatenation
//	keyless aggregation   → per-worker partial states in module globals,
//	                        merged with the aggregate's combine rule
//
// Pipelines whose state lives in guest data structures the host cannot
// combine (hash-join builds, group-by hash tables, sort arrays) fall back to
// serial execution; the fallback is recorded in ExecStats.PipelinesSerial,
// ExecStats.SerialFallback, and an EvSerialFallback trace event — observable,
// never silent.

// parMode is the parallel execution strategy chosen for a query.
type parMode int

const (
	// parNone drives every pipeline serially on one worker.
	parNone parMode = iota
	// parScan parallelizes a single scan/filter/project pipeline; workers
	// flush into private result buffers and the merge concatenates them.
	parScan
	// parAgg parallelizes the scan feeding a keyless aggregation; workers
	// accumulate private partial states and the merge combines them before
	// the run-once output pipeline executes on the primary worker.
	parAgg
)

// Serial-fallback reasons (the "serial-fallback matrix" of DESIGN.md §9).
const (
	fallbackChunked     = "chunked-rewiring"
	fallbackFuel        = "fuel-budget"
	fallbackLimit       = "limit"
	fallbackFloatSum    = "float-sum-order"
	fallbackUnmergeable = "unmergeable-pipeline-state"
)

// classifyParallel decides whether the compiled query's pipelines can be
// driven by a worker pool of the requested size, and if not, why. The reason
// string is empty when parallel execution applies or when the caller never
// asked for parallelism.
func classifyParallel(cq *CompiledQuery, opt ExecOptions, workers int) (parMode, string) {
	if workers <= 1 {
		return parNone, ""
	}
	if opt.ChunkRows > 0 {
		// Chunked rewiring remaps column windows between morsel batches; the
		// window position is per-memory state the dispatch counter cannot
		// share.
		return parNone, fallbackChunked
	}
	if opt.Fuel > 0 {
		// A user fuel budget is a single sequential account; splitting it
		// across workers would change which morsel exhausts it.
		return parNone, fallbackFuel
	}
	if cq.Limit >= 0 || cq.LimitSlot >= 0 {
		// LIMIT without a total order picks whichever rows arrive first;
		// serial execution keeps the choice deterministic. A parameterized
		// limit (LimitSlot) counts even before its value is known — the
		// check is per-module, and limited queries always fall back.
		return parNone, fallbackLimit
	}
	ps := cq.Pipelines
	switch {
	case len(ps) == 1 && ps[0].Kind == PipeScanTable && cq.aggStateSets == 0:
		return parScan, ""
	case len(ps) == 2 && ps[0].Kind == PipeScanTable && ps[1].Kind == PipeRunOnce &&
		cq.aggStateSets == 1 && len(cq.AggGlobals) > 0:
		for _, ag := range cq.AggGlobals {
			if ag.Func == sema.AggSum && ag.T.Kind == types.Float64 {
				// Float addition is not associative: merging per-worker
				// partial sums could differ from the serial row-order sum in
				// the last ulps, breaking the bit-identical differential
				// oracle. Serial keeps results reproducible.
				return parNone, fallbackFloatSum
			}
		}
		return parAgg, ""
	}
	return parNone, fallbackUnmergeable
}

// mergeAggGlobals folds every worker's partial aggregation state into the
// primary worker (ws[0]) — the host-side merge pass at the pipeline barrier.
// After it returns, the primary's globals hold the combined state and its
// run-once output pipeline produces the same row serial execution would.
func mergeAggGlobals(cq *CompiledQuery, ws []*worker) {
	primary := ws[0]
	var count int64
	for _, w := range ws {
		count += int64(w.inst.Global(int(cq.AggCountGlobal)))
	}
	primary.inst.SetGlobal(int(cq.AggCountGlobal), uint64(count))
	for _, ag := range cq.AggGlobals {
		idx := int(ag.Global)
		acc := primary.inst.Global(idx)
		for _, w := range ws[1:] {
			acc = combineAgg(ag, acc, w.inst.Global(idx))
		}
		primary.inst.SetGlobal(idx, acc)
	}
}

// combineAgg combines two partial aggregate states under the aggregate's
// merge rule. Values use the wasm value representation (i32 states occupy
// the low 32 bits).
func combineAgg(ag AggGlobal, a, b uint64) uint64 {
	switch ag.Func {
	case sema.AggCountStar, sema.AggCount:
		return uint64(int64(a) + int64(b))
	case sema.AggSum:
		switch ag.T.Kind {
		case types.Float64:
			return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		case types.Int32, types.Date, types.Bool:
			return uint64(uint32(int32(a) + int32(b)))
		default: // Int64, Decimal
			return uint64(int64(a) + int64(b))
		}
	case sema.AggMin:
		if aggLess(ag.T, a, b) {
			return a
		}
		return b
	case sema.AggMax:
		if aggLess(ag.T, a, b) {
			return b
		}
		return a
	}
	return a
}

// aggLess orders two aggregate states of type t.
func aggLess(t types.Type, a, b uint64) bool {
	switch t.Kind {
	case types.Int32, types.Date, types.Bool:
		return int32(a) < int32(b)
	case types.Float64:
		return math.Float64frombits(a) < math.Float64frombits(b)
	default: // Int64, Decimal
		return int64(a) < int64(b)
	}
}
