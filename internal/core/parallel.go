package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

// Intra-query parallelism (morsel-driven, Leis et al. adapted to the paper's
// host-driven design): a pool of workers, each owning a private rt instance
// and linear memory instantiated from the *shared* compiled Module, pulls
// morsels off one atomic counter — work stealing by construction, and
// background TurboFan tier-up benefits every worker at once because the
// published code objects are shared at function granularity.
//
// Only pipelines whose state the host can merge afterwards are eligible:
//
//	scan/filter/project   → per-worker result buffers, merged by concatenation
//	keyless aggregation   → per-worker partial states in module globals,
//	                        merged with the aggregate's combine rule
//	grouped aggregation   → per-worker partial group hash tables, drained via
//	                        the module's ad-hoc merge exports, folded per key
//	                        host-side, and fed into the primary worker
//	order by              → per-worker sorted runs, k-way merged host-side
//	                        and installed on the primary worker
//	hash-join builds      → per-worker partition tables, drained via the
//	                        module's ad-hoc join merge exports, appended into
//	                        the primary, and the completed table replicated
//	                        to every worker before the probe pipeline runs
//
// Pipelines whose state the host cannot combine (library-style hash tables
// and sorts) fall back to serial execution; the fallback is recorded in
// ExecStats.PipelinesSerial, ExecStats.SerialFallback, and an
// EvSerialFallback trace event — observable, never silent.

// parMode is the parallel execution strategy chosen for a query.
type parMode int

const (
	// parNone drives every pipeline serially on one worker.
	parNone parMode = iota
	// parScan parallelizes a single scan/filter/project pipeline; workers
	// flush into private result buffers and the merge concatenates them.
	parScan
	// parAgg parallelizes the scan feeding a keyless aggregation; workers
	// accumulate private partial states and the merge combines them before
	// the run-once output pipeline executes on the primary worker.
	parAgg
	// parGroup parallelizes the scan feeding a grouped aggregation; workers
	// build private group hash tables and the barrier drains, folds, and
	// feeds the partial groups into the primary worker, which then runs the
	// output pipeline(s) serially.
	parGroup
	// parSort parallelizes the scan feeding an ORDER BY; every worker
	// quicksorts its private tuple array at the barrier and the host k-way
	// merges the sorted runs into the primary worker.
	parSort
	// parJoin parallelizes a join query whose output is plain rows: the
	// build scans run parallel into per-worker partition tables (merged and
	// replicated at each build barrier), the probe scan runs parallel, and
	// the result buffers merge by concatenation. Joins feeding an
	// aggregation or sort classify as parAgg/parGroup/parSort instead — the
	// build barriers fire the same way, the terminal merge differs.
	parJoin
)

// Serial-fallback reasons (the "serial-fallback matrix" of DESIGN.md §9).
const (
	fallbackChunked     = "chunked-rewiring"
	fallbackFuel        = "fuel-budget"
	fallbackLimit       = "limit"
	fallbackFloatSum    = "float-sum-order"
	fallbackFloatKey    = "float-group-key"
	fallbackUnmergeable = "unmergeable-pipeline-state"
	// fallbackSlots reports that the shared global scheduler had no worker
	// slots to grant — the query was parallel-eligible but the pool's fair
	// share under the current inter-query load is serial execution.
	fallbackSlots = "worker-slots-exhausted"
)

// FallbackIntrinsic reports whether a serial-fallback reason (from
// ExecStats.SerialFallback or the trace) is intrinsic to the query shape —
// it would recur on every execution of the same fingerprint — as opposed to
// transient pressure (scheduler slot exhaustion, a caller's fuel budget)
// or per-call options (chunked rewiring). The autopilot stores this with
// its execution feedback: a shape that fell back intrinsically stops being
// granted workers on warm decisions, while a transiently starved one may
// try again.
func FallbackIntrinsic(reason string) bool {
	switch reason {
	case fallbackLimit, fallbackFloatSum, fallbackFloatKey, fallbackUnmergeable:
		return true
	}
	return false
}

// classifyParallel decides whether the compiled query's pipelines can be
// driven by a worker pool of the requested size, and if not, why. The reason
// string is empty when parallel execution applies or when the caller never
// asked for parallelism. limit is the query's *effective* row limit (-1 for
// none), resolved by the executor from the baked constant or the bound
// LimitSlot parameter — a cached module compiled for `LIMIT ?` must be
// classified against the value this execution runs with, not the
// compile-time placeholder.
func classifyParallel(cq *CompiledQuery, opt ExecOptions, workers int, limit int64) (parMode, string) {
	if workers <= 1 {
		return parNone, ""
	}
	if opt.ChunkRows > 0 {
		// Chunked rewiring remaps column windows between morsel batches; the
		// window position is per-memory state the dispatch counter cannot
		// share.
		return parNone, fallbackChunked
	}
	if opt.Fuel > 0 {
		// A user fuel budget is a single sequential account; splitting it
		// across workers would change which morsel exhausts it.
		return parNone, fallbackFuel
	}
	if limit >= 0 && cq.SortMerge == nil {
		// LIMIT without a total order picks whichever rows arrive first;
		// serial execution keeps the choice deterministic. Under an ORDER BY
		// the sorted-run merge fixes the order, so LIMIT rides along (ties
		// beyond the sort keys resolve as the merge encounters them — same
		// contract as serial quicksort, which is also unstable).
		return parNone, fallbackLimit
	}
	ps := cq.Pipelines

	// The last table scan is the pipeline the terminal merge barriers on;
	// every earlier pipeline must be a hash-join build scan with its own
	// merge exports (a barrier entry) or the query cannot run parallel.
	lastScan := -1
	for i, p := range ps {
		if p.Kind == PipeScanTable {
			lastScan = i
		}
	}
	if lastScan < 0 {
		return parNone, fallbackUnmergeable
	}
	barrier := make(map[int]bool, len(cq.JoinMerges))
	for _, jm := range cq.JoinMerges {
		if jm.BuildPipeline < 0 || jm.BuildPipeline >= lastScan {
			// A build fed by something other than a plain table scan before
			// the probe (e.g. nested non-scan input) is not partitionable.
			return parNone, fallbackUnmergeable
		}
		barrier[jm.BuildPipeline] = true
	}
	for i := 0; i < lastScan; i++ {
		if ps[i].Kind != PipeScanTable || !barrier[i] {
			// A pre-probe pipeline without join merge exports (library-style
			// hash table, or any other host-opaque state) cannot be merged.
			return parNone, fallbackUnmergeable
		}
	}
	tail := ps[lastScan+1:]

	switch {
	case len(tail) == 0 && cq.aggStateSets == 0 && cq.GroupMerge == nil:
		// Plain row output: per-worker result buffers merge by concatenation.
		if len(barrier) > 0 {
			return parJoin, ""
		}
		return parScan, ""
	case len(tail) == 1 && tail[0].Kind == PipeRunOnce &&
		cq.aggStateSets == 1 && len(cq.AggGlobals) > 0:
		for _, ag := range cq.AggGlobals {
			if !mergeableAggFunc(ag.Func) {
				// An aggregate without a combine rule must never reach
				// combineAgg, which panics on unknown functions.
				return parNone, fallbackUnmergeable
			}
			if ag.Func == sema.AggSum && ag.T.Kind == types.Float64 {
				// Float addition is not associative: merging per-worker
				// partial sums could differ from the serial row-order sum in
				// the last ulps, breaking the bit-identical differential
				// oracle. Serial keeps results reproducible.
				return parNone, fallbackFloatSum
			}
		}
		return parAgg, ""
	case cq.GroupMerge != nil && cq.aggStateSets == 0 &&
		len(tail) >= 1 && tail[0].Kind == PipeScanSlots:
		// Single-level GROUP BY fed by the final table scan (directly or
		// through join probes): workers build private partial tables, the
		// barrier merges them into the primary, and every post-barrier
		// pipeline (slot scan, and any sort on top) runs serially on the
		// primary over the merged state.
		gm := cq.GroupMerge
		for _, k := range gm.Keys {
			if k.T.Kind == types.Float64 {
				// The host folds partial groups by raw key bytes; distinct
				// NaN keys compare unequal in the guest (F64Eq) but can be
				// bit-identical, so byte folding would merge groups serial
				// execution keeps apart.
				return parNone, fallbackFloatKey
			}
		}
		for _, a := range gm.Aggs {
			if !mergeableAggFunc(a.Func) {
				return parNone, fallbackUnmergeable
			}
			if a.Func == sema.AggSum && a.T.Kind == types.Float64 {
				return parNone, fallbackFloatSum
			}
		}
		return parGroup, ""
	case cq.SortMerge != nil && cq.GroupMerge == nil && cq.aggStateSets == 0 &&
		len(tail) == 2 && tail[0].Kind == PipeRunOnce && tail[1].Kind == PipeScanArray:
		// ORDER BY over the final scan: every worker sorts its private run
		// at the run-once barrier and the host k-way merges.
		return parSort, ""
	}
	return parNone, fallbackUnmergeable
}

// mergeableAggFunc reports whether the aggregate function has a partial-state
// combine rule — the gate classifyParallel applies before any path that ends
// in combineAgg.
func mergeableAggFunc(fn sema.AggFunc) bool {
	switch fn {
	case sema.AggCountStar, sema.AggCount, sema.AggSum, sema.AggMin, sema.AggMax:
		return true
	}
	return false
}

// mergeAggGlobals folds every worker's partial aggregation state into the
// primary worker (ws[0]) — the host-side merge pass at the pipeline barrier.
// After it returns, the primary's globals hold the combined state and its
// run-once output pipeline produces the same row serial execution would.
func mergeAggGlobals(cq *CompiledQuery, ws []*worker) {
	primary := ws[0]
	var count int64
	for _, w := range ws {
		count += int64(w.inst.Global(int(cq.AggCountGlobal)))
	}
	primary.inst.SetGlobal(int(cq.AggCountGlobal), uint64(count))
	for _, ag := range cq.AggGlobals {
		idx := int(ag.Global)
		acc := primary.inst.Global(idx)
		for _, w := range ws[1:] {
			acc = combineAgg(ag, acc, w.inst.Global(idx))
		}
		primary.inst.SetGlobal(idx, acc)
	}
}

// combineAgg combines two partial aggregate states under the aggregate's
// merge rule. Values use the wasm value representation (i32 states occupy
// the low 32 bits). The rule set is exhaustive over the functions
// mergeableAggFunc admits; reaching the panic means classifyParallel let an
// unknown aggregate through, which would silently drop partial state — fail
// loudly instead.
func combineAgg(ag AggGlobal, a, b uint64) uint64 {
	switch ag.Func {
	case sema.AggCountStar, sema.AggCount:
		return uint64(int64(a) + int64(b))
	case sema.AggSum:
		switch ag.T.Kind {
		case types.Float64:
			return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
		case types.Int32, types.Date, types.Bool:
			return uint64(uint32(int32(a) + int32(b)))
		default: // Int64, Decimal
			return uint64(int64(a) + int64(b))
		}
	case sema.AggMin:
		if aggLess(ag.T, a, b) {
			return a
		}
		return b
	case sema.AggMax:
		if aggLess(ag.T, a, b) {
			return b
		}
		return a
	}
	panic(fmt.Sprintf("core: combineAgg: no merge rule for aggregate %v; classifyParallel must reject it", ag.Func))
}

// aggLess orders two aggregate states of type t.
func aggLess(t types.Type, a, b uint64) bool {
	switch t.Kind {
	case types.Int32, types.Date, types.Bool:
		return int32(a) < int32(b)
	case types.Float64:
		return math.Float64frombits(a) < math.Float64frombits(b)
	default: // Int64, Decimal
		return int64(a) < int64(b)
	}
}

// foldGroupRecords folds the drained per-worker partial group records into
// one record list: records sharing a key collapse with combineAgg, distinct
// keys keep first-seen order (Go map iteration order must not leak into the
// merged feed — a fixed drain order gives a fixed output). Each record is a
// verbatim hash-table entry image of gm.Stride bytes. Returns the merged
// records and their count.
func foldGroupRecords(gm *GroupMerge, runs [][]byte) ([]byte, int) {
	stride := int(gm.Stride)
	index := make(map[string]int)
	var out []byte
	for _, run := range runs {
		for off := 0; off+stride <= len(run); off += stride {
			rec := run[off : off+stride]
			key := string(groupKeyBytes(gm, rec))
			at, seen := index[key]
			if !seen {
				index[key] = len(out)
				out = append(out, rec...)
				continue
			}
			dst := out[at : at+stride]
			for _, ma := range gm.Aggs {
				st := combineAgg(AggGlobal{Func: ma.Func, T: ma.T},
					loadAggState(ma.T, dst[ma.Offset:]),
					loadAggState(ma.T, rec[ma.Offset:]))
				storeAggState(ma.T, dst[ma.Offset:], st)
			}
		}
	}
	return out, len(out) / stride
}

// groupKeyBytes concatenates the raw bytes of a record's key fields. CHAR
// keys are stored space-padded at fixed width, so byte equality coincides
// with the guest's padded strcmp equality; Float64 keys never reach here
// (classifyParallel rejects them — NaN bit patterns would alias).
func groupKeyBytes(gm *GroupMerge, rec []byte) []byte {
	key := make([]byte, 0, 16)
	for _, k := range gm.Keys {
		key = append(key, rec[k.Offset:int(k.Offset)+k.T.Size()]...)
	}
	return key
}

// loadAggState reads an aggregate state field in the wasm value
// representation the guest uses (Bool via 8-bit unsigned load, Int32/Date
// via 32-bit load, everything else 64-bit).
func loadAggState(t types.Type, b []byte) uint64 {
	switch t.Kind {
	case types.Bool:
		return uint64(b[0])
	case types.Int32, types.Date:
		return uint64(binary.LittleEndian.Uint32(b))
	default: // Int64, Decimal, Float64
		return binary.LittleEndian.Uint64(b)
	}
}

// storeAggState writes an aggregate state field, inverse of loadAggState.
func storeAggState(t types.Type, b []byte, v uint64) {
	switch t.Kind {
	case types.Bool:
		b[0] = byte(v)
	case types.Int32, types.Date:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

// mergeSortedRuns k-way merges per-worker sorted tuple runs. The comparator
// mirrors the generated quicksort's inlined multi-key comparison exactly
// (see genQuicksort's emitLess), so the merged array is ordered precisely as
// a serial sort of the concatenation would be; ties resolve to the lowest
// run index. Worker counts are small, so a linear head scan beats a heap.
func mergeSortedRuns(sm *SortMerge, runs [][]byte) []byte {
	stride := int(sm.Stride)
	heads := make([]int, len(runs))
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]byte, 0, total)
	for {
		best := -1
		for i, r := range runs {
			if heads[i] >= len(r) {
				continue
			}
			if best < 0 || sortTupleLess(sm,
				r[heads[i]:heads[i]+stride],
				runs[best][heads[best]:heads[best]+stride]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, runs[best][heads[best]:heads[best]+stride]...)
		heads[best] += stride
	}
}

// sortTupleLess is the host mirror of the generated emitLess: per key, a
// differing field decides (DESC swaps operands), an equal field defers to
// the next key. Char compares the full padded field byte-wise (equal widths
// make this identical to the guest's padded strcmp); Float64 uses the
// F64Ne-guarded F64Lt shape, which Go's != and < reproduce including NaN
// behavior; integer classes compare signed.
func sortTupleLess(sm *SortMerge, a, b []byte) bool {
	for _, k := range sm.Keys {
		off := int(k.Offset)
		lo, hi := a, b
		if k.Desc {
			lo, hi = b, a
		}
		switch k.T.Kind {
		case types.Char:
			c := bytes.Compare(lo[off:off+k.T.Length], hi[off:off+k.T.Length])
			if c != 0 {
				return c < 0
			}
		case types.Float64:
			x := math.Float64frombits(binary.LittleEndian.Uint64(lo[off:]))
			y := math.Float64frombits(binary.LittleEndian.Uint64(hi[off:]))
			if x != y {
				return x < y
			}
		case types.Int64, types.Decimal:
			x := int64(binary.LittleEndian.Uint64(lo[off:]))
			y := int64(binary.LittleEndian.Uint64(hi[off:]))
			if x != y {
				return x < y
			}
		case types.Bool:
			x, y := int32(lo[off]), int32(hi[off])
			if x != y {
				return x < y
			}
		default: // Int32, Date
			x := int32(binary.LittleEndian.Uint32(lo[off:]))
			y := int32(binary.LittleEndian.Uint32(hi[off:]))
			if x != y {
				return x < y
			}
		}
	}
	return false
}
