package core

import (
	"math"

	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/wasm"
)

// produceGlobalAgg compiles keyless aggregation into module globals — no
// hash table exists for a single group; the incoming pipeline updates the
// aggregate registers directly (data-centric compilation as in HyPer and
// mutable). MIN/MAX updates are branch-free via select (§8.2, Fig. 7d).
func (c *compiler) produceGlobalAgg(gr *plan.Group, consume consumer) error {
	states, gCount := c.newGlobalAggStates(gr)

	err := c.produce(gr.Input, func(g *gen, e *env) {
		f := g.f
		f.GlobalGet(gCount)
		f.I64Const(1)
		f.I64Add()
		f.GlobalSet(gCount)
		for i, a := range gr.Aggs {
			st := states[i]
			switch a.Func {
			case sema.AggCountStar, sema.AggCount:
				f.GlobalGet(st.glob)
				f.I64Const(1)
				f.I64Add()
				f.GlobalSet(st.glob)
			case sema.AggSum:
				f.GlobalGet(st.glob)
				g.expr(e, a.Arg)
				if st.t == wasm.F64 {
					f.F64Add()
				} else {
					f.I64Add()
				}
				f.GlobalSet(st.glob)
			case sema.AggMin, sema.AggMax:
				v := f.AddLocal(st.t)
				g.expr(e, a.Arg)
				f.LocalSet(v)
				f.LocalGet(v)
				f.GlobalGet(st.glob)
				f.LocalGet(v)
				f.GlobalGet(st.glob)
				f.Op(minMaxCmp(a.Func, a.T))
				f.Select()
				f.GlobalSet(st.glob)
			}
		}
	})
	if err != nil {
		return err
	}
	return c.emitGlobalAggOutput(gr, states, gCount, consume)
}

type globalAggState struct {
	glob uint32
	t    wasm.ValType
}

// newGlobalAggStates allocates one global per aggregate (initialized to the
// aggregate's identity) plus a matched-row counter, and records the merge
// metadata the parallel executor uses to combine per-worker partial states.
func (c *compiler) newGlobalAggStates(gr *plan.Group) ([]globalAggState, uint32) {
	states := make([]globalAggState, len(gr.Aggs))
	gCount := c.b.AddGlobal(wasm.I64, true, 0)
	c.out.AggCountGlobal = gCount
	c.out.aggStateSets++
	for i, a := range gr.Aggs {
		states[i] = globalAggState{glob: c.b.AddGlobal(wasmType(a.T), true, 0), t: wasmType(a.T)}
		c.out.AggGlobals = append(c.out.AggGlobals, AggGlobal{Global: states[i].glob, Func: a.Func, T: a.T})
		st := states[i]
		a := a
		c.initSteps = append(c.initSteps, func(g *gen) {
			f := g.f
			switch {
			case a.Func == sema.AggMin && st.t == wasm.I64:
				f.I64Const(1<<63 - 1)
			case a.Func == sema.AggMax && st.t == wasm.I64:
				f.I64Const(-1 << 63)
			case a.Func == sema.AggMin && st.t == wasm.F64:
				f.F64Const(math.Inf(1))
			case a.Func == sema.AggMax && st.t == wasm.F64:
				f.F64Const(math.Inf(-1))
			case a.Func == sema.AggMin && st.t == wasm.I32:
				f.I32Const(1<<31 - 1)
			case a.Func == sema.AggMax && st.t == wasm.I32:
				f.I32Const(-1 << 31)
			case st.t == wasm.F64:
				f.F64Const(0)
			case st.t == wasm.I32:
				f.I32Const(0)
			default:
				f.I64Const(0)
			}
			f.GlobalSet(st.glob)
		})
	}
	return states, gCount
}

// emitGlobalAggOutput creates the run-once pipeline producing the single
// output row; MIN/MAX over zero rows fall back to 0 (this system's
// convention across all engines).
func (c *compiler) emitGlobalAggOutput(gr *plan.Group, states []globalAggState, gCount uint32, consume consumer) error {
	g := c.newPipeline(PipeRunOnce, -1, 0)
	f := g.f
	e := &env{}
	for i, a := range gr.Aggs {
		st := states[i]
		a := a
		e.add(&sema.AggRef{Idx: i, T: a.T}, func() {
			f.GlobalGet(st.glob)
			if a.Func == sema.AggMin || a.Func == sema.AggMax {
				switch st.t {
				case wasm.F64:
					f.F64Const(0)
				case wasm.I32:
					f.I32Const(0)
				default:
					f.I64Const(0)
				}
				f.GlobalGet(gCount)
				f.Op(wasm.OpI64Eqz)
				f.I32Eqz()
				f.Select()
			}
		})
	}
	consume(g, e)
	f.I32Const(0)
	return g.err
}
