package core

import (
	"fmt"

	"wasmdb/internal/wasm"
)

// Parallel join-merge exports (partitioned build → shared immutable table).
// Every worker inserts its private partition of the build side during the
// parallel build scan; these exports let the host drain the secondary
// workers' partitions, append them into the primary worker's table, and
// replicate the completed table into every worker so the probe pipeline runs
// embarrassingly parallel. Unlike the group merge there is no host-side
// fold: join inserts are append-style (duplicate keys coexist as separate
// entries), so merging is concatenation plus re-insertion — the merge loop
// claims the first empty probe slot and never compares keys. Serial
// execution never calls these exports.

// joinInitialCap derives the initial capacity of a join build table from the
// planner's cardinality estimate. Estimates are float64 row counts that may
// be zero, huge, or (from degenerate statistics) NaN — an unguarded
// uint32(est/2) wraps for large values and requests capacity 0 for empty
// build sides, which the mask math turns into a degenerate table. Clamp to
// [64, 2^20] and round to a power of two; the table still grows on demand.
func joinInitialCap(est float64) uint32 {
	est /= 2
	if !(est > 0) { // negative, zero, or NaN
		return 64
	}
	if est < 64 {
		return 64
	}
	if est > 1<<20 {
		return 1 << 20
	}
	return pow2ceil(uint32(est))
}

// genJoinMerge emits the dump/recv/merge/install exports for one join build
// table and records the metadata the parallel executor needs. Export names
// carry the join's ordinal so multi-join queries keep them distinct.
func (c *compiler) genJoinMerge(ht *htInfo, buildPipeline int) {
	ord := len(c.out.JoinMerges)
	jm := &JoinMerge{
		DumpExport:    fmt.Sprintf("q_join_dump_%d", ord),
		RecvExport:    fmt.Sprintf("q_join_recv_%d", ord),
		PresizeExport: fmt.Sprintf("q_join_presize_%d", ord),
		MergeExport:   fmt.Sprintf("q_join_merge_%d", ord),
		InstallExport: fmt.Sprintf("q_join_install_%d", ord),
		BaseGlobal:    ht.gBase,
		MaskGlobal:    ht.gMask,
		CountGlobal:   ht.gCount,
		Stride:        ht.layout.stride,
		BuildPipeline: buildPipeline,
	}

	c.genDumpFunc(jm.DumpExport, ht)
	gRecv := c.genRecvFunc(jm.RecvExport, ht)
	c.genJoinPresize(jm.PresizeExport, ht)
	c.genJoinMergeFunc(jm.MergeExport, ht, gRecv)
	c.genJoinInstall(jm.InstallExport, ht)
	c.out.JoinMerges = append(c.out.JoinMerges, jm)
}

// genJoinPresize emits <name>(needed) -> i32: grow the table until `needed`
// records fit under the 3/4 load-factor ceiling, returning the final
// capacity. The host calls it before the merge loop so re-insertion never
// grows mid-merge: dumps list records in slot order, and slot-ordered
// inserts meeting a near-full table degenerate into long linear-probe
// cluster walks right at the growth thresholds.
func (c *compiler) genJoinPresize(name string, ht *htInfo) {
	f := c.b.NewFunc(name, wasm.FuncType{
		Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32},
	})
	c.b.Export(name, wasm.ExternFunc, f.Index)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(f.Param(0))
	f.I32Const(4)
	f.I32Mul()
	f.GlobalGet(ht.gMask)
	f.I32Const(1)
	f.I32Add()
	f.I32Const(3)
	f.I32Mul()
	f.Op(wasm.OpI32LeU) // needed*4 <= cap*3: big enough
	f.BrIf(1)
	f.Call(ht.grow.Index)
	f.Br(0)
	f.End()
	f.End()
	f.GlobalGet(ht.gMask)
	f.I32Const(1)
	f.I32Add()
}

// genJoinMergeFunc emits <name>(begin, end) -> i32: re-insert received
// records [begin, end) into this worker's join table. Each record is a
// verbatim entry image; re-hash its stored keys (same canonicalization as
// the build insert), probe to the first empty slot, and claim it with a word
// copy — no key comparison, because append semantics mean colliding keys
// coexist. The morsel-shaped signature lets the executor drive it through
// callMorsel (tracing and fault injection apply).
func (c *compiler) genJoinMergeFunc(name string, ht *htInfo, gRecv uint32) {
	f := c.b.NewFunc(name, wasm.FuncType{
		Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32},
	})
	c.b.Export(name, wasm.ExternFunc, f.Index)
	g := &gen{c: c, f: f}
	stride := int32(ht.layout.stride)

	i := f.AddLocal(wasm.I32)
	rec := f.AddLocal(wasm.I32)
	entry := f.AddLocal(wasm.I32)

	f.LocalGet(f.Param(0))
	f.LocalSet(i)

	f.Block(wasm.BlockVoid) // all records done
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(f.Param(1))
	f.I32GeU()
	f.BrIf(1)
	f.GlobalGet(gRecv)
	f.LocalGet(i)
	f.I32Const(stride)
	f.I32Mul()
	f.I32Add()
	f.LocalSet(rec)

	// Key sources read from the record, which mirrors the entry layout.
	var stored []keySrc
	for _, k := range ht.keys {
		fld, ok := ht.layout.find(k)
		if !ok {
			g.fail("join merge: key not in entry layout")
			continue
		}
		kf := fld
		stored = append(stored, keySrc{t: kf.t, pushVal: func() { g.loadField(rec, kf) }})
	}
	h := g.emitHashCanon(stored, ht.canonFloatKeys)
	idx := g.emitSlotIndex(ht, h)

	// Probe to the first empty slot and claim it.
	f.Block(wasm.BlockVoid) // this record done
	f.Loop(wasm.BlockVoid)
	g.emitEntryPtr(ht, idx, entry)
	f.LocalGet(entry)
	f.Emit(wasm.OpI32Load, 0, 2)
	f.I32Eqz()
	f.If(wasm.BlockVoid)
	emitWordCopy(f, entry, rec, stride)
	f.GlobalGet(ht.gCount)
	f.I32Const(1)
	f.I32Add()
	f.GlobalSet(ht.gCount)
	g.emitMaybeGrow(ht)
	f.Br(2) // this record done
	f.End()
	f.LocalGet(idx)
	f.I32Const(1)
	f.I32Add()
	f.GlobalGet(ht.gMask)
	f.I32And()
	f.LocalSet(idx)
	f.Br(0)
	f.End()
	f.End()

	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.I32Const(0)
	if g.err != nil && c.err == nil {
		c.err = g.err
	}
}

// genJoinInstall emits <name>(cap, count) -> i32: allocate cap*stride bytes,
// repoint the table globals at the allocation, and return its base. The
// host writes the primary worker's complete entry image there, replacing
// this secondary worker's partial partition before the probe pipeline runs.
// A verbatim image is correct on any worker because slot positions depend
// only on the hash and the mask, both of which travel with the image.
func (c *compiler) genJoinInstall(name string, ht *htInfo) {
	f := c.b.NewFunc(name, wasm.FuncType{
		Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32},
	})
	c.b.Export(name, wasm.ExternFunc, f.Index)
	f.LocalGet(f.Param(0))
	f.I32Const(int32(ht.layout.stride))
	f.I32Mul()
	f.Call(c.allocFunc().Index)
	f.GlobalSet(ht.gBase)
	f.LocalGet(f.Param(0))
	f.I32Const(1)
	f.I32Sub()
	f.GlobalSet(ht.gMask)
	f.LocalGet(f.Param(1))
	f.GlobalSet(ht.gCount)
	f.GlobalGet(ht.gBase)
}
