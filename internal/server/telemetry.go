package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"wasmdb"
	"wasmdb/internal/obs"
)

// The serving layer's production telemetry: request IDs on every response,
// per-route SLO metrics, the Prometheus exposition endpoint, the structured
// query log, and the flight-recorder dump. All of it is always on — the
// flight recorder answers "what just happened" after the fact precisely
// because nobody opted in beforehand.

// ctxKey is the private context-key namespace of this package.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// RequestIDHeader is honored when the client (or a fronting proxy) supplies
// it and generated otherwise; every response carries it back.
const RequestIDHeader = "X-Request-Id"

// RequestID returns the request ID the middleware assigned to r ("" outside
// the server's handler chain).
func RequestID(r *http.Request) string {
	id, _ := r.Context().Value(ctxKeyRequestID).(string)
	return id
}

// newRequestID mints a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Out of entropy — degrade to a timestamp rather than fail requests.
		return strconv.FormatInt(time.Now().UnixNano(), 16)
	}
	return hex.EncodeToString(b[:])
}

// routeLabel maps a request path onto the bounded route table used as the
// {route} metric label. Anything unrecognized folds into "other" so a path
// scanner cannot mint unbounded label values.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/v1/session", "/v1/set", "/v1/prepare", "/v1/query", "/v1/exec",
		"/v1/metrics", "/metrics", "/healthz", "/debug/flightrecorder":
		return p
	}
	switch {
	case strings.HasPrefix(p, "/v1/session/"):
		return "/v1/session/{id}"
	case strings.HasPrefix(p, "/debug/pprof"):
		return "/debug/pprof"
	}
	return "other"
}

// statusWriter captures the response status for the request-metrics
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// middleware wraps the route mux with the cross-cutting telemetry: assign or
// honor the request ID, stamp it on the response, and record per-route
// latency and status-code counts.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id))

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)

		route := routeLabel(r)
		obs.Default.HistogramWith(obs.MetricServerRequestLatency,
			obs.Label{Key: "route", Val: route},
		).Observe(time.Since(start).Nanoseconds())
		obs.Default.CounterWith(obs.MetricServerRequests,
			obs.Label{Key: "route", Val: route},
			obs.Label{Key: "code", Val: strconv.Itoa(sw.status)},
		).Add(1)
	})
}

// observeQuery feeds one finished query into the telemetry sinks: slow
// classification against Config.SlowQuery, then the flight recorder and the
// structured query log (both non-blocking; both nil-safe).
func (s *Server) observeQuery(rec wasmdb.QueryLogRecord, session string) {
	rec.Session = session
	if s.cfg.SlowQuery > 0 && rec.TotalNs >= s.cfg.SlowQuery.Nanoseconds() {
		rec.Slow = true
	}
	s.frec.Observe(rec)
	s.qlog.Observe(rec)
}

// handlePrometheus serves GET /metrics: the full registry — application
// series under wasmdb_, runtime health under go_* — in the Prometheus text
// exposition format.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	reg := s.db.Metrics()
	obs.CaptureRuntimeMetrics(reg)
	w.Header().Set("Content-Type", obs.ContentTypePrometheus)
	_ = reg.WritePrometheus(w)
}

// handleMetricsV1 serves the legacy /v1/metrics endpoint with content
// negotiation: the expvar-style text dump by default, the structured JSON
// form under Accept: application/json, and the Prometheus exposition when
// the scraper asks for it by version.
func (s *Server) handleMetricsV1(w http.ResponseWriter, r *http.Request) {
	reg := s.db.Metrics()
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/json"):
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	case strings.Contains(accept, "version=0.0.4") || strings.Contains(accept, "openmetrics"):
		obs.CaptureRuntimeMetrics(reg)
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		_ = reg.WritePrometheus(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(reg.Dump()))
	}
}

// handleFlightRecorder serves GET /debug/flightrecorder: the captured-query
// ring as JSON (entries plus a combined Chrome trace_event timeline), or the
// bare trace_event form under ?format=trace for direct Perfetto loading.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "trace" {
		_ = s.frec.WriteTraceEvents(w)
		return
	}
	_ = s.frec.WriteJSON(w)
}

// registerPprof exposes the net/http/pprof handlers on the service mux
// (Config.EnablePprof): CPU/heap/goroutine profiles for the process serving
// the queries, guarded behind the flag because profiles can carry SQL text.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
