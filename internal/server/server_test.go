package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wasmdb"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/leakcheck"
)

// TestMain sweeps the package for leaked goroutines — admission waiters,
// session watchdogs, worker pools behind the shared scheduler — after the
// suite finishes. Runs under -race in `make verify`.
func TestMain(m *testing.M) { leakcheck.Main(m) }

// newServer stands up a service over a freshly seeded DB and tears it down
// (shutdown included) at test end.
func newServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := wasmdb.Open()
	if err := db.Exec("CREATE TABLE t (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t VALUES ")
	for i := 0; i < 256; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i%7)
	}
	if err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		hs.Close()
	})
	return s, hs
}

// call issues one JSON request and decodes the JSON response.
func call(t *testing.T, hs *httptest.Server, method, path string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	status, m, h, err := callE(hs, method, path, body)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	return status, m, h
}

// callE is call for goroutines: transport errors return instead of failing.
func callE(hs *httptest.Server, method, path string, body any) (int, map[string]any, http.Header, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, hs.URL+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m, resp.Header, nil
}

// waitFor polls cond with a deadline — the test-side analogue of the
// admission paths it observes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// blockMorsels arms the core-morsel faultpoint so every executing query
// parks until the returned gate is closed. Queries admitted after the gate
// closes pass straight through.
func blockMorsels(t *testing.T) chan struct{} {
	t.Helper()
	gate := make(chan struct{})
	faultpoint.Enable("core-morsel", func(int) error {
		<-gate
		return nil
	})
	t.Cleanup(func() { faultpoint.Disable("core-morsel") })
	return gate
}

func TestSessionLifecycle(t *testing.T) {
	_, hs := newServer(t, Config{})

	status, m, _ := call(t, hs, "POST", "/v1/session", nil)
	if status != http.StatusOK {
		t.Fatalf("session create: %d %v", status, m)
	}
	sid, _ := m["session"].(string)
	if sid == "" {
		t.Fatalf("no session id in %v", m)
	}

	for k, v := range map[string]string{"backend": "liftoff", "parallelism": "2", "timeout": "5s"} {
		if status, m, _ = call(t, hs, "POST", "/v1/set", map[string]string{"session": sid, "key": k, "value": v}); status != http.StatusOK {
			t.Fatalf("set %s=%s: %d %v", k, v, status, m)
		}
	}
	if status, m, _ = call(t, hs, "POST", "/v1/set", map[string]string{"session": sid, "key": "bogus", "value": "x"}); status != http.StatusBadRequest {
		t.Fatalf("bad set key: %d %v, want 400", status, m)
	}

	status, m, _ = call(t, hs, "POST", "/v1/prepare", map[string]string{"session": sid, "sql": "SELECT COUNT(*) FROM t WHERE a < ?"})
	if status != http.StatusOK {
		t.Fatalf("prepare: %d %v", status, m)
	}
	stmt, _ := m["stmt"].(string)
	if stmt == "" || m["params"].(float64) != 1 {
		t.Fatalf("prepare response %v", m)
	}

	status, m, _ = call(t, hs, "POST", "/v1/query", map[string]any{"session": sid, "stmt": stmt, "args": []any{10}})
	if status != http.StatusOK {
		t.Fatalf("stmt query: %d %v", status, m)
	}
	rows := m["rows"].([]any)
	if len(rows) != 1 || rows[0].([]any)[0].(float64) != 10 {
		t.Fatalf("stmt query rows = %v, want [[10]]", rows)
	}

	// Ad-hoc with args on the same session, traced: the admission span must
	// be on the timeline.
	status, m, _ = call(t, hs, "POST", "/v1/query", map[string]any{"session": sid, "sql": "SELECT COUNT(*) FROM t WHERE a < ?", "args": []any{20}, "trace": true})
	if status != http.StatusOK {
		t.Fatalf("ad-hoc query: %d %v", status, m)
	}
	sawAdmission := false
	for _, sp := range m["trace"].([]any) {
		if sp.(map[string]any)["name"] == "admission" {
			sawAdmission = true
		}
	}
	if !sawAdmission {
		t.Errorf("traced response has no admission span: %v", m["trace"])
	}

	if status, m, _ = call(t, hs, "DELETE", "/v1/session/"+sid, nil); status != http.StatusOK {
		t.Fatalf("session delete: %d %v", status, m)
	}
	if status, m, _ = call(t, hs, "POST", "/v1/query", map[string]any{"session": sid, "sql": "SELECT 1"}); status != http.StatusNotFound {
		t.Fatalf("query on deleted session: %d %v, want 404", status, m)
	}
}

func TestQueryValidation(t *testing.T) {
	_, hs := newServer(t, Config{})
	if status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{}); status != http.StatusBadRequest {
		t.Fatalf("neither sql nor stmt: %d %v, want 400", status, m)
	}
	if status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT", "stmt": "p1"}); status != http.StatusBadRequest {
		t.Fatalf("both sql and stmt: %d %v, want 400", status, m)
	}
	if status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT nope FROM nada"}); status != http.StatusBadRequest {
		t.Fatalf("semantic error: %d %v, want 400", status, m)
	}
	if status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"session": "s999", "sql": "SELECT 1"}); status != http.StatusNotFound {
		t.Fatalf("unknown session: %d %v, want 404", status, m)
	}
}

// TestQueueFullRejection fills the single execution slot and the one queue
// seat, then proves the next arrival is shed immediately with an explicit
// queue-full error and a Retry-After — and that the held work still
// completes cleanly once unblocked.
func TestQueueFullRejection(t *testing.T) {
	srv, hs := newServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second})
	gate := blockMorsels(t)

	q := map[string]any{"sql": "SELECT COUNT(*) FROM t"}
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, _, _, err := callE(hs, "POST", "/v1/query", q)
			if err != nil {
				status = -1
			}
			results <- status
		}()
		if i == 0 {
			waitFor(t, "first query in-flight", func() bool { return faultpoint.Hits("core-morsel") >= 1 })
		} else {
			waitFor(t, "second query queued", func() bool { return srv.queued.Load() == 1 })
		}
	}

	start := time.Now()
	status, m, hdr := call(t, hs, "POST", "/v1/query", q)
	if status != http.StatusTooManyRequests || m["code"] != "queue-full" {
		t.Fatalf("third query: %d %v, want 429 queue-full", status, m)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("queue-full rejection missing Retry-After")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("queue-full rejection took %v; must be immediate, not queued", d)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if got := <-results; got != http.StatusOK {
			t.Errorf("held query %d finished with %d, want 200", i, got)
		}
	}
}

// TestQueueTimeout proves a queued request is rejected within the queue
// deadline when no slot frees up — bounded waiting, not unbounded queueing.
func TestQueueTimeout(t *testing.T) {
	_, hs := newServer(t, Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 50 * time.Millisecond})
	gate := blockMorsels(t)

	done := make(chan int, 1)
	go func() {
		status, _, _, _ := callE(hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
		done <- status
	}()
	waitFor(t, "query in-flight", func() bool { return faultpoint.Hits("core-morsel") >= 1 })

	start := time.Now()
	status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
	if status != http.StatusTooManyRequests || m["code"] != "queue-timeout" {
		t.Fatalf("queued query: %d %v, want 429 queue-timeout", status, m)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("queue-timeout rejection took %v, want ~50ms", d)
	}

	close(gate)
	if got := <-done; got != http.StatusOK {
		t.Errorf("held query finished with %d, want 200", got)
	}
}

func TestFaultpointAdmissionReject(t *testing.T) {
	_, hs := newServer(t, Config{})
	faultpoint.Enable(FPAdmissionReject, faultpoint.Always(errors.New("injected admission failure")))
	defer faultpoint.Disable(FPAdmissionReject)

	status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT 1"})
	if status != http.StatusTooManyRequests || m["code"] != "admission-reject" {
		t.Fatalf("armed admission reject: %d %v, want 429 admission-reject", status, m)
	}
}

func TestFaultpointQueueFull(t *testing.T) {
	srv, hs := newServer(t, Config{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 5 * time.Second})
	gate := blockMorsels(t)
	faultpoint.Enable(FPQueueFull, faultpoint.Always(errors.New("injected queue overflow")))
	defer faultpoint.Disable(FPQueueFull)

	done := make(chan int, 1)
	go func() {
		status, _, _, _ := callE(hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
		done <- status
	}()
	waitFor(t, "query in-flight", func() bool { return faultpoint.Hits("core-morsel") >= 1 })

	// The queue has room, but the armed faultpoint forces the overflow path.
	status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
	if status != http.StatusTooManyRequests || m["code"] != "queue-full" {
		t.Fatalf("armed queue-full: %d %v, want 429 queue-full", status, m)
	}
	if srv.queued.Load() != 0 {
		t.Errorf("rejected request left queued counter at %d", srv.queued.Load())
	}

	close(gate)
	if got := <-done; got != http.StatusOK {
		t.Errorf("held query finished with %d, want 200", got)
	}
}

// TestFaultpointSessionCancel arms the mid-request cancellation point: the
// session dies between admission and execution, and the query answers with
// an explicit cancellation — no hang, no torn response.
func TestFaultpointSessionCancel(t *testing.T) {
	_, hs := newServer(t, Config{})
	_, m, _ := call(t, hs, "POST", "/v1/session", nil)
	sid := m["session"].(string)

	faultpoint.Enable(FPSessionCancel, faultpoint.Always(errors.New("injected session cancel")))
	defer faultpoint.Disable(FPSessionCancel)

	status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"session": sid, "sql": "SELECT COUNT(*) FROM t"})
	if status != StatusClientClosedRequest || m["code"] != "canceled" {
		t.Fatalf("canceled session query: %d %v, want 499 canceled", status, m)
	}
	faultpoint.Disable(FPSessionCancel)

	// The session is now closed; further use reports it explicitly.
	status, m, _ = call(t, hs, "POST", "/v1/query", map[string]any{"session": sid, "sql": "SELECT 1"})
	if status != http.StatusGone || m["code"] != "session-closed" {
		t.Fatalf("query on canceled session: %d %v, want 410 session-closed", status, m)
	}
}

// TestDeleteSessionCancelsInflight closes a session out from under its
// running query and proves the query aborts cleanly instead of finishing.
func TestDeleteSessionCancelsInflight(t *testing.T) {
	_, hs := newServer(t, Config{})
	_, m, _ := call(t, hs, "POST", "/v1/session", nil)
	sid := m["session"].(string)
	gate := blockMorsels(t)

	done := make(chan int, 1)
	go func() {
		status, _, _, _ := callE(hs, "POST", "/v1/query", map[string]any{"session": sid, "sql": "SELECT COUNT(*) FROM t"})
		done <- status
	}()
	waitFor(t, "query in-flight", func() bool { return faultpoint.Hits("core-morsel") >= 1 })

	if status, m, _ := call(t, hs, "DELETE", "/v1/session/"+sid, nil); status != http.StatusOK {
		t.Fatalf("delete: %d %v", status, m)
	}
	close(gate) // let the worker reach its next cancellation check
	if got := <-done; got != StatusClientClosedRequest {
		t.Errorf("in-flight query on deleted session finished with %d, want 499", got)
	}
}

func TestSessionQuota(t *testing.T) {
	_, hs := newServer(t, Config{MaxConcurrent: 4, SessionQuota: 1})
	_, m, _ := call(t, hs, "POST", "/v1/session", nil)
	sid := m["session"].(string)
	gate := blockMorsels(t)

	done := make(chan int, 1)
	go func() {
		status, _, _, _ := callE(hs, "POST", "/v1/query", map[string]any{"session": sid, "sql": "SELECT COUNT(*) FROM t"})
		done <- status
	}()
	waitFor(t, "query in-flight", func() bool { return faultpoint.Hits("core-morsel") >= 1 })

	status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"session": sid, "sql": "SELECT 1"})
	if status != http.StatusTooManyRequests || m["code"] != "session-quota" {
		t.Fatalf("over-quota query: %d %v, want 429 session-quota", status, m)
	}
	// An anonymous request is not bound by that session's quota: it gets
	// admitted (then parks on the same morsel gate) instead of a 429.
	anon := make(chan int, 1)
	go func() {
		status, _, _, _ := callE(hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
		anon <- status
	}()

	close(gate)
	if got := <-done; got != http.StatusOK {
		t.Errorf("held query finished with %d, want 200", got)
	}
	if got := <-anon; got != http.StatusOK {
		t.Errorf("anonymous query under another session's quota pressure: %d, want 200", got)
	}
}

// TestQueryTimeout runs a runaway query under a session timeout: the
// interrupt watchdog stops the guest spin and the API answers 504.
func TestQueryTimeout(t *testing.T) {
	_, hs := newServer(t, Config{})
	_, m, _ := call(t, hs, "POST", "/v1/session", nil)
	sid := m["session"].(string)
	call(t, hs, "POST", "/v1/set", map[string]string{"session": sid, "key": "timeout", "value": "100ms"})

	faultpoint.Enable("core-infinite-loop", faultpoint.Always(errors.New("arm")))
	defer faultpoint.Disable("core-infinite-loop")

	status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"session": sid, "sql": "SELECT COUNT(*) FROM t"})
	if status != http.StatusGatewayTimeout || m["code"] != "query-timeout" {
		t.Fatalf("runaway query: %d %v, want 504 query-timeout", status, m)
	}
}

// TestGracefulShutdown: draining flips health to 503 and sheds new arrivals,
// while the in-flight query is drained to completion, not killed.
func TestGracefulShutdown(t *testing.T) {
	srv, hs := newServer(t, Config{MaxConcurrent: 2})
	gate := blockMorsels(t)

	done := make(chan int, 1)
	go func() {
		status, _, _, _ := callE(hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
		done <- status
	}()
	waitFor(t, "query in-flight", func() bool { return faultpoint.Hits("core-morsel") >= 1 })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	waitFor(t, "draining", func() bool { return srv.draining.Load() })

	if status, _, _ := call(t, hs, "GET", "/healthz", nil); status != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", status)
	}
	status, m, _ := call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT 1"})
	if status != http.StatusServiceUnavailable || m["code"] != "shutdown" {
		t.Errorf("query while draining: %d %v, want 503 shutdown", status, m)
	}

	close(gate)
	if got := <-done; got != http.StatusOK {
		t.Errorf("drained query finished with %d, want 200 (drain must not kill it)", got)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("clean drain returned %v, want nil", err)
	}
}

// TestShutdownForceCancel: when the drain deadline passes, in-flight work is
// canceled through the context plumbing and Shutdown still returns promptly.
func TestShutdownForceCancel(t *testing.T) {
	srv, hs := newServer(t, Config{MaxConcurrent: 2})
	faultpoint.Enable("core-infinite-loop", faultpoint.Always(errors.New("arm")))
	defer faultpoint.Disable("core-infinite-loop")

	done := make(chan int, 1)
	go func() {
		status, _, _, _ := callE(hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
		done <- status
	}()
	waitFor(t, "query in-flight", func() bool { return srv.gActive.Value() >= 1 })
	time.Sleep(20 * time.Millisecond) // let it enter the guest spin

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("forced shutdown returned %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 8*time.Second {
		t.Errorf("forced shutdown took %v; cancellation did not land", d)
	}
	if got := <-done; got == http.StatusOK {
		t.Error("runaway query reported success after force-cancellation")
	}
}

// TestSaturation floods a 2-slot server from 8 clients at 4x capacity with
// deliberately slowed queries: every request gets an answer (success or an
// explicit 429), nothing hangs, and the books balance afterwards.
func TestSaturation(t *testing.T) {
	srv, hs := newServer(t, Config{MaxConcurrent: 2, MaxQueue: 1, QueueTimeout: 10 * time.Millisecond, WorkerSlots: 2})
	faultpoint.Enable("core-morsel", func(int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	defer faultpoint.Disable("core-morsel")

	const vus, reqs = 8, 12
	var mu sync.Mutex
	counts := map[int]int{}
	var wg sync.WaitGroup
	for v := 0; v < vus; v++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				status, _, _, err := callE(hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*), SUM(a) FROM t"})
				if err != nil {
					status = -1
				}
				mu.Lock()
				counts[status]++
				mu.Unlock()
			}
		}()
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(60 * time.Second):
		t.Fatal("saturation workload hung")
	}

	for status := range counts {
		if status != http.StatusOK && status != http.StatusTooManyRequests {
			t.Errorf("unexpected status %d under saturation (%d times)", status, counts[status])
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Error("no query succeeded under saturation")
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Error("4x overload produced zero explicit rejections — shedding did not engage")
	}
	if got := srv.queued.Load(); got != 0 {
		t.Errorf("queued counter = %d after workload, want 0", got)
	}
	if got := len(srv.sem); got != 0 {
		t.Errorf("%d execution slots still held after workload", got)
	}
	if got := srv.sched.InUse(); got != 0 {
		t.Errorf("%d scheduler slots still leased after workload", got)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, hs := newServer(t, Config{})
	if status, _, _ := call(t, hs, "GET", "/healthz", nil); status != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", status)
	}
	call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})

	req, _ := http.NewRequest("GET", hs.URL+"/v1/metrics", nil)
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "server_admitted_total") {
		t.Errorf("metrics dump missing server counters:\n%s", body)
	}
}

func TestConvertArgs(t *testing.T) {
	got := convertArgs([]any{float64(7), 2.5, "x", true, nil})
	if got[0] != int64(7) {
		t.Errorf("integral float64 → %T(%v), want int64(7)", got[0], got[0])
	}
	if got[1] != 2.5 || got[2] != "x" || got[3] != true || got[4] != nil {
		t.Errorf("non-integral args mangled: %v", got)
	}
}
