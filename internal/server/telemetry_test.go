package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wasmdb/internal/faultpoint"
	"wasmdb/internal/obs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the query log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logRecords parses the query log's JSON lines.
func logRecords(t *testing.T, text string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("query log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

// getBody issues a GET and returns status, body, and headers.
func getBody(t *testing.T, url string, hdr map[string]string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// TestPrometheusEndpoint: GET /metrics serves valid exposition-format text
// including the labeled query-latency histogram and runtime go_* gauges.
func TestPrometheusEndpoint(t *testing.T) {
	_, hs := newServer(t, Config{})
	status, _, _ := call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
	if status != http.StatusOK {
		t.Fatalf("query status %d", status)
	}

	code, body, hdr := getBody(t, hs.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != obs.ContentTypePrometheus {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE wasmdb_query_latency_seconds histogram",
		`wasmdb_query_latency_seconds_bucket{backend="wasm-adaptive"`,
		`cache=`, `tier=`, `le=`,
		"# TYPE wasmdb_server_requests_total counter",
		`wasmdb_server_requests_total{code="200",route="/v1/query"}`,
		"# TYPE go_goroutines gauge",
		"wasmdb_server_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// HELP precedes every family; spot-check shape with a strict line scan.
	sawHelp := false
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP wasmdb_query_latency_seconds ") {
			sawHelp = true
		}
		if !strings.HasPrefix(line, "# ") && strings.Count(line, " ") < 1 {
			t.Errorf("malformed sample line: %q", line)
		}
	}
	if !sawHelp {
		t.Error("no HELP line for wasmdb_query_latency_seconds")
	}
}

// TestMetricsV1ContentNegotiation: the legacy endpoint keeps its text dump,
// serves JSON under Accept: application/json, and the Prometheus form when
// asked for by version.
func TestMetricsV1ContentNegotiation(t *testing.T) {
	_, hs := newServer(t, Config{})
	call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT 1 FROM t LIMIT 1"})

	_, body, hdr := getBody(t, hs.URL+"/v1/metrics", nil)
	if !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") || !strings.Contains(body, "queries_total.wasm-adaptive:") {
		t.Errorf("default /v1/metrics is not the legacy dump: %q", hdr.Get("Content-Type"))
	}
	_, body, hdr = getBody(t, hs.URL+"/v1/metrics", map[string]string{"Accept": "application/json"})
	if hdr.Get("Content-Type") != "application/json" {
		t.Errorf("JSON Accept got Content-Type %q", hdr.Get("Content-Type"))
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("JSON form did not parse: %v", err)
	}
	_, body, hdr = getBody(t, hs.URL+"/v1/metrics", map[string]string{"Accept": obs.ContentTypePrometheus})
	if hdr.Get("Content-Type") != obs.ContentTypePrometheus || !strings.Contains(body, "# TYPE") {
		t.Errorf("Prometheus Accept not honored: %q", hdr.Get("Content-Type"))
	}
}

// TestRequestIDs: every response carries X-Request-Id — honored when the
// client supplies one, generated otherwise — and it threads into the query
// log and the flight-recorder trace.
func TestRequestIDs(t *testing.T) {
	qlog := &syncBuffer{}
	s, hs := newServer(t, Config{QueryLogWriter: qlog, TraceSampleEvery: 1})

	// Generated when absent, on every route.
	_, _, hdr := getBody(t, hs.URL+"/healthz", nil)
	if hdr.Get("X-Request-Id") == "" {
		t.Error("no generated X-Request-Id on /healthz")
	}

	// Honored when present, and threaded into the telemetry.
	req, _ := http.NewRequest("POST", hs.URL+"/v1/query",
		strings.NewReader(`{"sql": "SELECT COUNT(*) FROM t"}`))
	req.Header.Set("X-Request-Id", "test-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "test-req-7" {
		t.Errorf("supplied request ID not echoed: %q", got)
	}

	waitFor(t, "query-log record with request ID", func() bool {
		return strings.Contains(qlog.String(), "test-req-7")
	})
	recs := logRecords(t, qlog.String())
	found := false
	for _, r := range recs {
		if r["request_id"] == "test-req-7" {
			found = true
			if r["sql"] != "SELECT COUNT(*) FROM t" {
				t.Errorf("record sql = %v", r["sql"])
			}
		}
	}
	if !found {
		t.Fatalf("request ID not in query log: %s", qlog.String())
	}
	// TraceSampleEvery=1 captures everything: the trace lane carries the ID.
	var buf bytes.Buffer
	if err := s.FlightRecorder().WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test-req-7") {
		t.Error("request ID not in flight-recorder trace")
	}
}

// TestSlowAndErroredQueriesCaptured is the acceptance e2e: a slow query
// (over threshold) and an errored query each produce a structured query-log
// record and a retrievable flight-recorder trace.
func TestSlowAndErroredQueriesCaptured(t *testing.T) {
	qlog := &syncBuffer{}
	// SlowQuery=1ns: everything that executes classifies slow. Sampling off:
	// captures must come from the slow/error paths alone.
	_, hs := newServer(t, Config{QueryLogWriter: qlog, SlowQuery: time.Nanosecond, TraceSampleEvery: -1})

	status, _, _ := call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
	if status != http.StatusOK {
		t.Fatalf("slow query status %d", status)
	}
	status, _, _ = call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT nope FROM t"})
	if status != http.StatusBadRequest {
		t.Fatalf("errored query status %d", status)
	}

	waitFor(t, "two query-log records", func() bool { return len(logRecords(t, qlog.String())) >= 2 })
	recs := logRecords(t, qlog.String())
	var slow, errored map[string]any
	for _, r := range recs {
		if r["error"] != nil {
			errored = r
		} else if r["slow"] == true {
			slow = r
		}
	}
	if slow == nil {
		t.Fatalf("no slow record in log: %s", qlog.String())
	}
	if errored == nil {
		t.Fatalf("no errored record in log: %s", qlog.String())
	}
	// The slow record carries the full latency breakdown and adaptive fields.
	for _, key := range []string{"query_hash", "plan_fingerprint", "backend", "tier",
		"plan_cache", "parse_ns", "compile_ns", "execute_ns", "total_ns"} {
		if _, ok := slow[key]; !ok {
			t.Errorf("slow record missing %q: %v", key, slow)
		}
	}
	if errored["query_hash"] == nil || !strings.Contains(errored["error"].(string), "nope") {
		t.Errorf("errored record malformed: %v", errored)
	}

	// Both are retrievable from the flight recorder over HTTP.
	code, body, _ := getBody(t, hs.URL+"/debug/flightrecorder", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/flightrecorder: %d", code)
	}
	var dump struct {
		Entries []obs.FlightEntry `json:"entries"`
		Trace   struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("flight dump not JSON: %v", err)
	}
	var sawSlow, sawError bool
	for _, e := range dump.Entries {
		switch e.Reason {
		case obs.CaptureSlow:
			sawSlow = true
		case obs.CaptureError:
			sawError = true
		}
	}
	if !sawSlow || !sawError {
		t.Fatalf("flight recorder missing captures: slow=%v error=%v", sawSlow, sawError)
	}
	if len(dump.Trace.TraceEvents) == 0 {
		t.Error("flight dump carries no trace events")
	}
	// And as a bare Chrome trace for Perfetto.
	code, body, _ = getBody(t, hs.URL+"/debug/flightrecorder?format=trace", nil)
	if code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("trace format dump: %d %q", code, body[:min(80, len(body))])
	}
}

// TestRejectedRequestsGetRequestIDs: shed requests still carry request IDs
// and land in the per-route metrics (the 429 path is exactly when operators
// need them).
func TestRejectedRequestsGetRequestIDs(t *testing.T) {
	faultpoint.Enable(FPAdmissionReject, faultpoint.Always(errors.New("injected admission failure")))
	defer faultpoint.Disable(FPAdmissionReject)
	_, hs := newServer(t, Config{})
	before := obs.Default.CounterWith(obs.MetricServerRequests,
		obs.Label{Key: "route", Val: "/v1/query"}, obs.Label{Key: "code", Val: "429"}).Value()
	req, _ := http.NewRequest("POST", hs.URL+"/v1/query", strings.NewReader(`{"sql":"SELECT 1 FROM t"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("shed request has no request ID")
	}
	after := obs.Default.CounterWith(obs.MetricServerRequests,
		obs.Label{Key: "route", Val: "/v1/query"}, obs.Label{Key: "code", Val: "429"}).Value()
	if after != before+1 {
		t.Errorf("429 not counted in server_requests_total: %d → %d", before, after)
	}
}

// TestPprofGated: /debug/pprof/ is 404 by default and served when enabled.
func TestPprofGated(t *testing.T) {
	_, hs := newServer(t, Config{})
	code, _, _ := getBody(t, hs.URL+"/debug/pprof/", nil)
	if code != http.StatusNotFound {
		t.Errorf("pprof served without EnablePprof: %d", code)
	}
	_, hs2 := newServer(t, Config{EnablePprof: true})
	code, body, _ := getBody(t, hs2.URL+"/debug/pprof/", nil)
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index not served when enabled: %d", code)
	}
}

// TestQueryLogClosedOnShutdown: Shutdown flushes and stops the query-log
// flusher (the package TestMain leak sweep would catch a stray goroutine;
// this asserts flushing too).
func TestQueryLogClosedOnShutdown(t *testing.T) {
	qlog := &syncBuffer{}
	s, hs := newServer(t, Config{QueryLogWriter: qlog})
	call(t, hs, "POST", "/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if len(logRecords(t, qlog.String())) == 0 {
		t.Error("query log not flushed by Shutdown")
	}
	// Idempotent: the test-cleanup Shutdown must not panic on the closed log.
}
