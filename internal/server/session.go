package server

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"wasmdb"
)

// session is one client's server-side state: prepared statements, \set-style
// execution options, a per-session context (canceling it aborts every
// in-flight query of the session), and the in-flight counter its concurrency
// quota is enforced against.
type session struct {
	id string

	// ctx is a child of the server's base context: closing the session —
	// or force-canceling the server at shutdown — cancels every query
	// running under it.
	ctx    context.Context
	cancel context.CancelFunc

	// inflight counts the session's currently executing queries, bounded by
	// Config.SessionQuota. Guarded by mu with the settings below.
	mu       sync.Mutex
	inflight int
	closed   bool

	// \set-style options, applied to every query of the session.
	backend      wasmdb.Backend
	parallelism  int
	plancacheOff bool
	fuel         int64
	memBytes     uint64
	timeout      time.Duration

	// stmts are the session's prepared statements, keyed by handle ("p1").
	stmts    map[string]*wasmdb.Stmt
	nextStmt int
}

// acquire claims one in-flight slot against the session's quota.
func (ss *session) acquire(quota int) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return errSessionClosed
	}
	if quota > 0 && ss.inflight >= quota {
		return errSessionQuota
	}
	ss.inflight++
	return nil
}

// release returns an in-flight slot.
func (ss *session) release() {
	ss.mu.Lock()
	ss.inflight--
	ss.mu.Unlock()
}

// close cancels the session's context (aborting its in-flight queries) and
// marks it unusable.
func (ss *session) close() {
	ss.mu.Lock()
	ss.closed = true
	ss.mu.Unlock()
	ss.cancel()
}

// options renders the session's settings as query options. Callers hold no
// locks during execution, so the settings are snapshotted under mu.
func (ss *session) options() ([]wasmdb.Option, time.Duration) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	opts := []wasmdb.Option{wasmdb.WithBackend(ss.backend)}
	if ss.parallelism > 1 {
		opts = append(opts, wasmdb.WithParallelism(ss.parallelism))
	}
	if ss.plancacheOff {
		opts = append(opts, wasmdb.WithPlanCache(false))
	}
	if ss.fuel > 0 {
		opts = append(opts, wasmdb.WithFuel(ss.fuel))
	}
	if ss.memBytes > 0 {
		opts = append(opts, wasmdb.WithMemoryLimit(ss.memBytes))
	}
	return opts, ss.timeout
}

// set applies one \set-style option to the session.
func (ss *session) set(key, value string) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch key {
	case "backend":
		b, ok := backendByName(value)
		if !ok {
			return fmt.Errorf("unknown backend %q (auto, wasm, liftoff, turbofan, hyper, vectorized, volcano)", value)
		}
		ss.backend = b
	case "parallelism":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("parallelism wants a non-negative integer, got %q", value)
		}
		ss.parallelism = n
	case "plancache":
		switch value {
		case "on":
			ss.plancacheOff = false
		case "off":
			ss.plancacheOff = true
		default:
			return fmt.Errorf("plancache wants on|off, got %q", value)
		}
	case "fuel":
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("fuel wants a non-negative integer, got %q", value)
		}
		ss.fuel = n
	case "memlimit":
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("memlimit wants a byte count, got %q", value)
		}
		ss.memBytes = n
	case "timeout":
		d, err := time.ParseDuration(value)
		if err != nil || d < 0 {
			return fmt.Errorf("timeout wants a duration, got %q", value)
		}
		ss.timeout = d
	default:
		return fmt.Errorf("settable: backend, parallelism, plancache, fuel, memlimit, timeout")
	}
	return nil
}

// prepare registers a prepared statement and returns its handle.
func (ss *session) prepare(stmt *wasmdb.Stmt) string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.nextStmt++
	id := "p" + strconv.Itoa(ss.nextStmt)
	ss.stmts[id] = stmt
	return id
}

// stmt looks up a prepared statement by handle.
func (ss *session) stmt(id string) (*wasmdb.Stmt, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.stmts[id]
	return s, ok
}

func backendByName(name string) (wasmdb.Backend, bool) {
	switch name {
	case "auto":
		return wasmdb.BackendAuto, true
	case "wasm", "adaptive":
		return wasmdb.BackendWasm, true
	case "liftoff":
		return wasmdb.BackendWasmLiftoff, true
	case "turbofan":
		return wasmdb.BackendWasmTurbofan, true
	case "hyper":
		return wasmdb.BackendHyperLike, true
	case "vectorized":
		return wasmdb.BackendVectorized, true
	case "volcano":
		return wasmdb.BackendVolcano, true
	}
	return 0, false
}
