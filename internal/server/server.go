// Package server is the concurrent query service over wasmdb.DB: an HTTP
// front-end with per-session state (prepared statements, \set-style
// options), a shared global morsel scheduler that multiplexes worker slots
// across concurrent queries, and admission control built for overload —
// a bounded, deadline-aware admission queue that sheds excess load with
// fast explicit rejections (never unbounded queueing), per-session
// concurrency/fuel/memory quotas, per-query timeouts with clean
// cancellation, and graceful shutdown that stops admitting, drains
// in-flight queries under a deadline, and only then cancels.
//
// Degradation order under pressure, strictly: new work is shed before
// queued work, queued work before in-flight work, and parallel queries
// degrade to serial (the scheduler's "worker-slots-exhausted" fallback)
// before anything is killed.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wasmdb"
	"wasmdb/internal/faultpoint"
	"wasmdb/internal/obs"
)

// Faultpoint names of the serving path, armed by tests to exercise overload
// and mid-request failure paths deterministically (see internal/faultpoint).
const (
	// FPAdmissionReject forces the admission gate to reject the request.
	FPAdmissionReject = "server-admission-reject"
	// FPQueueFull forces the bounded-queue overflow path.
	FPQueueFull = "server-queue-full"
	// FPSessionCancel cancels the request's session just before execution —
	// a deterministic mid-request cancellation.
	FPSessionCancel = "server-session-cancel"
)

// StatusClientClosedRequest reports a query aborted by its own session being
// closed or the client disconnecting (nginx's 499 convention).
const StatusClientClosedRequest = 499

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent bounds simultaneously executing queries (default
	// GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds queries waiting for an execution slot; arrivals
	// beyond it are rejected immediately with a queue-full error rather
	// than queued (default 4 × MaxConcurrent).
	MaxQueue int
	// QueueTimeout bounds how long an admitted-to-queue request may wait
	// for an execution slot before it is rejected (default 250ms). The
	// request's own deadline caps it further.
	QueueTimeout time.Duration
	// QueryTimeout bounds each query's wall-clock execution (default 30s;
	// sessions may set a shorter one with \set timeout).
	QueryTimeout time.Duration
	// SessionQuota bounds one session's concurrently executing queries
	// (default 4; <= 0 means unbounded).
	SessionQuota int
	// WorkerSlots sizes the shared global morsel scheduler (default
	// GOMAXPROCS extra-worker slots).
	WorkerSlots int
	// DefaultParallelism is the per-query worker request for sessions that
	// never \set parallelism (default 1 = serial).
	DefaultParallelism int

	// QueryLogWriter receives the structured query log — one JSON record per
	// executed query — through a non-blocking asynchronous sink. Nil disables
	// the log (the flight recorder still runs).
	QueryLogWriter io.Writer
	// SlowQuery is the slow-query threshold: queries at or over it are
	// flagged Slow in the log, promoted (rate-limited) to carry their full
	// span timeline, and always captured by the flight recorder (default
	// 500ms; < 0 disables slow classification).
	SlowQuery time.Duration
	// TraceSampleEvery captures one in N ordinary queries into the flight
	// recorder, in addition to every slow and errored query (default 64;
	// < 0 disables sampling).
	TraceSampleEvery int
	// FlightRecorderSize bounds the flight-recorder ring (default 256
	// entries; the oldest capture is evicted first).
	FlightRecorderSize int
	// EnablePprof exposes net/http/pprof under /debug/pprof/. Off by
	// default: profiles can carry SQL text.
	EnablePprof bool
}

func (c *Config) norm() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 250 * time.Millisecond
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.SessionQuota == 0 {
		c.SessionQuota = 4
	}
	if c.DefaultParallelism <= 0 {
		c.DefaultParallelism = 1
	}
	if c.SlowQuery == 0 {
		c.SlowQuery = 500 * time.Millisecond
	}
	if c.TraceSampleEvery == 0 {
		c.TraceSampleEvery = 64
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 256
	}
}

// Server is the query service. Create with New, expose with Handler, stop
// with Shutdown.
type Server struct {
	db    *wasmdb.DB
	cfg   Config
	sched *wasmdb.Scheduler

	// sem holds one token per executing query; the admission queue is the
	// set of goroutines waiting on it, bounded by queued <= MaxQueue.
	sem    chan struct{}
	queued atomic.Int64

	// draining flips at Shutdown: the admission gate rejects everything
	// after it, and inflight drains to zero.
	draining atomic.Bool
	inflight sync.WaitGroup

	// baseCtx parents every session and anonymous query; cancelAll is the
	// shutdown deadline's last resort.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*session
	nextSess int

	// Telemetry: the structured query log (nil when no QueryLogWriter was
	// configured; Observe on a nil log is a no-op) and the always-on flight
	// recorder.
	qlog *obs.QueryLog
	frec *obs.FlightRecorder

	// Metrics handles, resolved once.
	mAdmitted *obs.Counter
	gQueue    *obs.Gauge
	gActive   *obs.Gauge
	gSessions *obs.Gauge
	gDraining *obs.Gauge
	hAdmit    *obs.Histogram
	hLatency  *obs.Histogram
}

// New creates a service over db. The db may be shared with other frontends;
// the server adds no state to it.
func New(db *wasmdb.DB, cfg Config) *Server {
	cfg.norm()
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:        db,
		cfg:       cfg,
		sched:     wasmdb.NewScheduler(cfg.WorkerSlots),
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		baseCtx:   baseCtx,
		cancelAll: cancel,
		sessions:  map[string]*session{},
		frec:      obs.NewFlightRecorder(cfg.FlightRecorderSize, cfg.TraceSampleEvery),
		mAdmitted: obs.Default.Counter(obs.MetricServerAdmitted),
		gQueue:    obs.Default.Gauge(obs.MetricServerQueueDepth),
		gActive:   obs.Default.Gauge(obs.MetricServerActive),
		gSessions: obs.Default.Gauge(obs.MetricServerSessions),
		gDraining: obs.Default.Gauge(obs.MetricServerDraining),
		hAdmit:    obs.Default.Histogram(obs.MetricServerAdmissionWait),
		hLatency:  obs.Default.Histogram(obs.MetricServerQueryLatency),
	}
	if cfg.QueryLogWriter != nil {
		s.qlog = obs.NewQueryLog(obs.NewWriterSink(cfg.QueryLogWriter), obs.QueryLogConfig{})
	}
	s.gDraining.Set(0)
	return s
}

// Scheduler returns the shared global morsel scheduler, for tests and for
// embedding frontends that execute queries outside the HTTP path.
func (s *Server) Scheduler() *wasmdb.Scheduler { return s.sched }

// FlightRecorder returns the server's flight recorder, for tests and for
// embedding frontends that want to dump it outside the HTTP path.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.frec }

// apiError is a typed, HTTP-mappable service error.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

var (
	errQueueFull = &apiError{http.StatusTooManyRequests, "queue-full",
		"server overloaded: admission queue full"}
	errQueueTimeout = &apiError{http.StatusTooManyRequests, "queue-timeout",
		"server overloaded: no execution slot within the queue deadline"}
	errShuttingDown = &apiError{http.StatusServiceUnavailable, "shutdown",
		"server is shutting down"}
	errSessionQuota = &apiError{http.StatusTooManyRequests, "session-quota",
		"session concurrency quota exhausted"}
	errSessionClosed = &apiError{http.StatusGone, "session-closed",
		"session is closed"}
	errUnknownSession = &apiError{http.StatusNotFound, "unknown-session",
		"unknown session"}
)

// reject counts one shed request under its reason label.
func reject(code string) {
	obs.Default.Counter(obs.MetricServerRejected + "." + code).Add(1)
}

// admit is the admission gate. It grants an execution slot or fails fast:
// the queue is bounded (MaxQueue waiters), the wait is bounded
// (QueueTimeout, capped by the request's own deadline), and once draining
// starts nothing new is admitted. The returned release func must be called
// exactly once after execution.
func (s *Server) admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	if s.draining.Load() {
		reject(errShuttingDown.code)
		return nil, 0, errShuttingDown
	}
	if ferr := faultpoint.Hit(FPAdmissionReject); ferr != nil {
		reject("faultpoint")
		return nil, 0, &apiError{http.StatusTooManyRequests, "admission-reject",
			"admission rejected: " + ferr.Error()}
	}
	start := time.Now()
	admitted := false
	select {
	case s.sem <- struct{}{}:
		admitted = true
	default:
	}
	if !admitted {
		// Slow path: join the bounded queue.
		if ferr := faultpoint.Hit(FPQueueFull); ferr != nil {
			reject(errQueueFull.code)
			return nil, 0, errQueueFull
		}
		if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			reject(errQueueFull.code)
			return nil, 0, errQueueFull
		}
		s.gQueue.Set(s.queued.Load())
		timer := time.NewTimer(s.cfg.QueueTimeout)
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			timer.Stop()
			s.gQueue.Set(s.queued.Add(-1))
			reject("canceled")
			return nil, 0, &apiError{StatusClientClosedRequest, "canceled",
				"request canceled while queued"}
		case <-timer.C:
			s.gQueue.Set(s.queued.Add(-1))
			reject(errQueueTimeout.code)
			return nil, 0, errQueueTimeout
		}
		timer.Stop()
		s.gQueue.Set(s.queued.Add(-1))
	}
	if s.draining.Load() {
		// Drain began while we held or waited for the slot: shed rather
		// than start new work the drain deadline would have to kill.
		<-s.sem
		reject(errShuttingDown.code)
		return nil, 0, errShuttingDown
	}
	wait = time.Since(start)
	s.hAdmit.Observe(wait.Nanoseconds())
	s.mAdmitted.Add(1)
	s.inflight.Add(1)
	s.gActive.Set(int64(len(s.sem)))
	return func() {
		<-s.sem
		s.gActive.Set(int64(len(s.sem)))
		s.inflight.Done()
	}, wait, nil
}

// Shutdown stops admitting new queries, waits for in-flight queries to
// drain, and — if ctx expires first — cancels them through the context
// plumbing (the PR-1 interrupt watchdog stops even mid-morsel guest code)
// and waits for the cancellations to land. It returns nil on a clean drain
// and ctx.Err() when force-cancellation was needed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.gDraining.Set(1)
	// The query log drains last — queries finishing during the drain still
	// log — and Close is idempotent, so a double Shutdown is safe.
	defer s.qlog.Close()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeAllSessions()
		return nil
	case <-ctx.Done():
	}
	// Drain deadline passed: cancel everything and wait for the interrupt
	// watchdogs to stop the stragglers. Cancellation reaches inside running
	// morsels, so this wait is short and bounded in practice; the grace
	// window exists so a wedged query cannot hang Shutdown forever.
	s.cancelAll()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("server: queries did not stop after cancellation: %w", ctx.Err())
	}
	s.closeAllSessions()
	return ctx.Err()
}

func (s *Server) closeAllSessions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ss := range s.sessions {
		ss.close()
		delete(s.sessions, id)
	}
	s.gSessions.Set(0)
}

// Handler returns the service's HTTP routes, wrapped in the telemetry
// middleware (request IDs + per-route SLO metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/session", s.handleSessionNew)
	mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	mux.HandleFunc("POST /v1/set", s.handleSet)
	mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/exec", s.handleExec)
	mux.HandleFunc("GET /v1/metrics", s.handleMetricsV1)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.EnablePprof {
		registerPprof(mux)
	}
	return s.middleware(mux)
}

// writeJSON emits a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps an error to its HTTP shape. Overload rejections carry
// Retry-After so well-behaved clients back off.
func writeErr(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		if ae.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, ae.status, map[string]string{"error": ae.msg, "code": ae.code})
		return
	}
	status, code := http.StatusBadRequest, "query-error"
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status, code = http.StatusGatewayTimeout, "query-timeout"
	case errors.Is(err, context.Canceled):
		status, code = StatusClientClosedRequest, "canceled"
	case errors.Is(err, wasmdb.ErrFuelExhausted):
		status, code = http.StatusTooManyRequests, "fuel-exhausted"
	case errors.Is(err, wasmdb.ErrMemoryLimit):
		status, code = http.StatusTooManyRequests, "memory-limit"
	}
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

// decode parses a bounded JSON request body.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &apiError{http.StatusBadRequest, "bad-request", "invalid request body: " + err.Error()}
	}
	return nil
}

func (s *Server) handleSessionNew(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, errShuttingDown)
		return
	}
	s.mu.Lock()
	s.nextSess++
	id := "s" + strconv.Itoa(s.nextSess)
	ctx, cancel := context.WithCancel(s.baseCtx)
	ss := &session{
		id: id, ctx: ctx, cancel: cancel,
		backend:     wasmdb.BackendWasm,
		parallelism: s.cfg.DefaultParallelism,
		stmts:       map[string]*wasmdb.Stmt{},
	}
	s.sessions[id] = ss
	s.gSessions.Set(int64(len(s.sessions)))
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"session": id})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ss, ok := s.sessions[id]
	delete(s.sessions, id)
	s.gSessions.Set(int64(len(s.sessions)))
	s.mu.Unlock()
	if !ok {
		writeErr(w, errUnknownSession)
		return
	}
	// Closing cancels the session's in-flight queries; their handlers
	// observe the cancellation and answer 499 — no half-written responses.
	ss.close()
	writeJSON(w, http.StatusOK, map[string]string{"session": id, "status": "closed"})
}

// lookup resolves a request's session ("" means anonymous).
func (s *Server) lookup(id string) (*session, error) {
	if id == "" {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ss, ok := s.sessions[id]
	if !ok {
		return nil, errUnknownSession
	}
	return ss, nil
}

func (s *Server) handleSet(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Key     string `json:"key"`
		Value   string `json:"value"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ss, err := s.lookup(req.Session)
	if err != nil {
		writeErr(w, err)
		return
	}
	if ss == nil {
		writeErr(w, &apiError{http.StatusBadRequest, "bad-request", "set requires a session"})
		return
	}
	if err := ss.set(req.Key, req.Value); err != nil {
		writeErr(w, &apiError{http.StatusBadRequest, "bad-option", err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{req.Key: req.Value})
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		SQL     string `json:"sql"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ss, err := s.lookup(req.Session)
	if err != nil {
		writeErr(w, err)
		return
	}
	if ss == nil {
		writeErr(w, &apiError{http.StatusBadRequest, "bad-request", "prepare requires a session"})
		return
	}
	stmt, err := s.db.Prepare(req.SQL)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stmt":   ss.prepare(stmt),
		"params": stmt.NumParams(),
	})
}

// handleExec runs a statement without a result set (CREATE TABLE, INSERT).
// DDL takes the catalog's exclusive lock, so it passes admission like any
// query — under overload, writes shed too.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req struct {
		SQL string `json:"sql"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	release, _, err := s.admit(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()
	if err := s.db.Exec(req.SQL); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// queryRequest is the /v1/query body: either sql text or a prepared
// statement handle, with optional placeholder args and per-request options.
type queryRequest struct {
	Session string `json:"session,omitempty"`
	SQL     string `json:"sql,omitempty"`
	Stmt    string `json:"stmt,omitempty"`
	Args    []any  `json:"args,omitempty"`
	// Trace returns the query's span timeline (including the admission
	// wait) in the response. Traced queries additionally wait for
	// background optimization to settle, as WithTrace documents.
	Trace bool `json:"trace,omitempty"`
}

type queryResponse struct {
	Columns  []string   `json:"columns"`
	Rows     [][]any    `json:"rows"`
	RowCount int        `json:"row_count"`
	Stats    statsJSON  `json:"stats"`
	Trace    []spanJSON `json:"trace,omitempty"`
}

type statsJSON struct {
	ExecNs         int64  `json:"exec_ns"`
	TranslateNs    int64  `json:"translate_ns"`
	AdmissionNs    int64  `json:"admission_ns"`
	Workers        int    `json:"workers"`
	SerialFallback string `json:"serial_fallback,omitempty"`
}

type spanJSON struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	var req queryRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if (req.SQL == "") == (req.Stmt == "") {
		writeErr(w, &apiError{http.StatusBadRequest, "bad-request",
			"exactly one of sql or stmt is required"})
		return
	}
	ss, err := s.lookup(req.Session)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Stmt != "" && ss == nil {
		writeErr(w, &apiError{http.StatusBadRequest, "bad-request",
			"stmt execution requires a session"})
		return
	}

	// Session quota first (cheap, per tenant), then the global gate.
	if ss != nil {
		if err := ss.acquire(s.cfg.SessionQuota); err != nil {
			reject(errSessionQuota.code)
			writeErr(w, err)
			return
		}
		defer ss.release()
	}
	release, wait, err := s.admit(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	defer release()

	// Deterministic mid-request failure for tests: an armed
	// server-session-cancel kills this request's session between admission
	// and execution, proving in-flight cancellation is clean.
	if ferr := faultpoint.Hit(FPSessionCancel); ferr != nil && ss != nil {
		ss.close()
	}

	// The query context: canceled by the client disconnecting, the session
	// closing, or server force-cancellation — whichever comes first — and
	// bounded by the query timeout.
	base := s.baseCtx
	timeout := s.cfg.QueryTimeout
	var opts []wasmdb.Option
	if ss != nil {
		base = ss.ctx
		var sessTimeout time.Duration
		opts, sessTimeout = ss.options()
		if sessTimeout > 0 && sessTimeout < timeout {
			timeout = sessTimeout
		}
	} else {
		opts = []wasmdb.Option{wasmdb.WithBackend(wasmdb.BackendWasm)}
		if s.cfg.DefaultParallelism > 1 {
			opts = append(opts, wasmdb.WithParallelism(s.cfg.DefaultParallelism))
		}
	}
	opts = append(opts, wasmdb.WithScheduler(s.sched))
	// Always-on telemetry: the request ID threads into the trace and log
	// record, and every query — success or error — lands in the structured
	// query log and is offered to the flight recorder.
	opts = append(opts,
		wasmdb.WithRequestID(RequestID(r)),
		wasmdb.WithQueryLog(func(rec wasmdb.QueryLogRecord) {
			s.observeQuery(rec, req.Session)
		}))
	ctx, cancel := context.WithTimeout(base, timeout)
	defer cancel()
	stopReq := context.AfterFunc(r.Context(), cancel)
	defer stopReq()

	var tr *wasmdb.Trace
	if req.Trace {
		tr = wasmdb.NewTrace()
		tr.AddSpan(obs.SpanAdmission, started, wait)
		opts = append(opts, wasmdb.WithTrace(tr))
	}

	var res *wasmdb.Result
	if req.Stmt != "" {
		stmt, ok := ss.stmt(req.Stmt)
		if !ok {
			writeErr(w, &apiError{http.StatusNotFound, "unknown-stmt",
				"unknown prepared statement " + req.Stmt})
			return
		}
		res, err = stmt.QueryContext(ctx, convertArgs(req.Args), opts...)
	} else if len(req.Args) > 0 {
		// Ad-hoc SQL with args: prepare transparently; the plan cache makes
		// the repeat path as cheap as a held statement handle.
		var stmt *wasmdb.Stmt
		if stmt, err = s.db.Prepare(req.SQL); err == nil {
			res, err = stmt.QueryContext(ctx, convertArgs(req.Args), opts...)
		}
	} else {
		res, err = s.db.QueryContext(ctx, req.SQL, opts...)
	}
	if err != nil {
		writeErr(w, err)
		return
	}

	out := queryResponse{
		Columns:  res.Columns,
		Rows:     make([][]any, res.NumRows()),
		RowCount: res.NumRows(),
		Stats: statsJSON{
			ExecNs:         res.Stats.Execute.Nanoseconds(),
			TranslateNs:    res.Stats.Translate.Nanoseconds(),
			AdmissionNs:    wait.Nanoseconds(),
			Workers:        res.Stats.Workers,
			SerialFallback: res.Stats.SerialFallback,
		},
	}
	for i := range out.Rows {
		row := make([]any, len(res.Columns))
		for c := range res.Columns {
			row[c] = res.Value(i, c)
		}
		out.Rows[i] = row
	}
	if tr != nil {
		for _, sp := range tr.Spans() {
			out.Trace = append(out.Trace, spanJSON{Name: sp.Name, Ns: sp.Dur.Nanoseconds()})
		}
	}
	s.hLatency.Observe(time.Since(started).Nanoseconds())
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// convertArgs maps JSON-decoded argument values onto the binder's accepted
// Go types: JSON numbers arrive as float64, but an integral float64 almost
// always means an integer column — pass it as int64 and let the typed bind
// decide.
func convertArgs(args []any) []any {
	out := make([]any, len(args))
	for i, a := range args {
		if f, ok := a.(float64); ok && f == float64(int64(f)) {
			out[i] = int64(f)
			continue
		}
		out[i] = a
	}
	return out
}
