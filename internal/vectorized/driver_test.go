package vectorized

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/types"
)

func testCatalog(t *testing.T, n int) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	r, err := cat.Create("r", []catalog.ColumnDef{
		{Name: "id", Type: types.TInt32},
		{Name: "x", Type: types.TInt32},
		{Name: "y", Type: types.TFloat64},
		{Name: "g", Type: types.TInt32},
		{Name: "price", Type: types.TDecimal(12, 2)},
		{Name: "name", Type: types.TChar(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	names := []string{"alpha", "beta", "gamma", "PROMO A", "PROMO B"}
	for i := 0; i < n; i++ {
		r.AppendRow(
			types.NewInt32(int32(i)),
			types.NewInt32(int32(rng.Intn(1000))),
			types.NewFloat64(rng.Float64()),
			types.NewInt32(int32(rng.Intn(7))),
			types.NewDecimal(int64(rng.Intn(100000)), 12, 2),
			types.NewChar(names[rng.Intn(len(names))], 8),
		)
	}
	s, err := cat.Create("s", []catalog.ColumnDef{
		{Name: "rid", Type: types.TInt32},
		{Name: "v", Type: types.TInt32},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n*2; i++ {
		s.AppendRow(types.NewInt32(int32(rng.Intn(n))), types.NewInt32(int32(rng.Intn(100))))
	}
	return cat
}

func runVec(t *testing.T, cat *catalog.Catalog, src string) [][]types.Value {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, _, err := Run(q, p)
	if err != nil {
		t.Fatalf("vectorized run: %v", err)
	}
	return rows
}

func rowsSorted(rows [][]types.Value) []string {
	var out []string
	for _, row := range rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func TestVecSelectCount(t *testing.T) {
	cat := testCatalog(t, 5000)
	rows := runVec(t, cat, "SELECT COUNT(*) FROM r WHERE x < 500")
	tbl, _ := cat.Table("r")
	xc, _ := tbl.Column("x")
	var want int64
	for i := 0; i < tbl.Rows(); i++ {
		if xc.I32At(i) < 500 {
			want++
		}
	}
	if len(rows) != 1 || rows[0][0].I != want {
		t.Fatalf("count = %v, want %d", rows, want)
	}
}

func TestVecProjection(t *testing.T) {
	cat := testCatalog(t, 100)
	rows := runVec(t, cat, "SELECT id, x + 1, name FROM r WHERE id < 7")
	if len(rows) != 7 {
		t.Fatalf("rows: %d", len(rows))
	}
	tbl, _ := cat.Table("r")
	xc, _ := tbl.Column("x")
	nc, _ := tbl.Column("name")
	for _, row := range rows {
		id := int(row[0].I)
		if row[1].I != int64(xc.I32At(id))+1 {
			t.Errorf("row %d: %v", id, row[1])
		}
		if row[2].S != nc.CharAt(id) {
			t.Errorf("row %d name: %q want %q", id, row[2].S, nc.CharAt(id))
		}
	}
}

func TestVecGroupBy(t *testing.T) {
	cat := testCatalog(t, 5000)
	rows := runVec(t, cat, "SELECT g, COUNT(*), SUM(price), MIN(x), MAX(x), AVG(y) FROM r GROUP BY g")
	tbl, _ := cat.Table("r")
	gc, _ := tbl.Column("g")
	xc, _ := tbl.Column("x")
	pc, _ := tbl.Column("price")
	yc, _ := tbl.Column("y")
	type agg struct {
		n        int64
		sum      int64
		min, max int32
		fsum     float64
	}
	want := map[int32]*agg{}
	for i := 0; i < tbl.Rows(); i++ {
		g := gc.I32At(i)
		a := want[g]
		if a == nil {
			a = &agg{min: xc.I32At(i), max: xc.I32At(i)}
			want[g] = a
		}
		a.n++
		a.sum += pc.I64At(i)
		a.fsum += yc.F64At(i)
		if xc.I32At(i) < a.min {
			a.min = xc.I32At(i)
		}
		if xc.I32At(i) > a.max {
			a.max = xc.I32At(i)
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("groups: %d want %d", len(rows), len(want))
	}
	for _, row := range rows {
		a := want[int32(row[0].I)]
		if a == nil {
			t.Fatalf("unknown group %v", row[0])
		}
		if row[1].I != a.n || row[2].I != a.sum || int32(row[3].I) != a.min || int32(row[4].I) != a.max {
			t.Errorf("group %d: %v want %+v", row[0].I, row, a)
		}
		avg := a.fsum / float64(a.n)
		if d := row[5].F - avg; d > 1e-9 || d < -1e-9 {
			t.Errorf("avg: %v want %v", row[5].F, avg)
		}
	}
}

func TestVecGroupByCharKey(t *testing.T) {
	cat := testCatalog(t, 3000)
	rows := runVec(t, cat, "SELECT name, COUNT(*) FROM r GROUP BY name")
	tbl, _ := cat.Table("r")
	nc, _ := tbl.Column("name")
	want := map[string]int64{}
	for i := 0; i < tbl.Rows(); i++ {
		want[nc.CharAt(i)]++
	}
	if len(rows) != len(want) {
		t.Fatalf("groups: %d want %d (%v)", len(rows), len(want), rows)
	}
	for _, row := range rows {
		if row[1].I != want[row[0].S] {
			t.Errorf("group %q: %d want %d", row[0].S, row[1].I, want[row[0].S])
		}
	}
}

func TestVecJoin(t *testing.T) {
	cat := testCatalog(t, 500)
	rows := runVec(t, cat, "SELECT COUNT(*), SUM(s.v) FROM r, s WHERE r.id = s.rid AND r.x < 300")
	tbl, _ := cat.Table("r")
	st, _ := cat.Table("s")
	xc, _ := tbl.Column("x")
	rid, _ := st.Column("rid")
	vc, _ := st.Column("v")
	var n, sum int64
	for i := 0; i < st.Rows(); i++ {
		if xc.I32At(int(rid.I32At(i))) < 300 {
			n++
			sum += int64(vc.I32At(i))
		}
	}
	if rows[0][0].I != n || rows[0][1].I != sum {
		t.Fatalf("join: %v want (%d,%d)", rows[0], n, sum)
	}
}

func TestVecOrderByLimit(t *testing.T) {
	cat := testCatalog(t, 2000)
	rows := runVec(t, cat, "SELECT id, x, name FROM r WHERE g = 3 ORDER BY x DESC, id ASC LIMIT 10")
	tbl, _ := cat.Table("r")
	gc, _ := tbl.Column("g")
	xc, _ := tbl.Column("x")
	type pair struct{ id, x int32 }
	var all []pair
	for i := 0; i < tbl.Rows(); i++ {
		if gc.I32At(i) == 3 {
			all = append(all, pair{int32(i), xc.I32At(i)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].x != all[j].x {
			return all[i].x > all[j].x
		}
		return all[i].id < all[j].id
	})
	if len(rows) != 10 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i, row := range rows {
		if int32(row[0].I) != all[i].id || int32(row[1].I) != all[i].x {
			t.Errorf("row %d: (%d,%d) want (%d,%d)", i, row[0].I, row[1].I, all[i].id, all[i].x)
		}
	}
}

func TestVecLikeAndCase(t *testing.T) {
	cat := testCatalog(t, 1000)
	rows := runVec(t, cat, `SELECT SUM(CASE WHEN name LIKE 'PROMO%' THEN price ELSE 0 END), SUM(price) FROM r`)
	tbl, _ := cat.Table("r")
	nc, _ := tbl.Column("name")
	pc, _ := tbl.Column("price")
	var promo, all int64
	for i := 0; i < tbl.Rows(); i++ {
		if strings.HasPrefix(nc.CharAt(i), "PROMO") {
			promo += pc.I64At(i)
		}
		all += pc.I64At(i)
	}
	if rows[0][0].I != promo || rows[0][1].I != all {
		t.Fatalf("case: %v want (%d,%d)", rows[0], promo, all)
	}
}

func TestVecEmptyGlobalAgg(t *testing.T) {
	cat := testCatalog(t, 100)
	rows := runVec(t, cat, "SELECT COUNT(*), SUM(price) FROM r WHERE x < -1")
	if len(rows) != 1 || rows[0][0].I != 0 || rows[0][1].I != 0 {
		t.Fatalf("empty agg: %v", rows)
	}
}
