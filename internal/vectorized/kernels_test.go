package vectorized

import "testing"

func TestKernelModuleCompiles(t *testing.T) {
	if _, err := kernelModule(); err != nil {
		t.Fatalf("kernel module: %v", err)
	}
	t.Logf("kernel module: %d bytes", len(kernelBin))
}
