package vectorized

import (
	"fmt"

	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

// exec walks the plan, pushing batches to emit.
func (r *Runner) exec(n plan.Node, emit func(*batch) error) error {
	switch x := n.(type) {
	case *plan.Project, *plan.Limit:
		panic("vectorized: project/limit handled at top level")
	case *plan.Scan:
		return r.execScan(x, emit)
	case *plan.HashJoin:
		return r.execJoin(x, emit)
	case *plan.Group:
		return r.execGroup(x, emit)
	case *plan.Sort:
		return r.execSort(x, emit)
	}
	return fmt.Errorf("vectorized: unsupported node %T", n)
}

func (r *Runner) execScan(s *plan.Scan, emit func(*batch) error) error {
	total := s.Table.Rows()
	for start := 0; start < total; start += BatchSize {
		end := start + BatchSize
		if end > total {
			end = total
		}
		r.resetScratch()
		b := &batch{n: end - start, sel: r.selA, start: start}
		b.selN = int(int32(r.call("sel_seq", uint64(r.selA), 0, uint64(end-start))))
		// One kernel sweep per conjunct: the selection vector is refined
		// condition by condition (Listing 2).
		for _, f := range s.Filter {
			if err := r.applyPred(b, f); err != nil {
				return err
			}
			if b.selN == 0 {
				break
			}
		}
		if b.selN == 0 {
			continue
		}
		if err := emit(b); err != nil {
			return err
		}
	}
	return nil
}

// applyPred refines b.sel in place.
func (r *Runner) applyPred(b *batch, e sema.Expr) error {
	out := r.selB
	if b.sel == r.selB {
		out = r.selA
	}
	// Fast paths.
	switch x := e.(type) {
	case *sema.Binary:
		if x.Op == sema.OpAnd {
			if err := r.applyPred(b, x.L); err != nil {
				return err
			}
			return r.applyPred(b, x.R)
		}
		if x.Op.IsComparison() {
			// column ⟨op⟩ const on a directly accessible column.
			if cr, ok := x.L.(*sema.ColRef); ok && b.start >= 0 {
				if c, ok2 := x.R.(*sema.Const); ok2 {
					if elem, ok3 := elemOf(cr.T); ok3 && elem != elemU8 {
						if base, ok4 := r.colBase[[2]int{cr.Table, cr.Col}]; ok4 {
							imm := uint64(c.V.I)
							if elem == elemF64 {
								imm = f64bits(c.V.F)
							}
							name := fmt.Sprintf("sel_%s_%s", cmpNames[cmpCode(x.Op)], elemNames[elem])
							b.selN = int(int32(r.call(name, uint64(b.sel), uint64(b.selN),
								uint64(base), uint64(b.start), imm, uint64(out))))
							b.sel = out
							return nil
						}
					}
					// CHAR equality fast path.
					if cr.T.Kind == types.Char && (x.Op == sema.OpEq || x.Op == sema.OpNe) {
						if cb, ok4 := r.leafChar(b, cr); ok4 {
							neg := uint64(0)
							if x.Op == sema.OpNe {
								neg = 1
							}
							addr := r.intern(c.V.S)
							b.selN = int(int32(r.call("sel_eqchar", uint64(b.sel), uint64(b.selN),
								uint64(cb.addr), uint64(cb.width), uint64(cb.start),
								uint64(addr), uint64(len(c.V.S)), neg, uint64(out))))
							b.sel = out
							return nil
						}
					}
				}
			}
		}
	case *sema.Like:
		if cb, ok := r.leafChar(b, x.E); ok && !x.Not {
			addr := r.intern(x.Pattern)
			b.selN = int(int32(r.call("sel_like", uint64(b.sel), uint64(b.selN),
				uint64(cb.addr), uint64(cb.width), uint64(cb.start),
				uint64(addr), uint64(len(x.Pattern)), uint64(out))))
			b.sel = out
			return nil
		}
	}
	// General path: compute a 0/1 vector, filter non-zeros.
	v, err := r.evalVec(b, e)
	if err != nil {
		return err
	}
	b.selN = int(int32(r.call("sel_nonzero", uint64(b.sel), uint64(b.selN), uint64(v.addr), uint64(out))))
	b.sel = out
	return nil
}

func cmpCode(op sema.OpKind) int {
	switch op {
	case sema.OpEq:
		return cmpEq
	case sema.OpNe:
		return cmpNe
	case sema.OpLt:
		return cmpLt
	case sema.OpLe:
		return cmpLe
	case sema.OpGt:
		return cmpGt
	case sema.OpGe:
		return cmpGe
	}
	panic("vectorized: not a comparison")
}

func f64bits(f float64) uint64 {
	return uint64(mathFloat64bits(f))
}

// evalVec computes an expression into a positional value vector (raw i64 or
// f64 bits; booleans as 0/1).
func (r *Runner) evalVec(b *batch, e sema.Expr) (vec, error) {
	if v, ok := r.leafVec(b, e); ok {
		return v, nil
	}
	switch x := e.(type) {
	case *sema.ColRef:
		if b.start < 0 {
			return vec{}, fmt.Errorf("vectorized: unmaterialized column %s in compact batch", x)
		}
		base, ok := r.colBase[[2]int{x.Table, x.Col}]
		if !ok {
			return vec{}, fmt.Errorf("vectorized: unmapped column %s", x)
		}
		elem, ok := elemOf(x.T)
		if !ok {
			return vec{}, fmt.Errorf("vectorized: cannot gather %s", x.T)
		}
		out := r.newVec()
		r.call("gather_"+elemNames[elem], uint64(b.sel), uint64(b.selN),
			uint64(base), uint64(b.start), uint64(out.addr))
		return out, nil
	case *sema.Const:
		out := r.newVec()
		var imm uint64
		if x.V.Type.Kind == types.Float64 {
			imm = f64bits(x.V.F)
		} else {
			imm = uint64(x.V.I)
		}
		r.call("fill", uint64(b.sel), uint64(b.selN), imm, uint64(out.addr))
		return out, nil
	case *sema.Binary:
		return r.evalBinaryVec(b, x)
	case *sema.Not:
		v, err := r.evalVec(b, x.E)
		if err != nil {
			return vec{}, err
		}
		out := r.newVec()
		r.call("map_not", uint64(b.sel), uint64(b.selN), uint64(v.addr), uint64(out.addr))
		return out, nil
	case *sema.Cast:
		return r.evalCastVec(b, x)
	case *sema.Like:
		cb, ok := r.leafChar(b, x.E)
		if !ok {
			return vec{}, fmt.Errorf("vectorized: LIKE over non-leaf char %s", x.E)
		}
		addr := r.intern(x.Pattern)
		out := r.newVec()
		r.call("val_like", uint64(b.sel), uint64(b.selN), uint64(cb.addr), uint64(cb.width),
			uint64(cb.start), uint64(addr), uint64(len(x.Pattern)), uint64(out.addr))
		if x.Not {
			inv := r.newVec()
			r.call("map_not", uint64(b.sel), uint64(b.selN), uint64(out.addr), uint64(inv.addr))
			return inv, nil
		}
		return out, nil
	case *sema.Case:
		// Compute the else arm, then blend arms from last to first.
		acc, err := r.evalVec(b, x.Else)
		if err != nil {
			return vec{}, err
		}
		for i := len(x.Whens) - 1; i >= 0; i-- {
			cond, err := r.evalVec(b, x.Whens[i].Cond)
			if err != nil {
				return vec{}, err
			}
			then, err := r.evalVec(b, x.Whens[i].Then)
			if err != nil {
				return vec{}, err
			}
			out := r.newVec()
			r.call("map_blend", uint64(b.sel), uint64(b.selN),
				uint64(cond.addr), uint64(then.addr), uint64(acc.addr), uint64(out.addr))
			acc = out
		}
		return acc, nil
	case *sema.ExtractYear:
		v, err := r.evalVec(b, x.E)
		if err != nil {
			return vec{}, err
		}
		out := r.newVec()
		r.call("map_year", uint64(b.sel), uint64(b.selN), uint64(v.addr), uint64(out.addr))
		return out, nil
	}
	return vec{}, fmt.Errorf("vectorized: unsupported expression %T", e)
}

func (r *Runner) evalBinaryVec(b *batch, x *sema.Binary) (vec, error) {
	// CHAR comparisons in value position: equality only.
	if x.Op.IsComparison() && x.L.Type().Kind == types.Char {
		if x.Op != sema.OpEq && x.Op != sema.OpNe {
			return vec{}, fmt.Errorf("vectorized: char ordering comparisons are only supported as predicates")
		}
		cb, ok := r.leafChar(b, x.L)
		c, ok2 := x.R.(*sema.Const)
		if !ok || !ok2 {
			return vec{}, fmt.Errorf("vectorized: unsupported char comparison form")
		}
		addr := r.intern(c.V.S)
		out := r.newVec()
		r.call("val_eqchar", uint64(b.sel), uint64(b.selN), uint64(cb.addr), uint64(cb.width),
			uint64(cb.start), uint64(addr), uint64(len(c.V.S)), uint64(out.addr))
		if x.Op == sema.OpNe {
			inv := r.newVec()
			r.call("map_not", uint64(b.sel), uint64(b.selN), uint64(out.addr), uint64(inv.addr))
			return inv, nil
		}
		return out, nil
	}

	opT := x.L.Type()
	isF := opT.Kind == types.Float64
	var name string
	switch {
	case x.Op == sema.OpAnd:
		name = "map_and"
	case x.Op == sema.OpOr:
		name = "map_or"
	case x.Op.IsComparison():
		suffix := "_i64"
		if isF {
			suffix = "_f64"
		}
		name = "map_" + cmpNames[cmpCode(x.Op)] + suffix
	default:
		arith := map[sema.OpKind]string{
			sema.OpAdd: "add", sema.OpSub: "sub", sema.OpMul: "mul",
			sema.OpDiv: "div", sema.OpMod: "mod",
		}[x.Op]
		if x.T.Kind == types.Float64 {
			name = "map_" + arith + "_f64"
		} else {
			name = "map_" + arith + "_i64"
		}
	}

	l, err := r.evalVec(b, x.L)
	if err != nil {
		return vec{}, err
	}
	out := r.newVec()
	if c, ok := x.R.(*sema.Const); ok {
		imm := uint64(c.V.I)
		if c.V.Type.Kind == types.Float64 {
			imm = f64bits(c.V.F)
		}
		r.call(name+"_vi", uint64(b.sel), uint64(b.selN), uint64(l.addr), imm, uint64(out.addr))
	} else {
		rr, err := r.evalVec(b, x.R)
		if err != nil {
			return vec{}, err
		}
		r.call(name+"_vv", uint64(b.sel), uint64(b.selN), uint64(l.addr), uint64(rr.addr), uint64(out.addr))
	}
	// Preserve 32-bit wraparound semantics for INT results.
	if x.T.Kind == types.Int32 && !x.Op.IsComparison() && x.Op != sema.OpAnd && x.Op != sema.OpOr {
		w := r.newVec()
		r.call("map_wrap32", uint64(b.sel), uint64(b.selN), uint64(out.addr), uint64(w.addr))
		return w, nil
	}
	return out, nil
}

func (r *Runner) evalCastVec(b *batch, x *sema.Cast) (vec, error) {
	v, err := r.evalVec(b, x.E)
	if err != nil {
		return vec{}, err
	}
	from, to := x.E.Type(), x.To
	switch {
	case from.Kind == types.Int32 && to.Kind == types.Int64:
		return v, nil // vectors are sign-extended already
	case (from.Kind == types.Int32 || from.Kind == types.Int64) && to.Kind == types.Float64:
		out := r.newVec()
		r.call("map_i64_to_f64", uint64(b.sel), uint64(b.selN), uint64(v.addr), uint64(out.addr))
		return out, nil
	case from.Kind == types.Decimal && to.Kind == types.Float64:
		out := r.newVec()
		r.call("map_scale_to_f64", uint64(b.sel), uint64(b.selN), uint64(v.addr),
			f64bits(float64(types.Pow10(from.Scale))), uint64(out.addr))
		return out, nil
	case (from.Kind == types.Int32 || from.Kind == types.Int64) && to.Kind == types.Decimal:
		out := r.newVec()
		r.call("map_mul_i64_vi", uint64(b.sel), uint64(b.selN), uint64(v.addr),
			uint64(types.Pow10(to.Scale)), uint64(out.addr))
		return out, nil
	case from.Kind == types.Decimal && to.Kind == types.Decimal:
		d := to.Scale - from.Scale
		if d == 0 {
			return v, nil
		}
		out := r.newVec()
		if d > 0 {
			r.call("map_mul_i64_vi", uint64(b.sel), uint64(b.selN), uint64(v.addr),
				uint64(types.Pow10(d)), uint64(out.addr))
		} else {
			return vec{}, fmt.Errorf("vectorized: narrowing decimal cast")
		}
		return out, nil
	case from.Kind == types.Date && to.Kind == types.Int32:
		return v, nil
	case from.Kind == to.Kind:
		return v, nil
	}
	return vec{}, fmt.Errorf("vectorized: unsupported cast %s → %s", from, to)
}

// projectBatch evaluates the output expressions and boxes the selected rows.
func (r *Runner) projectBatch(b *batch, cols []sema.OutputCol) ([][]types.Value, error) {
	type outCol struct {
		v   vec
		cb  charBuf
		chr bool
		t   types.Type
	}
	outs := make([]outCol, len(cols))
	for i, oc := range cols {
		t := oc.Expr.Type()
		if t.Kind == types.Char {
			cb, ok := r.leafChar(b, oc.Expr)
			if !ok {
				return nil, fmt.Errorf("vectorized: char output %s not materialized", oc.Expr)
			}
			outs[i] = outCol{cb: cb, chr: true, t: t}
			continue
		}
		v, err := r.evalVec(b, oc.Expr)
		if err != nil {
			return nil, err
		}
		outs[i] = outCol{v: v, t: t}
	}
	// Read the selection vector and decode rows.
	selBytes := r.mem.ReadBytes(b.sel, uint32(b.selN*4))
	rows := make([][]types.Value, b.selN)
	for i := 0; i < b.selN; i++ {
		row := int(int32(le32(selBytes[i*4:])))
		vals := make([]types.Value, len(cols))
		for c, oc := range outs {
			if oc.chr {
				addr := oc.cb.addr + uint32((oc.cb.start+row)*oc.cb.width)
				raw := r.mem.ReadBytes(addr, uint32(oc.cb.width))
				end := len(raw)
				for end > 0 && raw[end-1] == ' ' {
					end--
				}
				vals[c] = types.NewChar(string(raw[:end]), oc.t.Length)
				continue
			}
			bits := r.mem.U64(oc.v.addr + uint32(row)*8)
			vals[c] = valueFromBits(bits, oc.t)
		}
		rows[i] = vals
	}
	return rows, nil
}

func valueFromBits(bits uint64, t types.Type) types.Value {
	switch t.Kind {
	case types.Bool:
		return types.NewBool(bits != 0)
	case types.Int32:
		return types.NewInt32(int32(int64(bits)))
	case types.Date:
		return types.NewDate(int32(int64(bits)))
	case types.Int64:
		return types.NewInt64(int64(bits))
	case types.Decimal:
		return types.NewDecimal(int64(bits), t.Prec, t.Scale)
	case types.Float64:
		return types.NewFloat64(mathFloat64frombits(bits))
	}
	return types.Value{Type: t}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
