package vectorized

import "wasmdb/internal/wasm"

// This file contains the data-movement, hashing, hash-table, and sorting
// kernels. All hash tables are type-agnostic: keys are normalized to 8-byte
// words, entries store their hash, and comparisons are generic word loops —
// the pre-compiled-library design of Listing 3.

// Control block layouts (driver-managed, in guest memory):
//
//	hash table ctrl: [0]=base [4]=mask [8]=count [12]=entrySize
//	                 [16]=nKeyWords [20]=nPayloadWords
//	sort array ctrl: [0]=base [4]=count [8]=cap [12]=stride
//
// Hash-table entry: [0]=flag u32, [8]=hash u64, [16]=key words, then
// payload/aggregate words.

const (
	htOffBase    = 0
	htOffMask    = 4
	htOffCount   = 8
	htOffESize   = 12
	htOffNKW     = 16
	htOffNPW     = 20
	entryOffHash = 8
	entryOffKeys = 16
)

// storeSel writes row into out[m] and increments m.
func storeSel(f *wasm.FuncBuilder, out, m, row wasm.Local) {
	f.LocalGet(out)
	f.LocalGet(m)
	f.I32Const(2)
	f.Op(wasm.OpI32Shl)
	f.I32Add()
	f.LocalGet(row)
	f.I32Store(0)
	f.LocalGet(m)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(m)
}

// sel_like(selIn, n, colBase, width, batchStart, patAddr, patLen, selOut) -> n'
// The generic interpreted LIKE matcher: pattern is data, examined per row —
// the contrast to the compiled per-pattern matcher of internal/core.
func (k *kb) genSelLike() {
	f := k.b.NewFunc("sel_like", wasm.FuncType{
		Params:  []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32},
		Results: []wasm.ValType{wasm.I32}})
	sel, n, col, width, start, pat, plen, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5), f.Param(6), f.Param(7)
	i := f.AddLocal(wasm.I32)
	m := f.AddLocal(wasm.I32)
	row := f.AddLocal(wasm.I32)
	ptr := f.AddLocal(wasm.I32)
	matched := f.AddLocal(wasm.I32)
	loop(f, i, n, func() {
		selRow(f, sel, i)
		f.LocalSet(row)
		f.LocalGet(start)
		f.LocalGet(row)
		f.I32Add()
		f.LocalGet(width)
		f.I32Mul()
		f.LocalGet(col)
		f.I32Add()
		f.LocalSet(ptr)
		emitGlobMatch(f, ptr, width, pat, plen, matched)
		f.LocalGet(matched)
		f.If(wasm.BlockVoid)
		storeSel(f, out, m, row)
		f.End()
	})
	f.LocalGet(m)
	k.export(f, "sel_like")
}

// val_like(selIn, n, colBase, width, batchStart, patAddr, patLen, outVec)
func (k *kb) genValLike() {
	f := k.b.NewFunc("val_like", wasm.FuncType{
		Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32}})
	sel, n, col, width, start, pat, plen, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5), f.Param(6), f.Param(7)
	i := f.AddLocal(wasm.I32)
	row := f.AddLocal(wasm.I32)
	ptr := f.AddLocal(wasm.I32)
	matched := f.AddLocal(wasm.I32)
	loop(f, i, n, func() {
		selRow(f, sel, i)
		f.LocalSet(row)
		f.LocalGet(start)
		f.LocalGet(row)
		f.I32Add()
		f.LocalGet(width)
		f.I32Mul()
		f.LocalGet(col)
		f.I32Add()
		f.LocalSet(ptr)
		emitGlobMatch(f, ptr, width, pat, plen, matched)
		f.LocalGet(row)
		vecAddrFromStack(f, out)
		f.LocalGet(matched)
		f.Op(wasm.OpI64ExtendI32U)
		f.I64Store(0)
	})
	k.export(f, "val_like")
}

// emitGlobMatch emits the generic glob matcher: string at ptr (width from a
// local, logical length computed by stripping spaces), pattern bytes at
// pat..pat+plen. Result 0/1 into matched.
func emitGlobMatch(f *wasm.FuncBuilder, ptr, width, pat, plen, matched wasm.Local) {
	llen := f.AddLocal(wasm.I32)
	s := f.AddLocal(wasm.I32)
	p := f.AddLocal(wasm.I32)
	star := f.AddLocal(wasm.I32)
	ss := f.AddLocal(wasm.I32)
	pc := f.AddLocal(wasm.I32)

	// llen = width; while llen > 0 && ptr[llen-1]==' ': llen--
	f.LocalGet(width)
	f.LocalSet(llen)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(llen)
	f.I32Eqz()
	f.BrIf(1)
	f.LocalGet(ptr)
	f.LocalGet(llen)
	f.I32Add()
	f.I32Const(1)
	f.I32Sub()
	f.I32Load8U(0)
	f.I32Const(32)
	f.I32Ne()
	f.BrIf(1)
	f.LocalGet(llen)
	f.I32Const(1)
	f.I32Sub()
	f.LocalSet(llen)
	f.Br(0)
	f.End()
	f.End()

	f.I32Const(0)
	f.LocalSet(s)
	f.I32Const(0)
	f.LocalSet(p)
	f.I32Const(-1)
	f.LocalSet(star)
	f.I32Const(0)
	f.LocalSet(ss)

	f.Block(wasm.BlockOf(wasm.I32))
	f.Loop(wasm.BlockOf(wasm.I32))
	f.LocalGet(s)
	f.LocalGet(llen)
	f.I32GeU()
	f.If(wasm.BlockVoid)
	// consume trailing %
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(p)
	f.LocalGet(plen)
	f.I32GeU()
	f.BrIf(1)
	f.LocalGet(pat)
	f.LocalGet(p)
	f.I32Add()
	f.I32Load8U(0)
	f.I32Const('%')
	f.I32Ne()
	f.BrIf(1)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(p)
	f.LocalGet(plen)
	f.I32Eq()
	f.Br(2)
	f.End()
	// pc = p < plen ? pat[p] : 0
	f.LocalGet(p)
	f.LocalGet(plen)
	f.Op(wasm.OpI32LtU)
	f.If(wasm.BlockOf(wasm.I32))
	f.LocalGet(pat)
	f.LocalGet(p)
	f.I32Add()
	f.I32Load8U(0)
	f.Else()
	f.I32Const(0)
	f.End()
	f.LocalSet(pc)
	// '%'
	f.LocalGet(pc)
	f.I32Const('%')
	f.I32Eq()
	f.If(wasm.BlockVoid)
	f.LocalGet(p)
	f.LocalSet(star)
	f.LocalGet(s)
	f.LocalSet(ss)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Else()
	f.LocalGet(pc)
	f.I32Const('_')
	f.I32Eq()
	f.LocalGet(pc)
	f.LocalGet(ptr)
	f.LocalGet(s)
	f.I32Add()
	f.I32Load8U(0)
	f.I32Eq()
	f.I32Or()
	f.If(wasm.BlockVoid)
	f.LocalGet(s)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(s)
	f.LocalGet(p)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.Else()
	f.LocalGet(star)
	f.I32Const(0)
	f.Op(wasm.OpI32GeS)
	f.If(wasm.BlockVoid)
	f.LocalGet(star)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(p)
	f.LocalGet(ss)
	f.I32Const(1)
	f.I32Add()
	f.LocalTee(ss)
	f.LocalSet(s)
	f.Else()
	f.I32Const(0)
	f.Br(4)
	f.End()
	f.End()
	f.End()
	f.Br(0)
	f.End()
	f.End()
	f.LocalSet(matched)
}

// sel_eqchar(selIn, n, colBase, width, batchStart, strAddr, strLen, neg, selOut) -> n'
// Padded equality of a CHAR column against a constant.
func (k *kb) genSelCmpChar() {
	f := k.b.NewFunc("sel_eqchar", wasm.FuncType{
		Params:  []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32},
		Results: []wasm.ValType{wasm.I32}})
	sel, n, col, width, start, str, slen, neg, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5), f.Param(6), f.Param(7), f.Param(8)
	i := f.AddLocal(wasm.I32)
	m := f.AddLocal(wasm.I32)
	row := f.AddLocal(wasm.I32)
	ptr := f.AddLocal(wasm.I32)
	eq := f.AddLocal(wasm.I32)
	j := f.AddLocal(wasm.I32)
	b1 := f.AddLocal(wasm.I32)
	b2 := f.AddLocal(wasm.I32)
	nmax := f.AddLocal(wasm.I32)
	loop(f, i, n, func() {
		selRow(f, sel, i)
		f.LocalSet(row)
		f.LocalGet(start)
		f.LocalGet(row)
		f.I32Add()
		f.LocalGet(width)
		f.I32Mul()
		f.LocalGet(col)
		f.I32Add()
		f.LocalSet(ptr)
		// padded compare over max(width, slen)
		f.LocalGet(width)
		f.LocalGet(slen)
		f.LocalGet(width)
		f.LocalGet(slen)
		f.Op(wasm.OpI32GtS)
		f.Select()
		f.LocalSet(nmax)
		f.I32Const(1)
		f.LocalSet(eq)
		f.I32Const(0)
		f.LocalSet(j)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(j)
		f.LocalGet(nmax)
		f.I32GeU()
		f.BrIf(1)
		// b1 = j < width ? ptr[j] : ' '
		f.LocalGet(j)
		f.LocalGet(width)
		f.Op(wasm.OpI32LtU)
		f.If(wasm.BlockOf(wasm.I32))
		f.LocalGet(ptr)
		f.LocalGet(j)
		f.I32Add()
		f.I32Load8U(0)
		f.Else()
		f.I32Const(32)
		f.End()
		f.LocalSet(b1)
		// b2 = j < slen ? str[j] : ' '
		f.LocalGet(j)
		f.LocalGet(slen)
		f.Op(wasm.OpI32LtU)
		f.If(wasm.BlockOf(wasm.I32))
		f.LocalGet(str)
		f.LocalGet(j)
		f.I32Add()
		f.I32Load8U(0)
		f.Else()
		f.I32Const(32)
		f.End()
		f.LocalSet(b2)
		f.LocalGet(b1)
		f.LocalGet(b2)
		f.I32Ne()
		f.If(wasm.BlockVoid)
		f.I32Const(0)
		f.LocalSet(eq)
		f.Br(2)
		f.End()
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(j)
		f.Br(0)
		f.End()
		f.End()
		// keep row if eq != neg
		f.LocalGet(eq)
		f.LocalGet(neg)
		f.I32Ne()
		f.If(wasm.BlockVoid)
		storeSel(f, out, m, row)
		f.End()
	})
	f.LocalGet(m)
	k.export(f, "sel_eqchar")
}

// gather_<elem>(selIn, n, colBase, batchStart, outVec): out[row] holds the
// sign-extended value (f64 raw bits for floats).
func (k *kb) genGather() {
	for e := 0; e < numElems; e++ {
		name := "gather_" + elemNames[e]
		f := k.b.NewFunc(name, wasm.FuncType{
			Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32}})
		sel, n, col, start, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4)
		i := f.AddLocal(wasm.I32)
		row := f.AddLocal(wasm.I32)
		loop(f, i, n, func() {
			selRow(f, sel, i)
			f.LocalSet(row)
			f.LocalGet(row)
			vecAddrFromStack(f, out)
			f.LocalGet(start)
			f.LocalGet(row)
			f.I32Add()
			switch e {
			case elemI32:
				f.I32Const(2)
				f.Op(wasm.OpI32Shl)
				f.LocalGet(col)
				f.I32Add()
				f.I32Load(0)
				f.Op(wasm.OpI64ExtendI32S)
			case elemI64, elemF64:
				f.I32Const(3)
				f.Op(wasm.OpI32Shl)
				f.LocalGet(col)
				f.I32Add()
				f.I64Load(0)
			case elemU8:
				f.LocalGet(col)
				f.I32Add()
				f.I32Load8U(0)
				f.Op(wasm.OpI64ExtendI32U)
			}
			f.I64Store(0)
		})
		k.export(f, name)
	}
}

// Arithmetic, comparison, cast, and boolean map kernels over positional
// 8-byte vectors. Each comes in vector-vector and vector-immediate form.
func (k *kb) genMapOps() {
	type spec struct {
		name string
		t    wasm.ValType // operand immediate type
		emit func(f *wasm.FuncBuilder)
	}
	bin := func(op wasm.Opcode) func(f *wasm.FuncBuilder) {
		return func(f *wasm.FuncBuilder) { f.Op(op) }
	}
	cmpI := func(op wasm.Opcode) func(f *wasm.FuncBuilder) {
		return func(f *wasm.FuncBuilder) {
			f.Op(op)
			f.Op(wasm.OpI64ExtendI32U)
		}
	}
	specs := []spec{
		{"add_i64", wasm.I64, bin(wasm.OpI64Add)},
		{"sub_i64", wasm.I64, bin(wasm.OpI64Sub)},
		{"mul_i64", wasm.I64, bin(wasm.OpI64Mul)},
		{"mod_i64", wasm.I64, bin(wasm.OpI64RemS)},
		{"add_f64", wasm.F64, bin(wasm.OpF64Add)},
		{"sub_f64", wasm.F64, bin(wasm.OpF64Sub)},
		{"mul_f64", wasm.F64, bin(wasm.OpF64Mul)},
		{"div_f64", wasm.F64, bin(wasm.OpF64Div)},
		{"eq_i64", wasm.I64, cmpI(wasm.OpI64Eq)},
		{"ne_i64", wasm.I64, cmpI(wasm.OpI64Ne)},
		{"lt_i64", wasm.I64, cmpI(wasm.OpI64LtS)},
		{"le_i64", wasm.I64, cmpI(wasm.OpI64LeS)},
		{"gt_i64", wasm.I64, cmpI(wasm.OpI64GtS)},
		{"ge_i64", wasm.I64, cmpI(wasm.OpI64GeS)},
		{"eq_f64", wasm.F64, cmpI(wasm.OpF64Eq)},
		{"ne_f64", wasm.F64, cmpI(wasm.OpF64Ne)},
		{"lt_f64", wasm.F64, cmpI(wasm.OpF64Lt)},
		{"le_f64", wasm.F64, cmpI(wasm.OpF64Le)},
		{"gt_f64", wasm.F64, cmpI(wasm.OpF64Gt)},
		{"ge_f64", wasm.F64, cmpI(wasm.OpF64Ge)},
		{"and", wasm.I64, bin(wasm.OpI64And)},
		{"or", wasm.I64, bin(wasm.OpI64Or)},
	}
	for _, sp := range specs {
		sp := sp
		isF := sp.t == wasm.F64
		// vector-vector
		{
			name := "map_" + sp.name + "_vv"
			f := k.b.NewFunc(name, wasm.FuncType{
				Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32}})
			sel, n, a, bb, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4)
			i := f.AddLocal(wasm.I32)
			row := f.AddLocal(wasm.I32)
			loop(f, i, n, func() {
				selRow(f, sel, i)
				f.LocalSet(row)
				f.LocalGet(row)
				vecAddrFromStack(f, out)
				f.LocalGet(row)
				vecAddrFromStack(f, a)
				if isF {
					f.F64Load(0)
				} else {
					f.I64Load(0)
				}
				f.LocalGet(row)
				vecAddrFromStack(f, bb)
				if isF {
					f.F64Load(0)
				} else {
					f.I64Load(0)
				}
				sp.emit(f)
				if isF && !isCmpName(sp.name) {
					f.F64Store(0)
				} else {
					f.I64Store(0)
				}
			})
			k.export(f, name)
		}
		// vector-immediate
		{
			name := "map_" + sp.name + "_vi"
			f := k.b.NewFunc(name, wasm.FuncType{
				Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, sp.t, wasm.I32}})
			sel, n, a, imm, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4)
			i := f.AddLocal(wasm.I32)
			row := f.AddLocal(wasm.I32)
			loop(f, i, n, func() {
				selRow(f, sel, i)
				f.LocalSet(row)
				f.LocalGet(row)
				vecAddrFromStack(f, out)
				f.LocalGet(row)
				vecAddrFromStack(f, a)
				if isF {
					f.F64Load(0)
				} else {
					f.I64Load(0)
				}
				f.LocalGet(imm)
				sp.emit(f)
				if isF && !isCmpName(sp.name) {
					f.F64Store(0)
				} else {
					f.I64Store(0)
				}
			})
			k.export(f, name)
		}
	}

	// Unary/cast kernels.
	un := func(name string, emit func(f *wasm.FuncBuilder), loadF, storeF bool) {
		f := k.b.NewFunc(name, wasm.FuncType{
			Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32}})
		sel, n, a, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3)
		i := f.AddLocal(wasm.I32)
		row := f.AddLocal(wasm.I32)
		loop(f, i, n, func() {
			selRow(f, sel, i)
			f.LocalSet(row)
			f.LocalGet(row)
			vecAddrFromStack(f, out)
			f.LocalGet(row)
			vecAddrFromStack(f, a)
			if loadF {
				f.F64Load(0)
			} else {
				f.I64Load(0)
			}
			emit(f)
			if storeF {
				f.F64Store(0)
			} else {
				f.I64Store(0)
			}
		})
		k.export(f, name)
	}
	un("map_i64_to_f64", func(f *wasm.FuncBuilder) { f.Op(wasm.OpF64ConvertI64S) }, false, true)
	un("map_not", func(f *wasm.FuncBuilder) {
		f.Op(wasm.OpI64Eqz)
		f.Op(wasm.OpI64ExtendI32U)
	}, false, false)
	un("map_wrap32", func(f *wasm.FuncBuilder) {
		f.Op(wasm.OpI32WrapI64)
		f.Op(wasm.OpI64ExtendI32S)
	}, false, false)
	k.genMapYear(un)

	// map_scale_to_f64(sel, n, a, pow, out): decimal→double.
	{
		f := k.b.NewFunc("map_scale_to_f64", wasm.FuncType{
			Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.F64, wasm.I32}})
		sel, n, a, pow, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4)
		i := f.AddLocal(wasm.I32)
		row := f.AddLocal(wasm.I32)
		loop(f, i, n, func() {
			selRow(f, sel, i)
			f.LocalSet(row)
			f.LocalGet(row)
			vecAddrFromStack(f, out)
			f.LocalGet(row)
			vecAddrFromStack(f, a)
			f.I64Load(0)
			f.Op(wasm.OpF64ConvertI64S)
			f.LocalGet(pow)
			f.F64Div()
			f.F64Store(0)
		})
		k.export(f, "map_scale_to_f64")
	}

	// map_blend(sel, n, cond, a, b, out).
	{
		f := k.b.NewFunc("map_blend", wasm.FuncType{
			Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32}})
		sel, n, cond, a, bb, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5)
		i := f.AddLocal(wasm.I32)
		row := f.AddLocal(wasm.I32)
		loop(f, i, n, func() {
			selRow(f, sel, i)
			f.LocalSet(row)
			f.LocalGet(row)
			vecAddrFromStack(f, out)
			f.LocalGet(row)
			vecAddrFromStack(f, a)
			f.I64Load(0)
			f.LocalGet(row)
			vecAddrFromStack(f, bb)
			f.I64Load(0)
			f.LocalGet(row)
			vecAddrFromStack(f, cond)
			f.I64Load(0)
			f.Op(wasm.OpI64Eqz)
			f.I32Eqz()
			f.Select()
			f.I64Store(0)
		})
		k.export(f, "map_blend")
	}
}

func isCmpName(n string) bool {
	switch n[:2] {
	case "eq", "ne", "lt", "le", "gt", "ge":
		return true
	}
	return false
}

// genBlendAndBool: covered inside genMapOps (map_blend, map_and, map_or,
// map_not); kept as a separate hook for readability.
func (k *kb) genBlendAndBool() {}

// hash_word(sel, n, vec, hashVec, first): xor-multiply mixing.
func (k *kb) genHashWord() {
	f := k.b.NewFunc("hash_word", wasm.FuncType{
		Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32}})
	sel, n, vec, hv, first := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4)
	i := f.AddLocal(wasm.I32)
	row := f.AddLocal(wasm.I32)
	h := f.AddLocal(wasm.I64)
	loop(f, i, n, func() {
		selRow(f, sel, i)
		f.LocalSet(row)
		f.LocalGet(first)
		f.If(wasm.BlockOf(wasm.I64))
		f.I64Const(-3750763034362895579)
		f.Else()
		f.LocalGet(row)
		vecAddrFromStack(f, hv)
		f.I64Load(0)
		f.End()
		f.LocalSet(h)
		f.LocalGet(row)
		vecAddrFromStack(f, hv)
		f.LocalGet(h)
		f.LocalGet(row)
		vecAddrFromStack(f, vec)
		f.I64Load(0)
		f.Op(wasm.OpI64Xor)
		f.I64Const(-0x61c8864680b583eb)
		f.I64Mul()
		f.I64Store(0)
	})
	k.export(f, "hash_word")
}

// hash_char(sel, n, colBase, width, batchStart, hashVec, first)
func (k *kb) genHashChar() {
	f := k.b.NewFunc("hash_char", wasm.FuncType{
		Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32, wasm.I32}})
	sel, n, col, width, start, hv, first := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5), f.Param(6)
	i := f.AddLocal(wasm.I32)
	row := f.AddLocal(wasm.I32)
	ptr := f.AddLocal(wasm.I32)
	j := f.AddLocal(wasm.I32)
	h := f.AddLocal(wasm.I64)
	llen := f.AddLocal(wasm.I32)
	loop(f, i, n, func() {
		selRow(f, sel, i)
		f.LocalSet(row)
		f.LocalGet(start)
		f.LocalGet(row)
		f.I32Add()
		f.LocalGet(width)
		f.I32Mul()
		f.LocalGet(col)
		f.I32Add()
		f.LocalSet(ptr)
		f.LocalGet(first)
		f.If(wasm.BlockOf(wasm.I64))
		f.I64Const(-3750763034362895579)
		f.Else()
		f.LocalGet(row)
		vecAddrFromStack(f, hv)
		f.I64Load(0)
		f.End()
		f.LocalSet(h)
		// llen
		f.LocalGet(width)
		f.LocalSet(llen)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(llen)
		f.I32Eqz()
		f.BrIf(1)
		f.LocalGet(ptr)
		f.LocalGet(llen)
		f.I32Add()
		f.I32Const(1)
		f.I32Sub()
		f.I32Load8U(0)
		f.I32Const(32)
		f.I32Ne()
		f.BrIf(1)
		f.LocalGet(llen)
		f.I32Const(1)
		f.I32Sub()
		f.LocalSet(llen)
		f.Br(0)
		f.End()
		f.End()
		// FNV over bytes
		f.I32Const(0)
		f.LocalSet(j)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(j)
		f.LocalGet(llen)
		f.I32GeU()
		f.BrIf(1)
		f.LocalGet(h)
		f.LocalGet(ptr)
		f.LocalGet(j)
		f.I32Add()
		f.I32Load8U(0)
		f.Op(wasm.OpI64ExtendI32U)
		f.Op(wasm.OpI64Xor)
		f.I64Const(1099511628211)
		f.I64Mul()
		f.LocalSet(h)
		f.LocalGet(j)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(j)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(row)
		vecAddrFromStack(f, hv)
		f.LocalGet(h)
		f.I64Store(0)
	})
	k.export(f, "hash_char")
}

// genMapYear emits EXTRACT(YEAR) over a day-number vector using the civil
// calendar algorithm with floored divisions.
func (k *kb) genMapYear(un func(name string, emit func(f *wasm.FuncBuilder), loadF, storeF bool)) {
	un("map_year", func(f *wasm.FuncBuilder) {
		// Stack holds the day number as i64.
		z := f.AddLocal(wasm.I64)
		era := f.AddLocal(wasm.I64)
		doe := f.AddLocal(wasm.I64)
		yoe := f.AddLocal(wasm.I64)
		doy := f.AddLocal(wasm.I64)
		mp := f.AddLocal(wasm.I64)
		y := f.AddLocal(wasm.I64)
		f.I64Const(719468)
		f.I64Add()
		f.LocalSet(z)
		f.LocalGet(z)
		f.LocalGet(z)
		f.I64Const(146096)
		f.I64Sub()
		f.LocalGet(z)
		f.I64Const(0)
		f.Op(wasm.OpI64GeS)
		f.Select()
		f.I64Const(146097)
		f.Op(wasm.OpI64DivS)
		f.LocalSet(era)
		f.LocalGet(z)
		f.LocalGet(era)
		f.I64Const(146097)
		f.I64Mul()
		f.I64Sub()
		f.LocalSet(doe)
		f.LocalGet(doe)
		f.LocalGet(doe)
		f.I64Const(1460)
		f.Op(wasm.OpI64DivS)
		f.I64Sub()
		f.LocalGet(doe)
		f.I64Const(36524)
		f.Op(wasm.OpI64DivS)
		f.I64Add()
		f.LocalGet(doe)
		f.I64Const(146096)
		f.Op(wasm.OpI64DivS)
		f.I64Sub()
		f.I64Const(365)
		f.Op(wasm.OpI64DivS)
		f.LocalSet(yoe)
		f.LocalGet(doe)
		f.LocalGet(yoe)
		f.I64Const(365)
		f.I64Mul()
		f.LocalGet(yoe)
		f.I64Const(4)
		f.Op(wasm.OpI64DivS)
		f.I64Add()
		f.LocalGet(yoe)
		f.I64Const(100)
		f.Op(wasm.OpI64DivS)
		f.I64Sub()
		f.I64Sub()
		f.LocalSet(doy)
		f.LocalGet(doy)
		f.I64Const(5)
		f.I64Mul()
		f.I64Const(2)
		f.I64Add()
		f.I64Const(153)
		f.Op(wasm.OpI64DivS)
		f.LocalSet(mp)
		f.LocalGet(yoe)
		f.LocalGet(era)
		f.I64Const(400)
		f.I64Mul()
		f.I64Add()
		f.LocalSet(y)
		f.LocalGet(y)
		f.I64Const(1)
		f.I64Add()
		f.LocalGet(y)
		f.LocalGet(mp)
		f.I64Const(10)
		f.Op(wasm.OpI64GeS)
		f.Select()
	}, false, false)
}
