// Package vectorized implements the MonetDB/X100-style baseline (the
// paper's DuckDB stand-in, §8.1): batch-at-a-time execution with selection
// vectors over a *pre-compiled, generic* kernel library.
//
// To keep the comparison with the Wasm-compiling engine substrate-fair, the
// kernels themselves are a fixed WebAssembly module executed by the same
// engine (fully TurboFan-compiled once, at first use — the analog of DuckDB
// shipping natively compiled kernels, with zero per-query compile time).
// What distinguishes this baseline architecturally is exactly what §5.1
// describes: expressions are dissected into per-atomic-term kernel calls
// that refine selection vectors one condition at a time; hash tables are
// type-agnostic (normalized key words, stored hashes, generic word
// comparisons — Listing 3's design); sorting encodes order-preserving key
// bytes and runs a generic byte-comparing, byte-swapping quicksort.
package vectorized

import (
	"fmt"
	"sync"

	"wasmdb/internal/engine"
	"wasmdb/internal/wasm"
)

// BatchSize is the number of rows per vector batch.
const BatchSize = 2048

// Comparison codes shared between kernel generation and the driver.
const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
	numCmps
)

var cmpNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// Column element codes.
const (
	elemI32 = iota // 4-byte signed (INT, DATE)
	elemI64        // 8-byte signed (BIGINT, DECIMAL)
	elemF64        // 8-byte float
	elemU8         // 1-byte (BOOLEAN)
	numElems
)

var elemNames = [...]string{"i32", "i64", "f64", "u8"}

// buildKernels constructs the generic kernel module. All vectors are
// positional arrays of 8-byte slots indexed by batch row; selection vectors
// are i32 arrays of row indices.
func buildKernels() []byte {
	b := wasm.NewModuleBuilder()
	b.ImportMemory("env", "memory", 32, 65536)
	k := &kb{b: b, heap: b.AddGlobal(wasm.I32, true, 0)}

	k.genSetHeap()
	k.genAlloc()
	k.genSelSeq()
	k.genSelNonzero()
	for e := 0; e < 3; e++ { // i32, i64, f64 columns
		for c := 0; c < numCmps; c++ {
			k.genSelCmpImm(e, c)
		}
	}
	k.genSelLike()
	k.genSelCmpChar()
	k.genGather()
	k.genMapOps()
	k.genHashWord()
	k.genHashChar()
	k.genKwWord()
	k.genKwChar()
	k.genCanonF64()
	k.genSelNonNanF64()
	k.genGroupLocate()
	k.genAggKernels()
	k.genJoinInsert()
	k.genJoinProbe()
	k.genHTScan()
	k.genEntryWord()
	k.genStoreEntryWord()
	k.genStoreEntryChar()
	k.genCompactGather()
	k.genValLike()
	k.genBlendAndBool()
	k.genExtraKernels()
	k.genSortKernels()
	return b.Bytes()
}

var (
	kernelOnce sync.Once
	kernelBin  []byte
	kernelMod  *engine.Module
	kernelErr  error
)

// kernelModule compiles the kernel library once (TurboFan, full
// optimization) and caches it — the "pre-compiled library".
func kernelModule() (*engine.Module, error) {
	kernelOnce.Do(func() {
		kernelBin = buildKernels()
		eng := engine.New(engine.Config{Tier: engine.TierTurbofan})
		kernelMod, kernelErr = eng.Compile(kernelBin)
	})
	return kernelMod, kernelErr
}

type kb struct {
	b        *wasm.ModuleBuilder
	heap     uint32
	allocIdx uint32
}

func (k *kb) export(f *wasm.FuncBuilder, name string) { k.b.Export(name, wasm.ExternFunc, f.Index) }

// loop emits for (i = 0; i < n; i++) { body(i) } over locals.
func loop(f *wasm.FuncBuilder, i, n wasm.Local, body func()) {
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(n)
	f.Op(wasm.OpI32GeS)
	f.BrIf(1)
	body()
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
}

// selRow pushes sel[i] (i32).
func selRow(f *wasm.FuncBuilder, sel, i wasm.Local) {
	f.LocalGet(sel)
	f.LocalGet(i)
	f.I32Const(2)
	f.Op(wasm.OpI32Shl)
	f.I32Add()
	f.I32Load(0)
}

// vecAddr pushes base + row*8 where row (i32) is already on the stack.
func vecAddrFromStack(f *wasm.FuncBuilder, base wasm.Local) {
	f.I32Const(3)
	f.Op(wasm.OpI32Shl)
	f.LocalGet(base)
	f.I32Add()
}

func (k *kb) genSetHeap() {
	f := k.b.NewFunc("set_heap", wasm.FuncType{Params: []wasm.ValType{wasm.I32}})
	f.LocalGet(0)
	f.GlobalSet(k.heap)
	k.export(f, "set_heap")
}

func (k *kb) genAlloc() {
	f := k.b.NewFunc("alloc", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	ptr := f.AddLocal(wasm.I32)
	need := f.AddLocal(wasm.I32)
	f.GlobalGet(k.heap)
	f.I32Const(7)
	f.I32Add()
	f.I32Const(-8)
	f.I32And()
	f.LocalSet(ptr)
	f.LocalGet(ptr)
	f.LocalGet(0)
	f.I32Add()
	f.GlobalSet(k.heap)
	f.GlobalGet(k.heap)
	f.I32Const(65535)
	f.I32Add()
	f.I32Const(16)
	f.Op(wasm.OpI32ShrU)
	f.LocalSet(need)
	f.LocalGet(need)
	f.MemorySize()
	f.Op(wasm.OpI32GtU)
	f.If(wasm.BlockVoid)
	f.LocalGet(need)
	f.MemorySize()
	f.I32Sub()
	f.I32Const(16)
	f.I32Add()
	f.MemoryGrow()
	f.Drop()
	f.End()
	f.LocalGet(ptr)
	k.export(f, "alloc")
	k.allocIdx = f.Index
}

// sel_seq(out, begin, end) -> n
func (k *kb) genSelSeq() {
	f := k.b.NewFunc("sel_seq", wasm.FuncType{
		Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	out, begin, end := f.Param(0), f.Param(1), f.Param(2)
	i := f.AddLocal(wasm.I32)
	n := f.AddLocal(wasm.I32)
	f.LocalGet(end)
	f.LocalGet(begin)
	f.I32Sub()
	f.LocalSet(n)
	loop(f, i, n, func() {
		f.LocalGet(out)
		f.LocalGet(i)
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.I32Add()
		f.LocalGet(i)
		f.I32Store(0)
	})
	f.LocalGet(n)
	k.export(f, "sel_seq")
}

// sel_nonzero(selIn, n, vec, selOut) -> n'
func (k *kb) genSelNonzero() {
	f := k.b.NewFunc("sel_nonzero", wasm.FuncType{
		Params: []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	sel, n, vec, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3)
	i := f.AddLocal(wasm.I32)
	m := f.AddLocal(wasm.I32)
	row := f.AddLocal(wasm.I32)
	loop(f, i, n, func() {
		selRow(f, sel, i)
		f.LocalSet(row)
		f.LocalGet(row)
		vecAddrFromStack(f, vec)
		f.I64Load(0)
		f.Op(wasm.OpI64Eqz)
		f.I32Eqz()
		f.If(wasm.BlockVoid)
		f.LocalGet(out)
		f.LocalGet(m)
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.I32Add()
		f.LocalGet(row)
		f.I32Store(0)
		f.LocalGet(m)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(m)
		f.End()
	})
	f.LocalGet(m)
	k.export(f, "sel_nonzero")
}

// sel_<cmp>_<elem>(selIn, n, colBase, batchStart, imm, selOut) -> n'
// The immediate is i64 for integer columns (sign-compared) and f64 for
// float columns.
func (k *kb) genSelCmpImm(elem, cmp int) {
	immT := wasm.I64
	if elem == elemF64 {
		immT = wasm.F64
	}
	name := fmt.Sprintf("sel_%s_%s", cmpNames[cmp], elemNames[elem])
	f := k.b.NewFunc(name, wasm.FuncType{
		Params:  []wasm.ValType{wasm.I32, wasm.I32, wasm.I32, wasm.I32, immT, wasm.I32},
		Results: []wasm.ValType{wasm.I32}})
	sel, n, col, start, imm, out := f.Param(0), f.Param(1), f.Param(2), f.Param(3), f.Param(4), f.Param(5)
	i := f.AddLocal(wasm.I32)
	m := f.AddLocal(wasm.I32)
	row := f.AddLocal(wasm.I32)
	loop(f, i, n, func() {
		selRow(f, sel, i)
		f.LocalSet(row)
		// Load column value at absolute row (start + row).
		f.LocalGet(start)
		f.LocalGet(row)
		f.I32Add()
		switch elem {
		case elemI32:
			f.I32Const(2)
			f.Op(wasm.OpI32Shl)
			f.LocalGet(col)
			f.I32Add()
			f.I32Load(0)
			f.Op(wasm.OpI64ExtendI32S)
		case elemI64:
			f.I32Const(3)
			f.Op(wasm.OpI32Shl)
			f.LocalGet(col)
			f.I32Add()
			f.I64Load(0)
		case elemF64:
			f.I32Const(3)
			f.Op(wasm.OpI32Shl)
			f.LocalGet(col)
			f.I32Add()
			f.F64Load(0)
		}
		f.LocalGet(imm)
		if elem == elemF64 {
			f.Op([...]wasm.Opcode{wasm.OpF64Eq, wasm.OpF64Ne, wasm.OpF64Lt, wasm.OpF64Le, wasm.OpF64Gt, wasm.OpF64Ge}[cmp])
		} else {
			f.Op([...]wasm.Opcode{wasm.OpI64Eq, wasm.OpI64Ne, wasm.OpI64LtS, wasm.OpI64LeS, wasm.OpI64GtS, wasm.OpI64GeS}[cmp])
		}
		f.If(wasm.BlockVoid)
		f.LocalGet(out)
		f.LocalGet(m)
		f.I32Const(2)
		f.Op(wasm.OpI32Shl)
		f.I32Add()
		f.LocalGet(row)
		f.I32Store(0)
		f.LocalGet(m)
		f.I32Const(1)
		f.I32Add()
		f.LocalSet(m)
		f.End()
	})
	f.LocalGet(m)
	k.export(f, name)
}
