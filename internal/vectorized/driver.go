package vectorized

import (
	"fmt"
	"math"

	"wasmdb/internal/engine"
	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

const pageSize = 64 * 1024

// Stats reports vectorized execution phases.
type Stats struct {
	KernelCalls int
}

// Runner executes one query with the vectorized engine.
type Runner struct {
	q    *sema.Query
	inst *engine.Instance
	mem  *wmem.Memory

	colBase map[[2]int]uint32

	constCursor uint32
	consts      map[string]uint32

	// Fixed scratch areas.
	selA, selB   uint32 // selection vectors
	kwArea       uint32
	newSel       uint32
	outRowSel    uint32
	probeState   uint32
	vecPool      uint32
	vecPoolN     int
	vecNext      int
	ctrlArea     uint32
	ctrlNext     uint32
	charPool     uint32
	charPoolSize uint32
	charNext     uint32

	stats Stats
}

const (
	maxKeyWords = 8
	numVecs     = 64
	charPoolCap = 64 * BatchSize // bytes for packed char scratch buffers
)

// Run executes the plan and returns column names and rows.
func Run(q *sema.Query, root plan.Node) ([]string, [][]types.Value, *Stats, error) {
	mod, err := kernelModule()
	if err != nil {
		return nil, nil, nil, err
	}
	r := &Runner{q: q, colBase: map[[2]int]uint32{}, consts: map[string]uint32{}}

	// Address space: page 0 guard, page 1 constants, then columns, then
	// scratch, then heap.
	cursor := uint32(2 * pageSize)
	used := map[[2]int]bool{}
	collectColumns(q, used)
	for ti := range q.Tables {
		tbl := q.Tables[ti].Table
		for ci := range tbl.Columns {
			if !used[[2]int{ti, ci}] {
				continue
			}
			r.colBase[[2]int{ti, ci}] = cursor
			cursor += uint32(tbl.Columns[ci].MappedBytes())
		}
	}
	scratch := cursor
	alloc := func(n uint32) uint32 {
		p := scratch
		scratch += (n + 7) &^ 7
		return p
	}
	r.selA = alloc(BatchSize * 4)
	r.selB = alloc(BatchSize * 4)
	r.newSel = alloc(BatchSize * 4)
	r.outRowSel = alloc(BatchSize * 4)
	r.probeState = alloc(16)
	r.kwArea = alloc(BatchSize * 8 * maxKeyWords)
	r.ctrlArea = alloc(1024)
	r.ctrlNext = r.ctrlArea
	r.vecPool = alloc(BatchSize * 8 * numVecs)
	r.vecPoolN = numVecs
	r.charPool = alloc(charPoolCap)
	r.charPoolSize = charPoolCap
	r.charNext = r.charPool
	heapBase := (scratch + pageSize - 1) &^ (pageSize - 1)

	minPages := heapBase/pageSize + 16
	mem := wmem.New(minPages, 65536)
	r.mem = mem
	for key, base := range r.colBase {
		col := q.Tables[key[0]].Table.Columns[key[1]]
		if col.MappedBytes() == 0 {
			continue
		}
		// Column bases are page-aligned because each mapped size is a page
		// multiple and the sequence starts page-aligned.
		if err := mem.Map(base, col.Data()); err != nil {
			return nil, nil, nil, fmt.Errorf("vectorized: map column: %w", err)
		}
	}

	inst, err := mod.Instantiate(engine.Imports{Memory: mem})
	if err != nil {
		return nil, nil, nil, err
	}
	r.inst = inst
	r.call("set_heap", uint64(heapBase))

	proj, ok := root.(*plan.Project)
	if !ok {
		return nil, nil, nil, fmt.Errorf("vectorized: root must be a projection")
	}
	var names []string
	for _, oc := range proj.Cols {
		names = append(names, oc.Name)
	}

	var rows [][]types.Value
	limit := int64(-1)
	inner := proj.Input
	if lim, ok := inner.(*plan.Limit); ok {
		limit = lim.N
		inner = lim.Input
	}
	emit := func(b *batch) error {
		out, err := r.projectBatch(b, proj.Cols)
		if err != nil {
			return err
		}
		rows = append(rows, out...)
		if limit >= 0 && int64(len(rows)) >= limit {
			rows = rows[:limit]
			return errLimitReached
		}
		return nil
	}
	if err := r.exec(inner, emit); err != nil && err != errLimitReached {
		return nil, nil, nil, err
	}
	// SQL: global aggregation over zero rows yields one row. With HAVING,
	// execGlobalAgg already emitted (or filtered) the zero group itself.
	if g, ok := inner.(*plan.Group); ok && len(g.Keys) == 0 && len(rows) == 0 && len(g.Having) == 0 {
		rows = append(rows, zeroAggRow(proj.Cols, g.Aggs))
	}
	return names, rows, &r.stats, nil
}

var errLimitReached = fmt.Errorf("vectorized: limit reached")

func collectColumns(q *sema.Query, used map[[2]int]bool) {
	for _, e := range q.Conjuncts {
		sema.ColumnsUsed(e, used)
	}
	for _, e := range q.GroupBy {
		sema.ColumnsUsed(e, used)
	}
	for _, a := range q.Aggs {
		if a.Arg != nil {
			sema.ColumnsUsed(a.Arg, used)
		}
	}
	for _, oc := range q.Select {
		sema.ColumnsUsed(oc.Expr, used)
	}
	for _, ok := range q.OrderBy {
		sema.ColumnsUsed(ok.Expr, used)
	}
}

// call invokes a kernel.
func (r *Runner) call(name string, args ...uint64) uint64 {
	r.stats.KernelCalls++
	res, err := r.inst.Call(name, args...)
	if err != nil {
		panic(fmt.Sprintf("vectorized: kernel %s: %v", name, err))
	}
	if len(res) > 0 {
		return res[0]
	}
	return 0
}

// intern places a string constant in the constant region.
func (r *Runner) intern(s string) uint32 {
	if a, ok := r.consts[s]; ok {
		return a
	}
	addr := uint32(pageSize) + r.constCursor
	r.mem.WriteBytes(addr, []byte(s))
	r.constCursor += uint32(len(s))
	r.consts[s] = addr
	return addr
}

// vec handles one positional 8-byte vector in scratch.
type vec struct {
	addr uint32
}

// charBuf is a packed CHAR buffer: width bytes per row starting at addr
// (plus start rows offset when aliasing a column).
type charBuf struct {
	addr  uint32
	width int
	start int
}

func (r *Runner) newVec() vec {
	if r.vecNext >= r.vecPoolN {
		panic("vectorized: vector scratch exhausted")
	}
	v := vec{addr: r.vecPool + uint32(r.vecNext)*BatchSize*8}
	r.vecNext++
	return v
}

func (r *Runner) newCharBuf(width int) charBuf {
	need := uint32(width * BatchSize)
	if r.charNext+need > r.charPool+r.charPoolSize {
		panic("vectorized: char scratch exhausted")
	}
	b := charBuf{addr: r.charNext, width: width}
	r.charNext += (need + 7) &^ 7
	return b
}

// resetScratch releases per-batch scratch.
func (r *Runner) resetScratch() {
	r.vecNext = 0
	r.charNext = r.charPool
}

// allocCtrl reserves a control block.
func (r *Runner) allocCtrl() uint32 {
	p := r.ctrlNext
	r.ctrlNext += 32
	return p
}

// guestAlloc allocates heap memory inside the module.
func (r *Runner) guestAlloc(n uint32) uint32 {
	return uint32(r.call("alloc", uint64(n)))
}

// batch is one unit of vectorized processing.
type batch struct {
	n     int    // positional space size
	sel   uint32 // selection vector address
	selN  int
	start int // batchStart for direct column access; -1 for compact batches
	// For compact batches, leaves are materialized:
	vecs  map[string]vec
	chars map[string]charBuf
}

func leafKey(e sema.Expr) string { return e.String() }

// columnRef resolves a leaf to either a direct storage column (scan
// batches) or a materialized vector/char buffer (compact batches).
func (r *Runner) leafVec(b *batch, e sema.Expr) (vec, bool) {
	if b.vecs != nil {
		if v, ok := b.vecs[leafKey(e)]; ok {
			return v, true
		}
	}
	return vec{}, false
}

func (r *Runner) leafChar(b *batch, e sema.Expr) (charBuf, bool) {
	if cr, ok := e.(*sema.ColRef); ok && b.start >= 0 {
		if base, ok := r.colBase[[2]int{cr.Table, cr.Col}]; ok {
			return charBuf{addr: base, width: cr.T.Length, start: b.start}, true
		}
	}
	if b.chars != nil {
		if c, ok := b.chars[leafKey(e)]; ok {
			return c, true
		}
	}
	return charBuf{}, false
}

func elemOf(t types.Type) (int, bool) {
	switch t.Kind {
	case types.Int32, types.Date:
		return elemI32, true
	case types.Int64, types.Decimal:
		return elemI64, true
	case types.Float64:
		return elemF64, true
	case types.Bool:
		return elemU8, true
	}
	return 0, false
}

func roundup8(n int) int { return (n + 7) &^ 7 }

// zeroAggRow fabricates the single output row of a global aggregation over
// zero input rows.
func zeroAggRow(cols []sema.OutputCol, aggs []sema.Aggregate) []types.Value {
	ctx := zeroCtx{aggs: aggs}
	out := make([]types.Value, len(cols))
	for i, oc := range cols {
		out[i] = evalConstish(oc.Expr, ctx)
	}
	return out
}

type zeroCtx struct{ aggs []sema.Aggregate }

func evalConstish(e sema.Expr, ctx zeroCtx) types.Value {
	switch x := e.(type) {
	case *sema.Const:
		return x.V
	case *sema.AggRef:
		t := ctx.aggs[x.Idx].T
		switch t.Kind {
		case types.Float64:
			return types.NewFloat64(0)
		case types.Decimal:
			return types.NewDecimal(0, t.Prec, t.Scale)
		case types.Int32:
			return types.NewInt32(0)
		case types.Date:
			return types.NewDate(0)
		default:
			return types.NewInt64(0)
		}
	case *sema.Binary:
		l := evalConstish(x.L, ctx)
		rr := evalConstish(x.R, ctx)
		if x.Op == sema.OpDiv {
			v := l.F / rr.F
			if math.IsNaN(v) {
				v = 0
			}
			return types.NewFloat64(v)
		}
		return l
	case *sema.Cast:
		inner := evalConstish(x.E, ctx)
		switch x.To.Kind {
		case types.Float64:
			if inner.Type.Kind == types.Decimal {
				return types.NewFloat64(float64(inner.I) / float64(types.Pow10(inner.Type.Scale)))
			}
			return types.NewFloat64(float64(inner.I))
		}
		return inner
	}
	return types.Value{Type: e.Type()}
}
