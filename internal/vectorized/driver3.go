package vectorized

import (
	"fmt"
	"math"

	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// keyDesc describes one normalized hash key or materialized field.
type keyDesc struct {
	expr    sema.Expr
	char    bool
	width   int // char width (rounded up to 8 in normalized form)
	words   int // words occupied in key area
	byteOff int // offset within the key/payload area
}

func describeKeys(exprs []sema.Expr) ([]keyDesc, int) {
	var out []keyDesc
	off := 0
	for _, e := range exprs {
		d := keyDesc{expr: e, byteOff: off}
		if e.Type().Kind == types.Char {
			d.char = true
			d.width = e.Type().Length
			d.words = roundup8(d.width) / 8
		} else {
			d.words = 1
		}
		off += d.words * 8
		out = append(out, d)
	}
	return out, off / 8
}

// hashAndNormalize computes the hash vector and the key-word area for the
// given key expressions over a batch. canonFloat hashes (and stores key
// words for) Float64 keys through a -0.0→+0.0 canonical copy so the join's
// bit-compared key words agree wherever float equality does; group keys
// keep raw bits, where ±0 forming two groups is the established behavior.
func (r *Runner) hashAndNormalize(b *batch, keys []keyDesc, nKW int, canonFloat bool) (vec, error) {
	hv := r.newVec()
	for i, d := range keys {
		first := uint64(0)
		if i == 0 {
			first = 1
		}
		if d.char {
			cb, ok := r.leafChar(b, d.expr)
			if !ok {
				return vec{}, fmt.Errorf("vectorized: char key %s not available", d.expr)
			}
			r.call("hash_char", uint64(b.sel), uint64(b.selN), uint64(cb.addr), uint64(cb.width),
				uint64(cb.start), uint64(hv.addr), first)
			r.call("kw_char", uint64(b.sel), uint64(b.selN), uint64(cb.addr), uint64(cb.width),
				uint64(cb.start), uint64(r.kwArea), uint64(nKW), uint64(d.byteOff), uint64(d.words*8))
		} else {
			v, err := r.evalVec(b, d.expr)
			if err != nil {
				return vec{}, err
			}
			if canonFloat && d.expr.Type().Kind == types.Float64 {
				cv := r.newVec()
				r.call("canon_f64", uint64(b.sel), uint64(b.selN), uint64(v.addr), uint64(cv.addr))
				v = cv
			}
			r.call("hash_word", uint64(b.sel), uint64(b.selN), uint64(v.addr), uint64(hv.addr), first)
			r.call("kw_word", uint64(b.sel), uint64(b.selN), uint64(v.addr), uint64(r.kwArea),
				uint64(nKW), uint64(d.byteOff/8))
		}
	}
	return hv, nil
}

// initCtrl writes a hash-table control block.
func (r *Runner) initCtrl(ctrl uint32, initialCap, esize, nkw, npw int) {
	base := r.guestAlloc(uint32(initialCap * esize))
	r.mem.PutU32(ctrl+htOffBase, base)
	r.mem.PutU32(ctrl+htOffMask, uint32(initialCap-1))
	r.mem.PutU32(ctrl+htOffCount, 0)
	r.mem.PutU32(ctrl+htOffESize, uint32(esize))
	r.mem.PutU32(ctrl+htOffNKW, uint32(nkw))
	r.mem.PutU32(ctrl+htOffNPW, uint32(npw))
}

// ---------------------------------------------------------------------------
// Grouping & aggregation.

func (r *Runner) execGroup(g *plan.Group, emit func(*batch) error) error {
	if len(g.Keys) == 0 {
		return r.execGlobalAgg(g, emit)
	}
	keys, nKW := describeKeys(g.Keys)
	nAggs := len(g.Aggs)
	esize := entryOffKeys + (nKW+nAggs)*8
	slotOff := func(i int) int { return entryOffKeys + nKW*8 + i*8 }
	ctrl := r.allocCtrl()
	r.initCtrl(ctrl, 1024, esize, nKW, nAggs)

	ptrs := vec{addr: r.vecPool + uint32(r.vecPoolN-1)*BatchSize*8}
	r.vecPoolN-- // reserve the last pool slot across batches

	err := r.exec(g.Input, func(b *batch) error {
		hv, err := r.hashAndNormalize(b, keys, nKW, false)
		if err != nil {
			return err
		}
		// Aggregate argument vectors (computed once per batch).
		argVecs := make([]vec, nAggs)
		for i, a := range g.Aggs {
			if a.Arg == nil {
				continue
			}
			v, err := r.evalVec(b, a.Arg)
			if err != nil {
				return err
			}
			argVecs[i] = v
		}
		nNew := int(int32(r.call("group_locate", uint64(b.sel), uint64(b.selN), uint64(hv.addr),
			uint64(r.kwArea), uint64(ctrl), uint64(ptrs.addr), uint64(r.newSel))))
		// Seed MIN/MAX states of fresh groups, then fold the whole batch.
		for i, a := range g.Aggs {
			if (a.Func == sema.AggMin || a.Func == sema.AggMax) && nNew > 0 {
				r.call("agg_seed", uint64(r.newSel), uint64(nNew), uint64(ptrs.addr),
					uint64(argVecs[i].addr), uint64(slotOff(i)))
			}
		}
		for i, a := range g.Aggs {
			off := uint64(slotOff(i))
			switch a.Func {
			case sema.AggCountStar, sema.AggCount:
				r.call("agg_count", uint64(b.sel), uint64(b.selN), uint64(ptrs.addr), off)
			case sema.AggSum:
				name := "agg_sum_i64"
				if a.T.Kind == types.Float64 {
					name = "agg_sum_f64"
				}
				r.call(name, uint64(b.sel), uint64(b.selN), uint64(ptrs.addr), uint64(argVecs[i].addr), off)
			case sema.AggMin, sema.AggMax:
				name := "agg_min_i64"
				if a.Func == sema.AggMax {
					name = "agg_max_i64"
				}
				if a.T.Kind == types.Float64 {
					name = "agg_min_f64"
					if a.Func == sema.AggMax {
						name = "agg_max_f64"
					}
				}
				r.call(name, uint64(b.sel), uint64(b.selN), uint64(ptrs.addr), uint64(argVecs[i].addr), off)
			}
		}
		return nil
	})
	r.vecPoolN++
	if err != nil {
		return err
	}

	// Scan the table in batches.
	slot := 0
	for {
		r.resetScratch()
		outPtrs := r.newVec()
		packed := r.call("ht_scan", uint64(ctrl), uint64(slot), BatchSize, uint64(outPtrs.addr))
		nOut := int(packed >> 32)
		slot = int(uint32(packed))
		if nOut == 0 {
			break
		}
		b := &batch{n: nOut, sel: r.selA, start: -1,
			vecs: map[string]vec{}, chars: map[string]charBuf{}}
		b.selN = int(int32(r.call("sel_seq", uint64(r.selA), 0, uint64(nOut))))
		for i, d := range keys {
			ref := &sema.KeyRef{Idx: i, T: g.Keys[i].Type()}
			if d.char {
				cb := r.newCharBuf(roundup8(d.width))
				r.call("entry_char", uint64(nOut), uint64(outPtrs.addr),
					uint64(entryOffKeys+d.byteOff), uint64(cb.width), uint64(cb.addr))
				b.chars[leafKey(ref)] = cb
			} else {
				v := r.newVec()
				r.call("entry_word", uint64(nOut), uint64(outPtrs.addr),
					uint64(entryOffKeys+d.byteOff), uint64(v.addr))
				b.vecs[leafKey(ref)] = v
			}
		}
		for i, a := range g.Aggs {
			ref := &sema.AggRef{Idx: i, T: a.T}
			v := r.newVec()
			r.call("entry_word", uint64(nOut), uint64(outPtrs.addr), uint64(slotOff(i)), uint64(v.addr))
			b.vecs[leafKey(ref)] = v
		}
		// HAVING filters finished groups; the batch binds KeyRef/AggRef
		// leaves so applyPred resolves them like any other predicate.
		for _, h := range g.Having {
			if err := r.applyPred(b, h); err != nil {
				return err
			}
		}
		if b.selN == 0 {
			continue
		}
		if err := emit(b); err != nil {
			return err
		}
	}
	return nil
}

// execGlobalAgg aggregates a single group into one pre-allocated state
// entry — no hash table, no locate call per row ("simple aggregation").
func (r *Runner) execGlobalAgg(g *plan.Group, emit func(*batch) error) error {
	nAggs := len(g.Aggs)
	entry := r.guestAlloc(uint32(entryOffKeys + nAggs*8))
	slotOff := func(i int) int { return entryOffKeys + i*8 }

	ptrs := vec{addr: r.vecPool + uint32(r.vecPoolN-1)*BatchSize*8}
	r.vecPoolN--
	defer func() { r.vecPoolN++ }()

	seeded := false
	rowsSeen := 0
	err := r.exec(g.Input, func(b *batch) error {
		if b.selN == 0 {
			return nil
		}
		rowsSeen += b.selN
		// All rows share the one state entry.
		r.call("fill", uint64(b.sel), uint64(b.selN), uint64(entry), uint64(ptrs.addr))
		argVecs := make([]vec, nAggs)
		for i, a := range g.Aggs {
			if a.Arg == nil {
				continue
			}
			v, err := r.evalVec(b, a.Arg)
			if err != nil {
				return err
			}
			argVecs[i] = v
		}
		if !seeded {
			seeded = true
			// Seed MIN/MAX with the batch's first selected row.
			first := r.mem.U32(b.sel)
			r.mem.PutU32(r.newSel, first)
			for i, a := range g.Aggs {
				if a.Func == sema.AggMin || a.Func == sema.AggMax {
					r.call("agg_seed", uint64(r.newSel), 1, uint64(ptrs.addr),
						uint64(argVecs[i].addr), uint64(slotOff(i)))
				}
			}
		}
		for i, a := range g.Aggs {
			off := uint64(slotOff(i))
			switch a.Func {
			case sema.AggCountStar, sema.AggCount:
				r.call("agg_count", uint64(b.sel), uint64(b.selN), uint64(ptrs.addr), off)
			case sema.AggSum:
				name := "agg_sum_i64"
				if a.T.Kind == types.Float64 {
					name = "agg_sum_f64"
				}
				r.call(name, uint64(b.sel), uint64(b.selN), uint64(ptrs.addr), uint64(argVecs[i].addr), off)
			case sema.AggMin, sema.AggMax:
				name := "agg_min_i64"
				if a.Func == sema.AggMax {
					name = "agg_max_i64"
				}
				if a.T.Kind == types.Float64 {
					name = "agg_min_f64"
					if a.Func == sema.AggMax {
						name = "agg_max_f64"
					}
				}
				r.call(name, uint64(b.sel), uint64(b.selN), uint64(ptrs.addr), uint64(argVecs[i].addr), off)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if rowsSeen == 0 && len(g.Having) == 0 {
		return nil // the driver fabricates the zero row
	}
	// With HAVING, fall through even on empty input: the zero-filled state
	// entry is the zero group, and HAVING decides whether it is emitted.
	r.resetScratch()
	b := &batch{n: 1, sel: r.selA, start: -1, vecs: map[string]vec{}, chars: map[string]charBuf{}}
	b.selN = int(int32(r.call("sel_seq", uint64(r.selA), 0, 1)))
	outPtrs := r.newVec()
	r.mem.PutU64(outPtrs.addr, uint64(entry))
	for i, a := range g.Aggs {
		ref := &sema.AggRef{Idx: i, T: a.T}
		v := r.newVec()
		r.call("entry_word", 1, uint64(outPtrs.addr), uint64(slotOff(i)), uint64(v.addr))
		b.vecs[leafKey(ref)] = v
	}
	for _, h := range g.Having {
		if err := r.applyPred(b, h); err != nil {
			return err
		}
	}
	if b.selN == 0 {
		return nil
	}
	return emit(b)
}

// ---------------------------------------------------------------------------
// Hash join.

func (r *Runner) execJoin(j *plan.HashJoin, emit func(*batch) error) error {
	keys, nKW := describeKeys(j.BuildKeys)
	// Payload: every referenced column of the build side.
	buildTables := j.Build.Tables()
	var payload []keyDesc
	used := map[[2]int]bool{}
	collectColumns(r.q, used)
	pOff := 0
	for ti := range r.q.Tables {
		if !buildTables[ti] {
			continue
		}
		tbl := r.q.Tables[ti].Table
		for ci, col := range tbl.Columns {
			if !used[[2]int{ti, ci}] {
				continue
			}
			d := keyDesc{
				expr:    &sema.ColRef{Table: ti, Col: ci, T: col.Type, Name: col.Name},
				byteOff: pOff,
			}
			if col.Type.Kind == types.Char {
				d.char = true
				d.width = col.Type.Length
				d.words = roundup8(d.width) / 8
			} else {
				d.words = 1
			}
			pOff += d.words * 8
			payload = append(payload, d)
		}
	}
	nPW := pOff / 8
	esize := entryOffKeys + (nKW+nPW)*8
	payloadBase := entryOffKeys + nKW*8
	ctrl := r.allocCtrl()
	r.initCtrl(ctrl, 1024, esize, nKW, nPW)

	ptrs := vec{addr: r.vecPool + uint32(r.vecPoolN-1)*BatchSize*8}
	r.vecPoolN--

	err := r.exec(j.Build, func(b *batch) error {
		// A NaN key can never satisfy the probe's float equality — filter
		// those rows out before insertion (in-place sel compaction is safe:
		// the write index never passes the read index).
		for _, d := range keys {
			if d.char || d.expr.Type().Kind != types.Float64 {
				continue
			}
			v, err := r.evalVec(b, d.expr)
			if err != nil {
				return err
			}
			b.selN = int(int32(r.call("sel_nonnan_f64", uint64(b.sel), uint64(b.selN),
				uint64(v.addr), uint64(b.sel))))
		}
		hv, err := r.hashAndNormalize(b, keys, nKW, true)
		if err != nil {
			return err
		}
		r.call("join_insert", uint64(b.sel), uint64(b.selN), uint64(hv.addr),
			uint64(r.kwArea), uint64(ctrl), uint64(ptrs.addr))
		for _, d := range payload {
			off := uint64(payloadBase + d.byteOff)
			if d.char {
				cb, ok := r.leafChar(b, d.expr)
				if !ok {
					return fmt.Errorf("vectorized: build payload %s not available", d.expr)
				}
				r.call("store_entry_char", uint64(b.sel), uint64(b.selN), uint64(ptrs.addr),
					uint64(cb.addr), uint64(cb.width), uint64(cb.start), off, uint64(d.words*8))
			} else {
				v, err := r.evalVec(b, d.expr)
				if err != nil {
					return err
				}
				r.call("store_entry_word", uint64(b.sel), uint64(b.selN), uint64(ptrs.addr),
					uint64(v.addr), off)
			}
		}
		return nil
	})
	r.vecPoolN++
	if err != nil {
		return err
	}

	// Probe side: leaves needed downstream from the probe side.
	probeKeys, pnKW := describeKeys(j.ProbeKeys)
	if pnKW != nKW {
		return fmt.Errorf("vectorized: key width mismatch")
	}
	var probeLeaves []keyDesc
	{
		probeTables := j.Probe.Tables()
		for ti := range r.q.Tables {
			if !probeTables[ti] {
				continue
			}
			tbl := r.q.Tables[ti].Table
			for ci, col := range tbl.Columns {
				if !used[[2]int{ti, ci}] {
					continue
				}
				d := keyDesc{expr: &sema.ColRef{Table: ti, Col: ci, T: col.Type, Name: col.Name}}
				if col.Type.Kind == types.Char {
					d.char = true
					d.width = col.Type.Length
				}
				probeLeaves = append(probeLeaves, d)
			}
		}
	}

	return r.exec(j.Probe, func(b *batch) error {
		hv, err := r.hashAndNormalize(b, probeKeys, nKW, true)
		if err != nil {
			return err
		}
		// Resumable probe loop with a bounded match buffer.
		r.mem.PutU32(r.probeState, 0)
		r.mem.PutU32(r.probeState+4, ^uint32(0))
		for {
			outPtrs := r.newVec()
			packed := r.call("join_probe", uint64(b.sel), uint64(b.selN), uint64(hv.addr),
				uint64(r.kwArea), uint64(ctrl), uint64(r.probeState),
				uint64(r.outRowSel), uint64(outPtrs.addr), BatchSize)
			nOut := int(packed >> 32)
			done := packed&1 != 0
			if nOut > 0 {
				ob := &batch{n: nOut, sel: r.selB, start: -1,
					vecs: map[string]vec{}, chars: map[string]charBuf{}}
				ob.selN = int(int32(r.call("sel_seq", uint64(r.selB), 0, uint64(nOut))))
				// Build-side fields from entries.
				for _, d := range payload {
					off := uint64(payloadBase + d.byteOff)
					if d.char {
						cb := r.newCharBuf(roundup8(d.width))
						r.call("entry_char", uint64(nOut), uint64(outPtrs.addr), off,
							uint64(cb.width), uint64(cb.addr))
						ob.chars[leafKey(d.expr)] = cb
					} else {
						v := r.newVec()
						r.call("entry_word", uint64(nOut), uint64(outPtrs.addr), off, uint64(v.addr))
						ob.vecs[leafKey(d.expr)] = v
					}
				}
				// Probe-side fields gathered through the match row list.
				for _, d := range probeLeaves {
					if d.char {
						cb, ok := r.leafChar(b, d.expr)
						if !ok {
							return fmt.Errorf("vectorized: probe leaf %s missing", d.expr)
						}
						out := r.newCharBuf(cb.width)
						r.call("compact_gather_char", uint64(r.outRowSel), uint64(nOut),
							uint64(cb.addr), uint64(cb.width), uint64(cb.start), uint64(out.addr))
						ob.chars[leafKey(d.expr)] = out
					} else if v, ok := r.leafVec(b, d.expr); ok {
						out := r.newVec()
						r.call("compact_gather", uint64(r.outRowSel), uint64(nOut),
							uint64(v.addr), uint64(out.addr))
						ob.vecs[leafKey(d.expr)] = out
					} else if cr, ok := d.expr.(*sema.ColRef); ok && b.start >= 0 {
						base := r.colBase[[2]int{cr.Table, cr.Col}]
						elem, _ := elemOf(cr.T)
						out := r.newVec()
						r.call("compact_gather_"+elemNames[elem], uint64(r.outRowSel), uint64(nOut),
							uint64(base), uint64(b.start), uint64(out.addr))
						ob.vecs[leafKey(d.expr)] = out
					} else {
						return fmt.Errorf("vectorized: probe leaf %s missing", d.expr)
					}
				}
				// Residual predicates refine the joined batch.
				for _, res := range j.Residual {
					if err := r.applyPred(ob, res); err != nil {
						return err
					}
				}
				if ob.selN > 0 {
					if err := emit(ob); err != nil {
						return err
					}
				}
			}
			if done {
				return nil
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Sort.

func (r *Runner) execSort(s *plan.Sort, emit func(*batch) error) error {
	// Key bytes first (order-preserving encodings), then payload fields.
	type skey struct {
		keyDesc
		desc bool
		f64  bool
	}
	var skeys []skey
	keyLen := 0
	for _, k := range s.Keys {
		d := skey{desc: k.Desc}
		d.expr = k.Expr
		d.byteOff = keyLen
		if k.Expr.Type().Kind == types.Char {
			d.char = true
			d.width = k.Expr.Type().Length
			keyLen += roundup8(d.width)
		} else {
			d.f64 = k.Expr.Type().Kind == types.Float64
			keyLen += 8
		}
		skeys = append(skeys, d)
	}
	// Payload: the distinct leaves of the output expressions.
	var leaves []sema.Expr
	seen := map[string]bool{}
	for _, oc := range r.q.Select {
		for _, l := range exprLeaves(oc.Expr) {
			if !seen[leafKey(l)] {
				seen[leafKey(l)] = true
				leaves = append(leaves, l)
			}
		}
	}
	var payload []keyDesc
	pOff := keyLen
	for _, l := range leaves {
		d := keyDesc{expr: l, byteOff: pOff}
		if l.Type().Kind == types.Char {
			d.char = true
			d.width = l.Type().Length
			pOff += roundup8(d.width)
		} else {
			pOff += 8
		}
		payload = append(payload, d)
	}
	stride := roundup8(pOff)

	ctrl := r.allocCtrl()
	base := r.guestAlloc(uint32(1024 * stride))
	r.mem.PutU32(ctrl+arrOffBase, base)
	r.mem.PutU32(ctrl+arrOffCount, 0)
	r.mem.PutU32(ctrl+arrOffCap, 1024)
	r.mem.PutU32(ctrl+arrOffStride, uint32(stride))

	err := r.exec(s.Input, func(b *batch) error {
		startIdx := uint32(r.call("arr_reserve", uint64(ctrl), uint64(b.selN)))
		arrBase := r.mem.U32(ctrl + arrOffBase)
		for _, d := range skeys {
			desc := uint64(0)
			if d.desc {
				desc = 1
			}
			if d.char {
				cb, ok := r.leafChar(b, d.expr)
				if !ok {
					return fmt.Errorf("vectorized: sort key %s not available", d.expr)
				}
				r.call("sk_encode_char", uint64(b.sel), uint64(b.selN), uint64(cb.addr),
					uint64(cb.width), uint64(cb.start), uint64(arrBase), uint64(stride),
					uint64(d.byteOff), uint64(roundup8(d.width)), uint64(startIdx), desc)
			} else {
				v, err := r.evalVec(b, d.expr)
				if err != nil {
					return err
				}
				name := "sk_encode_i64"
				if d.f64 {
					name = "sk_encode_f64"
				}
				r.call(name, uint64(b.sel), uint64(b.selN), uint64(v.addr), uint64(arrBase),
					uint64(stride), uint64(d.byteOff), uint64(startIdx), desc)
			}
		}
		for _, d := range payload {
			if d.char {
				cb, ok := r.leafChar(b, d.expr)
				if !ok {
					return fmt.Errorf("vectorized: sort payload %s not available", d.expr)
				}
				r.call("arr_store_char", uint64(b.sel), uint64(b.selN), uint64(cb.addr),
					uint64(cb.width), uint64(cb.start), uint64(arrBase), uint64(stride),
					uint64(d.byteOff), uint64(startIdx))
			} else {
				v, err := r.evalVec(b, d.expr)
				if err != nil {
					return err
				}
				r.call("arr_store_word", uint64(b.sel), uint64(b.selN), uint64(v.addr),
					uint64(arrBase), uint64(stride), uint64(d.byteOff), uint64(startIdx))
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	count := int(r.mem.U32(ctrl + arrOffCount))
	arrBase := r.mem.U32(ctrl + arrOffBase)
	pivS := r.guestAlloc(uint32(stride))
	isoS := r.guestAlloc(uint32(stride))
	r.call("qsort_g", uint64(arrBase), 0, uint64(count), uint64(stride), uint64(keyLen),
		uint64(pivS), uint64(isoS))

	for startRow := 0; startRow < count; startRow += BatchSize {
		r.resetScratch()
		n := count - startRow
		if n > BatchSize {
			n = BatchSize
		}
		b := &batch{n: n, sel: r.selA, start: -1, vecs: map[string]vec{}, chars: map[string]charBuf{}}
		b.selN = int(int32(r.call("sel_seq", uint64(r.selA), 0, uint64(n))))
		for _, d := range payload {
			if d.char {
				// Read exactly the declared width: the slot's rounding
				// padding is uninitialized.
				cb := r.newCharBuf(d.width)
				r.call("arr_read_char", uint64(n), uint64(arrBase), uint64(stride),
					uint64(d.byteOff), uint64(cb.width), uint64(startRow), uint64(cb.addr))
				b.chars[leafKey(d.expr)] = cb
			} else {
				v := r.newVec()
				r.call("arr_read_word", uint64(n), uint64(arrBase), uint64(stride),
					uint64(d.byteOff), uint64(startRow), uint64(v.addr))
				b.vecs[leafKey(d.expr)] = v
			}
		}
		if err := emit(b); err != nil {
			return err
		}
	}
	return nil
}

func exprLeaves(e sema.Expr) []sema.Expr {
	switch x := e.(type) {
	case *sema.ColRef, *sema.KeyRef, *sema.AggRef:
		return []sema.Expr{e}
	case *sema.Binary:
		return append(exprLeaves(x.L), exprLeaves(x.R)...)
	case *sema.Not:
		return exprLeaves(x.E)
	case *sema.Cast:
		return exprLeaves(x.E)
	case *sema.Like:
		return exprLeaves(x.E)
	case *sema.Case:
		var out []sema.Expr
		for _, w := range x.Whens {
			out = append(out, exprLeaves(w.Cond)...)
			out = append(out, exprLeaves(w.Then)...)
		}
		return append(out, exprLeaves(x.Else)...)
	case *sema.ExtractYear:
		return exprLeaves(x.E)
	}
	return nil
}
