package sql

import (
	"fmt"
	"strconv"
	"strings"

	"wasmdb/internal/types"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.selectStmt()
	case p.peekKeyword("CREATE"):
		stmt, err = p.createStmt()
	case p.peekKeyword("INSERT"):
		stmt, err = p.insertStmt()
	default:
		return nil, fmt.Errorf("sql: expected SELECT, CREATE, or INSERT")
	}
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected trailing input %q", p.cur().text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: not a SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
	// nParams counts ? placeholders, assigning ordinals by appearance.
	nParams int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s near %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) peekOp(op string) bool {
	t := p.cur()
	return t.kind == tokOp && t.text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sql: expected %q near %q", op, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier near %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1, LimitParam: -1}
	for {
		if p.acceptOp("*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.cur().kind == tokIdent {
				item.Alias = p.next().text
			}
			s.Items = append(s.Items, item)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	first, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s.From = append(s.From, first)
	for {
		if p.acceptOp(",") {
			fi, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, fi)
			continue
		}
		joined := false
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			joined = true
		} else if p.acceptKeyword("JOIN") {
			joined = true
		}
		if !joined {
			break
		}
		jf, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		jf.On = cond
		s.From = append(s.From, jf)
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				oi.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		if p.acceptOp("?") {
			s.LimitParam = p.nParams
			p.nParams++
		} else {
			t := p.cur()
			if t.kind != tokInt {
				return nil, fmt.Errorf("sql: expected integer after LIMIT")
			}
			p.pos++
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sql: invalid LIMIT %q", t.text)
			}
			s.Limit = n
		}
	}
	s.NumParams = p.nParams
	return s, nil
}

// tableRef parses a table name with an optional alias (with or without AS).
func (p *parser) tableRef() (FromItem, error) {
	name, err := p.ident()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: name, Alias: name}
	if p.acceptKeyword("AS") {
		a, err := p.ident()
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = a
	} else if p.cur().kind == tokIdent {
		fi.Alias = p.next().text
	}
	return fi, nil
}

func (p *parser) createStmt() (*CreateTableStmt, error) {
	p.pos++ // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name}
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct, err := p.typeName()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, ColumnDef{Name: cname, Type: ct})
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) typeName() (types.Type, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return types.Type{}, fmt.Errorf("sql: expected type name near %q", t.text)
	}
	p.pos++
	switch t.text {
	case "INT", "INTEGER":
		return types.TInt32, nil
	case "BIGINT":
		return types.TInt64, nil
	case "DOUBLE":
		return types.TFloat64, nil
	case "BOOLEAN":
		return types.TBool, nil
	case "DATE":
		return types.TDate, nil
	case "DECIMAL":
		prec, scale := 18, 2
		if p.acceptOp("(") {
			n1 := p.cur()
			if n1.kind != tokInt {
				return types.Type{}, fmt.Errorf("sql: expected precision")
			}
			p.pos++
			prec, _ = strconv.Atoi(n1.text)
			if p.acceptOp(",") {
				n2 := p.cur()
				if n2.kind != tokInt {
					return types.Type{}, fmt.Errorf("sql: expected scale")
				}
				p.pos++
				scale, _ = strconv.Atoi(n2.text)
			} else {
				scale = 0
			}
			if err := p.expectOp(")"); err != nil {
				return types.Type{}, err
			}
		}
		return types.TDecimal(prec, scale), nil
	case "CHAR", "VARCHAR":
		n := 1
		if p.acceptOp("(") {
			nt := p.cur()
			if nt.kind != tokInt {
				return types.Type{}, fmt.Errorf("sql: expected length")
			}
			p.pos++
			n, _ = strconv.Atoi(nt.text)
			if err := p.expectOp(")"); err != nil {
				return types.Type{}, err
			}
		}
		return types.TChar(n), nil
	}
	return types.Type{}, fmt.Errorf("sql: unknown type %s", t.text)
}

func (p *parser) insertStmt() (*InsertStmt, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return st, nil
}

// Expression grammar, lowest precedence first:
//
//	expr     := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | predicate
//	predicate:= additive [cmpOp additive | BETWEEN .. AND .. | IN (..) | LIKE s]
//	additive := multiplicative ((+|-) multiplicative)*
//	multiplicative := unary ((*|/|%) unary)*
//	unary    := - unary | primary
func (p *parser) expr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.predicate()
}

func (p *parser) predicate() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.acceptOp(op) {
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	not := false
	if p.peekKeyword("NOT") {
		// lookahead for NOT BETWEEN / NOT IN / NOT LIKE
		save := p.pos
		p.pos++
		if !(p.peekKeyword("BETWEEN") || p.peekKeyword("IN") || p.peekKeyword("LIKE")) {
			p.pos = save
			return l, nil
		}
		not = true
	}
	switch {
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		t := p.cur()
		if t.kind != tokString {
			return nil, fmt.Errorf("sql: LIKE requires a string literal pattern")
		}
		p.pos++
		return &LikeExpr{E: l, Pattern: t.text, Not: not}, nil
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		switch lit := e.(type) {
		case *IntLit:
			return &IntLit{V: -lit.V}, nil
		case *FloatLit:
			return &FloatLit{V: -lit.V}, nil
		case *NumericLit:
			return &NumericLit{Text: "-" + lit.Text}, nil
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: invalid integer %q", t.text)
		}
		return &IntLit{V: v}, nil
	case tokFloat:
		p.pos++
		if !strings.ContainsAny(t.text, "eE") {
			return &NumericLit{Text: t.text}, nil
		}
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: invalid number %q", t.text)
		}
		return &FloatLit{V: v}, nil
	case tokString:
		p.pos++
		return &StringLit{V: t.text}, nil
	case tokIdent:
		p.pos++
		if p.acceptOp(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Name: col}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "?" {
			p.pos++
			ph := &Placeholder{Idx: p.nParams}
			p.nParams++
			return ph, nil
		}
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return &BoolLit{V: true}, nil
		case "FALSE":
			p.pos++
			return &BoolLit{V: false}, nil
		case "DATE":
			p.pos++
			st := p.cur()
			if st.kind != tokString {
				return nil, fmt.Errorf("sql: DATE requires a string literal")
			}
			p.pos++
			days, err := types.ParseDate(st.text)
			if err != nil {
				return nil, err
			}
			return &DateLit{Days: days}, nil
		case "INTERVAL":
			p.pos++
			st := p.cur()
			var n int
			switch st.kind {
			case tokString:
				v, err := strconv.Atoi(strings.TrimSpace(st.text))
				if err != nil {
					return nil, fmt.Errorf("sql: invalid interval %q", st.text)
				}
				n = v
			case tokInt:
				n, _ = strconv.Atoi(st.text)
			default:
				return nil, fmt.Errorf("sql: INTERVAL requires a count")
			}
			p.pos++
			unit := p.cur()
			if unit.kind != tokKeyword || (unit.text != "DAY" && unit.text != "MONTH" && unit.text != "YEAR") {
				return nil, fmt.Errorf("sql: INTERVAL requires DAY, MONTH, or YEAR")
			}
			p.pos++
			return &IntervalLit{N: n, Unit: strings.ToLower(unit.text)}, nil
		case "CASE":
			return p.caseExpr()
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			fc := &FuncCall{Name: t.text}
			if t.text == "COUNT" && p.acceptOp("*") {
				fc.Star = true
			} else {
				if p.acceptKeyword("DISTINCT") {
					return nil, fmt.Errorf("sql: DISTINCT aggregates are not supported")
				}
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				fc.Args = []Expr{arg}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		case "EXTRACT":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("YEAR"); err != nil {
				return nil, fmt.Errorf("sql: only EXTRACT(YEAR FROM ...) is supported")
			}
			if err := p.expectKeyword("FROM"); err != nil {
				return nil, err
			}
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: "EXTRACT_YEAR", Args: []Expr{arg}}, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q", t.text)
}

func (p *parser) caseExpr() (Expr, error) {
	p.pos++ // CASE
	ce := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
