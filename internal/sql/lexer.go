// Package sql implements the SQL lexer, AST, and recursive-descent parser
// for the dialect the system supports: single-block SELECT queries with
// joins, WHERE, GROUP BY, ORDER BY, LIMIT, CASE, BETWEEN, IN, LIKE, date and
// interval literals — everything the TPC-H queries of the paper's evaluation
// and the micro-benchmark queries of §8.2 require — plus CREATE TABLE and
// INSERT for loading data through the shell.
package sql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokOp // operators and punctuation
)

type token struct {
	kind tokKind
	text string // keywords upper-cased, identifiers lower-cased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "BETWEEN": true, "IN": true, "LIKE": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "ASC": true,
	"DESC": true, "JOIN": true, "INNER": true, "ON": true, "DATE": true,
	"INTERVAL": true, "DAY": true, "MONTH": true, "YEAR": true,
	"EXTRACT": true, "CREATE": true, "TABLE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "TRUE": true, "FALSE": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "DOUBLE": true,
	"DECIMAL": true, "CHAR": true, "VARCHAR": true, "BOOLEAN": true,
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
	"DISTINCT": true, "HAVING": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isAlpha(c):
			for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
			}
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			isFloat := false
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.pos < len(l.src) && l.src[l.pos] == '.' {
				isFloat = true
				l.pos++
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
				isFloat = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			l.toks = append(l.toks, token{kind: kind, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string literal at %d", start)
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		case strings.ContainsRune("(),.*+-/%;?", rune(c)):
			l.pos++
			l.toks = append(l.toks, token{kind: tokOp, text: string(c), pos: start})
		case c == '<':
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokOp, text: l.src[start:l.pos], pos: start})
		case c == '>':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokOp, text: l.src[start:l.pos], pos: start})
		case c == '=':
			l.pos++
			l.toks = append(l.toks, token{kind: tokOp, text: "=", pos: start})
		case c == '!':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
				l.toks = append(l.toks, token{kind: tokOp, text: "<>", pos: start})
			} else {
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, start)
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
