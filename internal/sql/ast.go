package sql

import "wasmdb/internal/types"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a single-block SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    []FromItem
	Where   Expr
	GroupBy []Expr
	// Having is the post-aggregation filter, nil when absent.
	Having  Expr
	OrderBy []OrderItem
	// Limit is -1 when absent.
	Limit int64
	// LimitParam is the placeholder ordinal of LIMIT ?, or -1 when the
	// limit is a literal or absent.
	LimitParam int
	// NumParams counts the ? placeholders in the statement.
	NumParams int
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection; Star represents "*".
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// FromItem is one table reference. For explicit JOIN ... ON syntax, On holds
// the join condition; comma-separated references leave On nil (conditions
// live in WHERE).
type FromItem struct {
	Table string
	Alias string
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateTableStmt creates a table.
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is a column declaration in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type types.Type
}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// Expr is any expression node.
type Expr interface{ expr() }

// ColumnRef is a possibly qualified column reference.
type ColumnRef struct {
	Table string // "" if unqualified
	Name  string
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

// NumericLit is an exact numeric literal with a decimal point, e.g. 0.05.
// It carries the source text so semantic analysis can choose a decimal
// scale without floating-point rounding.
type NumericLit struct {
	Text string
}

// StringLit is a string literal.
type StringLit struct{ V string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ V bool }

// DateLit is DATE 'YYYY-MM-DD', already converted to a day number.
type DateLit struct{ Days int32 }

// IntervalLit is INTERVAL 'n' unit.
type IntervalLit struct {
	N    int
	Unit string // "day", "month", "year"
}

// BinaryExpr is a binary operation: arithmetic (+ - * / %), comparison
// (= <> < <= > >=), or logical (AND OR).
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

// BetweenExpr is E [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

// InExpr is E [NOT] IN (list).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// LikeExpr is E [NOT] LIKE 'pattern'.
type LikeExpr struct {
	E       Expr
	Pattern string
	Not     bool
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN ... THEN ... arm.
type WhenClause struct {
	Cond, Then Expr
}

// Placeholder is a positional query parameter (?). Idx is the zero-based
// ordinal by order of appearance in the statement.
type Placeholder struct{ Idx int }

// FuncCall is an aggregate or builtin call. Star marks COUNT(*).
type FuncCall struct {
	Name string // upper-case: COUNT, SUM, MIN, MAX, AVG, EXTRACT_YEAR
	Args []Expr
	Star bool
}

func (*ColumnRef) expr()   {}
func (*IntLit) expr()      {}
func (*FloatLit) expr()    {}
func (*NumericLit) expr()  {}
func (*StringLit) expr()   {}
func (*BoolLit) expr()     {}
func (*DateLit) expr()     {}
func (*IntervalLit) expr() {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*BetweenExpr) expr() {}
func (*InExpr) expr()      {}
func (*LikeExpr) expr()    {}
func (*CaseExpr) expr()    {}
func (*Placeholder) expr() {}
func (*FuncCall) expr()    {}
