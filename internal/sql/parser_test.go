package sql

import (
	"testing"

	"wasmdb/internal/types"
)

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	s, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return s
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustSelect(t, "SELECT x, y AS z FROM r WHERE x < 42")
	if len(s.Items) != 2 || s.Items[1].Alias != "z" {
		t.Errorf("items: %+v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Table != "r" {
		t.Errorf("from: %+v", s.From)
	}
	be, ok := s.Where.(*BinaryExpr)
	if !ok || be.Op != "<" {
		t.Fatalf("where: %+v", s.Where)
	}
	if lit, ok := be.R.(*IntLit); !ok || lit.V != 42 {
		t.Errorf("rhs: %+v", be.R)
	}
}

func TestParseStar(t *testing.T) {
	s := mustSelect(t, "SELECT * FROM r LIMIT 10")
	if !s.Items[0].Star {
		t.Error("star not parsed")
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustSelect(t, "SELECT a + b * c FROM r")
	add := s.Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op %q", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("inner op %q", mul.Op)
	}

	s = mustSelect(t, "SELECT 1 FROM r WHERE a OR b AND NOT c")
	or := s.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top %q", or.Op)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("rhs %q", and.Op)
	}
	if _, ok := and.R.(*UnaryExpr); !ok {
		t.Error("NOT missing")
	}
}

func TestParseJoinOn(t *testing.T) {
	s := mustSelect(t, "SELECT r.x FROM r JOIN s ON r.id = s.rid JOIN u ON s.id = u.sid")
	if len(s.From) != 3 {
		t.Fatalf("from: %+v", s.From)
	}
	if s.From[1].On == nil || s.From[2].On == nil {
		t.Error("missing ON conditions")
	}
}

func TestParseCommaJoin(t *testing.T) {
	s := mustSelect(t, "SELECT 1 FROM r, s WHERE r.id = s.rid")
	if len(s.From) != 2 || s.From[1].On != nil {
		t.Errorf("from: %+v", s.From)
	}
}

func TestParseGroupOrder(t *testing.T) {
	s := mustSelect(t, `SELECT x, COUNT(*), SUM(y) FROM r GROUP BY x ORDER BY x DESC, y ASC`)
	if len(s.GroupBy) != 1 {
		t.Errorf("group by: %+v", s.GroupBy)
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order by: %+v", s.OrderBy)
	}
	fc := s.Items[1].Expr.(*FuncCall)
	if fc.Name != "COUNT" || !fc.Star {
		t.Errorf("count(*): %+v", fc)
	}
}

func TestParseHaving(t *testing.T) {
	s := mustSelect(t, `SELECT x, COUNT(*) FROM r GROUP BY x HAVING COUNT(*) > 2 AND x < 10 ORDER BY x`)
	be, ok := s.Having.(*BinaryExpr)
	if !ok || be.Op != "AND" {
		t.Fatalf("having: %+v", s.Having)
	}
	if fc := be.L.(*BinaryExpr).L.(*FuncCall); fc.Name != "COUNT" {
		t.Errorf("having lhs: %+v", be.L)
	}
	// HAVING without GROUP BY is legal: the query becomes a single-group
	// aggregation and sema enforces the post-agg domain.
	s = mustSelect(t, `SELECT COUNT(*) FROM r HAVING COUNT(*) > 0`)
	if s.Having == nil || len(s.GroupBy) != 0 {
		t.Errorf("keyless having: %+v", s)
	}
}

func TestParseTPCHQ1Shape(t *testing.T) {
	q := `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`
	s := mustSelect(t, q)
	if len(s.Items) != 7 || len(s.GroupBy) != 2 || len(s.OrderBy) != 2 {
		t.Errorf("shape: %d items, %d group, %d order", len(s.Items), len(s.GroupBy), len(s.OrderBy))
	}
	be := s.Where.(*BinaryExpr)
	sub := be.R.(*BinaryExpr)
	if _, ok := sub.L.(*DateLit); !ok {
		t.Errorf("date literal: %+v", sub.L)
	}
	if iv, ok := sub.R.(*IntervalLit); !ok || iv.N != 90 || iv.Unit != "day" {
		t.Errorf("interval: %+v", sub.R)
	}
}

func TestParseCaseBetweenInLike(t *testing.T) {
	q := `
SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice ELSE 0 END)
FROM lineitem, part
WHERE l_shipdate BETWEEN DATE '1995-09-01' AND DATE '1995-09-30'
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_quantity NOT BETWEEN 5 AND 10
  AND p_type NOT LIKE '%BRASS'
  AND l_partkey NOT IN (1, 2, 3)`
	s := mustSelect(t, q)
	fc := s.Items[0].Expr.(*FuncCall)
	ce := fc.Args[0].(*CaseExpr)
	if len(ce.Whens) != 1 || ce.Else == nil {
		t.Errorf("case: %+v", ce)
	}
	if _, ok := ce.Whens[0].Cond.(*LikeExpr); !ok {
		t.Error("LIKE not parsed in CASE")
	}
	// Walk the WHERE conjunction and count predicate kinds.
	var betweens, ins, likes int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *BetweenExpr:
			betweens++
		case *InExpr:
			ins++
		case *LikeExpr:
			likes++
		}
	}
	walk(s.Where)
	if betweens != 2 || ins != 2 || likes != 1 {
		t.Errorf("predicates: %d between, %d in, %d like", betweens, ins, likes)
	}
}

func TestParseNumericLiteral(t *testing.T) {
	s := mustSelect(t, "SELECT 1 FROM r WHERE d BETWEEN 0.05 AND 0.07")
	b := s.Where.(*BetweenExpr)
	if lo, ok := b.Lo.(*NumericLit); !ok || lo.Text != "0.05" {
		t.Errorf("lo: %#v", b.Lo)
	}
	s = mustSelect(t, "SELECT 1 FROM r WHERE x < 1.5e3")
	be := s.Where.(*BinaryExpr)
	if f, ok := be.R.(*FloatLit); !ok || f.V != 1500 {
		t.Errorf("exponent literal: %#v", be.R)
	}
}

func TestParseCreateInsert(t *testing.T) {
	st, err := Parse(`CREATE TABLE r (id INT, name CHAR(10), price DECIMAL(12,2), d DATE, f DOUBLE, big BIGINT, ok BOOLEAN)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Name != "r" || len(ct.Columns) != 7 {
		t.Fatalf("create: %+v", ct)
	}
	if ct.Columns[1].Type != types.TChar(10) {
		t.Errorf("char type: %v", ct.Columns[1].Type)
	}
	if ct.Columns[2].Type != types.TDecimal(12, 2) {
		t.Errorf("decimal type: %v", ct.Columns[2].Type)
	}

	st, err = Parse(`INSERT INTO r VALUES (1, 'a', 1.50, DATE '2020-01-01', 0.5, 9, TRUE), (2, 'b', 2.50, DATE '2020-01-02', 1.5, 10, FALSE)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if ins.Table != "r" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 7 {
		t.Fatalf("insert: %+v", ins)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT 1",      // missing FROM
		"SELECT 1 FROM", // missing table
		"SELECT 1 FROM r WHERE",
		"SELECT 1 FROM r GROUP x",
		"SELECT 1 FROM r LIMIT x",
		"SELECT COUNT(DISTINCT x) FROM r",
		"SELECT 1 FROM r HAVING", // missing predicate
		"SELECT 1 FROM r; SELECT 2 FROM s",
		"SELECT CASE END FROM r",
		"SELECT 1 FROM r WHERE x LIKE y",
		"SELECT 1 FROM r WHERE x IN ()",
		"DELETE FROM r",
		"SELECT 'unterminated FROM r",
		"SELECT 1 FROM r WHERE x ! 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid SQL: %q", src)
		}
	}
}

func TestParseQuotedStringEscape(t *testing.T) {
	s := mustSelect(t, "SELECT 1 FROM r WHERE name = 'O''Brien'")
	be := s.Where.(*BinaryExpr)
	if lit := be.R.(*StringLit); lit.V != "O'Brien" {
		t.Errorf("escape: %q", lit.V)
	}
}

func TestParseComments(t *testing.T) {
	s := mustSelect(t, "SELECT 1 -- the answer\nFROM r -- table\n")
	if len(s.Items) != 1 {
		t.Error("comment handling broken")
	}
}
