// Package volcano implements the Volcano iterator baseline: tuple-at-a-time
// pull execution with boxed values and interpreted expressions — the
// execution model class the paper uses PostgreSQL to represent (§8.1). Its
// hash tables and sort are deliberately "pre-compiled library" style:
// type-agnostic keys, comparator callbacks, one virtual call per tuple per
// operator — exactly the costs §4.3 and §5.1 attribute to this design.
package volcano

import (
	"fmt"
	"sort"
	"strings"

	"wasmdb/internal/eval"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/storage"
	"wasmdb/internal/types"
)

// Tuple is one row flowing between iterators.
type Tuple []types.Value

// Schema maps expression leaves to tuple slots. Scan-domain slots are
// (table, col); post-aggregation slots are keys and aggregates.
type Schema struct {
	cols map[[2]int]int
	keys []int
	aggs []int
}

func newSchema() *Schema { return &Schema{cols: map[[2]int]int{}} }

type tupleCtx struct {
	s *Schema
	t Tuple
}

func (c tupleCtx) Col(table, col int) types.Value {
	i, ok := c.s.cols[[2]int{table, col}]
	if !ok {
		panic(fmt.Sprintf("volcano: unbound column #%d.%d", table, col))
	}
	return c.t[i]
}

func (c tupleCtx) Key(i int) types.Value { return c.t[c.s.keys[i]] }
func (c tupleCtx) Agg(i int) types.Value { return c.t[c.s.aggs[i]] }

// Iterator is the Volcano open-next-close interface.
type Iterator interface {
	Open() error
	Next() (Tuple, bool, error)
	Close()
	Schema() *Schema
}

// Run executes a physical plan and returns all output rows.
func Run(q *sema.Query, root plan.Node) ([]string, [][]types.Value, error) {
	proj, ok := root.(*plan.Project)
	if !ok {
		return nil, nil, fmt.Errorf("volcano: root must be a projection")
	}
	it, err := build(q, proj.Input)
	if err != nil {
		return nil, nil, err
	}
	if err := it.Open(); err != nil {
		return nil, nil, err
	}
	defer it.Close()

	var names []string
	for _, oc := range proj.Cols {
		names = append(names, oc.Name)
	}
	var rows [][]types.Value
	sch := it.Schema()
	for {
		tup, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		ctx := tupleCtx{s: sch, t: tup}
		out := make([]types.Value, len(proj.Cols))
		for i, oc := range proj.Cols {
			out[i] = eval.Eval(oc.Expr, ctx)
		}
		rows = append(rows, out)
	}
	return names, rows, nil
}

func build(q *sema.Query, n plan.Node) (Iterator, error) {
	switch x := n.(type) {
	case *plan.Scan:
		return newScan(q, x), nil
	case *plan.HashJoin:
		b, err := build(q, x.Build)
		if err != nil {
			return nil, err
		}
		p, err := build(q, x.Probe)
		if err != nil {
			return nil, err
		}
		return newHashJoin(x, b, p), nil
	case *plan.Group:
		in, err := build(q, x.Input)
		if err != nil {
			return nil, err
		}
		return newGroup(x, in), nil
	case *plan.Sort:
		in, err := build(q, x.Input)
		if err != nil {
			return nil, err
		}
		return newSort(x, in), nil
	case *plan.Limit:
		in, err := build(q, x.Input)
		if err != nil {
			return nil, err
		}
		return &limitIter{in: in, n: x.N}, nil
	case *plan.Project:
		return build(q, x.Input)
	}
	return nil, fmt.Errorf("volcano: unsupported node %T", n)
}

// ---------------------------------------------------------------------------
// Scan with filter.

type scanIter struct {
	tbl    *storage.Table
	ti     int
	filter []sema.Expr
	sch    *Schema
	cols   []*storage.Column
	slots  [][2]int
	row    int
}

func newScan(q *sema.Query, s *plan.Scan) *scanIter {
	it := &scanIter{tbl: s.Table, ti: s.TableIdx, filter: s.Filter, sch: newSchema()}
	// Materialize only referenced columns into tuples.
	used := map[[2]int]bool{}
	collectQueryColumns(q, used)
	for ci, col := range s.Table.Columns {
		key := [2]int{s.TableIdx, ci}
		if !used[key] {
			continue
		}
		it.sch.cols[key] = len(it.cols)
		it.cols = append(it.cols, col)
		it.slots = append(it.slots, key)
	}
	return it
}

func collectQueryColumns(q *sema.Query, used map[[2]int]bool) {
	for _, e := range q.Conjuncts {
		sema.ColumnsUsed(e, used)
	}
	for _, e := range q.GroupBy {
		sema.ColumnsUsed(e, used)
	}
	for _, a := range q.Aggs {
		if a.Arg != nil {
			sema.ColumnsUsed(a.Arg, used)
		}
	}
	for _, oc := range q.Select {
		sema.ColumnsUsed(oc.Expr, used)
	}
	for _, ok := range q.OrderBy {
		sema.ColumnsUsed(ok.Expr, used)
	}
}

func (s *scanIter) Open() error     { s.row = 0; return nil }
func (s *scanIter) Close()          {}
func (s *scanIter) Schema() *Schema { return s.sch }

func (s *scanIter) Next() (Tuple, bool, error) {
	n := s.tbl.Rows()
	for s.row < n {
		t := make(Tuple, len(s.cols))
		for i, col := range s.cols {
			t[i] = col.ValueAt(s.row)
		}
		s.row++
		ok := true
		ctx := tupleCtx{s: s.sch, t: t}
		for _, f := range s.filter {
			if !eval.Eval(f, ctx).IsTrue() {
				ok = false
				break
			}
		}
		if ok {
			return t, true, nil
		}
	}
	return nil, false, nil
}

// ---------------------------------------------------------------------------
// Hash join: generic string-encoded keys (type-agnostic library design).

type hashJoinIter struct {
	j            *plan.HashJoin
	build, probe Iterator
	sch          *Schema
	table        map[string][]Tuple
	pending      []Tuple
	cur          Tuple
	probeSch     *Schema
	buildWidth   int
}

func newHashJoin(j *plan.HashJoin, b, p Iterator) *hashJoinIter {
	it := &hashJoinIter{j: j, build: b, probe: p, sch: newSchema()}
	// Output schema: probe slots followed by build slots.
	ps, bs := p.Schema(), b.Schema()
	it.probeSch = ps
	for key, slot := range ps.cols {
		it.sch.cols[key] = slot
	}
	n := len(ps.cols)
	it.buildWidth = len(bs.cols)
	for key, slot := range bs.cols {
		it.sch.cols[key] = n + slot
	}
	return it
}

// encodeKey builds a type-agnostic key encoding — the design the paper's
// §4.3 criticizes: every insert and probe pays for boxing and encoding.
// canonFloat folds -0.0 into +0.0 so join encodings agree wherever float
// equality does; group keys keep the raw value (±0 forming two groups is
// the established cross-backend behavior).
func encodeKey(vals []types.Value, canonFloat bool) string {
	var sb strings.Builder
	for _, v := range vals {
		switch v.Type.Kind {
		case types.Char:
			sb.WriteString(strings.TrimRight(v.S, " "))
			sb.WriteByte(0)
		case types.Float64:
			f := v.F
			if canonFloat && f == 0 {
				f = 0
			}
			fmt.Fprintf(&sb, "%x;", f)
		case types.Decimal:
			// Normalize scale for cross-side equality.
			fmt.Fprintf(&sb, "%d@%d;", v.I, v.Type.Scale)
		default:
			fmt.Fprintf(&sb, "%d;", v.I)
		}
	}
	return sb.String()
}

func (h *hashJoinIter) Open() error {
	if err := h.build.Open(); err != nil {
		return err
	}
	defer h.build.Close()
	h.table = make(map[string][]Tuple)
	bs := h.build.Schema()
	for {
		t, ok, err := h.build.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx := tupleCtx{s: bs, t: t}
		keys := make([]types.Value, len(h.j.BuildKeys))
		nan := false
		for i, k := range h.j.BuildKeys {
			keys[i] = eval.Eval(k, ctx)
			if v := keys[i]; v.Type.Kind == types.Float64 && v.F != v.F {
				nan = true
			}
		}
		if nan {
			// A NaN key can never compare equal to a probe key — the entry
			// would be unreachable (and worse, the encoding would make NaN
			// self-join). Skip the row.
			continue
		}
		ek := encodeKey(keys, true)
		h.table[ek] = append(h.table[ek], t)
	}
	return h.probe.Open()
}

func (h *hashJoinIter) Close()          { h.probe.Close() }
func (h *hashJoinIter) Schema() *Schema { return h.sch }

func (h *hashJoinIter) Next() (Tuple, bool, error) {
	for {
		if len(h.pending) > 0 {
			b := h.pending[0]
			h.pending = h.pending[1:]
			out := make(Tuple, len(h.cur)+h.buildWidth)
			copy(out, h.cur)
			copy(out[len(h.cur):], b)
			// Residual predicates over the joined tuple.
			ctx := tupleCtx{s: h.sch, t: out}
			ok := true
			for _, r := range h.j.Residual {
				if !eval.Eval(r, ctx).IsTrue() {
					ok = false
					break
				}
			}
			if ok {
				return out, true, nil
			}
			continue
		}
		t, ok, err := h.probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		ctx := tupleCtx{s: h.probeSch, t: t}
		keys := make([]types.Value, len(h.j.ProbeKeys))
		for i, k := range h.j.ProbeKeys {
			keys[i] = eval.Eval(k, ctx)
		}
		h.cur = t
		h.pending = h.table[encodeKey(keys, true)]
	}
}

// ---------------------------------------------------------------------------
// Grouping & aggregation.

type groupState struct {
	keys []types.Value
	aggs []aggAcc
}

type aggAcc struct {
	count int64
	sumI  int64
	sumF  float64
	min   types.Value
	max   types.Value
	seen  bool
}

type groupIter struct {
	g   *plan.Group
	in  Iterator
	sch *Schema

	groups []*groupState
	pos    int
}

func newGroup(g *plan.Group, in Iterator) *groupIter {
	it := &groupIter{g: g, in: in, sch: newSchema()}
	for i := range g.Keys {
		it.sch.keys = append(it.sch.keys, i)
	}
	for i := range g.Aggs {
		it.sch.aggs = append(it.sch.aggs, len(g.Keys)+i)
	}
	return it
}

func (g *groupIter) Open() error {
	if err := g.in.Open(); err != nil {
		return err
	}
	defer g.in.Close()
	sch := g.in.Schema()
	index := map[string]*groupState{}
	for {
		t, ok, err := g.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ctx := tupleCtx{s: sch, t: t}
		keys := make([]types.Value, len(g.g.Keys))
		for i, k := range g.g.Keys {
			keys[i] = eval.Eval(k, ctx)
		}
		ek := encodeKey(keys, false)
		st := index[ek]
		if st == nil {
			st = &groupState{keys: keys, aggs: make([]aggAcc, len(g.g.Aggs))}
			index[ek] = st
			g.groups = append(g.groups, st)
		}
		for i, a := range g.g.Aggs {
			acc := &st.aggs[i]
			switch a.Func {
			case sema.AggCountStar, sema.AggCount:
				acc.count++
			case sema.AggSum:
				v := eval.Eval(a.Arg, ctx)
				if a.T.Kind == types.Float64 {
					acc.sumF += v.F
				} else {
					acc.sumI += v.I
				}
			case sema.AggMin, sema.AggMax:
				v := eval.Eval(a.Arg, ctx)
				if !acc.seen {
					acc.min, acc.max, acc.seen = v, v, true
					break
				}
				if types.Compare(v, acc.min) < 0 {
					acc.min = v
				}
				if types.Compare(v, acc.max) > 0 {
					acc.max = v
				}
			}
		}
	}
	// A global aggregation over zero rows yields one all-zero group.
	if len(g.g.Keys) == 0 && len(g.groups) == 0 {
		g.groups = append(g.groups, &groupState{aggs: make([]aggAcc, len(g.g.Aggs))})
	}
	g.pos = 0
	return nil
}

func (g *groupIter) Close()          {}
func (g *groupIter) Schema() *Schema { return g.sch }

func (g *groupIter) Next() (Tuple, bool, error) {
	for {
		t, ok := g.nextGroup()
		if !ok {
			return nil, false, nil
		}
		// HAVING: the post-aggregation filter sees the group's output tuple
		// (KeyRef/AggRef bind through the group schema). The fabricated
		// zero group of a keyless aggregation is filtered like any other —
		// matching the compiled engine, which evaluates HAVING in the
		// run-once output pipeline.
		qualifies := true
		ctx := tupleCtx{s: g.sch, t: t}
		for _, h := range g.g.Having {
			if !eval.Eval(h, ctx).IsTrue() {
				qualifies = false
				break
			}
		}
		if qualifies {
			return t, true, nil
		}
	}
}

func (g *groupIter) nextGroup() (Tuple, bool) {
	if g.pos >= len(g.groups) {
		return nil, false
	}
	st := g.groups[g.pos]
	g.pos++
	t := make(Tuple, len(g.g.Keys)+len(g.g.Aggs))
	copy(t, st.keys)
	for i, a := range g.g.Aggs {
		acc := st.aggs[i]
		switch a.Func {
		case sema.AggCountStar, sema.AggCount:
			t[len(g.g.Keys)+i] = types.NewInt64(acc.count)
		case sema.AggSum:
			switch a.T.Kind {
			case types.Float64:
				t[len(g.g.Keys)+i] = types.NewFloat64(acc.sumF)
			case types.Decimal:
				t[len(g.g.Keys)+i] = types.NewDecimal(acc.sumI, a.T.Prec, a.T.Scale)
			default:
				t[len(g.g.Keys)+i] = types.NewInt64(acc.sumI)
			}
		case sema.AggMin:
			t[len(g.g.Keys)+i] = acc.min
		case sema.AggMax:
			t[len(g.g.Keys)+i] = acc.max
		}
	}
	return t, true
}

// ---------------------------------------------------------------------------
// Sort: comparator-callback sort over boxed tuples (qsort-style, §5).

type sortIter struct {
	s   *plan.Sort
	in  Iterator
	sch *Schema

	rows []Tuple
	pos  int
}

func newSort(s *plan.Sort, in Iterator) *sortIter {
	return &sortIter{s: s, in: in, sch: in.Schema()}
}

func (s *sortIter) Open() error {
	if err := s.in.Open(); err != nil {
		return err
	}
	defer s.in.Close()
	for {
		t, ok, err := s.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, t)
	}
	keys := s.s.Keys
	sch := s.sch
	// The comparator callback: one closure invocation (and key
	// re-evaluation) per comparison — the Θ(n log n) callback cost of
	// library sorting the paper highlights.
	sort.SliceStable(s.rows, func(i, j int) bool {
		ci := tupleCtx{s: sch, t: s.rows[i]}
		cj := tupleCtx{s: sch, t: s.rows[j]}
		for _, k := range keys {
			vi := eval.Eval(k.Expr, ci)
			vj := eval.Eval(k.Expr, cj)
			c := types.Compare(vi, vj)
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	s.pos = 0
	return nil
}

func (s *sortIter) Close()          {}
func (s *sortIter) Schema() *Schema { return s.sch }

func (s *sortIter) Next() (Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// ---------------------------------------------------------------------------
// Limit.

type limitIter struct {
	in   Iterator
	n    int64
	seen int64
}

func (l *limitIter) Open() error     { l.seen = 0; return l.in.Open() }
func (l *limitIter) Close()          { l.in.Close() }
func (l *limitIter) Schema() *Schema { return l.in.Schema() }

func (l *limitIter) Next() (Tuple, bool, error) {
	if l.seen >= l.n {
		return nil, false, nil
	}
	t, ok, err := l.in.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}
