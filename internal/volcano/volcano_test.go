package volcano

import (
	"testing"

	"wasmdb/internal/catalog"
	"wasmdb/internal/plan"
	"wasmdb/internal/sema"
	"wasmdb/internal/sql"
	"wasmdb/internal/types"
)

func run(t *testing.T, cat *catalog.Catalog, src string) [][]types.Value {
	t.Helper()
	stmt, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sema.Analyze(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, err := Run(q, p)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func smallCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	r, _ := cat.Create("r", []catalog.ColumnDef{
		{Name: "id", Type: types.TInt32},
		{Name: "g", Type: types.TInt32},
		{Name: "v", Type: types.TInt64},
	})
	for i := 0; i < 100; i++ {
		r.AppendRow(types.NewInt32(int32(i)), types.NewInt32(int32(i%5)), types.NewInt64(int64(i*i)))
	}
	s, _ := cat.Create("s", []catalog.ColumnDef{
		{Name: "rid", Type: types.TInt32},
		{Name: "w", Type: types.TInt32},
	})
	for i := 0; i < 300; i++ {
		s.AppendRow(types.NewInt32(int32(i%100)), types.NewInt32(int32(i)))
	}
	return cat
}

func TestVolcanoScanFilterProject(t *testing.T) {
	cat := smallCatalog(t)
	rows := run(t, cat, "SELECT id, v FROM r WHERE id < 3")
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for i, row := range rows {
		if row[0].I != int64(i) || row[1].I != int64(i*i) {
			t.Errorf("row %d: %v", i, row)
		}
	}
}

func TestVolcanoGroup(t *testing.T) {
	cat := smallCatalog(t)
	rows := run(t, cat, "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g ORDER BY g")
	if len(rows) != 5 {
		t.Fatalf("groups: %d", len(rows))
	}
	for gi, row := range rows {
		var n, sum int64
		for i := 0; i < 100; i++ {
			if i%5 == gi {
				n++
				sum += int64(i * i)
			}
		}
		if row[1].I != n || row[2].I != sum {
			t.Errorf("group %d: %v want (%d,%d)", gi, row, n, sum)
		}
	}
}

func TestVolcanoJoinResidual(t *testing.T) {
	cat := smallCatalog(t)
	rows := run(t, cat, "SELECT COUNT(*) FROM r, s WHERE r.id = s.rid AND r.v < s.w")
	var want int64
	for i := 0; i < 300; i++ {
		rid := i % 100
		if int64(rid*rid) < int64(i) {
			want++
		}
	}
	if rows[0][0].I != want {
		t.Errorf("count = %d, want %d", rows[0][0].I, want)
	}
}

func TestVolcanoSortLimit(t *testing.T) {
	cat := smallCatalog(t)
	rows := run(t, cat, "SELECT id FROM r ORDER BY v DESC LIMIT 4")
	want := []int64{99, 98, 97, 96}
	for i, row := range rows {
		if row[0].I != want[i] {
			t.Errorf("row %d: %d want %d", i, row[0].I, want[i])
		}
	}
}

func TestVolcanoEmptyGlobalAgg(t *testing.T) {
	cat := smallCatalog(t)
	rows := run(t, cat, "SELECT COUNT(*), SUM(v) FROM r WHERE id < 0")
	if len(rows) != 1 || rows[0][0].I != 0 || rows[0][1].I != 0 {
		t.Fatalf("empty agg: %v", rows)
	}
}
