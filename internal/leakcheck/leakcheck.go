// Package leakcheck asserts that a test (or a whole test binary) leaves no
// goroutines running in wasmdb code — the goleak-style sweep behind the
// parallel executor's and the query service's `-race` verification.
//
// The filter is ownership-based rather than allowlist-based: a goroutine
// counts as a leak only when its stack mentions a wasmdb package, so stdlib
// background machinery (the test runner, net/http transports, timers) never
// produces false positives, and any abandoned worker, watchdog, or server
// goroutine of ours always does. Checks poll briefly before failing, since
// legitimate background work (tier-up compiles, draining workers) may still
// be retiring when a test returns.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// modulePrefix identifies our frames in goroutine stacks.
const modulePrefix = "wasmdb/"

// settle is how long a check polls for stragglers before declaring a leak.
const settle = 5 * time.Second

// leaked returns the stacks of goroutines currently executing (or created
// by) wasmdb code, excluding the calling goroutine and this package.
func leaked() []string {
	buf := make([]byte, 1<<22)
	n := runtime.Stack(buf, true)
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, modulePrefix) {
			continue
		}
		if strings.Contains(g, modulePrefix+"internal/leakcheck") {
			continue // the goroutine running this check
		}
		if strings.Contains(g, "testing.tRunner") || strings.Contains(g, "testing.runFuzzing") {
			continue // a test body itself (e.g. a parallel sibling)
		}
		out = append(out, g)
	}
	return out
}

// wait polls until no wasmdb goroutines remain or the deadline passes, and
// returns the survivors' stacks.
func wait(d time.Duration) []string {
	deadline := time.Now().Add(d)
	for {
		gs := leaked()
		if len(gs) == 0 || time.Now().After(deadline) {
			return gs
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Check fails t if wasmdb goroutines are still running once the settle
// window expires. Call it via defer (or t.Cleanup) at the end of a test
// that spawns workers, watchdogs, or servers.
func Check(t testing.TB) {
	t.Helper()
	if gs := wait(settle); len(gs) > 0 {
		t.Errorf("leakcheck: %d goroutine(s) still running wasmdb code:\n\n%s",
			len(gs), strings.Join(gs, "\n\n"))
	}
}

// Main wraps a package's TestMain: it runs the suite, then sweeps for
// leaked wasmdb goroutines and turns survivors into a test-binary failure.
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if gs := wait(settle); len(gs) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) leaked past the test suite:\n\n%s\n",
				len(gs), strings.Join(gs, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}
