// Package catalog tracks the tables of a database instance along with the
// lightweight statistics the planner uses for join ordering.
package catalog

import (
	"fmt"
	"sort"

	"wasmdb/internal/storage"
	"wasmdb/internal/types"
)

// ColumnDef describes one column of a table schema.
type ColumnDef struct {
	Name string
	Type types.Type
}

// Catalog is the set of tables of one database.
type Catalog struct {
	tables map[string]*storage.Table
	// version counts schema changes (create/add/drop). Compiled-query
	// fingerprints include it, so any DDL invalidates every cached module
	// built against the old schema.
	version uint64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*storage.Table)}
}

// Create adds a new empty table.
func (c *Catalog) Create(name string, cols []ColumnDef) (*storage.Table, error) {
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	names := make([]string, len(cols))
	ts := make([]types.Type, len(cols))
	seen := make(map[string]bool, len(cols))
	for i, cd := range cols {
		if seen[cd.Name] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", cd.Name, name)
		}
		seen[cd.Name] = true
		names[i] = cd.Name
		ts[i] = cd.Type
	}
	t := storage.NewTable(name, names, ts)
	c.tables[name] = t
	c.version++
	return t, nil
}

// Add registers an existing table (used by the data generators).
func (c *Catalog) Add(t *storage.Table) error {
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	c.tables[t.Name] = t
	c.version++
	return nil
}

// Drop removes a table.
func (c *Catalog) Drop(name string) error {
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	c.version++
	return nil
}

// Version reports the schema version: a counter bumped by every Create, Add,
// and Drop.
func (c *Catalog) Version() uint64 { return c.version }

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*storage.Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// Names returns all table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
