package catalog

import (
	"testing"

	"wasmdb/internal/storage"
	"wasmdb/internal/types"
)

func TestCreateLookupDrop(t *testing.T) {
	c := New()
	tbl, err := c.Create("t", []ColumnDef{{Name: "a", Type: types.TInt32}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "t" || len(tbl.Columns) != 1 {
		t.Fatalf("table: %+v", tbl)
	}
	if _, err := c.Create("t", nil); err == nil {
		t.Error("duplicate create accepted")
	}
	got, err := c.Table("t")
	if err != nil || got != tbl {
		t.Error("lookup failed")
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table found")
	}
	if err := c.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("t"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	c := New()
	_, err := c.Create("t", []ColumnDef{
		{Name: "a", Type: types.TInt32},
		{Name: "a", Type: types.TInt64},
	})
	if err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestAddAndNames(t *testing.T) {
	c := New()
	c.Create("b", []ColumnDef{{Name: "x", Type: types.TInt32}})
	ext := storage.NewTable("a", []string{"y"}, []types.Type{types.TInt64})
	if err := c.Add(ext); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(ext); err == nil {
		t.Error("duplicate add accepted")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names: %v", names)
	}
}
