package eval

import (
	"testing"

	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

type fixedCtx struct{}

func (fixedCtx) Col(t, c int) types.Value { return types.NewInt32(int32(t*10 + c)) }
func (fixedCtx) Key(i int) types.Value    { return types.NewInt64(int64(100 + i)) }
func (fixedCtx) Agg(i int) types.Value    { return types.NewInt64(int64(200 + i)) }

func c64(v int64) sema.Expr  { return &sema.Const{V: types.NewInt64(v)} }
func cf(v float64) sema.Expr { return &sema.Const{V: types.NewFloat64(v)} }

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		e    sema.Expr
		want int64
	}{
		{&sema.Binary{Op: sema.OpAdd, L: c64(2), R: c64(3), T: types.TInt64}, 5},
		{&sema.Binary{Op: sema.OpSub, L: c64(2), R: c64(3), T: types.TInt64}, -1},
		{&sema.Binary{Op: sema.OpMul, L: c64(6), R: c64(7), T: types.TInt64}, 42},
		{&sema.Binary{Op: sema.OpMod, L: c64(17), R: c64(5), T: types.TInt64}, 2},
	}
	for _, c := range cases {
		if got := Eval(c.e, fixedCtx{}); got.I != c.want {
			t.Errorf("%s = %d, want %d", c.e, got.I, c.want)
		}
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	lt := &sema.Binary{Op: sema.OpLt, L: c64(1), R: c64(2), T: types.TBool}
	ge := &sema.Binary{Op: sema.OpGe, L: c64(1), R: c64(2), T: types.TBool}
	and := &sema.Binary{Op: sema.OpAnd, L: lt, R: ge, T: types.TBool}
	or := &sema.Binary{Op: sema.OpOr, L: lt, R: ge, T: types.TBool}
	not := &sema.Not{E: ge}
	if !Eval(lt, fixedCtx{}).IsTrue() || Eval(ge, fixedCtx{}).IsTrue() {
		t.Error("comparisons")
	}
	if Eval(and, fixedCtx{}).IsTrue() || !Eval(or, fixedCtx{}).IsTrue() || !Eval(not, fixedCtx{}).IsTrue() {
		t.Error("logic")
	}
}

func TestEvalFloatAndCase(t *testing.T) {
	div := &sema.Binary{Op: sema.OpDiv, L: cf(7), R: cf(2), T: types.TFloat64}
	if got := Eval(div, fixedCtx{}); got.F != 3.5 {
		t.Errorf("div = %v", got.F)
	}
	ce := &sema.Case{
		Whens: []sema.When{{Cond: &sema.Binary{Op: sema.OpLt, L: c64(5), R: c64(3), T: types.TBool}, Then: c64(1)}},
		Else:  c64(2),
		T:     types.TInt64,
	}
	if got := Eval(ce, fixedCtx{}); got.I != 2 {
		t.Errorf("case = %d", got.I)
	}
}

func TestEvalCast(t *testing.T) {
	// decimal(2) → float64
	d := &sema.Const{V: types.NewDecimal(150, 10, 2)}
	got := Eval(&sema.Cast{E: d, To: types.TFloat64}, fixedCtx{})
	if got.F != 1.5 {
		t.Errorf("decimal cast = %v", got.F)
	}
	// int → decimal(3)
	got = Eval(&sema.Cast{E: c64(7), To: types.TDecimal(10, 3)}, fixedCtx{})
	if got.I != 7000 {
		t.Errorf("int→decimal = %d", got.I)
	}
	// decimal(2) → decimal(4)
	got = Eval(&sema.Cast{E: d, To: types.TDecimal(10, 4)}, fixedCtx{})
	if got.I != 15000 {
		t.Errorf("rescale = %d", got.I)
	}
}

func TestEvalRefs(t *testing.T) {
	col := &sema.ColRef{Table: 1, Col: 2, T: types.TInt32}
	if Eval(col, fixedCtx{}).I != 12 {
		t.Error("colref")
	}
	if Eval(&sema.KeyRef{Idx: 1, T: types.TInt64}, fixedCtx{}).I != 101 {
		t.Error("keyref")
	}
	if Eval(&sema.AggRef{Idx: 3, T: types.TInt64}, fixedCtx{}).I != 203 {
		t.Error("aggref")
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_go", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%b%c", true},
		{"axxbyyc", "a%b%c", true},
		{"ac", "a%b%c", false},
		{"aaa", "a%a", true},
		{"mississippi", "m%iss%ppi", true},
		{"mississippi", "m%iss%ppx", false},
	}
	for _, c := range cases {
		if got := globMatch(c.s, c.pat); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v", c.s, c.pat, got)
		}
	}
}

func TestMatchLikeKinds(t *testing.T) {
	mk := func(pat string) *sema.Like {
		k, needle := sema.ClassifyLike(pat)
		return &sema.Like{Pattern: pat, Kind: k, Needle: needle}
	}
	if !MatchLike("PROMO TIN", mk("PROMO%")) {
		t.Error("prefix")
	}
	if !MatchLike("padded   ", mk("%ed")) {
		t.Error("suffix with padding")
	}
	if MatchLike("other", mk("PROMO%")) {
		t.Error("prefix false positive")
	}
}
