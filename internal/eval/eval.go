// Package eval implements interpreted scalar evaluation of bound
// expressions over boxed values. It is the expression engine of the Volcano
// baseline (tuple-at-a-time interpretation with boxed values, the
// PostgreSQL-style stand-in of §8.1) and the correctness oracle for
// differential tests.
package eval

import (
	"fmt"
	"strings"

	"wasmdb/internal/sema"
	"wasmdb/internal/types"
)

// Ctx supplies leaf values during evaluation.
type Ctx interface {
	Col(table, col int) types.Value
	Key(i int) types.Value
	Agg(i int) types.Value
}

// Eval evaluates a bound expression.
func Eval(e sema.Expr, ctx Ctx) types.Value {
	switch x := e.(type) {
	case *sema.Const:
		return x.V
	case *sema.ColRef:
		return ctx.Col(x.Table, x.Col)
	case *sema.KeyRef:
		return ctx.Key(x.Idx)
	case *sema.AggRef:
		return ctx.Agg(x.Idx)
	case *sema.Binary:
		return evalBinary(x, ctx)
	case *sema.Not:
		return types.NewBool(!Eval(x.E, ctx).IsTrue())
	case *sema.Cast:
		return EvalCast(Eval(x.E, ctx), x.To)
	case *sema.Like:
		v := Eval(x.E, ctx)
		m := MatchLike(v.S, x)
		if x.Not {
			m = !m
		}
		return types.NewBool(m)
	case *sema.Case:
		for _, w := range x.Whens {
			if Eval(w.Cond, ctx).IsTrue() {
				return Eval(w.Then, ctx)
			}
		}
		return Eval(x.Else, ctx)
	case *sema.ExtractYear:
		v := Eval(x.E, ctx)
		return types.NewInt32(int32(types.ExtractYear(int32(v.I))))
	}
	panic(fmt.Sprintf("eval: unsupported expression %T", e))
}

func evalBinary(x *sema.Binary, ctx Ctx) types.Value {
	switch x.Op {
	case sema.OpAnd:
		// Whole-expression evaluation (no short-circuit), matching the
		// compiled engines so all engines do the same work.
		l := Eval(x.L, ctx).IsTrue()
		r := Eval(x.R, ctx).IsTrue()
		return types.NewBool(l && r)
	case sema.OpOr:
		l := Eval(x.L, ctx).IsTrue()
		r := Eval(x.R, ctx).IsTrue()
		return types.NewBool(l || r)
	}
	l := Eval(x.L, ctx)
	r := Eval(x.R, ctx)
	if x.Op.IsComparison() {
		return types.NewBool(compare(x.Op, l, r))
	}
	switch x.T.Kind {
	case types.Int32:
		var v int32
		switch x.Op {
		case sema.OpAdd:
			v = int32(l.I) + int32(r.I)
		case sema.OpSub:
			v = int32(l.I) - int32(r.I)
		case sema.OpMul:
			v = int32(l.I) * int32(r.I)
		}
		return types.NewInt32(v)
	case types.Int64:
		var v int64
		switch x.Op {
		case sema.OpAdd:
			v = l.I + r.I
		case sema.OpSub:
			v = l.I - r.I
		case sema.OpMul:
			v = l.I * r.I
		case sema.OpMod:
			v = l.I % r.I
		}
		return types.NewInt64(v)
	case types.Decimal:
		var v int64
		switch x.Op {
		case sema.OpAdd:
			v = l.I + r.I
		case sema.OpSub:
			v = l.I - r.I
		case sema.OpMul:
			v = l.I * r.I
		}
		return types.NewDecimal(v, x.T.Prec, x.T.Scale)
	case types.Float64:
		var v float64
		switch x.Op {
		case sema.OpAdd:
			v = l.F + r.F
		case sema.OpSub:
			v = l.F - r.F
		case sema.OpMul:
			v = l.F * r.F
		case sema.OpDiv:
			v = l.F / r.F
		}
		return types.NewFloat64(v)
	}
	panic("eval: bad arithmetic type")
}

func compare(op sema.OpKind, l, r types.Value) bool {
	var c int
	switch l.Type.Kind {
	case types.Char:
		c = comparePadded(l.S, r.S)
	case types.Float64:
		switch {
		case l.F < r.F:
			c = -1
		case l.F > r.F:
			c = 1
		}
	default:
		switch {
		case l.I < r.I:
			c = -1
		case l.I > r.I:
			c = 1
		}
	}
	switch op {
	case sema.OpEq:
		return c == 0
	case sema.OpNe:
		return c != 0
	case sema.OpLt:
		return c < 0
	case sema.OpLe:
		return c <= 0
	case sema.OpGt:
		return c > 0
	case sema.OpGe:
		return c >= 0
	}
	return false
}

// comparePadded compares with SQL CHAR padded semantics (values arrive with
// trailing padding already stripped, so plain compare after stripping).
func comparePadded(a, b string) int {
	return strings.Compare(strings.TrimRight(a, " "), strings.TrimRight(b, " "))
}

// EvalCast applies a sema.Cast conversion to a boxed value.
func EvalCast(v types.Value, to types.Type) types.Value {
	switch to.Kind {
	case types.Int64:
		return types.NewInt64(v.I)
	case types.Int32:
		return types.NewInt32(int32(v.I))
	case types.Float64:
		switch v.Type.Kind {
		case types.Float64:
			return v
		case types.Decimal:
			return types.NewFloat64(float64(v.I) / float64(types.Pow10(v.Type.Scale)))
		default:
			return types.NewFloat64(float64(v.I))
		}
	case types.Decimal:
		switch v.Type.Kind {
		case types.Decimal:
			d := to.Scale - v.Type.Scale
			raw := v.I
			if d > 0 {
				raw *= types.Pow10(d)
			} else if d < 0 {
				raw /= types.Pow10(-d)
			}
			return types.NewDecimal(raw, to.Prec, to.Scale)
		default:
			return types.NewDecimal(v.I*types.Pow10(to.Scale), to.Prec, to.Scale)
		}
	case types.Char:
		return types.NewChar(v.S, to.Length)
	}
	return v
}

// MatchLike applies a classified LIKE pattern to a logical (stripped)
// string.
func MatchLike(s string, l *sema.Like) bool {
	s = strings.TrimRight(s, " ")
	switch l.Kind {
	case sema.LikeExact:
		return s == l.Needle
	case sema.LikePrefix:
		return strings.HasPrefix(s, l.Needle)
	case sema.LikeSuffix:
		return strings.HasSuffix(s, l.Needle)
	case sema.LikeContains:
		return strings.Contains(s, l.Needle)
	default:
		return globMatch(s, l.Pattern)
	}
}

// globMatch is the classic iterative single-star-backtracking matcher for
// SQL LIKE (% and _).
func globMatch(s, pat string) bool {
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			ss++
			si = ss
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}
