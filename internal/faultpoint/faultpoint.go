// Package faultpoint provides named, test-activated fault injection points.
//
// Production code marks the places where a real system can fail — a tier-2
// compile, a memory grow, a morsel call, a rewiring callback — with
// faultpoint.Hit("name"). In normal operation every point is disarmed and
// Hit costs a single atomic load. Tests arm a point with Enable to force the
// failure and prove the corresponding guardrail end-to-end: graceful tier-up
// degradation, typed memory-limit errors, trap recovery mid-query.
package faultpoint

import (
	"sync"
	"sync/atomic"

	"wasmdb/internal/obs"
)

var (
	// armed counts enabled points so Hit can bail out without locking when
	// nothing is injected (the common case, including all of production).
	armed  atomic.Int32
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	fn   func(hit int) error
	hits int
}

// Enable arms the named fault point. fn is invoked on every subsequent Hit
// with the 1-based hit count and returns the error to inject (nil injects
// nothing for that hit). Enabling an already-armed point replaces its
// function and resets its hit count.
func Enable(name string, fn func(hit int) error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{fn: fn}
}

// Disable disarms the named fault point. Disabling an unarmed point is a
// no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Hit reports whether the named fault point injects a failure right now.
// It returns nil when the point is disarmed; the fast path is one atomic
// load, so Hit is safe to place on hot paths.
//
// The hit function runs outside the package lock, so it may block (tests
// use that to delay background tier-up) without stalling unrelated points.
// Every evaluation of an armed point is audited: a point event on the
// active trace and a per-point counter in the metrics registry, so a
// fault-injection run leaves a record even when nothing was injected.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p := points[name]
	var fn func(int) error
	var n int
	if p != nil {
		p.hits++
		n = p.hits
		fn = p.fn
	}
	mu.Unlock()
	if fn == nil {
		return nil
	}
	err := fn(n)
	obs.Default.Counter(obs.MetricFaultpointHits + "." + name).Add(1)
	if tr := obs.Active(); tr != nil {
		injected := int64(0)
		if err != nil {
			injected = 1
		}
		tr.Event(obs.EvFaultpoint, obs.S("point", name), obs.I("hit", int64(n)), obs.I("injected", injected))
	}
	return err
}

// Hits returns how many times the named point has been evaluated since it
// was (re-)enabled, for test assertions.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}

// Always returns a hit function that injects err on every hit.
func Always(err error) func(int) error {
	return func(int) error { return err }
}

// AtHit returns a hit function that injects err on the n-th hit only.
func AtHit(n int, err error) func(int) error {
	return func(hit int) error {
		if hit == n {
			return err
		}
		return nil
	}
}
