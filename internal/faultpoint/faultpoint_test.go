package faultpoint

import (
	"errors"
	"testing"
)

func TestDisarmedIsFree(t *testing.T) {
	if err := Hit("nope"); err != nil {
		t.Fatalf("disarmed point injected %v", err)
	}
}

func TestEnableDisable(t *testing.T) {
	boom := errors.New("boom")
	Enable("p", Always(boom))
	defer Disable("p")
	if err := Hit("p"); !errors.Is(err, boom) {
		t.Fatalf("armed point returned %v, want boom", err)
	}
	if err := Hit("other"); err != nil {
		t.Fatalf("unrelated point injected %v", err)
	}
	Disable("p")
	if err := Hit("p"); err != nil {
		t.Fatalf("disabled point injected %v", err)
	}
	// Disabling twice is a no-op and must not corrupt the armed count.
	Disable("p")
	if err := Hit("p"); err != nil {
		t.Fatalf("double-disabled point injected %v", err)
	}
}

func TestAtHit(t *testing.T) {
	boom := errors.New("boom")
	Enable("n", AtHit(3, boom))
	defer Disable("n")
	for i := 1; i <= 5; i++ {
		err := Hit("n")
		if i == 3 && !errors.Is(err, boom) {
			t.Fatalf("hit %d: got %v, want boom", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: got %v, want nil", i, err)
		}
	}
	if got := Hits("n"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}
