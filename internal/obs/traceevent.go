package obs

import (
	"encoding/json"
	"io"
	"time"
)

// The Chrome trace_event JSON Object Format, as consumed by
// chrome://tracing and Perfetto: a top-level object with a "traceEvents"
// array of events. Spans become complete events (ph "X"), point events
// become instants (ph "i"), and each trace gets its own tid plus a
// thread_name metadata record carrying its Label, so a session of queries
// renders as parallel labeled lanes.

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		if a.Str != "" {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Val
		}
	}
	return m
}

// micros converts an absolute time to microseconds since epoch.
func micros(t, epoch time.Time) float64 {
	return float64(t.Sub(epoch).Nanoseconds()) / 1e3
}

// WriteTraceEvents serializes one or more traces as Chrome trace_event
// JSON. Timestamps are relative to the earliest trace's start, so a whole
// REPL session exports as one coherent timeline.
func WriteTraceEvents(w io.Writer, traces ...*Trace) error {
	var epoch time.Time
	for _, t := range traces {
		if t == nil {
			continue
		}
		if epoch.IsZero() || t.start.Before(epoch) {
			epoch = t.start
		}
	}

	out := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	tid := 0
	for _, t := range traces {
		if t == nil {
			continue
		}
		tid++
		label := t.Label
		if label == "" {
			label = "query"
		}
		meta := map[string]any{"name": label}
		if t.RequestID != "" {
			meta["request_id"] = t.RequestID
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: meta,
		})
		for _, sp := range t.Spans() {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: sp.Name, Cat: "query", Ph: "X",
				Ts:  micros(sp.Start, epoch),
				Dur: float64(sp.Dur.Nanoseconds()) / 1e3,
				Pid: 1, Tid: tid, Args: argsMap(sp.Args),
			})
		}
		for _, ev := range t.Events() {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: ev.Name, Cat: "event", Ph: "i",
				Ts:  micros(ev.Time, epoch),
				Pid: 1, Tid: tid, S: "t", Args: argsMap(ev.Args),
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteTraceEvents exports this single trace (see the package function).
func (t *Trace) WriteTraceEvents(w io.Writer) error {
	return WriteTraceEvents(w, t)
}
