package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// The flight recorder keeps the last-N interesting queries — every errored
// query, every slow query, and a cheap 1-in-N sample of the rest — together
// with their full traces in a bounded ring, so "what just happened" is
// answerable after the fact without having opted into tracing beforehand.
// Dumps render as Chrome trace_event JSON (one lane per captured query).

// Capture reasons, used as the flightrec_records_total label.
const (
	CaptureError   = "error"
	CaptureSlow    = "slow"
	CaptureSampled = "sampled"
)

// FlightEntry is one captured query: its log record plus the capture reason
// and a monotonically increasing sequence number (older entries have lower
// sequence numbers; the ring evicts the lowest first).
type FlightEntry struct {
	Seq    uint64         `json:"seq"`
	Reason string         `json:"reason"`
	Record QueryLogRecord `json:"record"`
}

// FlightRecorder is a bounded ring of captured queries. Safe for concurrent
// use; Observe is O(1) and never blocks on readers dumping the ring.
type FlightRecorder struct {
	mu          sync.Mutex
	ring        []FlightEntry
	next        int // ring index the next capture overwrites
	n           int // live entries (== len(ring) once full)
	seq         uint64
	count       uint64 // total Observe calls, drives sampling
	sampleEvery int
}

// NewFlightRecorder creates a recorder holding up to capacity entries
// (default 256) and sampling one in sampleEvery non-slow, non-error queries
// (default 64; sampleEvery <= 0 disables sampling, keeping only slow and
// errored queries).
func NewFlightRecorder(capacity, sampleEvery int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{
		ring:        make([]FlightEntry, capacity),
		sampleEvery: sampleEvery,
	}
}

// Observe offers one finished query to the recorder. Errored and slow
// queries are always captured; others are captured one-in-sampleEvery.
// Returns the capture reason, or "" if the query was not captured.
func (f *FlightRecorder) Observe(rec QueryLogRecord) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count++
	var reason string
	switch {
	case rec.Error != "":
		reason = CaptureError
	case rec.Slow:
		reason = CaptureSlow
	case f.sampleEvery > 0 && (f.count-1)%uint64(f.sampleEvery) == 0:
		reason = CaptureSampled
	default:
		return ""
	}
	f.seq++
	f.ring[f.next] = FlightEntry{Seq: f.seq, Reason: reason, Record: rec}
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
	Default.CounterWith(MetricFlightRecords, Label{"reason", reason}).Add(1)
	return reason
}

// Len returns the number of captured entries currently held.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Snapshot returns the held entries oldest-first.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, 0, f.n)
	start := f.next - f.n
	for i := 0; i < f.n; i++ {
		out = append(out, f.ring[(start+i+len(f.ring))%len(f.ring)])
	}
	return out
}

// flightDump is the JSON shape of a flight-recorder dump: the entry list
// (traces elided) plus the combined Chrome trace_event timeline of every
// captured query that carried a trace.
type flightDump struct {
	Entries []FlightEntry   `json:"entries"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

// WriteTraceEvents dumps the captured queries' traces as one Chrome
// trace_event JSON timeline (a lane per query, labeled with its SQL and
// request ID). Entries captured without a trace are skipped.
func (f *FlightRecorder) WriteTraceEvents(w io.Writer) error {
	traces := []*Trace{}
	for _, e := range f.Snapshot() {
		if e.Record.Trace != nil {
			traces = append(traces, e.Record.Trace)
		}
	}
	return WriteTraceEvents(w, traces...)
}

// WriteJSON dumps the ring as JSON: the record list oldest-first plus the
// combined trace_event timeline under "trace".
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	entries := f.Snapshot()
	dump := flightDump{Entries: entries}
	traces := []*Trace{}
	for _, e := range entries {
		if e.Record.Trace != nil {
			traces = append(traces, e.Record.Trace)
		}
	}
	if len(traces) > 0 {
		var buf bytes.Buffer
		if err := WriteTraceEvents(&buf, traces...); err != nil {
			return err
		}
		dump.Trace = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dump)
}
