package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) generated straight from
// the registry — no client library, no HTTP: the server layer wires this
// io.Writer renderer to GET /metrics, and internal/obs stays stdlib-only and
// transport-free (enforced by `make lint-layers`).
//
// Naming: application metrics are exported under the wasmdb_ namespace;
// runtime metrics captured by CaptureRuntimeMetrics keep their conventional
// go_ names. Histograms whose base name ends in _ns are exported as
// Prometheus-idiomatic _seconds histograms (power-of-two nanosecond buckets
// scaled to seconds). Legacy dotted series ("queries_total.wasm-adaptive")
// are exported with a proper label ({backend="wasm-adaptive"}) via the
// legacyLabelKey table; dotted names without a known label key flatten the
// dots into underscores.

// ContentTypePrometheus is the Content-Type of the exposition format.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// legacyLabelKey maps a dotted-suffix metric prefix to the label key its
// suffix carries: "queries_total.wasm-adaptive" → queries_total{backend=...}.
var legacyLabelKey = map[string]string{
	MetricQueries:        "backend",
	MetricCompiles:       "tier",
	MetricFaultpointHits: "point",
	MetricServerRejected: "reason",
}

// helpText documents the exported families; families not listed get a
// generic line (every family always has HELP and TYPE — self-describing
// output is part of the exposition contract).
var helpText = map[string]string{
	MetricQueries:                   "Queries executed, by backend.",
	MetricCompiles:                  "Functions compiled, by engine tier.",
	MetricTierUpLatency:             "Latency from liftoff publish to each function's turbofan tier-up.",
	MetricTurbofanFailures:          "Background optimizing compiles that failed (query degraded to liftoff).",
	MetricFuelConsumed:              "Fuel units consumed against explicit WithFuel budgets.",
	MetricPeakHeapPages:             "High-water linear-memory pages of the most memory-hungry query.",
	MetricMorselLatency:             "Per-morsel dispatch latency.",
	MetricFaultpointHits:            "Armed fault-injection points evaluated, by point.",
	MetricPlanCacheHits:             "Plan-cache lookups that reused a cached module.",
	MetricPlanCacheMisses:           "Plan-cache lookups that compiled.",
	MetricPlanCacheEvictions:        "Plan-cache entries dropped by the LRU budget.",
	"plancache_invalidations_total": "Plan-cache entries dropped by DDL invalidation.",
	MetricSchedLeases:               "Worker-slot leases granted by the shared morsel scheduler.",
	MetricSchedDenied:               "Parallel requests denied by the scheduler (forced-serial fallback).",
	MetricSchedYields:               "Worker slots revoked at morsel boundaries for a newer query's fair share.",
	MetricSchedSlotsAvail:           "Free extra-worker slots in the shared morsel scheduler.",
	MetricSchedSlotsTotal:           "Total extra-worker slots in the shared morsel scheduler.",
	MetricServerAdmitted:            "Queries admitted past the server's admission gate.",
	MetricServerRejected:            "Requests shed by admission control, by reason.",
	MetricServerQueueDepth:          "Requests waiting in the bounded admission queue.",
	MetricServerActive:              "Queries currently executing.",
	MetricServerSessions:            "Open sessions.",
	MetricServerAdmissionWait:       "Time spent waiting in the admission queue.",
	MetricServerQueryLatency:        "End-to-end /v1/query latency including admission wait.",
	MetricQueryLatency:              "Query latency by backend, final dispatch tier, and plan-cache outcome.",
	MetricServerRequestLatency:      "HTTP request latency by route.",
	MetricServerRequests:            "HTTP requests by route and status code.",
	MetricSerialFallbacks:           "Parallelism requests that ran serially, by fallback reason.",
	MetricEngineCompileLatency:      "Engine compile latency by tier.",
	MetricServerDraining:            "1 while the server is draining for shutdown, else 0.",
	MetricQuerylogRecords:           "Structured query-log records emitted.",
	MetricQuerylogDropped:           "Query-log records dropped on sink-queue overflow.",
	MetricFlightRecords:             "Flight-recorder captures, by reason (sampled, slow, error).",
	"go_goroutines":                 "Number of goroutines.",
	"go_heap_alloc_bytes":           "Bytes of allocated heap objects.",
	"go_heap_sys_bytes":             "Bytes of heap memory obtained from the OS.",
	"go_gc_cycles":                  "Completed GC cycles.",
	"go_gc_pause_total_ns":          "Cumulative GC stop-the-world pause time in nanoseconds.",
}

// promSeries is one series of a family: its rendered label block (possibly
// empty) plus either a scalar value or a histogram snapshot.
type promSeries struct {
	labels string // rendered: {k="v",...} or ""
	value  int64
	hist   *HistSnapshot
}

// promFamily groups the series sharing one exported name.
type promFamily struct {
	name   string // exported Prometheus name
	typ    string // counter | gauge | histogram
	help   string
	scale  float64 // value divisor (1e9 for _ns → _seconds histograms)
	series []promSeries
}

// splitSeries decomposes a registry key into base name and rendered labels,
// translating legacy dotted suffixes into labels.
func splitSeries(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	if i := strings.IndexByte(name, '.'); i >= 0 {
		prefix, suffix := name[:i], name[i+1:]
		if key, ok := legacyLabelKey[prefix]; ok {
			return prefix, "{" + key + `="` + escapeLabelValue(suffix) + `"}`
		}
		return strings.ReplaceAll(name, ".", "_"), ""
	}
	return name, ""
}

// promName maps a base name to its exported name and value divisor
// (1e9 for _ns histograms exported as _seconds).
func promName(base string, hist bool) (string, float64) {
	name, div := base, 1.0
	if hist && strings.HasSuffix(base, "_ns") {
		name, div = strings.TrimSuffix(base, "_ns")+"_seconds", 1e9
	}
	if !strings.HasPrefix(name, "go_") {
		name = "wasmdb_" + name
	}
	return name, div
}

// formatValue renders a scaled sample. Division (not multiplication by a
// non-representable 1e-9) keeps the result correctly rounded, so 4095ns
// prints as 4.095e-06, not 4.095000000000001e-06.
func formatValue(v int64, div float64) string {
	if div == 1.0 {
		return strconv.FormatInt(v, 10)
	}
	return strconv.FormatFloat(float64(v)/div, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, sorted by family and series, with HELP and TYPE lines per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot under the registry lock; render outside it.
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	r.mu.Unlock()

	fams := map[string]*promFamily{}
	family := func(base, typ string, hist bool) *promFamily {
		name, scale := promName(base, hist)
		f := fams[name]
		if f == nil {
			help := helpText[base]
			if help == "" {
				help = "wasmdb metric " + base + "."
			}
			f = &promFamily{name: name, typ: typ, help: help, scale: scale}
			fams[name] = f
		}
		return f
	}
	for name, v := range counters {
		base, labels := splitSeries(name)
		typ := "counter"
		if !strings.HasSuffix(base, "_total") {
			typ = "gauge" // a counter without the _total convention scrapes as a gauge
		}
		f := family(base, typ, false)
		f.series = append(f.series, promSeries{labels: labels, value: v})
	}
	for name, v := range gauges {
		base, labels := splitSeries(name)
		f := family(base, "gauge", false)
		f.series = append(f.series, promSeries{labels: labels, value: v})
	}
	for name, h := range hists {
		base, labels := splitSeries(name)
		f := family(base, "histogram", true)
		snap := h
		f.series = append(f.series, promSeries{labels: labels, hist: &snap})
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			if s.hist != nil {
				err = writeHistSeries(w, f, s)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.value, f.scale))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistSeries renders one histogram series: cumulative power-of-two
// buckets up to the highest occupied one, the +Inf bucket, then sum and
// count. Bucket i of the registry histogram holds observations v with
// 2^(i-1) <= v < 2^i, so its inclusive upper bound is 2^i - 1; boundaries
// are scaled like the sum (nanoseconds → seconds for _ns families).
func writeHistSeries(w io.Writer, f *promFamily, s promSeries) error {
	// Splice "le" into the series' existing label block.
	leLabels := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return strings.TrimSuffix(s.labels, "}") + `,le="` + le + `"}`
	}
	// Empty buckets add no information to a cumulative histogram (the
	// running total is unchanged), so only occupied buckets render — a
	// 64-bucket histogram with two samples emits two lines, not 64.
	var cum int64
	for i, c := range s.hist.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		bound := float64(uint64(1)<<uint(i)-1) / f.scale
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, leLabels(strconv.FormatFloat(bound, 'g', -1, 64)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, leLabels("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(s.hist.Sum, f.scale)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, cum)
	return err
}

// CaptureRuntimeMetrics snapshots process runtime health — goroutines, heap,
// GC — into conventional go_* gauges of r. The server calls it on every
// metrics scrape, so the exposition carries fresh values without a sampler
// goroutine.
func CaptureRuntimeMetrics(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go_heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("go_gc_cycles").Set(int64(ms.NumGC))
	r.Gauge("go_gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
}

// registryJSON is the machine-readable form served by the legacy
// /v1/metrics endpoint under Accept: application/json.
type registryJSON struct {
	Counters   map[string]int64       `json:"counters"`
	Gauges     map[string]int64       `json:"gauges"`
	Histograms map[string]histSummary `json:"histograms"`
}

type histSummary struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Mean  int64 `json:"mean"`
	Max   int64 `json:"max"`
}

// WriteJSON renders the registry as one JSON object: counters and gauges by
// name, histograms as {count,sum,mean,max} summaries.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := registryJSON{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]histSummary{},
	}
	r.mu.Lock()
	for name, c := range r.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		out.Histograms[name] = histSummary{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Max: h.Max()}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
