package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTraceIsInert: every method on a nil *Trace must be a safe no-op —
// this is the contract that lets hot paths pay only a pointer test.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Begin("x")
	sp.End()
	tr.AddSpan("x", time.Now(), time.Second)
	tr.Event("x", I("k", 1), S("s", "v"))
	tr.AddMorsel()
	tr.Add("c", 1)
	tr.Set("c", 2)
	if tr.Value("c") != 0 || tr.Dur("x") != 0 || tr.MorselCount() != 0 {
		t.Error("nil trace returned non-zero data")
	}
	if tr.Spans() != nil || tr.Events() != nil || tr.HasEvent("x") {
		t.Error("nil trace returned non-empty snapshots")
	}
	if err := tr.WriteTraceEvents(&bytes.Buffer{}); err != nil {
		t.Errorf("nil trace export: %v", err)
	}
}

func TestTraceRecords(t *testing.T) {
	tr := NewTrace()
	sp := tr.Begin(SpanParse)
	time.Sleep(time.Millisecond)
	sp.End(I("tokens", 42))
	tr.Event(EvTierUp, I("func", 3), I("morsel", 7))
	tr.Add(CtrFuelUsed, 100)
	tr.Add(CtrFuelUsed, 23)
	tr.AddMorsel()
	tr.AddMorsel()

	if d := tr.Dur(SpanParse); d < time.Millisecond {
		t.Errorf("parse span %v, want >= 1ms", d)
	}
	if !tr.HasEvent(EvTierUp) {
		t.Error("tier-up event missing")
	}
	if v := tr.Value(CtrFuelUsed); v != 123 {
		t.Errorf("counter = %d, want 123", v)
	}
	if tr.MorselCount() != 2 {
		t.Errorf("morsels = %d, want 2", tr.MorselCount())
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Args[0].Key != "tokens" {
		t.Errorf("span snapshot wrong: %+v", spans)
	}
}

// TestTraceConcurrent exercises the cross-goroutine contract: the morsel
// loop and the background compiler write into the same trace.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.AddMorsel()
				tr.Event(EvFuel, I("remaining", int64(i)))
				sp := tr.Begin("work")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.MorselCount() != 4000 {
		t.Errorf("morsels = %d, want 4000", tr.MorselCount())
	}
	if len(tr.Events()) != 4000 || len(tr.Spans()) != 4000 {
		t.Errorf("events/spans = %d/%d, want 4000 each", len(tr.Events()), len(tr.Spans()))
	}
}

// TestTraceEventExportIsValidJSON pins the trace_event schema Perfetto
// requires: top-level traceEvents array, every record with name/ph, ts >= 0,
// and ph drawn from the set we emit.
func TestTraceEventExportIsValidJSON(t *testing.T) {
	tr := NewTrace()
	tr.Label = "SELECT 1"
	sp := tr.Begin(SpanExecute)
	sp.End(I("rows", 9))
	tr.Event(EvGrow, I("delta", 2), I("pages", 18))

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, tr, nil, NewTrace()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) < 3 { // metadata + span + instant (+ second trace's metadata)
		t.Fatalf("only %d events exported", len(parsed.TraceEvents))
	}
	phs := map[string]bool{"X": true, "i": true, "M": true}
	var sawSpan, sawInstant bool
	for _, ev := range parsed.TraceEvents {
		if ev.Name == "" || !phs[ev.Ph] {
			t.Errorf("malformed event %+v", ev)
		}
		if ev.Ts < 0 {
			t.Errorf("negative timestamp on %q", ev.Name)
		}
		switch ev.Ph {
		case "X":
			sawSpan = true
		case "i":
			sawInstant = true
		}
	}
	if !sawSpan || !sawInstant {
		t.Errorf("span/instant coverage: %v/%v", sawSpan, sawInstant)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Counter("a").Add(3)
	r.Gauge("g").SetMax(10)
	r.Gauge("g").SetMax(4) // lower: must not regress
	h := r.Histogram("h")
	h.Observe(100)
	h.Observe(300)

	if v := r.Counter("a").Value(); v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
	if v := r.Gauge("g").Value(); v != 10 {
		t.Errorf("gauge = %d, want 10", v)
	}
	if h.Count() != 2 || h.Sum() != 400 || h.Mean() != 200 || h.Max() != 300 {
		t.Errorf("histogram count=%d sum=%d mean=%d max=%d", h.Count(), h.Sum(), h.Mean(), h.Max())
	}
	dump := r.Dump()
	for _, want := range []string{"a: 5", "g: 10", "h: count=2 sum=400 mean=200 max=300"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestActiveTraceSwap(t *testing.T) {
	tr := NewTrace()
	prev := SwapActive(tr)
	if Active() != tr {
		t.Error("active trace not installed")
	}
	SwapActive(prev)
	if Active() == tr {
		t.Error("active trace not restored")
	}
}
