package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// sliceSink collects emitted records in memory.
type sliceSink struct {
	mu   sync.Mutex
	recs []QueryLogRecord
}

func (s *sliceSink) Emit(rec QueryLogRecord) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

func (s *sliceSink) snapshot() []QueryLogRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueryLogRecord, len(s.recs))
	copy(out, s.recs)
	return out
}

// sampleTrace builds a trace shaped like a real adaptive query: phase spans,
// a tier-up, a plan-cache hit, and the executor counters.
func sampleTrace() *Trace {
	tr := NewTrace()
	tr.Label = "SELECT 1"
	tr.RequestID = "req-42"
	tr.AddSpan(SpanParse, tr.StartTime(), 2*time.Millisecond)
	tr.AddSpan(SpanSema, tr.StartTime(), 1*time.Millisecond)
	tr.AddSpan(SpanPlan, tr.StartTime(), 3*time.Millisecond)
	tr.AddSpan(SpanCodegen, tr.StartTime(), 4*time.Millisecond)
	tr.AddSpan(SpanLiftoff, tr.StartTime(), 5*time.Millisecond)
	tr.AddSpan(SpanExecute, tr.StartTime(), 7*time.Millisecond)
	tr.Event(EvTierUp, I("func", 2), I("morsel", 17))
	tr.Event(EvPlanCache, S("result", "hit"), S("fingerprint", "abcdef012345"), S("tier", "turbofan"))
	tr.Event(EvSerialFallback, S("reason", "limit"))
	tr.Set(CtrMorselsLiftoff, 10)
	tr.Set(CtrMorselsTurbofan, 30)
	tr.Set(CtrWorkers, 4)
	tr.Set(CtrFuelUsed, 999)
	tr.Set(CtrPeakMemBytes, 1<<20)
	tr.Set(CtrResultRows, 55)
	return tr
}

// TestRecordFromTrace: every derived field of the query-log record comes out
// of the trace correctly.
func TestRecordFromTrace(t *testing.T) {
	rec := RecordFromTrace(sampleTrace())
	if rec.RequestID != "req-42" {
		t.Errorf("RequestID = %q", rec.RequestID)
	}
	if rec.ParseNs != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("ParseNs = %d", rec.ParseNs)
	}
	if rec.PlanNs != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("PlanNs = %d", rec.PlanNs)
	}
	if rec.CompileNs != (9 * time.Millisecond).Nanoseconds() {
		t.Errorf("CompileNs = %d", rec.CompileNs)
	}
	if rec.ExecuteNs != (7 * time.Millisecond).Nanoseconds() {
		t.Errorf("ExecuteNs = %d", rec.ExecuteNs)
	}
	if rec.Tier != "mixed" {
		t.Errorf("Tier = %q, want mixed", rec.Tier)
	}
	if len(rec.TierUps) != 1 || rec.TierUps[0] != (TierUp{Func: 2, Morsel: 17}) {
		t.Errorf("TierUps = %+v", rec.TierUps)
	}
	if rec.PlanCache != "hit" || rec.Fingerprint != "abcdef012345" {
		t.Errorf("PlanCache = %q fingerprint = %q", rec.PlanCache, rec.Fingerprint)
	}
	if rec.SerialFallback != "limit" {
		t.Errorf("SerialFallback = %q", rec.SerialFallback)
	}
	if rec.Workers != 4 || rec.FuelUsed != 999 || rec.PeakMemBytes != 1<<20 || rec.Rows != 55 {
		t.Errorf("counters: %+v", rec)
	}
	if rec.Trace == nil {
		t.Error("Trace not carried")
	}
}

// TestQueryLogEmitsJSONLines: records flow through the async log to a
// WriterSink as one JSON object per line, with the trace elided.
func TestQueryLogEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewQueryLog(NewWriterSink(lockedWriter), QueryLogConfig{})
	rec := RecordFromTrace(sampleTrace())
	rec.SQL = "SELECT 1"
	rec.QueryHash = HashQuery(rec.SQL)
	rec.Backend = "wasm-adaptive"
	rec.TotalNs = 12345
	l.Observe(rec)
	l.Close()

	mu.Lock()
	line := strings.TrimSpace(buf.String())
	mu.Unlock()
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("record is not one JSON line: %v\n%s", err, line)
	}
	for _, key := range []string{"sql", "query_hash", "plan_fingerprint", "backend", "tier",
		"plan_cache", "request_id", "parse_ns", "compile_ns", "execute_ns", "total_ns", "rows"} {
		if _, ok := got[key]; !ok {
			t.Errorf("record missing %q: %s", key, line)
		}
	}
	if _, ok := got["Trace"]; ok {
		t.Error("trace must not serialize into the log")
	}
	if got["query_hash"] != HashQuery("SELECT 1") {
		t.Errorf("query_hash = %v", got["query_hash"])
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestQueryLogNeverBlocks: with the flusher wedged, Observe must drop (and
// count) rather than stall the query path.
func TestQueryLogNeverBlocks(t *testing.T) {
	release := make(chan struct{})
	blocked := &blockingSink{release: release}
	dropped := Default.Counter(MetricQuerylogDropped).Value()
	l := NewQueryLog(blocked, QueryLogConfig{Buffer: 2})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 20; i++ {
			l.Observe(QueryLogRecord{SQL: "q"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Observe blocked on a wedged sink")
	}
	close(release)
	l.Close()
	if d := Default.Counter(MetricQuerylogDropped).Value() - dropped; d == 0 {
		t.Error("no drops counted despite a wedged sink")
	}
}

type blockingSink struct {
	release chan struct{}
	once    sync.Once
}

func (s *blockingSink) Emit(QueryLogRecord) {
	s.once.Do(func() { <-s.release })
}

// TestSlowPromotionRateLimited: slow records are always logged, but only the
// rate limiter's budget of them get the full span timeline attached.
func TestSlowPromotionRateLimited(t *testing.T) {
	sink := &sliceSink{}
	l := NewQueryLog(sink, QueryLogConfig{SlowEvery: time.Hour, SlowBurst: 3})
	for i := 0; i < 10; i++ {
		rec := RecordFromTrace(sampleTrace())
		rec.SQL = fmt.Sprintf("q%d", i)
		rec.Slow = true
		l.Observe(rec)
	}
	l.Close()
	recs := sink.snapshot()
	if len(recs) != 10 {
		t.Fatalf("logged %d records, want all 10", len(recs))
	}
	promoted := 0
	for _, r := range recs {
		if r.Promoted {
			promoted++
			if len(r.Spans) == 0 {
				t.Error("promoted record carries no span timeline")
			}
		} else if len(r.Spans) != 0 {
			t.Error("unpromoted record carries a span timeline")
		}
	}
	if promoted != 3 {
		t.Errorf("promoted %d records, want burst of 3", promoted)
	}
}

// TestQueryLogCloseIdempotentAndConcurrent: Close drains, is idempotent, and
// racing Observes during Close neither panic nor deadlock.
func TestQueryLogCloseIdempotentAndConcurrent(t *testing.T) {
	sink := &sliceSink{}
	l := NewQueryLog(sink, QueryLogConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Observe(QueryLogRecord{SQL: "q"})
			}
		}()
	}
	l.Close()
	l.Close()
	wg.Wait()
	l.Observe(QueryLogRecord{SQL: "late"}) // after Close: dropped, no panic
}
