package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// parseProm parses Prometheus text exposition into sample lines keyed by the
// full series syntax, validating the format invariants as it goes: every
// sample is preceded by HELP and TYPE for its family, label blocks are
// well-formed, values parse, histogram buckets are cumulative and end in +Inf.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	described := map[string]string{} // family → type
	var lastBucketFamily string
	var lastCum float64
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			described[parts[0]] = ""
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typ := parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown TYPE %q", ln+1, typ)
			}
			if _, ok := described[parts[0]]; !ok {
				t.Fatalf("line %d: TYPE before HELP for %s", ln+1, parts[0])
			}
			described[parts[0]] = typ
			continue
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		var val float64
		if valStr == "+Inf" {
			t.Fatalf("line %d: +Inf as sample value", ln+1)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label block: %q", ln+1, series)
			}
		}
		// Resolve the family: histogram samples append _bucket/_sum/_count.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && described[trimmed] == "histogram" {
				family = trimmed
			}
		}
		typ, ok := described[family]
		if !ok {
			t.Fatalf("line %d: sample for undescribed family %q", ln+1, family)
		}
		if strings.HasSuffix(name, "_bucket") && typ == "histogram" {
			if family != lastBucketFamily {
				lastBucketFamily, lastCum = family, 0
			}
			if val < lastCum {
				t.Fatalf("line %d: non-cumulative bucket: %q (%g < %g)", ln+1, line, val, lastCum)
			}
			lastCum = val
			if strings.Contains(series, `le="+Inf"`) {
				lastBucketFamily, lastCum = "", 0
			}
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = val
	}
	return samples
}

// TestPrometheusExposition exercises the renderer end to end on a fresh
// registry: labeled and legacy-dotted counters, gauges, and an _ns histogram,
// checking the exact line set against a golden expectation.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricQueries + ".wasm-adaptive").Add(3)
	r.CounterWith(MetricSerialFallbacks, Label{"reason", "limit"}).Add(2)
	r.Gauge(MetricSchedSlotsAvail).Set(5)
	h := r.HistogramWith(MetricQueryLatency,
		Label{"backend", "wasm-adaptive"}, Label{"tier", "mixed"}, Label{"cache", "hit"})
	h.Observe(1000) // bits.Len64(1000)=10 → bucket 10, le=1023ns
	h.Observe(3000) // bits.Len64(3000)=12 → bucket 12, le=4095ns

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := parseProm(t, buf.String())

	want := map[string]float64{
		`wasmdb_queries_total{backend="wasm-adaptive"}`: 3,
		`wasmdb_serial_fallback_total{reason="limit"}`:  2,
		`wasmdb_sched_slots_avail`:                      5,
		`wasmdb_query_latency_seconds_bucket{backend="wasm-adaptive",cache="hit",tier="mixed",le="1.023e-06"}`: 1,
		`wasmdb_query_latency_seconds_bucket{backend="wasm-adaptive",cache="hit",tier="mixed",le="4.095e-06"}`: 2,
		`wasmdb_query_latency_seconds_bucket{backend="wasm-adaptive",cache="hit",tier="mixed",le="+Inf"}`:      2,
		`wasmdb_query_latency_seconds_sum{backend="wasm-adaptive",cache="hit",tier="mixed"}`:                   4e-06,
		`wasmdb_query_latency_seconds_count{backend="wasm-adaptive",cache="hit",tier="mixed"}`:                 2,
	}
	for series, v := range want {
		gv, ok := got[series]
		if !ok {
			var all []string
			for s := range got {
				all = append(all, s)
			}
			sort.Strings(all)
			t.Fatalf("missing series %q; got:\n%s", series, strings.Join(all, "\n"))
		}
		if gv != v {
			t.Errorf("series %s = %g, want %g", series, gv, v)
		}
	}
	// Empty-bucket suppression: only occupied power-of-two buckets (plus +Inf)
	// render, so the 2-sample histogram emits buckets 10..12, not 64 lines.
	buckets := 0
	for s := range got {
		if strings.HasPrefix(s, "wasmdb_query_latency_seconds_bucket") {
			buckets++
		}
	}
	if buckets != 3 { // le=1.023e-06, le=4.095e-06, +Inf
		t.Errorf("bucket lines = %d, want 3", buckets)
	}
}

// TestPrometheusLabelEscaping: quotes, backslashes, and newlines in label
// values must be escaped per the exposition format.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("esc_total", Label{"k", "a\"b\\c\nd"}).Add(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `wasmdb_esc_total{k="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("escaped series %q not found in:\n%s", want, buf.String())
	}
}

// TestLabelCardinalityBounded: a churning label value must not grow a family
// past maxSeriesPerFamily — overflow folds into one {overflow="true"} series,
// and the exposition stays bounded too.
func TestLabelCardinalityBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 10*maxSeriesPerFamily; i++ {
		r.CounterWith("churn_total", Label{"id", fmt.Sprintf("v%d", i)}).Add(1)
	}
	if n := r.SeriesCount("churn_total"); n > maxSeriesPerFamily+1 {
		t.Fatalf("family grew to %d series, cap is %d", n, maxSeriesPerFamily+1)
	}
	over := r.Counter(overflowName("churn_total")).Value()
	if over != int64(10*maxSeriesPerFamily-maxSeriesPerFamily) {
		t.Errorf("overflow series absorbed %d, want %d", over, 9*maxSeriesPerFamily)
	}
	// Re-touching an admitted series must still find it (not the overflow).
	if v := r.CounterWith("churn_total", Label{"id", "v0"}).Value(); v != 1 {
		t.Errorf("admitted series v0 = %d, want 1", v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(l, "wasmdb_churn_total{") {
			lines++
		}
	}
	if lines > maxSeriesPerFamily+1 {
		t.Errorf("exposition rendered %d churn series, cap is %d", lines, maxSeriesPerFamily+1)
	}
}

// TestSeriesNameCanonical: label order must not mint distinct series.
func TestSeriesNameCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.CounterWith("x_total", Label{"a", "1"}, Label{"b", "2"})
	b := r.CounterWith("x_total", Label{"b", "2"}, Label{"a", "1"})
	if a != b {
		t.Error("label order minted two series")
	}
	if n := r.SeriesCount("x_total"); n != 1 {
		t.Errorf("series count = %d, want 1", n)
	}
}

// TestCaptureRuntimeMetrics: the go_* gauges appear un-prefixed and sane.
func TestCaptureRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	CaptureRuntimeMetrics(r)
	if g := r.Gauge("go_goroutines").Value(); g < 1 {
		t.Errorf("go_goroutines = %d", g)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "wasmdb_go_") {
		t.Error("runtime metrics must not get the wasmdb_ prefix")
	}
	parseProm(t, buf.String())
}

// TestWriteJSONSummaries: the legacy JSON dump carries histogram summaries.
func TestWriteJSONSummaries(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(7)
	r.Histogram("h_ns").Observe(100)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"c_total": 7`, `"h_ns"`, `"count": 1`, `"sum": 100`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON dump missing %q:\n%s", want, s)
		}
	}
}
