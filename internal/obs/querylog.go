package obs

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"time"
)

// The structured query log: one self-contained JSON record per executed
// query, derived from the same trace the public Stats come from, emitted
// through a pluggable sink that never blocks the query path — records are
// handed to a bounded queue and a background flusher; overflow drops (and
// counts querylog_dropped_total) rather than stalling execution.

// TierUp is one background tier-up in a query's timeline: function index and
// the morsel count at the moment its optimized code was published.
type TierUp struct {
	Func   int64 `json:"func"`
	Morsel int64 `json:"morsel"`
}

// SpanNs is one phase span of a promoted (slow) record's detail timeline,
// relative to the query's start.
type SpanNs struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// QueryLogRecord is one query's structured log record. Everything except
// the identity fields (SQL, Backend, RequestID, Session) is derived from
// the query trace by RecordFromTrace, so the log, the public Stats, and
// EXPLAIN ANALYZE can never disagree.
type QueryLogRecord struct {
	Time      time.Time `json:"time"`
	RequestID string    `json:"request_id,omitempty"`
	Session   string    `json:"session,omitempty"`
	SQL       string    `json:"sql"`
	// QueryHash is a stable FNV-64a hash of the SQL text; Fingerprint is the
	// plan-cache fingerprint prefix (same-shaped queries share it even when
	// their literals differ).
	QueryHash   string `json:"query_hash,omitempty"`
	Fingerprint string `json:"plan_fingerprint,omitempty"`
	Backend     string `json:"backend,omitempty"`
	// Tier is the final dispatch mix: "liftoff", "turbofan", "mixed" (the
	// query tiered up mid-execution), or "none" for non-compiling backends.
	Tier string `json:"tier,omitempty"`
	// TierUps is the adaptive timeline: each background publish with the
	// morsel index it landed at.
	TierUps   []TierUp `json:"tier_ups,omitempty"`
	PlanCache string   `json:"plan_cache,omitempty"` // hit | miss | off
	// Workers is the granted morsel worker-pool size; SerialFallback names
	// why a parallel request ran serially (empty otherwise).
	Workers        int    `json:"workers,omitempty"`
	SerialFallback string `json:"serial_fallback,omitempty"`
	// Auto is the autopilot's routing decision for BackendAuto queries
	// ("volcano" | "vectorized" | "liftoff" | "adaptive"; empty for manual
	// backends).
	Auto string `json:"auto,omitempty"`
	FuelUsed       int64  `json:"fuel_used,omitempty"`
	PeakMemBytes   int64  `json:"peak_mem_bytes,omitempty"`
	Rows           int    `json:"rows"`
	// Latency breakdown: parse (parse+sema), plan, compile (codegen through
	// liftoff), execute (rewire+instantiate+execute), and wall-clock total.
	ParseNs   int64  `json:"parse_ns"`
	PlanNs    int64  `json:"plan_ns"`
	CompileNs int64  `json:"compile_ns"`
	ExecuteNs int64  `json:"execute_ns"`
	TotalNs   int64  `json:"total_ns"`
	Error     string `json:"error,omitempty"`
	// Slow marks a record over the caller's slow-query threshold; Promoted
	// marks a slow record that won the rate limiter and carries the full
	// span timeline in Spans.
	Slow     bool     `json:"slow,omitempty"`
	Promoted bool     `json:"promoted,omitempty"`
	Spans    []SpanNs `json:"spans,omitempty"`
	// Trace is the query's full trace, carried for the flight recorder and
	// never serialized into the log.
	Trace *Trace `json:"-"`
}

// HashQuery returns the stable FNV-64a hash of a query text, hex-encoded —
// the query log's aggregation key for "the same statement".
func HashQuery(sql string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, sql)
	return strconv.FormatUint(h.Sum64(), 16)
}

// RecordFromTrace derives a query-log record from a completed query trace:
// the latency breakdown from the phase spans, the tier timeline from tier-up
// events, plan-cache outcome and fingerprint from the plan-cache event, and
// the parallelism/fuel/memory counters. Identity fields (SQL, Backend,
// Session, TotalNs, Error, Rows) are the caller's to fill.
func RecordFromTrace(tr *Trace) QueryLogRecord {
	rec := QueryLogRecord{Time: tr.StartTime()}
	if tr == nil {
		return rec
	}
	rec.RequestID = tr.RequestID
	rec.Trace = tr
	rec.ParseNs = (tr.Dur(SpanParse) + tr.Dur(SpanSema)).Nanoseconds()
	rec.PlanNs = tr.Dur(SpanPlan).Nanoseconds()
	rec.CompileNs = (tr.Dur(SpanCodegen) + tr.Dur(SpanDecode) +
		tr.Dur(SpanValidate) + tr.Dur(SpanLiftoff)).Nanoseconds()
	rec.ExecuteNs = (tr.Dur(SpanRewire) + tr.Dur(SpanInstantiate) +
		tr.Dur(SpanExecute)).Nanoseconds()
	rec.Workers = int(tr.Value(CtrWorkers))
	rec.FuelUsed = tr.Value(CtrFuelUsed)
	rec.PeakMemBytes = tr.Value(CtrPeakMemBytes)
	rec.Rows = int(tr.Value(CtrResultRows))

	lo, tf := tr.Value(CtrMorselsLiftoff), tr.Value(CtrMorselsTurbofan)
	switch {
	case lo > 0 && tf > 0:
		rec.Tier = "mixed"
	case tf > 0:
		rec.Tier = "turbofan"
	case lo > 0:
		rec.Tier = "liftoff"
	default:
		rec.Tier = "none"
	}

	for _, e := range tr.Events() {
		switch e.Name {
		case EvTierUp:
			var tu TierUp
			for _, a := range e.Args {
				switch a.Key {
				case "func":
					tu.Func = a.Val
				case "morsel":
					tu.Morsel = a.Val
				}
			}
			rec.TierUps = append(rec.TierUps, tu)
		case EvPlanCache:
			for _, a := range e.Args {
				switch a.Key {
				case "result":
					rec.PlanCache = a.Str
				case "fingerprint":
					rec.Fingerprint = a.Str
				}
			}
		case EvSerialFallback:
			for _, a := range e.Args {
				if a.Key == "reason" {
					rec.SerialFallback = a.Str
				}
			}
		case EvAutopilot:
			for _, a := range e.Args {
				if a.Key == "choice" {
					rec.Auto = a.Str
				}
			}
		}
	}
	return rec
}

// spanTimeline renders the trace's full span list relative to its start —
// attached to slow records the promotion rate limiter admits.
func spanTimeline(tr *Trace) []SpanNs {
	if tr == nil {
		return nil
	}
	spans := tr.Spans()
	out := make([]SpanNs, 0, len(spans))
	start := tr.StartTime()
	for _, sp := range spans {
		out = append(out, SpanNs{Name: sp.Name, StartNs: sp.Start.Sub(start).Nanoseconds(), DurNs: sp.Dur.Nanoseconds()})
	}
	return out
}

// QueryLogSink consumes finished records. Emit may be called from the query
// log's single flusher goroutine only, so sinks need no internal ordering;
// they should still be cheap — a slow sink backs the queue up into drops.
type QueryLogSink interface {
	Emit(QueryLogRecord)
}

// WriterSink is the default sink: one JSON object per line.
type WriterSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewWriterSink wraps w as a JSON-lines sink.
func NewWriterSink(w io.Writer) *WriterSink {
	return &WriterSink{enc: json.NewEncoder(w)}
}

// Emit writes one record as a JSON line.
func (s *WriterSink) Emit(rec QueryLogRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(rec)
}

// QueryLogConfig tunes the asynchronous query log. Zero values select the
// documented defaults.
type QueryLogConfig struct {
	// Buffer bounds records queued for the flusher (default 256); overflow
	// drops and counts querylog_dropped_total.
	Buffer int
	// SlowEvery is the slow-promotion token refill interval (default 100ms):
	// at most one promoted record per interval on average, bursting to
	// SlowBurst (default 10). Promotion attaches the full span timeline;
	// the record itself is always logged.
	SlowEvery time.Duration
	SlowBurst int
}

func (c *QueryLogConfig) norm() {
	if c.Buffer <= 0 {
		c.Buffer = 256
	}
	if c.SlowEvery <= 0 {
		c.SlowEvery = 100 * time.Millisecond
	}
	if c.SlowBurst <= 0 {
		c.SlowBurst = 10
	}
}

// QueryLog is the asynchronous structured query log: Observe enqueues
// without blocking, a single background flusher feeds the sink, and Close
// drains it. Safe for concurrent use.
type QueryLog struct {
	cfg  QueryLogConfig
	sink QueryLogSink

	mu     sync.Mutex
	closed bool
	ch     chan QueryLogRecord
	done   chan struct{}

	// Slow-promotion token bucket, guarded by slowMu.
	slowMu     sync.Mutex
	slowTokens float64
	slowLast   time.Time

	mRecords *Counter
	mDropped *Counter
}

// NewQueryLog starts a query log over sink. Call Close to flush and stop
// the background flusher (the goroutine-leak sweeps check it).
func NewQueryLog(sink QueryLogSink, cfg QueryLogConfig) *QueryLog {
	cfg.norm()
	l := &QueryLog{
		cfg:        cfg,
		sink:       sink,
		ch:         make(chan QueryLogRecord, cfg.Buffer),
		done:       make(chan struct{}),
		slowTokens: float64(cfg.SlowBurst),
		slowLast:   time.Now(),
		mRecords:   Default.Counter(MetricQuerylogRecords),
		mDropped:   Default.Counter(MetricQuerylogDropped),
	}
	go l.flush()
	return l
}

func (l *QueryLog) flush() {
	for rec := range l.ch {
		l.sink.Emit(rec)
		l.mRecords.Add(1)
	}
	close(l.done)
}

// Observe logs one record. Slow records that win the promotion rate limiter
// additionally carry the full span timeline. Never blocks: a full queue
// drops the record and counts the drop.
func (l *QueryLog) Observe(rec QueryLogRecord) {
	if l == nil {
		return
	}
	if rec.Slow && l.allowSlow() {
		rec.Promoted = true
		rec.Spans = spanTimeline(rec.Trace)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	select {
	case l.ch <- rec:
	default:
		l.mDropped.Add(1)
	}
}

// allowSlow takes one token from the slow-promotion bucket.
func (l *QueryLog) allowSlow() bool {
	l.slowMu.Lock()
	defer l.slowMu.Unlock()
	now := time.Now()
	l.slowTokens += float64(now.Sub(l.slowLast)) / float64(l.cfg.SlowEvery)
	l.slowLast = now
	if max := float64(l.cfg.SlowBurst); l.slowTokens > max {
		l.slowTokens = max
	}
	if l.slowTokens < 1 {
		return false
	}
	l.slowTokens--
	return true
}

// Close stops accepting records, flushes the queue through the sink, and
// waits for the flusher goroutine to exit. Idempotent.
func (l *QueryLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.ch)
	}
	l.mu.Unlock()
	<-l.done
}
