package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Standard metric names. Dotted suffixes carry the label (backend, tier,
// fault-point name): "queries_total.wasm-adaptive".
const (
	MetricQueries          = "queries_total"           // + "." + backend
	MetricCompiles         = "engine_compiles_total"   // + "." + tier (per function)
	MetricTierUpLatency    = "engine_tierup_latency_ns"
	MetricTurbofanFailures = "engine_turbofan_failures_total"
	MetricFuelConsumed     = "core_fuel_consumed_total"
	MetricPeakHeapPages    = "core_peak_heap_pages"
	MetricMorselLatency    = "core_morsel_latency_ns"
	MetricFaultpointHits   = "faultpoint_hits_total" // + "." + point

	// Plan-cache outcomes: lookups that found a live compiled module, lookups
	// that compiled, entries dropped by the LRU budget, and entries dropped by
	// DDL invalidation.
	MetricPlanCacheHits          = "plancache_hits_total"
	MetricPlanCacheMisses        = "plancache_misses_total"
	MetricPlanCacheEvictions     = "plancache_evictions_total"
	MetricPlanCacheInvalidations = "plancache_invalidations_total"

	// Global morsel scheduler: leases granted, parallel requests denied
	// (forced-serial fallback), slots revoked at morsel boundaries for a
	// newer query's fair share, and the pool's free-slot gauge.
	MetricSchedLeases     = "sched_leases_total"
	MetricSchedDenied     = "sched_denied_total"
	MetricSchedYields     = "sched_yields_total"
	MetricSchedSlotsAvail = "sched_slots_avail"

	// Query service: admission outcomes ("server_rejected_total.<reason>"
	// carries queue-full, queue-timeout, session-quota, shutdown,
	// faultpoint), queue and in-flight gauges, session count, and the
	// admission-wait / end-to-end latency histograms.
	MetricServerAdmitted      = "server_admitted_total"
	MetricServerRejected      = "server_rejected_total" // + "." + reason
	MetricServerQueueDepth    = "server_queue_depth"
	MetricServerActive        = "server_active_queries"
	MetricServerSessions      = "server_sessions"
	MetricServerAdmissionWait = "server_admission_wait_ns"
	MetricServerQueryLatency  = "server_query_latency_ns"
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger (high-water mark semantics).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets; bucket i
// counts observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i.
const histBuckets = 64

// Histogram is a lock-free power-of-two latency histogram.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample (negative samples clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
	h.buckets[bits.Len64(uint64(v))%histBuckets].Add(1)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest sample seen.
func (h *Histogram) Max() int64 { return h.max.Value() }

// Mean returns the average sample (0 with no samples).
func (h *Histogram) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Registry is a process-wide set of named metrics. Lookups get-or-create
// under a mutex; the returned handles then update atomically, so hot paths
// resolve their handle once (package init) and never touch the lock again.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry (what DB.Metrics returns).
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Dump renders every metric as one "name: value" line, sorted by name — the
// expvar-style text form served by the REPL's \metrics command.
func (r *Registry) Dump() string {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s: %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s: %d", name, g.Value()))
	}
	for name, h := range r.hists {
		lines = append(lines, fmt.Sprintf("%s: count=%d sum=%d mean=%d max=%d",
			name, h.Count(), h.Sum(), h.Mean(), h.Max()))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
