package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Standard metric names. Dotted suffixes carry the label (backend, tier,
// fault-point name): "queries_total.wasm-adaptive".
const (
	MetricQueries          = "queries_total"         // + "." + backend
	MetricCompiles         = "engine_compiles_total" // + "." + tier (per function)
	MetricTierUpLatency    = "engine_tierup_latency_ns"
	MetricTurbofanFailures = "engine_turbofan_failures_total"
	MetricFuelConsumed     = "core_fuel_consumed_total"
	MetricPeakHeapPages    = "core_peak_heap_pages"
	MetricMorselLatency    = "core_morsel_latency_ns"
	MetricFaultpointHits   = "faultpoint_hits_total" // + "." + point

	// Plan-cache outcomes: lookups that found a live compiled module, lookups
	// that compiled, entries dropped by the LRU budget, and entries dropped by
	// DDL invalidation.
	MetricPlanCacheHits          = "plancache_hits_total"
	MetricPlanCacheMisses        = "plancache_misses_total"
	MetricPlanCacheEvictions     = "plancache_evictions_total"
	MetricPlanCacheInvalidations = "plancache_invalidations_total"

	// Global morsel scheduler: leases granted, parallel requests denied
	// (forced-serial fallback), slots revoked at morsel boundaries for a
	// newer query's fair share, and the pool's free-slot gauge.
	MetricSchedLeases     = "sched_leases_total"
	MetricSchedDenied     = "sched_denied_total"
	MetricSchedYields     = "sched_yields_total"
	MetricSchedSlotsAvail = "sched_slots_avail"

	// Query service: admission outcomes ("server_rejected_total.<reason>"
	// carries queue-full, queue-timeout, session-quota, shutdown,
	// faultpoint), queue and in-flight gauges, session count, and the
	// admission-wait / end-to-end latency histograms.
	MetricServerAdmitted      = "server_admitted_total"
	MetricServerRejected      = "server_rejected_total" // + "." + reason
	MetricServerQueueDepth    = "server_queue_depth"
	MetricServerActive        = "server_active_queries"
	MetricServerSessions      = "server_sessions"
	MetricServerAdmissionWait = "server_admission_wait_ns"
	MetricServerQueryLatency  = "server_query_latency_ns"

	// Production-telemetry SLO metrics, recorded with explicit labels (see
	// Label and the *With registry methods). query_latency_ns carries the
	// end-to-end latency of every query labeled by backend, final dispatch
	// tier, and plan-cache outcome; the server_request_* family carries the
	// HTTP front-end's per-route SLO series; serial_fallback_total and
	// engine_compile_latency_ns break down the adaptive engine's choices.
	MetricQueryLatency         = "query_latency_ns"          // {backend,tier,cache}
	MetricServerRequestLatency = "server_request_latency_ns" // {route}
	MetricServerRequests       = "server_requests_total"     // {route,code}
	MetricSerialFallbacks      = "serial_fallback_total"     // {reason}
	MetricAutopilotDecisions   = "autopilot_decisions_total" // {choice}
	MetricEngineCompileLatency = "engine_compile_latency_ns" // {tier}
	MetricSchedSlotsTotal      = "sched_slots_total"
	MetricServerDraining       = "server_draining"

	// Query-log and flight-recorder self-metrics: records emitted by the
	// structured query log, records dropped on queue overflow (the sink must
	// never block a query), and flight-recorder captures by reason.
	MetricQuerylogRecords = "querylog_records_total"
	MetricQuerylogDropped = "querylog_dropped_total"
	MetricFlightRecords   = "flightrec_records_total" // {reason}
)

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger (high-water mark semantics).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets; bucket i
// counts observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i.
const histBuckets = 64

// Histogram is a lock-free power-of-two latency histogram.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample (negative samples clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
	h.buckets[bits.Len64(uint64(v))%histBuckets].Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram's state, taken
// bucket-by-bucket with atomic loads. Concurrent observers may land between
// loads, so Count may trail the bucket sum by in-flight observations — the
// exposition layer reconciles by trusting the buckets.
type HistSnapshot struct {
	Count, Sum, Max int64
	Buckets         [histBuckets]int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Value()}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest sample seen.
func (h *Histogram) Max() int64 { return h.max.Value() }

// Mean returns the average sample (0 with no samples).
func (h *Histogram) Mean() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Registry is a process-wide set of named metrics. Lookups get-or-create
// under a mutex; the returned handles then update atomically, so hot paths
// resolve their handle once (package init) and never touch the lock again.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// families counts live labeled series per base name, enforcing
	// maxSeriesPerFamily so a buggy (or hostile) label value can never grow
	// the registry without bound.
	families map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		families: map[string]int{},
	}
}

// Default is the process-wide registry (what DB.Metrics returns).
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Label is one key/value dimension on a labeled metric series. Values must
// come from small fixed sets (backend names, tiers, route patterns, reason
// codes): the registry caps live series per family at maxSeriesPerFamily and
// folds the overflow into a single {overflow="true"} series, so unbounded
// values degrade visibly instead of growing the registry without bound.
type Label struct{ Key, Val string }

// maxSeriesPerFamily bounds live labeled series per base metric name.
const maxSeriesPerFamily = 128

// seriesName renders the canonical registry key of a labeled series:
// base{k1="v1",k2="v2"} with keys sorted, matching the Prometheus series
// syntax so Dump output and exposition agree.
func seriesName(base string, labels []Label) string {
	if len(labels) == 0 {
		return base
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Val))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// overflowName is the fold-target series of a family at its cardinality cap.
func overflowName(base string) string {
	return base + `{overflow="true"}`
}

// admitSeries resolves the registry key for a labeled series under the
// family cap. Caller holds r.mu. exists reports whether the key is already
// live in the given kind map.
func admitSeries[M any](r *Registry, kind map[string]*M, base string, labels []Label) string {
	name := seriesName(base, labels)
	if _, ok := kind[name]; ok {
		return name
	}
	if r.families[base] >= maxSeriesPerFamily {
		return overflowName(base)
	}
	r.families[base]++
	return name
}

// CounterWith returns the counter series of base with the given labels,
// creating it on first use (subject to the per-family cardinality cap).
func (r *Registry) CounterWith(base string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := admitSeries(r, r.counters, base, labels)
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// GaugeWith returns the gauge series of base with the given labels.
func (r *Registry) GaugeWith(base string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := admitSeries(r, r.gauges, base, labels)
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// HistogramWith returns the histogram series of base with the given labels.
func (r *Registry) HistogramWith(base string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := admitSeries(r, r.hists, base, labels)
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SeriesCount returns the number of live series of a family (labeled series
// plus the unlabeled base metric, if present) — the cardinality bound tests
// and the exposition self-checks read it.
func (r *Registry) SeriesCount(base string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.families[base]
	if _, ok := r.counters[base]; ok {
		n++
	}
	if _, ok := r.gauges[base]; ok {
		n++
	}
	if _, ok := r.hists[base]; ok {
		n++
	}
	return n
}

// Dump renders every metric as one "name: value" line, sorted by name — the
// expvar-style text form served by the REPL's \metrics command.
func (r *Registry) Dump() string {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s: %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s: %d", name, g.Value()))
	}
	for name, h := range r.hists {
		lines = append(lines, fmt.Sprintf("%s: count=%d sum=%d mean=%d max=%d",
			name, h.Count(), h.Sum(), h.Mean(), h.Max()))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
