// Package obs is the observability layer: a low-overhead query-lifecycle
// tracer (spans + point events), a process-wide metrics registry, and a
// Chrome trace_event exporter. It sits at the very bottom of the dependency
// graph — it imports nothing but the standard library, so every other layer
// (faultpoint, wmem, engine, core, the public API) can record into it
// without import cycles. `make verify` enforces this by construction.
//
// The tracer is nil-safe and allocation-free when disabled: every method on
// a nil *Trace returns immediately, so hot paths pay a single pointer test.
// A non-nil Trace is safe for concurrent use — the background TurboFan
// compiler publishes tier-up events into the same trace the morsel loop is
// writing to.
package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical span names, recorded once per query phase. Trace.Dur sums all
// spans of a name, so repeated phases (e.g. several pipelines) aggregate.
const (
	SpanParse       = "parse"
	SpanSema        = "sema"
	SpanPlan        = "plan"
	SpanCodegen     = "codegen"
	SpanDecode      = "decode"
	SpanValidate    = "validate"
	SpanLiftoff     = "liftoff-compile"
	SpanTurbofan    = "turbofan-compile"
	SpanRewire      = "rewire"
	SpanInstantiate = "instantiate"
	SpanExecute     = "execute"
	// SpanPipeline prefixes one span per driven pipeline:
	// "pipeline:pipeline_0".
	SpanPipeline = "pipeline:"
	// SpanMorsel prefixes per-morsel spans, recorded only when Trace.Detail
	// is set (they are numerous).
	SpanMorsel = "morsel:"
	// SpanMerge covers the host-side merge barrier of parallel execution:
	// draining per-worker partial group states (or sorted runs), folding
	// them, and feeding the result into the primary worker.
	SpanMerge = "merge"
	// SpanAdmission covers the time a request spent waiting in the query
	// service's bounded admission queue before execution began.
	SpanAdmission = "admission"
)

// Point-event names.
const (
	// EvTierUp marks a function's optimized code being published by the
	// background compiler (args: func, morsel — the morsel count at publish).
	EvTierUp = "tier-up"
	// EvTierSwitch marks the first call of a function actually served by
	// optimized code (args: func, morsel).
	EvTierSwitch = "tier-switch"
	// EvFuel is a fuel checkpoint (args: remaining), recorded at pipeline
	// boundaries on metered queries.
	EvFuel = "fuel"
	// EvGrow marks a linear-memory growth (args: delta, pages — the new
	// high-water mark).
	EvGrow = "wmem-grow"
	// EvFaultpoint marks an armed fault-injection point being evaluated
	// (args: point, hit, injected).
	EvFaultpoint = "faultpoint"
	// EvParallel marks the start of intra-query parallel execution
	// (args: workers — the size of the morsel worker pool).
	EvParallel = "parallel-exec"
	// EvSerialFallback marks a query that requested parallelism but ran its
	// pipelines serially (args: reason — e.g. unmergeable pipeline state).
	EvSerialFallback = "serial-fallback"
	// EvAutopilot marks a BackendAuto routing decision (args: choice —
	// "vectorized" | "liftoff" | "adaptive", workers, corrected — 1 when
	// stored feedback overrode the estimate-only decision, reason).
	EvAutopilot = "autopilot"
	// EvPlanCache marks a plan-cache lookup (args: result — "hit" or "miss",
	// fingerprint — the plan fingerprint's short prefix, tier — the tier the
	// cached module currently dispatches to on a hit).
	EvPlanCache = "plan-cache"
	// EvGroupMerge marks the group-by pipeline barrier of parallel execution:
	// every worker's partial groups were drained, folded per key, and fed
	// into the primary worker (args: groups — distinct merged groups,
	// records — partial records drained, workers).
	EvGroupMerge = "group-merge"
	// EvSortMerge marks the order-by barrier: per-worker sorted runs were
	// k-way merged into the primary worker's array (args: tuples, workers).
	EvSortMerge = "sort-merge"
	// EvJoinMerge marks a join build barrier of parallel execution: every
	// secondary worker's build partition was drained, appended into the
	// primary worker's table, and the completed table replicated to all
	// workers (args: records — partition records drained, partitions,
	// workers).
	EvJoinMerge = "join-merge"
)

// Counter names stored on the trace (set by the executor at query end).
const (
	CtrMorselsLiftoff  = "morsels_liftoff"
	CtrMorselsTurbofan = "morsels_turbofan"
	CtrTurbofanFailed  = "turbofan_failed"
	CtrModuleBytes     = "module_bytes"
	CtrFuelUsed        = "fuel_used"
	CtrPeakMemBytes    = "peak_mem_bytes"
	CtrResultRows      = "result_rows"
	// CtrWorkers is the size of the morsel worker pool the query ran with.
	CtrWorkers = "workers"
	// CtrPipelinesParallel / CtrPipelinesSerial count pipelines driven by the
	// worker pool vs. pipelines that fell back to serial execution.
	CtrPipelinesParallel = "pipelines_parallel"
	CtrPipelinesSerial   = "pipelines_serial"
	// CtrGroupsMerged counts the distinct groups the host folded at the
	// parallel group-by barrier (0 when no group merge ran).
	CtrGroupsMerged = "groups_merged"
	// CtrJoinPartitionsMerged counts the secondary-worker build partitions
	// drained at parallel join barriers (0 when no join merge ran).
	CtrJoinPartitionsMerged = "join_partitions_merged"
)

// WorkerCtr names a per-worker trace counter, e.g. "worker.2.morsels_turbofan"
// — the per-worker breakdown of adaptive tier usage under parallel execution.
func WorkerCtr(worker int, name string) string {
	return "worker." + strconv.Itoa(worker) + "." + name
}

// Arg is one key/value annotation on a span or event. Val carries numeric
// arguments; Str, when non-empty, wins over Val.
type Arg struct {
	Key string
	Val int64
	Str string
}

// I makes a numeric Arg.
func I(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// S makes a string Arg.
func S(key, val string) Arg { return Arg{Key: key, Str: val} }

// Span is one completed timed phase.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
	Args  []Arg
}

// Event is one instantaneous occurrence.
type Event struct {
	Name string
	Time time.Time
	Args []Arg
}

// Trace is a query-scoped recording of spans, events, and counters.
// The zero value is not usable; create with NewTrace. All methods are
// nil-safe: calling them on a nil *Trace is a cheap no-op.
type Trace struct {
	// Label identifies the trace (the SQL text); set before use.
	Label string
	// RequestID ties the trace to the serving-layer request that ran the
	// query (the X-Request-Id the server honored or generated). Empty for
	// embedded use. Set before use.
	RequestID string
	// Detail enables per-morsel span recording. Off by default — a large
	// scan produces thousands of morsels.
	Detail bool

	start time.Time

	// Hot counters, written from the morsel loop without taking mu.
	morsels atomic.Int64

	mu       sync.Mutex
	spans    []Span
	events   []Event
	counters map[string]int64
}

// NewTrace creates an empty trace anchored at the current time.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), counters: map[string]int64{}}
}

// StartTime returns the trace's anchor time.
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Timer is an in-flight span started by Begin. The zero Timer (from a nil
// trace) is inert.
type Timer struct {
	t     *Trace
	name  string
	start time.Time
}

// Begin opens a span. Call End on the returned Timer to record it; on a nil
// trace this costs one pointer test and no clock read.
func (t *Trace) Begin(name string) Timer {
	if t == nil {
		return Timer{}
	}
	return Timer{t: t, name: name, start: time.Now()}
}

// End records the span, with optional annotations.
func (tm Timer) End(args ...Arg) {
	if tm.t == nil {
		return
	}
	sp := Span{Name: tm.name, Start: tm.start, Dur: time.Since(tm.start), Args: args}
	tm.t.mu.Lock()
	tm.t.spans = append(tm.t.spans, sp)
	tm.t.mu.Unlock()
}

// AddSpan records an externally timed span.
func (t *Trace) AddSpan(name string, start time.Time, dur time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: dur, Args: args})
	t.mu.Unlock()
}

// Event records a point event at the current time.
func (t *Trace) Event(name string, args ...Arg) {
	if t == nil {
		return
	}
	ev := Event{Name: name, Time: time.Now(), Args: args}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// AddMorsel counts one morsel dispatch (atomic; no lock).
func (t *Trace) AddMorsel() {
	if t == nil {
		return
	}
	t.morsels.Add(1)
}

// MorselCount returns the number of morsels dispatched so far. Safe to call
// from any goroutine — the background compiler stamps tier-up events with it.
func (t *Trace) MorselCount() int64 {
	if t == nil {
		return 0
	}
	return t.morsels.Load()
}

// Add increments the named counter.
func (t *Trace) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Set stores the named counter.
func (t *Trace) Set(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] = v
	t.mu.Unlock()
}

// Value reads the named counter (0 if absent or trace is nil).
func (t *Trace) Value(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Dur sums the durations of all spans with the given name.
func (t *Trace) Dur(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	for _, s := range t.spans {
		if s.Name == name {
			d += s.Dur
		}
	}
	return d
}

// Spans returns a snapshot copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Events returns a snapshot copy of the recorded events.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// HasEvent reports whether an event with the given name was recorded.
func (t *Trace) HasEvent(name string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.events {
		if e.Name == name {
			return true
		}
	}
	return false
}

// active is the process-wide current trace, consulted by instrumentation
// that has no query context of its own (faultpoint). The executor installs
// its trace for the duration of a query.
var active atomic.Pointer[Trace]

// SwapActive installs t as the active trace and returns the previous one,
// so nested scopes can restore it.
func SwapActive(t *Trace) *Trace {
	return active.Swap(t)
}

// Active returns the currently installed trace (nil if none).
func Active() *Trace {
	return active.Load()
}
