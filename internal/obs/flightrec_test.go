package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestFlightRecorderCaptureReasons: errors and slow queries always capture;
// ordinary queries capture one-in-sampleEvery.
func TestFlightRecorderCaptureReasons(t *testing.T) {
	f := NewFlightRecorder(16, 4)
	if r := f.Observe(QueryLogRecord{SQL: "boom", Error: "parse error"}); r != CaptureError {
		t.Errorf("errored query captured as %q", r)
	}
	if r := f.Observe(QueryLogRecord{SQL: "slow", Slow: true}); r != CaptureSlow {
		t.Errorf("slow query captured as %q", r)
	}
	sampled := 0
	for i := 0; i < 40; i++ {
		if r := f.Observe(QueryLogRecord{SQL: "ok"}); r == CaptureSampled {
			sampled++
		} else if r != "" {
			t.Errorf("ordinary query captured as %q", r)
		}
	}
	if sampled != 10 {
		t.Errorf("sampled %d of 40 at 1-in-4, want 10", sampled)
	}
	// Sampling disabled: only slow/error capture.
	f2 := NewFlightRecorder(4, 0)
	for i := 0; i < 10; i++ {
		if r := f2.Observe(QueryLogRecord{SQL: "ok"}); r != "" {
			t.Errorf("captured %q with sampling disabled", r)
		}
	}
}

// TestFlightRecorderEviction: the ring holds the newest capacity entries,
// oldest-first in Snapshot, with monotonically increasing sequence numbers.
func TestFlightRecorderEviction(t *testing.T) {
	f := NewFlightRecorder(4, 1) // capture everything
	for i := 0; i < 10; i++ {
		f.Observe(QueryLogRecord{SQL: fmt.Sprintf("q%d", i)})
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	snap := f.Snapshot()
	for i, e := range snap {
		if want := fmt.Sprintf("q%d", 6+i); e.Record.SQL != want {
			t.Errorf("entry %d = %q, want %q", i, e.Record.SQL, want)
		}
		if i > 0 && snap[i].Seq != snap[i-1].Seq+1 {
			t.Errorf("non-monotonic seq: %d after %d", snap[i].Seq, snap[i-1].Seq)
		}
	}
}

// TestFlightRecorderConcurrent: concurrent writers and a reader dumping the
// ring mid-churn — run under -race, this is the data-race check. Traces
// attached to records may still be written to (background tier-up), so one
// writer keeps appending to a captured trace while the dump runs.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8, 2)
	tr := NewTrace()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // background tier-up into a captured trace
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Event(EvTierUp, I("func", 1), I("morsel", tr.MorselCount()))
				tr.AddMorsel()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Observe(QueryLogRecord{SQL: fmt.Sprintf("g%d-q%d", g, i), Slow: i%3 == 0, Trace: tr})
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := f.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON during churn: %v", err)
		}
		if err := f.WriteTraceEvents(&buf); err != nil {
			t.Fatalf("WriteTraceEvents during churn: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if f.Len() != 8 {
		t.Errorf("Len = %d, want full ring of 8", f.Len())
	}
}

// TestFlightRecorderDumpShape: the JSON dump carries entries plus a combined
// Chrome trace_event timeline for entries that have traces.
func TestFlightRecorderDumpShape(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	tr := sampleTrace()
	f.Observe(QueryLogRecord{SQL: "slow one", Slow: true, Trace: tr, RequestID: "req-42"})
	f.Observe(QueryLogRecord{SQL: "bad one", Error: "boom"})
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Entries []FlightEntry `json:"entries"`
		Trace   struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(dump.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(dump.Entries))
	}
	if dump.Entries[0].Reason != CaptureSlow || dump.Entries[1].Reason != CaptureError {
		t.Errorf("reasons = %q, %q", dump.Entries[0].Reason, dump.Entries[1].Reason)
	}
	if len(dump.Trace.TraceEvents) == 0 {
		t.Fatal("no trace events in dump despite a captured trace")
	}
	// The thread_name metadata lane carries the request ID.
	found := false
	for _, ev := range dump.Trace.TraceEvents {
		if ev["name"] == "thread_name" {
			if args, ok := ev["args"].(map[string]any); ok && args["request_id"] == "req-42" {
				found = true
			}
		}
	}
	if !found {
		t.Error("request_id not threaded into the trace_event metadata")
	}
}
