// Package harness provides the measurement and reporting machinery the
// benchmark driver (cmd/bench) uses to regenerate the paper's tables and
// figures: repeated timed runs with median selection, parameter sweeps, and
// aligned text/CSV output of one series per system.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Reps is the default number of repetitions per measurement (the paper uses
// five and reports the median).
const Reps = 3

// Median runs fn reps times and returns the median duration.
func Median(reps int, fn func() time.Duration) time.Duration {
	if reps <= 0 {
		reps = Reps
	}
	ds := make([]time.Duration, reps)
	for i := range ds {
		ds[i] = fn()
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// Series is one line of a figure: a system measured across the sweep.
type Series struct {
	System string
	Points []time.Duration
}

// Figure accumulates sweep results and renders them.
type Figure struct {
	Title  string
	XLabel string
	XTicks []string
	Series []*Series
}

// NewFigure creates a figure for the given sweep ticks.
func NewFigure(title, xlabel string, ticks ...string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, XTicks: ticks}
}

// Add appends a measurement to the named system's series.
func (f *Figure) Add(system string, d time.Duration) {
	for _, s := range f.Series {
		if s.System == system {
			s.Points = append(s.Points, d)
			return
		}
	}
	f.Series = append(f.Series, &Series{System: system, Points: []time.Duration{d}})
}

// Render writes the figure as an aligned table (milliseconds).
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", f.Title)
	width := len(f.XLabel)
	for _, t := range f.XTicks {
		if len(t) > width {
			width = len(t)
		}
	}
	fmt.Fprintf(w, "%-*s", width+2, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%14s", s.System)
	}
	fmt.Fprintln(w)
	for i, tick := range f.XTicks {
		fmt.Fprintf(w, "%-*s", width+2, tick)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(w, "%12.3fms", float64(s.Points[i].Microseconds())/1000)
			} else {
				fmt.Fprintf(w, "%14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// RenderCSV writes the figure as CSV for plotting.
func (f *Figure) RenderCSV(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.System)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for i, tick := range f.XTicks {
		row := []string{tick}
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.3f", float64(s.Points[i].Microseconds())/1000))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Shape assertions used by EXPERIMENTS.md verification and tests.

// PeakIndex returns the index of the maximum point of a series.
func PeakIndex(s *Series) int {
	best := 0
	for i, p := range s.Points {
		if p > s.Points[best] {
			best = i
		}
	}
	return best
}

// Flatness returns max/min of a series (1.0 = perfectly flat).
func Flatness(s *Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	min, max := s.Points[0], s.Points[0]
	for _, p := range s.Points {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if min == 0 {
		return 0
	}
	return float64(max) / float64(min)
}
