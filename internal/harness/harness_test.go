package harness

import (
	"strings"
	"testing"
	"time"
)

func TestMedian(t *testing.T) {
	vals := []time.Duration{5, 1, 9}
	i := 0
	got := Median(3, func() time.Duration {
		d := vals[i]
		i++
		return d
	})
	if got != 5 {
		t.Errorf("median = %v", got)
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("demo", "x", "a", "b")
	f.Add("sys1", time.Millisecond)
	f.Add("sys2", 2*time.Millisecond)
	f.Add("sys1", 3*time.Millisecond)
	f.Add("sys2", 4*time.Millisecond)
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "sys1", "sys2", "1.000ms", "4.000ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	f.RenderCSV(&csv)
	if !strings.HasPrefix(csv.String(), "x,sys1,sys2") {
		t.Errorf("csv header: %s", csv.String())
	}
}

func TestShapeHelpers(t *testing.T) {
	s := &Series{Points: []time.Duration{10, 30, 20}}
	if PeakIndex(s) != 1 {
		t.Error("peak")
	}
	if Flatness(s) != 3 {
		t.Errorf("flatness = %v", Flatness(s))
	}
	flat := &Series{Points: []time.Duration{10, 10, 10}}
	if Flatness(flat) != 1 {
		t.Error("flat series")
	}
}
