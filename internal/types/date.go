package types

import "fmt"

// DATE values are day numbers relative to the Unix epoch (1970-01-01),
// stored as i32. The civil-date conversions below use Howard Hinnant's
// proleptic Gregorian algorithms, exact over the whole i32 range.

// DateFromYMD returns the day number of the given civil date.
func DateFromYMD(y, m, d int) int32 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	mm := int64(m)
	var doy int64
	if m > 2 {
		doy = (153*(mm-3)+2)/5 + int64(d) - 1
	} else {
		doy = (153*(mm+9)+2)/5 + int64(d) - 1
	}
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int32(era*146097 + doe - 719468)
}

// YMDFromDate returns the civil date of a day number.
func YMDFromDate(days int32) (y, m, d int) {
	z := int64(days) + 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// FormatDate renders a day number as YYYY-MM-DD.
func FormatDate(days int32) string {
	y, m, d := YMDFromDate(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// ParseDate parses YYYY-MM-DD into a day number.
func ParseDate(s string) (int32, error) {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("types: invalid date %q", s)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("types: invalid date %q", s)
	}
	return DateFromYMD(y, m, d), nil
}

// AddDateInterval adds an interval to a day number. Unit is one of "day",
// "month", "year"; months and years clamp the day of month to the target
// month's length, as SQL requires.
func AddDateInterval(days int32, n int, unit string) (int32, error) {
	switch unit {
	case "day":
		return days + int32(n), nil
	case "month":
		y, m, d := YMDFromDate(days)
		tm := y*12 + (m - 1) + n
		ny, nm := tm/12, tm%12+1
		if tm < 0 && tm%12 != 0 {
			ny, nm = (tm-11)/12, ((tm%12)+12)%12+1
		}
		if dim := DaysInMonth(ny, nm); d > dim {
			d = dim
		}
		return DateFromYMD(ny, nm, d), nil
	case "year":
		y, m, d := YMDFromDate(days)
		if dim := DaysInMonth(y+n, m); d > dim {
			d = dim
		}
		return DateFromYMD(y+n, m, d), nil
	}
	return 0, fmt.Errorf("types: unknown interval unit %q", unit)
}

// DaysInMonth returns the number of days in the given month.
func DaysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	case 2:
		if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
			return 29
		}
		return 28
	}
	return 0
}

// ExtractYear returns the year of a day number.
func ExtractYear(days int32) int {
	y, _, _ := YMDFromDate(days)
	return y
}
