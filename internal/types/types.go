// Package types defines the SQL type system and value representation shared
// by the catalog, the planner, all execution engines, and the result API.
//
// The representation is chosen for a main-memory columnar system compiled to
// a 32/64-bit virtual ISA: integers are i32/i64, DOUBLE is f64, DECIMAL(p,s)
// is a scaled i64, DATE is days since the Unix epoch as i32, BOOLEAN is an
// i32 0/1, and CHAR(n) is a fixed-width space-padded byte string. All of
// these map directly onto WebAssembly value types or byte sequences in
// linear memory, which is what makes monomorphic code generation (§5)
// straightforward.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the SQL types.
type Kind byte

// Supported kinds.
const (
	Bool Kind = iota
	Int32
	Int64
	Float64
	Decimal
	Date
	Char
)

func (k Kind) String() string {
	switch k {
	case Bool:
		return "BOOLEAN"
	case Int32:
		return "INT"
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Decimal:
		return "DECIMAL"
	case Date:
		return "DATE"
	case Char:
		return "CHAR"
	}
	return "?"
}

// Type is a complete SQL type.
type Type struct {
	Kind Kind
	// Prec and Scale apply to Decimal.
	Prec, Scale int
	// Length applies to Char.
	Length int
}

// Convenience constructors.
var (
	TBool    = Type{Kind: Bool}
	TInt32   = Type{Kind: Int32}
	TInt64   = Type{Kind: Int64}
	TFloat64 = Type{Kind: Float64}
	TDate    = Type{Kind: Date}
)

// TDecimal returns a DECIMAL(p, s) type.
func TDecimal(p, s int) Type { return Type{Kind: Decimal, Prec: p, Scale: s} }

// TChar returns a CHAR(n) type.
func TChar(n int) Type { return Type{Kind: Char, Length: n} }

func (t Type) String() string {
	switch t.Kind {
	case Decimal:
		return fmt.Sprintf("DECIMAL(%d,%d)", t.Prec, t.Scale)
	case Char:
		return fmt.Sprintf("CHAR(%d)", t.Length)
	default:
		return t.Kind.String()
	}
}

// Size returns the byte width of one value in columnar storage and in wasm
// linear memory.
func (t Type) Size() int {
	switch t.Kind {
	case Bool:
		return 1
	case Int32, Date:
		return 4
	case Int64, Float64, Decimal:
		return 8
	case Char:
		return t.Length
	}
	panic("types: unknown kind")
}

// Numeric reports whether the type participates in arithmetic.
func (t Type) Numeric() bool {
	switch t.Kind {
	case Int32, Int64, Float64, Decimal:
		return true
	}
	return false
}

// Value is a single SQL value. I holds integers, decimal raw values, date
// day numbers, and booleans (0/1); F holds doubles; S holds char strings
// (trailing padding stripped).
type Value struct {
	Type Type
	I    int64
	F    float64
	S    string
}

// Convenience constructors.

// NewInt32 builds an INT value.
func NewInt32(v int32) Value { return Value{Type: TInt32, I: int64(v)} }

// NewInt64 builds a BIGINT value.
func NewInt64(v int64) Value { return Value{Type: TInt64, I: v} }

// NewFloat64 builds a DOUBLE value.
func NewFloat64(v float64) Value { return Value{Type: TFloat64, F: v} }

// NewBool builds a BOOLEAN value.
func NewBool(b bool) Value {
	v := Value{Type: TBool}
	if b {
		v.I = 1
	}
	return v
}

// NewDate builds a DATE value from a day number.
func NewDate(days int32) Value { return Value{Type: TDate, I: int64(days)} }

// NewDecimal builds a DECIMAL value from a raw scaled integer.
func NewDecimal(raw int64, p, s int) Value { return Value{Type: TDecimal(p, s), I: raw} }

// NewChar builds a CHAR value.
func NewChar(s string, n int) Value { return Value{Type: TChar(n), S: s} }

// IsTrue reports whether a BOOLEAN value is true.
func (v Value) IsTrue() bool { return v.I != 0 }

// String formats the value as SQL output text.
func (v Value) String() string {
	switch v.Type.Kind {
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case Int32, Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case Decimal:
		return FormatDecimal(v.I, v.Type.Scale)
	case Date:
		return FormatDate(int32(v.I))
	case Char:
		return v.S
	}
	return "?"
}

// Compare orders two values of the same kind: -1, 0, or +1. Decimal values
// are compared after rescaling to the larger scale.
func Compare(a, b Value) int {
	switch a.Type.Kind {
	case Float64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case Char:
		return strings.Compare(a.S, b.S)
	case Decimal:
		x, y := a.I, b.I
		if a.Type.Scale < b.Type.Scale {
			x *= Pow10(b.Type.Scale - a.Type.Scale)
		} else if b.Type.Scale < a.Type.Scale {
			y *= Pow10(a.Type.Scale - b.Type.Scale)
		}
		return cmpI64(x, y)
	default:
		return cmpI64(a.I, b.I)
	}
}

func cmpI64(x, y int64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// Pow10 returns 10^n for small non-negative n.
func Pow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}

// FormatDecimal renders a raw scaled integer with the given scale.
func FormatDecimal(raw int64, scale int) string {
	if scale == 0 {
		return fmt.Sprintf("%d", raw)
	}
	sign := ""
	if raw < 0 {
		sign = "-"
		raw = -raw
	}
	p := Pow10(scale)
	return fmt.Sprintf("%s%d.%0*d", sign, raw/p, scale, raw%p)
}

// ParseDecimal parses a literal like "-12.345" into a raw value at the given
// scale, truncating extra fractional digits.
func ParseDecimal(s string, scale int) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	intPart, fracPart, _ := strings.Cut(s, ".")
	if intPart == "" && fracPart == "" {
		return 0, fmt.Errorf("types: invalid decimal %q", s)
	}
	var raw int64
	for _, c := range intPart {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("types: invalid decimal %q", s)
		}
		raw = raw*10 + int64(c-'0')
	}
	for i := 0; i < scale; i++ {
		d := int64(0)
		if i < len(fracPart) {
			c := fracPart[i]
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("types: invalid decimal %q", s)
			}
			d = int64(c - '0')
		}
		raw = raw*10 + d
	}
	if neg {
		raw = -raw
	}
	return raw, nil
}
