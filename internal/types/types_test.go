package types

import (
	"testing"
	"testing/quick"
)

func TestDateRoundtrip(t *testing.T) {
	cases := []struct {
		s    string
		days int32
	}{
		{"1970-01-01", 0},
		{"1970-01-02", 1},
		{"1969-12-31", -1},
		{"2000-02-29", 11016},
		{"1998-12-01", 10561},
		{"1994-01-01", 8766},
	}
	for _, c := range cases {
		got, err := ParseDate(c.s)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", c.s, err)
		}
		if got != c.days {
			t.Errorf("ParseDate(%q) = %d, want %d", c.s, got, c.days)
		}
		if s := FormatDate(c.days); s != c.s {
			t.Errorf("FormatDate(%d) = %q, want %q", c.days, s, c.s)
		}
	}
}

func TestDateYMDRoundtripProperty(t *testing.T) {
	f := func(raw int32) bool {
		days := raw % 3_000_000 // stay within sane civil years
		y, m, d := YMDFromDate(days)
		return DateFromYMD(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddDateInterval(t *testing.T) {
	d, _ := ParseDate("1998-12-01")
	got, err := AddDateInterval(d, -90, "day")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(got) != "1998-09-02" {
		t.Errorf("1998-12-01 - 90 days = %s, want 1998-09-02", FormatDate(got))
	}

	d, _ = ParseDate("1995-01-31")
	got, _ = AddDateInterval(d, 1, "month")
	if FormatDate(got) != "1995-02-28" {
		t.Errorf("1995-01-31 + 1 month = %s", FormatDate(got))
	}
	got, _ = AddDateInterval(d, 3, "month")
	if FormatDate(got) != "1995-04-30" {
		t.Errorf("1995-01-31 + 3 months = %s", FormatDate(got))
	}

	d, _ = ParseDate("1996-02-29")
	got, _ = AddDateInterval(d, 1, "year")
	if FormatDate(got) != "1997-02-28" {
		t.Errorf("1996-02-29 + 1 year = %s", FormatDate(got))
	}

	if _, err := AddDateInterval(0, 1, "fortnight"); err == nil {
		t.Error("unknown unit accepted")
	}
}

func TestDecimalParseFormat(t *testing.T) {
	cases := []struct {
		in    string
		scale int
		raw   int64
		out   string
	}{
		{"0", 2, 0, "0.00"},
		{"1.5", 2, 150, "1.50"},
		{"-1.5", 2, -150, "-1.50"},
		{"123.456", 2, 12345, "123.45"},
		{"0.07", 2, 7, "0.07"},
		{"42", 0, 42, "42"},
		{"-0.01", 2, -1, "-0.01"},
	}
	for _, c := range cases {
		raw, err := ParseDecimal(c.in, c.scale)
		if err != nil {
			t.Fatalf("ParseDecimal(%q): %v", c.in, err)
		}
		if raw != c.raw {
			t.Errorf("ParseDecimal(%q, %d) = %d, want %d", c.in, c.scale, raw, c.raw)
		}
		if s := FormatDecimal(raw, c.scale); s != c.out {
			t.Errorf("FormatDecimal(%d, %d) = %q, want %q", raw, c.scale, s, c.out)
		}
	}
	for _, bad := range []string{"", ".", "abc", "1.2.3", "1x"} {
		if _, err := ParseDecimal(bad, 2); err == nil {
			t.Errorf("ParseDecimal(%q) accepted", bad)
		}
	}
}

func TestDecimalRoundtripProperty(t *testing.T) {
	f := func(raw int64) bool {
		raw %= 1_000_000_000_000
		s := FormatDecimal(raw, 2)
		back, err := ParseDecimal(s, 2)
		return err == nil && back == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	if Compare(NewInt64(1), NewInt64(2)) != -1 {
		t.Error("int compare")
	}
	if Compare(NewFloat64(2.5), NewFloat64(2.5)) != 0 {
		t.Error("float compare")
	}
	if Compare(NewChar("abc", 10), NewChar("abd", 10)) != -1 {
		t.Error("char compare")
	}
	// Cross-scale decimal comparison: 1.50 (s=2) == 1.500 (s=3).
	a := NewDecimal(150, 10, 2)
	b := NewDecimal(1500, 10, 3)
	if Compare(a, b) != 0 {
		t.Error("decimal rescale compare")
	}
	if Compare(NewDecimal(151, 10, 2), b) != 1 {
		t.Error("decimal rescale compare gt")
	}
}

func TestTypeSize(t *testing.T) {
	if TInt32.Size() != 4 || TInt64.Size() != 8 || TFloat64.Size() != 8 ||
		TDate.Size() != 4 || TBool.Size() != 1 {
		t.Error("scalar sizes wrong")
	}
	if TChar(25).Size() != 25 {
		t.Error("char size wrong")
	}
	if TDecimal(12, 2).Size() != 8 {
		t.Error("decimal size wrong")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt32(-7), "-7"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewFloat64(0.5), "0.5"},
		{NewDecimal(12345, 10, 2), "123.45"},
		{NewDate(0), "1970-01-01"},
		{NewChar("hi", 10), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
