package workload

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrRejected marks a request the server shed on purpose (admission
// rejection, queue overflow, quota). Load iterations returning it — or
// wrapping it — count as rejections, not failures: under a saturating
// stage, rejections are the system working as designed.
var ErrRejected = errors.New("request rejected by admission control")

// Stage is one step of a k6-style ramp: VUs concurrent virtual users
// issuing requests back-to-back for Duration.
type Stage struct {
	Duration time.Duration
	VUs      int
}

// LoadSpec is a ramping load profile: stages run in order, each holding its
// VU count for its duration.
type LoadSpec struct {
	Stages []Stage
}

// LoadStats aggregates one load run.
type LoadStats struct {
	// Completed, Rejected, and Failed partition the finished iterations:
	// success, deliberate shedding (ErrRejected), and everything else.
	Completed int
	Rejected  int
	Failed    int
	// Samples holds per-iteration latencies of completed requests, sorted
	// ascending after the run.
	Samples []time.Duration
	// Elapsed is the whole run's wall-clock time.
	Elapsed time.Duration
}

// Requests is the total number of finished iterations.
func (s *LoadStats) Requests() int { return s.Completed + s.Rejected + s.Failed }

// Throughput is completed requests per second over the run.
func (s *LoadStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Completed) / s.Elapsed.Seconds()
}

// RejectionRate is the shed fraction of all finished iterations.
func (s *LoadStats) RejectionRate() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return float64(s.Rejected) / float64(s.Requests())
}

// Percentile returns the q-th latency quantile (q in [0,1], nearest-rank)
// of completed requests, 0 when none completed.
func (s *LoadStats) Percentile(q float64) time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	i := int(q*float64(len(s.Samples)) + 0.5)
	if i >= len(s.Samples) {
		i = len(s.Samples) - 1
	}
	if i < 0 {
		i = 0
	}
	return s.Samples[i]
}

// RunLoad drives iter through the spec's stages: each stage holds its VU
// count, every VU loops iter back-to-back until the stage ends. iter
// classifies its outcome by returned error — nil (completed), ErrRejected
// (shed), anything else (failed). Canceling ctx ends the run early;
// in-flight iterations finish before RunLoad returns, so no goroutines
// outlive it.
func RunLoad(ctx context.Context, spec LoadSpec, iter func(ctx context.Context, vu int) error) *LoadStats {
	var (
		mu    sync.Mutex
		stats LoadStats
	)
	start := time.Now()
	for _, stage := range spec.Stages {
		if ctx.Err() != nil {
			break
		}
		stageCtx, cancel := context.WithTimeout(ctx, stage.Duration)
		var wg sync.WaitGroup
		for vu := 0; vu < stage.VUs; vu++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for stageCtx.Err() == nil {
					t0 := time.Now()
					err := iter(stageCtx, vu)
					d := time.Since(t0)
					if err != nil && stageCtx.Err() != nil && !errors.Is(err, ErrRejected) {
						// The stage clock (or the caller) ended this
						// iteration mid-flight; it is neither a success
						// nor a server verdict. Drop it.
						return
					}
					mu.Lock()
					switch {
					case err == nil:
						stats.Completed++
						stats.Samples = append(stats.Samples, d)
					case errors.Is(err, ErrRejected):
						stats.Rejected++
					default:
						stats.Failed++
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		cancel()
	}
	stats.Elapsed = time.Since(start)
	sort.Slice(stats.Samples, func(i, j int) bool { return stats.Samples[i] < stats.Samples[j] })
	return &stats
}
