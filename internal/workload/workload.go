// Package workload generates the synthetic data sets of the paper's §8.2
// micro-benchmarks: tables of integer and floating-point columns whose
// values are uniformly distributed, shuffled, and pairwise independent.
package workload

import (
	"fmt"
	"math/rand"

	"wasmdb/internal/catalog"
	"wasmdb/internal/storage"
	"wasmdb/internal/types"
)

// Spec describes one synthetic table.
type Spec struct {
	Name string
	Rows int
	// IntCols yields int32 columns i0, i1, ... with values uniform over
	// [0, IntDomain) (the full int32 domain when IntDomain == 0).
	IntCols   int
	IntDomain int
	// FloatCols yields float64 columns f0, f1, ... uniform over [0, 1).
	FloatCols int
	// GroupCols yields int32 columns g0, g1, ... with GroupDistinct
	// distinct values each.
	GroupCols     int
	GroupDistinct int
	Seed          int64
}

// Generate builds the table described by the spec.
func Generate(spec Spec) *storage.Table {
	var names []string
	var ts []types.Type
	for i := 0; i < spec.IntCols; i++ {
		names = append(names, fmt.Sprintf("i%d", i))
		ts = append(ts, types.TInt32)
	}
	for i := 0; i < spec.FloatCols; i++ {
		names = append(names, fmt.Sprintf("f%d", i))
		ts = append(ts, types.TFloat64)
	}
	for i := 0; i < spec.GroupCols; i++ {
		names = append(names, fmt.Sprintf("g%d", i))
		ts = append(ts, types.TInt32)
	}
	tbl := storage.NewTable(spec.Name, names, ts)
	rng := rand.New(rand.NewSource(spec.Seed))
	for _, c := range tbl.Columns {
		c.Reserve(spec.Rows)
	}
	for r := 0; r < spec.Rows; r++ {
		ci := 0
		for i := 0; i < spec.IntCols; i++ {
			var v int32
			if spec.IntDomain > 0 {
				v = int32(rng.Intn(spec.IntDomain))
			} else {
				v = int32(rng.Uint32())
			}
			tbl.Columns[ci].AppendInt32(v)
			ci++
		}
		for i := 0; i < spec.FloatCols; i++ {
			tbl.Columns[ci].AppendFloat64(rng.Float64())
			ci++
		}
		for i := 0; i < spec.GroupCols; i++ {
			tbl.Columns[ci].AppendInt32(int32(rng.Intn(spec.GroupDistinct)))
			ci++
		}
	}
	return tbl
}

// Catalog wraps the generated tables into a catalog.
func Catalog(specs ...Spec) (*catalog.Catalog, error) {
	cat := catalog.New()
	for _, s := range specs {
		if err := cat.Add(Generate(s)); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// JoinPair generates the Fig. 8 join workload: table "build" with n rows and
// table "probe" with m rows. For the foreign-key join, probe.fk references
// build.pk uniformly; for the n:m join, both sides carry a non-key column
// with the given number of distinct values so the join selectivity is
// 1/distinct.
func JoinPair(nBuild, nProbe, distinct int, seed int64) (*catalog.Catalog, error) {
	rng := rand.New(rand.NewSource(seed))
	build := storage.NewTable("build",
		[]string{"pk", "nk", "payload"},
		[]types.Type{types.TInt32, types.TInt32, types.TInt32})
	for i := 0; i < nBuild; i++ {
		build.AppendRow(types.NewInt32(int32(i)), types.NewInt32(int32(rng.Intn(distinct))),
			types.NewInt32(int32(rng.Uint32())))
	}
	probe := storage.NewTable("probe",
		[]string{"fk", "nk", "payload"},
		[]types.Type{types.TInt32, types.TInt32, types.TInt32})
	for i := 0; i < nProbe; i++ {
		probe.AppendRow(types.NewInt32(int32(rng.Intn(nBuild))), types.NewInt32(int32(rng.Intn(distinct))),
			types.NewInt32(int32(rng.Uint32())))
	}
	cat := catalog.New()
	if err := cat.Add(build); err != nil {
		return nil, err
	}
	if err := cat.Add(probe); err != nil {
		return nil, err
	}
	return cat, nil
}
