package workload

import "testing"

func TestGenerateShape(t *testing.T) {
	tbl := Generate(Spec{Name: "t", Rows: 1000, IntCols: 2, IntDomain: 50,
		FloatCols: 1, GroupCols: 1, GroupDistinct: 7, Seed: 3})
	if tbl.Rows() != 1000 || len(tbl.Columns) != 4 {
		t.Fatalf("shape: %d rows, %d cols", tbl.Rows(), len(tbl.Columns))
	}
	i0, _ := tbl.Column("i0")
	f0, _ := tbl.Column("f0")
	g0, _ := tbl.Column("g0")
	groups := map[int32]bool{}
	for i := 0; i < 1000; i++ {
		if v := i0.I32At(i); v < 0 || v >= 50 {
			t.Fatalf("i0 out of domain: %d", v)
		}
		if f := f0.F64At(i); f < 0 || f >= 1 {
			t.Fatalf("f0 out of domain: %v", f)
		}
		groups[g0.I32At(i)] = true
	}
	if len(groups) != 7 {
		t.Errorf("groups: %d, want 7", len(groups))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Name: "t", Rows: 500, IntCols: 1, Seed: 9})
	b := Generate(Spec{Name: "t", Rows: 500, IntCols: 1, Seed: 9})
	ca, _ := a.Column("i0")
	cb, _ := b.Column("i0")
	for i := 0; i < 500; i++ {
		if ca.I32At(i) != cb.I32At(i) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestJoinPair(t *testing.T) {
	cat, err := JoinPair(100, 400, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	build, _ := cat.Table("build")
	probe, _ := cat.Table("probe")
	if build.Rows() != 100 || probe.Rows() != 400 {
		t.Fatalf("sizes: %d/%d", build.Rows(), probe.Rows())
	}
	fk, _ := probe.Column("fk")
	for i := 0; i < 400; i++ {
		if v := fk.I32At(i); v < 0 || v >= 100 {
			t.Fatalf("fk out of range: %d", v)
		}
	}
}
