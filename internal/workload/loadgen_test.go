package workload

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunLoadClassifiesOutcomes(t *testing.T) {
	var n atomic.Int64
	stats := RunLoad(context.Background(), LoadSpec{Stages: []Stage{{Duration: 80 * time.Millisecond, VUs: 4}}},
		func(ctx context.Context, vu int) error {
			time.Sleep(time.Millisecond)
			switch n.Add(1) % 3 {
			case 0:
				return fmt.Errorf("shed: %w", ErrRejected)
			case 1:
				return errors.New("boom")
			}
			return nil
		})
	if stats.Completed == 0 || stats.Rejected == 0 || stats.Failed == 0 {
		t.Fatalf("outcomes not partitioned: %+v", stats)
	}
	if got := stats.Requests(); got != stats.Completed+stats.Rejected+stats.Failed {
		t.Errorf("Requests() = %d, want the partition sum", got)
	}
	if len(stats.Samples) != stats.Completed {
		t.Errorf("%d samples for %d completions", len(stats.Samples), stats.Completed)
	}
	if stats.Throughput() <= 0 {
		t.Errorf("Throughput() = %v, want > 0", stats.Throughput())
	}
	if r := stats.RejectionRate(); r <= 0 || r >= 1 {
		t.Errorf("RejectionRate() = %v, want in (0,1)", r)
	}
}

func TestRunLoadStagesRampVUs(t *testing.T) {
	var peak, cur atomic.Int64
	spec := LoadSpec{Stages: []Stage{
		{Duration: 40 * time.Millisecond, VUs: 1},
		{Duration: 40 * time.Millisecond, VUs: 6},
	}}
	stats := RunLoad(context.Background(), spec, func(ctx context.Context, vu int) error {
		if c := cur.Add(1); c > peak.Load() {
			peak.Store(c)
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if peak.Load() != 6 {
		t.Errorf("peak concurrency %d, want 6 (ramp did not reach stage 2)", peak.Load())
	}
	if stats.Completed == 0 {
		t.Error("no iterations completed")
	}
	if cur.Load() != 0 {
		t.Errorf("%d iterations still in flight after RunLoad returned", cur.Load())
	}
}

func TestRunLoadPercentiles(t *testing.T) {
	s := &LoadStats{}
	for i := 1; i <= 100; i++ {
		s.Samples = append(s.Samples, time.Duration(i)*time.Millisecond)
	}
	if got := s.Percentile(0.50); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(0.99); got < 98*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := (&LoadStats{}).Percentile(0.99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
}

func TestRunLoadCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	start := time.Now()
	RunLoad(ctx, LoadSpec{Stages: []Stage{{Duration: 10 * time.Second, VUs: 2}}},
		func(ctx context.Context, vu int) error { time.Sleep(time.Millisecond); return nil })
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("canceled run took %v, want prompt exit", d)
	}
}
