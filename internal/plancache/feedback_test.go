package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestFeedbackRecordAndMerge(t *testing.T) {
	c := New(4, 0)
	if _, ok := c.Feedback("fp1"); ok {
		t.Fatal("feedback present before any record")
	}
	c.RecordFeedback("fp1", Feedback{Rows: 100, ExecNs: 5000, Choice: "vectorized"})
	fb, ok := c.Feedback("fp1")
	if !ok || fb.Runs != 1 || fb.Rows != 100 || fb.Choice != "vectorized" {
		t.Fatalf("first record: %+v ok=%v", fb, ok)
	}
	// A second record replaces the observation whole and accumulates Runs.
	c.RecordFeedback("fp1", Feedback{Rows: 250, ExecNs: 900, Choice: "liftoff", SerialFallback: "limit", FallbackIntrinsic: true})
	fb, _ = c.Feedback("fp1")
	if fb.Runs != 2 || fb.Rows != 250 || fb.Choice != "liftoff" || !fb.FallbackIntrinsic {
		t.Fatalf("merged record: %+v", fb)
	}
	if got := c.Stats().FeedbackEntries; got != 1 {
		t.Fatalf("FeedbackEntries = %d, want 1", got)
	}
}

func TestFeedbackFlushedOnDDL(t *testing.T) {
	c := New(4, 0)
	c.RecordFeedback("fp1", Feedback{Rows: 10})
	c.RecordFeedback("fp2", Feedback{Rows: 20})
	c.Flush()
	if _, ok := c.Feedback("fp1"); ok {
		t.Error("fp1 feedback survived Flush")
	}
	if got := c.Stats().FeedbackEntries; got != 0 {
		t.Errorf("FeedbackEntries after Flush = %d, want 0", got)
	}
	// Post-flush records start a fresh run count.
	c.RecordFeedback("fp1", Feedback{Rows: 30})
	if fb, _ := c.Feedback("fp1"); fb.Runs != 1 {
		t.Errorf("post-flush Runs = %d, want 1", fb.Runs)
	}
}

func TestFeedbackBounded(t *testing.T) {
	c := New(2, 0) // bound = 2 entries * feedbackSlotsPerEntry slots
	max := 2 * feedbackSlotsPerEntry
	for i := 0; i < max+3; i++ {
		c.RecordFeedback(fmt.Sprintf("fp%d", i), Feedback{Rows: int64(i)})
	}
	if got := c.Stats().FeedbackEntries; got != max {
		t.Fatalf("FeedbackEntries = %d, want %d", got, max)
	}
	// Oldest slots evicted, newest retained.
	if _, ok := c.Feedback("fp0"); ok {
		t.Error("oldest slot fp0 survived past the bound")
	}
	if _, ok := c.Feedback(fmt.Sprintf("fp%d", max+2)); !ok {
		t.Error("newest slot missing")
	}

	// Tightening the bounds trims immediately.
	c.SetLimits(1, 0)
	if got := c.Stats().FeedbackEntries; got != feedbackSlotsPerEntry {
		t.Errorf("after SetLimits(1): FeedbackEntries = %d, want %d", got, feedbackSlotsPerEntry)
	}
}

// Concurrent write-back of the same fingerprint must serialize on the cache
// lock: the slot is replaced whole (no torn half-old half-new observation)
// and every run is counted. Run with -race.
func TestFeedbackConcurrentWriteback(t *testing.T) {
	c := New(8, 0)
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Rows and ExecNs always move together; a torn slot would
				// decouple them.
				v := int64(g*perG + i + 1)
				c.RecordFeedback("shared", Feedback{Rows: v, ExecNs: v * 1000, Choice: "adaptive"})
				if fb, ok := c.Feedback("shared"); ok {
					if fb.ExecNs != fb.Rows*1000 {
						t.Errorf("torn feedback: rows=%d execns=%d", fb.Rows, fb.ExecNs)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	fb, ok := c.Feedback("shared")
	if !ok || fb.Runs != goroutines*perG {
		t.Fatalf("Runs = %d (ok=%v), want %d", fb.Runs, ok, goroutines*perG)
	}
}
