// Package plancache caches compiled queries keyed by plan fingerprint.
//
// A cache entry pairs the generated CompiledQuery (layout, pipelines,
// parameter slots — immutable after compilation) with the engine Module
// already compiled from it. Because the module is shared, its background
// TurboFan tier-up survives across queries: the first execution of a query
// shape pays liftoff compilation and tiers up mid-query, while a later
// cache hit instantiates the same module and dispatches optimized code from
// the very first morsel. Per-execution state — instances, linear memories,
// parameter-region contents — is created fresh by the executor and never
// lives here.
//
// The cache is bounded by entry count and by total generated-code bytes
// (LRU eviction), and is invalidated wholesale on DDL; fingerprints also
// embed the catalog schema version, so even a stale entry that survived a
// missed flush could never be returned for a new schema. Concurrent misses
// on one fingerprint are collapsed by a singleflight: the first caller
// compiles, the rest wait and share the result (counted as hits — they
// paid no compile). A failed compile is returned to every waiter and caches
// nothing.
//
// Layering: plancache sits above core and engine and below the public API;
// it must never be imported by them (`make verify` checks).
package plancache

import (
	"container/list"
	"sync"

	"wasmdb/internal/core"
	"wasmdb/internal/engine"
	"wasmdb/internal/obs"
)

// Process-wide mirrors of every cache's outcome counters.
var (
	mHits          = obs.Default.Counter(obs.MetricPlanCacheHits)
	mMisses        = obs.Default.Counter(obs.MetricPlanCacheMisses)
	mEvictions     = obs.Default.Counter(obs.MetricPlanCacheEvictions)
	mInvalidations = obs.Default.Counter(obs.MetricPlanCacheInvalidations)
)

// Default capacity bounds.
const (
	DefaultMaxEntries = 128
	DefaultMaxBytes   = 64 << 20
)

// Entry is one cached compilation.
type Entry struct {
	// Fingerprint is the key the entry was stored under (core.Fingerprint).
	Fingerprint string
	// CQ is the compiled query: module bytes, pipelines, result layout, and
	// parameter slots. Immutable — shared by every execution that hits.
	CQ *core.CompiledQuery
	// Mod is the engine module compiled from CQ.Bin, with whatever tier-up
	// progress it has accumulated.
	Mod *engine.Module
}

// Feedback is one query shape's observed-execution record, keyed by the
// same fingerprint as the compiled entry — the memory of the autopilot's
// feedback loop. The cold decision runs on planner estimates alone; every
// execution writes what actually happened back here, and the next decision
// for the same fingerprint corrects itself against it. Feedback lives in a
// side table rather than on the LRU entry because interpret decisions have
// no compiled module to hang it on, and because it must survive tier-up
// sharing: liftoff-only and adaptive decisions for one shape use a single
// slot (and a single cached module). Like code entries, feedback is
// invalidated wholesale on DDL Flush — the catalog statistics it was
// observed under are gone.
type Feedback struct {
	// Runs counts executions recorded for this fingerprint.
	Runs int64
	// Rows is the last observed result cardinality.
	Rows int64
	// ExecNs / Morsels / MorselNs describe the last execution's cost:
	// pipeline execution time, morsel calls driven, and mean per-morsel
	// latency.
	ExecNs   int64
	Morsels  int64
	MorselNs int64
	// TierUpMorsel is the morsel index at which the first optimized-tier
	// dispatch happened (-1 when the run never left baseline code).
	TierUpMorsel int64
	// Workers is the worker-pool size the run executed with; SerialFallback
	// names why a parallel request ran serially (empty otherwise), and
	// FallbackIntrinsic marks reasons that are properties of the query shape
	// (they recur every run) rather than transient resource pressure.
	Workers           int
	SerialFallback    string
	FallbackIntrinsic bool
	// Choice is the autopilot decision the run executed under.
	Choice string
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	// Entries and CodeBytes describe current occupancy.
	Entries   int
	CodeBytes int64
	// FeedbackEntries counts occupied autopilot feedback slots.
	FeedbackEntries int
}

// Cache is a bounded LRU of compiled queries. Safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	lru        *list.List // front = most recently used; values are *Entry
	byFP       map[string]*list.Element
	bytes      int64
	flights    map[string]*flight

	// Autopilot feedback slots, FIFO-bounded independently of the code LRU
	// (a slot is a few dozen bytes; an entry is a compiled module). Guarded
	// by mu — the same lock that already serializes entry access, so
	// concurrent warm hits writing back cannot race or tear.
	feedback map[string]*list.Element
	fbOrder  *list.List // front = newest; values are *fbSlot

	hits, misses, evictions, invalidations int64
}

// fbSlot is one feedback slot in insertion order.
type fbSlot struct {
	fp string
	fb Feedback
}

// feedbackSlotsPerEntry scales the feedback bound off the entry bound:
// feedback is retained for more shapes than code is, since shapes the
// autopilot routed to the interpreter occupy no code entry at all.
const feedbackSlotsPerEntry = 4

// flight is one in-progress compilation that concurrent identical queries
// attach to instead of compiling again.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// New creates a cache with the given bounds; values <= 0 select the
// defaults.
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		lru:        list.New(),
		byFP:       map[string]*list.Element{},
		flights:    map[string]*flight{},
		feedback:   map[string]*list.Element{},
		fbOrder:    list.New(),
	}
}

// Feedback returns the stored execution feedback for a fingerprint.
func (c *Cache) Feedback(fp string) (Feedback, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.feedback[fp]; ok {
		return el.Value.(*fbSlot).fb, true
	}
	return Feedback{}, false
}

// RecordFeedback stores one execution's observations for a fingerprint,
// replacing the previous observation and accumulating the run count. Safe
// for concurrent use: warm hits of the same shape on many goroutines
// serialize on the cache lock, so the slot is replaced whole — never torn.
func (c *Cache) RecordFeedback(fp string, fb Feedback) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.feedback[fp]; ok {
		slot := el.Value.(*fbSlot)
		fb.Runs = slot.fb.Runs + 1
		slot.fb = fb
		return
	}
	fb.Runs = 1
	el := c.fbOrder.PushFront(&fbSlot{fp: fp, fb: fb})
	c.feedback[fp] = el
	for c.fbOrder.Len() > c.maxEntries*feedbackSlotsPerEntry {
		old := c.fbOrder.Back()
		c.fbOrder.Remove(old)
		delete(c.feedback, old.Value.(*fbSlot).fp)
	}
}

// GetOrCompile returns the cached entry for fp, or runs compile to create
// it. hit reports whether the caller avoided compilation — true both for a
// present entry and for a singleflight waiter that shared another caller's
// compile. A compile error is propagated to every attached waiter and
// nothing is cached.
func (c *Cache) GetOrCompile(fp string, compile func() (*core.CompiledQuery, *engine.Module, error)) (e *Entry, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byFP[fp]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		mHits.Add(1)
		return el.Value.(*Entry), true, nil
	}
	if fl, ok := c.flights[fp]; ok {
		// Someone is compiling this fingerprint right now: wait for their
		// result instead of duplicating the work.
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		mHits.Add(1)
		return fl.e, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[fp] = fl
	c.mu.Unlock()

	cq, mod, cerr := compile()

	c.mu.Lock()
	delete(c.flights, fp)
	if cerr != nil {
		fl.err = cerr
		c.mu.Unlock()
		close(fl.done)
		return nil, false, cerr
	}
	fl.e = &Entry{Fingerprint: fp, CQ: cq, Mod: mod}
	c.misses++
	if !cq.Uncacheable {
		// A fault-injection-perturbed module is handed to its waiters but
		// never retained: its code is not a pure function of the fingerprint.
		el := c.lru.PushFront(fl.e)
		c.byFP[fp] = el
		c.bytes += int64(len(cq.Bin))
		c.evictLocked()
	}
	c.mu.Unlock()
	mMisses.Add(1)
	close(fl.done)
	return fl.e, false, nil
}

// evictLocked drops least-recently-used entries until both budgets hold.
// The newest entry is allowed to stand alone even if it exceeds the byte
// budget by itself — evicting it immediately would make the cache useless
// for that query shape while still paying the bookkeeping.
func (c *Cache) evictLocked() {
	for (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*Entry)
		c.lru.Remove(el)
		delete(c.byFP, e.Fingerprint)
		c.bytes -= int64(len(e.CQ.Bin))
		c.evictions++
		mEvictions.Add(1)
	}
}

// Flush drops every entry (DDL invalidation) and returns how many were
// dropped. In-progress flights are unaffected: their fingerprints embed the
// old schema version, so once inserted they can never match a post-DDL
// lookup.
func (c *Cache) Flush() int {
	c.mu.Lock()
	n := c.lru.Len()
	c.lru.Init()
	c.byFP = map[string]*list.Element{}
	c.bytes = 0
	// Feedback was observed under the pre-DDL catalog statistics; decisions
	// after a schema change must start cold.
	c.fbOrder.Init()
	c.feedback = map[string]*list.Element{}
	c.invalidations += int64(n)
	c.mu.Unlock()
	mInvalidations.Add(int64(n))
	return n
}

// Stats snapshots the cache's counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:            c.hits,
		Misses:          c.misses,
		Evictions:       c.evictions,
		Invalidations:   c.invalidations,
		Entries:         c.lru.Len(),
		CodeBytes:       c.bytes,
		FeedbackEntries: c.fbOrder.Len(),
	}
}

// SetLimits adjusts the bounds (values <= 0 select the defaults) and evicts
// immediately if the new bounds are tighter.
func (c *Cache) SetLimits(maxEntries int, maxBytes int64) {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c.mu.Lock()
	c.maxEntries = maxEntries
	c.maxBytes = maxBytes
	c.evictLocked()
	for c.fbOrder.Len() > c.maxEntries*feedbackSlotsPerEntry {
		old := c.fbOrder.Back()
		c.fbOrder.Remove(old)
		delete(c.feedback, old.Value.(*fbSlot).fp)
	}
	c.mu.Unlock()
}
