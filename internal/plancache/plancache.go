// Package plancache caches compiled queries keyed by plan fingerprint.
//
// A cache entry pairs the generated CompiledQuery (layout, pipelines,
// parameter slots — immutable after compilation) with the engine Module
// already compiled from it. Because the module is shared, its background
// TurboFan tier-up survives across queries: the first execution of a query
// shape pays liftoff compilation and tiers up mid-query, while a later
// cache hit instantiates the same module and dispatches optimized code from
// the very first morsel. Per-execution state — instances, linear memories,
// parameter-region contents — is created fresh by the executor and never
// lives here.
//
// The cache is bounded by entry count and by total generated-code bytes
// (LRU eviction), and is invalidated wholesale on DDL; fingerprints also
// embed the catalog schema version, so even a stale entry that survived a
// missed flush could never be returned for a new schema. Concurrent misses
// on one fingerprint are collapsed by a singleflight: the first caller
// compiles, the rest wait and share the result (counted as hits — they
// paid no compile). A failed compile is returned to every waiter and caches
// nothing.
//
// Layering: plancache sits above core and engine and below the public API;
// it must never be imported by them (`make verify` checks).
package plancache

import (
	"container/list"
	"sync"

	"wasmdb/internal/core"
	"wasmdb/internal/engine"
	"wasmdb/internal/obs"
)

// Process-wide mirrors of every cache's outcome counters.
var (
	mHits          = obs.Default.Counter(obs.MetricPlanCacheHits)
	mMisses        = obs.Default.Counter(obs.MetricPlanCacheMisses)
	mEvictions     = obs.Default.Counter(obs.MetricPlanCacheEvictions)
	mInvalidations = obs.Default.Counter(obs.MetricPlanCacheInvalidations)
)

// Default capacity bounds.
const (
	DefaultMaxEntries = 128
	DefaultMaxBytes   = 64 << 20
)

// Entry is one cached compilation.
type Entry struct {
	// Fingerprint is the key the entry was stored under (core.Fingerprint).
	Fingerprint string
	// CQ is the compiled query: module bytes, pipelines, result layout, and
	// parameter slots. Immutable — shared by every execution that hits.
	CQ *core.CompiledQuery
	// Mod is the engine module compiled from CQ.Bin, with whatever tier-up
	// progress it has accumulated.
	Mod *engine.Module
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	// Entries and CodeBytes describe current occupancy.
	Entries   int
	CodeBytes int64
}

// Cache is a bounded LRU of compiled queries. Safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	lru        *list.List // front = most recently used; values are *Entry
	byFP       map[string]*list.Element
	bytes      int64
	flights    map[string]*flight

	hits, misses, evictions, invalidations int64
}

// flight is one in-progress compilation that concurrent identical queries
// attach to instead of compiling again.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// New creates a cache with the given bounds; values <= 0 select the
// defaults.
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		lru:        list.New(),
		byFP:       map[string]*list.Element{},
		flights:    map[string]*flight{},
	}
}

// GetOrCompile returns the cached entry for fp, or runs compile to create
// it. hit reports whether the caller avoided compilation — true both for a
// present entry and for a singleflight waiter that shared another caller's
// compile. A compile error is propagated to every attached waiter and
// nothing is cached.
func (c *Cache) GetOrCompile(fp string, compile func() (*core.CompiledQuery, *engine.Module, error)) (e *Entry, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byFP[fp]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		mHits.Add(1)
		return el.Value.(*Entry), true, nil
	}
	if fl, ok := c.flights[fp]; ok {
		// Someone is compiling this fingerprint right now: wait for their
		// result instead of duplicating the work.
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		mHits.Add(1)
		return fl.e, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[fp] = fl
	c.mu.Unlock()

	cq, mod, cerr := compile()

	c.mu.Lock()
	delete(c.flights, fp)
	if cerr != nil {
		fl.err = cerr
		c.mu.Unlock()
		close(fl.done)
		return nil, false, cerr
	}
	fl.e = &Entry{Fingerprint: fp, CQ: cq, Mod: mod}
	c.misses++
	if !cq.Uncacheable {
		// A fault-injection-perturbed module is handed to its waiters but
		// never retained: its code is not a pure function of the fingerprint.
		el := c.lru.PushFront(fl.e)
		c.byFP[fp] = el
		c.bytes += int64(len(cq.Bin))
		c.evictLocked()
	}
	c.mu.Unlock()
	mMisses.Add(1)
	close(fl.done)
	return fl.e, false, nil
}

// evictLocked drops least-recently-used entries until both budgets hold.
// The newest entry is allowed to stand alone even if it exceeds the byte
// budget by itself — evicting it immediately would make the cache useless
// for that query shape while still paying the bookkeeping.
func (c *Cache) evictLocked() {
	for (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*Entry)
		c.lru.Remove(el)
		delete(c.byFP, e.Fingerprint)
		c.bytes -= int64(len(e.CQ.Bin))
		c.evictions++
		mEvictions.Add(1)
	}
}

// Flush drops every entry (DDL invalidation) and returns how many were
// dropped. In-progress flights are unaffected: their fingerprints embed the
// old schema version, so once inserted they can never match a post-DDL
// lookup.
func (c *Cache) Flush() int {
	c.mu.Lock()
	n := c.lru.Len()
	c.lru.Init()
	c.byFP = map[string]*list.Element{}
	c.bytes = 0
	c.invalidations += int64(n)
	c.mu.Unlock()
	mInvalidations.Add(int64(n))
	return n
}

// Stats snapshots the cache's counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.lru.Len(),
		CodeBytes:     c.bytes,
	}
}

// SetLimits adjusts the bounds (values <= 0 select the defaults) and evicts
// immediately if the new bounds are tighter.
func (c *Cache) SetLimits(maxEntries int, maxBytes int64) {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c.mu.Lock()
	c.maxEntries = maxEntries
	c.maxBytes = maxBytes
	c.evictLocked()
	c.mu.Unlock()
}
