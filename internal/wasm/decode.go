package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decode parses a binary WebAssembly module. It accepts the subset of the
// core MVP emitted by this package (one memory, one funcref table, active
// segments, constant initializers) and rejects everything else with an error.
func Decode(buf []byte) (*Module, error) {
	d := &decoder{buf: buf}
	return d.module()
}

type decoder struct {
	buf []byte
	pos int
}

var errUnexpectedEOF = errors.New("wasm: unexpected end of module")

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, errUnexpectedEOF
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, errUnexpectedEOF
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) uleb(maxBits uint) (uint64, error) {
	v, n, err := ReadUleb(d.buf[d.pos:], maxBits)
	if err != nil {
		return 0, err
	}
	d.pos += n
	return v, nil
}

func (d *decoder) sleb(maxBits uint) (int64, error) {
	v, n, err := ReadSleb(d.buf[d.pos:], maxBits)
	if err != nil {
		return 0, err
	}
	d.pos += n
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	v, err := d.uleb(32)
	return uint32(v), err
}

func (d *decoder) name() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) limits() (Limits, error) {
	flag, err := d.byte()
	if err != nil {
		return Limits{}, err
	}
	var l Limits
	l.Min, err = d.u32()
	if err != nil {
		return Limits{}, err
	}
	switch flag {
	case 0x00:
	case 0x01:
		l.HasMax = true
		l.Max, err = d.u32()
		if err != nil {
			return Limits{}, err
		}
	default:
		return Limits{}, fmt.Errorf("wasm: invalid limits flag 0x%02x", flag)
	}
	return l, nil
}

func (d *decoder) valType() (ValType, error) {
	b, err := d.byte()
	if err != nil {
		return 0, err
	}
	t := ValType(b)
	if !t.Valid() {
		return 0, fmt.Errorf("wasm: invalid value type 0x%02x", b)
	}
	return t, nil
}

// constExpr decodes a constant initializer expression and returns the raw
// value bits.
func (d *decoder) constExpr(want ValType) (uint64, error) {
	op, err := d.byte()
	if err != nil {
		return 0, err
	}
	var v uint64
	switch Opcode(op) {
	case OpI32Const:
		if want != I32 {
			return 0, fmt.Errorf("wasm: initializer type mismatch")
		}
		x, err := d.sleb(32)
		if err != nil {
			return 0, err
		}
		v = uint64(uint32(int32(x)))
	case OpI64Const:
		if want != I64 {
			return 0, fmt.Errorf("wasm: initializer type mismatch")
		}
		x, err := d.sleb(64)
		if err != nil {
			return 0, err
		}
		v = uint64(x)
	case OpF32Const:
		if want != F32 {
			return 0, fmt.Errorf("wasm: initializer type mismatch")
		}
		b, err := d.take(4)
		if err != nil {
			return 0, err
		}
		v = uint64(binary.LittleEndian.Uint32(b))
	case OpF64Const:
		if want != F64 {
			return 0, fmt.Errorf("wasm: initializer type mismatch")
		}
		b, err := d.take(8)
		if err != nil {
			return 0, err
		}
		v = binary.LittleEndian.Uint64(b)
	default:
		return 0, fmt.Errorf("wasm: unsupported initializer opcode 0x%02x", op)
	}
	end, err := d.byte()
	if err != nil {
		return 0, err
	}
	if Opcode(end) != OpEnd {
		return 0, fmt.Errorf("wasm: initializer not terminated by end")
	}
	return v, nil
}

func (d *decoder) module() (*Module, error) {
	hdr, err := d.take(8)
	if err != nil {
		return nil, err
	}
	for i, b := range magic {
		if hdr[i] != b {
			return nil, errors.New("wasm: bad magic or version")
		}
	}
	m := &Module{Start: -1}
	var funcTypes []uint32
	lastSec := -1
	for d.remaining() > 0 {
		id, err := d.byte()
		if err != nil {
			return nil, err
		}
		size, err := d.u32()
		if err != nil {
			return nil, err
		}
		body, err := d.take(int(size))
		if err != nil {
			return nil, err
		}
		if id != secCustom {
			if int(id) <= lastSec {
				return nil, fmt.Errorf("wasm: section %d out of order", id)
			}
			lastSec = int(id)
		}
		sd := &decoder{buf: body}
		switch id {
		case secCustom:
			// Skipped (names are debug-only).
		case secType:
			if err := sd.typeSection(m); err != nil {
				return nil, err
			}
		case secImport:
			if err := sd.importSection(m); err != nil {
				return nil, err
			}
		case secFunction:
			n, err := sd.u32()
			if err != nil {
				return nil, err
			}
			for i := uint32(0); i < n; i++ {
				ti, err := sd.u32()
				if err != nil {
					return nil, err
				}
				funcTypes = append(funcTypes, ti)
			}
		case secTable:
			n, err := sd.u32()
			if err != nil {
				return nil, err
			}
			if n > 1 {
				return nil, errors.New("wasm: at most one table supported")
			}
			if n == 1 {
				et, err := sd.byte()
				if err != nil {
					return nil, err
				}
				if et != 0x70 {
					return nil, errors.New("wasm: only funcref tables supported")
				}
				l, err := sd.limits()
				if err != nil {
					return nil, err
				}
				m.HasTable = true
				m.TableMin = l.Min
			}
		case secMemory:
			n, err := sd.u32()
			if err != nil {
				return nil, err
			}
			if n > 1 {
				return nil, errors.New("wasm: at most one memory supported")
			}
			if n == 1 {
				l, err := sd.limits()
				if err != nil {
					return nil, err
				}
				m.Memory = l
				m.HasMemory = true
			}
		case secGlobal:
			if err := sd.globalSection(m); err != nil {
				return nil, err
			}
		case secExport:
			if err := sd.exportSection(m); err != nil {
				return nil, err
			}
		case secStart:
			s, err := sd.u32()
			if err != nil {
				return nil, err
			}
			m.Start = int32(s)
		case secElem:
			if err := sd.elemSection(m); err != nil {
				return nil, err
			}
		case secCode:
			if err := sd.codeSection(m, funcTypes); err != nil {
				return nil, err
			}
		case secData:
			if err := sd.dataSection(m); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wasm: unknown section id %d", id)
		}
	}
	if len(funcTypes) != len(m.Funcs) {
		return nil, fmt.Errorf("wasm: function section declares %d functions, code section has %d", len(funcTypes), len(m.Funcs))
	}
	return m, nil
}

func (d *decoder) typeSection(m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		form, err := d.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return fmt.Errorf("wasm: invalid func type form 0x%02x", form)
		}
		var ft FuncType
		np, err := d.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < np; j++ {
			t, err := d.valType()
			if err != nil {
				return err
			}
			ft.Params = append(ft.Params, t)
		}
		nr, err := d.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nr; j++ {
			t, err := d.valType()
			if err != nil {
				return err
			}
			ft.Results = append(ft.Results, t)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func (d *decoder) importSection(m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var im Import
		if im.Module, err = d.name(); err != nil {
			return err
		}
		if im.Name, err = d.name(); err != nil {
			return err
		}
		kind, err := d.byte()
		if err != nil {
			return err
		}
		im.Kind = ExternKind(kind)
		switch im.Kind {
		case ExternFunc:
			if im.Type, err = d.u32(); err != nil {
				return err
			}
		case ExternMemory:
			if im.Mem, err = d.limits(); err != nil {
				return err
			}
		case ExternGlobal:
			t, err := d.valType()
			if err != nil {
				return err
			}
			mut, err := d.byte()
			if err != nil {
				return err
			}
			im.Global = GlobalType{Type: t, Mutable: mut == 1}
		case ExternTable:
			et, err := d.byte()
			if err != nil {
				return err
			}
			if et != 0x70 {
				return errors.New("wasm: only funcref tables supported")
			}
			if im.Table, err = d.limits(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("wasm: invalid import kind 0x%02x", kind)
		}
		m.Imports = append(m.Imports, im)
	}
	return nil
}

func (d *decoder) globalSection(m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		t, err := d.valType()
		if err != nil {
			return err
		}
		mut, err := d.byte()
		if err != nil {
			return err
		}
		init, err := d.constExpr(t)
		if err != nil {
			return err
		}
		m.Globals = append(m.Globals, Global{Type: GlobalType{Type: t, Mutable: mut == 1}, Init: init})
	}
	return nil
}

func (d *decoder) exportSection(m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	seen := make(map[string]bool, n)
	for i := uint32(0); i < n; i++ {
		var e Export
		if e.Name, err = d.name(); err != nil {
			return err
		}
		if seen[e.Name] {
			return fmt.Errorf("wasm: duplicate export %q", e.Name)
		}
		seen[e.Name] = true
		kind, err := d.byte()
		if err != nil {
			return err
		}
		e.Kind = ExternKind(kind)
		if e.Index, err = d.u32(); err != nil {
			return err
		}
		m.Exports = append(m.Exports, e)
	}
	return nil
}

func (d *decoder) elemSection(m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		flag, err := d.u32()
		if err != nil {
			return err
		}
		if flag != 0 {
			return errors.New("wasm: only active element segments for table 0 supported")
		}
		off, err := d.constExpr(I32)
		if err != nil {
			return err
		}
		cnt, err := d.u32()
		if err != nil {
			return err
		}
		seg := ElemSegment{Offset: uint32(off)}
		for j := uint32(0); j < cnt; j++ {
			fi, err := d.u32()
			if err != nil {
				return err
			}
			seg.Funcs = append(seg.Funcs, fi)
		}
		m.Elems = append(m.Elems, seg)
	}
	return nil
}

func (d *decoder) dataSection(m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		flag, err := d.u32()
		if err != nil {
			return err
		}
		if flag != 0 {
			return errors.New("wasm: only active data segments for memory 0 supported")
		}
		off, err := d.constExpr(I32)
		if err != nil {
			return err
		}
		cnt, err := d.u32()
		if err != nil {
			return err
		}
		b, err := d.take(int(cnt))
		if err != nil {
			return err
		}
		m.Data = append(m.Data, DataSegment{Offset: uint32(off), Bytes: append([]byte(nil), b...)})
	}
	return nil
}

func (d *decoder) codeSection(m *Module, funcTypes []uint32) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	if int(n) != len(funcTypes) {
		return fmt.Errorf("wasm: code count %d does not match function count %d", n, len(funcTypes))
	}
	for i := uint32(0); i < n; i++ {
		size, err := d.u32()
		if err != nil {
			return err
		}
		body, err := d.take(int(size))
		if err != nil {
			return err
		}
		fn := Func{Type: funcTypes[i]}
		bd := &decoder{buf: body}
		nRuns, err := bd.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nRuns; j++ {
			cnt, err := bd.u32()
			if err != nil {
				return err
			}
			t, err := bd.valType()
			if err != nil {
				return err
			}
			if len(fn.Locals)+int(cnt) > 1<<20 {
				return errors.New("wasm: too many locals")
			}
			for k := uint32(0); k < cnt; k++ {
				fn.Locals = append(fn.Locals, t)
			}
		}
		if fn.Body, err = bd.instrs(); err != nil {
			return fmt.Errorf("wasm: function %d: %w", i, err)
		}
		if bd.remaining() != 0 {
			return fmt.Errorf("wasm: function %d: trailing bytes after body", i)
		}
		m.Funcs = append(m.Funcs, fn)
	}
	return nil
}

// instrs decodes an instruction sequence up to and including the final end
// that closes the function body.
func (d *decoder) instrs() ([]Instr, error) {
	var out []Instr
	depth := 0
	for {
		opb, err := d.byte()
		if err != nil {
			return nil, err
		}
		op := Opcode(opb)
		if !op.Known() {
			return nil, fmt.Errorf("unknown opcode 0x%02x", opb)
		}
		in := Instr{Op: op}
		switch op.Imm() {
		case ImmNone:
		case ImmBlockType:
			bt, err := d.byte()
			if err != nil {
				return nil, err
			}
			if BlockType(bt) != BlockVoid && !ValType(bt).Valid() {
				return nil, fmt.Errorf("invalid block type 0x%02x", bt)
			}
			in.A = uint64(bt)
		case ImmLabel, ImmFuncIdx, ImmLocalIdx, ImmGlobalIdx:
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			in.A = uint64(v)
		case ImmBrTable:
			cnt, err := d.u32()
			if err != nil {
				return nil, err
			}
			if int(cnt) > d.remaining() {
				return nil, errUnexpectedEOF
			}
			in.Table = make([]uint32, cnt)
			for j := range in.Table {
				if in.Table[j], err = d.u32(); err != nil {
					return nil, err
				}
			}
			def, err := d.u32()
			if err != nil {
				return nil, err
			}
			in.A = uint64(def)
		case ImmTypeIdx:
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			in.A = uint64(v)
			tb, err := d.byte()
			if err != nil {
				return nil, err
			}
			if tb != 0x00 {
				return nil, errors.New("call_indirect: non-zero table index")
			}
		case ImmMemArg:
			align, err := d.u32()
			if err != nil {
				return nil, err
			}
			offset, err := d.u32()
			if err != nil {
				return nil, err
			}
			in.A, in.B = uint64(offset), uint64(align)
		case ImmMemIdx:
			mb, err := d.byte()
			if err != nil {
				return nil, err
			}
			if mb != 0x00 {
				return nil, errors.New("memory instruction: non-zero memory index")
			}
		case ImmI32:
			v, err := d.sleb(32)
			if err != nil {
				return nil, err
			}
			in.A = uint64(uint32(int32(v)))
		case ImmI64:
			v, err := d.sleb(64)
			if err != nil {
				return nil, err
			}
			in.A = uint64(v)
		case ImmF32:
			b, err := d.take(4)
			if err != nil {
				return nil, err
			}
			in.A = uint64(binary.LittleEndian.Uint32(b))
		case ImmF64:
			b, err := d.take(8)
			if err != nil {
				return nil, err
			}
			in.A = binary.LittleEndian.Uint64(b)
		}
		out = append(out, in)
		switch op {
		case OpBlock, OpLoop, OpIf:
			depth++
		case OpEnd:
			if depth == 0 {
				return out, nil
			}
			depth--
		}
	}
}
