package wasm

import (
	"fmt"
	"math"
)

// ModuleBuilder incrementally constructs a Module. It is the code-generation
// surface of the package: the query compiler creates functions through
// NewFunc, emits instructions through the typed FuncBuilder API, and finally
// calls Bytes to obtain the binary module.
//
// All function imports must be declared before the first call to NewFunc,
// because imported functions occupy the lowest function indices.
type ModuleBuilder struct {
	mod        Module
	numImports int
	sealed     bool // set once the first defined function is created
	funcs      []*FuncBuilder
}

// NewModuleBuilder returns an empty module builder.
func NewModuleBuilder() *ModuleBuilder {
	return &ModuleBuilder{mod: Module{Start: -1}}
}

// AddType interns a function type and returns its type index.
func (b *ModuleBuilder) AddType(ft FuncType) uint32 {
	for i, t := range b.mod.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	b.mod.Types = append(b.mod.Types, ft)
	return uint32(len(b.mod.Types) - 1)
}

// ImportFunc declares a function import and returns its function index.
// It panics if called after the first defined function has been created.
func (b *ModuleBuilder) ImportFunc(module, name string, ft FuncType) uint32 {
	if b.sealed {
		panic("wasm: ImportFunc after NewFunc")
	}
	ti := b.AddType(ft)
	b.mod.Imports = append(b.mod.Imports, Import{Module: module, Name: name, Kind: ExternFunc, Type: ti})
	idx := uint32(b.numImports)
	b.numImports++
	return idx
}

// ImportMemory declares a memory import with the given limits (in pages).
func (b *ModuleBuilder) ImportMemory(module, name string, min, max uint32) {
	b.mod.Imports = append(b.mod.Imports, Import{
		Module: module, Name: name, Kind: ExternMemory,
		Mem: Limits{Min: min, Max: max, HasMax: true},
	})
}

// AddMemory declares a module-defined memory with the given limits (pages).
func (b *ModuleBuilder) AddMemory(min, max uint32) {
	b.mod.Memory = Limits{Min: min, Max: max, HasMax: true}
	b.mod.HasMemory = true
}

// AddGlobal declares a module-defined global and returns its global index.
// Imported globals are not supported, so indices start at zero.
func (b *ModuleBuilder) AddGlobal(t ValType, mutable bool, init uint64) uint32 {
	b.mod.Globals = append(b.mod.Globals, Global{Type: GlobalType{Type: t, Mutable: mutable}, Init: init})
	return uint32(len(b.mod.Globals) - 1)
}

// AddData places bytes at a constant offset in memory at instantiation time.
func (b *ModuleBuilder) AddData(offset uint32, data []byte) {
	b.mod.Data = append(b.mod.Data, DataSegment{Offset: offset, Bytes: data})
}

// Export exports the entity with the given kind and index under name.
func (b *ModuleBuilder) Export(name string, kind ExternKind, index uint32) {
	b.mod.Exports = append(b.mod.Exports, Export{Name: name, Kind: kind, Index: index})
}

// NewFunc creates a new module-defined function with the given debug name and
// signature and returns a FuncBuilder for its body. The function index is
// available immediately as FuncBuilder.Index, so mutually recursive calls can
// be emitted.
func (b *ModuleBuilder) NewFunc(name string, ft FuncType) *FuncBuilder {
	b.sealed = true
	ti := b.AddType(ft)
	fb := &FuncBuilder{
		mb:     b,
		Index:  uint32(b.numImports + len(b.funcs)),
		typ:    ft,
		fn:     Func{Type: ti, Name: name},
		nLocal: len(ft.Params),
	}
	b.funcs = append(b.funcs, fb)
	return fb
}

// Module finalizes all function bodies and returns the built module.
// It panics if any function has unbalanced control nesting.
func (b *ModuleBuilder) Module() *Module {
	b.mod.Funcs = b.mod.Funcs[:0]
	for _, fb := range b.funcs {
		if fb.depth != 0 {
			panic(fmt.Sprintf("wasm: function %q has unbalanced control nesting (%d open)", fb.fn.Name, fb.depth))
		}
		fn := fb.fn
		// Append the end closing the function frame; inner constructs are
		// balanced (depth is zero), so exactly one is needed.
		fn.Body = append(fn.Body, Instr{Op: OpEnd})
		b.mod.Funcs = append(b.mod.Funcs, fn)
	}
	return &b.mod
}

// Bytes finalizes the module and returns its binary encoding.
func (b *ModuleBuilder) Bytes() []byte { return Encode(b.Module()) }

// Local identifies a local variable (parameter or declared local) of the
// function under construction.
type Local uint32

// FuncBuilder emits the body of one function. Emission methods mirror the
// WebAssembly instruction set; structured control (Block/Loop/If/Else/End)
// tracks nesting so imbalances are caught at build time rather than by the
// validator.
type FuncBuilder struct {
	mb     *ModuleBuilder
	Index  uint32
	typ    FuncType
	fn     Func
	nLocal int
	depth  int
}

// Type returns the function's signature.
func (f *FuncBuilder) Type() FuncType { return f.typ }

// Param returns the local referring to parameter i.
func (f *FuncBuilder) Param(i int) Local {
	if i < 0 || i >= len(f.typ.Params) {
		panic("wasm: parameter index out of range")
	}
	return Local(i)
}

// AddLocal declares a fresh local of type t and returns it.
func (f *FuncBuilder) AddLocal(t ValType) Local {
	f.fn.Locals = append(f.fn.Locals, t)
	l := Local(f.nLocal)
	f.nLocal++
	return l
}

// Emit appends a raw instruction.
func (f *FuncBuilder) Emit(op Opcode, a, b uint64) {
	f.fn.Body = append(f.fn.Body, Instr{Op: op, A: a, B: b})
}

// Op appends an instruction with no immediates.
func (f *FuncBuilder) Op(op Opcode) { f.Emit(op, 0, 0) }

// Control flow.

// Block opens a block with the given result type.
func (f *FuncBuilder) Block(bt BlockType) { f.depth++; f.Emit(OpBlock, uint64(bt), 0) }

// Loop opens a loop with the given result type.
func (f *FuncBuilder) Loop(bt BlockType) { f.depth++; f.Emit(OpLoop, uint64(bt), 0) }

// If opens an if with the given result type, consuming an i32 condition.
func (f *FuncBuilder) If(bt BlockType) { f.depth++; f.Emit(OpIf, uint64(bt), 0) }

// Else starts the else arm of the innermost if.
func (f *FuncBuilder) Else() { f.Op(OpElse) }

// End closes the innermost block, loop, or if.
func (f *FuncBuilder) End() {
	if f.depth == 0 {
		panic("wasm: End without open control construct")
	}
	f.depth--
	f.Op(OpEnd)
}

// Br branches to the label depth levels out.
func (f *FuncBuilder) Br(depth uint32) { f.Emit(OpBr, uint64(depth), 0) }

// BrIf conditionally branches to the label depth levels out.
func (f *FuncBuilder) BrIf(depth uint32) { f.Emit(OpBrIf, uint64(depth), 0) }

// BrTable emits a branch table with the given targets and default.
func (f *FuncBuilder) BrTable(targets []uint32, def uint32) {
	f.fn.Body = append(f.fn.Body, Instr{Op: OpBrTable, A: uint64(def), Table: targets})
}

// Return emits a function return.
func (f *FuncBuilder) Return() { f.Op(OpReturn) }

// Unreachable emits a trap.
func (f *FuncBuilder) Unreachable() { f.Op(OpUnreachable) }

// Call emits a direct call to the function with the given index.
func (f *FuncBuilder) Call(fn uint32) { f.Emit(OpCall, uint64(fn), 0) }

// CallBuilder emits a direct call to another function under construction.
func (f *FuncBuilder) CallBuilder(other *FuncBuilder) { f.Call(other.Index) }

// Drop and select.

// Drop discards the top stack value.
func (f *FuncBuilder) Drop() { f.Op(OpDrop) }

// Select picks one of two values by an i32 condition (branch-free).
func (f *FuncBuilder) Select() { f.Op(OpSelect) }

// Locals and globals.

// LocalGet pushes the value of l.
func (f *FuncBuilder) LocalGet(l Local) { f.Emit(OpLocalGet, uint64(l), 0) }

// LocalSet pops into l.
func (f *FuncBuilder) LocalSet(l Local) { f.Emit(OpLocalSet, uint64(l), 0) }

// LocalTee stores the top of stack into l, leaving it on the stack.
func (f *FuncBuilder) LocalTee(l Local) { f.Emit(OpLocalTee, uint64(l), 0) }

// GlobalGet pushes the value of global g.
func (f *FuncBuilder) GlobalGet(g uint32) { f.Emit(OpGlobalGet, uint64(g), 0) }

// GlobalSet pops into global g.
func (f *FuncBuilder) GlobalSet(g uint32) { f.Emit(OpGlobalSet, uint64(g), 0) }

// Constants.

// I32Const pushes a 32-bit integer constant.
func (f *FuncBuilder) I32Const(v int32) { f.Emit(OpI32Const, uint64(uint32(v)), 0) }

// I64Const pushes a 64-bit integer constant.
func (f *FuncBuilder) I64Const(v int64) { f.Emit(OpI64Const, uint64(v), 0) }

// F32Const pushes a 32-bit float constant.
func (f *FuncBuilder) F32Const(v float32) { f.Emit(OpF32Const, uint64(math.Float32bits(v)), 0) }

// F64Const pushes a 64-bit float constant.
func (f *FuncBuilder) F64Const(v float64) { f.Emit(OpF64Const, math.Float64bits(v), 0) }

// Memory access. Offsets are constant byte offsets added to the popped base
// address; alignment hints are set to the access's natural alignment.

func (f *FuncBuilder) load(op Opcode, offset uint32, alignLog2 uint64) {
	f.Emit(op, uint64(offset), alignLog2)
}

// I32Load loads an i32 from base+offset.
func (f *FuncBuilder) I32Load(offset uint32) { f.load(OpI32Load, offset, 2) }

// I64Load loads an i64 from base+offset.
func (f *FuncBuilder) I64Load(offset uint32) { f.load(OpI64Load, offset, 3) }

// F32Load loads an f32 from base+offset.
func (f *FuncBuilder) F32Load(offset uint32) { f.load(OpF32Load, offset, 2) }

// F64Load loads an f64 from base+offset.
func (f *FuncBuilder) F64Load(offset uint32) { f.load(OpF64Load, offset, 3) }

// I32Load8U loads a zero-extended byte.
func (f *FuncBuilder) I32Load8U(offset uint32) { f.load(OpI32Load8U, offset, 0) }

// I32Load8S loads a sign-extended byte.
func (f *FuncBuilder) I32Load8S(offset uint32) { f.load(OpI32Load8S, offset, 0) }

// I32Load16U loads a zero-extended 16-bit value.
func (f *FuncBuilder) I32Load16U(offset uint32) { f.load(OpI32Load16U, offset, 1) }

// I32Load16S loads a sign-extended 16-bit value.
func (f *FuncBuilder) I32Load16S(offset uint32) { f.load(OpI32Load16S, offset, 1) }

// I32Store stores an i32 at base+offset.
func (f *FuncBuilder) I32Store(offset uint32) { f.load(OpI32Store, offset, 2) }

// I64Store stores an i64 at base+offset.
func (f *FuncBuilder) I64Store(offset uint32) { f.load(OpI64Store, offset, 3) }

// F32Store stores an f32 at base+offset.
func (f *FuncBuilder) F32Store(offset uint32) { f.load(OpF32Store, offset, 2) }

// F64Store stores an f64 at base+offset.
func (f *FuncBuilder) F64Store(offset uint32) { f.load(OpF64Store, offset, 3) }

// I32Store8 stores the low byte of an i32 at base+offset.
func (f *FuncBuilder) I32Store8(offset uint32) { f.load(OpI32Store8, offset, 0) }

// I32Store16 stores the low 16 bits of an i32 at base+offset.
func (f *FuncBuilder) I32Store16(offset uint32) { f.load(OpI32Store16, offset, 1) }

// MemorySize pushes the current memory size in pages.
func (f *FuncBuilder) MemorySize() { f.Emit(OpMemorySize, 0, 0) }

// MemoryGrow grows memory by the popped number of pages.
func (f *FuncBuilder) MemoryGrow() { f.Emit(OpMemoryGrow, 0, 0) }

// The remaining numeric instructions have no immediates; for brevity only the
// ones used pervasively by the query compiler get named helpers, everything
// else is available through Op.

// I32Add pops two i32s and pushes their sum.
func (f *FuncBuilder) I32Add() { f.Op(OpI32Add) }

// I32Sub pops two i32s and pushes their difference.
func (f *FuncBuilder) I32Sub() { f.Op(OpI32Sub) }

// I32Mul pops two i32s and pushes their product.
func (f *FuncBuilder) I32Mul() { f.Op(OpI32Mul) }

// I32And pops two i32s and pushes their bitwise and.
func (f *FuncBuilder) I32And() { f.Op(OpI32And) }

// I32Or pops two i32s and pushes their bitwise or.
func (f *FuncBuilder) I32Or() { f.Op(OpI32Or) }

// I32Xor pops two i32s and pushes their bitwise xor.
func (f *FuncBuilder) I32Xor() { f.Op(OpI32Xor) }

// I32Eqz pushes 1 if the popped i32 is zero.
func (f *FuncBuilder) I32Eqz() { f.Op(OpI32Eqz) }

// I32Eq pushes 1 if two popped i32s are equal.
func (f *FuncBuilder) I32Eq() { f.Op(OpI32Eq) }

// I32Ne pushes 1 if two popped i32s differ.
func (f *FuncBuilder) I32Ne() { f.Op(OpI32Ne) }

// I32LtU pushes 1 if a < b (unsigned).
func (f *FuncBuilder) I32LtU() { f.Op(OpI32LtU) }

// I32LtS pushes 1 if a < b (signed).
func (f *FuncBuilder) I32LtS() { f.Op(OpI32LtS) }

// I32GeU pushes 1 if a >= b (unsigned).
func (f *FuncBuilder) I32GeU() { f.Op(OpI32GeU) }

// I64Add pops two i64s and pushes their sum.
func (f *FuncBuilder) I64Add() { f.Op(OpI64Add) }

// I64Sub pops two i64s and pushes their difference.
func (f *FuncBuilder) I64Sub() { f.Op(OpI64Sub) }

// I64Mul pops two i64s and pushes their product.
func (f *FuncBuilder) I64Mul() { f.Op(OpI64Mul) }

// F64Add pops two f64s and pushes their sum.
func (f *FuncBuilder) F64Add() { f.Op(OpF64Add) }

// F64Sub pops two f64s and pushes their difference.
func (f *FuncBuilder) F64Sub() { f.Op(OpF64Sub) }

// F64Mul pops two f64s and pushes their product.
func (f *FuncBuilder) F64Mul() { f.Op(OpF64Mul) }

// F64Div pops two f64s and pushes their quotient.
func (f *FuncBuilder) F64Div() { f.Op(OpF64Div) }
