// Package wasm implements a self-contained WebAssembly (core MVP) binary
// toolkit: a module builder with a typed emit API, a binary encoder, a
// decoder, a validator, and a WAT-style printer.
//
// The package plays the role of the "interchange format" layer of the paper:
// the query compiler (internal/core) emits genuine .wasm bytes through
// ModuleBuilder, and the execution engine (internal/engine) consumes the same
// bytes through Decode/Validate. Only features needed by a query engine are
// implemented: the full numeric/control/memory instruction set of the MVP,
// one memory, one table (for call_indirect), globals, imports and exports.
package wasm

import "fmt"

// ValType is a WebAssembly value type.
type ValType byte

// Value types, encoded exactly as in the binary format.
const (
	I32 ValType = 0x7F
	I64 ValType = 0x7E
	F32 ValType = 0x7D
	F64 ValType = 0x7C
)

func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	default:
		return fmt.Sprintf("valtype(0x%02x)", byte(t))
	}
}

// Valid reports whether t is one of the four MVP value types.
func (t ValType) Valid() bool {
	return t == I32 || t == I64 || t == F32 || t == F64
}

// BlockType describes the result arity of a block, loop, or if construct.
// The MVP allows either no result (BlockVoid) or a single value type.
type BlockType byte

// BlockVoid is the empty block type (0x40 in the binary format).
const BlockVoid BlockType = 0x40

// BlockOf returns the block type producing a single value of type t.
func BlockOf(t ValType) BlockType { return BlockType(t) }

// Results returns the result types of the block type (zero or one).
func (b BlockType) Results() []ValType {
	if b == BlockVoid {
		return nil
	}
	return []ValType{ValType(b)}
}

func (b BlockType) String() string {
	if b == BlockVoid {
		return ""
	}
	return " (result " + ValType(b).String() + ")"
}

// FuncType is a function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

// Equal reports whether two function types are identical.
func (f FuncType) Equal(g FuncType) bool {
	if len(f.Params) != len(g.Params) || len(f.Results) != len(g.Results) {
		return false
	}
	for i := range f.Params {
		if f.Params[i] != g.Params[i] {
			return false
		}
	}
	for i := range f.Results {
		if f.Results[i] != g.Results[i] {
			return false
		}
	}
	return true
}

func (f FuncType) String() string {
	s := "(func"
	for _, p := range f.Params {
		s += " (param " + p.String() + ")"
	}
	for _, r := range f.Results {
		s += " (result " + r.String() + ")"
	}
	return s + ")"
}

// Limits bounds a memory or table size, in pages or elements.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// GlobalType describes a global variable's type and mutability.
type GlobalType struct {
	Type    ValType
	Mutable bool
}

// ExternKind identifies the kind of an import or export.
type ExternKind byte

// Extern kinds, encoded as in the binary format.
const (
	ExternFunc   ExternKind = 0x00
	ExternTable  ExternKind = 0x01
	ExternMemory ExternKind = 0x02
	ExternGlobal ExternKind = 0x03
)

func (k ExternKind) String() string {
	switch k {
	case ExternFunc:
		return "func"
	case ExternTable:
		return "table"
	case ExternMemory:
		return "memory"
	case ExternGlobal:
		return "global"
	default:
		return fmt.Sprintf("externkind(0x%02x)", byte(k))
	}
}

// Import declares a single import.
type Import struct {
	Module string
	Name   string
	Kind   ExternKind
	// Type holds the index into Module.Types for ExternFunc imports.
	Type uint32
	// Mem holds the limits for ExternMemory imports.
	Mem Limits
	// Global holds the type for ExternGlobal imports.
	Global GlobalType
	// Table holds the limits for ExternTable imports.
	Table Limits
}

// Export declares a single export.
type Export struct {
	Name  string
	Kind  ExternKind
	Index uint32
}

// Global is a module-defined global variable with a constant initializer.
type Global struct {
	Type GlobalType
	// Init is the initial value, interpreted according to Type.Type
	// (raw bits for floats).
	Init uint64
}

// DataSegment is an active data segment placed at a constant offset.
type DataSegment struct {
	Offset uint32
	Bytes  []byte
}

// ElemSegment is an active element segment for the function table.
type ElemSegment struct {
	Offset uint32
	Funcs  []uint32
}

// Func is a module-defined function: its type, declared locals (beyond
// parameters), and decoded instruction sequence.
type Func struct {
	Type uint32
	// Locals lists the non-parameter locals in declaration order, one entry
	// per local (run-length compression happens at encode time).
	Locals []ValType
	// Body is the decoded instruction sequence including the final End.
	Body []Instr
	// Name is an optional debug name (encoded in the name section).
	Name string
}

// Module is a decoded or under-construction WebAssembly module.
type Module struct {
	Types   []FuncType
	Imports []Import
	Funcs   []Func
	// TableMin is the minimum size of the single function table; the table
	// exists iff TableMin > 0 or Elems is non-empty.
	TableMin uint32
	HasTable bool
	// Memory declares the single memory; present iff HasMemory.
	Memory    Limits
	HasMemory bool
	Globals   []Global
	Exports   []Export
	Start     int32 // -1 if absent
	Elems     []ElemSegment
	Data      []DataSegment
}

// NumImportedFuncs returns the number of imported functions; module-defined
// function i has function index NumImportedFuncs()+i.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternFunc {
			n++
		}
	}
	return n
}

// FuncTypeAt returns the signature of the function with the given function
// index (imports first, then module-defined functions).
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	n := uint32(0)
	for _, im := range m.Imports {
		if im.Kind != ExternFunc {
			continue
		}
		if n == idx {
			if int(im.Type) >= len(m.Types) {
				return FuncType{}, fmt.Errorf("wasm: import type index %d out of range", im.Type)
			}
			return m.Types[im.Type], nil
		}
		n++
	}
	local := idx - n
	if int(local) >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", idx)
	}
	ti := m.Funcs[local].Type
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: type index %d out of range", ti)
	}
	return m.Types[ti], nil
}

// ExportedFunc returns the function index exported under name.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Kind == ExternFunc && e.Name == name {
			return e.Index, true
		}
	}
	return 0, false
}
