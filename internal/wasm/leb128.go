package wasm

import "errors"

// LEB128 encoding/decoding, the variable-length integer format used
// throughout the WebAssembly binary format.

var errLEB = errors.New("wasm: malformed LEB128 integer")

// AppendUleb appends the unsigned LEB128 encoding of v to dst.
func AppendUleb(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			dst = append(dst, b|0x80)
		} else {
			return append(dst, b)
		}
	}
}

// AppendSleb appends the signed LEB128 encoding of v to dst.
func AppendSleb(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// ReadUleb decodes an unsigned LEB128 integer of at most maxBits bits from
// buf, returning the value and the number of bytes consumed.
func ReadUleb(buf []byte, maxBits uint) (uint64, int, error) {
	var v uint64
	var shift uint
	maxBytes := int((maxBits + 6) / 7)
	for i := 0; i < len(buf) && i < maxBytes; i++ {
		b := buf[i]
		v |= uint64(b&0x7F) << shift
		if b&0x80 == 0 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, errLEB
}

// ReadSleb decodes a signed LEB128 integer of at most maxBits bits from buf,
// returning the value and the number of bytes consumed.
func ReadSleb(buf []byte, maxBits uint) (int64, int, error) {
	var v int64
	var shift uint
	maxBytes := int((maxBits + 6) / 7)
	for i := 0; i < len(buf) && i < maxBytes; i++ {
		b := buf[i]
		v |= int64(b&0x7F) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= -1 << shift
			}
			return v, i + 1, nil
		}
	}
	return 0, 0, errLEB
}
