package wasm

import "encoding/binary"

// Section ids of the binary format.
const (
	secCustom   = 0
	secType     = 1
	secImport   = 2
	secFunction = 3
	secTable    = 4
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secStart    = 8
	secElem     = 9
	secCode     = 10
	secData     = 11
)

var magic = []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

// Encode serializes the module into the WebAssembly binary format.
func Encode(m *Module) []byte {
	out := append([]byte(nil), magic...)

	// Type section.
	if len(m.Types) > 0 {
		var body []byte
		body = AppendUleb(body, uint64(len(m.Types)))
		for _, t := range m.Types {
			body = append(body, 0x60)
			body = AppendUleb(body, uint64(len(t.Params)))
			for _, p := range t.Params {
				body = append(body, byte(p))
			}
			body = AppendUleb(body, uint64(len(t.Results)))
			for _, r := range t.Results {
				body = append(body, byte(r))
			}
		}
		out = appendSection(out, secType, body)
	}

	// Import section.
	if len(m.Imports) > 0 {
		var body []byte
		body = AppendUleb(body, uint64(len(m.Imports)))
		for _, im := range m.Imports {
			body = appendName(body, im.Module)
			body = appendName(body, im.Name)
			body = append(body, byte(im.Kind))
			switch im.Kind {
			case ExternFunc:
				body = AppendUleb(body, uint64(im.Type))
			case ExternMemory:
				body = appendLimits(body, im.Mem)
			case ExternGlobal:
				body = append(body, byte(im.Global.Type), boolByte(im.Global.Mutable))
			case ExternTable:
				body = append(body, 0x70) // funcref
				body = appendLimits(body, im.Table)
			}
		}
		out = appendSection(out, secImport, body)
	}

	// Function section.
	if len(m.Funcs) > 0 {
		var body []byte
		body = AppendUleb(body, uint64(len(m.Funcs)))
		for _, f := range m.Funcs {
			body = AppendUleb(body, uint64(f.Type))
		}
		out = appendSection(out, secFunction, body)
	}

	// Table section.
	if m.HasTable {
		var body []byte
		body = AppendUleb(body, 1)
		body = append(body, 0x70) // funcref
		body = appendLimits(body, Limits{Min: m.TableMin})
		out = appendSection(out, secTable, body)
	}

	// Memory section.
	if m.HasMemory {
		var body []byte
		body = AppendUleb(body, 1)
		body = appendLimits(body, m.Memory)
		out = appendSection(out, secMemory, body)
	}

	// Global section.
	if len(m.Globals) > 0 {
		var body []byte
		body = AppendUleb(body, uint64(len(m.Globals)))
		for _, g := range m.Globals {
			body = append(body, byte(g.Type.Type), boolByte(g.Type.Mutable))
			switch g.Type.Type {
			case I32:
				body = append(body, byte(OpI32Const))
				body = AppendSleb(body, int64(int32(uint32(g.Init))))
			case I64:
				body = append(body, byte(OpI64Const))
				body = AppendSleb(body, int64(g.Init))
			case F32:
				body = append(body, byte(OpF32Const))
				body = binary.LittleEndian.AppendUint32(body, uint32(g.Init))
			case F64:
				body = append(body, byte(OpF64Const))
				body = binary.LittleEndian.AppendUint64(body, g.Init)
			}
			body = append(body, byte(OpEnd))
		}
		out = appendSection(out, secGlobal, body)
	}

	// Export section.
	if len(m.Exports) > 0 {
		var body []byte
		body = AppendUleb(body, uint64(len(m.Exports)))
		for _, e := range m.Exports {
			body = appendName(body, e.Name)
			body = append(body, byte(e.Kind))
			body = AppendUleb(body, uint64(e.Index))
		}
		out = appendSection(out, secExport, body)
	}

	// Start section.
	if m.Start >= 0 {
		var body []byte
		body = AppendUleb(body, uint64(m.Start))
		out = appendSection(out, secStart, body)
	}

	// Element section.
	if len(m.Elems) > 0 {
		var body []byte
		body = AppendUleb(body, uint64(len(m.Elems)))
		for _, e := range m.Elems {
			body = AppendUleb(body, 0) // active, table 0
			body = append(body, byte(OpI32Const))
			body = AppendSleb(body, int64(int32(e.Offset)))
			body = append(body, byte(OpEnd))
			body = AppendUleb(body, uint64(len(e.Funcs)))
			for _, fi := range e.Funcs {
				body = AppendUleb(body, uint64(fi))
			}
		}
		out = appendSection(out, secElem, body)
	}

	// Code section.
	if len(m.Funcs) > 0 {
		var body []byte
		body = AppendUleb(body, uint64(len(m.Funcs)))
		for i := range m.Funcs {
			code := encodeFuncBody(&m.Funcs[i])
			body = AppendUleb(body, uint64(len(code)))
			body = append(body, code...)
		}
		out = appendSection(out, secCode, body)
	}

	// Data section.
	if len(m.Data) > 0 {
		var body []byte
		body = AppendUleb(body, uint64(len(m.Data)))
		for _, d := range m.Data {
			body = AppendUleb(body, 0) // active, memory 0
			body = append(body, byte(OpI32Const))
			body = AppendSleb(body, int64(int32(d.Offset)))
			body = append(body, byte(OpEnd))
			body = AppendUleb(body, uint64(len(d.Bytes)))
			body = append(body, d.Bytes...)
		}
		out = appendSection(out, secData, body)
	}

	// Name section (function names only), for debuggability.
	if hasNames(m) {
		var names []byte
		names = appendName(names, "name")
		var sub []byte
		n := 0
		for i := range m.Funcs {
			if m.Funcs[i].Name != "" {
				n++
			}
			_ = i
		}
		sub = AppendUleb(sub, uint64(n))
		base := uint64(m.NumImportedFuncs())
		for i := range m.Funcs {
			if m.Funcs[i].Name == "" {
				continue
			}
			sub = AppendUleb(sub, base+uint64(i))
			sub = appendName(sub, m.Funcs[i].Name)
		}
		names = append(names, 1) // function names subsection
		names = AppendUleb(names, uint64(len(sub)))
		names = append(names, sub...)
		out = appendSection(out, secCustom, names)
	}

	return out
}

func hasNames(m *Module) bool {
	for i := range m.Funcs {
		if m.Funcs[i].Name != "" {
			return true
		}
	}
	return false
}

func encodeFuncBody(f *Func) []byte {
	var body []byte
	// Run-length compress locals.
	type run struct {
		t ValType
		n uint64
	}
	var runs []run
	for _, l := range f.Locals {
		if len(runs) > 0 && runs[len(runs)-1].t == l {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{l, 1})
		}
	}
	body = AppendUleb(body, uint64(len(runs)))
	for _, r := range runs {
		body = AppendUleb(body, r.n)
		body = append(body, byte(r.t))
	}
	for _, in := range f.Body {
		body = appendInstr(body, in)
	}
	return body
}

func appendInstr(body []byte, in Instr) []byte {
	body = append(body, byte(in.Op))
	switch in.Op.Imm() {
	case ImmNone:
	case ImmBlockType:
		body = append(body, byte(in.A))
	case ImmLabel, ImmFuncIdx, ImmLocalIdx, ImmGlobalIdx:
		body = AppendUleb(body, in.A)
	case ImmBrTable:
		body = AppendUleb(body, uint64(len(in.Table)))
		for _, t := range in.Table {
			body = AppendUleb(body, uint64(t))
		}
		body = AppendUleb(body, in.A)
	case ImmTypeIdx:
		body = AppendUleb(body, in.A)
		body = append(body, 0x00)
	case ImmMemArg:
		body = AppendUleb(body, in.B) // align
		body = AppendUleb(body, in.A) // offset
	case ImmMemIdx:
		body = append(body, 0x00)
	case ImmI32:
		body = AppendSleb(body, int64(int32(uint32(in.A))))
	case ImmI64:
		body = AppendSleb(body, int64(in.A))
	case ImmF32:
		body = binary.LittleEndian.AppendUint32(body, uint32(in.A))
	case ImmF64:
		body = binary.LittleEndian.AppendUint64(body, in.A)
	}
	return body
}

func appendSection(out []byte, id byte, body []byte) []byte {
	out = append(out, id)
	out = AppendUleb(out, uint64(len(body)))
	return append(out, body...)
}

func appendName(out []byte, s string) []byte {
	out = AppendUleb(out, uint64(len(s)))
	return append(out, s...)
}

func appendLimits(out []byte, l Limits) []byte {
	if l.HasMax {
		out = append(out, 0x01)
		out = AppendUleb(out, uint64(l.Min))
		return AppendUleb(out, uint64(l.Max))
	}
	out = append(out, 0x00)
	return AppendUleb(out, uint64(l.Min))
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
