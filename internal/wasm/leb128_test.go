package wasm

import (
	"testing"
	"testing/quick"
)

func TestUlebRoundtrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := AppendUleb(nil, v)
		got, n, err := ReadUleb(enc, 64)
		return err == nil && n == len(enc) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlebRoundtrip(t *testing.T) {
	f := func(v int64) bool {
		enc := AppendSleb(nil, v)
		got, n, err := ReadSleb(enc, 64)
		return err == nil && n == len(enc) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUleb32Roundtrip(t *testing.T) {
	f := func(v uint32) bool {
		enc := AppendUleb(nil, uint64(v))
		got, n, err := ReadUleb(enc, 32)
		return err == nil && n == len(enc) && got == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSleb32Roundtrip(t *testing.T) {
	f := func(v int32) bool {
		enc := AppendSleb(nil, int64(v))
		got, n, err := ReadSleb(enc, 32)
		return err == nil && n == len(enc) && got == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUlebKnownEncodings(t *testing.T) {
	cases := []struct {
		v   uint64
		enc []byte
	}{
		{0, []byte{0x00}},
		{1, []byte{0x01}},
		{127, []byte{0x7F}},
		{128, []byte{0x80, 0x01}},
		{624485, []byte{0xE5, 0x8E, 0x26}},
	}
	for _, c := range cases {
		got := AppendUleb(nil, c.v)
		if string(got) != string(c.enc) {
			t.Errorf("AppendUleb(%d) = %x, want %x", c.v, got, c.enc)
		}
	}
}

func TestSlebKnownEncodings(t *testing.T) {
	cases := []struct {
		v   int64
		enc []byte
	}{
		{0, []byte{0x00}},
		{-1, []byte{0x7F}},
		{63, []byte{0x3F}},
		{64, []byte{0xC0, 0x00}},
		{-64, []byte{0x40}},
		{-65, []byte{0xBF, 0x7F}},
		{-123456, []byte{0xC0, 0xBB, 0x78}},
	}
	for _, c := range cases {
		got := AppendSleb(nil, c.v)
		if string(got) != string(c.enc) {
			t.Errorf("AppendSleb(%d) = %x, want %x", c.v, got, c.enc)
		}
	}
}

func TestUlebTruncated(t *testing.T) {
	if _, _, err := ReadUleb([]byte{0x80}, 32); err == nil {
		t.Error("truncated uleb accepted")
	}
	if _, _, err := ReadUleb(nil, 32); err == nil {
		t.Error("empty uleb accepted")
	}
	// 6 continuation bytes exceed the 32-bit budget of 5.
	if _, _, err := ReadUleb([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 32); err == nil {
		t.Error("overlong uleb32 accepted")
	}
}

func TestSlebTruncated(t *testing.T) {
	if _, _, err := ReadSleb([]byte{0xFF}, 64); err == nil {
		t.Error("truncated sleb accepted")
	}
}
