package wasm

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestRandomModuleRoundtrip builds random (valid) modules and checks that
// encode→decode→encode is a fixed point.
func TestRandomModuleRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	valTypes := []ValType{I32, I64, F32, F64}
	for trial := 0; trial < 50; trial++ {
		b := NewModuleBuilder()
		// Random imports.
		nImp := rng.Intn(3)
		for i := 0; i < nImp; i++ {
			ft := randType(rng, valTypes)
			b.ImportFunc("env", "f"+string(rune('a'+i)), ft)
		}
		if rng.Intn(2) == 0 {
			b.AddMemory(uint32(rng.Intn(4)+1), 16)
		}
		nGlob := rng.Intn(3)
		for i := 0; i < nGlob; i++ {
			b.AddGlobal(valTypes[rng.Intn(4)], rng.Intn(2) == 0, rng.Uint64())
		}
		// Random straight-line functions.
		nFn := rng.Intn(4) + 1
		for i := 0; i < nFn; i++ {
			ft := FuncType{Params: randParams(rng, valTypes), Results: []ValType{I64}}
			f := b.NewFunc("", ft)
			f.I64Const(int64(rng.Uint64()))
			for k := rng.Intn(8); k > 0; k-- {
				f.I64Const(int64(rng.Uint64()))
				f.Op([]Opcode{OpI64Add, OpI64Sub, OpI64Mul, OpI64Xor, OpI64And, OpI64Or}[rng.Intn(6)])
			}
			if i == 0 {
				b.Export("entry", ExternFunc, f.Index)
			}
		}
		bin1 := b.Bytes()
		m, err := Decode(bin1)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if err := Validate(m); err != nil {
			t.Fatalf("trial %d: validate: %v", trial, err)
		}
		bin2 := Encode(m)
		m2, err := Decode(bin2)
		if err != nil {
			t.Fatalf("trial %d: re-decode: %v", trial, err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("trial %d: decode(encode(m)) != m", trial)
		}
	}
}

func randParams(rng *rand.Rand, vt []ValType) []ValType {
	n := rng.Intn(4)
	out := make([]ValType, n)
	for i := range out {
		out[i] = vt[rng.Intn(len(vt))]
	}
	return out
}

func randType(rng *rand.Rand, vt []ValType) FuncType {
	var res []ValType
	if rng.Intn(2) == 0 {
		res = []ValType{vt[rng.Intn(len(vt))]}
	}
	return FuncType{Params: randParams(rng, vt), Results: res}
}

// TestValidatorAgainstMutations flips random bytes in a valid module and
// checks that decode+validate never panics (they may legitimately accept
// semantically different but well-formed mutations).
func TestValidatorAgainstMutations(t *testing.T) {
	base := buildTestModule().Bytes()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), base...)
		for k := rng.Intn(3) + 1; k > 0; k-- {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on mutated module: %v", trial, r)
				}
			}()
			if m, err := Decode(mut); err == nil {
				_ = Validate(m) // must not panic either
			}
		}()
	}
}
