package wasm

// InOut returns the operand counts (popped, pushed) for instructions with a
// fixed signature. It reports ok=false for control, call, and parametric
// instructions whose effect depends on context; compilers handle those
// explicitly.
func (op Opcode) InOut() (in, out int, ok bool) {
	s, ok := simpleSigs[op]
	if !ok {
		return 0, 0, false
	}
	return len(s.in), len(s.out), true
}

// ResultType returns the type an instruction with a fixed signature pushes,
// if it pushes exactly one value.
func (op Opcode) ResultType() (ValType, bool) {
	s, ok := simpleSigs[op]
	if !ok || len(s.out) != 1 {
		return 0, false
	}
	return s.out[0], true
}
