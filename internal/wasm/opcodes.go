package wasm

// Opcode is a single-byte WebAssembly MVP opcode.
type Opcode byte

// Control instructions.
const (
	OpUnreachable  Opcode = 0x00
	OpNop          Opcode = 0x01
	OpBlock        Opcode = 0x02
	OpLoop         Opcode = 0x03
	OpIf           Opcode = 0x04
	OpElse         Opcode = 0x05
	OpEnd          Opcode = 0x0B
	OpBr           Opcode = 0x0C
	OpBrIf         Opcode = 0x0D
	OpBrTable      Opcode = 0x0E
	OpReturn       Opcode = 0x0F
	OpCall         Opcode = 0x10
	OpCallIndirect Opcode = 0x11
)

// Parametric instructions.
const (
	OpDrop   Opcode = 0x1A
	OpSelect Opcode = 0x1B
)

// Variable instructions.
const (
	OpLocalGet  Opcode = 0x20
	OpLocalSet  Opcode = 0x21
	OpLocalTee  Opcode = 0x22
	OpGlobalGet Opcode = 0x23
	OpGlobalSet Opcode = 0x24
)

// Memory instructions.
const (
	OpI32Load    Opcode = 0x28
	OpI64Load    Opcode = 0x29
	OpF32Load    Opcode = 0x2A
	OpF64Load    Opcode = 0x2B
	OpI32Load8S  Opcode = 0x2C
	OpI32Load8U  Opcode = 0x2D
	OpI32Load16S Opcode = 0x2E
	OpI32Load16U Opcode = 0x2F
	OpI64Load8S  Opcode = 0x30
	OpI64Load8U  Opcode = 0x31
	OpI64Load16S Opcode = 0x32
	OpI64Load16U Opcode = 0x33
	OpI64Load32S Opcode = 0x34
	OpI64Load32U Opcode = 0x35
	OpI32Store   Opcode = 0x36
	OpI64Store   Opcode = 0x37
	OpF32Store   Opcode = 0x38
	OpF64Store   Opcode = 0x39
	OpI32Store8  Opcode = 0x3A
	OpI32Store16 Opcode = 0x3B
	OpI64Store8  Opcode = 0x3C
	OpI64Store16 Opcode = 0x3D
	OpI64Store32 Opcode = 0x3E
	OpMemorySize Opcode = 0x3F
	OpMemoryGrow Opcode = 0x40
)

// Constant instructions.
const (
	OpI32Const Opcode = 0x41
	OpI64Const Opcode = 0x42
	OpF32Const Opcode = 0x43
	OpF64Const Opcode = 0x44
)

// i32 comparison instructions.
const (
	OpI32Eqz Opcode = 0x45
	OpI32Eq  Opcode = 0x46
	OpI32Ne  Opcode = 0x47
	OpI32LtS Opcode = 0x48
	OpI32LtU Opcode = 0x49
	OpI32GtS Opcode = 0x4A
	OpI32GtU Opcode = 0x4B
	OpI32LeS Opcode = 0x4C
	OpI32LeU Opcode = 0x4D
	OpI32GeS Opcode = 0x4E
	OpI32GeU Opcode = 0x4F
)

// i64 comparison instructions.
const (
	OpI64Eqz Opcode = 0x50
	OpI64Eq  Opcode = 0x51
	OpI64Ne  Opcode = 0x52
	OpI64LtS Opcode = 0x53
	OpI64LtU Opcode = 0x54
	OpI64GtS Opcode = 0x55
	OpI64GtU Opcode = 0x56
	OpI64LeS Opcode = 0x57
	OpI64LeU Opcode = 0x58
	OpI64GeS Opcode = 0x59
	OpI64GeU Opcode = 0x5A
)

// f32 comparison instructions.
const (
	OpF32Eq Opcode = 0x5B
	OpF32Ne Opcode = 0x5C
	OpF32Lt Opcode = 0x5D
	OpF32Gt Opcode = 0x5E
	OpF32Le Opcode = 0x5F
	OpF32Ge Opcode = 0x60
)

// f64 comparison instructions.
const (
	OpF64Eq Opcode = 0x61
	OpF64Ne Opcode = 0x62
	OpF64Lt Opcode = 0x63
	OpF64Gt Opcode = 0x64
	OpF64Le Opcode = 0x65
	OpF64Ge Opcode = 0x66
)

// i32 numeric instructions.
const (
	OpI32Clz    Opcode = 0x67
	OpI32Ctz    Opcode = 0x68
	OpI32Popcnt Opcode = 0x69
	OpI32Add    Opcode = 0x6A
	OpI32Sub    Opcode = 0x6B
	OpI32Mul    Opcode = 0x6C
	OpI32DivS   Opcode = 0x6D
	OpI32DivU   Opcode = 0x6E
	OpI32RemS   Opcode = 0x6F
	OpI32RemU   Opcode = 0x70
	OpI32And    Opcode = 0x71
	OpI32Or     Opcode = 0x72
	OpI32Xor    Opcode = 0x73
	OpI32Shl    Opcode = 0x74
	OpI32ShrS   Opcode = 0x75
	OpI32ShrU   Opcode = 0x76
	OpI32Rotl   Opcode = 0x77
	OpI32Rotr   Opcode = 0x78
)

// i64 numeric instructions.
const (
	OpI64Clz    Opcode = 0x79
	OpI64Ctz    Opcode = 0x7A
	OpI64Popcnt Opcode = 0x7B
	OpI64Add    Opcode = 0x7C
	OpI64Sub    Opcode = 0x7D
	OpI64Mul    Opcode = 0x7E
	OpI64DivS   Opcode = 0x7F
	OpI64DivU   Opcode = 0x80
	OpI64RemS   Opcode = 0x81
	OpI64RemU   Opcode = 0x82
	OpI64And    Opcode = 0x83
	OpI64Or     Opcode = 0x84
	OpI64Xor    Opcode = 0x85
	OpI64Shl    Opcode = 0x86
	OpI64ShrS   Opcode = 0x87
	OpI64ShrU   Opcode = 0x88
	OpI64Rotl   Opcode = 0x89
	OpI64Rotr   Opcode = 0x8A
)

// f32 numeric instructions.
const (
	OpF32Abs      Opcode = 0x8B
	OpF32Neg      Opcode = 0x8C
	OpF32Ceil     Opcode = 0x8D
	OpF32Floor    Opcode = 0x8E
	OpF32Trunc    Opcode = 0x8F
	OpF32Nearest  Opcode = 0x90
	OpF32Sqrt     Opcode = 0x91
	OpF32Add      Opcode = 0x92
	OpF32Sub      Opcode = 0x93
	OpF32Mul      Opcode = 0x94
	OpF32Div      Opcode = 0x95
	OpF32Min      Opcode = 0x96
	OpF32Max      Opcode = 0x97
	OpF32Copysign Opcode = 0x98
)

// f64 numeric instructions.
const (
	OpF64Abs      Opcode = 0x99
	OpF64Neg      Opcode = 0x9A
	OpF64Ceil     Opcode = 0x9B
	OpF64Floor    Opcode = 0x9C
	OpF64Trunc    Opcode = 0x9D
	OpF64Nearest  Opcode = 0x9E
	OpF64Sqrt     Opcode = 0x9F
	OpF64Add      Opcode = 0xA0
	OpF64Sub      Opcode = 0xA1
	OpF64Mul      Opcode = 0xA2
	OpF64Div      Opcode = 0xA3
	OpF64Min      Opcode = 0xA4
	OpF64Max      Opcode = 0xA5
	OpF64Copysign Opcode = 0xA6
)

// Conversion instructions.
const (
	OpI32WrapI64        Opcode = 0xA7
	OpI32TruncF32S      Opcode = 0xA8
	OpI32TruncF32U      Opcode = 0xA9
	OpI32TruncF64S      Opcode = 0xAA
	OpI32TruncF64U      Opcode = 0xAB
	OpI64ExtendI32S     Opcode = 0xAC
	OpI64ExtendI32U     Opcode = 0xAD
	OpI64TruncF32S      Opcode = 0xAE
	OpI64TruncF32U      Opcode = 0xAF
	OpI64TruncF64S      Opcode = 0xB0
	OpI64TruncF64U      Opcode = 0xB1
	OpF32ConvertI32S    Opcode = 0xB2
	OpF32ConvertI32U    Opcode = 0xB3
	OpF32ConvertI64S    Opcode = 0xB4
	OpF32ConvertI64U    Opcode = 0xB5
	OpF32DemoteF64      Opcode = 0xB6
	OpF64ConvertI32S    Opcode = 0xB7
	OpF64ConvertI32U    Opcode = 0xB8
	OpF64ConvertI64S    Opcode = 0xB9
	OpF64ConvertI64U    Opcode = 0xBA
	OpF64PromoteF32     Opcode = 0xBB
	OpI32ReinterpretF32 Opcode = 0xBC
	OpI64ReinterpretF64 Opcode = 0xBD
	OpF32ReinterpretI32 Opcode = 0xBE
	OpF64ReinterpretI64 Opcode = 0xBF
)

// Sign-extension instructions (post-MVP but universally supported).
const (
	OpI32Extend8S  Opcode = 0xC0
	OpI32Extend16S Opcode = 0xC1
	OpI64Extend8S  Opcode = 0xC2
	OpI64Extend16S Opcode = 0xC3
	OpI64Extend32S Opcode = 0xC4
)

// ImmKind classifies the immediate operands an opcode carries in the binary
// format, driving both the decoder and the encoder.
type ImmKind byte

const (
	ImmNone      ImmKind = iota
	ImmBlockType         // block, loop, if
	ImmLabel             // br, br_if: a uleb label index
	ImmBrTable           // br_table: vector of labels + default
	ImmFuncIdx           // call
	ImmTypeIdx           // call_indirect: type index + 0x00 table byte
	ImmLocalIdx          // local.get/set/tee
	ImmGlobalIdx         // global.get/set
	ImmMemArg            // loads/stores: align + offset ulebs
	ImmMemIdx            // memory.size/grow: single 0x00 byte
	ImmI32               // i32.const: sleb32
	ImmI64               // i64.const: sleb64
	ImmF32               // f32.const: 4 bytes
	ImmF64               // f64.const: 8 bytes
)

type opInfo struct {
	name string
	imm  ImmKind
}

var opTable = [256]opInfo{
	OpUnreachable:  {"unreachable", ImmNone},
	OpNop:          {"nop", ImmNone},
	OpBlock:        {"block", ImmBlockType},
	OpLoop:         {"loop", ImmBlockType},
	OpIf:           {"if", ImmBlockType},
	OpElse:         {"else", ImmNone},
	OpEnd:          {"end", ImmNone},
	OpBr:           {"br", ImmLabel},
	OpBrIf:         {"br_if", ImmLabel},
	OpBrTable:      {"br_table", ImmBrTable},
	OpReturn:       {"return", ImmNone},
	OpCall:         {"call", ImmFuncIdx},
	OpCallIndirect: {"call_indirect", ImmTypeIdx},

	OpDrop:   {"drop", ImmNone},
	OpSelect: {"select", ImmNone},

	OpLocalGet:  {"local.get", ImmLocalIdx},
	OpLocalSet:  {"local.set", ImmLocalIdx},
	OpLocalTee:  {"local.tee", ImmLocalIdx},
	OpGlobalGet: {"global.get", ImmGlobalIdx},
	OpGlobalSet: {"global.set", ImmGlobalIdx},

	OpI32Load:    {"i32.load", ImmMemArg},
	OpI64Load:    {"i64.load", ImmMemArg},
	OpF32Load:    {"f32.load", ImmMemArg},
	OpF64Load:    {"f64.load", ImmMemArg},
	OpI32Load8S:  {"i32.load8_s", ImmMemArg},
	OpI32Load8U:  {"i32.load8_u", ImmMemArg},
	OpI32Load16S: {"i32.load16_s", ImmMemArg},
	OpI32Load16U: {"i32.load16_u", ImmMemArg},
	OpI64Load8S:  {"i64.load8_s", ImmMemArg},
	OpI64Load8U:  {"i64.load8_u", ImmMemArg},
	OpI64Load16S: {"i64.load16_s", ImmMemArg},
	OpI64Load16U: {"i64.load16_u", ImmMemArg},
	OpI64Load32S: {"i64.load32_s", ImmMemArg},
	OpI64Load32U: {"i64.load32_u", ImmMemArg},
	OpI32Store:   {"i32.store", ImmMemArg},
	OpI64Store:   {"i64.store", ImmMemArg},
	OpF32Store:   {"f32.store", ImmMemArg},
	OpF64Store:   {"f64.store", ImmMemArg},
	OpI32Store8:  {"i32.store8", ImmMemArg},
	OpI32Store16: {"i32.store16", ImmMemArg},
	OpI64Store8:  {"i64.store8", ImmMemArg},
	OpI64Store16: {"i64.store16", ImmMemArg},
	OpI64Store32: {"i64.store32", ImmMemArg},
	OpMemorySize: {"memory.size", ImmMemIdx},
	OpMemoryGrow: {"memory.grow", ImmMemIdx},

	OpI32Const: {"i32.const", ImmI32},
	OpI64Const: {"i64.const", ImmI64},
	OpF32Const: {"f32.const", ImmF32},
	OpF64Const: {"f64.const", ImmF64},

	OpI32Eqz: {"i32.eqz", ImmNone},
	OpI32Eq:  {"i32.eq", ImmNone},
	OpI32Ne:  {"i32.ne", ImmNone},
	OpI32LtS: {"i32.lt_s", ImmNone},
	OpI32LtU: {"i32.lt_u", ImmNone},
	OpI32GtS: {"i32.gt_s", ImmNone},
	OpI32GtU: {"i32.gt_u", ImmNone},
	OpI32LeS: {"i32.le_s", ImmNone},
	OpI32LeU: {"i32.le_u", ImmNone},
	OpI32GeS: {"i32.ge_s", ImmNone},
	OpI32GeU: {"i32.ge_u", ImmNone},

	OpI64Eqz: {"i64.eqz", ImmNone},
	OpI64Eq:  {"i64.eq", ImmNone},
	OpI64Ne:  {"i64.ne", ImmNone},
	OpI64LtS: {"i64.lt_s", ImmNone},
	OpI64LtU: {"i64.lt_u", ImmNone},
	OpI64GtS: {"i64.gt_s", ImmNone},
	OpI64GtU: {"i64.gt_u", ImmNone},
	OpI64LeS: {"i64.le_s", ImmNone},
	OpI64LeU: {"i64.le_u", ImmNone},
	OpI64GeS: {"i64.ge_s", ImmNone},
	OpI64GeU: {"i64.ge_u", ImmNone},

	OpF32Eq: {"f32.eq", ImmNone},
	OpF32Ne: {"f32.ne", ImmNone},
	OpF32Lt: {"f32.lt", ImmNone},
	OpF32Gt: {"f32.gt", ImmNone},
	OpF32Le: {"f32.le", ImmNone},
	OpF32Ge: {"f32.ge", ImmNone},

	OpF64Eq: {"f64.eq", ImmNone},
	OpF64Ne: {"f64.ne", ImmNone},
	OpF64Lt: {"f64.lt", ImmNone},
	OpF64Gt: {"f64.gt", ImmNone},
	OpF64Le: {"f64.le", ImmNone},
	OpF64Ge: {"f64.ge", ImmNone},

	OpI32Clz:    {"i32.clz", ImmNone},
	OpI32Ctz:    {"i32.ctz", ImmNone},
	OpI32Popcnt: {"i32.popcnt", ImmNone},
	OpI32Add:    {"i32.add", ImmNone},
	OpI32Sub:    {"i32.sub", ImmNone},
	OpI32Mul:    {"i32.mul", ImmNone},
	OpI32DivS:   {"i32.div_s", ImmNone},
	OpI32DivU:   {"i32.div_u", ImmNone},
	OpI32RemS:   {"i32.rem_s", ImmNone},
	OpI32RemU:   {"i32.rem_u", ImmNone},
	OpI32And:    {"i32.and", ImmNone},
	OpI32Or:     {"i32.or", ImmNone},
	OpI32Xor:    {"i32.xor", ImmNone},
	OpI32Shl:    {"i32.shl", ImmNone},
	OpI32ShrS:   {"i32.shr_s", ImmNone},
	OpI32ShrU:   {"i32.shr_u", ImmNone},
	OpI32Rotl:   {"i32.rotl", ImmNone},
	OpI32Rotr:   {"i32.rotr", ImmNone},

	OpI64Clz:    {"i64.clz", ImmNone},
	OpI64Ctz:    {"i64.ctz", ImmNone},
	OpI64Popcnt: {"i64.popcnt", ImmNone},
	OpI64Add:    {"i64.add", ImmNone},
	OpI64Sub:    {"i64.sub", ImmNone},
	OpI64Mul:    {"i64.mul", ImmNone},
	OpI64DivS:   {"i64.div_s", ImmNone},
	OpI64DivU:   {"i64.div_u", ImmNone},
	OpI64RemS:   {"i64.rem_s", ImmNone},
	OpI64RemU:   {"i64.rem_u", ImmNone},
	OpI64And:    {"i64.and", ImmNone},
	OpI64Or:     {"i64.or", ImmNone},
	OpI64Xor:    {"i64.xor", ImmNone},
	OpI64Shl:    {"i64.shl", ImmNone},
	OpI64ShrS:   {"i64.shr_s", ImmNone},
	OpI64ShrU:   {"i64.shr_u", ImmNone},
	OpI64Rotl:   {"i64.rotl", ImmNone},
	OpI64Rotr:   {"i64.rotr", ImmNone},

	OpF32Abs:      {"f32.abs", ImmNone},
	OpF32Neg:      {"f32.neg", ImmNone},
	OpF32Ceil:     {"f32.ceil", ImmNone},
	OpF32Floor:    {"f32.floor", ImmNone},
	OpF32Trunc:    {"f32.trunc", ImmNone},
	OpF32Nearest:  {"f32.nearest", ImmNone},
	OpF32Sqrt:     {"f32.sqrt", ImmNone},
	OpF32Add:      {"f32.add", ImmNone},
	OpF32Sub:      {"f32.sub", ImmNone},
	OpF32Mul:      {"f32.mul", ImmNone},
	OpF32Div:      {"f32.div", ImmNone},
	OpF32Min:      {"f32.min", ImmNone},
	OpF32Max:      {"f32.max", ImmNone},
	OpF32Copysign: {"f32.copysign", ImmNone},

	OpF64Abs:      {"f64.abs", ImmNone},
	OpF64Neg:      {"f64.neg", ImmNone},
	OpF64Ceil:     {"f64.ceil", ImmNone},
	OpF64Floor:    {"f64.floor", ImmNone},
	OpF64Trunc:    {"f64.trunc", ImmNone},
	OpF64Nearest:  {"f64.nearest", ImmNone},
	OpF64Sqrt:     {"f64.sqrt", ImmNone},
	OpF64Add:      {"f64.add", ImmNone},
	OpF64Sub:      {"f64.sub", ImmNone},
	OpF64Mul:      {"f64.mul", ImmNone},
	OpF64Div:      {"f64.div", ImmNone},
	OpF64Min:      {"f64.min", ImmNone},
	OpF64Max:      {"f64.max", ImmNone},
	OpF64Copysign: {"f64.copysign", ImmNone},

	OpI32WrapI64:        {"i32.wrap_i64", ImmNone},
	OpI32TruncF32S:      {"i32.trunc_f32_s", ImmNone},
	OpI32TruncF32U:      {"i32.trunc_f32_u", ImmNone},
	OpI32TruncF64S:      {"i32.trunc_f64_s", ImmNone},
	OpI32TruncF64U:      {"i32.trunc_f64_u", ImmNone},
	OpI64ExtendI32S:     {"i64.extend_i32_s", ImmNone},
	OpI64ExtendI32U:     {"i64.extend_i32_u", ImmNone},
	OpI64TruncF32S:      {"i64.trunc_f32_s", ImmNone},
	OpI64TruncF32U:      {"i64.trunc_f32_u", ImmNone},
	OpI64TruncF64S:      {"i64.trunc_f64_s", ImmNone},
	OpI64TruncF64U:      {"i64.trunc_f64_u", ImmNone},
	OpF32ConvertI32S:    {"f32.convert_i32_s", ImmNone},
	OpF32ConvertI32U:    {"f32.convert_i32_u", ImmNone},
	OpF32ConvertI64S:    {"f32.convert_i64_s", ImmNone},
	OpF32ConvertI64U:    {"f32.convert_i64_u", ImmNone},
	OpF32DemoteF64:      {"f32.demote_f64", ImmNone},
	OpF64ConvertI32S:    {"f64.convert_i32_s", ImmNone},
	OpF64ConvertI32U:    {"f64.convert_i32_u", ImmNone},
	OpF64ConvertI64S:    {"f64.convert_i64_s", ImmNone},
	OpF64ConvertI64U:    {"f64.convert_i64_u", ImmNone},
	OpF64PromoteF32:     {"f64.promote_f32", ImmNone},
	OpI32ReinterpretF32: {"i32.reinterpret_f32", ImmNone},
	OpI64ReinterpretF64: {"i64.reinterpret_f64", ImmNone},
	OpF32ReinterpretI32: {"f32.reinterpret_i32", ImmNone},
	OpF64ReinterpretI64: {"f64.reinterpret_i64", ImmNone},

	OpI32Extend8S:  {"i32.extend8_s", ImmNone},
	OpI32Extend16S: {"i32.extend16_s", ImmNone},
	OpI64Extend8S:  {"i64.extend8_s", ImmNone},
	OpI64Extend16S: {"i64.extend16_s", ImmNone},
	OpI64Extend32S: {"i64.extend32_s", ImmNone},
}

// String returns the text-format mnemonic of the opcode.
func (op Opcode) String() string {
	info := opTable[op]
	if info.name == "" {
		return "invalid"
	}
	return info.name
}

// Imm returns the kind of immediate operands the opcode carries.
func (op Opcode) Imm() ImmKind { return opTable[op].imm }

// Known reports whether op is a defined opcode.
func (op Opcode) Known() bool { return opTable[op].name != "" }

// Instr is a single decoded instruction. Immediate operands are packed into
// A and B depending on the opcode's ImmKind:
//
//	ImmBlockType: A = block type byte
//	ImmLabel, ImmFuncIdx, ImmLocalIdx, ImmGlobalIdx: A = index
//	ImmTypeIdx:  A = type index
//	ImmMemArg:   A = offset, B = align (log2)
//	ImmI32:      A = sign-extended value as uint64
//	ImmI64:      A = value as uint64
//	ImmF32:      A = 32 raw bits
//	ImmF64:      A = 64 raw bits
//	ImmBrTable:  Table = targets, A = default label
type Instr struct {
	Op    Opcode
	A, B  uint64
	Table []uint32
}
