package wasm

import (
	"fmt"
	"math"
	"strings"
)

// Print renders the module in a WAT-like text format, primarily for
// debugging and for the examples/adhoc demo that dumps the Wasm generated
// for a query. The output is close to canonical WAT but not guaranteed to be
// round-trippable.
func Print(m *Module) string {
	var b strings.Builder
	b.WriteString("(module\n")
	for i, t := range m.Types {
		fmt.Fprintf(&b, "  (type (;%d;) %s)\n", i, t)
	}
	for _, im := range m.Imports {
		switch im.Kind {
		case ExternFunc:
			fmt.Fprintf(&b, "  (import %q %q %s)\n", im.Module, im.Name, m.Types[im.Type])
		case ExternMemory:
			fmt.Fprintf(&b, "  (import %q %q (memory %d", im.Module, im.Name, im.Mem.Min)
			if im.Mem.HasMax {
				fmt.Fprintf(&b, " %d", im.Mem.Max)
			}
			b.WriteString("))\n")
		case ExternGlobal:
			fmt.Fprintf(&b, "  (import %q %q (global %s))\n", im.Module, im.Name, im.Global.Type)
		case ExternTable:
			fmt.Fprintf(&b, "  (import %q %q (table %d funcref))\n", im.Module, im.Name, im.Table.Min)
		}
	}
	if m.HasMemory {
		fmt.Fprintf(&b, "  (memory %d", m.Memory.Min)
		if m.Memory.HasMax {
			fmt.Fprintf(&b, " %d", m.Memory.Max)
		}
		b.WriteString(")\n")
	}
	if m.HasTable {
		fmt.Fprintf(&b, "  (table %d funcref)\n", m.TableMin)
	}
	for i, g := range m.Globals {
		mut := g.Type.Type.String()
		if g.Type.Mutable {
			mut = "(mut " + mut + ")"
		}
		fmt.Fprintf(&b, "  (global (;%d;) %s %s)\n", i, mut, constString(g.Type.Type, g.Init))
	}
	base := m.NumImportedFuncs()
	for i := range m.Funcs {
		printFunc(&b, m, base+i, &m.Funcs[i])
	}
	for _, e := range m.Exports {
		fmt.Fprintf(&b, "  (export %q (%s %d))\n", e.Name, e.Kind, e.Index)
	}
	for _, d := range m.Data {
		fmt.Fprintf(&b, "  (data (i32.const %d) ;; %d bytes\n  )\n", d.Offset, len(d.Bytes))
	}
	b.WriteString(")\n")
	return b.String()
}

func constString(t ValType, bits uint64) string {
	switch t {
	case I32:
		return fmt.Sprintf("(i32.const %d)", int32(uint32(bits)))
	case I64:
		return fmt.Sprintf("(i64.const %d)", int64(bits))
	case F32:
		return fmt.Sprintf("(f32.const %v)", math.Float32frombits(uint32(bits)))
	case F64:
		return fmt.Sprintf("(f64.const %v)", math.Float64frombits(bits))
	}
	return "?"
}

func printFunc(b *strings.Builder, m *Module, idx int, f *Func) {
	ft := m.Types[f.Type]
	fmt.Fprintf(b, "  (func (;%d;)", idx)
	if f.Name != "" {
		fmt.Fprintf(b, " $%s", f.Name)
	}
	for _, p := range ft.Params {
		fmt.Fprintf(b, " (param %s)", p)
	}
	for _, r := range ft.Results {
		fmt.Fprintf(b, " (result %s)", r)
	}
	b.WriteString("\n")
	if len(f.Locals) > 0 {
		b.WriteString("    (local")
		for _, l := range f.Locals {
			b.WriteString(" " + l.String())
		}
		b.WriteString(")\n")
	}
	indent := 2
	for i, in := range f.Body {
		if i == len(f.Body)-1 && in.Op == OpEnd {
			break // implicit function-closing end
		}
		switch in.Op {
		case OpEnd, OpElse:
			indent--
		}
		if indent < 1 {
			indent = 1
		}
		b.WriteString(strings.Repeat("  ", indent+1))
		b.WriteString(instrString(in))
		b.WriteString("\n")
		switch in.Op {
		case OpBlock, OpLoop, OpIf, OpElse:
			indent++
		}
	}
	b.WriteString("  )\n")
}

func instrString(in Instr) string {
	switch in.Op.Imm() {
	case ImmNone:
		return in.Op.String()
	case ImmBlockType:
		return in.Op.String() + BlockType(in.A).String()
	case ImmLabel, ImmFuncIdx, ImmLocalIdx, ImmGlobalIdx:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case ImmBrTable:
		s := in.Op.String()
		for _, t := range in.Table {
			s += fmt.Sprintf(" %d", t)
		}
		return s + fmt.Sprintf(" %d", in.A)
	case ImmTypeIdx:
		return fmt.Sprintf("%s (type %d)", in.Op, in.A)
	case ImmMemArg:
		if in.A == 0 {
			return in.Op.String()
		}
		return fmt.Sprintf("%s offset=%d", in.Op, in.A)
	case ImmMemIdx:
		return in.Op.String()
	case ImmI32:
		return fmt.Sprintf("%s %d", in.Op, int32(uint32(in.A)))
	case ImmI64:
		return fmt.Sprintf("%s %d", in.Op, int64(in.A))
	case ImmF32:
		return fmt.Sprintf("%s %v", in.Op, math.Float32frombits(uint32(in.A)))
	case ImmF64:
		return fmt.Sprintf("%s %v", in.Op, math.Float64frombits(in.A))
	}
	return in.Op.String()
}
