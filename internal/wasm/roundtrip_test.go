package wasm

import (
	"reflect"
	"strings"
	"testing"
)

// buildTestModule constructs a module exercising most builder features:
// imports, memory, globals, control flow, memory ops, calls, and exports.
func buildTestModule() *ModuleBuilder {
	b := NewModuleBuilder()
	logIdx := b.ImportFunc("env", "log", FuncType{Params: []ValType{I32}})
	b.ImportMemory("env", "memory", 1, 16)
	gCounter := b.AddGlobal(I32, true, 0)

	// add(a, b) = a + b
	add := b.NewFunc("add", FuncType{Params: []ValType{I32, I32}, Results: []ValType{I32}})
	add.LocalGet(add.Param(0))
	add.LocalGet(add.Param(1))
	add.I32Add()

	// sumTo(n): loop accumulating 1..n, calls log(n), bumps global.
	f := b.NewFunc("sumTo", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	acc := f.AddLocal(I32)
	i := f.AddLocal(I32)
	f.LocalGet(f.Param(0))
	f.Call(logIdx)
	f.GlobalGet(gCounter)
	f.I32Const(1)
	f.I32Add()
	f.GlobalSet(gCounter)
	f.Block(BlockVoid)
	f.Loop(BlockVoid)
	f.LocalGet(i)
	f.LocalGet(f.Param(0))
	f.Op(OpI32GeS)
	f.BrIf(1)
	f.LocalGet(i)
	f.I32Const(1)
	f.I32Add()
	f.LocalTee(i)
	f.LocalGet(acc)
	f.I32Add()
	f.LocalSet(acc)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(acc)

	// store/load roundtrip through memory.
	g := b.NewFunc("mem", FuncType{Params: []ValType{I32, I64}, Results: []ValType{I64}})
	g.LocalGet(g.Param(0))
	g.LocalGet(g.Param(1))
	g.I64Store(8)
	g.LocalGet(g.Param(0))
	g.I64Load(8)

	b.Export("add", ExternFunc, add.Index)
	b.Export("sumTo", ExternFunc, f.Index)
	b.Export("mem", ExternFunc, g.Index)
	b.AddData(64, []byte("hello wasm"))
	return b
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	b := buildTestModule()
	m1 := b.Module()
	bytes1 := Encode(m1)

	m2, err := Decode(bytes1)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := Validate(m2); err != nil {
		t.Fatalf("Validate decoded: %v", err)
	}

	// Structural comparison (names are not decoded; clear them).
	m1c := *m1
	m1c.Funcs = append([]Func(nil), m1.Funcs...)
	for i := range m1c.Funcs {
		m1c.Funcs[i].Name = ""
	}
	if !reflect.DeepEqual(m1c.Types, m2.Types) {
		t.Errorf("types differ: %v vs %v", m1c.Types, m2.Types)
	}
	if !reflect.DeepEqual(m1c.Imports, m2.Imports) {
		t.Errorf("imports differ")
	}
	if len(m1c.Funcs) != len(m2.Funcs) {
		t.Fatalf("func count differs: %d vs %d", len(m1c.Funcs), len(m2.Funcs))
	}
	for i := range m1c.Funcs {
		f1, f2 := m1c.Funcs[i], m2.Funcs[i]
		if f1.Type != f2.Type || !reflect.DeepEqual(f1.Locals, f2.Locals) {
			t.Errorf("func %d header differs", i)
		}
		if !reflect.DeepEqual(f1.Body, f2.Body) {
			t.Errorf("func %d body differs:\n%v\nvs\n%v", i, f1.Body, f2.Body)
		}
	}
	if !reflect.DeepEqual(m1c.Exports, m2.Exports) {
		t.Errorf("exports differ")
	}
	if !reflect.DeepEqual(m1c.Globals, m2.Globals) {
		t.Errorf("globals differ")
	}
	if !reflect.DeepEqual(m1c.Data, m2.Data) {
		t.Errorf("data differs")
	}

	// Re-encoding the decoded module must be byte-identical modulo the name
	// section, which the decoder drops.
	bytes2 := Encode(m2)
	stripped := Encode(&m1c)
	if string(bytes2) != string(stripped) {
		t.Errorf("re-encoded bytes differ (%d vs %d bytes)", len(bytes2), len(stripped))
	}
}

func TestValidateBuiltModule(t *testing.T) {
	m := buildTestModule().Module()
	if err := Validate(m); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		[]byte("not a wasm module"),
		{0x00, 0x61, 0x73, 0x6D, 0x02, 0x00, 0x00, 0x00},       // bad version
		{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00, 0xFF}, // bad section
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeRejectsTruncatedModule(t *testing.T) {
	full := buildTestModule().Bytes()
	for n := 9; n < len(full); n += 7 {
		if _, err := Decode(full[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestWATPrint(t *testing.T) {
	m := buildTestModule().Module()
	s := Print(m)
	for _, want := range []string{"(module", "i32.add", "loop", "br_if 1", "(export \"sumTo\"", "i64.store offset=8", "global.set 0", "call 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("WAT output missing %q:\n%s", want, s)
		}
	}
}

func TestValidatorRejectsTypeErrors(t *testing.T) {
	mk := func(build func(f *FuncBuilder)) *Module {
		b := NewModuleBuilder()
		f := b.NewFunc("bad", FuncType{Results: []ValType{I32}})
		build(f)
		return b.Module()
	}
	cases := []struct {
		name  string
		build func(f *FuncBuilder)
	}{
		{"empty body for i32 result", func(f *FuncBuilder) {}},
		{"f64 for i32 result", func(f *FuncBuilder) { f.F64Const(1) }},
		{"add with one operand", func(f *FuncBuilder) { f.I32Const(1); f.I32Add() }},
		{"mixed-type add", func(f *FuncBuilder) { f.I32Const(1); f.I64Const(2); f.Op(OpI64Add) }},
		{"branch depth out of range", func(f *FuncBuilder) { f.I32Const(1); f.Emit(OpBr, 5, 0) }},
		{"local out of range", func(f *FuncBuilder) { f.Emit(OpLocalGet, 3, 0) }},
		{"global out of range", func(f *FuncBuilder) { f.Emit(OpGlobalGet, 0, 0) }},
		{"call out of range", func(f *FuncBuilder) { f.Emit(OpCall, 99, 0); f.I32Const(0) }},
		{"leftover stack value", func(f *FuncBuilder) { f.I32Const(1); f.I32Const(2) }},
		{"select type mismatch", func(f *FuncBuilder) {
			f.I32Const(1)
			f.F64Const(2)
			f.I32Const(0)
			f.Select()
			f.Drop()
			f.I32Const(0)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := Validate(mk(c.build)); err == nil {
				t.Errorf("validator accepted %s", c.name)
			}
		})
	}
}

func TestValidatorAcceptsUnreachableCode(t *testing.T) {
	b := NewModuleBuilder()
	f := b.NewFunc("f", FuncType{Results: []ValType{I32}})
	f.I32Const(7)
	f.Return()
	// Dead code after return is stack-polymorphic.
	f.I32Add()
	f.Drop()
	if err := Validate(b.Module()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidatorIfElse(t *testing.T) {
	b := NewModuleBuilder()
	f := b.NewFunc("f", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	f.LocalGet(f.Param(0))
	f.If(BlockOf(I32))
	f.I32Const(1)
	f.Else()
	f.I32Const(2)
	f.End()
	if err := Validate(b.Module()); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// If with result but missing else arm must be rejected.
	b2 := NewModuleBuilder()
	g := b2.NewFunc("g", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	g.LocalGet(g.Param(0))
	g.If(BlockOf(I32))
	g.I32Const(1)
	g.End()
	if err := Validate(b2.Module()); err == nil {
		t.Error("if-without-else producing a value was accepted")
	}
}

func TestBuilderPanicsOnImbalance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unbalanced control nesting")
		}
	}()
	b := NewModuleBuilder()
	f := b.NewFunc("f", FuncType{})
	f.Block(BlockVoid) // never closed
	b.Module()
}

func TestBuilderTypeInterning(t *testing.T) {
	b := NewModuleBuilder()
	t1 := b.AddType(FuncType{Params: []ValType{I32}})
	t2 := b.AddType(FuncType{Params: []ValType{I32}})
	t3 := b.AddType(FuncType{Params: []ValType{I64}})
	if t1 != t2 {
		t.Errorf("identical types not interned: %d vs %d", t1, t2)
	}
	if t1 == t3 {
		t.Error("distinct types interned together")
	}
}

func TestFuncTypeAt(t *testing.T) {
	b := buildTestModule()
	m := b.Module()
	ft, err := m.FuncTypeAt(0) // import env.log
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Params) != 1 || ft.Params[0] != I32 || len(ft.Results) != 0 {
		t.Errorf("import type wrong: %v", ft)
	}
	ft, err = m.FuncTypeAt(1) // add
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Params) != 2 || len(ft.Results) != 1 {
		t.Errorf("add type wrong: %v", ft)
	}
	if _, err := m.FuncTypeAt(99); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestExportedFunc(t *testing.T) {
	m := buildTestModule().Module()
	if idx, ok := m.ExportedFunc("add"); !ok || idx != 1 {
		t.Errorf("ExportedFunc(add) = %d, %v", idx, ok)
	}
	if _, ok := m.ExportedFunc("nope"); ok {
		t.Error("nonexistent export found")
	}
}
