package wasm

import (
	"errors"
	"fmt"
)

// Validate type-checks the module according to the WebAssembly validation
// algorithm (the stack-polymorphic algorithm from the spec appendix). The
// execution tiers rely on validation having succeeded: they omit dynamic type
// and structure checks.
func Validate(m *Module) error {
	for i, im := range m.Imports {
		if im.Kind == ExternFunc && int(im.Type) >= len(m.Types) {
			return fmt.Errorf("wasm: import %d: type index %d out of range", i, im.Type)
		}
	}
	numFuncs := uint32(m.NumImportedFuncs() + len(m.Funcs))
	for i, e := range m.Exports {
		switch e.Kind {
		case ExternFunc:
			if e.Index >= numFuncs {
				return fmt.Errorf("wasm: export %d: function index %d out of range", i, e.Index)
			}
		case ExternGlobal:
			if int(e.Index) >= len(m.Globals) {
				return fmt.Errorf("wasm: export %d: global index %d out of range", i, e.Index)
			}
		case ExternMemory:
			if e.Index != 0 || !m.hasAnyMemory() {
				return fmt.Errorf("wasm: export %d: no memory to export", i)
			}
		case ExternTable:
			if e.Index != 0 || !m.HasTable {
				return fmt.Errorf("wasm: export %d: no table to export", i)
			}
		}
	}
	for i, seg := range m.Elems {
		for _, fi := range seg.Funcs {
			if fi >= numFuncs {
				return fmt.Errorf("wasm: element segment %d: function index %d out of range", i, fi)
			}
		}
	}
	if m.Start >= 0 {
		ft, err := m.FuncTypeAt(uint32(m.Start))
		if err != nil {
			return err
		}
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return errors.New("wasm: start function must have empty signature")
		}
	}
	for i := range m.Funcs {
		fn := &m.Funcs[i]
		if int(fn.Type) >= len(m.Types) {
			return fmt.Errorf("wasm: function %d: type index out of range", i)
		}
		if err := validateBody(m, fn); err != nil {
			name := fn.Name
			if name == "" {
				name = fmt.Sprintf("#%d", i)
			}
			return fmt.Errorf("wasm: function %s: %w", name, err)
		}
	}
	return nil
}

func (m *Module) hasAnyMemory() bool {
	if m.HasMemory {
		return true
	}
	for _, im := range m.Imports {
		if im.Kind == ExternMemory {
			return true
		}
	}
	return false
}

// unknownType is the bottom type used for stack-polymorphic checking.
const unknownType ValType = 0

type ctrlFrame struct {
	op          Opcode // OpBlock, OpLoop, OpIf, or OpCall as the function frame marker
	results     []ValType
	height      int
	unreachable bool
}

func (c *ctrlFrame) labelTypes() []ValType {
	if c.op == OpLoop {
		return nil // MVP loops have no parameters
	}
	return c.results
}

type validator struct {
	m      *Module
	locals []ValType
	vals   []ValType
	ctrls  []ctrlFrame
}

func validateBody(m *Module, fn *Func) error {
	ft := m.Types[fn.Type]
	v := &validator{m: m}
	v.locals = append(append([]ValType{}, ft.Params...), fn.Locals...)
	v.ctrls = []ctrlFrame{{op: OpCall, results: ft.Results}}
	for pc, in := range fn.Body {
		if err := v.instr(in); err != nil {
			return fmt.Errorf("instr %d (%s): %w", pc, in.Op, err)
		}
		if len(v.ctrls) == 0 {
			if pc != len(fn.Body)-1 {
				return fmt.Errorf("instr %d: code after function end", pc)
			}
			return nil
		}
	}
	return errors.New("missing end")
}

func (v *validator) pushVal(t ValType) { v.vals = append(v.vals, t) }

func (v *validator) pushVals(ts []ValType) {
	for _, t := range ts {
		v.pushVal(t)
	}
}

func (v *validator) popVal() (ValType, error) {
	frame := &v.ctrls[len(v.ctrls)-1]
	if len(v.vals) == frame.height {
		if frame.unreachable {
			return unknownType, nil
		}
		return 0, errors.New("value stack underflow")
	}
	t := v.vals[len(v.vals)-1]
	v.vals = v.vals[:len(v.vals)-1]
	return t, nil
}

func (v *validator) popExpect(want ValType) (ValType, error) {
	got, err := v.popVal()
	if err != nil {
		return 0, err
	}
	if got != want && got != unknownType && want != unknownType {
		return 0, fmt.Errorf("type mismatch: expected %s, got %s", want, got)
	}
	return got, nil
}

func (v *validator) popVals(ts []ValType) error {
	for i := len(ts) - 1; i >= 0; i-- {
		if _, err := v.popExpect(ts[i]); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) pushCtrl(op Opcode, results []ValType) {
	v.ctrls = append(v.ctrls, ctrlFrame{op: op, results: results, height: len(v.vals)})
}

func (v *validator) popCtrl() (ctrlFrame, error) {
	if len(v.ctrls) == 0 {
		return ctrlFrame{}, errors.New("control stack underflow")
	}
	frame := v.ctrls[len(v.ctrls)-1]
	if err := v.popVals(frame.results); err != nil {
		return ctrlFrame{}, err
	}
	if len(v.vals) != frame.height {
		return ctrlFrame{}, errors.New("values remain on stack at end of block")
	}
	v.ctrls = v.ctrls[:len(v.ctrls)-1]
	return frame, nil
}

func (v *validator) unreachable() {
	frame := &v.ctrls[len(v.ctrls)-1]
	v.vals = v.vals[:frame.height]
	frame.unreachable = true
}

func (v *validator) frameAt(depth uint64) (*ctrlFrame, error) {
	if depth >= uint64(len(v.ctrls)) {
		return nil, fmt.Errorf("branch depth %d out of range", depth)
	}
	return &v.ctrls[len(v.ctrls)-1-int(depth)], nil
}

func (v *validator) localType(idx uint64) (ValType, error) {
	if idx >= uint64(len(v.locals)) {
		return 0, fmt.Errorf("local index %d out of range", idx)
	}
	return v.locals[idx], nil
}

func (v *validator) globalType(idx uint64) (GlobalType, error) {
	if idx >= uint64(len(v.m.Globals)) {
		return GlobalType{}, fmt.Errorf("global index %d out of range", idx)
	}
	return v.m.Globals[idx].Type, nil
}

func (v *validator) instr(in Instr) error {
	// Simple (fixed-signature) instructions are table-driven.
	if sig, ok := simpleSigs[in.Op]; ok {
		if err := v.popVals(sig.in); err != nil {
			return err
		}
		v.pushVals(sig.out)
		return nil
	}
	switch in.Op {
	case OpNop:
	case OpUnreachable:
		v.unreachable()
	case OpBlock, OpLoop:
		v.pushCtrl(in.Op, BlockType(in.A).Results())
	case OpIf:
		if _, err := v.popExpect(I32); err != nil {
			return err
		}
		v.pushCtrl(OpIf, BlockType(in.A).Results())
	case OpElse:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		if frame.op != OpIf {
			return errors.New("else without if")
		}
		v.pushCtrl(OpElse, frame.results)
	case OpEnd:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		if frame.op == OpIf && len(frame.results) != 0 {
			return errors.New("if with result type requires an else arm")
		}
		v.pushVals(frame.results)
	case OpBr:
		frame, err := v.frameAt(in.A)
		if err != nil {
			return err
		}
		if err := v.popVals(frame.labelTypes()); err != nil {
			return err
		}
		v.unreachable()
	case OpBrIf:
		frame, err := v.frameAt(in.A)
		if err != nil {
			return err
		}
		if _, err := v.popExpect(I32); err != nil {
			return err
		}
		lt := frame.labelTypes()
		if err := v.popVals(lt); err != nil {
			return err
		}
		v.pushVals(lt)
	case OpBrTable:
		if _, err := v.popExpect(I32); err != nil {
			return err
		}
		def, err := v.frameAt(in.A)
		if err != nil {
			return err
		}
		arity := len(def.labelTypes())
		for _, t := range in.Table {
			frame, err := v.frameAt(uint64(t))
			if err != nil {
				return err
			}
			if len(frame.labelTypes()) != arity {
				return errors.New("br_table label arity mismatch")
			}
		}
		if err := v.popVals(def.labelTypes()); err != nil {
			return err
		}
		v.unreachable()
	case OpReturn:
		if err := v.popVals(v.ctrls[0].results); err != nil {
			return err
		}
		v.unreachable()
	case OpCall:
		ft, err := v.m.FuncTypeAt(uint32(in.A))
		if err != nil {
			return err
		}
		if err := v.popVals(ft.Params); err != nil {
			return err
		}
		v.pushVals(ft.Results)
	case OpCallIndirect:
		if !v.m.HasTable && !v.hasImportedTable() {
			return errors.New("call_indirect without table")
		}
		if int(in.A) >= len(v.m.Types) {
			return fmt.Errorf("type index %d out of range", in.A)
		}
		if _, err := v.popExpect(I32); err != nil {
			return err
		}
		ft := v.m.Types[in.A]
		if err := v.popVals(ft.Params); err != nil {
			return err
		}
		v.pushVals(ft.Results)
	case OpDrop:
		if _, err := v.popVal(); err != nil {
			return err
		}
	case OpSelect:
		if _, err := v.popExpect(I32); err != nil {
			return err
		}
		t1, err := v.popVal()
		if err != nil {
			return err
		}
		t2, err := v.popVal()
		if err != nil {
			return err
		}
		if t1 != t2 && t1 != unknownType && t2 != unknownType {
			return errors.New("select operands differ in type")
		}
		if t1 == unknownType {
			v.pushVal(t2)
		} else {
			v.pushVal(t1)
		}
	case OpLocalGet:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		v.pushVal(t)
	case OpLocalSet:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		if _, err := v.popExpect(t); err != nil {
			return err
		}
	case OpLocalTee:
		t, err := v.localType(in.A)
		if err != nil {
			return err
		}
		if _, err := v.popExpect(t); err != nil {
			return err
		}
		v.pushVal(t)
	case OpGlobalGet:
		gt, err := v.globalType(in.A)
		if err != nil {
			return err
		}
		v.pushVal(gt.Type)
	case OpGlobalSet:
		gt, err := v.globalType(in.A)
		if err != nil {
			return err
		}
		if !gt.Mutable {
			return fmt.Errorf("global %d is immutable", in.A)
		}
		if _, err := v.popExpect(gt.Type); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unhandled opcode %s", in.Op)
	}
	return nil
}

func (v *validator) hasImportedTable() bool {
	for _, im := range v.m.Imports {
		if im.Kind == ExternTable {
			return true
		}
	}
	return false
}

type sig struct {
	in, out []ValType
}

var simpleSigs = buildSimpleSigs()

func buildSimpleSigs() map[Opcode]sig {
	m := make(map[Opcode]sig, 160)
	un := func(op Opcode, a, r ValType) { m[op] = sig{[]ValType{a}, []ValType{r}} }
	bin := func(op Opcode, a, r ValType) { m[op] = sig{[]ValType{a, a}, []ValType{r}} }

	// Memory.
	loads := map[Opcode]ValType{
		OpI32Load: I32, OpI64Load: I64, OpF32Load: F32, OpF64Load: F64,
		OpI32Load8S: I32, OpI32Load8U: I32, OpI32Load16S: I32, OpI32Load16U: I32,
		OpI64Load8S: I64, OpI64Load8U: I64, OpI64Load16S: I64, OpI64Load16U: I64,
		OpI64Load32S: I64, OpI64Load32U: I64,
	}
	for op, t := range loads {
		un(op, I32, t)
	}
	stores := map[Opcode]ValType{
		OpI32Store: I32, OpI64Store: I64, OpF32Store: F32, OpF64Store: F64,
		OpI32Store8: I32, OpI32Store16: I32,
		OpI64Store8: I64, OpI64Store16: I64, OpI64Store32: I64,
	}
	for op, t := range stores {
		m[op] = sig{in: []ValType{I32, t}}
	}
	m[OpMemorySize] = sig{out: []ValType{I32}}
	un(OpMemoryGrow, I32, I32)

	// Constants.
	m[OpI32Const] = sig{out: []ValType{I32}}
	m[OpI64Const] = sig{out: []ValType{I64}}
	m[OpF32Const] = sig{out: []ValType{F32}}
	m[OpF64Const] = sig{out: []ValType{F64}}

	// Comparisons.
	un(OpI32Eqz, I32, I32)
	for op := OpI32Eq; op <= OpI32GeU; op++ {
		bin(op, I32, I32)
	}
	un(OpI64Eqz, I64, I32)
	for op := OpI64Eq; op <= OpI64GeU; op++ {
		bin(op, I64, I32)
	}
	for op := OpF32Eq; op <= OpF32Ge; op++ {
		bin(op, F32, I32)
	}
	for op := OpF64Eq; op <= OpF64Ge; op++ {
		bin(op, F64, I32)
	}

	// Numerics.
	for op := OpI32Clz; op <= OpI32Popcnt; op++ {
		un(op, I32, I32)
	}
	for op := OpI32Add; op <= OpI32Rotr; op++ {
		bin(op, I32, I32)
	}
	for op := OpI64Clz; op <= OpI64Popcnt; op++ {
		un(op, I64, I64)
	}
	for op := OpI64Add; op <= OpI64Rotr; op++ {
		bin(op, I64, I64)
	}
	for op := OpF32Abs; op <= OpF32Sqrt; op++ {
		un(op, F32, F32)
	}
	for op := OpF32Add; op <= OpF32Copysign; op++ {
		bin(op, F32, F32)
	}
	for op := OpF64Abs; op <= OpF64Sqrt; op++ {
		un(op, F64, F64)
	}
	for op := OpF64Add; op <= OpF64Copysign; op++ {
		bin(op, F64, F64)
	}

	// Conversions.
	un(OpI32WrapI64, I64, I32)
	un(OpI32TruncF32S, F32, I32)
	un(OpI32TruncF32U, F32, I32)
	un(OpI32TruncF64S, F64, I32)
	un(OpI32TruncF64U, F64, I32)
	un(OpI64ExtendI32S, I32, I64)
	un(OpI64ExtendI32U, I32, I64)
	un(OpI64TruncF32S, F32, I64)
	un(OpI64TruncF32U, F32, I64)
	un(OpI64TruncF64S, F64, I64)
	un(OpI64TruncF64U, F64, I64)
	un(OpF32ConvertI32S, I32, F32)
	un(OpF32ConvertI32U, I32, F32)
	un(OpF32ConvertI64S, I64, F32)
	un(OpF32ConvertI64U, I64, F32)
	un(OpF32DemoteF64, F64, F32)
	un(OpF64ConvertI32S, I32, F64)
	un(OpF64ConvertI32U, I32, F64)
	un(OpF64ConvertI64S, I64, F64)
	un(OpF64ConvertI64U, I64, F64)
	un(OpF64PromoteF32, F32, F64)
	un(OpI32ReinterpretF32, F32, I32)
	un(OpI64ReinterpretF64, F64, I64)
	un(OpF32ReinterpretI32, I32, F32)
	un(OpF64ReinterpretI64, I64, F64)
	un(OpI32Extend8S, I32, I32)
	un(OpI32Extend16S, I32, I32)
	un(OpI64Extend8S, I64, I64)
	un(OpI64Extend16S, I64, I64)
	un(OpI64Extend32S, I64, I64)

	return m
}
