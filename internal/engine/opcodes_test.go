package engine

import (
	"math"
	"math/bits"
	"testing"

	"wasmdb/internal/wasm"
)

// TestAllNumericOpcodes exercises every numeric instruction on both tiers
// against host-computed expectations, over normal and edge-case operands.
func TestAllNumericOpcodes(t *testing.T) {
	f32 := func(x float32) uint64 { return uint64(math.Float32bits(x)) }
	f64 := func(x float64) uint64 { return math.Float64bits(x) }
	i32 := func(x int32) uint64 { return uint64(uint32(x)) }

	negI64 := func(x uint64) uint64 { return ^x + 1 }
	type opcase struct {
		op   wasm.Opcode
		a, b uint64 // b unused for unary ops
		want uint64
	}
	cases := []opcase{
		// i32 arithmetic, incl. wraparound and negative operands.
		{wasm.OpI32Add, i32(2147483647), i32(1), i32(-2147483648)},
		{wasm.OpI32Sub, i32(5), i32(9), i32(-4)},
		{wasm.OpI32Mul, i32(65536), i32(65536), 0},
		{wasm.OpI32DivS, i32(-7), i32(2), i32(-3)},
		{wasm.OpI32DivU, i32(-7), i32(2), uint64((uint32(4294967289)) / 2)},
		{wasm.OpI32RemS, i32(-7), i32(2), i32(-1)},
		{wasm.OpI32RemU, i32(7), i32(3), 1},
		{wasm.OpI32And, 0b1100, 0b1010, 0b1000},
		{wasm.OpI32Or, 0b1100, 0b1010, 0b1110},
		{wasm.OpI32Xor, 0b1100, 0b1010, 0b0110},
		{wasm.OpI32Shl, 1, 35, 8}, // shift count mod 32
		{wasm.OpI32ShrS, i32(-8), 1, i32(-4)},
		{wasm.OpI32ShrU, i32(-8), 1, uint64(uint32(4294967288) >> 1)},
		{wasm.OpI32Rotl, 0x80000001, 1, 0x00000003},
		{wasm.OpI32Rotr, 0x00000003, 1, 0x80000001},
		{wasm.OpI32Clz, 0x00010000, 0, 15},
		{wasm.OpI32Ctz, 0x00010000, 0, 16},
		{wasm.OpI32Popcnt, 0xF0F0F0F0, 0, 16},
		{wasm.OpI32Eqz, 0, 0, 1},
		{wasm.OpI32Eqz, 7, 0, 0},

		// i32 comparisons (signedness matters).
		{wasm.OpI32LtS, i32(-1), i32(1), 1},
		{wasm.OpI32LtU, i32(-1), i32(1), 0},
		{wasm.OpI32GtS, i32(-1), i32(1), 0},
		{wasm.OpI32GtU, i32(-1), i32(1), 1},
		{wasm.OpI32LeS, i32(3), i32(3), 1},
		{wasm.OpI32GeU, i32(3), i32(4), 0},
		{wasm.OpI32Eq, 42, 42, 1},
		{wasm.OpI32Ne, 42, 43, 1},

		// i64.
		{wasm.OpI64Add, math.MaxUint64, 1, 0},
		{wasm.OpI64Sub, 1, 2, math.MaxUint64},
		{wasm.OpI64Mul, 1 << 63, 2, 0},
		{wasm.OpI64DivS, negI64(9), 2, negI64(4)},
		{wasm.OpI64DivU, negI64(9), 2, (math.MaxUint64 - 8) / 2},
		{wasm.OpI64RemS, negI64(9), 2, negI64(1)},
		{wasm.OpI64RemU, 9, 4, 1},
		{wasm.OpI64Shl, 1, 67, 8},
		{wasm.OpI64ShrS, negI64(16), 2, negI64(4)},
		{wasm.OpI64ShrU, 1 << 63, 63, 1},
		{wasm.OpI64Rotl, 1 << 63, 1, 1},
		{wasm.OpI64Rotr, 1, 1, 1 << 63},
		{wasm.OpI64Clz, 1, 0, 63},
		{wasm.OpI64Ctz, 1 << 40, 0, 40},
		{wasm.OpI64Popcnt, math.MaxUint64, 0, 64},
		{wasm.OpI64Eqz, 0, 0, 1},
		{wasm.OpI64LtS, negI64(5), 5, 1},
		{wasm.OpI64LtU, negI64(5), 5, 0},
		{wasm.OpI64GeS, 5, 5, 1},

		// f64 arithmetic and comparisons, incl. NaN and signed zero.
		{wasm.OpF64Add, f64(1.5), f64(2.25), f64(3.75)},
		{wasm.OpF64Sub, f64(1), f64(0.5), f64(0.5)},
		{wasm.OpF64Mul, f64(3), f64(-2), f64(-6)},
		{wasm.OpF64Div, f64(1), f64(0), f64(math.Inf(1))},
		{wasm.OpF64Min, f64(0), f64(math.Copysign(0, -1)), f64(math.Copysign(0, -1))},
		{wasm.OpF64Max, f64(1), f64(2), f64(2)},
		{wasm.OpF64Abs, f64(-3.5), 0, f64(3.5)},
		{wasm.OpF64Neg, f64(3.5), 0, f64(-3.5)},
		{wasm.OpF64Sqrt, f64(9), 0, f64(3)},
		{wasm.OpF64Ceil, f64(1.2), 0, f64(2)},
		{wasm.OpF64Floor, f64(-1.2), 0, f64(-2)},
		{wasm.OpF64Trunc, f64(-1.7), 0, f64(-1)},
		{wasm.OpF64Nearest, f64(2.5), 0, f64(2)}, // round half to even
		{wasm.OpF64Copysign, f64(3), f64(-1), f64(-3)},
		{wasm.OpF64Lt, f64(math.NaN()), f64(1), 0},
		{wasm.OpF64Ge, f64(math.NaN()), f64(1), 0},
		{wasm.OpF64Ne, f64(math.NaN()), f64(math.NaN()), 1},
		{wasm.OpF64Eq, f64(0), f64(math.Copysign(0, -1)), 1},

		// f32.
		{wasm.OpF32Add, f32(0.5), f32(0.25), f32(0.75)},
		{wasm.OpF32Mul, f32(4), f32(2.5), f32(10)},
		{wasm.OpF32Div, f32(1), f32(4), f32(0.25)},
		{wasm.OpF32Min, f32(float32(math.NaN())), f32(1), f32(float32(math.NaN()))},
		{wasm.OpF32Abs, f32(-2), 0, f32(2)},
		{wasm.OpF32Neg, f32(2), 0, f32(-2)},
		{wasm.OpF32Sqrt, f32(16), 0, f32(4)},
		{wasm.OpF32Lt, f32(1), f32(2), 1},

		// Conversions.
		{wasm.OpI32WrapI64, 0x1_0000_0005, 0, 5},
		{wasm.OpI64ExtendI32S, i32(-1), 0, math.MaxUint64},
		{wasm.OpI64ExtendI32U, i32(-1), 0, 0xFFFFFFFF},
		{wasm.OpI32TruncF64S, f64(-2.9), 0, i32(-2)},
		{wasm.OpI32TruncF64U, f64(3.9), 0, 3},
		{wasm.OpI64TruncF64S, f64(-1e15), 0, negI64(1000000000000000)},
		{wasm.OpI64TruncF32S, f32(1024), 0, 1024},
		{wasm.OpF64ConvertI32S, i32(-3), 0, f64(-3)},
		{wasm.OpF64ConvertI32U, i32(-1), 0, f64(4294967295)},
		{wasm.OpF64ConvertI64S, negI64(7), 0, f64(-7)},
		{wasm.OpF64ConvertI64U, math.MaxUint64, 0, f64(18446744073709551615)},
		{wasm.OpF32ConvertI32S, i32(2), 0, f32(2)},
		{wasm.OpF32ConvertI64S, 3, 0, f32(3)},
		{wasm.OpF32DemoteF64, f64(1.5), 0, f32(1.5)},
		{wasm.OpF64PromoteF32, f32(1.5), 0, f64(1.5)},
		{wasm.OpI32ReinterpretF32, f32(1), 0, f32(1)},
		{wasm.OpI64ReinterpretF64, f64(1), 0, f64(1)},
		{wasm.OpF32ReinterpretI32, 0x3F800000, 0, 0x3F800000},
		{wasm.OpF64ReinterpretI64, f64(2), 0, f64(2)},
		{wasm.OpI32Extend8S, 0x80, 0, i32(-128)},
		{wasm.OpI32Extend16S, 0x8000, 0, i32(-32768)},
		{wasm.OpI64Extend8S, 0xFF, 0, math.MaxUint64},
		{wasm.OpI64Extend16S, 0x8000, 0, negI64(32768)},
		{wasm.OpI64Extend32S, 0x80000000, 0, negI64(2147483648)},
	}
	// Sanity: the host-side expectations above double-check a few with
	// computed values.
	if cases[10].want != uint64(1<<3) || bits.RotateLeft32(0x80000001, 1) != 3 {
		t.Fatal("self-check failed")
	}

	for _, c := range cases {
		c := c
		in, out, ok := c.op.InOut()
		if !ok || out != 1 {
			t.Fatalf("%s: unexpected signature", c.op)
		}
		b := wasm.NewModuleBuilder()
		var params []wasm.ValType
		ft, _ := c.op.ResultType()
		_ = ft
		// Determine operand types from the validator's signature by probing
		// a trivial build: use raw emit with consts of the right type.
		sigIn := operandTypes(c.op, in)
		for _, p := range sigIn {
			params = append(params, p)
		}
		rt0, _ := c.op.ResultType()
		f := b.NewFunc("f", wasm.FuncType{Params: params, Results: []wasm.ValType{rt0}})
		for pi := range sigIn {
			f.LocalGet(f.Param(pi))
		}
		f.Op(c.op)
		b.Export("f", wasm.ExternFunc, f.Index)
		bin := b.Bytes()

		args := []uint64{c.a, c.b}[:in]
		for _, tier := range []Tier{TierLiftoff, TierTurbofan} {
			m, err := New(Config{Tier: tier}).Compile(bin)
			if err != nil {
				t.Fatalf("%s (%v): compile: %v", c.op, tier, err)
			}
			inst, err := m.Instantiate(Imports{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := inst.Call("f", args...)
			if err != nil {
				t.Fatalf("%s (%v): %v", c.op, tier, err)
			}
			if !sameBits(c.op, got[0], c.want) {
				t.Errorf("%s(%#x, %#x) on %v = %#x, want %#x",
					c.op, c.a, c.b, tier, got[0], c.want)
			}
		}
	}
}

// sameBits compares results, treating any NaN pattern of the right width as
// equal to any other NaN.
func sameBits(op wasm.Opcode, got, want uint64) bool {
	if got == want {
		return true
	}
	if rt0, ok := op.ResultType(); ok {
		switch rt0 {
		case wasm.F64:
			g, w := math.Float64frombits(got), math.Float64frombits(want)
			return math.IsNaN(g) && math.IsNaN(w)
		case wasm.F32:
			g := math.Float32frombits(uint32(got))
			w := math.Float32frombits(uint32(want))
			return g != g && w != w
		}
	}
	return false
}

// operandTypes recovers the operand value types of a fixed-signature opcode
// by name inspection (test-only helper).
func operandTypes(op wasm.Opcode, n int) []wasm.ValType {
	name := op.String()
	var t wasm.ValType
	switch {
	case len(name) >= 3 && name[:3] == "i32":
		t = wasm.I32
	case len(name) >= 3 && name[:3] == "i64":
		t = wasm.I64
	case len(name) >= 3 && name[:3] == "f32":
		t = wasm.F32
	case len(name) >= 3 && name[:3] == "f64":
		t = wasm.F64
	default:
		panic("unknown prefix " + name)
	}
	// Conversions name their source after the underscore.
	src := t
	for _, suffix := range []struct {
		s  string
		vt wasm.ValType
	}{
		{"_i32_s", wasm.I32}, {"_i32_u", wasm.I32},
		{"_i64_s", wasm.I64}, {"_i64_u", wasm.I64},
		{"_f32_s", wasm.F32}, {"_f32_u", wasm.F32},
		{"_f64_s", wasm.F64}, {"_f64_u", wasm.F64},
		{"_i32", wasm.I32}, {"_i64", wasm.I64},
		{"_f32", wasm.F32}, {"_f64", wasm.F64},
	} {
		if hasSuffix(name, suffix.s) {
			src = suffix.vt
			break
		}
	}
	out := make([]wasm.ValType, n)
	for i := range out {
		out[i] = src
	}
	return out
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
