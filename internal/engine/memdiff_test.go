package engine

import (
	"math/rand"
	"testing"

	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/wasm"
)

// TestRandomMemoryProgramsDifferential generates random programs mixing
// loads, stores, arithmetic, and loops over a scratch memory region, then
// checks that both tiers produce identical results AND identical final
// memory contents.
func TestRandomMemoryProgramsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	const region = 4096 // scratch bytes the programs may touch

	for trial := 0; trial < 40; trial++ {
		b := wasm.NewModuleBuilder()
		b.ImportMemory("env", "memory", 1, 4)
		f := b.NewFunc("p", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
		acc := f.AddLocal(wasm.I64)
		i := f.AddLocal(wasm.I32)

		// Random prologue of stores at fixed offsets.
		for k := rng.Intn(6); k > 0; k-- {
			off := uint32(rng.Intn(region-8)) &^ 7
			f.I32Const(int32(off))
			f.LocalGet(0)
			f.I64Const(int64(rng.Uint64()))
			f.Op([]wasm.Opcode{wasm.OpI64Add, wasm.OpI64Mul, wasm.OpI64Xor}[rng.Intn(3)])
			f.I64Store(0)
		}
		// A loop striding through the region, mixing loads and stores.
		stride := []int32{8, 16, 24}[rng.Intn(3)]
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(i)
		f.I32Const(int32(region - 8))
		f.I32GeU()
		f.BrIf(1)
		// acc ^= mem[i]; mem[i] = acc + i
		f.LocalGet(acc)
		f.LocalGet(i)
		f.I64Load(0)
		f.Op(wasm.OpI64Xor)
		f.LocalSet(acc)
		f.LocalGet(i)
		f.LocalGet(acc)
		f.LocalGet(i)
		f.Op(wasm.OpI64ExtendI32U)
		f.I64Add()
		f.I64Store(0)
		f.LocalGet(i)
		f.I32Const(stride)
		f.I32Add()
		f.LocalSet(i)
		f.Br(0)
		f.End()
		f.End()
		// Mix in narrow accesses.
		f.I32Const(100)
		f.LocalGet(acc)
		f.Op(wasm.OpI32WrapI64)
		f.I32Store8(1)
		f.I32Const(200)
		f.LocalGet(acc)
		f.Op(wasm.OpI32WrapI64)
		f.I32Store16(2)
		f.LocalGet(acc)
		f.I32Const(100)
		f.I32Load8U(1)
		f.Op(wasm.OpI64ExtendI32U)
		f.I64Add()
		b.Export("p", wasm.ExternFunc, f.Index)
		bin := b.Bytes()

		arg := rng.Uint64()
		var refRes uint64
		var refMem []byte
		for ti, tier := range []Tier{TierLiftoff, TierTurbofan} {
			m, err := New(Config{Tier: tier}).Compile(bin)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, tier, err)
			}
			mem := wmem.New(1, 4)
			inst, err := m.Instantiate(Imports{Memory: mem})
			if err != nil {
				t.Fatal(err)
			}
			res, err := inst.Call("p", arg)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, tier, err)
			}
			dump := mem.ReadBytes(0, region)
			if ti == 0 {
				refRes = res[0]
				refMem = dump
				continue
			}
			if res[0] != refRes {
				t.Fatalf("trial %d: results differ: %#x vs %#x", trial, res[0], refRes)
			}
			for a := range dump {
				if dump[a] != refMem[a] {
					t.Fatalf("trial %d: memory differs at %#x: %#x vs %#x", trial, a, dump[a], refMem[a])
				}
			}
		}
	}
}
