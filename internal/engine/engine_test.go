package engine

import (
	"math"
	"math/rand"
	"testing"

	"wasmdb/internal/engine/rt"
	"wasmdb/internal/engine/wmem"
	"wasmdb/internal/wasm"
)

// tiers lists every compilation configuration; differential tests run all.
var tiers = []Tier{TierLiftoff, TierTurbofan, TierAdaptive}

// runAll compiles and instantiates the module under every tier and invokes
// name with args, asserting that all tiers agree, and returns the result.
func runAll(t *testing.T, bin []byte, imp Imports, name string, args ...uint64) []uint64 {
	t.Helper()
	var ref []uint64
	for _, tier := range tiers {
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatalf("%v compile: %v", tier, err)
		}
		if err := m.WaitOptimized(); err != nil {
			t.Fatalf("%v optimize: %v", tier, err)
		}
		inst, err := m.Instantiate(imp)
		if err != nil {
			t.Fatalf("%v instantiate: %v", tier, err)
		}
		got, err := inst.Call(name, args...)
		if err != nil {
			t.Fatalf("%v call %s: %v", tier, name, err)
		}
		if ref == nil {
			ref = got
		} else if len(got) != len(ref) {
			t.Fatalf("%v: result arity mismatch", tier)
		} else {
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%v: result[%d] = %#x, want %#x (liftoff)", tier, i, got[i], ref[i])
				}
			}
		}
	}
	return ref
}

func TestArithmetic(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("calc", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	// (a+b)*(a-b) ^ (a<<3)
	f.LocalGet(0)
	f.LocalGet(1)
	f.I32Add()
	f.LocalGet(0)
	f.LocalGet(1)
	f.I32Sub()
	f.I32Mul()
	f.LocalGet(0)
	f.I32Const(3)
	f.Op(wasm.OpI32Shl)
	f.I32Xor()
	b.Export("calc", wasm.ExternFunc, f.Index)
	bin := b.Bytes()

	got := runAll(t, bin, Imports{}, "calc", 100, 7)
	a, bb := int32(100), int32(7)
	want := uint64(uint32(((a + bb) * (a - bb)) ^ (a << 3)))
	if got[0] != want {
		t.Errorf("calc = %d, want %d", got[0], want)
	}
}

func TestLoopSum(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("sum", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	acc := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I64)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(0)
	f.Op(wasm.OpI64GeS)
	f.BrIf(1)
	f.LocalGet(acc)
	f.LocalGet(i)
	f.I64Add()
	f.LocalSet(acc)
	f.LocalGet(i)
	f.I64Const(1)
	f.I64Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(acc)
	b.Export("sum", wasm.ExternFunc, f.Index)

	got := runAll(t, b.Bytes(), Imports{}, "sum", 100000)
	if want := uint64(100000 * 99999 / 2); got[0] != want {
		t.Errorf("sum = %d, want %d", got[0], want)
	}
}

func TestBlockResultAndBranchWithValue(t *testing.T) {
	b := wasm.NewModuleBuilder()
	// f(x): block (result i32) { if x > 10 { br 0 with 111 } 222 }
	f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	f.Block(wasm.BlockOf(wasm.I32))
	f.I32Const(111)
	f.LocalGet(0)
	f.I32Const(10)
	f.Op(wasm.OpI32GtS)
	f.BrIf(0)
	f.Drop()
	f.I32Const(222)
	f.End()
	b.Export("f", wasm.ExternFunc, f.Index)
	bin := b.Bytes()

	if got := runAll(t, bin, Imports{}, "f", 50); got[0] != 111 {
		t.Errorf("f(50) = %d, want 111", got[0])
	}
	if got := runAll(t, bin, Imports{}, "f", 5); got[0] != 222 {
		t.Errorf("f(5) = %d, want 222", got[0])
	}
}

func TestIfElse(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("max", wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	f.LocalGet(0)
	f.LocalGet(1)
	f.Op(wasm.OpI64GtS)
	f.If(wasm.BlockOf(wasm.I64))
	f.LocalGet(0)
	f.Else()
	f.LocalGet(1)
	f.End()
	b.Export("max", wasm.ExternFunc, f.Index)
	bin := b.Bytes()

	if got := runAll(t, bin, Imports{}, "max", 3, 9); got[0] != 9 {
		t.Errorf("max(3,9) = %d", got[0])
	}
	neg := uint64(1<<64 - 5) // -5 as i64
	if got := runAll(t, bin, Imports{}, "max", neg, 2); got[0] != 2 {
		t.Errorf("max(-5,2) = %d", got[0])
	}
}

func TestRecursionFib(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("fib", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	f.LocalGet(0)
	f.I64Const(2)
	f.Op(wasm.OpI64LtS)
	f.If(wasm.BlockOf(wasm.I64))
	f.LocalGet(0)
	f.Else()
	f.LocalGet(0)
	f.I64Const(1)
	f.I64Sub()
	f.CallBuilder(f)
	f.LocalGet(0)
	f.I64Const(2)
	f.I64Sub()
	f.CallBuilder(f)
	f.I64Add()
	f.End()
	b.Export("fib", wasm.ExternFunc, f.Index)

	got := runAll(t, b.Bytes(), Imports{}, "fib", 20)
	if got[0] != 6765 {
		t.Errorf("fib(20) = %d, want 6765", got[0])
	}
}

func TestMemoryOps(t *testing.T) {
	b := wasm.NewModuleBuilder()
	b.AddMemory(1, 4)
	f := b.NewFunc("swap64", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}})
	tmp := f.AddLocal(wasm.I64)
	f.LocalGet(0)
	f.I64Load(0)
	f.LocalSet(tmp)
	f.LocalGet(0)
	f.LocalGet(1)
	f.I64Load(0)
	f.I64Store(0)
	f.LocalGet(1)
	f.LocalGet(tmp)
	f.I64Store(0)
	b.Export("swap64", wasm.ExternFunc, f.Index)

	g := b.NewFunc("get", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I64}})
	g.LocalGet(0)
	g.I64Load(0)
	b.Export("get", wasm.ExternFunc, g.Index)

	s := b.NewFunc("set", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I64}})
	s.LocalGet(0)
	s.LocalGet(1)
	s.I64Store(0)
	b.Export("set", wasm.ExternFunc, s.Index)
	bin := b.Bytes()

	for _, tier := range tiers {
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := m.Instantiate(Imports{})
		if err != nil {
			t.Fatal(err)
		}
		mustCall(t, inst, "set", 8, 0xDEADBEEF)
		mustCall(t, inst, "set", 16, 0xCAFE)
		mustCall(t, inst, "swap64", 8, 16)
		if got := mustCall(t, inst, "get", 8); got[0] != 0xCAFE {
			t.Errorf("%v: mem[8] = %#x", tier, got[0])
		}
		if got := mustCall(t, inst, "get", 16); got[0] != 0xDEADBEEF {
			t.Errorf("%v: mem[16] = %#x", tier, got[0])
		}
	}
}

func mustCall(t *testing.T, inst *Instance, name string, args ...uint64) []uint64 {
	t.Helper()
	got, err := inst.Call(name, args...)
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	return got
}

func TestHostFunctionCallback(t *testing.T) {
	b := wasm.NewModuleBuilder()
	addIdx := b.ImportFunc("env", "host_add", wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	f.LocalGet(0)
	f.I64Const(100)
	f.Call(addIdx)
	b.Export("f", wasm.ExternFunc, f.Index)

	calls := 0
	imp := Imports{Funcs: map[string]*rt.HostFunc{
		"env.host_add": {
			Type: wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}},
			Fn: func(env *rt.Env, args, res []uint64) {
				calls++
				res[0] = args[0] + args[1]
			},
		},
	}}
	got := runAll(t, b.Bytes(), imp, "f", 23)
	if got[0] != 123 {
		t.Errorf("f(23) = %d, want 123", got[0])
	}
	if calls != len(tiers) {
		t.Errorf("host function called %d times, want %d", calls, len(tiers))
	}
}

func TestImportedMemoryRewiring(t *testing.T) {
	// Host maps a buffer into the module's memory; the module sums it in
	// place — zero copies, the reproduction of §6.1.
	b := wasm.NewModuleBuilder()
	b.ImportMemory("env", "memory", 2, 16)
	f := b.NewFunc("sum32", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I64}})
	acc := f.AddLocal(wasm.I64)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(0)
	f.LocalGet(1)
	f.I32GeU()
	f.BrIf(1)
	f.LocalGet(acc)
	f.LocalGet(0)
	f.I32Load(0)
	f.Op(wasm.OpI64ExtendI32S)
	f.I64Add()
	f.LocalSet(acc)
	f.LocalGet(0)
	f.I32Const(4)
	f.I32Add()
	f.LocalSet(0)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(acc)
	b.Export("sum32", wasm.ExternFunc, f.Index)
	bin := b.Bytes()

	host := make([]byte, wmem.PageSize)
	var want int64
	for i := 0; i < 1000; i++ {
		v := int32(i*7 - 1500)
		host[i*4] = byte(v)
		host[i*4+1] = byte(v >> 8)
		host[i*4+2] = byte(v >> 16)
		host[i*4+3] = byte(v >> 24)
		want += int64(v)
	}

	for _, tier := range tiers {
		mem := wmem.New(2, 16)
		if err := mem.Map(wmem.PageSize, host); err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := m.Instantiate(Imports{Memory: mem})
		if err != nil {
			t.Fatal(err)
		}
		got := mustCall(t, inst, "sum32", wmem.PageSize, wmem.PageSize+4000)
		if int64(got[0]) != want {
			t.Errorf("%v: sum = %d, want %d", tier, int64(got[0]), want)
		}
		// Mutating host memory is visible to the guest without remapping.
		host[0] = byte(int32(host[0]) + 1)
		got2 := mustCall(t, inst, "sum32", wmem.PageSize, wmem.PageSize+4000)
		if int64(got2[0]) != want+1 {
			t.Errorf("%v: after host write sum = %d, want %d", tier, int64(got2[0]), want+1)
		}
		host[0]--
	}
}

func TestTraps(t *testing.T) {
	b := wasm.NewModuleBuilder()
	b.AddMemory(1, 1)
	div := b.NewFunc("div", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	div.LocalGet(0)
	div.LocalGet(1)
	div.Op(wasm.OpI32DivS)
	b.Export("div", wasm.ExternFunc, div.Index)

	oob := b.NewFunc("oob", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	oob.LocalGet(0)
	oob.I32Load(0)
	b.Export("oob", wasm.ExternFunc, oob.Index)

	unr := b.NewFunc("unr", wasm.FuncType{})
	unr.Unreachable()
	b.Export("unr", wasm.ExternFunc, unr.Index)

	rec := b.NewFunc("rec", wasm.FuncType{})
	rec.CallBuilder(rec)
	b.Export("rec", wasm.ExternFunc, rec.Index)

	trunc := b.NewFunc("trunc", wasm.FuncType{Params: []wasm.ValType{wasm.F64}, Results: []wasm.ValType{wasm.I32}})
	trunc.LocalGet(0)
	trunc.Op(wasm.OpI32TruncF64S)
	b.Export("trunc", wasm.ExternFunc, trunc.Index)
	bin := b.Bytes()

	for _, tier := range tiers {
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.WaitOptimized(); err != nil {
			t.Fatal(err)
		}
		inst, err := m.Instantiate(Imports{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Call("div", 10, 0); err == nil {
			t.Errorf("%v: division by zero did not trap", tier)
		}
		if _, err := inst.Call("div", uint64(0x80000000), uint64(0xFFFFFFFF)); err == nil {
			t.Errorf("%v: INT_MIN/-1 did not trap", tier)
		}
		if got, err := inst.Call("div", 100, 7); err != nil || got[0] != 14 {
			t.Errorf("%v: 100/7 = %v, %v", tier, got, err)
		}
		if _, err := inst.Call("oob", 1<<20); err == nil {
			t.Errorf("%v: out-of-bounds load did not trap", tier)
		}
		if _, err := inst.Call("unr"); err == nil {
			t.Errorf("%v: unreachable did not trap", tier)
		}
		if _, err := inst.Call("rec"); err == nil {
			t.Errorf("%v: infinite recursion did not trap", tier)
		}
		if _, err := inst.Call("trunc", math.Float64bits(math.NaN())); err == nil {
			t.Errorf("%v: trunc(NaN) did not trap", tier)
		}
		if _, err := inst.Call("trunc", math.Float64bits(1e300)); err == nil {
			t.Errorf("%v: trunc(1e300) did not trap", tier)
		}
		if got, err := inst.Call("trunc", math.Float64bits(-3.99)); err != nil || int32(uint32(got[0])) != -3 {
			t.Errorf("%v: trunc(-3.99) = %v, %v", tier, got, err)
		}
		// The instance stays usable after traps.
		if got, err := inst.Call("div", 30, 3); err != nil || got[0] != 10 {
			t.Errorf("%v: instance unusable after trap: %v, %v", tier, got, err)
		}
	}
}

func TestCallIndirect(t *testing.T) {
	b := wasm.NewModuleBuilder()
	ft := wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}}
	add := b.NewFunc("add", ft)
	add.LocalGet(0)
	add.LocalGet(1)
	add.I64Add()
	sub := b.NewFunc("sub", ft)
	sub.LocalGet(0)
	sub.LocalGet(1)
	sub.I64Sub()
	ti := b.AddType(ft)

	disp := b.NewFunc("disp", wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	disp.LocalGet(1)
	disp.LocalGet(2)
	disp.LocalGet(0)
	disp.Emit(wasm.OpCallIndirect, uint64(ti), 0)
	b.Export("disp", wasm.ExternFunc, disp.Index)

	m := b.Module()
	m.HasTable = true
	m.TableMin = 2
	m.Elems = []wasm.ElemSegment{{Offset: 0, Funcs: []uint32{add.Index, sub.Index}}}
	bin := wasm.Encode(m)

	got := runAll(t, bin, Imports{}, "disp", 0, 30, 12)
	if got[0] != 42 {
		t.Errorf("disp(add) = %d", got[0])
	}
	got = runAll(t, bin, Imports{}, "disp", 1, 30, 12)
	if got[0] != 18 {
		t.Errorf("disp(sub) = %d", got[0])
	}
}

func TestBrTable(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("pick", wasm.FuncType{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}})
	f.Block(wasm.BlockVoid) // 2 → 300
	f.Block(wasm.BlockVoid) // 1 → 200
	f.Block(wasm.BlockVoid) // 0 → 100
	f.LocalGet(0)
	f.BrTable([]uint32{0, 1}, 2)
	f.End()
	f.I32Const(100)
	f.Return()
	f.End()
	f.I32Const(200)
	f.Return()
	f.End()
	f.I32Const(300)
	b.Export("pick", wasm.ExternFunc, f.Index)
	bin := b.Bytes()

	want := map[uint64]uint64{0: 100, 1: 200, 2: 300, 7: 300}
	for arg, exp := range want {
		if got := runAll(t, bin, Imports{}, "pick", arg); got[0] != exp {
			t.Errorf("pick(%d) = %d, want %d", arg, got[0], exp)
		}
	}
}

func TestGlobals(t *testing.T) {
	b := wasm.NewModuleBuilder()
	g := b.AddGlobal(wasm.I64, true, 1000)
	f := b.NewFunc("bump", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	f.GlobalGet(g)
	f.LocalGet(0)
	f.I64Add()
	f.GlobalSet(g)
	f.GlobalGet(g)
	b.Export("bump", wasm.ExternFunc, f.Index)
	bin := b.Bytes()

	for _, tier := range tiers {
		m, err := New(Config{Tier: tier}).Compile(bin)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := m.Instantiate(Imports{})
		if err != nil {
			t.Fatal(err)
		}
		if got := mustCall(t, inst, "bump", 1); got[0] != 1001 {
			t.Errorf("%v: bump = %d", tier, got[0])
		}
		if got := mustCall(t, inst, "bump", 9); got[0] != 1010 {
			t.Errorf("%v: bump = %d", tier, got[0])
		}
	}
}

func TestSelectBranchFree(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("min", wasm.FuncType{Params: []wasm.ValType{wasm.F64, wasm.F64}, Results: []wasm.ValType{wasm.F64}})
	f.LocalGet(0)
	f.LocalGet(1)
	f.LocalGet(0)
	f.LocalGet(1)
	f.Op(wasm.OpF64Lt)
	f.Select()
	b.Export("min", wasm.ExternFunc, f.Index)
	bin := b.Bytes()

	got := runAll(t, bin, Imports{}, "min", math.Float64bits(3.5), math.Float64bits(-2.25))
	if math.Float64frombits(got[0]) != -2.25 {
		t.Errorf("min = %v", math.Float64frombits(got[0]))
	}
}

func TestAdaptiveTierSwitch(t *testing.T) {
	// A module called repeatedly (morsel-wise) must migrate from liftoff to
	// turbofan once background compilation finishes.
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("work", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	acc := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I64)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(0)
	f.Op(wasm.OpI64GeS)
	f.BrIf(1)
	f.LocalGet(acc)
	f.LocalGet(i)
	f.I64Mul()
	f.LocalGet(i)
	f.I64Add()
	f.LocalSet(acc)
	f.LocalGet(i)
	f.I64Const(1)
	f.I64Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(acc)
	b.Export("work", wasm.ExternFunc, f.Index)

	m, err := New(Config{Tier: TierAdaptive}).Compile(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate(Imports{})
	if err != nil {
		t.Fatal(err)
	}
	// First call may be served by either tier (the race is the point);
	// after WaitOptimized every call must be turbofan.
	mustCall(t, inst, "work", 1000)
	if err := m.WaitOptimized(); err != nil {
		t.Fatal(err)
	}
	before, _ := inst.TierCalls()
	for k := 0; k < 5; k++ {
		mustCall(t, inst, "work", 1000)
	}
	lo, tf := inst.TierCalls()
	if lo != before {
		t.Errorf("liftoff calls grew after optimization: %d -> %d", before, lo)
	}
	if tf < 5 {
		t.Errorf("turbofan served %d calls, want >= 5", tf)
	}
	st := m.Stats()
	if st.Liftoff <= 0 || st.Turbofan <= 0 {
		t.Errorf("missing compile stats: %+v", st)
	}
}

// TestRandomizedDifferential generates random straight-line arithmetic
// programs and checks that both tiers agree with a host-side evaluation.
func TestRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	type binop struct {
		op   wasm.Opcode
		eval func(a, b uint64) uint64
	}
	ops := []binop{
		{wasm.OpI64Add, func(a, b uint64) uint64 { return a + b }},
		{wasm.OpI64Sub, func(a, b uint64) uint64 { return a - b }},
		{wasm.OpI64Mul, func(a, b uint64) uint64 { return a * b }},
		{wasm.OpI64And, func(a, b uint64) uint64 { return a & b }},
		{wasm.OpI64Or, func(a, b uint64) uint64 { return a | b }},
		{wasm.OpI64Xor, func(a, b uint64) uint64 { return a ^ b }},
		{wasm.OpI64Shl, func(a, b uint64) uint64 { return a << (b & 63) }},
		{wasm.OpI64ShrU, func(a, b uint64) uint64 { return a >> (b & 63) }},
	}
	for trial := 0; trial < 60; trial++ {
		b := wasm.NewModuleBuilder()
		f := b.NewFunc("p", wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
		args := []uint64{rng.Uint64(), rng.Uint64()}
		// Host-side mirror evaluation stack.
		sim := []uint64{args[0], args[1]}
		f.LocalGet(0)
		f.LocalGet(1)
		n := 2 + rng.Intn(30)
		for k := 0; k < n; k++ {
			if len(sim) < 2 || rng.Intn(3) == 0 {
				c := rng.Uint64()
				f.I64Const(int64(c))
				sim = append(sim, c)
				continue
			}
			op := ops[rng.Intn(len(ops))]
			f.Op(op.op)
			a, bb := sim[len(sim)-2], sim[len(sim)-1]
			sim = sim[:len(sim)-2]
			sim = append(sim, op.eval(a, bb))
		}
		for len(sim) > 1 {
			f.Op(wasm.OpI64Xor)
			a, bb := sim[len(sim)-2], sim[len(sim)-1]
			sim = sim[:len(sim)-2]
			sim = append(sim, a^bb)
		}
		b.Export("p", wasm.ExternFunc, f.Index)
		got := runAll(t, b.Bytes(), Imports{}, "p", args...)
		if got[0] != sim[0] {
			t.Fatalf("trial %d: got %#x, want %#x", trial, got[0], sim[0])
		}
	}
}

func TestImportErrors(t *testing.T) {
	b := wasm.NewModuleBuilder()
	b.ImportFunc("env", "f", wasm.FuncType{Params: []wasm.ValType{wasm.I32}})
	g := b.NewFunc("g", wasm.FuncType{})
	g.I32Const(1)
	g.Call(0)
	b.Export("g", wasm.ExternFunc, g.Index)
	bin := b.Bytes()

	m, err := New(Config{Tier: TierLiftoff}).Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Instantiate(Imports{}); err == nil {
		t.Error("missing import not rejected")
	}
	if _, err := m.Instantiate(Imports{Funcs: map[string]*rt.HostFunc{
		"env.f": {Type: wasm.FuncType{Params: []wasm.ValType{wasm.I64}}, Fn: func(*rt.Env, []uint64, []uint64) {}},
	}}); err == nil {
		t.Error("import signature mismatch not rejected")
	}
}

func TestTierPolicyDefersOptimization(t *testing.T) {
	// A TierPolicy veto keeps an adaptive module's identity (it still caches
	// and shares as adaptive) but defers background optimization until
	// EnsureOptimizing is called — the autopilot's liftoff-only decision.
	build := func() []byte {
		b := wasm.NewModuleBuilder()
		f := b.NewFunc("work", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
		f.LocalGet(0)
		f.I64Const(1)
		f.I64Add()
		b.Export("work", wasm.ExternFunc, f.Index)
		return b.Bytes()
	}

	var polFuncs, polBytes int
	cfg := Config{Tier: TierAdaptive, TierPolicy: func(numFuncs, codeBytes int) bool {
		polFuncs, polBytes = numFuncs, codeBytes
		return false
	}}
	m, err := New(cfg).Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	if polFuncs != 1 || polBytes <= 0 {
		t.Errorf("policy saw funcs=%d bytes=%d", polFuncs, polBytes)
	}
	inst, err := m.Instantiate(Imports{})
	if err != nil {
		t.Fatal(err)
	}
	// WaitOptimized must not hang on a vetoed module — there is nothing to
	// wait for.
	if err := m.WaitOptimized(); err != nil {
		t.Fatal(err)
	}
	mustCall(t, inst, "work", 1)
	if lo, tf := inst.TierCalls(); lo != 1 || tf != 0 {
		t.Fatalf("vetoed module dispatched liftoff=%d turbofan=%d, want 1/0", lo, tf)
	}
	if st := m.Stats(); st.Turbofan != 0 {
		t.Errorf("vetoed module spent turbofan compile time: %+v", st)
	}

	// The deferred kick: EnsureOptimizing starts the background compile; after
	// WaitOptimized, calls dispatch optimized code.
	m.EnsureOptimizing()
	if err := m.WaitOptimized(); err != nil {
		t.Fatal(err)
	}
	mustCall(t, inst, "work", 1)
	if _, tf := inst.TierCalls(); tf != 1 {
		t.Errorf("post-kick turbofan calls = %d, want 1", tf)
	}
	// Idempotent: a second kick must not restart anything.
	m.EnsureOptimizing()
	if err := m.WaitOptimized(); err != nil {
		t.Fatal(err)
	}
}

func TestTierPolicyApproveMatchesAdaptive(t *testing.T) {
	// A policy that approves is indistinguishable from no policy at all.
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("work", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	f.LocalGet(0)
	b.Export("work", wasm.ExternFunc, f.Index)

	m, err := New(Config{Tier: TierAdaptive, TierPolicy: func(int, int) bool { return true }}).Compile(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WaitOptimized(); err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate(Imports{})
	if err != nil {
		t.Fatal(err)
	}
	mustCall(t, inst, "work", 7)
	if _, tf := inst.TierCalls(); tf != 1 {
		t.Errorf("approved module turbofan calls = %d, want 1", tf)
	}
}

// EnsureOptimizing on a non-adaptive module is a no-op (nothing to kick).
func TestEnsureOptimizingNonAdaptive(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("work", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	f.LocalGet(0)
	b.Export("work", wasm.ExternFunc, f.Index)
	m, err := New(Config{Tier: TierLiftoff}).Compile(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	m.EnsureOptimizing()
	if st := m.Stats(); st.Turbofan != 0 {
		t.Errorf("liftoff-tier module optimized after kick: %+v", st)
	}
}
