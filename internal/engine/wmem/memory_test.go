package wmem

import (
	"testing"
	"testing/quick"
)

func TestGrowAndBounds(t *testing.T) {
	m := New(1, 4)
	if m.Pages() != 1 {
		t.Fatalf("pages = %d", m.Pages())
	}
	if got := m.Grow(2); got != 1 {
		t.Fatalf("Grow = %d", got)
	}
	if m.Pages() != 3 {
		t.Fatalf("pages = %d", m.Pages())
	}
	if got := m.Grow(5); got != -1 {
		t.Fatalf("over-limit Grow = %d, want -1", got)
	}
	// New clamps maxPages to the wasm limit.
	big := New(1, 1<<20)
	if big.MaxPages() != 65536 {
		t.Fatalf("maxPages = %d", big.MaxPages())
	}
}

func TestLoadStoreRoundtrip(t *testing.T) {
	m := New(2, 4)
	m.PutU8(5, 0xAB)
	if m.U8(5) != 0xAB {
		t.Error("u8")
	}
	m.PutU16(100, 0xBEEF)
	if m.U16(100) != 0xBEEF {
		t.Error("u16")
	}
	m.PutU32(200, 0xDEADBEEF)
	if m.U32(200) != 0xDEADBEEF {
		t.Error("u32")
	}
	m.PutU64(300, 0x0123456789ABCDEF)
	if m.U64(300) != 0x0123456789ABCDEF {
		t.Error("u64")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New(2, 4)
	// A u64 straddling the page boundary must hit the slow path and stay
	// correct.
	addr := uint32(PageSize - 3)
	m.PutU64(addr, 0x1122334455667788)
	if got := m.U64(addr); got != 0x1122334455667788 {
		t.Fatalf("straddling u64 = %#x", got)
	}
	m.PutU32(PageSize-2, 0xCAFEBABE)
	if got := m.U32(PageSize - 2); got != 0xCAFEBABE {
		t.Fatalf("straddling u32 = %#x", got)
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	m := New(1, 1)
	cases := []func(){
		func() { m.U8(PageSize) },
		func() { m.U32(PageSize - 2) },
		func() { m.U64(PageSize - 7) },
		func() { m.PutU8(PageSize, 1) },
		func() { m.PutU64(PageSize-1, 1) },
		func() { m.ReadBytes(PageSize-4, 8) },
		func() { m.WriteBytes(PageSize-4, make([]byte, 8)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("case %d: no trap", i)
				} else if _, ok := r.(*Trap); !ok {
					t.Errorf("case %d: wrong panic type %T", i, r)
				}
			}()
			fn()
		}()
	}
}

func TestMapAliasesHostBuffer(t *testing.T) {
	m := New(3, 8)
	host := make([]byte, PageSize)
	host[0] = 42
	host[PageSize-1] = 43
	if err := m.Map(PageSize, host); err != nil {
		t.Fatal(err)
	}
	if m.U8(PageSize) != 42 || m.U8(2*PageSize-1) != 43 {
		t.Error("mapped data not visible")
	}
	// Guest writes reach the host buffer (zero copy, both directions).
	m.PutU8(PageSize+7, 99)
	if host[7] != 99 {
		t.Error("guest write did not reach host buffer")
	}
	host[8] = 77
	if m.U8(PageSize+8) != 77 {
		t.Error("host write not visible to guest")
	}
}

func TestMapValidation(t *testing.T) {
	m := New(2, 4)
	buf := make([]byte, PageSize)
	if err := m.Map(100, buf); err == nil {
		t.Error("unaligned address accepted")
	}
	if err := m.Map(0, make([]byte, 100)); err == nil {
		t.Error("non-page-multiple length accepted")
	}
	if err := m.Map(4*PageSize, buf); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

func TestUnmapRestoresZeroPages(t *testing.T) {
	m := New(2, 4)
	host := make([]byte, PageSize)
	for i := range host {
		host[i] = 0xFF
	}
	if err := m.Map(PageSize, host); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(PageSize, 1); err != nil {
		t.Fatal(err)
	}
	if m.U8(PageSize) != 0 {
		t.Error("unmap did not restore a zero page")
	}
	if host[0] != 0xFF {
		t.Error("unmap corrupted the host buffer")
	}
}

func TestRemapChunks(t *testing.T) {
	// §6.1's chunked rewiring: the same window alternately maps different
	// chunks of a large host buffer.
	m := New(2, 2)
	big := make([]byte, 4*PageSize)
	for i := range big {
		big[i] = byte(i / PageSize)
	}
	window := uint32(PageSize)
	for chunk := 0; chunk < 4; chunk++ {
		if err := m.Map(window, big[chunk*PageSize:(chunk+1)*PageSize]); err != nil {
			t.Fatal(err)
		}
		if got := m.U8(window); got != byte(chunk) {
			t.Fatalf("chunk %d: got %d", chunk, got)
		}
	}
}

func TestReadWriteBytesRoundtrip(t *testing.T) {
	m := New(2, 4)
	f := func(off uint16, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		addr := uint32(off)
		m.WriteBytes(addr, data)
		got := m.ReadBytes(addr, uint32(len(data)))
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
