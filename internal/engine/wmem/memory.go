// Package wmem implements the linear memory of a WebAssembly instance as a
// page table over host byte slices.
//
// It is the reproduction of the paper's "rewiring" technique (§6): the paper
// patches V8 with SetModuleMemory() and uses virtual-memory rewiring to make
// host data structures (tables, indexes, result buffers) appear inside the
// module's 32-bit address space without copying. Here, the same observable
// property is obtained by aliasing Go slices: Map installs a host buffer's
// pages directly into the page table, so guest loads read host memory
// in place. Mapping granularity is the 64 KiB WebAssembly page, mirroring the
// OS page granularity of mmap-based rewiring.
package wmem

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wasmdb/internal/faultpoint"
	"wasmdb/internal/obs"
)

// PageSize is the WebAssembly page size.
const PageSize = 64 * 1024

const pageShift = 16
const pageMask = PageSize - 1

// ErrMemoryLimit reports that a heap budget installed with SetBudget was
// exceeded — the typed, host-visible form of "this query allocated too
// much", as opposed to an opaque unreachable trap from guest allocator code.
var ErrMemoryLimit = errors.New("wasm trap: memory budget exceeded")

// Trap describes a memory access fault raised by guest code.
type Trap struct {
	Addr uint32
	Size uint32
	Msg  string
	// Cause, when non-nil, is a typed sentinel (ErrMemoryLimit) reachable
	// via errors.Is.
	Cause error
}

func (t *Trap) Error() string {
	return fmt.Sprintf("wasm trap: %s at address %#x (size %d)", t.Msg, t.Addr, t.Size)
}

// Unwrap exposes the typed cause to errors.Is/errors.As.
func (t *Trap) Unwrap() error { return t.Cause }

// Memory is a 32-bit addressable linear memory backed by a page table.
// Pages are either module-owned (allocated by Grow or at construction) or
// host-mapped (installed by Map). A nil page is unmapped and traps.
type Memory struct {
	pages    [][]byte
	maxPages uint32
	// budget, when non-zero, caps the total size in pages that Grow may
	// reach; exceeding it traps with ErrMemoryLimit (unlike maxPages, whose
	// wasm semantics silently return -1 to the guest).
	budget uint32
	// tr, when non-nil, receives a point event per Grow with the new
	// high-water mark (pages only ever grow, so the current size is the
	// peak).
	tr *obs.Trace
}

// New creates a memory with min zero-initialized module-owned pages and the
// given maximum size in pages (the paper's 4 GiB address budget corresponds
// to maxPages = 65536; experiments shrink it to force chunked rewiring).
func New(minPages, maxPages uint32) *Memory {
	if maxPages > 65536 {
		maxPages = 65536
	}
	if minPages > maxPages {
		minPages = maxPages
	}
	m := &Memory{pages: make([][]byte, minPages), maxPages: maxPages}
	for i := range m.pages {
		m.pages[i] = make([]byte, PageSize)
	}
	return m
}

// Pages returns the current size in pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.pages)) }

// PageSlice exposes the page table for the interpreters' inline fast paths
// (see rt.LdU32 and friends). The returned slice becomes stale after Grow,
// Map, or Unmap; callers refresh it after any operation that may mutate the
// table.
func (m *Memory) PageSlice() [][]byte { return m.pages }

// MaxPages returns the maximum size in pages.
func (m *Memory) MaxPages() uint32 { return m.maxPages }

// SetBudget installs a per-query heap budget: Grow traps with
// ErrMemoryLimit once the memory would exceed budget pages in total. Zero
// removes the budget. The budget is checked only on growth — pages already
// allocated or host-mapped are unaffected.
func (m *Memory) SetBudget(pages uint32) { m.budget = pages }

// SetTracer routes growth events into the given query trace (nil detaches).
func (m *Memory) SetTracer(tr *obs.Trace) { m.tr = tr }

// Grow extends the memory by delta zero-initialized module-owned pages,
// returning the previous size in pages, or -1 if the wasm maximum would be
// exceeded (the semantics of memory.grow). Exceeding a host-installed
// budget (SetBudget) instead traps with a typed ErrMemoryLimit cause.
func (m *Memory) Grow(delta uint32) int32 {
	old := uint32(len(m.pages))
	if err := faultpoint.Hit("wmem-grow"); err != nil {
		panic(&Trap{Msg: err.Error(), Cause: ErrMemoryLimit})
	}
	if uint64(old)+uint64(delta) > uint64(m.maxPages) {
		return -1
	}
	if m.budget > 0 && uint64(old)+uint64(delta) > uint64(m.budget) {
		panic(&Trap{
			Msg:   fmt.Sprintf("memory budget of %d pages exceeded growing %d pages from %d", m.budget, delta, old),
			Cause: ErrMemoryLimit,
		})
	}
	for i := uint32(0); i < delta; i++ {
		m.pages = append(m.pages, make([]byte, PageSize))
	}
	if m.tr != nil {
		m.tr.Event(obs.EvGrow, obs.I("delta", int64(delta)), obs.I("pages", int64(len(m.pages))))
	}
	return int32(old)
}

// Map rewires the host buffer data into the address space at addr. Both addr
// and len(data) must be multiples of PageSize; the pages alias data, so guest
// accesses read and write the host buffer in place and no copy occurs.
// The mapped range must lie below the current memory size (use Grow or
// construct with enough pages first); existing pages are replaced.
func (m *Memory) Map(addr uint32, data []byte) error {
	if addr&pageMask != 0 {
		return fmt.Errorf("wmem: map address %#x not page-aligned", addr)
	}
	if len(data)&pageMask != 0 {
		return fmt.Errorf("wmem: map length %d not a page multiple", len(data))
	}
	first := addr >> pageShift
	n := uint32(len(data) >> pageShift)
	if uint64(first)+uint64(n) > uint64(len(m.pages)) {
		return fmt.Errorf("wmem: map of %d pages at %#x exceeds memory size (%d pages)", n, addr, len(m.pages))
	}
	for i := uint32(0); i < n; i++ {
		m.pages[first+i] = data[i<<pageShift : (i+1)<<pageShift : (i+1)<<pageShift]
	}
	return nil
}

// Unmap replaces n pages starting at the page-aligned addr with fresh
// module-owned zero pages.
func (m *Memory) Unmap(addr uint32, n uint32) error {
	if addr&pageMask != 0 {
		return fmt.Errorf("wmem: unmap address %#x not page-aligned", addr)
	}
	first := addr >> pageShift
	if uint64(first)+uint64(n) > uint64(len(m.pages)) {
		return fmt.Errorf("wmem: unmap out of range")
	}
	for i := uint32(0); i < n; i++ {
		m.pages[first+i] = make([]byte, PageSize)
	}
	return nil
}

func (m *Memory) trap(addr, size uint32) {
	panic(&Trap{Addr: addr, Size: size, Msg: "out-of-bounds memory access"})
}

// span returns the in-page slice for a fast-path access of size bytes at
// addr, or nil if the access is unmapped, out of bounds, or straddles a page
// boundary (slow path).
func (m *Memory) span(addr, size uint32) []byte {
	p := addr >> pageShift
	off := addr & pageMask
	if p >= uint32(len(m.pages)) || off+size > PageSize {
		return nil
	}
	pg := m.pages[p]
	if pg == nil {
		return nil
	}
	return pg[off : off+size]
}

// U8 loads a byte.
func (m *Memory) U8(addr uint32) byte {
	p := addr >> pageShift
	if p >= uint32(len(m.pages)) || m.pages[p] == nil {
		m.trap(addr, 1)
	}
	return m.pages[p][addr&pageMask]
}

// PutU8 stores a byte.
func (m *Memory) PutU8(addr uint32, v byte) {
	p := addr >> pageShift
	if p >= uint32(len(m.pages)) || m.pages[p] == nil {
		m.trap(addr, 1)
	}
	m.pages[p][addr&pageMask] = v
}

// U16 loads a little-endian 16-bit value.
func (m *Memory) U16(addr uint32) uint16 {
	if s := m.span(addr, 2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return uint16(m.slowLoad(addr, 2))
}

// PutU16 stores a little-endian 16-bit value.
func (m *Memory) PutU16(addr uint32, v uint16) {
	if s := m.span(addr, 2); s != nil {
		binary.LittleEndian.PutUint16(s, v)
		return
	}
	m.slowStore(addr, 2, uint64(v))
}

// U32 loads a little-endian 32-bit value.
func (m *Memory) U32(addr uint32) uint32 {
	if s := m.span(addr, 4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return uint32(m.slowLoad(addr, 4))
}

// PutU32 stores a little-endian 32-bit value.
func (m *Memory) PutU32(addr uint32, v uint32) {
	if s := m.span(addr, 4); s != nil {
		binary.LittleEndian.PutUint32(s, v)
		return
	}
	m.slowStore(addr, 4, uint64(v))
}

// U64 loads a little-endian 64-bit value.
func (m *Memory) U64(addr uint32) uint64 {
	if s := m.span(addr, 8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return m.slowLoad(addr, 8)
}

// PutU64 stores a little-endian 64-bit value.
func (m *Memory) PutU64(addr uint32, v uint64) {
	if s := m.span(addr, 8); s != nil {
		binary.LittleEndian.PutUint64(s, v)
		return
	}
	m.slowStore(addr, 8, v)
}

// slowLoad assembles a value that straddles a page boundary byte by byte.
func (m *Memory) slowLoad(addr, size uint32) uint64 {
	if uint64(addr)+uint64(size) > uint64(len(m.pages))<<pageShift {
		m.trap(addr, size)
	}
	var v uint64
	for i := uint32(0); i < size; i++ {
		v |= uint64(m.U8(addr+i)) << (8 * i)
	}
	return v
}

func (m *Memory) slowStore(addr, size uint32, v uint64) {
	if uint64(addr)+uint64(size) > uint64(len(m.pages))<<pageShift {
		m.trap(addr, size)
	}
	for i := uint32(0); i < size; i++ {
		m.PutU8(addr+i, byte(v>>(8*i)))
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice, crossing page
// boundaries as needed. It is the host-side accessor for result retrieval.
func (m *Memory) ReadBytes(addr, n uint32) []byte {
	out := make([]byte, n)
	got := uint32(0)
	for got < n {
		s := m.span(addr+got, 1)
		if s == nil {
			m.trap(addr+got, 1)
		}
		pg := m.pages[(addr+got)>>pageShift]
		off := (addr + got) & pageMask
		c := copy(out[got:], pg[off:])
		got += uint32(c)
	}
	return out
}

// WriteBytes copies b into memory at addr, crossing page boundaries.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	done := 0
	for done < len(b) {
		a := addr + uint32(done)
		p := a >> pageShift
		if p >= uint32(len(m.pages)) || m.pages[p] == nil {
			m.trap(a, uint32(len(b)-done))
		}
		off := a & pageMask
		done += copy(m.pages[p][off:], b[done:])
	}
}
