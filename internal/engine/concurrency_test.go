package engine

import (
	"sync"
	"testing"

	"wasmdb/internal/wasm"
)

// TestConcurrentInstances shares one compiled module across goroutines, each
// with its own instance — the engine's code objects must be reusable while
// background tier-up swaps them.
func TestConcurrentInstances(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("tri", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	acc := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I64)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(0)
	f.Op(wasm.OpI64GeS)
	f.BrIf(1)
	f.LocalGet(acc)
	f.LocalGet(i)
	f.I64Add()
	f.LocalSet(acc)
	f.LocalGet(i)
	f.I64Const(1)
	f.I64Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(acc)
	b.Export("tri", wasm.ExternFunc, f.Index)
	bin := b.Bytes()

	m, err := New(Config{Tier: TierAdaptive}).Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inst, err := m.Instantiate(Imports{})
			if err != nil {
				errs <- err
				return
			}
			for k := 0; k < 200; k++ {
				n := uint64(100 + g + k)
				res, err := inst.Call("tri", n)
				if err != nil {
					errs <- err
					return
				}
				if want := n * (n - 1) / 2; res[0] != want {
					t.Errorf("tri(%d) = %d, want %d", n, res[0], want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := m.WaitOptimized(); err != nil {
		t.Fatal(err)
	}
}
