package turbofan

import (
	"fmt"

	"wasmdb/internal/wasm"
)

// Code is a turbofan-compiled function body.
type Code struct {
	Name     string
	NParams  int
	NResults int
	NLocals  int
	MaxStack int
	ins      []tin
	tables   [][]uint32 // br_table jump tables (pcs after linearization)
	// Passes reports how many optimization passes ran (for introspection).
	Passes int
}

// Compile translates and optimizes one validated function body with the
// default number of optimization rounds.
func Compile(m *wasm.Module, fn *wasm.Func) (*Code, error) {
	return CompileRounds(m, fn, DefaultOptRounds)
}

// DefaultOptRounds is the standard number of optimization rounds — the
// TurboFan-grade setting. Higher values model heavier (LLVM-grade)
// optimizing compilers: each round re-runs folding, fusion, jump threading,
// and liveness-based DCE over the whole block graph, so compile time grows
// accordingly while code quality saturates.
const DefaultOptRounds = 2

// CompileRounds compiles with an explicit optimization budget.
func CompileRounds(m *wasm.Module, fn *wasm.Func, rounds int) (*Code, error) {
	ft := m.Types[fn.Type]
	lo := &lowerer{
		m: m,
		code: &Code{
			Name:     fn.Name,
			NParams:  len(ft.Params),
			NResults: len(ft.Results),
			NLocals:  len(ft.Params) + len(fn.Locals),
		},
	}
	if err := lo.translate(fn.Body, len(ft.Results)); err != nil {
		return nil, fmt.Errorf("turbofan: %s: %w", fn.Name, err)
	}
	g := buildBlocks(lo.code.ins, lo.tables)
	opt := &optimizer{g: g, nRegs: lo.code.NLocals + lo.code.MaxStack, code: lo.code, rounds: rounds}
	opt.run()
	lo.code.Passes = opt.passes
	linearize(lo.code, g)
	return lo.code, nil
}

// ---------------------------------------------------------------------------
// Lowering: structured wasm → linear register code with pc targets.

type lctrl struct {
	isLoop    bool
	height    int
	arity     int
	startPC   int
	patches   []int // instruction indices whose imm awaits this label's end pc
	elsePatch int
	endLive   bool
	liveIn    bool
}

type lowerer struct {
	m      *wasm.Module
	code   *Code
	tables [][]uint32 // entries are pcs during lowering
	height int
	live   bool
	ctrls  []lctrl
}

func (lo *lowerer) base() int32 { return int32(lo.code.NLocals) }

func (lo *lowerer) reg(slot int) int32 { return lo.base() + int32(slot) }

func (lo *lowerer) emit(t tin) int {
	lo.code.ins = append(lo.code.ins, t)
	return len(lo.code.ins) - 1
}

func (lo *lowerer) adjust(pop, push int) {
	lo.height += push - pop
	if lo.height > lo.code.MaxStack {
		lo.code.MaxStack = lo.height
	}
}

func (lo *lowerer) pc() int { return len(lo.code.ins) }

func (lo *lowerer) translate(body []wasm.Instr, funcArity int) error {
	lo.live = true
	lo.ctrls = []lctrl{{arity: funcArity, liveIn: true, elsePatch: -1}}
	for _, in := range body {
		if err := lo.instr(in); err != nil {
			return err
		}
		if len(lo.ctrls) == 0 {
			return nil
		}
	}
	return fmt.Errorf("missing end")
}

// unwindMoves emits the moves placing the top arity values at targetHeight.
func (lo *lowerer) unwindMoves(targetHeight, arity int) {
	src := lo.height - arity
	if src == targetHeight {
		return
	}
	for i := 0; i < arity; i++ {
		lo.emit(tin{op: tMove, d: lo.reg(targetHeight + i), a: lo.reg(src + i)})
	}
}

func (lo *lowerer) branch(depth uint64, conditional bool) error {
	if depth >= uint64(len(lo.ctrls)) {
		return fmt.Errorf("branch depth out of range")
	}
	t := &lo.ctrls[len(lo.ctrls)-1-int(depth)]
	cond := lo.reg(lo.height) // already popped by caller
	needMoves := lo.height-t.arity != t.height
	if t.isLoop {
		needMoves = lo.height != t.height
	}
	if !conditional {
		if t.isLoop {
			lo.unwindMoves(t.height, 0)
			lo.emit(tin{op: tJump, imm: uint64(t.startPC)})
		} else {
			lo.unwindMoves(t.height, t.arity)
			t.patches = append(t.patches, lo.emit(tin{op: tJump}))
			t.endLive = true
		}
		return nil
	}
	if !needMoves {
		if t.isLoop {
			lo.emit(tin{op: tJumpIfNot, a: cond, imm: uint64(t.startPC)})
		} else {
			t.patches = append(t.patches, lo.emit(tin{op: tJumpIfNot, a: cond}))
			t.endLive = true
		}
		return nil
	}
	// Conditional with unwinding: skip over the move sequence when the
	// branch is not taken.
	skip := lo.emit(tin{op: tJumpIfZero, a: cond})
	if t.isLoop {
		lo.unwindMoves(t.height, 0)
		lo.emit(tin{op: tJump, imm: uint64(t.startPC)})
	} else {
		lo.unwindMoves(t.height, t.arity)
		t.patches = append(t.patches, lo.emit(tin{op: tJump}))
		t.endLive = true
	}
	lo.code.ins[skip].imm = uint64(lo.pc())
	return nil
}

func (lo *lowerer) instr(in wasm.Instr) error {
	if !lo.live {
		switch in.Op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			lo.ctrls = append(lo.ctrls, lctrl{liveIn: false, elsePatch: -1, isLoop: in.Op == wasm.OpLoop})
		case wasm.OpElse:
			t := &lo.ctrls[len(lo.ctrls)-1]
			if t.liveIn {
				if t.elsePatch >= 0 {
					lo.code.ins[t.elsePatch].imm = uint64(lo.pc())
					t.elsePatch = -1
				}
				lo.live = true
				lo.height = t.height
			}
		case wasm.OpEnd:
			t := lo.ctrls[len(lo.ctrls)-1]
			lo.ctrls = lo.ctrls[:len(lo.ctrls)-1]
			if len(lo.ctrls) == 0 {
				return nil
			}
			endPC := lo.pc()
			for _, p := range t.patches {
				lo.code.ins[p].imm = uint64(endPC)
			}
			if t.elsePatch >= 0 {
				lo.code.ins[t.elsePatch].imm = uint64(endPC)
				t.endLive = t.endLive || t.liveIn
			}
			if t.endLive {
				lo.live = true
				lo.height = t.height + t.arity
				if lo.height > lo.code.MaxStack {
					lo.code.MaxStack = lo.height
				}
			}
		}
		return nil
	}

	B := lo.height
	switch in.Op {
	case wasm.OpNop:
	case wasm.OpUnreachable:
		lo.emit(tin{op: tUnreachable})
		lo.live = false
	case wasm.OpBlock:
		lo.ctrls = append(lo.ctrls, lctrl{height: lo.height, arity: len(wasm.BlockType(in.A).Results()), liveIn: true, elsePatch: -1})
	case wasm.OpLoop:
		lo.ctrls = append(lo.ctrls, lctrl{isLoop: true, height: lo.height, arity: len(wasm.BlockType(in.A).Results()), startPC: lo.pc(), liveIn: true, elsePatch: -1})
	case wasm.OpIf:
		lo.adjust(1, 0)
		idx := lo.emit(tin{op: tJumpIfZero, a: lo.reg(lo.height)})
		lo.ctrls = append(lo.ctrls, lctrl{height: lo.height, arity: len(wasm.BlockType(in.A).Results()), liveIn: true, elsePatch: idx})
	case wasm.OpElse:
		t := &lo.ctrls[len(lo.ctrls)-1]
		idx := lo.emit(tin{op: tJump})
		t.patches = append(t.patches, idx)
		t.endLive = true
		if t.elsePatch >= 0 {
			lo.code.ins[t.elsePatch].imm = uint64(lo.pc())
			t.elsePatch = -1
		}
		lo.height = t.height
	case wasm.OpEnd:
		t := lo.ctrls[len(lo.ctrls)-1]
		lo.ctrls = lo.ctrls[:len(lo.ctrls)-1]
		if len(lo.ctrls) == 0 {
			lo.emitReturn()
			return nil
		}
		endPC := lo.pc()
		if t.elsePatch >= 0 {
			lo.code.ins[t.elsePatch].imm = uint64(endPC)
		}
		for _, p := range t.patches {
			lo.code.ins[p].imm = uint64(endPC)
		}
		lo.height = t.height + t.arity
		if lo.height > lo.code.MaxStack {
			lo.code.MaxStack = lo.height
		}
	case wasm.OpBr:
		if err := lo.branch(in.A, false); err != nil {
			return err
		}
		lo.live = false
	case wasm.OpBrIf:
		lo.adjust(1, 0)
		if err := lo.branch(in.A, true); err != nil {
			return err
		}
	case wasm.OpBrTable:
		lo.adjust(1, 0)
		idxReg := lo.reg(lo.height)
		tid := len(lo.tables)
		lo.tables = append(lo.tables, nil)
		lo.emit(tin{op: tBrTable, a: idxReg, imm: uint64(tid)})
		// Emit one stub per target performing that target's unwinding.
		entries := make([]uint32, 0, len(in.Table)+1)
		addStub := func(depth uint64) error {
			if depth >= uint64(len(lo.ctrls)) {
				return fmt.Errorf("br_table depth out of range")
			}
			t := &lo.ctrls[len(lo.ctrls)-1-int(depth)]
			entries = append(entries, uint32(lo.pc()))
			if t.isLoop {
				lo.unwindMoves(t.height, 0)
				lo.emit(tin{op: tJump, imm: uint64(t.startPC)})
			} else {
				lo.unwindMoves(t.height, t.arity)
				t.patches = append(t.patches, lo.emit(tin{op: tJump}))
				t.endLive = true
			}
			return nil
		}
		for _, d := range in.Table {
			if err := addStub(uint64(d)); err != nil {
				return err
			}
		}
		if err := addStub(in.A); err != nil {
			return err
		}
		lo.tables[tid] = entries
		lo.live = false
	case wasm.OpReturn:
		lo.emitReturn()
		lo.live = false
	case wasm.OpCall:
		ft, err := lo.m.FuncTypeAt(uint32(in.A))
		if err != nil {
			return err
		}
		np, nr := len(ft.Params), len(ft.Results)
		lo.adjust(np, 0)
		lo.emit(tin{op: tCall, a: lo.reg(lo.height), b: int32(np<<16 | nr), imm: in.A})
		lo.adjust(0, nr)
	case wasm.OpCallIndirect:
		ft := lo.m.Types[in.A]
		np, nr := len(ft.Params), len(ft.Results)
		lo.adjust(np+1, 0)
		lo.emit(tin{op: tCallIndirect, a: lo.reg(lo.height), b: int32(np<<16 | nr), imm: in.A})
		lo.adjust(0, nr)
	case wasm.OpDrop:
		lo.adjust(1, 0)
	case wasm.OpSelect:
		lo.adjust(3, 1)
		r := lo.reg(lo.height - 1)
		lo.emit(tin{op: tSelect, d: r, a: r, b: r + 1, imm: uint64(r + 2)})
	case wasm.OpLocalGet:
		lo.emit(tin{op: tMove, d: lo.reg(B), a: int32(in.A)})
		lo.adjust(0, 1)
	case wasm.OpLocalSet:
		lo.adjust(1, 0)
		lo.emit(tin{op: tMove, d: int32(in.A), a: lo.reg(lo.height)})
	case wasm.OpLocalTee:
		lo.emit(tin{op: tMove, d: int32(in.A), a: lo.reg(B - 1)})
	case wasm.OpGlobalGet:
		lo.emit(tin{op: tGlobalGet, d: lo.reg(B), imm: in.A})
		lo.adjust(0, 1)
	case wasm.OpGlobalSet:
		lo.adjust(1, 0)
		lo.emit(tin{op: tGlobalSet, a: lo.reg(lo.height), imm: in.A})
	case wasm.OpMemorySize:
		lo.emit(tin{op: tMemorySize, d: lo.reg(B)})
		lo.adjust(0, 1)
	case wasm.OpMemoryGrow:
		r := lo.reg(B - 1)
		lo.emit(tin{op: tMemoryGrow, d: r, a: r})
	default:
		pop, push, ok := in.Op.InOut()
		if !ok {
			return fmt.Errorf("unhandled opcode %s", in.Op)
		}
		lo.adjust(pop, 0)
		t := tin{op: uint16(in.Op), imm: in.A}
		switch {
		case pop == 0 && push == 1: // constants
			t.d = lo.reg(lo.height)
		case pop == 1 && push == 1: // unary, loads
			t.d = lo.reg(lo.height)
			t.a = lo.reg(lo.height)
		case pop == 2 && push == 1: // binary
			t.d = lo.reg(lo.height)
			t.a = lo.reg(lo.height)
			t.b = lo.reg(lo.height + 1)
		case pop == 2 && push == 0: // stores
			t.a = lo.reg(lo.height)
			t.b = lo.reg(lo.height + 1)
		default:
			return fmt.Errorf("unexpected signature for %s", in.Op)
		}
		lo.emit(t)
		lo.adjust(0, push)
	}
	return nil
}

func (lo *lowerer) emitReturn() {
	nres := lo.code.NResults
	src := lo.height - nres
	if src != 0 {
		for i := 0; i < nres; i++ {
			lo.emit(tin{op: tMove, d: lo.reg(i), a: lo.reg(src + i)})
		}
	}
	lo.emit(tin{op: tRet})
}
