package turbofan

import (
	"math/rand"
	"testing"

	"wasmdb/internal/engine/liftoff"
	"wasmdb/internal/engine/rt"
	"wasmdb/internal/wasm"
)

func compileBoth(t *testing.T, m *wasm.Module) (*Code, *liftoff.Code) {
	t.Helper()
	if err := wasm.Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	tf, err := Compile(m, &m.Funcs[0])
	if err != nil {
		t.Fatalf("turbofan: %v", err)
	}
	lo, err := liftoff.Compile(m, &m.Funcs[0])
	if err != nil {
		t.Fatalf("liftoff: %v", err)
	}
	return tf, lo
}

// TestConstantFolding checks that a constant expression folds away: the
// optimized code should be much shorter than a naive translation.
func TestConstantFolding(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("f", wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	// ((((1+2)*3)+4)*5) — all constant.
	f.I64Const(1)
	f.I64Const(2)
	f.I64Add()
	f.I64Const(3)
	f.I64Mul()
	f.I64Const(4)
	f.I64Add()
	f.I64Const(5)
	f.I64Mul()
	m := b.Module()
	tf, _ := compileBoth(t, m)
	if len(tf.ins) > 3 {
		t.Errorf("constants not folded: %d instructions", len(tf.ins))
	}
	env := &rt.Env{Funcs: []rt.Callee{tf}}
	res := make([]uint64, 1)
	tf.Call(env, nil, res)
	if res[0] != 65 {
		t.Errorf("folded value = %d", res[0])
	}
}

// TestBranchFusion checks that compare+branch pairs fuse and the dead
// compare is eliminated.
func TestBranchFusion(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	acc := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I64)
	f.Block(wasm.BlockVoid)
	f.Loop(wasm.BlockVoid)
	f.LocalGet(i)
	f.LocalGet(0)
	f.Op(wasm.OpI64GeS)
	f.BrIf(1)
	f.LocalGet(acc)
	f.LocalGet(i)
	f.I64Add()
	f.LocalSet(acc)
	f.LocalGet(i)
	f.I64Const(1)
	f.I64Add()
	f.LocalSet(i)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(acc)
	m := b.Module()
	tf, lo := compileBoth(t, m)

	// Fused form present?
	fused := false
	for _, in := range tf.ins {
		if in.op >= tBrCmpBase && in.op < tBrCmpNotBase+numCmpKinds {
			fused = true
		}
	}
	if !fused {
		t.Error("no fused compare-and-branch emitted")
	}

	// Agreement with liftoff on values.
	for _, n := range []uint64{0, 1, 5, 1000} {
		env := &rt.Env{Funcs: []rt.Callee{tf}}
		r1 := make([]uint64, 1)
		tf.Call(env, []uint64{n}, r1)
		env2 := &rt.Env{Funcs: []rt.Callee{lo}}
		r2 := make([]uint64, 1)
		lo.Call(env2, []uint64{n}, r2)
		if r1[0] != r2[0] {
			t.Errorf("n=%d: turbofan %d vs liftoff %d", n, r1[0], r2[0])
		}
	}
}

// TestRandomControlFlowDifferential generates random programs with nested
// blocks, branches, and arithmetic, and checks tier agreement.
func TestRandomControlFlowDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		b := wasm.NewModuleBuilder()
		f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
		l1 := f.AddLocal(wasm.I64)
		l2 := f.AddLocal(wasm.I64)

		// Seed locals from params.
		f.LocalGet(0)
		f.LocalSet(l1)
		f.LocalGet(1)
		f.LocalSet(l2)

		// A few random if/else arithmetic steps.
		steps := 1 + rng.Intn(5)
		for s := 0; s < steps; s++ {
			f.LocalGet(l1)
			f.I64Const(int64(rng.Intn(100)))
			f.Op([]wasm.Opcode{wasm.OpI64LtS, wasm.OpI64GtS, wasm.OpI64Eq}[rng.Intn(3)])
			f.If(wasm.BlockVoid)
			f.LocalGet(l1)
			f.LocalGet(l2)
			f.Op([]wasm.Opcode{wasm.OpI64Add, wasm.OpI64Sub, wasm.OpI64Mul, wasm.OpI64Xor}[rng.Intn(4)])
			f.LocalSet(l1)
			if rng.Intn(2) == 0 {
				f.Else()
				f.LocalGet(l2)
				f.I64Const(int64(rng.Intn(50) + 1))
				f.Op([]wasm.Opcode{wasm.OpI64Add, wasm.OpI64ShrU}[rng.Intn(2)])
				f.LocalSet(l2)
			}
			f.End()
		}
		// Bounded loop mixing both locals.
		iter := f.AddLocal(wasm.I64)
		f.Block(wasm.BlockVoid)
		f.Loop(wasm.BlockVoid)
		f.LocalGet(iter)
		f.I64Const(int64(rng.Intn(20) + 1))
		f.Op(wasm.OpI64GeS)
		f.BrIf(1)
		f.LocalGet(l1)
		f.I64Const(3)
		f.I64Mul()
		f.LocalGet(l2)
		f.I64Add()
		f.LocalSet(l1)
		f.LocalGet(iter)
		f.I64Const(1)
		f.I64Add()
		f.LocalSet(iter)
		f.Br(0)
		f.End()
		f.End()
		f.LocalGet(l1)
		f.LocalGet(l2)
		f.Op(wasm.OpI64Xor)

		m := b.Module()
		tf, lo := compileBoth(t, m)
		for probe := 0; probe < 4; probe++ {
			args := []uint64{rng.Uint64() % 1000, rng.Uint64() % 1000}
			r1 := make([]uint64, 1)
			r2 := make([]uint64, 1)
			tf.Call(&rt.Env{Funcs: []rt.Callee{tf}}, args, r1)
			lo.Call(&rt.Env{Funcs: []rt.Callee{lo}}, args, r2)
			if r1[0] != r2[0] {
				t.Fatalf("trial %d args %v: turbofan %d vs liftoff %d", trial, args, r1[0], r2[0])
			}
		}
	}
}

// TestOptRoundsMonotonicCost verifies that a larger optimization budget
// costs more compile passes (the LLVM-cost model).
func TestOptRoundsMonotonicCost(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	for i := 0; i < 50; i++ {
		f.LocalGet(0)
		f.I64Const(int64(i))
		f.I64Add()
		f.Drop()
	}
	f.LocalGet(0)
	m := b.Module()
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	c2, err := CompileRounds(m, &m.Funcs[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	c10, err := CompileRounds(m, &m.Funcs[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if c10.Passes <= c2.Passes {
		t.Errorf("passes: %d (10 rounds) vs %d (2 rounds)", c10.Passes, c2.Passes)
	}
}

// TestDCERemovesDeadArithmetic: dropped pure computations disappear.
func TestDCERemovesDeadArithmetic(t *testing.T) {
	b := wasm.NewModuleBuilder()
	f := b.NewFunc("f", wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	for i := 0; i < 30; i++ {
		f.LocalGet(0)
		f.I64Const(int64(i))
		f.I64Mul()
		f.Drop()
	}
	f.LocalGet(0)
	m := b.Module()
	tf, _ := compileBoth(t, m)
	if len(tf.ins) > 6 {
		t.Errorf("dead arithmetic survived: %d instructions", len(tf.ins))
	}
}
